(* The model checker checking itself: exhaustive unmutated scopes are
   clean and complete, every gauntlet mutant is caught with a
   deterministic minimized counterexample, and the scripted
   paper-conformance trails produce their exact verdicts. *)

open Adgc_mc

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Exhaustive unmutated scopes: every interleaving within the caps is
   violation-free.  This is the acceptance bar for the harness — a
   violation here is a real protocol bug (or a phantom in the ground
   truth, which is worse). *)

let assert_clean ?caps (s : Scenario.t) =
  let o = Explore.explore ?caps s in
  check Alcotest.bool (s.Scenario.name ^ " explored to completion") true o.Explore.complete;
  check Alcotest.bool (s.Scenario.name ^ " visited states") true (o.Explore.states > 0);
  match o.Explore.violation with
  | None -> ()
  | Some (trail, viols) ->
      Alcotest.failf "%s violated: %s after %s" s.Scenario.name (String.concat "; " viols)
        (String.concat ", "
           (List.map (fun a -> Format.asprintf "%a" Action.pp a) trail))

let test_exhaustive_two_proc_cycle () = assert_clean Scenarios.two_proc_cycle

(* The incremental-candidates scope: completeness of the whole scope
   PLUS the per-step audit invariant (incremental labels == full
   trace) in every reachable state — the property test wall's
   exhaustive corner. *)
let test_exhaustive_incremental () = assert_clean Scenarios.two_proc_cycle_incremental

let test_exhaustive_ic_race () = assert_clean Scenarios.ic_race

let test_exhaustive_external_holder () = assert_clean Scenarios.external_holder

let test_exhaustive_export_handshake () =
  (* One listing round exhaustively; the two-round scope (needed by the
     ack_before_delivery witness) is covered by the gauntlet replay and
     the full CI sweep. *)
  assert_clean
    ~caps:{ Scenario.snapshots = 0; scans = 0; lgcs = 1; sends = 1; drops = 0 }
    Scenarios.export_handshake

let test_exhaustive_grouped_cycle () = assert_clean Scenarios.grouped_cycle

(* ------------------------------------------------------------------ *)
(* Conformance trails: exact verdicts for the paper's worked cases. *)

let run_exn ?mutant ?caps scenario trail =
  match Explore.run ?mutant ?caps scenario trail with
  | Ok (sys, viols) -> (sys, viols)
  | Error reason -> Alcotest.failf "trail inapplicable: %s" reason

let test_reclaim_verdict () =
  let sys, viols = run_exn Scenarios.two_proc_cycle Scenarios.reclaim_trail in
  check Alcotest.int "no violations" 0 (List.length viols);
  check Alcotest.bool "cycle reclaimed" true (System.goal_reached sys)

let test_incremental_reclaim_verdict () =
  let sys, viols = run_exn Scenarios.two_proc_cycle_incremental Scenarios.reclaim_trail in
  check Alcotest.int "no violations" 0 (List.length viols);
  check Alcotest.bool "cycle reclaimed under incremental candidates" true
    (System.goal_reached sys)

(* Byte-identity at the mc level: the same trail drives the scan-mode
   and incremental-mode systems to the same canonical state digest
   (heaps, tables, summaries, in-flight messages). *)
let test_incremental_fingerprint_parity () =
  let fp scenario =
    let sys, _ = run_exn scenario Scenarios.reclaim_trail in
    System.fingerprint sys
  in
  check Alcotest.string "scan and incremental runs converge to the same state"
    (fp Scenarios.two_proc_cycle)
    (fp Scenarios.two_proc_cycle_incremental)

let test_grouped_reclaim_verdict () =
  let sys, viols = run_exn Scenarios.grouped_cycle Scenarios.grouped_reclaim_trail in
  check Alcotest.int "no violations" 0 (List.length viols);
  check Alcotest.bool "cycle reclaimed through the group relays" true
    (System.goal_reached sys)

let test_lost_cdm_verdict () =
  let sys, viols =
    run_exn ~caps:Scenarios.lost_cdm_caps Scenarios.two_proc_cycle Scenarios.lost_cdm_trail
  in
  check Alcotest.int "no violations" 0 (List.length viols);
  check Alcotest.bool "reclaimed despite the lost CDM" true (System.goal_reached sys)

let test_stale_witness_unmutated_verdict () =
  let sys, viols =
    run_exn ~caps:Scenarios.stale_witness_caps Scenarios.two_proc_cycle
      Scenarios.stale_witness_trail
  in
  check Alcotest.int "no violations" 0 (List.length viols);
  check Alcotest.bool "later snapshot supersedes the stale one" true (System.goal_reached sys)

let test_ic_race_settled_reclaims () =
  let sys, viols = run_exn Scenarios.ic_race Scenarios.ic_race_reclaim_trail in
  check Alcotest.int "no violations" 0 (List.length viols);
  check Alcotest.bool "settled counters allow the reclaim" true (System.goal_reached sys)

let test_ic_race_in_flight_aborts () =
  let sys, viols = run_exn Scenarios.ic_race Scenarios.ic_race_abort_trail in
  check Alcotest.int "no violations" 0 (List.length viols);
  (* Safety rule 3: the CDM carrying the bumped stub counter aborts at
     delivery, so the (live) cycle survives both local collections. *)
  check Alcotest.bool "no reclamation" false (System.goal_reached sys)

(* ------------------------------------------------------------------ *)
(* Determinism: a trail is a pure function of the initial scenario. *)

let test_replay_deterministic () =
  let fp trail =
    let sys, _ = run_exn Scenarios.two_proc_cycle trail in
    System.fingerprint sys
  in
  check Alcotest.string "same trail, same state" (fp Scenarios.reclaim_trail)
    (fp Scenarios.reclaim_trail)

let test_fingerprint_sensitive () =
  let fp trail =
    let sys, _ = run_exn Scenarios.two_proc_cycle trail in
    System.fingerprint sys
  in
  check Alcotest.bool "prefix differs from full trail" true
    (fp [ Action.Mutate 0 ] <> fp Scenarios.reclaim_trail)

(* ------------------------------------------------------------------ *)
(* The mutation gauntlet. *)

let test_gauntlet () =
  check Alcotest.int "nine mutants" 9 (List.length Mutants.all);
  List.iter
    (fun (e : Mutants.entry) ->
      let o = Mutants.run_entry e in
      check Alcotest.bool (e.Mutants.mutant ^ " caught") true o.Mutants.caught;
      check Alcotest.bool (e.Mutants.mutant ^ " deterministic") true o.Mutants.deterministic;
      check Alcotest.bool
        (e.Mutants.mutant ^ " minimized no longer than witness")
        true
        (List.length o.Mutants.minimized <= List.length e.Mutants.witness);
      check Alcotest.bool (e.Mutants.mutant ^ " minimized non-empty") true
        (o.Mutants.minimized <> []);
      (* The packaged trace must reproduce through the public replay
         path — the same code `adgc_sim mc --replay` runs. *)
      match Trace.replay (Mutants.trace_of o) with
      | Trace.Reproduced -> ()
      | Trace.Failed reason -> Alcotest.failf "%s: trace replay failed: %s" e.Mutants.mutant reason)
    Mutants.all

(* ------------------------------------------------------------------ *)
(* Trace files. *)

let sample_trace () =
  {
    Trace.scenario = "two_proc_cycle";
    mutant = None;
    expect = Trace.Violation;
    caps = Some Scenarios.lost_cdm_caps;
    violations = [ "live_reclaimed: ..." ];
    trail = Scenarios.reclaim_trail;
  }

let test_trace_json_roundtrip () =
  let t = sample_trace () in
  match Trace.of_json (Trace.to_json t) with
  | Ok t' -> check Alcotest.bool "roundtrip" true (t = t')
  | Error e -> Alcotest.failf "decode failed: %s" e

let test_trace_file_roundtrip () =
  let t = sample_trace () in
  let path = Filename.temp_file "adgc_mc_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.save path t;
      match Trace.load path with
      | Ok t' -> check Alcotest.bool "file roundtrip" true (t = t')
      | Error e -> Alcotest.failf "load failed: %s" e)

let test_trace_rejects_junk () =
  match Trace.of_json (Adgc_util.Json.Str "nope") with
  | Ok _ -> Alcotest.fail "accepted junk"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Swarm smoke: randomized walks over the clean build find nothing. *)

let test_swarm_clean () =
  match
    Explore.swarm ~seeds:(List.init 16 (fun i -> 1000 + i)) ~steps:30 Scenarios.two_proc_cycle
  with
  | None -> ()
  | Some (seed, _, viols) ->
      Alcotest.failf "swarm seed %d violated: %s" seed (String.concat "; " viols)

let suite =
  ( "mc",
    [
      Alcotest.test_case "exhaustive: two_proc_cycle clean" `Slow test_exhaustive_two_proc_cycle;
      Alcotest.test_case "exhaustive: two_proc_cycle_incremental clean" `Slow
        test_exhaustive_incremental;
      Alcotest.test_case "exhaustive: ic_race clean" `Slow test_exhaustive_ic_race;
      Alcotest.test_case "exhaustive: external_holder clean" `Slow
        test_exhaustive_external_holder;
      Alcotest.test_case "exhaustive: export_handshake clean" `Slow
        test_exhaustive_export_handshake;
      Alcotest.test_case "exhaustive: grouped_cycle clean" `Slow test_exhaustive_grouped_cycle;
      Alcotest.test_case "verdict: cycle reclaimed" `Quick test_reclaim_verdict;
      Alcotest.test_case "verdict: grouped cycle reclaimed" `Quick test_grouped_reclaim_verdict;
      Alcotest.test_case "verdict: incremental candidates reclaim" `Quick
        test_incremental_reclaim_verdict;
      Alcotest.test_case "fingerprint parity: scan vs incremental" `Quick
        test_incremental_fingerprint_parity;
      Alcotest.test_case "verdict: lost CDM retried" `Quick test_lost_cdm_verdict;
      Alcotest.test_case "verdict: stale snapshot superseded" `Quick
        test_stale_witness_unmutated_verdict;
      Alcotest.test_case "verdict: settled IC race reclaims" `Quick
        test_ic_race_settled_reclaims;
      Alcotest.test_case "verdict: in-flight IC race aborts" `Quick
        test_ic_race_in_flight_aborts;
      Alcotest.test_case "replay is deterministic" `Quick test_replay_deterministic;
      Alcotest.test_case "fingerprint distinguishes states" `Quick test_fingerprint_sensitive;
      Alcotest.test_case "mutation gauntlet" `Slow test_gauntlet;
      Alcotest.test_case "trace json roundtrip" `Quick test_trace_json_roundtrip;
      Alcotest.test_case "trace file roundtrip" `Quick test_trace_file_roundtrip;
      Alcotest.test_case "trace rejects junk" `Quick test_trace_rejects_junk;
      Alcotest.test_case "swarm finds nothing on the clean build" `Slow test_swarm_clean;
    ] )
