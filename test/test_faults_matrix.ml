(* The fault matrix: every adversarial delivery regime × seeds ×
   detectors, each cell driven through the whole-system oracle.

   Each cell builds a garbage distributed cycle (the detector's job),
   a rooted cycle (the safety bait — reclaiming any of it is a bug)
   and application churn, then runs with the regime's fault plan
   active until its quiescence point.  Safety must hold throughout —
   the oracle checks ground truth at every sweep and the structural
   invariants every window — and once faults stop, everything that is
   garbage at that instant must actually be reclaimed (liveness).

   `ADGC_FAULT_SMOKE=1` trims the sweep to one seed per cell for CI;
   a failing cell prints its (profile, detector, seed) triple, which
   together with the plan replays the identical run. *)

open Adgc_workload
module Sim = Adgc.Sim
module Config = Adgc.Config
module Cluster = Adgc_rt.Cluster
module Faults = Adgc_rt.Faults
module Heap = Adgc_rt.Heap
module Oid = Adgc_algebra.Oid
module Oracle = Adgc_check.Oracle
module Stats = Adgc_util.Stats
module Rng = Adgc_util.Rng

let check = Alcotest.check

let smoke = Sys.getenv_opt "ADGC_FAULT_SMOKE" <> None

let seeds = if smoke then [ 11 ] else [ 11; 23; 47 ]

let fault_start = 4_000

let fault_stop = 18_000

let detector_name = function
  | Config.Dcda -> "dcda"
  | Config.Backtrack -> "backtrack"
  | Config.Hughes_gc -> "hughes"
  | Config.No_detector -> "none"

let live_ring_intact cluster (built : Topology.built) =
  List.for_all
    (fun (_, (obj : Heap.obj)) ->
      let p = Cluster.proc cluster (Adgc_algebra.Proc_id.to_int (Oid.owner obj.Heap.oid)) in
      Heap.mem p.Adgc_rt.Process.heap obj.Heap.oid)
    built.Topology.objects

let run_cell ~profile ~detector ?(candidates = Config.Scan_candidates) ~seed () =
  let n_procs = 4 in
  let faults = Faults.plan_of_profile ~start:fault_start ~stop:fault_stop ~n_procs profile in
  let config = Config.quick ~seed ~n_procs () in
  let config = { config with Config.detector; candidates; faults } in
  let sim = Sim.create ~config () in
  let cluster = Sim.cluster sim in
  let oracle = Oracle.install ~window:500 cluster in
  let _garbage = Topology.ring cluster ~procs:[ 0; 1; 2; 3 ] in
  (* Safety bait: a rooted cycle the detector must leave alone.  The
     churn may legitimately unroot it mid-run (making it genuine
     garbage), so the arbiter of "was anything live reclaimed" is the
     oracle's ground-truth pre-sweep check, not a final presence
     assertion — see test_duplicate_reorder_combined for the
     churn-free version of that. *)
  let _live = Topology.rooted_ring cluster ~procs:[ 0; 2 ] in
  let churn = Churn.create ~cluster ~rng:(Rng.create (seed + 9)) () in
  (* 150 actions, one every 47 ticks: the workload quiesces (~7k)
     well before the faults do, so the liveness baseline is stable. *)
  Churn.run churn ~steps:150 ~every:47;
  Sim.start sim;
  Sim.run_for sim (fault_stop + 2_000);
  Oracle.assert_safe oracle;
  (match profile with
  | Faults.Duplicate ->
      Alcotest.(check bool)
        "duplicates were delivered and ignored" true
        (Stats.get (Sim.stats sim) "net.msg.duplicate_ignored" > 0)
  | Faults.Loss_burst | Faults.Reorder | Faults.Partition_heal | Faults.Crash_restart -> ());
  (* Fault quiescence: everything garbage now must go away. *)
  (match Oracle.check_liveness ~step:2_000 ~max_ticks:900_000 oracle ~run:(Sim.run_for sim) with
  | Oracle.Converged _ -> ()
  | Oracle.Stuck _ as l ->
      Alcotest.failf "liveness after %s/%s/seed%d: %a" (Faults.profile_name profile)
        (detector_name detector) seed Oracle.pp_liveness l);
  Oracle.stop oracle;
  Oracle.assert_safe oracle;
  (* The candidate maintainer runs (and is audited) in every DCDA
     mode; a mismatch under faults is a label-maintenance bug.  Under
     crash/restart with incremental candidates the revive hook must
     have rebuilt the labels from the surviving tables — the
     stale-label resurrection regression: a restarted process that
     kept pre-crash labels would resurrect candidates for objects the
     crash already wiped. *)
  if detector = Config.Dcda then begin
    let stats = Sim.stats sim in
    Alcotest.(check bool) "candidate audits ran" true (Stats.get stats "dcda.candidates.audits" > 0);
    check Alcotest.int "no candidate audit mismatch" 0
      (Stats.get stats "dcda.candidates.audit_mismatch");
    match profile with
    | Faults.Crash_restart ->
        Alcotest.(check bool)
          "restart rebuilt the candidate labels" true
          (Stats.get stats "dcda.candidates.revive_rebuilds" > 0)
    | Faults.Loss_burst | Faults.Duplicate | Faults.Reorder | Faults.Partition_heal -> ()
  end

(* The acceptance scenario spelled out: duplication and reordering at
   once, replayed envelopes visibly suppressed, zero reclamations of
   anything live. *)
let test_duplicate_reorder_combined () =
  let n_procs = 4 in
  let dup_reorder =
    {
      Faults.none with
      Faults.default_link =
        { Faults.default_link with duplicate_prob = 0.3; reorder_prob = 0.5; reorder_skew = 200 };
      link_faults_until = Some fault_stop;
    }
  in
  let config = Config.quick ~seed:7 ~n_procs () in
  let config = { config with Config.faults = dup_reorder } in
  let sim = Sim.create ~config () in
  let cluster = Sim.cluster sim in
  let oracle = Oracle.install cluster in
  let _garbage = Topology.ring cluster ~procs:[ 0; 1; 2 ] in
  let live = Topology.rooted_ring cluster ~procs:[ 1; 3 ] in
  Sim.start sim;
  Sim.run_for sim (fault_stop + 2_000);
  let stats = Sim.stats sim in
  Alcotest.(check bool) "duplicates manufactured" true (Stats.get stats "net.msg.duplicated" > 0);
  Alcotest.(check bool)
    "replays suppressed" true
    (Stats.get stats "net.msg.duplicate_ignored" > 0);
  Alcotest.(check bool) "reordering happened" true (Stats.get stats "net.msg.reordered" > 0);
  (match Oracle.check_liveness ~max_ticks:600_000 oracle ~run:(Sim.run_for sim) with
  | Oracle.Converged _ -> ()
  | Oracle.Stuck _ as l -> Alcotest.failf "liveness: %a" Oracle.pp_liveness l);
  Oracle.stop oracle;
  Oracle.assert_safe oracle;
  check Alcotest.bool "live ring intact" true (live_ring_intact cluster live)

(* Partition bookkeeping: the scheduled cut drops cross-half traffic
   while it lasts, the heal restores it, and the stats record both. *)
let test_partition_stats () =
  let n_procs = 4 in
  let faults = Faults.plan_of_profile ~start:1_000 ~stop:5_000 ~n_procs Faults.Partition_heal in
  let config = Config.quick ~seed:3 ~n_procs () in
  let config = { config with Config.faults } in
  let sim = Sim.create ~config () in
  let _g = Topology.ring (Sim.cluster sim) ~procs:[ 0; 1; 2; 3 ] in
  Sim.start sim;
  Sim.run_for sim 20_000;
  let stats = Sim.stats sim in
  check Alcotest.int "partition armed" 1 (Stats.get stats "net.partitions");
  check Alcotest.int "partition healed" 1 (Stats.get stats "net.heals");
  Alcotest.(check bool)
    "cut traffic was dropped" true
    (Stats.get stats "net.msg.dropped.partition" > 0)

(* Crash-of-group-proxy: with the relay overlay on, kill the lowest
   rank of a group (its proxy) mid-run.  Flushes from and to that
   group must fail over to the next alive member (pure arithmetic, no
   handshake), safety must hold throughout, and once the proxy
   restarts everything garbage must still be reclaimed. *)
let test_group_proxy_crash () =
  let n_procs = 4 in
  let config = Config.quick ~seed:13 ~n_procs () in
  (* Groups of 2 over 4 ranks: {0,1} and {2,3}, proxies 0 and 2. *)
  let config = Config.with_groups config 2 in
  let sim = Sim.create ~config () in
  let cluster = Sim.cluster sim in
  let oracle = Oracle.install ~window:500 cluster in
  let _garbage = Topology.ring cluster ~procs:[ 0; 1; 2; 3 ] in
  let live = Topology.rooted_ring cluster ~procs:[ 1; 3 ] in
  let sched = Cluster.sched cluster in
  Adgc_rt.Scheduler.schedule_after sched ~delay:fault_start (fun () -> Cluster.crash cluster 0);
  Adgc_rt.Scheduler.schedule_after sched ~delay:fault_stop (fun () -> Cluster.restart cluster 0);
  Sim.start sim;
  Sim.run_for sim (fault_stop + 2_000);
  Oracle.assert_safe oracle;
  let stats = Sim.stats sim in
  Alcotest.(check bool) "relays flowed" true (Stats.get stats "group.relays" > 0);
  Alcotest.(check bool)
    "flushes failed over past the dead proxy" true
    (Stats.get stats "group.proxy_fallbacks" > 0);
  (match Oracle.check_liveness ~step:2_000 ~max_ticks:900_000 oracle ~run:(Sim.run_for sim) with
  | Oracle.Converged _ -> ()
  | Oracle.Stuck _ as l -> Alcotest.failf "liveness after proxy crash: %a" Oracle.pp_liveness l);
  Oracle.stop oracle;
  Oracle.assert_safe oracle;
  check Alcotest.bool "live ring intact" true (live_ring_intact cluster live)

let suite =
  (* Three detector columns: the DCDA under both candidate sources
     (the incremental maintainer must stay exact through every fault
     regime) and the backtracking baseline. *)
  let columns =
    [
      ("dcda", Config.Dcda, Config.Scan_candidates);
      ("dcda+inc", Config.Dcda, Config.Incremental_candidates);
      ("backtrack", Config.Backtrack, Config.Scan_candidates);
    ]
  in
  let cells =
    List.concat_map
      (fun (pname, profile) ->
        List.concat_map
          (fun (cname, detector, candidates) ->
            List.map
              (fun seed ->
                Alcotest.test_case
                  (Printf.sprintf "%s via %s, seed %d" pname cname seed)
                  `Slow
                  (run_cell ~profile ~detector ~candidates ~seed))
              seeds)
          columns)
      Faults.profiles
  in
  ( "faults-matrix",
    cells
    @ [
        Alcotest.test_case "duplicate+reorder shows suppression" `Quick
          test_duplicate_reorder_combined;
        Alcotest.test_case "partition cut and heal accounted" `Quick test_partition_stats;
        Alcotest.test_case "group proxy crash fails over and recovers" `Slow
          test_group_proxy_crash;
      ] )
