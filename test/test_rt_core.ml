(* Tests for the runtime substrate: heap, scheduler, network, and the
   stub/scion tables. *)

open Adgc_algebra
open Adgc_rt
module Rng = Adgc_util.Rng
module Stats = Adgc_util.Stats

let check = Alcotest.check

let p0 = Proc_id.of_int 0

let p1 = Proc_id.of_int 1

let oid p serial = Oid.make ~owner:(Proc_id.of_int p) ~serial

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_alloc () =
  let h = Heap.create ~owner:p0 in
  let a = Heap.alloc h and b = Heap.alloc h in
  check Alcotest.bool "distinct oids" false (Oid.equal a.Heap.oid b.Heap.oid);
  check Alcotest.int "size" 2 (Heap.size h);
  check Alcotest.bool "mem" true (Heap.mem h a.Heap.oid);
  check Alcotest.bool "owner" true (Proc_id.equal (Oid.owner a.Heap.oid) p0)

let test_heap_fields () =
  let h = Heap.create ~owner:p0 in
  let a = Heap.alloc ~fields:2 h and b = Heap.alloc h in
  Heap.set_field h a 0 (Some b.Heap.oid);
  check (Alcotest.option Alcotest.bool) "slot set" (Some true)
    (Option.map (fun o -> Oid.equal o b.Heap.oid) a.Heap.fields.(0));
  Alcotest.check_raises "out of range"
    (Invalid_argument
       (Format.asprintf "Heap.set_field: slot 9 out of range for %a" Oid.pp a.Heap.oid))
    (fun () -> Heap.set_field h a 9 None)

let test_heap_add_ref_grows () =
  let h = Heap.create ~owner:p0 in
  let a = Heap.alloc ~fields:1 h in
  let targets = List.init 5 (fun _ -> (Heap.alloc h).Heap.oid) in
  List.iter (fun t -> ignore (Heap.add_ref h a t : int)) targets;
  let held = Array.to_list a.Heap.fields |> List.filter_map (fun f -> f) in
  check Alcotest.int "all stored" 5 (List.length held)

let test_heap_remove_ref () =
  let h = Heap.create ~owner:p0 in
  let a = Heap.alloc h and b = Heap.alloc h in
  ignore (Heap.add_ref h a b.Heap.oid : int);
  check Alcotest.bool "removed" true (Heap.remove_ref h a b.Heap.oid);
  check Alcotest.bool "gone" false (Heap.remove_ref h a b.Heap.oid)

let test_heap_roots () =
  let h = Heap.create ~owner:p0 in
  let a = Heap.alloc h in
  Heap.add_root h a.Heap.oid;
  check Alcotest.bool "is root" true (Heap.is_root h a.Heap.oid);
  check Alcotest.int "roots" 1 (List.length (Heap.roots h));
  Heap.remove_root h a.Heap.oid;
  check Alcotest.bool "removed" false (Heap.is_root h a.Heap.oid);
  Alcotest.check_raises "foreign root"
    (Invalid_argument
       (Format.asprintf "Heap.add_root: %a is not local to %a" Oid.pp (oid 1 0) Proc_id.pp p0))
    (fun () -> Heap.add_root h (oid 1 0))

let test_heap_trace_chain () =
  let h = Heap.create ~owner:p0 in
  let a = Heap.alloc h and b = Heap.alloc h and c = Heap.alloc h in
  let orphan = Heap.alloc h in
  ignore (Heap.add_ref h a b.Heap.oid : int);
  ignore (Heap.add_ref h b c.Heap.oid : int);
  let { Heap.local; remote } = Heap.trace h ~from:[ a.Heap.oid ] in
  check Alcotest.int "three reached" 3 (Oid.Set.cardinal local);
  check Alcotest.bool "orphan not reached" false (Oid.Set.mem orphan.Heap.oid local);
  check Alcotest.int "no remote" 0 (Oid.Set.cardinal remote)

let test_heap_trace_cycle_terminates () =
  let h = Heap.create ~owner:p0 in
  let a = Heap.alloc h and b = Heap.alloc h in
  ignore (Heap.add_ref h a b.Heap.oid : int);
  ignore (Heap.add_ref h b a.Heap.oid : int);
  let { Heap.local; _ } = Heap.trace h ~from:[ a.Heap.oid ] in
  check Alcotest.int "both" 2 (Oid.Set.cardinal local)

let test_heap_trace_remote_frontier () =
  let h = Heap.create ~owner:p0 in
  let a = Heap.alloc h in
  ignore (Heap.add_ref h a (oid 1 7) : int);
  ignore (Heap.add_ref h a (oid 2 3) : int);
  let { Heap.local; remote } = Heap.trace h ~from:[ a.Heap.oid ] in
  check Alcotest.int "one local" 1 (Oid.Set.cardinal local);
  check Alcotest.int "two remote" 2 (Oid.Set.cardinal remote)

let test_heap_trace_dangling_local () =
  let h = Heap.create ~owner:p0 in
  let a = Heap.alloc h and b = Heap.alloc h in
  ignore (Heap.add_ref h a b.Heap.oid : int);
  Heap.remove h b.Heap.oid;
  let { Heap.local; remote } = Heap.trace h ~from:[ a.Heap.oid ] in
  check Alcotest.int "dangling ignored" 1 (Oid.Set.cardinal local);
  check Alcotest.int "not remote either" 0 (Oid.Set.cardinal remote)

let test_heap_trace_from_absent () =
  let h = Heap.create ~owner:p0 in
  let { Heap.local; _ } = Heap.trace h ~from:[ oid 0 99 ] in
  check Alcotest.int "nothing" 0 (Oid.Set.cardinal local)

(* ------------------------------------------------------------------ *)
(* Scheduler *)

let test_sched_ordering () =
  let s = Scheduler.create () in
  let log = ref [] in
  Scheduler.schedule_at s ~time:30 (fun () -> log := 30 :: !log);
  Scheduler.schedule_at s ~time:10 (fun () -> log := 10 :: !log);
  Scheduler.schedule_at s ~time:20 (fun () -> log := 20 :: !log);
  ignore (Scheduler.drain s : int);
  check (Alcotest.list Alcotest.int) "time order" [ 10; 20; 30 ] (List.rev !log);
  check Alcotest.int "clock at last event" 30 (Scheduler.now s)

let test_sched_same_time_fifo () =
  let s = Scheduler.create () in
  let log = ref [] in
  List.iter
    (fun tag -> Scheduler.schedule_at s ~time:5 (fun () -> log := tag :: !log))
    [ "a"; "b"; "c" ];
  ignore (Scheduler.drain s : int);
  check (Alcotest.list Alcotest.string) "fifo" [ "a"; "b"; "c" ] (List.rev !log)

let test_sched_run_until () =
  let s = Scheduler.create () in
  let fired = ref 0 in
  Scheduler.schedule_at s ~time:10 (fun () -> incr fired);
  Scheduler.schedule_at s ~time:20 (fun () -> incr fired);
  Scheduler.run_until s ~time:15;
  check Alcotest.int "only first" 1 !fired;
  check Alcotest.int "clock advanced to 15" 15 (Scheduler.now s);
  Scheduler.run_until s ~time:100;
  check Alcotest.int "second fired" 2 !fired;
  check Alcotest.int "clock 100 even when idle" 100 (Scheduler.now s)

let test_sched_nested_scheduling () =
  let s = Scheduler.create () in
  let log = ref [] in
  Scheduler.schedule_at s ~time:1 (fun () ->
      log := "outer" :: !log;
      Scheduler.schedule_after s ~delay:1 (fun () -> log := "inner" :: !log));
  ignore (Scheduler.drain s : int);
  check (Alcotest.list Alcotest.string) "nested" [ "outer"; "inner" ] (List.rev !log)

let test_sched_past_rejected () =
  let s = Scheduler.create () in
  Scheduler.schedule_at s ~time:10 (fun () -> ());
  ignore (Scheduler.drain s : int);
  Alcotest.check_raises "past" (Invalid_argument "Scheduler.schedule_at: time is in the past")
    (fun () -> Scheduler.schedule_at s ~time:5 (fun () -> ()))

let test_sched_recurring () =
  let s = Scheduler.create () in
  let fired = ref 0 in
  let handle = Scheduler.every s ~period:10 (fun () -> incr fired) in
  Scheduler.run_until s ~time:35;
  check Alcotest.int "three firings" 3 !fired;
  Scheduler.cancel handle;
  Scheduler.run_until s ~time:100;
  check Alcotest.int "cancelled" 3 !fired

let test_sched_recurring_phase () =
  let s = Scheduler.create () in
  let times = ref [] in
  let handle = Scheduler.every s ~phase:3 ~period:10 (fun () -> times := Scheduler.now s :: !times) in
  Scheduler.run_until s ~time:25;
  Scheduler.cancel handle;
  check (Alcotest.list Alcotest.int) "phase then period" [ 3; 13; 23 ] (List.rev !times)

let test_sched_drain_limit () =
  let s = Scheduler.create () in
  (* A self-perpetuating event: drain must stop at the limit. *)
  let rec again () = Scheduler.schedule_after s ~delay:1 again in
  again ();
  let n = Scheduler.drain ~limit:50 s in
  check Alcotest.int "stopped at limit" 50 n

(* ------------------------------------------------------------------ *)
(* Network *)

let mk_net ?(drop = 0.0) ?(lat_min = 5) ?(lat_max = 25) () =
  let sched = Scheduler.create () in
  let stats = Stats.create () in
  let config = Network.default_config () in
  config.Network.drop_prob <- drop;
  config.Network.latency_min <- lat_min;
  config.Network.latency_max <- lat_max;
  let net = Network.create ~sched ~rng:(Rng.create 1) ~stats ~config () in
  (sched, stats, net)

let probe_msg () = Msg.make ~src:p0 ~dst:p1 ~sent_at:0 Msg.Scion_probe

let test_net_delivers () =
  let sched, _, net = mk_net () in
  let got = ref 0 in
  Network.set_deliver net (fun _ -> incr got);
  Network.send net (probe_msg ());
  check Alcotest.int "in flight" 1 (Network.in_flight_count net);
  ignore (Scheduler.drain sched : int);
  check Alcotest.int "delivered" 1 !got;
  check Alcotest.int "no longer in flight" 0 (Network.in_flight_count net)

let test_net_latency_bounds () =
  let sched, _, net = mk_net ~lat_min:7 ~lat_max:9 () in
  let times = ref [] in
  Network.set_deliver net (fun _ -> times := Scheduler.now sched :: !times);
  for _ = 1 to 50 do
    Network.send net (probe_msg ())
  done;
  ignore (Scheduler.drain sched : int);
  List.iter
    (fun t -> if t < 7 || t > 9 then Alcotest.failf "latency out of bounds: %d" t)
    !times

let test_net_drop_all () =
  let sched, stats, net = mk_net ~drop:1.0 () in
  Network.set_deliver net (fun _ -> Alcotest.fail "should not deliver");
  for _ = 1 to 10 do
    Network.send net (probe_msg ())
  done;
  ignore (Scheduler.drain sched : int);
  check Alcotest.int "all dropped" 10 (Stats.get stats "net.msg.dropped")

let test_net_drop_rate () =
  let sched, stats, net = mk_net ~drop:0.3 () in
  Network.set_deliver net (fun _ -> ());
  let n = 5_000 in
  for _ = 1 to n do
    Network.send net (probe_msg ())
  done;
  ignore (Scheduler.drain sched : int);
  let dropped = Stats.get stats "net.msg.dropped" in
  let rate = float_of_int dropped /. float_of_int n in
  check Alcotest.bool "rate near 0.3" true (rate > 0.25 && rate < 0.35)

let test_net_block_link () =
  let sched, stats, net = mk_net () in
  let got = ref 0 in
  Network.set_deliver net (fun _ -> incr got);
  Network.block_link net p0 p1;
  Network.send net (probe_msg ());
  (* Reverse direction unaffected. *)
  Network.send net (Msg.make ~src:p1 ~dst:p0 ~sent_at:0 Msg.Scion_probe);
  ignore (Scheduler.drain sched : int);
  check Alcotest.int "one through" 1 !got;
  check Alcotest.int "one dropped" 1 (Stats.get stats "net.msg.dropped");
  Network.unblock_link net p0 p1;
  Network.send net (probe_msg ());
  ignore (Scheduler.drain sched : int);
  check Alcotest.int "unblocked" 2 !got

let test_net_byte_accounting () =
  let sched, stats, net = mk_net () in
  Network.config net |> fun c ->
  c.Network.account_bytes <- true;
  Network.set_deliver net (fun _ -> ());
  Network.send net (probe_msg ());
  ignore (Scheduler.drain sched : int);
  check Alcotest.bool "bytes recorded" true (Stats.get stats "net.bytes" > 0);
  check Alcotest.bool "per kind" true (Stats.get stats "net.bytes.scion_probe" > 0)

let test_net_counters_by_kind () =
  let sched, stats, net = mk_net () in
  Network.set_deliver net (fun _ -> ());
  Network.send net (probe_msg ());
  ignore (Scheduler.drain sched : int);
  check Alcotest.int "sent.kind" 1 (Stats.get stats "net.msg.sent.scion_probe");
  check Alcotest.int "delivered" 1 (Stats.get stats "net.msg.delivered")

(* ------------------------------------------------------------------ *)
(* Stub table *)

let test_stub_ensure_and_flags () =
  let t = Stub_table.create ~owner:p0 in
  let target = oid 1 0 in
  let e = Stub_table.ensure t ~now:5 target in
  check Alcotest.bool "fresh" true e.Stub_table.fresh;
  check Alcotest.bool "live" true e.Stub_table.live;
  check Alcotest.int "created_at" 5 e.Stub_table.created_at;
  let e2 = Stub_table.ensure t ~now:9 target in
  check Alcotest.int "same entry" 5 e2.Stub_table.created_at;
  Alcotest.check_raises "local target"
    (Invalid_argument
       (Format.asprintf "Stub_table.ensure: %a is local to %a" Oid.pp (oid 0 0) Proc_id.pp p0))
    (fun () -> ignore (Stub_table.ensure t ~now:0 (oid 0 0)))

let test_stub_ic () =
  let t = Stub_table.create ~owner:p0 in
  let target = oid 1 0 in
  ignore (Stub_table.ensure t ~now:0 target);
  check Alcotest.int "bump" 1 (Stub_table.bump_ic t target);
  check Alcotest.int "bump again" 2 (Stub_table.bump_ic t target);
  check (Alcotest.option Alcotest.int) "read" (Some 2) (Stub_table.ic t target)

let test_stub_sweep_lifecycle () =
  let t = Stub_table.create ~owner:p0 in
  let target = oid 1 0 in
  ignore (Stub_table.ensure t ~now:0 target);
  (* Fresh entries survive a sweep even when dead... *)
  Stub_table.mark_all_dead t;
  check Alcotest.int "fresh survives" 0 (List.length (Stub_table.sweep t));
  (* ...and are advertised once. *)
  check Alcotest.int "advertised" 1 (List.length (Stub_table.advertised t));
  Stub_table.clear_fresh t;
  (* Now dead and not fresh: swept. *)
  Stub_table.mark_all_dead t;
  check Alcotest.int "swept" 1 (List.length (Stub_table.sweep t));
  check Alcotest.bool "gone" false (Stub_table.mem t target)

let test_stub_live_survives () =
  let t = Stub_table.create ~owner:p0 in
  let target = oid 1 0 in
  ignore (Stub_table.ensure t ~now:0 target);
  Stub_table.clear_fresh t;
  Stub_table.mark_all_dead t;
  Stub_table.mark_live t target;
  check Alcotest.int "live survives" 0 (List.length (Stub_table.sweep t))

let test_stub_pins_survive () =
  let t = Stub_table.create ~owner:p0 in
  let target = oid 1 0 in
  Stub_table.pin t ~now:0 target;
  Stub_table.clear_fresh t;
  Stub_table.mark_all_dead t;
  check Alcotest.int "pinned survives" 0 (List.length (Stub_table.sweep t));
  Stub_table.unpin t target;
  Stub_table.mark_all_dead t;
  check Alcotest.int "unpinned swept" 1 (List.length (Stub_table.sweep t))

let test_stub_pin_counts () =
  let t = Stub_table.create ~owner:p0 in
  let target = oid 1 0 in
  Stub_table.pin t ~now:0 target;
  Stub_table.pin t ~now:0 target;
  Stub_table.unpin t target;
  Stub_table.clear_fresh t;
  Stub_table.mark_all_dead t;
  check Alcotest.int "still one pin" 0 (List.length (Stub_table.sweep t))

(* ------------------------------------------------------------------ *)
(* Scion table *)

let key src target = Ref_key.make ~src:(Proc_id.of_int src) ~target

let test_scion_ensure_checks () =
  let t = Scion_table.create ~owner:p0 in
  ignore (Scion_table.ensure t ~now:0 (key 1 (oid 0 0)));
  Alcotest.check_raises "not owner"
    (Invalid_argument
       (Format.asprintf "Scion_table.ensure: %a not owned by %a" Ref_key.pp (key 1 (oid 2 0))
          Proc_id.pp p0))
    (fun () -> ignore (Scion_table.ensure t ~now:0 (key 1 (oid 2 0))));
  Alcotest.check_raises "self ref"
    (Invalid_argument
       (Format.asprintf "Scion_table.ensure: self-reference %a" Ref_key.pp (key 0 (oid 0 0))))
    (fun () -> ignore (Scion_table.ensure t ~now:0 (key 0 (oid 0 0))))

let test_scion_ic_and_last_invoked () =
  let t = Scion_table.create ~owner:p0 in
  let k = key 1 (oid 0 0) in
  ignore (Scion_table.ensure t ~now:0 k);
  Scion_table.observe_invocation t ~now:42 k ~stub_ic:1;
  (match Scion_table.find t k with
  | Some e ->
      check Alcotest.int "adopted counter" 1 e.Scion_table.ic;
      check Alcotest.int "last_invoked" 42 e.Scion_table.last_invoked
  | None -> Alcotest.fail "entry vanished");
  (* Heard values only move forward. *)
  Scion_table.observe_invocation t ~now:50 k ~stub_ic:1;
  check (Alcotest.option Alcotest.int) "idempotent" (Some 1) (Scion_table.ic t k);
  Scion_table.observe_invocation t ~now:60 k ~stub_ic:5;
  check (Alcotest.option Alcotest.int) "jumps to heard value" (Some 5) (Scion_table.ic t k)

let set_of l = List.fold_left (fun m o -> Oid.Map.add o 0 m) Oid.Map.empty l

let test_scion_new_set_confirm_then_delete () =
  let t = Scion_table.create ~owner:p0 in
  let k = key 1 (oid 0 0) in
  ignore (Scion_table.ensure t ~now:0 k);
  (* A set that excludes the target cannot kill an unconfirmed scion. *)
  let r1 = Scion_table.apply_new_set t ~now:1 ~src:p1 ~seqno:0 ~targets:Oid.Map.empty in
  check Alcotest.int "unconfirmed protected" 0 (List.length r1.Scion_table.deleted);
  check Alcotest.bool "still there" true (Scion_table.mem t k);
  (* A set that includes it confirms. *)
  let r2 = Scion_table.apply_new_set t ~now:2 ~src:p1 ~seqno:1 ~targets:(set_of [ oid 0 0 ]) in
  check Alcotest.int "nothing deleted" 0 (List.length r2.Scion_table.deleted);
  (* Now exclusion deletes. *)
  let r3 = Scion_table.apply_new_set t ~now:3 ~src:p1 ~seqno:2 ~targets:Oid.Map.empty in
  check Alcotest.int "deleted" 1 (List.length r3.Scion_table.deleted);
  check Alcotest.bool "gone" false (Scion_table.mem t k)

let test_scion_stale_seqno_ignored () =
  let t = Scion_table.create ~owner:p0 in
  let k = key 1 (oid 0 0) in
  ignore (Scion_table.ensure t ~now:0 k);
  ignore (Scion_table.apply_new_set t ~now:1 ~src:p1 ~seqno:5 ~targets:(set_of [ oid 0 0 ]));
  (* An old (reordered) empty set must not delete. *)
  let r = Scion_table.apply_new_set t ~now:2 ~src:p1 ~seqno:3 ~targets:Oid.Map.empty in
  check Alcotest.bool "stale" true r.Scion_table.stale;
  check Alcotest.bool "survives reorder" true (Scion_table.mem t k)

let test_scion_unknown_reported () =
  let t = Scion_table.create ~owner:p0 in
  let r = Scion_table.apply_new_set t ~now:0 ~src:p1 ~seqno:0 ~targets:(set_of [ oid 0 7 ]) in
  check Alcotest.int "unknown" 1 (List.length r.Scion_table.unknown)

let test_scion_other_src_untouched () =
  let t = Scion_table.create ~owner:p0 in
  let k1 = key 1 (oid 0 0) and k2 = key 2 (oid 0 0) in
  ignore (Scion_table.ensure t ~now:0 k1);
  ignore (Scion_table.ensure t ~now:0 k2);
  ignore (Scion_table.apply_new_set t ~now:1 ~src:p1 ~seqno:0 ~targets:(set_of [ oid 0 0 ]));
  (* Deleting via P1's sets never touches P2's scion. *)
  ignore (Scion_table.apply_new_set t ~now:2 ~src:p1 ~seqno:1 ~targets:Oid.Map.empty);
  check Alcotest.bool "P1 scion gone" false (Scion_table.mem t k1);
  check Alcotest.bool "P2 scion intact" true (Scion_table.mem t k2)

let test_scion_tombstone_blocks_heal () =
  let t = Scion_table.create ~owner:p0 in
  let k = key 1 (oid 0 0) in
  ignore (Scion_table.ensure t ~now:0 k);
  ignore (Scion_table.delete ~tombstone:true t k);
  check Alcotest.bool "tombstoned" true (Scion_table.tombstoned t k);
  (* Holder still advertises the target: not reported unknown (no
     heal), tombstone stays. *)
  let r = Scion_table.apply_new_set t ~now:1 ~src:p1 ~seqno:0 ~targets:(set_of [ oid 0 0 ]) in
  check Alcotest.int "no unknown" 0 (List.length r.Scion_table.unknown);
  check Alcotest.bool "still tombstoned" true (Scion_table.tombstoned t k);
  (* Holder stops advertising: tombstone dissolves. *)
  ignore (Scion_table.apply_new_set t ~now:2 ~src:p1 ~seqno:1 ~targets:Oid.Map.empty);
  check Alcotest.bool "dissolved" false (Scion_table.tombstoned t k);
  (* A later re-export may legitimately recreate the scion. *)
  let r =
    Scion_table.apply_new_set t ~now:3 ~src:p1 ~seqno:2 ~targets:(set_of [ oid 0 0 ])
  in
  check Alcotest.int "heal allowed again" 1 (List.length r.Scion_table.unknown)

let test_scion_grace_expires_lost_export () =
  let t = Scion_table.create ~owner:p0 in
  let k = key 1 (oid 0 0) in
  ignore (Scion_table.ensure t ~now:0 k);
  (* Within the grace period an excluding set keeps the scion. *)
  let r = Scion_table.apply_new_set ~grace:100 t ~now:50 ~src:p1 ~seqno:0 ~targets:Oid.Map.empty in
  check Alcotest.int "protected within grace" 0 (List.length r.Scion_table.deleted);
  (* Past the grace period it is reclaimed. *)
  let r =
    Scion_table.apply_new_set ~grace:100 t ~now:200 ~src:p1 ~seqno:1 ~targets:Oid.Map.empty
  in
  check Alcotest.int "expired" 1 (List.length r.Scion_table.deleted);
  check Alcotest.bool "gone" false (Scion_table.mem t k)

let test_scion_idle_sources () =
  let t = Scion_table.create ~owner:p0 in
  ignore (Scion_table.ensure t ~now:0 (key 1 (oid 0 0)));
  ignore (Scion_table.ensure t ~now:90 (key 2 (oid 0 1)));
  (* P1 last heard at creation (0); P2 at 90. *)
  let idle = Scion_table.idle_sources t ~now:100 ~threshold:50 in
  check Alcotest.int "only P1 idle" 1 (List.length idle);
  check Alcotest.bool "it is P1" true (Proc_id.equal (List.hd idle) p1);
  (* A set arrival resets the clock. *)
  ignore (Scion_table.apply_new_set t ~now:100 ~src:p1 ~seqno:0 ~targets:(set_of [ oid 0 0 ]));
  check Alcotest.int "none idle" 0
    (List.length (Scion_table.idle_sources t ~now:120 ~threshold:50))

let test_scion_protected_targets () =
  let t = Scion_table.create ~owner:p0 in
  ignore (Scion_table.ensure t ~now:0 (key 1 (oid 0 0)));
  ignore (Scion_table.ensure t ~now:0 (key 2 (oid 0 0)));
  ignore (Scion_table.ensure t ~now:0 (key 1 (oid 0 1)));
  check Alcotest.int "distinct targets" 2 (List.length (Scion_table.protected_targets t))

let test_scion_drop_for_targets () =
  let t = Scion_table.create ~owner:p0 in
  ignore (Scion_table.ensure t ~now:0 (key 1 (oid 0 0)));
  ignore (Scion_table.ensure t ~now:0 (key 2 (oid 0 0)));
  ignore (Scion_table.ensure t ~now:0 (key 1 (oid 0 1)));
  check Alcotest.int "dropped both" 2 (Scion_table.drop_for_targets t (Oid.Set.singleton (oid 0 0)));
  check Alcotest.int "one left" 1 (Scion_table.size t)

let suite =
  ( "rt-core",
    [
      Alcotest.test_case "heap: alloc" `Quick test_heap_alloc;
      Alcotest.test_case "heap: fields" `Quick test_heap_fields;
      Alcotest.test_case "heap: add_ref grows" `Quick test_heap_add_ref_grows;
      Alcotest.test_case "heap: remove_ref" `Quick test_heap_remove_ref;
      Alcotest.test_case "heap: roots" `Quick test_heap_roots;
      Alcotest.test_case "heap: trace chain" `Quick test_heap_trace_chain;
      Alcotest.test_case "heap: trace cycle terminates" `Quick test_heap_trace_cycle_terminates;
      Alcotest.test_case "heap: remote frontier" `Quick test_heap_trace_remote_frontier;
      Alcotest.test_case "heap: dangling ignored" `Quick test_heap_trace_dangling_local;
      Alcotest.test_case "heap: trace from absent" `Quick test_heap_trace_from_absent;
      Alcotest.test_case "sched: ordering" `Quick test_sched_ordering;
      Alcotest.test_case "sched: same-time FIFO" `Quick test_sched_same_time_fifo;
      Alcotest.test_case "sched: run_until" `Quick test_sched_run_until;
      Alcotest.test_case "sched: nested scheduling" `Quick test_sched_nested_scheduling;
      Alcotest.test_case "sched: past rejected" `Quick test_sched_past_rejected;
      Alcotest.test_case "sched: recurring" `Quick test_sched_recurring;
      Alcotest.test_case "sched: recurring phase" `Quick test_sched_recurring_phase;
      Alcotest.test_case "sched: drain limit" `Quick test_sched_drain_limit;
      Alcotest.test_case "net: delivers" `Quick test_net_delivers;
      Alcotest.test_case "net: latency bounds" `Quick test_net_latency_bounds;
      Alcotest.test_case "net: drop all" `Quick test_net_drop_all;
      Alcotest.test_case "net: drop rate" `Quick test_net_drop_rate;
      Alcotest.test_case "net: block link" `Quick test_net_block_link;
      Alcotest.test_case "net: byte accounting" `Quick test_net_byte_accounting;
      Alcotest.test_case "net: counters by kind" `Quick test_net_counters_by_kind;
      Alcotest.test_case "stub: ensure and flags" `Quick test_stub_ensure_and_flags;
      Alcotest.test_case "stub: invocation counter" `Quick test_stub_ic;
      Alcotest.test_case "stub: sweep lifecycle" `Quick test_stub_sweep_lifecycle;
      Alcotest.test_case "stub: live survives" `Quick test_stub_live_survives;
      Alcotest.test_case "stub: pins survive" `Quick test_stub_pins_survive;
      Alcotest.test_case "stub: pin counting" `Quick test_stub_pin_counts;
      Alcotest.test_case "scion: ensure checks" `Quick test_scion_ensure_checks;
      Alcotest.test_case "scion: ic and last_invoked" `Quick test_scion_ic_and_last_invoked;
      Alcotest.test_case "scion: confirm then delete" `Quick test_scion_new_set_confirm_then_delete;
      Alcotest.test_case "scion: stale seqno ignored" `Quick test_scion_stale_seqno_ignored;
      Alcotest.test_case "scion: unknown reported" `Quick test_scion_unknown_reported;
      Alcotest.test_case "scion: per-source isolation" `Quick test_scion_other_src_untouched;
      Alcotest.test_case "scion: tombstone blocks heal" `Quick test_scion_tombstone_blocks_heal;
      Alcotest.test_case "scion: grace expires lost export" `Quick
        test_scion_grace_expires_lost_export;
      Alcotest.test_case "scion: idle sources" `Quick test_scion_idle_sources;
      Alcotest.test_case "scion: protected targets" `Quick test_scion_protected_targets;
      Alcotest.test_case "scion: drop_for_targets" `Quick test_scion_drop_for_targets;
    ] )
