(* The metrics document written by `adgc_sim run --metrics` and the
   bench harness is a consumer contract; test/metrics_schema.json is
   the checked-in description of it.  A shape change must show up here
   (and bump Export.schema_version), not in a consumer's parser. *)

module Sim = Adgc.Sim
module Config = Adgc.Config
module Export = Adgc_obs.Export
module Json = Adgc_util.Json
module Stats = Adgc_util.Stats

let check = Alcotest.check

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let schema () =
  (* cwd is test/ under `dune runtest`, the repo root under
     `dune exec test/test_main.exe`. *)
  let path =
    if Sys.file_exists "metrics_schema.json" then "metrics_schema.json"
    else "test/metrics_schema.json"
  in
  match Json.of_string (read_file path) with
  | Ok schema -> schema
  | Error e -> Alcotest.failf "metrics_schema.json is not valid JSON: %s" e

let real_document () =
  let config = { (Config.quick ~seed:11 ~n_procs:4 ()) with Config.telemetry = true } in
  let sim = Sim.create ~config () in
  let _r = Adgc_workload.Topology.ring (Sim.cluster sim) ~procs:[ 0; 1; 2 ] in
  Sim.start sim;
  Sim.run_for sim 15_000;
  Sim.teardown sim;
  Export.metrics_document
    ~meta:[ ("seed", Json.Int 11); ("detector", Json.Str "dcda") ]
    (Sim.stats sim)

let test_real_run_validates () =
  let doc = real_document () in
  (* Both the in-memory document and its serialized form (what a
     consumer actually reads back) must conform. *)
  (match Json.validate ~schema:(schema ()) doc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "live metrics document rejected: %s" e);
  match Json.of_string (Json.to_string doc) with
  | Ok reparsed -> (
      match Json.validate ~schema:(schema ()) reparsed with
      | Ok () -> ()
      | Error e -> Alcotest.failf "reparsed metrics document rejected: %s" e)
  | Error e -> Alcotest.failf "metrics document does not reparse: %s" e

let test_schema_is_not_vacuous () =
  let reject what doc =
    match Json.validate ~schema:(schema ()) doc with
    | Ok () -> Alcotest.failf "schema accepted %s" what
    | Error _ -> ()
  in
  reject "a bare object" (Json.Obj []);
  reject "a string counter"
    (Json.Obj
       [
         ("schema_version", Json.Int Export.schema_version);
         ("meta", Json.Obj []);
         ( "stats",
           Json.Obj
             [
               ("counters", Json.Obj [ ("c", Json.Str "3") ]);
               ("histograms", Json.Obj []);
               ("series", Json.Obj []);
             ] );
       ]);
  reject "an unknown top-level member"
    (Json.Obj
       [
         ("schema_version", Json.Int Export.schema_version);
         ("meta", Json.Obj []);
         ( "stats",
           Json.Obj
             [
               ("counters", Json.Obj []);
               ("histograms", Json.Obj []);
               ("series", Json.Obj []);
             ] );
         ("surprise", Json.Null);
       ])

let test_empty_stats_validate () =
  match Json.validate ~schema:(schema ()) (Export.metrics_document (Stats.create ())) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "empty stats rejected: %s" e

let suite =
  ( "schema",
    [
      Alcotest.test_case "live metrics document conforms" `Quick test_real_run_validates;
      Alcotest.test_case "schema rejects malformed documents" `Quick test_schema_is_not_vacuous;
      Alcotest.test_case "empty stats conform" `Quick test_empty_stats_validate;
    ] )
