(* The socket wire format: 4-byte length-prefixed frames around
   per-connection interned Net_codec payloads.  Everything the driver
   ships must round-trip; damaged input may only ever surface as
   Wire.Malformed (or a poisoned decoder), never as a crash; and
   frames must reassemble identically however read() splits them. *)

module Sval = Adgc_serial.Sval
module Wire = Adgc_serial.Wire
module Net_codec = Adgc_serial.Net_codec
module Frame = Adgc_net.Frame
module Envelope = Adgc_net.Envelope
module Gather = Adgc_net.Gather
module Msg = Adgc_rt.Msg
open Adgc_algebra

let check = Alcotest.check

let sval = Alcotest.testable Sval.pp Sval.equal

let oid owner serial = Oid.make ~owner:(Proc_id.of_int owner) ~serial

let key src target = Ref_key.make ~src:(Proc_id.of_int src) ~target

let algebra =
  List.fold_left
    (fun alg (role, k, ic) ->
      match Algebra.add alg role k ~ic with
      | Algebra.Added alg -> alg
      | Algebra.Ic_conflict _ -> alg)
    Algebra.empty
    [
      (Algebra.Source, key 0 (oid 1 1), 2);
      (Algebra.Target, key 1 (oid 2 3), 0);
      (Algebra.Source, key 2 (oid 0 5), 1);
    ]

(* One of every payload constructor, Batch included. *)
let sample_payloads : Msg.payload list =
  let flat =
    [
      Msg.Rmi_request { req_id = 7; target = oid 1 2; args = [ oid 0 1; oid 2 9 ]; stub_ic = 3 };
      Msg.Rmi_reply { req_id = 7; target = oid 1 2; results = [ oid 1 4 ] };
      Msg.Export_notice { notice_id = 11; target = oid 2 1; new_holder = Proc_id.of_int 3 };
      Msg.Export_ack { notice_id = 11; target = oid 2 1; new_holder = Proc_id.of_int 3 };
      Msg.New_set_stubs
        {
          seqno = 4;
          targets = Oid.Map.add (oid 3 1) 2 (Oid.Map.add (oid 3 2) 0 Oid.Map.empty);
        };
      Msg.Scion_probe;
      Msg.Cdm
        (Cdm.make
           ~id:(Detection_id.make ~initiator:(Proc_id.of_int 1) ~seq:5)
           ~algebra ~frontier:(key 0 (oid 1 1)) ~hops:2 ~budget:16);
      Msg.Cdm_delete
        {
          id = Detection_id.make ~initiator:(Proc_id.of_int 2) ~seq:9;
          scions = [ key 0 (oid 1 1); key 1 (oid 2 3) ];
        };
      Msg.Bt
        (Btmsg.Query
           {
             trace = { Btmsg.initiator = Proc_id.of_int 0; seq = 3 };
             subject = key 1 (oid 0 2);
             visited = [ key 0 (oid 1 1) ];
           });
      Msg.Bt
        (Btmsg.Reply
           {
             trace = { Btmsg.initiator = Proc_id.of_int 0; seq = 3 };
             subject = key 1 (oid 0 2);
             verdict = Btmsg.Rooted;
           });
      Msg.Hughes (Hmsg.Stamp [ (oid 0 1, 12); (oid 1 2, 9) ]);
      Msg.Hughes (Hmsg.Report { round_time = 400 });
      Msg.Hughes (Hmsg.Threshold { value = 250 });
    ]
  in
  flat @ [ Msg.Batch flat ]

let sample_envelopes : Envelope.t list =
  let net_msgs =
    List.mapi
      (fun i p ->
        Envelope.Net_msg
          (Msg.make ~seq:i ~src:(Proc_id.of_int (i mod 4)) ~dst:(Proc_id.of_int 3) ~sent_at:(i * 10)
             p))
      sample_payloads
  in
  net_msgs
  @ [
      Envelope.Hello { rank = 2; procs = 4; seed = 42 };
      Envelope.Start;
      Envelope.Heartbeat { tick = 12345 };
      Envelope.Status_req;
      Envelope.Status
        {
          st_rank = 1;
          st_tick = 999;
          st_ready = true;
          st_reclaimed = [ oid 1 3; oid 1 7 ];
          st_wire_sent = 40;
          st_wire_received = 38;
          st_dup_ignored = 2;
        };
      Envelope.State_req;
      Envelope.State
        {
          Gather.rank = 1;
          tick = 999;
          objects =
            [
              { Gather.oid = oid 1 0; refs = [ oid 0 1 ]; rooted = true };
              { Gather.oid = oid 1 1; refs = []; rooted = false };
            ];
          stubs = [ { Gather.target = oid 0 1; stub_ic = 2 } ];
          scions = [ { Gather.key = key 0 (oid 1 0); scion_ic = 1; confirmed = true } ];
          reclaimed = [ oid 1 9 ];
          counters = [ ("lgc.runs", 3); ("net.msg.duplicate_ignored", 1) ];
        };
      Envelope.Drop_peer 2;
      Envelope.Shutdown;
      Envelope.Bye;
    ]

(* Encode the whole conversation as one connection would: one Stream
   writer across all frames. *)
let encoded_stream envelopes =
  let w = Net_codec.Stream.writer () in
  List.map (fun e -> Frame.encode (Net_codec.Stream.encode w (Envelope.to_sval e))) envelopes

let decode_all decoder reader =
  let rec go acc =
    match Frame.next decoder with
    | None -> List.rev acc
    | Some payload -> (
        let v = Net_codec.Stream.decode reader payload in
        match Envelope.of_sval v with
        | Some e -> go (e :: acc)
        | None -> Alcotest.failf "undecodable envelope: %a" Sval.pp v)
  in
  go []

let check_same_envelopes msg expected actual =
  check Alcotest.int (msg ^ ": count") (List.length expected) (List.length actual);
  List.iter2
    (fun e a -> check sval msg (Envelope.to_sval e) (Envelope.to_sval a))
    expected actual

(* ------------------------------------------------------------------ *)

let test_every_envelope_roundtrips () =
  let frames = encoded_stream sample_envelopes in
  let d = Frame.decoder () in
  let r = Net_codec.Stream.reader () in
  List.iter (Frame.feed d) frames;
  check_same_envelopes "roundtrip" sample_envelopes (decode_all d r)

let test_partial_reads_reassemble () =
  let blob = String.concat "" (encoded_stream sample_envelopes) in
  List.iter
    (fun chunk ->
      let d = Frame.decoder () in
      let r = Net_codec.Stream.reader () in
      let acc = ref [] in
      let i = ref 0 in
      while !i < String.length blob do
        let len = Int.min chunk (String.length blob - !i) in
        Frame.feed d (String.sub blob !i len);
        i := !i + len;
        acc := !acc @ decode_all d r
      done;
      check_same_envelopes (Printf.sprintf "chunk=%d" chunk) sample_envelopes !acc)
    [ 1; 2; 3; 7; 64; 4096 ]

let test_truncation_waits_never_crashes () =
  let frames = encoded_stream sample_envelopes in
  let blob = String.concat "" frames in
  (* Every prefix: complete frames come out, the ragged tail stays
     buffered, nothing raises. *)
  for cut = 0 to String.length blob - 1 do
    let d = Frame.decoder () in
    Frame.feed d (String.sub blob 0 cut);
    let n = ref 0 in
    let continue = ref true in
    while !continue do
      match Frame.next d with Some _ -> incr n | None -> continue := false
    done;
    if !n > List.length frames then Alcotest.fail "more frames than were sent"
  done

let expect_malformed name f =
  match f () with
  | exception Wire.Malformed _ -> ()
  | _ -> Alcotest.failf "%s: expected Wire.Malformed" name

let test_bad_length_poisons () =
  let bads =
    [
      ("zero length", "\x00\x00\x00\x00");
      ("negative length", "\xff\xff\xff\xff");
      ("oversized length", "\x7f\xff\xff\xff");
    ]
  in
  List.iter
    (fun (name, header) ->
      let d = Frame.decoder () in
      Frame.feed d header;
      expect_malformed (name ^ ": first next") (fun () -> Frame.next d);
      (* Poisoned for good: the stream position is unrecoverable, so
         even valid bytes afterwards keep raising. *)
      Frame.feed d (Frame.encode "hello");
      expect_malformed (name ^ ": stays poisoned") (fun () -> Frame.next d))
    bads

let test_corrupt_payload_only_malformed () =
  let frames = encoded_stream sample_envelopes in
  let sample = List.nth frames 6 (* the Cdm: deepest structure *) in
  let header_len = 4 in
  let payload = String.sub sample header_len (String.length sample - header_len) in
  for pos = 0 to String.length payload - 1 do
    let mutated = Bytes.of_string payload in
    Bytes.set mutated pos (Char.chr (Char.code (Bytes.get mutated pos) lxor 0x55));
    let r = Net_codec.Stream.reader () in
    match Net_codec.Stream.decode r (Bytes.to_string mutated) with
    | v -> ignore (Envelope.of_sval v : Envelope.t option)
    | exception Wire.Malformed _ -> ()
  done

let test_frame_encode_rejects_bad_sizes () =
  (match Frame.encode "" with
  | exception Wire.Malformed _ -> ()
  | _ -> Alcotest.fail "empty frame accepted");
  check Alcotest.bool "max_frame is sane" true (Frame.max_frame >= 1 lsl 20)

let test_decoder_buffered_accounting () =
  let d = Frame.decoder () in
  let frame = Frame.encode "abcdef" in
  Frame.feed d (String.sub frame 0 3);
  check Alcotest.int "partial bytes buffered" 3 (Frame.buffered d);
  Frame.feed d (String.sub frame 3 (String.length frame - 3));
  check Alcotest.bool "frame completes" true (Frame.next d = Some "abcdef");
  check Alcotest.int "drained" 0 (Frame.buffered d)

let suite =
  ( "net_frame",
    [
      Alcotest.test_case "every envelope roundtrips" `Quick test_every_envelope_roundtrips;
      Alcotest.test_case "partial reads reassemble" `Quick test_partial_reads_reassemble;
      Alcotest.test_case "truncation waits, never crashes" `Quick
        test_truncation_waits_never_crashes;
      Alcotest.test_case "bad length prefix poisons" `Quick test_bad_length_poisons;
      Alcotest.test_case "corrupt payload raises only Malformed" `Quick
        test_corrupt_payload_only_malformed;
      Alcotest.test_case "encode rejects bad sizes" `Quick test_frame_encode_rejects_bad_sizes;
      Alcotest.test_case "decoder buffered accounting" `Quick test_decoder_buffered_accounting;
    ] )
