(* Aggregates every suite; `dune runtest` runs them all. *)

let () =
  Alcotest.run "adgc"
    [
      Test_util.suite;
      Test_obs.suite;
      Test_serial.suite;
      Test_algebra.suite;
      Test_rt_core.suite;
      Test_rt_gc.suite;
      Test_snapshot.suite;
      Test_detector.suite;
      Test_candidates.suite;
      Test_baseline.suite;
      Test_workload.suite;
      Test_integration.suite;
      Test_failures.suite;
      Test_hughes.suite;
      Test_model.suite;
      Test_matrix.suite;
      Test_faults_matrix.suite;
      Test_sim.suite;
      Test_engine.suite;
      Test_group.suite;
      Test_replay.suite;
      Test_schema.suite;
      Test_mc.suite;
      Test_oracle.suite;
      Test_net_frame.suite;
      Test_net_conformance.suite;
      Test_net_fault.suite;
      Test_perf.suite;
      Test_bench.suite;
    ]
