(* Protocol tests: local collector, reference listing (export
   handshakes, stub sets, probes, healing) and RMI — including
   behaviour under message loss. *)

open Adgc_algebra
open Adgc_rt

let check = Alcotest.check

(* A quiet cluster: no periodic duties; tests drive GC by hand. *)
let mk ?(n = 3) ?(seed = 42) ?(drop = 0.0) ?config () =
  let net_config = Network.default_config () in
  net_config.Network.drop_prob <- drop;
  let cluster = Cluster.create ~seed ?config ~net_config ~n () in
  cluster

let settle cluster = ignore (Cluster.drain cluster : int)

(* Run k rounds of (LGC everywhere; stub sets everywhere; deliver). *)
let gc_rounds cluster k =
  let rt = Cluster.rt cluster in
  for _ = 1 to k do
    Array.iter (fun p -> ignore (Lgc.run rt p : Lgc.report)) rt.Runtime.procs;
    Array.iter (fun p -> Reflist.send_new_sets rt p) rt.Runtime.procs;
    settle cluster
  done

(* ------------------------------------------------------------------ *)
(* Lgc *)

let test_lgc_collects_unrooted () =
  let cluster = mk () in
  let p = Cluster.proc cluster 0 in
  let a = Mutator.alloc cluster ~proc:0 () in
  let b = Mutator.alloc cluster ~proc:0 () in
  Mutator.link cluster ~from_:a ~to_:b;
  Mutator.add_root cluster a;
  let r = Lgc.run (Cluster.rt cluster) p in
  check Alcotest.int "nothing swept" 0 r.Lgc.swept;
  Mutator.remove_root cluster a;
  let r = Lgc.run (Cluster.rt cluster) p in
  check Alcotest.int "both swept" 2 r.Lgc.swept;
  check Alcotest.int "heap empty" 0 (Heap.size p.Process.heap)

let test_lgc_scion_protects () =
  let cluster = mk () in
  let a = Mutator.alloc cluster ~proc:0 () in
  let holder = Mutator.alloc cluster ~proc:1 () in
  Mutator.add_root cluster holder;
  Mutator.wire_remote cluster ~holder ~target:a;
  let p0 = Cluster.proc cluster 0 in
  let r = Lgc.run (Cluster.rt cluster) p0 in
  check Alcotest.int "scion kept it" 0 r.Lgc.swept;
  check Alcotest.bool "alive" true (Heap.mem p0.Process.heap a.Heap.oid)

let test_lgc_local_cycle_collected () =
  let cluster = mk () in
  let p = Cluster.proc cluster 0 in
  let a = Mutator.alloc cluster ~proc:0 () and b = Mutator.alloc cluster ~proc:0 () in
  Mutator.link cluster ~from_:a ~to_:b;
  Mutator.link cluster ~from_:b ~to_:a;
  let r = Lgc.run (Cluster.rt cluster) p in
  check Alcotest.int "local cycle swept" 2 r.Lgc.swept

let test_lgc_drops_dead_stubs () =
  let cluster = mk () in
  let holder = Mutator.alloc cluster ~proc:0 () in
  let target = Mutator.alloc cluster ~proc:1 () in
  Mutator.add_root cluster holder;
  Mutator.add_root cluster target;
  Mutator.wire_remote cluster ~holder ~target;
  let p0 = Cluster.proc cluster 0 in
  (* First LGC: stub live. *)
  ignore (Lgc.run (Cluster.rt cluster) p0 : Lgc.report);
  check Alcotest.int "stub present" 1 (Stub_table.size p0.Process.stubs);
  Stub_table.clear_fresh p0.Process.stubs;
  Mutator.unwire_remote cluster ~holder ~target;
  let r = Lgc.run (Cluster.rt cluster) p0 in
  check Alcotest.int "stub dropped" 1 r.Lgc.stubs_dropped;
  check Alcotest.int "stub gone" 0 (Stub_table.size p0.Process.stubs)

let test_lgc_pre_sweep_hook () =
  let cluster = mk () in
  let rt = Cluster.rt cluster in
  let seen = ref [] in
  rt.Runtime.on_pre_sweep <- Some (fun _proc doomed -> seen := doomed @ !seen);
  let a = Mutator.alloc cluster ~proc:0 () in
  ignore (Lgc.run rt (Cluster.proc cluster 0) : Lgc.report);
  check Alcotest.int "hook saw the doomed object" 1 (List.length !seen);
  check Alcotest.bool "right oid" true (Oid.equal (List.hd !seen) a.Heap.oid)

(* ------------------------------------------------------------------ *)
(* Acyclic distributed GC: end-to-end chains *)

let test_acyclic_chain_reclaimed () =
  (* root -> a@P0 -> b@P1 -> c@P2; cut the root; everything goes. *)
  let cluster = mk () in
  let a = Mutator.alloc cluster ~proc:0 () in
  let b = Mutator.alloc cluster ~proc:1 () in
  let c = Mutator.alloc cluster ~proc:2 () in
  Mutator.wire_remote cluster ~holder:a ~target:b;
  Mutator.wire_remote cluster ~holder:b ~target:c;
  Mutator.add_root cluster a;
  gc_rounds cluster 2;
  check Alcotest.int "all alive" 3 (Cluster.total_objects cluster);
  Mutator.remove_root cluster a;
  gc_rounds cluster 4;
  check Alcotest.int "all reclaimed" 0 (Cluster.total_objects cluster)

let test_acyclic_distributed_cycle_not_reclaimed () =
  (* The motivating limitation: without the DCDA, a distributed cycle
     survives reference listing forever. *)
  let cluster = mk ~n:2 () in
  let a = Mutator.alloc cluster ~proc:0 () in
  let b = Mutator.alloc cluster ~proc:1 () in
  Mutator.wire_remote cluster ~holder:a ~target:b;
  Mutator.wire_remote cluster ~holder:b ~target:a;
  gc_rounds cluster 6;
  check Alcotest.int "cycle leaks under acyclic DGC" 2 (Cluster.total_objects cluster)

(* ------------------------------------------------------------------ *)
(* Export handshake *)

(* Set up: exporter at P0 holds a ref to w@P2 (owner) and sends it to
   P1 via an RMI argument. *)
let third_party_export ?(drop = 0.0) () =
  let cluster = mk ~drop () in
  let exporter = Mutator.alloc cluster ~proc:0 () in
  let receiver = Mutator.alloc cluster ~proc:1 () in
  let w = Mutator.alloc cluster ~proc:2 () in
  Mutator.add_root cluster exporter;
  Mutator.add_root cluster receiver;
  Mutator.wire_remote cluster ~holder:exporter ~target:w;
  Mutator.wire_remote cluster ~holder:exporter ~target:receiver;
  (cluster, exporter, receiver, w)

let test_export_third_party_creates_scion () =
  let cluster, _, receiver, w = third_party_export () in
  Mutator.call cluster ~src:0 ~target:receiver.Heap.oid ~args:[ w.Heap.oid ]
    ~behavior:Mutator.store_args ();
  settle cluster;
  let owner = Cluster.proc cluster 2 in
  let key = Ref_key.make ~src:(Proc_id.of_int 1) ~target:w.Heap.oid in
  check Alcotest.bool "scion for new holder" true (Scion_table.mem owner.Process.scions key);
  (* The receiver installed the ref and got a stub. *)
  let p1 = Cluster.proc cluster 1 in
  check Alcotest.bool "stub at receiver" true (Stub_table.mem p1.Process.stubs w.Heap.oid)

let test_export_pin_released_after_ack () =
  let cluster, _, receiver, w = third_party_export () in
  Mutator.call cluster ~src:0 ~target:receiver.Heap.oid ~args:[ w.Heap.oid ]
    ~behavior:Mutator.store_args ();
  settle cluster;
  let p0 = Cluster.proc cluster 0 in
  match Stub_table.find p0.Process.stubs w.Heap.oid with
  | Some e -> check Alcotest.int "no pins left" 0 e.Stub_table.pins
  | None -> Alcotest.fail "exporter lost its stub"

let test_export_safe_when_exporter_drops_ref () =
  (* The exporter passes its only reference away and immediately drops
     it; the object must survive the transfer even though the
     exporter's advertisement will stop listing it. *)
  let cluster, exporter, receiver, w = third_party_export () in
  Mutator.call cluster ~src:0 ~target:receiver.Heap.oid ~args:[ w.Heap.oid ]
    ~behavior:Mutator.store_args ();
  Mutator.unwire_remote cluster ~holder:exporter ~target:w;
  gc_rounds cluster 5;
  let p2 = Cluster.proc cluster 2 in
  check Alcotest.bool "object survived the transfer" true (Heap.mem p2.Process.heap w.Heap.oid);
  (* And only the receiver's scion remains. *)
  let key01 = Ref_key.make ~src:(Proc_id.of_int 0) ~target:w.Heap.oid in
  let key11 = Ref_key.make ~src:(Proc_id.of_int 1) ~target:w.Heap.oid in
  check Alcotest.bool "exporter scion gone" false (Scion_table.mem p2.Process.scions key01);
  check Alcotest.bool "receiver scion present" true (Scion_table.mem p2.Process.scions key11)

let test_export_notice_retry_under_loss () =
  (* 60% loss: the notice handshake must still complete via retries. *)
  let cluster, _, receiver, w = third_party_export ~drop:0.6 () in
  Mutator.call cluster ~src:0 ~target:receiver.Heap.oid ~args:[ w.Heap.oid ]
    ~behavior:Mutator.store_args ();
  (* Run long enough for retries; drain is unbounded in time. *)
  Cluster.run_for cluster 50_000;
  let owner = Cluster.proc cluster 2 in
  let key = Ref_key.make ~src:(Proc_id.of_int 1) ~target:w.Heap.oid in
  let stats = Cluster.stats cluster in
  (* Either the notice eventually landed, or (if the request itself
     was dropped) nothing happened at all — in which case there is no
     new holder and no scion is needed.  Distinguish via rmi.served. *)
  if Adgc_util.Stats.get stats "rmi.served" > 0 then
    check Alcotest.bool "scion created despite loss" true
      (Scion_table.mem owner.Process.scions key)

let test_healing_after_lost_notice () =
  (* Force-drop every export notice and ack, then let the receiver's
     stub set heal the scion. *)
  let cluster, _, receiver, w = third_party_export () in
  Network.block_link (Cluster.net cluster) (Proc_id.of_int 0) (Proc_id.of_int 2);
  Mutator.call cluster ~src:0 ~target:receiver.Heap.oid ~args:[ w.Heap.oid ]
    ~behavior:Mutator.store_args ();
  Cluster.run_for cluster 2_000;
  (* The notice never arrives; the RMI did (P0 -> P1 is open), so P1
     holds the ref.  Now P1 advertises its stubs. *)
  let rt = Cluster.rt cluster in
  Reflist.send_new_sets rt (Cluster.proc cluster 1);
  settle cluster;
  let owner = Cluster.proc cluster 2 in
  let key = Ref_key.make ~src:(Proc_id.of_int 1) ~target:w.Heap.oid in
  check Alcotest.bool "healed scion" true (Scion_table.mem owner.Process.scions key);
  check Alcotest.bool "healed scions count" true
    (Adgc_util.Stats.get (Cluster.stats cluster) "reflist.scions_healed" >= 1);
  Network.unblock_link (Cluster.net cluster) (Proc_id.of_int 0) (Proc_id.of_int 2)

let test_probe_recovers_lost_final_set () =
  (* P0 references w@P1, then drops it, but the (empty) stub set is
     lost; the owner's probe must recover the scion deletion. *)
  let cluster = mk ~n:2 () in
  let holder = Mutator.alloc cluster ~proc:0 () in
  let w = Mutator.alloc cluster ~proc:1 () in
  Mutator.add_root cluster holder;
  Mutator.wire_remote cluster ~holder ~target:w;
  gc_rounds cluster 2;
  (* Drop the reference; blackhole P0 -> P1 while its sets would go out. *)
  Mutator.unwire_remote cluster ~holder ~target:w;
  Network.block_link (Cluster.net cluster) (Proc_id.of_int 0) (Proc_id.of_int 1);
  gc_rounds cluster 3;
  Network.unblock_link (Cluster.net cluster) (Proc_id.of_int 0) (Proc_id.of_int 1);
  let p1 = Cluster.proc cluster 1 in
  let key = Ref_key.make ~src:(Proc_id.of_int 0) ~target:w.Heap.oid in
  check Alcotest.bool "scion leaked so far" true (Scion_table.mem p1.Process.scions key);
  (* Probe: owner asks the silent holder. *)
  Reflist.probe_idle_scions (Cluster.rt cluster) p1 ~threshold:0;
  settle cluster;
  check Alcotest.bool "scion reclaimed after probe" false (Scion_table.mem p1.Process.scions key);
  ignore (Lgc.run (Cluster.rt cluster) p1 : Lgc.report);
  check Alcotest.bool "object reclaimed" false (Heap.mem p1.Process.heap w.Heap.oid)

let test_owner_side_export () =
  (* P0 sends its own object to P1: scion must exist before the
     message even arrives (synchronous creation). *)
  let cluster = mk ~n:2 () in
  let mine = Mutator.alloc cluster ~proc:0 () in
  let receiver = Mutator.alloc cluster ~proc:1 () in
  Mutator.add_root cluster mine;
  Mutator.add_root cluster receiver;
  Mutator.wire_remote cluster ~holder:mine ~target:receiver;
  Mutator.call cluster ~src:0 ~target:receiver.Heap.oid ~args:[ mine.Heap.oid ]
    ~behavior:Mutator.store_args ();
  (* Before any delivery: *)
  let p0 = Cluster.proc cluster 0 in
  let key = Ref_key.make ~src:(Proc_id.of_int 1) ~target:mine.Heap.oid in
  check Alcotest.bool "scion pre-created" true (Scion_table.mem p0.Process.scions key);
  settle cluster

(* ------------------------------------------------------------------ *)
(* RMI *)

let rmi_pair ?(drop = 0.0) ?config () =
  let cluster = mk ~n:2 ~drop ?config () in
  let caller = Mutator.alloc cluster ~proc:0 () in
  let callee = Mutator.alloc cluster ~proc:1 () in
  Mutator.add_root cluster caller;
  Mutator.add_root cluster callee;
  Mutator.wire_remote cluster ~holder:caller ~target:callee;
  (cluster, caller, callee)

let test_rmi_bumps_ics () =
  let cluster, _, callee = rmi_pair () in
  Mutator.invoke cluster ~src:0 ~target:callee.Heap.oid;
  settle cluster;
  let p0 = Cluster.proc cluster 0 and p1 = Cluster.proc cluster 1 in
  check (Alcotest.option Alcotest.int) "stub ic" (Some 1)
    (Stub_table.ic p0.Process.stubs callee.Heap.oid);
  let key = Ref_key.make ~src:(Proc_id.of_int 0) ~target:callee.Heap.oid in
  check (Alcotest.option Alcotest.int) "scion ic" (Some 1) (Scion_table.ic p1.Process.scions key)

let test_rmi_reply_runs_continuation () =
  let cluster, _, callee = rmi_pair () in
  let got = ref None in
  Mutator.call cluster ~src:0 ~target:callee.Heap.oid
    ~behavior:Mutator.return_field_refs
    ~on_reply:(fun results -> got := Some results)
    ();
  settle cluster;
  check Alcotest.bool "reply arrived" true (!got <> None)

let test_rmi_behavior_mutates_callee () =
  let cluster, _, callee = rmi_pair () in
  let arg = Mutator.alloc cluster ~proc:0 () in
  Mutator.add_root cluster arg;
  Mutator.call cluster ~src:0 ~target:callee.Heap.oid ~args:[ arg.Heap.oid ]
    ~behavior:Mutator.store_args ();
  settle cluster;
  let held = Array.to_list callee.Heap.fields |> List.filter_map (fun f -> f) in
  check Alcotest.bool "callee holds the arg" true
    (List.exists (fun o -> Oid.equal o arg.Heap.oid) held)

let test_rmi_results_create_stubs () =
  let cluster, _, callee = rmi_pair () in
  (* The callee returns one of its own objects; the caller must end up
     with a stub and the callee with a scion. *)
  let inner = Mutator.alloc cluster ~proc:1 () in
  Mutator.link cluster ~from_:callee ~to_:inner;
  Mutator.call cluster ~src:0 ~target:callee.Heap.oid ~behavior:Mutator.return_field_refs ();
  settle cluster;
  let p0 = Cluster.proc cluster 0 and p1 = Cluster.proc cluster 1 in
  check Alcotest.bool "stub for result" true (Stub_table.mem p0.Process.stubs inner.Heap.oid);
  let key = Ref_key.make ~src:(Proc_id.of_int 0) ~target:inner.Heap.oid in
  check Alcotest.bool "scion for result" true (Scion_table.mem p1.Process.scions key)

let test_rmi_to_collected_object () =
  let cluster, _, callee = rmi_pair () in
  (* Kill the callee object bypassing the protocol, then call. *)
  let p1 = Cluster.proc cluster 1 in
  Heap.remove_root p1.Process.heap callee.Heap.oid;
  ignore (Scion_table.drop_for_targets p1.Process.scions (Oid.Set.singleton callee.Heap.oid) : int);
  ignore (Lgc.run (Cluster.rt cluster) p1 : Lgc.report);
  Mutator.invoke cluster ~src:0 ~target:callee.Heap.oid;
  settle cluster;
  check Alcotest.int "dangling counted" 1
    (Adgc_util.Stats.get (Cluster.stats cluster) "rmi.dangling")

let test_rmi_requires_stub () =
  let cluster = mk ~n:2 () in
  let callee = Mutator.alloc cluster ~proc:1 () in
  Alcotest.check_raises "no stub"
    (Invalid_argument
       (Format.asprintf "Rmi.call: %a holds no stub for %a" Proc_id.pp (Proc_id.of_int 0) Oid.pp
          callee.Heap.oid))
    (fun () -> Mutator.invoke cluster ~src:0 ~target:callee.Heap.oid)

let test_rmi_rejects_local_target () =
  let cluster = mk ~n:2 () in
  let obj = Mutator.alloc cluster ~proc:0 () in
  Alcotest.check_raises "local target"
    (Invalid_argument
       (Format.asprintf "Rmi.call: %a is local to %a" Oid.pp obj.Heap.oid Proc_id.pp
          (Proc_id.of_int 0)))
    (fun () -> Mutator.invoke cluster ~src:0 ~target:obj.Heap.oid)

let test_rmi_pin_timeout_releases () =
  (* Drop everything: the pin must be released by the timeout so the
     stub can die. *)
  let cluster, _, callee = rmi_pair ~drop:1.0 () in
  Mutator.invoke cluster ~src:0 ~target:callee.Heap.oid;
  let p0 = Cluster.proc cluster 0 in
  (match Stub_table.find p0.Process.stubs callee.Heap.oid with
  | Some e -> check Alcotest.int "pinned during call" 1 e.Stub_table.pins
  | None -> Alcotest.fail "stub missing");
  Cluster.run_for cluster 10_000;
  (match Stub_table.find p0.Process.stubs callee.Heap.oid with
  | Some e -> check Alcotest.int "released by timeout" 0 e.Stub_table.pins
  | None -> Alcotest.fail "stub missing");
  check Alcotest.int "timeout counted" 1
    (Adgc_util.Stats.get (Cluster.stats cluster) "rmi.pin_timeouts")

let test_rmi_count_replies_mode () =
  let config = { (Runtime.default_config ()) with Runtime.count_replies = true } in
  let cluster, _, callee = rmi_pair ~config () in
  Mutator.invoke cluster ~src:0 ~target:callee.Heap.oid;
  settle cluster;
  let p0 = Cluster.proc cluster 0 and p1 = Cluster.proc cluster 1 in
  check (Alcotest.option Alcotest.int) "stub ic counts reply" (Some 2)
    (Stub_table.ic p0.Process.stubs callee.Heap.oid);
  let key = Ref_key.make ~src:(Proc_id.of_int 0) ~target:callee.Heap.oid in
  (* The scion only adopts heard values: the reply bump reaches it with
     the next request or stub set. *)
  check (Alcotest.option Alcotest.int) "scion lags until next sync" (Some 1)
    (Scion_table.ic p1.Process.scions key);
  Reflist.send_new_sets (Cluster.rt cluster) p0;
  settle cluster;
  check (Alcotest.option Alcotest.int) "scion synced by the stub set" (Some 2)
    (Scion_table.ic p1.Process.scions key)

let test_rmi_nested_calls () =
  (* P0 calls x@P1 whose behaviour calls y@P2. *)
  let cluster = mk ~n:3 () in
  let caller = Mutator.alloc cluster ~proc:0 () in
  let x = Mutator.alloc cluster ~proc:1 () in
  let y = Mutator.alloc cluster ~proc:2 () in
  Mutator.add_root cluster caller;
  Mutator.add_root cluster x;
  Mutator.add_root cluster y;
  Mutator.wire_remote cluster ~holder:caller ~target:x;
  Mutator.wire_remote cluster ~holder:x ~target:y;
  let inner_ran = ref false in
  let outer rt (_p : Process.t) ~target:_ ~args:_ =
    Rmi.call rt ~src:(Proc_id.of_int 1) ~target:y.Heap.oid
      ~behavior:(fun _ _ ~target:_ ~args:_ ->
        inner_ran := true;
        [])
      ();
    []
  in
  Mutator.call cluster ~src:0 ~target:x.Heap.oid ~behavior:outer ();
  settle cluster;
  check Alcotest.bool "nested call ran" true !inner_ran;
  let key = Ref_key.make ~src:(Proc_id.of_int 1) ~target:y.Heap.oid in
  check (Alcotest.option Alcotest.int) "inner ic" (Some 1)
    (Scion_table.ic (Cluster.proc cluster 2).Process.scions key)

let test_call_sync () =
  let cluster, _, callee = rmi_pair () in
  (match
     Mutator.call_sync cluster ~src:0 ~target:callee.Heap.oid
       ~behavior:Mutator.return_field_refs ()
   with
  | Some [] -> ()
  | Some _ -> Alcotest.fail "expected no refs"
  | None -> Alcotest.fail "reply lost on a lossless network");
  (* Under total loss the call reports failure. *)
  let cluster, _, callee = rmi_pair ~drop:1.0 () in
  check Alcotest.bool "lost call" true
    (Mutator.call_sync cluster ~src:0 ~target:callee.Heap.oid () = None)

(* ------------------------------------------------------------------ *)
(* Paged persistent store *)

let owner0 = Proc_id.of_int 0

let test_pstore_basics () =
  let store = Pstore.create ~capacity:2 () in
  let o1 = Oid.make ~owner:owner0 ~serial:1
  and o2 = Oid.make ~owner:owner0 ~serial:2
  and o3 = Oid.make ~owner:owner0 ~serial:3 in
  Pstore.touch store o1;
  Pstore.touch store o2;
  check Alcotest.int "two loads" 2 (Pstore.loads store);
  Pstore.touch store o1;
  check Alcotest.int "one hit" 1 (Pstore.hits store);
  (* o2 is now the LRU; loading o3 evicts it. *)
  Pstore.touch store o3;
  check Alcotest.int "one eviction" 1 (Pstore.evictions store);
  check Alcotest.bool "o2 evicted" false (Pstore.resident store o2);
  check Alcotest.bool "o1 kept" true (Pstore.resident store o1);
  check Alcotest.int "at capacity" 2 (Pstore.resident_count store)

let test_pstore_forget () =
  let store = Pstore.create ~capacity:4 () in
  let o = Oid.make ~owner:owner0 ~serial:1 in
  Pstore.touch store o;
  Pstore.forget store o;
  check Alcotest.bool "gone" false (Pstore.resident store o);
  Pstore.touch store o;
  check Alcotest.int "reload counted" 2 (Pstore.loads store)

let test_pstore_lgc_thrashing () =
  (* A store smaller than the live set: every LGC reloads; garbage
     inflates the working set — the intro's "object loading on primary
     memory" cost. *)
  let cluster = mk ~n:1 () in
  let p = Cluster.proc cluster 0 in
  let store = Pstore.create ~capacity:8 () in
  p.Process.pstore <- Some store;
  let root = Mutator.alloc cluster ~proc:0 () in
  Mutator.add_root cluster root;
  let prev = ref root in
  for _ = 1 to 20 do
    let o = Mutator.alloc cluster ~proc:0 () in
    Mutator.link cluster ~from_:!prev ~to_:o;
    prev := o
  done;
  ignore (Lgc.run (Cluster.rt cluster) p : Lgc.report);
  let first = Pstore.loads store in
  check Alcotest.int "21 loads on first trace" 21 first;
  ignore (Lgc.run (Cluster.rt cluster) p : Lgc.report);
  (* Working set (21) exceeds capacity (8): the second trace reloads
     too — thrashing. *)
  check Alcotest.bool "thrashes" true (Pstore.loads store >= 2 * first - 8);
  (* With a big-enough store, the second trace is all hits. *)
  let big = Pstore.create ~capacity:64 () in
  p.Process.pstore <- Some big;
  ignore (Lgc.run (Cluster.rt cluster) p : Lgc.report);
  let after_warm = Pstore.loads big in
  ignore (Lgc.run (Cluster.rt cluster) p : Lgc.report);
  check Alcotest.int "no further loads" after_warm (Pstore.loads big)

(* ------------------------------------------------------------------ *)
(* Replication (OBIWAN) *)

let test_replicate_copies_references () =
  (* P2 owns [shared]; P1's object [orig] references it; P0 replicates
     [orig] and must end up holding the same remote reference, with
     proper stubs and scions everywhere. *)
  let cluster = mk ~n:3 () in
  let requester = Mutator.alloc cluster ~proc:0 () in
  let orig = Mutator.alloc cluster ~proc:1 () in
  let shared = Mutator.alloc cluster ~proc:2 () in
  Mutator.add_root cluster requester;
  Mutator.add_root cluster orig;
  Mutator.wire_remote cluster ~holder:orig ~target:shared;
  Mutator.wire_remote cluster ~holder:requester ~target:orig;
  let replica = ref None in
  Mutator.replicate cluster ~src:0 ~target:orig.Heap.oid ~on_replica:(fun oid ->
      replica := Some oid);
  settle cluster;
  match !replica with
  | None -> Alcotest.fail "replica never arrived"
  | Some replica_oid ->
      let p0 = Cluster.proc cluster 0 in
      check Alcotest.bool "replica allocated at P0" true (Heap.mem p0.Process.heap replica_oid);
      (* The replica holds the shared reference; DGC structures exist. *)
      check Alcotest.bool "stub for shared at P0" true
        (Stub_table.mem p0.Process.stubs shared.Heap.oid);
      let owner = Cluster.proc cluster 2 in
      let key = Ref_key.make ~src:(Proc_id.of_int 0) ~target:shared.Heap.oid in
      check Alcotest.bool "scion (P0, shared) at P2" true (Scion_table.mem owner.Process.scions key)

let test_replica_keeps_targets_alive () =
  let cluster = mk ~n:3 () in
  let requester = Mutator.alloc cluster ~proc:0 () in
  let orig = Mutator.alloc cluster ~proc:1 () in
  let shared = Mutator.alloc cluster ~proc:2 () in
  Mutator.add_root cluster requester;
  Mutator.add_root cluster orig;
  Mutator.wire_remote cluster ~holder:orig ~target:shared;
  Mutator.wire_remote cluster ~holder:requester ~target:orig;
  Mutator.replicate cluster ~src:0 ~target:orig.Heap.oid ~on_replica:(fun oid ->
      let p0 = Cluster.proc cluster 0 in
      (* Root the replica and let go of the original. *)
      Heap.add_root p0.Process.heap oid;
      Mutator.unwire_remote cluster ~holder:requester ~target:orig);
  settle cluster;
  (* The original dies with its root... *)
  Mutator.remove_root cluster orig;
  gc_rounds cluster 6;
  let p1 = Cluster.proc cluster 1 and p2 = Cluster.proc cluster 2 in
  check Alcotest.bool "original collected" false (Heap.mem p1.Process.heap orig.Heap.oid);
  (* ...but the replica keeps the shared target alive. *)
  check Alcotest.bool "shared survives via the replica" true
    (Heap.mem p2.Process.heap shared.Heap.oid)

let test_replicate_under_loss () =
  (* The replication RMI itself may be dropped; nothing breaks, and a
     retry succeeds once the network heals. *)
  let cluster = mk ~n:2 ~drop:1.0 () in
  let requester = Mutator.alloc cluster ~proc:0 () in
  let orig = Mutator.alloc cluster ~proc:1 () in
  Mutator.add_root cluster requester;
  Mutator.add_root cluster orig;
  Mutator.wire_remote cluster ~holder:requester ~target:orig;
  let got = ref 0 in
  Mutator.replicate cluster ~src:0 ~target:orig.Heap.oid ~on_replica:(fun _ -> incr got);
  Cluster.run_for cluster 20_000;
  check Alcotest.int "no replica under total loss" 0 !got;
  (Network.config (Cluster.net cluster)).Network.drop_prob <- 0.0;
  Mutator.replicate cluster ~src:0 ~target:orig.Heap.oid ~on_replica:(fun _ -> incr got);
  settle cluster;
  check Alcotest.int "replica after heal" 1 !got

(* ------------------------------------------------------------------ *)
(* DGC message batching *)

module Stats = Adgc_util.Stats

let batching_config ~window =
  { (Runtime.default_config ()) with Runtime.dgc_batching = true; dgc_batch_window = window }

let empty_set seqno = Msg.New_set_stubs { seqno; targets = Oid.Map.empty }

let test_batching_coalesces () =
  let cluster = mk ~n:2 ~config:(batching_config ~window:5) () in
  let rt = Cluster.rt cluster in
  let stats = Cluster.stats cluster in
  let src = Proc_id.of_int 0 and dst = Proc_id.of_int 1 in
  Runtime.send_dgc rt ~src ~dst (empty_set 1);
  Runtime.send_dgc rt ~src ~dst (empty_set 2);
  check Alcotest.int "nothing on the wire before the flush" 0 (Stats.get stats "net.msg.sent");
  settle cluster;
  check Alcotest.int "one envelope" 1 (Stats.get stats "net.msg.sent");
  check Alcotest.int "two payloads coalesced" 2 (Stats.get stats "net.msg.batched");
  check Alcotest.int "one flush" 1 (Stats.get stats "net.msg.batch_flushes");
  check Alcotest.int "unpacked at delivery" 2 (Stats.get stats "net.msg.unbatched")

let test_batching_single_payload_travels_plain () =
  let cluster = mk ~n:2 ~config:(batching_config ~window:5) () in
  let rt = Cluster.rt cluster in
  let stats = Cluster.stats cluster in
  Runtime.send_dgc rt ~src:(Proc_id.of_int 0) ~dst:(Proc_id.of_int 1) (empty_set 1);
  settle cluster;
  check Alcotest.int "one message" 1 (Stats.get stats "net.msg.sent");
  check Alcotest.int "no batch envelope" 0 (Stats.get stats "net.msg.sent.batch");
  check Alcotest.int "nothing counted as batched" 0 (Stats.get stats "net.msg.batched")

let test_batching_off_is_immediate () =
  let cluster = mk ~n:2 () in
  let rt = Cluster.rt cluster in
  let stats = Cluster.stats cluster in
  Runtime.send_dgc rt ~src:(Proc_id.of_int 0) ~dst:(Proc_id.of_int 1) (empty_set 1);
  (* Default config: send_dgc is exactly send — on the wire already. *)
  check Alcotest.int "sent without waiting for a flush" 1 (Stats.get stats "net.msg.sent")

let test_batching_chain_reclaimed () =
  (* The acyclic end-to-end scenario still converges when every stub
     set rides inside a batch. *)
  let cluster = mk ~config:(batching_config ~window:5) () in
  let a = Mutator.alloc cluster ~proc:0 () in
  let b = Mutator.alloc cluster ~proc:1 () in
  let c = Mutator.alloc cluster ~proc:2 () in
  Mutator.wire_remote cluster ~holder:a ~target:b;
  Mutator.wire_remote cluster ~holder:b ~target:c;
  Mutator.add_root cluster a;
  gc_rounds cluster 2;
  check Alcotest.int "all alive" 3 (Cluster.total_objects cluster);
  Mutator.remove_root cluster a;
  gc_rounds cluster 4;
  check Alcotest.int "all reclaimed" 0 (Cluster.total_objects cluster)

let clique_round ~batching =
  (* Every process holds a reference into every other; one stub-set +
     probe round therefore carries two DGC payloads per (src, dst)
     pair — the traffic the batcher folds in half. *)
  let n = 6 in
  let cluster =
    mk ~n ~seed:7 ?config:(if batching then Some (batching_config ~window:5) else None) ()
  in
  for p = 0 to n - 1 do
    for q = 0 to n - 1 do
      if p <> q then begin
        let holder = Mutator.alloc cluster ~proc:p () in
        Mutator.add_root cluster holder;
        let target = Mutator.alloc cluster ~proc:q () in
        Mutator.add_root cluster target;
        Mutator.wire_remote cluster ~holder ~target
      end
    done
  done;
  Cluster.run_for cluster 100;
  let stats = Cluster.stats cluster in
  let before = Stats.get stats "net.msg.sent" in
  let rt = Cluster.rt cluster in
  Array.iter
    (fun p ->
      Reflist.send_new_sets rt p;
      Reflist.probe_idle_scions rt p ~threshold:1)
    rt.Runtime.procs;
  settle cluster;
  Stats.get stats "net.msg.sent" - before

let test_batching_cuts_clique_traffic () =
  let plain = clique_round ~batching:false in
  let batched = clique_round ~batching:true in
  check Alcotest.bool
    (Printf.sprintf "fewer envelopes (%d batched vs %d plain)" batched plain)
    true (batched < plain)

let test_batching_detection_converges () =
  (* A distributed cycle is still found and reclaimed when CDMs and
     stub sets travel batched. *)
  let config = Adgc.Config.quick ~n_procs:3 () in
  let runtime =
    { config.Adgc.Config.runtime with Runtime.dgc_batching = true; dgc_batch_window = 5 }
  in
  let config = { config with Adgc.Config.runtime = runtime } in
  let sim = Adgc.Sim.create ~config () in
  let _built = Adgc_workload.Topology.ring (Adgc.Sim.cluster sim) ~procs:[ 0; 1; 2 ] in
  Adgc.Sim.start sim;
  check Alcotest.bool "cycle reclaimed with batching on" true
    (Adgc.Sim.run_until_clean ~step:1_000 ~max_time:300_000 sim)

(* ------------------------------------------------------------------ *)
(* Duplicate delivery (network replay) idempotence.  The envelope
   sequence number makes every handler run at most once per sequenced
   envelope; an application-level replay inside a fresh envelope is
   additionally stale-guarded by the stub-set seqno. *)

let scion_state (p : Process.t) =
  List.map
    (fun (e : Scion_table.entry) -> (e.Scion_table.key, e.Scion_table.ic, e.Scion_table.confirmed))
    (Scion_table.entries p.Process.scions)

let mk_wired () =
  let cluster = mk ~n:2 () in
  let target = Mutator.alloc cluster ~proc:0 () in
  let holder = Mutator.alloc cluster ~proc:1 () in
  Mutator.add_root cluster holder;
  Mutator.wire_remote cluster ~holder ~target;
  (cluster, Oid.Map.singleton target.Heap.oid 0)

let test_duplicate_new_set_idempotent () =
  let cluster, targets = mk_wired () in
  let stats = Cluster.stats cluster in
  let p0 = Cluster.proc cluster 0 and p1 = Cluster.proc cluster 1 in
  (* One concrete stub-set envelope from P1, replayed verbatim — what
     a duplicating network manufactures. *)
  let msg =
    Msg.make ~seq:900 ~src:p1.Process.id ~dst:p0.Process.id ~sent_at:0
      (Msg.New_set_stubs { seqno = 0; targets })
  in
  Network.send (Cluster.net cluster) msg;
  settle cluster;
  let before = scion_state p0 in
  Network.send (Cluster.net cluster) msg;
  settle cluster;
  check Alcotest.int "replay suppressed" 1 (Stats.get stats "net.msg.duplicate_ignored");
  check Alcotest.int "handler never re-ran" 0 (Stats.get stats "reflist.sets_stale");
  check Alcotest.bool "scion table unchanged" true (scion_state p0 = before);
  (* The same set inside a fresh envelope is not a network replay; the
     per-(sender, destination) stub-set seqno makes it just as inert. *)
  let msg' =
    Msg.make ~seq:901 ~src:p1.Process.id ~dst:p0.Process.id ~sent_at:0
      (Msg.New_set_stubs { seqno = 0; targets })
  in
  Network.send (Cluster.net cluster) msg';
  settle cluster;
  check Alcotest.int "stale at the application layer" 1 (Stats.get stats "reflist.sets_stale");
  check Alcotest.bool "scion table still unchanged" true (scion_state p0 = before)

let test_duplicate_batch_idempotent () =
  (* Deduplication is per envelope: the constituents of a batch share
     their envelope's sequence number and must all be processed on
     first delivery — and none on a replay. *)
  let cluster, targets = mk_wired () in
  let stats = Cluster.stats cluster in
  let p0 = Cluster.proc cluster 0 and p1 = Cluster.proc cluster 1 in
  let set seqno = Msg.New_set_stubs { seqno; targets } in
  let msg =
    Msg.make ~seq:77 ~src:p1.Process.id ~dst:p0.Process.id ~sent_at:0 (Msg.Batch [ set 0; set 1 ])
  in
  Network.send (Cluster.net cluster) msg;
  settle cluster;
  check Alcotest.int "both constituents processed" 1
    (Scion_table.last_seqno p0.Process.scions p1.Process.id);
  check Alcotest.int "constituents not each other's replays" 0
    (Stats.get stats "net.msg.duplicate_ignored");
  let before = scion_state p0 in
  Network.send (Cluster.net cluster) msg;
  settle cluster;
  check Alcotest.int "envelope replay suppressed" 1 (Stats.get stats "net.msg.duplicate_ignored");
  check Alcotest.int "nothing reprocessed" 0 (Stats.get stats "reflist.sets_stale");
  check Alcotest.bool "scion table unchanged" true (scion_state p0 = before)

let test_duplicated_traffic_converges () =
  (* End-to-end: with the network duplicating a third of all traffic,
     the acyclic protocol neither leaks nor over-reclaims. *)
  let faults =
    { Faults.none with Faults.default_link = { Faults.default_link with duplicate_prob = 0.35 } }
  in
  let net_config = Network.default_config () in
  let cluster = Cluster.create ~seed:5 ~net_config ~faults ~n:3 () in
  let a = Mutator.alloc cluster ~proc:0 () in
  let b = Mutator.alloc cluster ~proc:1 () in
  let c = Mutator.alloc cluster ~proc:2 () in
  Mutator.wire_remote cluster ~holder:a ~target:b;
  Mutator.wire_remote cluster ~holder:b ~target:c;
  Mutator.add_root cluster a;
  gc_rounds cluster 3;
  check Alcotest.int "all alive under duplication" 3 (Cluster.total_objects cluster);
  Mutator.remove_root cluster a;
  gc_rounds cluster 5;
  check Alcotest.int "all reclaimed under duplication" 0 (Cluster.total_objects cluster);
  check Alcotest.bool "duplicates were suppressed" true
    (Stats.get (Cluster.stats cluster) "net.msg.duplicate_ignored" > 0)

let suite =
  ( "rt-gc",
    [
      Alcotest.test_case "lgc: collects unrooted" `Quick test_lgc_collects_unrooted;
      Alcotest.test_case "lgc: scion protects" `Quick test_lgc_scion_protects;
      Alcotest.test_case "lgc: local cycle collected" `Quick test_lgc_local_cycle_collected;
      Alcotest.test_case "lgc: drops dead stubs" `Quick test_lgc_drops_dead_stubs;
      Alcotest.test_case "lgc: pre-sweep hook" `Quick test_lgc_pre_sweep_hook;
      Alcotest.test_case "acyclic: chain reclaimed" `Quick test_acyclic_chain_reclaimed;
      Alcotest.test_case "acyclic: distributed cycle leaks" `Quick
        test_acyclic_distributed_cycle_not_reclaimed;
      Alcotest.test_case "export: third-party creates scion" `Quick
        test_export_third_party_creates_scion;
      Alcotest.test_case "export: pin released after ack" `Quick test_export_pin_released_after_ack;
      Alcotest.test_case "export: safe when exporter drops ref" `Quick
        test_export_safe_when_exporter_drops_ref;
      Alcotest.test_case "export: retries under 60% loss" `Quick test_export_notice_retry_under_loss;
      Alcotest.test_case "export: healing after lost notice" `Quick test_healing_after_lost_notice;
      Alcotest.test_case "reflist: probe recovers lost final set" `Quick
        test_probe_recovers_lost_final_set;
      Alcotest.test_case "export: owner-side is synchronous" `Quick test_owner_side_export;
      Alcotest.test_case "rmi: bumps invocation counters" `Quick test_rmi_bumps_ics;
      Alcotest.test_case "rmi: reply continuation" `Quick test_rmi_reply_runs_continuation;
      Alcotest.test_case "rmi: behavior mutates callee" `Quick test_rmi_behavior_mutates_callee;
      Alcotest.test_case "rmi: results create stubs/scions" `Quick test_rmi_results_create_stubs;
      Alcotest.test_case "rmi: dangling target" `Quick test_rmi_to_collected_object;
      Alcotest.test_case "rmi: requires stub" `Quick test_rmi_requires_stub;
      Alcotest.test_case "rmi: rejects local target" `Quick test_rmi_rejects_local_target;
      Alcotest.test_case "rmi: pin timeout releases" `Quick test_rmi_pin_timeout_releases;
      Alcotest.test_case "rmi: count_replies mode" `Quick test_rmi_count_replies_mode;
      Alcotest.test_case "rmi: nested calls" `Quick test_rmi_nested_calls;
      Alcotest.test_case "rmi: call_sync" `Quick test_call_sync;
      Alcotest.test_case "pstore: LRU basics" `Quick test_pstore_basics;
      Alcotest.test_case "pstore: forget" `Quick test_pstore_forget;
      Alcotest.test_case "pstore: LGC thrashing" `Quick test_pstore_lgc_thrashing;
      Alcotest.test_case "replicate: copies references" `Quick test_replicate_copies_references;
      Alcotest.test_case "replicate: keeps targets alive" `Quick test_replica_keeps_targets_alive;
      Alcotest.test_case "replicate: under loss" `Quick test_replicate_under_loss;
      Alcotest.test_case "batching: coalesces a window" `Quick test_batching_coalesces;
      Alcotest.test_case "batching: single payload travels plain" `Quick
        test_batching_single_payload_travels_plain;
      Alcotest.test_case "batching: off = immediate send" `Quick test_batching_off_is_immediate;
      Alcotest.test_case "batching: acyclic chain still reclaimed" `Quick
        test_batching_chain_reclaimed;
      Alcotest.test_case "batching: clique round sends fewer msgs" `Quick
        test_batching_cuts_clique_traffic;
      Alcotest.test_case "batching: cycle detection converges" `Quick
        test_batching_detection_converges;
      Alcotest.test_case "duplicate: new-set replay is idempotent" `Quick
        test_duplicate_new_set_idempotent;
      Alcotest.test_case "duplicate: batch replay is idempotent" `Quick
        test_duplicate_batch_idempotent;
      Alcotest.test_case "duplicate: acyclic protocol converges" `Quick
        test_duplicated_traffic_converges;
    ] )
