(* Tests for the wire primitives and both codecs, including the
   qcheck roundtrip property each codec must satisfy. *)

module Sval = Adgc_serial.Sval
module Wire = Adgc_serial.Wire
module Codec = Adgc_serial.Codec

let rotor = (module Adgc_serial.Rotor_codec : Codec.S)

let net = (module Adgc_serial.Net_codec : Codec.S)

let check = Alcotest.check

let sval = Alcotest.testable Sval.pp Sval.equal

(* ------------------------------------------------------------------ *)
(* Wire *)

let test_wire_varint_roundtrip () =
  let cases = [ 0; 1; -1; 63; 64; -64; 127; 128; 300; -300; 1 lsl 40; -(1 lsl 40); max_int; min_int + 1 ] in
  let w = Wire.Writer.create () in
  List.iter (Wire.Writer.varint w) cases;
  let r = Wire.Reader.of_string (Wire.Writer.contents w) in
  List.iter (fun v -> check Alcotest.int (string_of_int v) v (Wire.Reader.varint r)) cases;
  check Alcotest.bool "consumed all" true (Wire.Reader.at_end r)

let test_wire_varint_small_is_one_byte () =
  let w = Wire.Writer.create () in
  Wire.Writer.varint w 5;
  check Alcotest.int "1 byte" 1 (Wire.Writer.length w);
  let w2 = Wire.Writer.create () in
  Wire.Writer.varint w2 (-3);
  check Alcotest.int "negative small also 1 byte" 1 (Wire.Writer.length w2)

let test_wire_int64_roundtrip () =
  let cases = [ 0L; 1L; -1L; Int64.max_int; Int64.min_int; 0xDEADBEEFL ] in
  let w = Wire.Writer.create () in
  List.iter (Wire.Writer.int64 w) cases;
  let r = Wire.Reader.of_string (Wire.Writer.contents w) in
  List.iter (fun v -> check Alcotest.int64 (Int64.to_string v) v (Wire.Reader.int64 r)) cases

let test_wire_float_roundtrip () =
  let cases = [ 0.0; -0.0; 1.5; -3.25; Float.max_float; Float.min_float; infinity; neg_infinity ] in
  let w = Wire.Writer.create () in
  List.iter (Wire.Writer.float w) cases;
  let r = Wire.Reader.of_string (Wire.Writer.contents w) in
  List.iter (fun v -> check (Alcotest.float 0.0) (string_of_float v) v (Wire.Reader.float r)) cases;
  (* nan compares unequal; check bits instead *)
  let w2 = Wire.Writer.create () in
  Wire.Writer.float w2 Float.nan;
  let r2 = Wire.Reader.of_string (Wire.Writer.contents w2) in
  check Alcotest.bool "nan" true (Float.is_nan (Wire.Reader.float r2))

let test_wire_string_roundtrip () =
  let cases = [ ""; "a"; "hello world"; String.make 1000 '\x00'; "\xff\xfe" ] in
  let w = Wire.Writer.create () in
  List.iter (Wire.Writer.string w) cases;
  let r = Wire.Reader.of_string (Wire.Writer.contents w) in
  List.iter (fun v -> check Alcotest.string "string" v (Wire.Reader.string r)) cases

let test_wire_truncated_fails () =
  let w = Wire.Writer.create () in
  Wire.Writer.string w "hello";
  let full = Wire.Writer.contents w in
  let cut = String.sub full 0 (String.length full - 2) in
  let r = Wire.Reader.of_string cut in
  match Wire.Reader.string r with
  | _ -> Alcotest.fail "expected Malformed"
  | exception Wire.Malformed _ -> ()

let test_wire_expect () =
  let r = Wire.Reader.of_string "abcdef" in
  Wire.Reader.expect r "abc";
  check Alcotest.int "pos" 3 (Wire.Reader.pos r);
  (match Wire.Reader.expect r "XYZ" with
  | () -> Alcotest.fail "expected Malformed"
  | exception Wire.Malformed _ -> ())

(* ------------------------------------------------------------------ *)
(* Codecs: hand-picked documents *)

let samples =
  [
    Sval.Unit;
    Sval.Bool true;
    Sval.Bool false;
    Sval.Int 0;
    Sval.Int (-12345);
    Sval.Int max_int;
    Sval.Float 3.14159;
    Sval.Float (-0.0);
    Sval.Float infinity;
    Sval.Str "";
    Sval.Str "plain";
    Sval.Str "with <angle> & \"quotes\" and\nnewlines\x00\x7f";
    Sval.List [];
    Sval.List [ Sval.Int 1; Sval.Str "two"; Sval.Bool false ];
    Sval.Record ("empty", []);
    Sval.Record
      ( "node",
        [
          ("left", Sval.Record ("leaf", [ ("v", Sval.Int 1) ]));
          ("right", Sval.List [ Sval.Unit; Sval.Unit ]);
          ("name", Sval.Str "x&y<z>") ;
        ] );
  ]

let roundtrip_samples codec name () =
  List.iter
    (fun v -> check sval name v (Codec.roundtrip codec v))
    samples

let test_nan_roundtrip () =
  List.iter
    (fun codec ->
      match Codec.roundtrip codec (Sval.Float Float.nan) with
      | Sval.Float f -> check Alcotest.bool "nan" true (Float.is_nan f)
      | _ -> Alcotest.fail "expected float")
    [ rotor; net ]

let test_rotor_is_much_larger () =
  let doc = Sval.List (List.init 100 (fun i -> Sval.Record ("o", [ ("v", Sval.Int i) ]))) in
  let r = String.length (Codec.encode rotor doc) in
  let n = String.length (Codec.encode net doc) in
  if r < 10 * n then Alcotest.failf "rotor %d bytes vs net %d bytes: expected >= 10x" r n

let test_rotor_checksum_detects_corruption () =
  let doc = Sval.Record ("r", [ ("a", Sval.Int 7) ]) in
  let enc = Codec.encode rotor doc in
  (* Flip a payload character (the digit 7). *)
  let i = String.index enc '7' in
  let corrupted = Bytes.of_string enc in
  Bytes.set corrupted i '8';
  match Codec.decode rotor (Bytes.to_string corrupted) with
  | _ -> Alcotest.fail "expected Malformed"
  | exception Wire.Malformed { what; _ } ->
      check Alcotest.string "checksum error" "checksum mismatch" what

let test_net_rejects_garbage () =
  List.iter
    (fun s ->
      match Codec.decode net s with
      | _ -> Alcotest.failf "accepted %S" s
      | exception Wire.Malformed _ -> ())
    [ ""; "\xff"; "\x06\x03\x00"; "\x05\x20abc" ]

let test_net_rejects_trailing () =
  let enc = Codec.encode net (Sval.Int 1) ^ "\x00" in
  match Codec.decode net enc with
  | _ -> Alcotest.fail "expected Malformed"
  | exception Wire.Malformed { what; _ } -> check Alcotest.string "trailing" "trailing bytes" what

let test_rotor_rejects_missing_checksum () =
  match Codec.decode rotor "<soap:Envelope>..." with
  | _ -> Alcotest.fail "expected Malformed"
  | exception Wire.Malformed _ -> ()

let test_net_interning_shares_names () =
  (* 100 records of the same type: the name should be written once. *)
  let doc = Sval.List (List.init 100 (fun i -> Sval.Record ("very_long_record_type_name", [ ("field_name_also_long", Sval.Int i) ]))) in
  let bytes = String.length (Codec.encode net doc) in
  (* Non-interned lower bound would be 100 * (26+20) name bytes alone. *)
  check Alcotest.bool "interned" true (bytes < 1000)

(* ------------------------------------------------------------------ *)
(* qcheck: random document roundtrips *)

let gen_sval =
  let open QCheck2.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          let leaf =
            oneof
              [
                return Sval.Unit;
                map (fun b -> Sval.Bool b) bool;
                map (fun i -> Sval.Int i) int;
                map (fun f -> Sval.Float f) float;
                map (fun s -> Sval.Str s) string_printable;
              ]
          in
          if n <= 0 then leaf
          else
            oneof
              [
                leaf;
                map (fun l -> Sval.List l) (list_size (int_bound 4) (self (n / 2)));
                map2
                  (fun name fields -> Sval.Record (name, fields))
                  (string_size ~gen:(char_range 'a' 'z') (int_range 1 8))
                  (list_size (int_bound 4)
                     (pair (string_size ~gen:(char_range 'a' 'z') (int_range 1 8)) (self (n / 2))));
              ])
        (Int.min n 6))

let qcheck_roundtrip codec name =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count:300 gen_sval (fun v ->
         Sval.equal v (Codec.roundtrip codec v)))

let test_size_nodes () =
  check Alcotest.int "leaf" 1 (Sval.size_nodes Sval.Unit);
  check Alcotest.int "list" 3 (Sval.size_nodes (Sval.List [ Sval.Int 1; Sval.Int 2 ]));
  check Alcotest.int "record" 2 (Sval.size_nodes (Sval.Record ("r", [ ("a", Sval.Unit) ])))

(* ------------------------------------------------------------------ *)
(* Message payloads: every wire payload must survive the full
   encode -> bytes -> decode -> payload_of_sval pipeline through both
   codecs, and damaged bytes must fail with [Wire.Malformed], never
   with anything else.  Payloads are compared through their canonical
   sval (maps re-sort on encode, so [=] on the OCaml values would be
   too strict about tree shape). *)

module Msg = Adgc_rt.Msg
open Adgc_algebra

let gen_proc = QCheck2.Gen.(map Proc_id.of_int (int_bound 7))

let gen_oid =
  QCheck2.Gen.(
    map2 (fun owner serial -> Oid.make ~owner ~serial) gen_proc (int_bound 100))

let gen_ref = QCheck2.Gen.(map2 (fun src target -> Ref_key.make ~src ~target) gen_proc gen_oid)

let gen_oids = QCheck2.Gen.(list_size (int_bound 4) gen_oid)

let gen_detection_id =
  QCheck2.Gen.(map2 (fun initiator seq -> Detection_id.make ~initiator ~seq) gen_proc (int_bound 100))

let gen_algebra =
  QCheck2.Gen.(
    map
      (List.fold_left
         (fun alg (is_src, key, ic) ->
           match Algebra.add alg (if is_src then Algebra.Source else Algebra.Target) key ~ic with
           | Algebra.Added alg -> alg
           | Algebra.Ic_conflict _ -> alg)
         Algebra.empty)
      (list_size (int_bound 6) (triple bool gen_ref (int_bound 5))))

let gen_cdm =
  QCheck2.Gen.(
    map2
      (fun (id, algebra, frontier) (hops, budget) -> Cdm.make ~id ~algebra ~frontier ~hops ~budget)
      (triple gen_detection_id gen_algebra gen_ref)
      (pair (int_bound 20) (int_bound 64)))

let gen_bt =
  QCheck2.Gen.(
    let trace = map2 (fun initiator seq -> { Btmsg.initiator; seq }) gen_proc (int_bound 50) in
    oneof
      [
        map2
          (fun (trace, subject) visited -> Btmsg.Query { trace; subject; visited })
          (pair trace gen_ref)
          (list_size (int_bound 4) gen_ref);
        map2
          (fun (trace, subject) rooted ->
            Btmsg.Reply
              { trace; subject; verdict = (if rooted then Btmsg.Rooted else Btmsg.Cycle_back) })
          (pair trace gen_ref)
          bool;
      ])

let gen_hughes =
  QCheck2.Gen.(
    oneof
      [
        map (fun stamps -> Hmsg.Stamp stamps) (list_size (int_bound 4) (pair gen_oid (int_bound 100)));
        map (fun round_time -> Hmsg.Report { round_time }) (int_bound 10_000);
        map (fun value -> Hmsg.Threshold { value }) (int_bound 10_000);
      ])

let gen_flat_payload =
  QCheck2.Gen.(
    oneof
      [
        map2
          (fun (req_id, target) (args, stub_ic) -> Msg.Rmi_request { req_id; target; args; stub_ic })
          (pair (int_bound 1000) gen_oid)
          (pair gen_oids (int_bound 9));
        map2
          (fun (req_id, target) results -> Msg.Rmi_reply { req_id; target; results })
          (pair (int_bound 1000) gen_oid)
          gen_oids;
        map2
          (fun (notice_id, target) new_holder -> Msg.Export_notice { notice_id; target; new_holder })
          (pair (int_bound 1000) gen_oid)
          gen_proc;
        map2
          (fun (notice_id, target) new_holder -> Msg.Export_ack { notice_id; target; new_holder })
          (pair (int_bound 1000) gen_oid)
          gen_proc;
        map2
          (fun seqno entries ->
            Msg.New_set_stubs
              {
                seqno;
                targets =
                  List.fold_left (fun m (o, ic) -> Oid.Map.add o ic m) Oid.Map.empty entries;
              })
          (int_bound 1000)
          (list_size (int_bound 5) (pair gen_oid (int_bound 9)));
        return Msg.Scion_probe;
        map (fun cdm -> Msg.Cdm cdm) gen_cdm;
        map2
          (fun id scions -> Msg.Cdm_delete { id; scions })
          gen_detection_id
          (list_size (int_bound 4) gen_ref);
        map (fun bt -> Msg.Bt bt) gen_bt;
        map (fun h -> Msg.Hughes h) gen_hughes;
      ])

let gen_payload =
  QCheck2.Gen.(
    frequency
      [
        (4, gen_flat_payload);
        (1, map (fun l -> Msg.Batch l) (list_size (int_bound 4) gen_flat_payload));
      ])

let gen_msg =
  QCheck2.Gen.(
    map2
      (fun (src, dst, seq) (sent_at, payload) -> Msg.make ~seq ~src ~dst ~sent_at payload)
      (triple gen_proc gen_proc (int_range (-1) 1000))
      (pair (int_bound 100_000) gen_payload))

let payload_equal a b = Sval.equal (Msg.payload_sval a) (Msg.payload_sval b)

let qcheck_payload_roundtrip codec name =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count:300 gen_payload (fun p ->
         let bytes = Codec.encode codec (Msg.payload_sval p) in
         match Msg.payload_of_sval (Codec.decode codec bytes) with
         | Some p' -> payload_equal p p'
         | None -> false))

let qcheck_envelope_roundtrip codec name =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count:200 gen_msg (fun m ->
         let bytes = Codec.encode codec (Msg.to_sval m) in
         match Msg.of_sval (Codec.decode codec bytes) with
         | Some m' ->
             m'.Msg.src = m.Msg.src && m'.Msg.dst = m.Msg.dst && m'.Msg.seq = m.Msg.seq
             && m'.Msg.sent_at = m.Msg.sent_at
             && payload_equal m.Msg.payload m'.Msg.payload
         | None -> false))

(* Damaged bytes: decoding may fail (with Malformed) or still yield a
   structurally valid sval that [payload_of_sval] then accepts or
   rejects — but nothing in the pipeline may raise anything else. *)
let survives_damage codec bytes =
  match Codec.decode codec bytes with
  | sval -> ignore (Msg.payload_of_sval sval : Msg.payload option)
  | exception Wire.Malformed _ -> ()

let qcheck_truncation codec name =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count:100
       QCheck2.Gen.(pair gen_payload (int_bound 1000))
       (fun (p, cut) ->
         let bytes = Codec.encode codec (Msg.payload_sval p) in
         let cut = cut mod max 1 (String.length bytes) in
         survives_damage codec (String.sub bytes 0 cut);
         true))

let qcheck_corruption codec name =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count:100
       QCheck2.Gen.(triple gen_payload (int_bound 10_000) (int_range 1 255))
       (fun (p, pos, delta) ->
         let bytes = Codec.encode codec (Msg.payload_sval p) in
         let pos = pos mod String.length bytes in
         let corrupted = Bytes.of_string bytes in
         Bytes.set corrupted pos (Char.chr ((Char.code bytes.[pos] + delta) land 0xff));
         survives_damage codec (Bytes.to_string corrupted);
         true))

let test_payload_decoder_rejects () =
  let none what sval =
    check Alcotest.bool what false (Option.is_some (Msg.payload_of_sval sval))
  in
  (* Field order is part of the format. *)
  none "reordered fields"
    (Sval.Record ("scion_probe", [ ("extra", Sval.Unit) ]));
  none "reordered export_ack"
    (Sval.Record
       ( "export_ack",
         [
           ("target", Sval.List [ Sval.Int 0; Sval.Int 0 ]);
           ("notice_id", Sval.Int 1);
           ("new_holder", Sval.Int 1);
         ] ));
  none "negative proc id"
    (Sval.Record
       ( "export_ack",
         [
           ("notice_id", Sval.Int 1);
           ("target", Sval.List [ Sval.Int 0; Sval.Int 0 ]);
           ("new_holder", Sval.Int (-1));
         ] ));
  none "unknown record" (Sval.Record ("mystery", []));
  none "not a record" (Sval.Int 3);
  (* Batches never nest. *)
  none "nested batch"
    (Sval.Record
       ( "batch",
         [
           ( "msgs",
             Sval.List [ Sval.Record ("batch", [ ("msgs", Sval.List []) ]) ] );
         ] ));
  (* A valid batch of two payloads decodes. *)
  let batch =
    Msg.Batch [ Msg.Scion_probe; Msg.Rmi_reply { req_id = 3; target = Oid.make ~owner:(Proc_id.of_int 1) ~serial:2; results = [] } ]
  in
  match Msg.payload_of_sval (Msg.payload_sval batch) with
  | Some p -> check Alcotest.bool "batch roundtrip" true (payload_equal batch p)
  | None -> Alcotest.fail "valid batch rejected"

(* Per-connection interning (Net_codec.Stream): record and field names
   cross a connection once, so the second frame of the same shape must
   be strictly smaller than the first — and exactly as small as the
   tail of a single-buffer encoding of both values.  A one-shot encode
   (fresh tables per message) must cost the full names every time. *)
let test_net_stream_interning_shrinks () =
  let status rank tick =
    Sval.Record
      ( "status",
        [
          ("rank", Sval.Int rank);
          ("tick", Sval.Int tick);
          ("ready", Sval.Bool true);
          ("reclaimed", Sval.List []);
        ] )
  in
  let w = Adgc_serial.Net_codec.Stream.writer () in
  let f1 = Adgc_serial.Net_codec.Stream.encode w (status 1 100) in
  let f2 = Adgc_serial.Net_codec.Stream.encode w (status 2 200) in
  check Alcotest.bool
    (Printf.sprintf "second frame smaller (%d < %d)" (String.length f2) (String.length f1))
    true
    (String.length f2 < String.length f1);
  (* The names "status"/"rank"/... are 30+ bytes; the interned frame
     must have shed at least that. *)
  check Alcotest.bool "shrinks by at least the name bytes" true
    (String.length f1 - String.length f2 >= 30);
  let oneshot = Adgc_serial.Net_codec.encode (status 2 200) in
  check Alcotest.int "one-shot encode pays full names every message"
    (String.length f1) (String.length oneshot);
  let r = Adgc_serial.Net_codec.Stream.reader () in
  check sval "stream decode 1" (status 1 100) (Adgc_serial.Net_codec.Stream.decode r f1);
  check sval "stream decode 2" (status 2 200) (Adgc_serial.Net_codec.Stream.decode r f2)

(* Interned stream frames are only decodable in order — frame 2 read
   by a fresh reader must raise Malformed, never crash or misdecode:
   exactly why a reconnect gets fresh codec state. *)
let test_net_stream_frames_are_order_dependent () =
  let v n = Sval.Record ("heartbeat", [ ("tick", Sval.Int n) ]) in
  let w = Adgc_serial.Net_codec.Stream.writer () in
  let _f1 = Adgc_serial.Net_codec.Stream.encode w (v 1) in
  let f2 = Adgc_serial.Net_codec.Stream.encode w (v 2) in
  let fresh = Adgc_serial.Net_codec.Stream.reader () in
  match Adgc_serial.Net_codec.Stream.decode fresh f2 with
  | exception Wire.Malformed _ -> ()
  | decoded ->
      check Alcotest.bool "fresh reader must not silently misdecode" false
        (Sval.equal decoded (v 2))

let suite =
  ( "serial",
    [
      Alcotest.test_case "wire: varint roundtrip" `Quick test_wire_varint_roundtrip;
      Alcotest.test_case "wire: small varints are 1 byte" `Quick test_wire_varint_small_is_one_byte;
      Alcotest.test_case "wire: int64 roundtrip" `Quick test_wire_int64_roundtrip;
      Alcotest.test_case "wire: float roundtrip" `Quick test_wire_float_roundtrip;
      Alcotest.test_case "wire: string roundtrip" `Quick test_wire_string_roundtrip;
      Alcotest.test_case "wire: truncated input fails" `Quick test_wire_truncated_fails;
      Alcotest.test_case "wire: expect" `Quick test_wire_expect;
      Alcotest.test_case "rotor: sample roundtrips" `Quick (roundtrip_samples rotor "rotor");
      Alcotest.test_case "net: sample roundtrips" `Quick (roundtrip_samples net "net");
      Alcotest.test_case "codecs: nan" `Quick test_nan_roundtrip;
      Alcotest.test_case "rotor is >= 10x larger than net" `Quick test_rotor_is_much_larger;
      Alcotest.test_case "rotor: checksum detects corruption" `Quick test_rotor_checksum_detects_corruption;
      Alcotest.test_case "net: rejects garbage" `Quick test_net_rejects_garbage;
      Alcotest.test_case "net: rejects trailing bytes" `Quick test_net_rejects_trailing;
      Alcotest.test_case "rotor: rejects missing checksum" `Quick test_rotor_rejects_missing_checksum;
      Alcotest.test_case "net: name interning" `Quick test_net_interning_shares_names;
      Alcotest.test_case "net: stream interning shrinks later frames" `Quick
        test_net_stream_interning_shrinks;
      Alcotest.test_case "net: stream frames are order-dependent" `Quick
        test_net_stream_frames_are_order_dependent;
      Alcotest.test_case "sval: size_nodes" `Quick test_size_nodes;
      qcheck_roundtrip rotor "qcheck rotor roundtrip";
      qcheck_roundtrip net "qcheck net roundtrip";
      Alcotest.test_case "msg: decoder rejects malformed payloads" `Quick
        test_payload_decoder_rejects;
      qcheck_payload_roundtrip net "qcheck msg payload roundtrip (net)";
      qcheck_payload_roundtrip rotor "qcheck msg payload roundtrip (rotor)";
      qcheck_envelope_roundtrip net "qcheck msg envelope roundtrip (net)";
      qcheck_truncation net "qcheck truncated payload only Malformed (net)";
      qcheck_truncation rotor "qcheck truncated payload only Malformed (rotor)";
      qcheck_corruption net "qcheck corrupted payload only Malformed (net)";
      qcheck_corruption rotor "qcheck corrupted payload only Malformed (rotor)";
    ] )
