(* Tests for graph summarization (StubsFrom / ScionsTo / Local.Reach),
   the naive-vs-condensed equivalence property, snapshot serialization
   and the heap imaging used by experiment E2. *)

open Adgc_algebra
open Adgc_rt
module Summary = Adgc_snapshot.Summary
module Summarize = Adgc_snapshot.Summarize
module Graph_image = Adgc_snapshot.Graph_image
module Snapshot_store = Adgc_snapshot.Snapshot_store

let check = Alcotest.check

let mk ?(n = 4) () = Cluster.create ~n ()

let key src target = Ref_key.make ~src:(Proc_id.of_int src) ~target

(* Build the paper's Fig. 3 situation restricted to P2: scion for F
   (from P1), local F -> G -> H -> J, F -> H, and J holds the remote
   reference to Q@P4. *)
let build_p2_like () =
  let cluster = mk () in
  let f = Mutator.alloc cluster ~proc:1 () in
  let g = Mutator.alloc cluster ~proc:1 () in
  let h = Mutator.alloc cluster ~proc:1 () in
  let j = Mutator.alloc cluster ~proc:1 () in
  let q = Mutator.alloc cluster ~proc:3 () in
  let b = Mutator.alloc cluster ~proc:0 () in
  Mutator.add_root cluster b;
  Mutator.link cluster ~from_:f ~to_:g;
  Mutator.link cluster ~from_:f ~to_:h;
  Mutator.link cluster ~from_:g ~to_:h;
  Mutator.link cluster ~from_:h ~to_:j;
  Mutator.wire_remote cluster ~holder:b ~target:f;
  Mutator.wire_remote cluster ~holder:j ~target:q;
  (cluster, f, j, q)

let test_stubs_from () =
  let cluster, f, _, q = build_p2_like () in
  let summary = Summarize.run ~algo:Summarize.Naive ~now:0 (Cluster.proc cluster 1) in
  match Summary.find_scion summary (key 0 f.Heap.oid) with
  | Some si ->
      check Alcotest.int "one stub" 1 (Oid.Set.cardinal si.Summary.stubs_from);
      check Alcotest.bool "it is Q" true (Oid.Set.mem q.Heap.oid si.Summary.stubs_from);
      check Alcotest.bool "F not locally reachable" false si.Summary.target_locally_reachable
  | None -> Alcotest.fail "scion missing from summary"

let test_scions_to () =
  let cluster, f, _, q = build_p2_like () in
  let summary = Summarize.run ~algo:Summarize.Naive ~now:0 (Cluster.proc cluster 1) in
  match Summary.find_stub summary q.Heap.oid with
  | Some st ->
      check Alcotest.int "one scion leads here" 1 (Ref_key.Set.cardinal st.Summary.scions_to);
      check Alcotest.bool "it is F's scion" true
        (Ref_key.Set.mem (key 0 f.Heap.oid) st.Summary.scions_to);
      check Alcotest.bool "not locally reachable" false st.Summary.local_reach
  | None -> Alcotest.fail "stub missing from summary"

let test_local_reach_flag () =
  (* Root -> holder -> remote ref: Local.Reach must be true. *)
  let cluster = mk () in
  let holder = Mutator.alloc cluster ~proc:0 () in
  let target = Mutator.alloc cluster ~proc:1 () in
  Mutator.add_root cluster holder;
  Mutator.wire_remote cluster ~holder ~target;
  let summary = Summarize.run ~now:0 (Cluster.proc cluster 0) in
  match Summary.find_stub summary target.Heap.oid with
  | Some st -> check Alcotest.bool "locally reachable" true st.Summary.local_reach
  | None -> Alcotest.fail "stub missing"

let test_scion_target_locally_reachable () =
  let cluster = mk () in
  let x = Mutator.alloc cluster ~proc:0 () in
  let holder = Mutator.alloc cluster ~proc:1 () in
  Mutator.add_root cluster x;
  Mutator.add_root cluster holder;
  Mutator.wire_remote cluster ~holder ~target:x;
  let summary = Summarize.run ~now:0 (Cluster.proc cluster 0) in
  match Summary.find_scion summary (key 1 x.Heap.oid) with
  | Some si -> check Alcotest.bool "rooted target" true si.Summary.target_locally_reachable
  | None -> Alcotest.fail "scion missing"

let test_internal_refs_compiled_away () =
  let cluster, _, _, _ = build_p2_like () in
  let summary = Summarize.run ~now:0 (Cluster.proc cluster 1) in
  let scions, stubs = Summary.counts summary in
  (* Four local objects, four local references — but the summary holds
     only 1 scion and 1 stub. *)
  check Alcotest.int "scions" 1 scions;
  check Alcotest.int "stubs" 1 stubs

let test_shared_stub_multiple_scions () =
  (* Fig. 4's P5: V and Y both lead to the single stub to T. *)
  let cluster = mk ~n:6 () in
  let v = Mutator.alloc cluster ~proc:4 () in
  let y = Mutator.alloc cluster ~proc:4 () in
  let t = Mutator.alloc cluster ~proc:3 () in
  let f = Mutator.alloc cluster ~proc:1 () in
  let zd = Mutator.alloc cluster ~proc:5 () in
  Mutator.wire_remote cluster ~holder:f ~target:v;
  Mutator.wire_remote cluster ~holder:zd ~target:y;
  Mutator.wire_remote cluster ~holder:v ~target:t;
  ignore (Heap.add_ref (Cluster.proc cluster 4).Process.heap y t.Heap.oid : int);
  let summary = Summarize.run ~now:0 (Cluster.proc cluster 4) in
  (match Summary.find_stub summary t.Heap.oid with
  | Some st -> check Alcotest.int "two scions converge" 2 (Ref_key.Set.cardinal st.Summary.scions_to)
  | None -> Alcotest.fail "stub missing");
  match Summary.find_scion summary (key 5 y.Heap.oid) with
  | Some si -> check Alcotest.bool "Y reaches the stub" true (Oid.Set.mem t.Heap.oid si.Summary.stubs_from)
  | None -> Alcotest.fail "Y scion missing"

let test_diamond_and_cycle_local_structure () =
  (* Local diamond with an internal cycle, remote ref at the bottom:
     both summarizers must agree the scion reaches the stub. *)
  let cluster = mk () in
  let top = Mutator.alloc cluster ~proc:0 () in
  let l = Mutator.alloc cluster ~proc:0 () in
  let r = Mutator.alloc cluster ~proc:0 () in
  let bottom = Mutator.alloc cluster ~proc:0 () in
  let remote_obj = Mutator.alloc cluster ~proc:1 () in
  let holder = Mutator.alloc cluster ~proc:2 () in
  Mutator.link cluster ~from_:top ~to_:l;
  Mutator.link cluster ~from_:top ~to_:r;
  Mutator.link cluster ~from_:l ~to_:bottom;
  Mutator.link cluster ~from_:r ~to_:bottom;
  Mutator.link cluster ~from_:bottom ~to_:top;
  Mutator.wire_remote cluster ~holder:bottom ~target:remote_obj;
  Mutator.wire_remote cluster ~holder ~target:top;
  let naive = Summarize.run ~algo:Summarize.Naive ~now:0 (Cluster.proc cluster 0) in
  let cond = Summarize.run ~algo:Summarize.Condensed ~now:0 (Cluster.proc cluster 0) in
  check Alcotest.bool "summarizers agree" true (Summary.equal naive cond);
  match Summary.find_scion naive (key 2 top.Heap.oid) with
  | Some si -> check Alcotest.bool "reaches stub through diamond" true (Oid.Set.mem remote_obj.Heap.oid si.Summary.stubs_from)
  | None -> Alcotest.fail "scion missing"

let test_naive_equals_condensed_random () =
  (* Property: on random graphs both algorithms produce identical
     summaries. *)
  let rng = Adgc_util.Rng.create 2024 in
  for _case = 1 to 25 do
    let cluster = Cluster.create ~n:3 () in
    let _built =
      Adgc_workload.Topology.random cluster ~rng ~objects:40 ~edges:80 ~remote_prob:0.3
        ~root_prob:0.2
    in
    for proc = 0 to 2 do
      let p = Cluster.proc cluster proc in
      let naive = Summarize.run ~algo:Summarize.Naive ~now:0 p in
      let cond = Summarize.run ~algo:Summarize.Condensed ~now:0 p in
      if not (Summary.equal naive cond) then
        Alcotest.failf "summaries disagree on proc %d" proc
    done
  done

let test_all_summarizers_agree_under_churn () =
  (* Property: Naive, the dense Condensed, the set-based reference
     Condensed_sets and the Incremental summarizer all produce equal
     summaries on randomized graphs subjected to churn (allocation,
     linking, unlinking, RMIs) — the parity that lets Condensed stay
     the default. *)
  List.iter
    (fun seed ->
      let rng = Adgc_util.Rng.create seed in
      let cluster = Cluster.create ~n:3 () in
      let _built =
        Adgc_workload.Topology.random cluster ~rng ~objects:40 ~edges:80 ~remote_prob:0.3
          ~root_prob:0.2
      in
      let states = Array.init 3 (fun _ -> Summarize.Incremental.create ()) in
      let churn =
        Adgc_workload.Churn.create ~cluster ~rng:(Adgc_util.Rng.create (seed * 13 + 1)) ()
      in
      for round = 1 to 5 do
        for _ = 1 to 15 do
          Adgc_workload.Churn.step churn
        done;
        ignore (Cluster.drain cluster : int);
        for proc = 0 to 2 do
          let p = Cluster.proc cluster proc in
          let naive = Summarize.run ~algo:Summarize.Naive ~now:round p in
          let dense = Summarize.run ~algo:Summarize.Condensed ~now:round p in
          let sets = Summarize.run ~algo:Summarize.Condensed_sets ~now:round p in
          let inc = Summarize.Incremental.run states.(proc) ~now:round p in
          if not (Summary.equal naive dense) then
            Alcotest.failf "seed %d round %d proc %d: naive <> condensed" seed round proc;
          if not (Summary.equal naive sets) then
            Alcotest.failf "seed %d round %d proc %d: naive <> condensed_sets" seed round proc;
          if not (Summary.equal naive inc) then
            Alcotest.failf "seed %d round %d proc %d: naive <> incremental" seed round proc
        done
      done)
    [ 101; 202; 303 ]

let test_summary_captures_ics () =
  let cluster = mk ~n:2 () in
  let caller = Mutator.alloc cluster ~proc:0 () in
  let callee = Mutator.alloc cluster ~proc:1 () in
  Mutator.add_root cluster caller;
  Mutator.add_root cluster callee;
  Mutator.wire_remote cluster ~holder:caller ~target:callee;
  Mutator.invoke cluster ~src:0 ~target:callee.Heap.oid;
  ignore (Cluster.drain cluster : int);
  let s0 = Summarize.run ~now:1 (Cluster.proc cluster 0) in
  let s1 = Summarize.run ~now:1 (Cluster.proc cluster 1) in
  (match Summary.find_stub s0 callee.Heap.oid with
  | Some st -> check Alcotest.int "stub ic in summary" 1 st.Summary.stub_ic
  | None -> Alcotest.fail "stub missing");
  match Summary.find_scion s1 (key 0 callee.Heap.oid) with
  | Some si ->
      check Alcotest.int "scion ic in summary" 1 si.Summary.scion_ic;
      check Alcotest.bool "last_invoked recorded" true (si.Summary.last_invoked > 0)
  | None -> Alcotest.fail "scion missing"

let test_summary_is_immutable_snapshot () =
  (* Mutations after the summary is taken must not show up in it. *)
  let cluster, f, j, q = build_p2_like () in
  ignore f;
  let p1 = Cluster.proc cluster 1 in
  let summary = Summarize.run ~now:0 p1 in
  (* Remove the remote reference afterwards. *)
  ignore (Heap.remove_ref p1.Process.heap j q.Heap.oid : bool);
  match Summary.find_stub summary q.Heap.oid with
  | Some _ -> ()
  | None -> Alcotest.fail "summary changed retroactively"

let test_summary_sval_roundtrip () =
  let cluster, _, _, _ = build_p2_like () in
  let summary = Summarize.run ~now:7 (Cluster.proc cluster 1) in
  match Summary.of_sval (Summary.to_sval summary) with
  | Some s ->
      check Alcotest.bool "roundtrip" true (Summary.equal summary s);
      check Alcotest.int "taken_at preserved" 7 s.Summary.taken_at
  | None -> Alcotest.fail "decode failed"

let test_summary_sval_rejects_junk () =
  check Alcotest.bool "junk" true (Summary.of_sval (Adgc_serial.Sval.Int 1) = None)

(* ------------------------------------------------------------------ *)
(* Incremental summarization *)

let test_incremental_matches_full () =
  let cluster, f, j, q = build_p2_like () in
  ignore (f, q);
  let p1 = Cluster.proc cluster 1 in
  let state = Summarize.Incremental.create () in
  let check_same label =
    let inc = Summarize.Incremental.run state ~now:0 p1 in
    let full = Summarize.run ~algo:Summarize.Naive ~now:0 p1 in
    if not (Summary.equal inc full) then Alcotest.failf "%s: incremental diverged" label
  in
  check_same "initial";
  check_same "no mutation";
  (* Mutate inside the scion's region. *)
  let extra = Mutator.alloc cluster ~proc:1 () in
  Mutator.link cluster ~from_:j ~to_:extra;
  check_same "after link";
  ignore (Heap.remove_ref p1.Process.heap j extra.Heap.oid : bool);
  check_same "after unlink"

let test_incremental_reuses_clean_regions () =
  let cluster, _, _, _ = build_p2_like () in
  let p1 = Cluster.proc cluster 1 in
  let state = Summarize.Incremental.create () in
  ignore (Summarize.Incremental.run state ~now:0 p1 : Summary.t);
  check Alcotest.bool "first run traces" true (Summarize.Incremental.last_recomputed state >= 1);
  ignore (Summarize.Incremental.run state ~now:1 p1 : Summary.t);
  check Alcotest.int "second run re-traces nothing" 0
    (Summarize.Incremental.last_recomputed state);
  check Alcotest.bool "regions reused" true (Summarize.Incremental.last_reused state >= 2)

let test_incremental_detects_root_change () =
  let cluster, f, _, _ = build_p2_like () in
  let p1 = Cluster.proc cluster 1 in
  let state = Summarize.Incremental.create () in
  ignore (Summarize.Incremental.run state ~now:0 p1 : Summary.t);
  Heap.add_root p1.Process.heap f.Heap.oid;
  let inc = Summarize.Incremental.run state ~now:1 p1 in
  let full = Summarize.run ~algo:Summarize.Naive ~now:1 p1 in
  check Alcotest.bool "sees the new root" true (Summary.equal inc full);
  match Summary.find_scion inc (key 0 f.Heap.oid) with
  | Some si -> check Alcotest.bool "now locally reachable" true si.Summary.target_locally_reachable
  | None -> Alcotest.fail "scion missing"

let test_incremental_random_equivalence () =
  (* Interleave random mutations with incremental runs; every run must
     equal a from-scratch summary. *)
  let rng = Adgc_util.Rng.create 314 in
  for _case = 1 to 10 do
    let cluster = Cluster.create ~n:3 () in
    let _built =
      Adgc_workload.Topology.random cluster ~rng ~objects:30 ~edges:60 ~remote_prob:0.3
        ~root_prob:0.2
    in
    let states = Array.init 3 (fun _ -> Summarize.Incremental.create ()) in
    let churn =
      Adgc_workload.Churn.create ~cluster ~rng:(Adgc_util.Rng.create (_case * 7)) ()
    in
    for round = 1 to 6 do
      for _ = 1 to 10 do
        Adgc_workload.Churn.step churn
      done;
      ignore (Cluster.drain cluster : int);
      for proc = 0 to 2 do
        let p = Cluster.proc cluster proc in
        let inc = Summarize.Incremental.run states.(proc) ~now:round p in
        let full = Summarize.run ~algo:Summarize.Naive ~now:round p in
        if not (Summary.equal inc full) then
          Alcotest.failf "case %d round %d proc %d: incremental diverged" _case round proc
      done
    done
  done

(* ------------------------------------------------------------------ *)
(* Snapshot store *)

let test_store_roundtrips_through_codec () =
  let cluster, _, _, _ = build_p2_like () in
  let rt = Cluster.rt cluster in
  let store = Snapshot_store.create rt in
  let received = ref [] in
  Snapshot_store.subscribe store (fun s -> received := s :: !received);
  let s = Snapshot_store.take store (Cluster.proc cluster 1) in
  check Alcotest.int "subscriber called" 1 (List.length !received);
  check Alcotest.bool "published = returned" true (Summary.equal s (List.hd !received));
  check Alcotest.bool "bytes on disk" true
    (Snapshot_store.bytes_on_disk store (Proc_id.of_int 1) > 0);
  match Snapshot_store.latest store (Proc_id.of_int 1) with
  | Some latest -> check Alcotest.bool "latest matches" true (Summary.equal s latest)
  | None -> Alcotest.fail "no latest"

let test_store_take_all () =
  let cluster, _, _, _ = build_p2_like () in
  let store = Snapshot_store.create (Cluster.rt cluster) in
  Snapshot_store.take_all store;
  for i = 0 to 3 do
    check Alcotest.bool
      (Printf.sprintf "proc %d stored" i)
      true
      (Snapshot_store.latest store (Proc_id.of_int i) <> None)
  done

let test_store_with_rotor_codec () =
  let cluster, _, _, _ = build_p2_like () in
  let store =
    Snapshot_store.create
      ~codec:(module Adgc_serial.Rotor_codec : Adgc_serial.Codec.S)
      (Cluster.rt cluster)
  in
  let s = Snapshot_store.take store (Cluster.proc cluster 1) in
  check Alcotest.int "decodes fine" 1 (fst (Summary.counts s))

(* ------------------------------------------------------------------ *)
(* Graph image (E2) *)

let test_graph_image_counts () =
  let cluster, _, _, _ = build_p2_like () in
  let image = Graph_image.of_process (Cluster.proc cluster 1) in
  check (Alcotest.option Alcotest.int) "objects" (Some 4) (Graph_image.object_count image)

let test_graph_image_stub_surcharge () =
  let cluster, _, _, _ = build_p2_like () in
  let p = Cluster.proc cluster 1 in
  let plain = Adgc_serial.Net_codec.encode (Graph_image.of_process p) in
  let with_stubs = Adgc_serial.Net_codec.encode (Graph_image.of_process ~include_stubs:true p) in
  check Alcotest.bool "stubs add bytes" true
    (String.length with_stubs > String.length plain)

let suite =
  ( "snapshot",
    [
      Alcotest.test_case "StubsFrom" `Quick test_stubs_from;
      Alcotest.test_case "ScionsTo" `Quick test_scions_to;
      Alcotest.test_case "Local.Reach flag" `Quick test_local_reach_flag;
      Alcotest.test_case "scion target local reachability" `Quick
        test_scion_target_locally_reachable;
      Alcotest.test_case "internal refs compiled away" `Quick test_internal_refs_compiled_away;
      Alcotest.test_case "shared stub, multiple scions" `Quick test_shared_stub_multiple_scions;
      Alcotest.test_case "diamond + local cycle" `Quick test_diamond_and_cycle_local_structure;
      Alcotest.test_case "naive = condensed on random graphs" `Quick
        test_naive_equals_condensed_random;
      Alcotest.test_case "all summarizers agree under churn" `Quick
        test_all_summarizers_agree_under_churn;
      Alcotest.test_case "summary captures ICs" `Quick test_summary_captures_ics;
      Alcotest.test_case "summary is immutable" `Quick test_summary_is_immutable_snapshot;
      Alcotest.test_case "summary sval roundtrip" `Quick test_summary_sval_roundtrip;
      Alcotest.test_case "summary sval rejects junk" `Quick test_summary_sval_rejects_junk;
      Alcotest.test_case "incremental = full (known graph)" `Quick test_incremental_matches_full;
      Alcotest.test_case "incremental reuses clean regions" `Quick
        test_incremental_reuses_clean_regions;
      Alcotest.test_case "incremental sees root changes" `Quick test_incremental_detects_root_change;
      Alcotest.test_case "incremental = full (random churn)" `Quick
        test_incremental_random_equivalence;
      Alcotest.test_case "store: codec roundtrip publish" `Quick test_store_roundtrips_through_codec;
      Alcotest.test_case "store: take_all" `Quick test_store_take_all;
      Alcotest.test_case "store: rotor codec" `Quick test_store_with_rotor_codec;
      Alcotest.test_case "graph image: object count" `Quick test_graph_image_counts;
      Alcotest.test_case "graph image: stub surcharge" `Quick test_graph_image_stub_surcharge;
    ] )
