(* The perf harness: comparator verdicts pinned case by case, the
   noise model's properties under random jitter, the JSON codec
   roundtrip, and the histogram percentile API the detection section
   gates on. *)

module Sample = Adgc_perf.Sample
module Results = Adgc_perf.Results
module Compare = Adgc_perf.Compare
module Stats = Adgc_util.Stats
module Json = Adgc_util.Json

let check = Alcotest.check

let sample ?(name = "s.series") ?(unit_ = "ms") ?(direction = Sample.Lower_better)
    ?(klass = Sample.Timing) ?slo ?(stddev = 0.0) median =
  {
    Sample.name;
    unit_;
    reps = 5;
    median;
    mean = median;
    stddev;
    min = median;
    p99 = median;
    direction;
    klass;
    slo;
    config_digest = "cfg";
  }

let doc ?(rev = "test") ?(smoke = true) samples =
  {
    Results.rev;
    smoke;
    host = { Results.cores = 1; worker_domains = 1 };
    sections = [ ("t", samples) ];
  }

let verdict_t = Alcotest.testable (Fmt.of_to_string Compare.verdict_to_string) ( = )

let one_verdict ?tol ~baseline ~current () =
  match Compare.compare_docs ?tol ~baseline ~current () with
  | [ f ] -> f
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let judge ?tol base cur =
  (one_verdict ?tol ~baseline:(doc [ base ]) ~current:(doc [ cur ]) ()).Compare.verdict

(* --- pinned verdict classes ------------------------------------- *)

let test_verdicts () =
  check verdict_t "equal is unchanged" Compare.Unchanged (judge (sample 100.0) (sample 100.0));
  check verdict_t "within the relative band" Compare.Unchanged
    (judge (sample 100.0) (sample 105.0));
  check verdict_t "beyond the band regresses" Compare.Regressed
    (judge (sample 100.0) (sample 120.0));
  check verdict_t "beyond the band the other way improves" Compare.Improved
    (judge (sample 100.0) (sample 80.0));
  check verdict_t "higher-better flips the sign" Compare.Regressed
    (judge
       (sample ~direction:Sample.Higher_better 100.0)
       (sample ~direction:Sample.Higher_better 80.0));
  check verdict_t "higher-better improvement" Compare.Improved
    (judge
       (sample ~direction:Sample.Higher_better 100.0)
       (sample ~direction:Sample.Higher_better 120.0))

let test_min_effect_floor () =
  (* A 0.8-unit drift on a 1-unit series is an 80% regression by
     ratio, but below the absolute floor: tiny series never flag. *)
  check verdict_t "sub-floor drift is unchanged" Compare.Unchanged
    (judge (sample 1.0) (sample 1.8));
  check verdict_t "the floor is crossed at > 1 unit" Compare.Regressed
    (judge (sample 1.0) (sample 2.1))

let test_stddev_widens_band () =
  (* 3 x stddev 10 = 30 > the 20-unit drift that flagged at stddev 0. *)
  check verdict_t "noisy series tolerate more" Compare.Unchanged
    (judge (sample ~stddev:10.0 100.0) (sample 120.0));
  check verdict_t "noise on the current side counts too" Compare.Unchanged
    (judge (sample 100.0) (sample ~stddev:10.0 120.0))

let test_relax_timing_only () =
  let tol = { Compare.default_tolerance with Compare.relax = 3.0 } in
  check verdict_t "relax widens a timing series" Compare.Unchanged
    (judge ~tol (sample 100.0) (sample 125.0));
  check verdict_t "deterministic series are never relaxed" Compare.Regressed
    (judge ~tol
       (sample ~klass:Sample.Deterministic 100.0)
       (sample ~klass:Sample.Deterministic 125.0))

let test_missing_and_new () =
  let base = doc [ sample ~name:"a" 1.0; sample ~name:"b" 2.0 ] in
  let cur = doc [ sample ~name:"b" 2.0; sample ~name:"c" 3.0 ] in
  let findings = Compare.compare_docs ~baseline:base ~current:cur () in
  let by_name n = List.find (fun f -> f.Compare.name = n) findings in
  check verdict_t "absent from current is missing" Compare.Missing (by_name "a").Compare.verdict;
  check verdict_t "paired is judged" Compare.Unchanged (by_name "b").Compare.verdict;
  check verdict_t "absent from baseline is new" Compare.New (by_name "c").Compare.verdict;
  check Alcotest.int "missing/new are informational" 0 (Compare.exit_code findings)

let test_slo_ceiling () =
  (* A breach gates even when the baseline agrees (both sides slow). *)
  check verdict_t "slo breach regresses" Compare.Regressed
    (judge (sample ~slo:50.0 60.0) (sample ~slo:50.0 60.0));
  (* ... and even when the series is new. *)
  let f =
    one_verdict ~baseline:(doc []) ~current:(doc [ sample ~slo:50.0 60.0 ]) ()
  in
  check verdict_t "new series with a breach regresses" Compare.Regressed f.Compare.verdict;
  check Alcotest.bool "flagged as slo" true f.Compare.slo_violated;
  (* The baseline's slo protects a current sample that lost its own. *)
  let base = sample ~slo:50.0 10.0 in
  let cur = { (sample 60.0) with Sample.slo = None } in
  let f = one_verdict ~baseline:(doc [ base ]) ~current:(doc [ cur ]) () in
  check Alcotest.bool "baseline slo inherited" true f.Compare.slo_violated;
  check verdict_t "under the ceiling is judged normally" Compare.Unchanged
    (judge (sample ~slo:50.0 40.0) (sample ~slo:50.0 42.0))

let test_exit_codes () =
  let clean =
    Compare.compare_docs ~baseline:(doc [ sample 100.0 ]) ~current:(doc [ sample 100.0 ]) ()
  in
  check Alcotest.int "clean run exits 0" 0 (Compare.exit_code clean);
  let bad =
    Compare.compare_docs ~baseline:(doc [ sample 100.0 ]) ~current:(doc [ sample 200.0 ]) ()
  in
  check Alcotest.int "regression exits 1" 1 (Compare.exit_code bad);
  check Alcotest.int "one gating finding" 1 (List.length (Compare.regressions bad))

(* --- JSON codec -------------------------------------------------- *)

let test_sample_roundtrip () =
  let s = sample ~name:"x.y" ~unit_:"ticks" ~klass:Sample.Deterministic ~slo:2048.0 64.0 in
  (match Sample.of_json (Sample.to_json s) with
  | Ok s' -> check Alcotest.bool "sample roundtrips" true (s = s')
  | Error e -> Alcotest.failf "sample does not roundtrip: %s" e);
  let no_slo = sample 1.5 in
  match Sample.of_json (Sample.to_json no_slo) with
  | Ok s' -> check Alcotest.bool "absent slo roundtrips" true (no_slo = s')
  | Error e -> Alcotest.failf "slo-less sample does not roundtrip: %s" e

let test_doc_roundtrip_and_determinism () =
  let d =
    doc
      [
        sample ~name:"b" 2.0;
        sample ~name:"a" ~klass:Sample.Deterministic 1.0;
        sample ~name:"c" ~slo:10.0 3.0;
      ]
  in
  match Results.of_string (Results.to_string d) with
  | Error e -> Alcotest.failf "document does not roundtrip: %s" e
  | Ok d' ->
      check Alcotest.bool "roundtrip normalizes to the same document" true
        (Results.normalize d = d');
      check Alcotest.string "rendering is canonical" (Results.to_string d)
        (Results.to_string d')

let test_fingerprint_blanks_timing () =
  let d1 = doc [ sample ~name:"t" 10.0; sample ~name:"d" ~klass:Sample.Deterministic 5.0 ] in
  let d2 = doc [ sample ~name:"t" 99.0; sample ~name:"d" ~klass:Sample.Deterministic 5.0 ] in
  let d3 = doc [ sample ~name:"t" 10.0; sample ~name:"d" ~klass:Sample.Deterministic 6.0 ] in
  check Alcotest.bool "timing values are blanked" true
    (Results.fingerprint d1 = Results.fingerprint d2);
  check Alcotest.bool "deterministic values are pinned" false
    (Results.fingerprint d1 = Results.fingerprint d3)

(* --- QCheck properties ------------------------------------------- *)

let pos_median = QCheck2.Gen.float_range 1.0 1000.0

(* Jitter within half the relative band never flags, either way. *)
let prop_jitter_stable =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"jitter within the band is unchanged" ~count:500
       QCheck2.Gen.(triple pos_median (float_range (-0.05) 0.05) bool)
       (fun (m, j, higher) ->
         let direction = if higher then Sample.Higher_better else Sample.Lower_better in
         let base = sample ~direction m in
         let cur = sample ~direction (m *. (1.0 +. j)) in
         judge base cur = Compare.Unchanged))

(* If a drift flags, every larger drift in the same direction flags. *)
let prop_effect_monotone =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"worse drift never un-flags" ~count:500
       QCheck2.Gen.(triple pos_median (float_range 0.0 1.0) (float_range 0.0 1.0))
       (fun (m, d1, extra) ->
         let base = sample m in
         let c1 = sample (m *. (1.0 +. d1)) in
         let c2 = sample (m *. (1.0 +. d1 +. extra)) in
         judge base c1 <> Compare.Regressed || judge base c2 = Compare.Regressed))

let gen_sample =
  let open QCheck2.Gen in
  let* i = int_range 0 9 in
  let* median = pos_median in
  let* stddev = float_range 0.0 10.0 in
  let* det = bool in
  let* higher = bool in
  let* with_slo = bool in
  let slo = if with_slo then Some (median +. 1.0) else None in
  return
    (sample
       ~name:(Printf.sprintf "series.%d" i)
       ~direction:(if higher then Sample.Higher_better else Sample.Lower_better)
       ~klass:(if det then Sample.Deterministic else Sample.Timing)
       ?slo ~stddev median)

let gen_doc =
  let open QCheck2.Gen in
  let* samples = list_size (int_range 0 8) gen_sample in
  (* Dedup by name: two samples with one name is not a well-formed
     document (the recorder keys by name). *)
  let dedup =
    List.fold_left
      (fun acc (s : Sample.t) ->
        if List.exists (fun (x : Sample.t) -> x.Sample.name = s.Sample.name) acc then acc
        else s :: acc)
      [] samples
  in
  return (doc dedup)

(* promote >> check is clean: the canonical rendering written by
   promote reloads into a document that self-compares Unchanged on
   every series (the acceptance contract for refreshing a baseline). *)
let prop_promote_then_check_clean =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"promote then check is clean" ~count:100 gen_doc (fun d ->
         let path = Filename.temp_file "adgc_baseline" ".json" in
         Fun.protect
           ~finally:(fun () -> Sys.remove path)
           (fun () ->
             Compare.promote ~baseline_path:path d;
             match Results.load path with
             | Error e -> QCheck2.Test.fail_reportf "promoted baseline does not load: %s" e
             | Ok baseline ->
                 let findings = Compare.compare_docs ~baseline ~current:d () in
                 Compare.exit_code findings = 0
                 && List.for_all
                      (fun f -> f.Compare.verdict = Compare.Unchanged)
                      findings)))

(* --- histogram percentiles --------------------------------------- *)

let test_histogram_empty () =
  let stats = Stats.create () in
  let h = Stats.histogram stats "h" ~buckets:[| 1.0; 2.0 |] in
  check Alcotest.bool "empty histogram is nan" true
    (Float.is_nan (Stats.histogram_percentile h 50.0));
  check Alcotest.bool "unknown name is None" true
    (Stats.observed_percentile stats "nope" 50.0 = None)

let test_histogram_single_bucket () =
  let stats = Stats.create () in
  ignore (Stats.histogram stats "h" ~buckets:[| 10.0 |] : Stats.histogram);
  List.iter (fun v -> Stats.observe stats "h" v) [ 1.0; 2.0; 3.0; 4.0 ];
  let h = Option.get (Stats.histogram_opt stats "h") in
  List.iter
    (fun p ->
      check (Alcotest.float 0.0)
        (Printf.sprintf "p%g is the bucket bound" p)
        10.0
        (Stats.histogram_percentile h p))
    [ 1.0; 50.0; 99.0; 100.0 ]

let test_histogram_exact_ranks () =
  let stats = Stats.create () in
  ignore (Stats.histogram stats "h" ~buckets:[| 1.0; 2.0; 4.0 |] : Stats.histogram);
  (* One sample in bucket 1, two in bucket 2, one in bucket 4:
     nearest-rank percentiles land on known bucket bounds. *)
  List.iter (fun v -> Stats.observe stats "h" v) [ 0.5; 1.5; 2.0; 3.0 ];
  let h = Option.get (Stats.histogram_opt stats "h") in
  let p v = Stats.histogram_percentile h v in
  check (Alcotest.float 0.0) "p25 -> first bucket" 1.0 (p 25.0);
  check (Alcotest.float 0.0) "p50 -> second bucket" 2.0 (p 50.0);
  check (Alcotest.float 0.0) "p75 -> second bucket" 2.0 (p 75.0);
  check (Alcotest.float 0.0) "p100 -> third bucket" 4.0 (p 100.0)

let test_histogram_overflow_saturates () =
  let stats = Stats.create () in
  ignore (Stats.histogram stats "h" ~buckets:[| 1.0; 2.0 |] : Stats.histogram);
  Stats.observe stats "h" 0.5;
  Stats.observe stats "h" 1e9;
  Stats.observe stats "h" 1e9;
  let h = Option.get (Stats.histogram_opt stats "h") in
  check (Alcotest.float 0.0) "low rank still binned" 1.0 (Stats.histogram_percentile h 25.0);
  check Alcotest.bool "overflow rank is infinite" true
    (Stats.histogram_percentile h 99.0 = Float.infinity);
  (* All-overflow: every percentile saturates. *)
  let stats2 = Stats.create () in
  ignore (Stats.histogram stats2 "h" ~buckets:[| 1.0 |] : Stats.histogram);
  Stats.observe stats2 "h" 100.0;
  let h2 = Option.get (Stats.histogram_opt stats2 "h") in
  check Alcotest.bool "saturated histogram pins to infinity" true
    (Stats.histogram_percentile h2 1.0 = Float.infinity)

let test_export_percentiles () =
  let stats = Stats.create () in
  (* default power-of-two buckets: 3 -> bound 4, 100 -> bound 128 *)
  Stats.observe stats "dcda.detection_latency" 3.0;
  Stats.observe stats "dcda.detection_latency" 100.0;
  (match Adgc_obs.Export.percentiles ~ps:[ 50.0; 99.0 ] stats "dcda.detection_latency" with
  | Some [ (50.0, p50); (99.0, p99) ] ->
      check (Alcotest.float 0.0) "p50 snaps to a power of two" 4.0 p50;
      check (Alcotest.float 0.0) "p99 snaps to a power of two" 128.0 p99
  | Some l -> Alcotest.failf "unexpected percentile list of length %d" (List.length l)
  | None -> Alcotest.fail "histogram not found");
  check Alcotest.bool "unknown histogram is None" true
    (Adgc_obs.Export.percentiles stats "nope" = None)

let suite =
  ( "perf",
    [
      Alcotest.test_case "verdict classes" `Quick test_verdicts;
      Alcotest.test_case "min-effect floor" `Quick test_min_effect_floor;
      Alcotest.test_case "stddev widens the band" `Quick test_stddev_widens_band;
      Alcotest.test_case "relax is timing-only" `Quick test_relax_timing_only;
      Alcotest.test_case "missing and new are informational" `Quick test_missing_and_new;
      Alcotest.test_case "slo ceilings gate" `Quick test_slo_ceiling;
      Alcotest.test_case "exit codes" `Quick test_exit_codes;
      Alcotest.test_case "sample json roundtrip" `Quick test_sample_roundtrip;
      Alcotest.test_case "document roundtrip is canonical" `Quick
        test_doc_roundtrip_and_determinism;
      Alcotest.test_case "fingerprint blanks timing values" `Quick
        test_fingerprint_blanks_timing;
      prop_jitter_stable;
      prop_effect_monotone;
      prop_promote_then_check_clean;
      Alcotest.test_case "histogram: empty" `Quick test_histogram_empty;
      Alcotest.test_case "histogram: single bucket" `Quick test_histogram_single_bucket;
      Alcotest.test_case "histogram: exact ranks" `Quick test_histogram_exact_ranks;
      Alcotest.test_case "histogram: overflow saturates" `Quick
        test_histogram_overflow_saturates;
      Alcotest.test_case "export percentiles" `Quick test_export_percentiles;
    ] )
