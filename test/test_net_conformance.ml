(* Cross-driver conformance: the same Scenario.t fed to the in-memory
   simulator and to the socket-backed multi-process driver must end in
   the same place — identical reclamation sets and clean verdicts from
   the {e same} gathered-state oracle ({!Gather.check}) applied to
   both drivers' final state.

   Set ADGC_NET_SMOKE to trim to one seed and one detector (the CI
   smoke configuration); the full matrix is 3 seeds x {dcda,
   backtrack}. *)

open Adgc_algebra
module Sim = Adgc.Sim
module Config = Adgc.Config
module Runtime = Adgc_rt.Runtime
module Scenario = Adgc_net.Scenario
module Coordinator = Adgc_net.Coordinator
module Gather = Adgc_net.Gather

let check = Alcotest.check

let smoke = Sys.getenv_opt "ADGC_NET_SMOKE" <> None

let seeds = if smoke then [ 11 ] else [ 11; 23; 47 ]

let detectors = if smoke then [ Config.Dcda ] else [ Config.Dcda; Config.Backtrack ]

let oid_set =
  Alcotest.testable
    (fun ppf s ->
      Format.fprintf ppf "{%s}" (String.concat "," (List.map Oid.to_string (Oid.Set.elements s))))
    Oid.Set.equal

let violations = Alcotest.list (Alcotest.testable Adgc_check.Invariant.pp ( = ))

(* Node processes are spawned by exec'ing the real [adgc_sim serve]
   binary, never [Fork]: OCaml forbids [Unix.fork] for the rest of the
   process once any domain has ever been spawned, and earlier suites
   (the Par engine tests) do spawn pool domains. *)
let spawn () =
  let exe =
    match Sys.getenv_opt "ADGC_SIM_EXE" with
    | Some p -> p
    | None -> (
        let candidates =
          [
            "../bin/adgc_sim.exe" (* dune runtest: cwd is _build/default/test *);
            "_build/default/bin/adgc_sim.exe" (* repo root *);
            "bin/adgc_sim.exe";
          ]
        in
        match List.find_opt Sys.file_exists candidates with
        | Some p -> if Filename.is_relative p then Filename.concat (Sys.getcwd ()) p else p
        | None -> Alcotest.fail "adgc_sim.exe not built; set ADGC_SIM_EXE")
  in
  Coordinator.Exec [ exe; "serve" ]

(* Drive the scenario wholly in-memory, then put its final state
   through the very same oracle the coordinator uses: capture each
   rank's authoritative state and run Gather.check on the union. *)
let run_in_memory scenario =
  let sim, _built = Scenario.build scenario in
  let rt = Sim.rt sim in
  let n = Scenario.n_procs scenario in
  let per_rank = Array.make n [] in
  rt.Runtime.on_reclaim <-
    Some
      (fun p o ->
        let r = Proc_id.to_int p in
        per_rank.(r) <- o :: per_rank.(r));
  Sim.start sim;
  let clean = Sim.run_until_clean ~step:1_000 ~max_time:600_000 sim in
  let states =
    List.init n (fun rank ->
        Gather.capture ~rt ~rank ~tick:(Sim.now sim) ~reclaimed:(List.rev per_rank.(rank)))
  in
  Sim.teardown sim;
  (clean, states)

let conformance_case ?(candidates = Config.Scan_candidates) topology seed detector () =
  let scenario = Scenario.make ~topology ~procs:4 ~seed ~detector ~candidates () in
  let expected = Scenario.expected scenario in
  (* In-memory driver. *)
  let mem_clean, mem_states = run_in_memory scenario in
  check Alcotest.bool "in-memory run converged" true mem_clean;
  let mem_verdict =
    Gather.check ~expected_live:expected.Scenario.live ~expected_garbage:expected.Scenario.garbage
      mem_states
  in
  check violations "in-memory oracle clean" [] mem_verdict.Gather.violations;
  check oid_set "in-memory reclaimed exactly the garbage" expected.Scenario.garbage
    mem_verdict.Gather.reclaimed;
  (* Socket driver: one OS process per rank, same spec. *)
  let r = Coordinator.run (Coordinator.options ~deadline_s:30. ~spawn:(spawn ()) scenario) in
  check Alcotest.bool "socket run completed in budget" false r.Coordinator.timed_out;
  check Alcotest.(list int) "no node died" [] r.Coordinator.dead;
  check violations "socket oracle clean" [] r.Coordinator.verdict.Gather.violations;
  check oid_set "identical reclamation sets across drivers" mem_verdict.Gather.reclaimed
    r.Coordinator.verdict.Gather.reclaimed;
  check Alcotest.bool "socket run ok" true (Coordinator.ok r)

let matrix topology =
  List.concat_map
    (fun seed ->
      List.map
        (fun detector ->
          let name =
            Printf.sprintf "%s seed=%d %s"
              (Scenario.topology_to_string topology)
              seed
              (Scenario.detector_to_string detector)
          in
          Alcotest.test_case name `Slow (conformance_case topology seed detector))
        detectors)
    seeds

let suite =
  ( "net_conformance",
    matrix Scenario.Ring
    @ [
        (* One mixed live/garbage workload so Live_reclaimed has teeth
           (the ring is garbage wall-to-wall). *)
        Alcotest.test_case "pairs seed=11 dcda" `Slow
          (conformance_case Scenario.Pairs 11 Config.Dcda);
        (* Incremental candidates over sockets: the coordinator ships
           --candidates incremental to every node; the socket run must
           reclaim exactly what the in-memory incremental run does
           (which itself must match the scan-derived expectation). *)
        Alcotest.test_case "ring seed=11 dcda incremental" `Slow
          (conformance_case ~candidates:Config.Incremental_candidates Scenario.Ring 11
             Config.Dcda);
        Alcotest.test_case "pairs seed=11 dcda incremental" `Slow
          (conformance_case ~candidates:Config.Incremental_candidates Scenario.Pairs 11
             Config.Dcda);
      ] )
