(* End-to-end integration tests on the assembled Sim, plus randomized
   safety/completeness properties: under arbitrary topologies, churn
   and loss the collector must never reclaim a live object, and once
   activity stops it must eventually reclaim all garbage. *)

open Adgc_workload
module Sim = Adgc.Sim
module Config = Adgc.Config
module Cluster = Adgc_rt.Cluster
module Network = Adgc_rt.Network
module Stats = Adgc_util.Stats

let check = Alcotest.check

let mk_sim ?(n = 4) ?(seed = 42) ?(drop = 0.0) ?(detector = Config.Dcda) () =
  let config = Config.quick ~seed ~n_procs:n () in
  config.Config.net.Network.drop_prob <- drop;
  let config = { config with Config.detector } in
  let sim = Sim.create ~config () in
  let checker = Metrics.install_safety_checker (Sim.cluster sim) in
  (sim, checker)

let test_sim_fig3_full_lifecycle () =
  let sim, checker = mk_sim () in
  let built = Topology.fig3 (Sim.cluster sim) in
  Sim.start sim;
  Sim.run_for sim 5_000;
  (* Rooted: everything intact. *)
  check Alcotest.int "all objects alive" 14 (Cluster.total_objects (Sim.cluster sim));
  Adgc_rt.Mutator.remove_root (Sim.cluster sim) (Topology.obj built "A");
  check Alcotest.bool "cleaned" true (Sim.run_until_clean ~max_time:300_000 sim);
  Metrics.assert_safe checker;
  check Alcotest.bool "cycle was reported" true (Sim.reports sim <> [])

let test_sim_no_detector_leaks () =
  let sim, checker = mk_sim ~detector:Config.No_detector () in
  let _built = Topology.ring (Sim.cluster sim) ~procs:[ 0; 1; 2 ] in
  Sim.start sim;
  Sim.run_for sim 60_000;
  check Alcotest.int "cycle leaks without a detector" 3
    (Cluster.total_objects (Sim.cluster sim));
  Metrics.assert_safe checker

let test_sim_backtrack_detector_cleans () =
  let sim, checker = mk_sim ~detector:Config.Backtrack () in
  let _built = Topology.ring (Sim.cluster sim) ~procs:[ 0; 1; 2 ] in
  Sim.start sim;
  check Alcotest.bool "cleaned by baseline" true (Sim.run_until_clean ~max_time:300_000 sim);
  Metrics.assert_safe checker

let test_sim_mixed_garbage () =
  (* Hybrid + plain ring + rooted ring, all at once. *)
  let sim, checker = mk_sim ~n:6 () in
  let cluster = Sim.cluster sim in
  let _h = Topology.hybrid cluster in
  let _r = Topology.ring cluster ~procs:[ 3; 4; 5 ] in
  let live = Topology.rooted_ring cluster ~procs:[ 1; 3; 5 ] in
  Sim.start sim;
  Sim.run_for sim 100_000;
  Metrics.assert_safe checker;
  check Alcotest.int "only the rooted ring remains" 3 (Cluster.total_objects cluster);
  check Alcotest.bool "the rooted ring is intact" true
    (Adgc_rt.Heap.mem (Cluster.proc cluster 1).Adgc_rt.Process.heap (Topology.oid live "n1_0"))

let test_sim_loss_resilience () =
  let sim, checker = mk_sim ~n:5 ~drop:0.15 ~seed:11 () in
  let _r1 = Topology.ring (Sim.cluster sim) ~procs:[ 0; 1; 2; 3; 4 ] in
  let _r2 = Topology.ring (Sim.cluster sim) ~procs:[ 0; 2; 4 ] in
  Sim.start sim;
  check Alcotest.bool "cleaned despite 15% loss" true
    (Sim.run_until_clean ~max_time:1_500_000 sim);
  Metrics.assert_safe checker

let test_sim_partition_heals () =
  let sim, checker = mk_sim ~n:3 () in
  let cluster = Sim.cluster sim in
  let _r = Topology.ring cluster ~procs:[ 0; 1; 2 ] in
  (* Partition one direction of the ring's links. *)
  Network.block_link (Cluster.net cluster) (Adgc_algebra.Proc_id.of_int 1)
    (Adgc_algebra.Proc_id.of_int 2);
  Sim.start sim;
  Sim.run_for sim 50_000;
  check Alcotest.int "leaks while partitioned" 3 (Cluster.total_objects cluster);
  Network.unblock_link (Cluster.net cluster) (Adgc_algebra.Proc_id.of_int 1)
    (Adgc_algebra.Proc_id.of_int 2);
  check Alcotest.bool "cleans after heal" true (Sim.run_until_clean ~max_time:600_000 sim);
  Metrics.assert_safe checker

let test_sim_live_churn_is_never_hurt () =
  let sim, checker = mk_sim ~n:5 ~drop:0.05 ~seed:23 () in
  let cluster = Sim.cluster sim in
  let _live = Topology.rooted_ring ~objs_per_proc:2 cluster ~procs:[ 0; 1; 2; 3; 4 ] in
  let churn = Churn.create ~cluster ~rng:(Adgc_util.Rng.create 55) () in
  Churn.run churn ~steps:1_500 ~every:31;
  Sim.start sim;
  Sim.run_for sim 80_000;
  Metrics.assert_safe checker;
  (* After quiescence everything unreferenced goes away; live stays. *)
  check Alcotest.bool "cleaned" true (Sim.run_until_clean ~max_time:2_000_000 sim);
  Metrics.assert_safe checker

let test_sim_detector_stats_flow () =
  let sim, _ = mk_sim () in
  let _r = Topology.ring (Sim.cluster sim) ~procs:[ 0; 1; 2 ] in
  Sim.start sim;
  Sim.run_for sim 30_000;
  let stats = Sim.stats sim in
  check Alcotest.bool "snapshots taken" true (Stats.get stats "snapshot.taken" > 0);
  check Alcotest.bool "detections started" true (Stats.get stats "dcda.detections_started" > 0);
  check Alcotest.bool "cycles found" true (Stats.get stats "dcda.cycles_found" > 0)

let test_sim_run_gc_cycle_manual () =
  let sim, _ = mk_sim () in
  let cluster = Sim.cluster sim in
  let a = Adgc_rt.Mutator.alloc cluster ~proc:0 () in
  ignore a;
  Sim.run_gc_cycle sim;
  ignore (Cluster.drain cluster : int);
  check Alcotest.int "acyclic garbage gone" 0 (Cluster.total_objects cluster)

let test_sim_stop_stops () =
  let sim, _ = mk_sim () in
  Sim.start sim;
  Sim.run_for sim 5_000;
  Sim.stop sim;
  let before = Stats.get (Sim.stats sim) "lgc.runs" in
  Sim.run_for sim 20_000;
  check Alcotest.int "no more LGC runs" before (Stats.get (Sim.stats sim) "lgc.runs")

(* ------------------------------------------------------------------ *)
(* Randomized end-to-end properties *)

(* One property run: random topology + churn + loss; after quiescence,
   no live object was ever reclaimed and all garbage is gone. *)
let random_scenario ~seed =
  let n = 3 + (seed mod 3) in
  let sim, checker = mk_sim ~n ~seed ~drop:(float_of_int (seed mod 3) *. 0.04) () in
  let cluster = Sim.cluster sim in
  let rng = Adgc_util.Rng.create (seed * 7 + 1) in
  let _built =
    Topology.random cluster ~rng ~objects:(30 + (seed mod 20)) ~edges:(60 + (seed mod 40))
      ~remote_prob:0.35 ~root_prob:0.15
  in
  let churn = Churn.create ~cluster ~rng:(Adgc_util.Rng.create (seed + 100)) () in
  Churn.run churn ~steps:300 ~every:17;
  Sim.start sim;
  Sim.run_for sim 30_000;
  Metrics.assert_safe checker;
  let clean = Sim.run_until_clean ~step:5_000 ~max_time:2_000_000 sim in
  Metrics.assert_safe checker;
  if not clean then
    Alcotest.failf "seed %d: garbage remained (%d objects, %d garbage)" seed
      (Cluster.total_objects cluster) (Sim.garbage_count sim)

let test_extreme_jitter_reordering () =
  (* Latency 1..500 with 5% loss: heavy reordering across every
     protocol (stub sets out of order, CDMs overtaking each other,
     probes racing sets).  Still safe, still complete. *)
  let sim, checker = mk_sim ~n:6 ~seed:13 ~drop:0.05 () in
  let cluster = Sim.cluster sim in
  let net = Cluster.net cluster in
  (Network.config net).Network.latency_min <- 1;
  (Network.config net).Network.latency_max <- 500;
  let _g1 = Topology.ring cluster ~procs:[ 0; 1; 2; 3; 4; 5 ] in
  let _g2 = Topology.fig4 cluster in
  let live_ring = Topology.rooted_ring cluster ~procs:[ 1; 3 ] in
  let churn = Churn.create ~cluster ~rng:(Adgc_util.Rng.create 5) () in
  Churn.run churn ~steps:500 ~every:29;
  Sim.start sim;
  Sim.run_for sim 50_000;
  Metrics.assert_safe checker;
  check Alcotest.bool "cleans under jitter" true
    (Sim.run_until_clean ~step:5_000 ~max_time:3_000_000 sim);
  Metrics.assert_safe checker;
  (* The churn population is live by construction; the seeded rooted
     ring must have survived within it. *)
  check Alcotest.bool "live ring intact" true
    (Adgc_rt.Heap.mem (Cluster.proc cluster 1).Adgc_rt.Process.heap (Topology.oid live_ring "n1_0"))

let test_web_workload_site_decommission () =
  (* The motivating WWW scenario: sites link each other, reciprocal
     links create distributed cycles; decommissioning sites (dropping
     their index roots) must eventually reclaim exactly their share. *)
  let sim, checker = mk_sim ~n:5 ~seed:17 () in
  let cluster = Sim.cluster sim in
  let built =
    Topology.web ~pages_per_site:6 ~cross_links:15 ~back_prob:0.6 cluster
      ~rng:(Adgc_util.Rng.create 3)
  in
  Sim.start sim;
  Sim.run_for sim 20_000;
  Metrics.assert_safe checker;
  check Alcotest.int "all 30 pages alive" 30 (Cluster.total_objects cluster);
  (* Decommission sites 1 and 3. *)
  Adgc_rt.Mutator.remove_root cluster (Topology.obj built "s1_p0");
  Adgc_rt.Mutator.remove_root cluster (Topology.obj built "s3_p0");
  check Alcotest.bool "their garbage reclaimed" true
    (Sim.run_until_clean ~step:2_000 ~max_time:1_000_000 sim);
  Metrics.assert_safe checker;
  (* Everything still reachable from the surviving sites is intact. *)
  let live = Cluster.globally_live cluster in
  check Alcotest.int "survivors consistent" (Adgc_algebra.Oid.Set.cardinal live)
    (Cluster.total_objects cluster);
  List.iter
    (fun s ->
      check Alcotest.bool
        (Printf.sprintf "site %d index alive" s)
        true
        (Adgc_algebra.Oid.Set.mem (Topology.oid built (Printf.sprintf "s%d_p0" s)) live))
    [ 0; 2; 4 ]

let test_incremental_snapshot_pipeline () =
  (* The whole system running on incremental summaries. *)
  let config = Config.quick ~n_procs:4 () in
  let config = { config with Config.incremental_snapshots = true } in
  let sim = Sim.create ~config () in
  let checker = Metrics.install_safety_checker (Sim.cluster sim) in
  let _g = Topology.ring (Sim.cluster sim) ~procs:[ 0; 1; 2; 3 ] in
  let _live = Topology.rooted_ring (Sim.cluster sim) ~procs:[ 0; 2 ] in
  let churn = Churn.create ~cluster:(Sim.cluster sim) ~rng:(Adgc_util.Rng.create 8) () in
  Churn.run churn ~steps:400 ~every:23;
  Sim.start sim;
  Sim.run_for sim 40_000;
  Metrics.assert_safe checker;
  check Alcotest.bool "cleans up" true (Sim.run_until_clean ~max_time:1_000_000 sim);
  Metrics.assert_safe checker

let test_random_scenarios () =
  (* A swarm of deterministic random runs; each is an independent
     safety+completeness check. *)
  List.iter (fun seed -> random_scenario ~seed) [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let test_random_scenarios_slow () =
  List.iter (fun seed -> random_scenario ~seed) [ 9; 10; 11; 12; 13; 14; 15; 16; 17; 18 ]

let test_stress_large_system () =
  (* One big run: 12 processes, a dense random graph, heavy churn,
     moderate loss, two crashes, incremental snapshots — everything at
     once, still safe, still complete among the survivors. *)
  let config = Config.quick ~seed:99 ~n_procs:12 () in
  config.Config.net.Network.drop_prob <- 0.05;
  let runtime =
    {
      config.Config.runtime with
      Adgc_rt.Runtime.failure_detection = true;
      holder_silence_limit = 15_000;
    }
  in
  let config = { config with Config.runtime; Config.incremental_snapshots = true } in
  let sim = Sim.create ~config () in
  let cluster = Sim.cluster sim in
  let checker = Metrics.install_safety_checker cluster in
  let rng = Adgc_util.Rng.create 1234 in
  let _big =
    Topology.random cluster ~rng ~objects:300 ~edges:700 ~remote_prob:0.3 ~root_prob:0.1
  in
  let _web = Topology.web cluster ~rng ~pages_per_site:4 ~cross_links:30 in
  let churn = Churn.create ~cluster ~rng:(Adgc_util.Rng.create 77) () in
  Churn.run churn ~steps:2_000 ~every:19;
  Sim.start sim;
  Sim.run_for sim 20_000;
  Cluster.crash cluster 7;
  Sim.run_for sim 20_000;
  Cluster.crash cluster 11;
  Sim.run_for sim 40_000;
  (* Crash-stop may transiently orphan live-looking state, but never
     the other way around: safety holds throughout (note: the false
     suspicion window is avoided because crashed processes really are
     dead here). *)
  Metrics.assert_safe checker;
  let clean = Sim.run_until_clean ~step:5_000 ~max_time:3_000_000 sim in
  Metrics.assert_safe checker;
  check Alcotest.bool "stress run converges" true clean

let suite =
  ( "integration",
    [
      Alcotest.test_case "fig3 full lifecycle" `Quick test_sim_fig3_full_lifecycle;
      Alcotest.test_case "no detector: cycles leak" `Quick test_sim_no_detector_leaks;
      Alcotest.test_case "backtrack detector cleans" `Quick test_sim_backtrack_detector_cleans;
      Alcotest.test_case "mixed garbage" `Quick test_sim_mixed_garbage;
      Alcotest.test_case "15% loss resilience" `Quick test_sim_loss_resilience;
      Alcotest.test_case "partition then heal" `Quick test_sim_partition_heals;
      Alcotest.test_case "live churn never hurt" `Quick test_sim_live_churn_is_never_hurt;
      Alcotest.test_case "detector stats flow" `Quick test_sim_detector_stats_flow;
      Alcotest.test_case "manual gc cycle" `Quick test_sim_run_gc_cycle_manual;
      Alcotest.test_case "stop stops the timers" `Quick test_sim_stop_stops;
      Alcotest.test_case "extreme jitter and reordering" `Quick test_extreme_jitter_reordering;
      Alcotest.test_case "web workload: site decommission" `Quick
        test_web_workload_site_decommission;
      Alcotest.test_case "incremental snapshot pipeline" `Quick test_incremental_snapshot_pipeline;
      Alcotest.test_case "random scenarios (safety+completeness)" `Quick test_random_scenarios;
      Alcotest.test_case "random scenarios, second batch" `Slow test_random_scenarios_slow;
      Alcotest.test_case "stress: everything at once" `Slow test_stress_large_system;
    ] )
