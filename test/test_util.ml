(* Unit tests for adgc_util: RNG, priority queue, trace, stats, tables. *)

module Rng = Adgc_util.Rng
module Heap_queue = Adgc_util.Heap_queue
module Trace = Adgc_util.Trace
module Stats = Adgc_util.Stats
module Table = Adgc_util.Table

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create 123 and b = Rng.create 123 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Rng.bits64 a) (Rng.bits64 b) then incr same
  done;
  check Alcotest.bool "streams differ" true (!same < 4)

let test_rng_int_bounds () =
  let t = Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Rng.int t 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of bounds: %d" v
  done

let test_rng_int_in_bounds () =
  let t = Rng.create 8 in
  for _ = 1 to 10_000 do
    let v = Rng.int_in t (-5) 5 in
    if v < -5 || v > 5 then Alcotest.failf "out of bounds: %d" v
  done

let test_rng_int_covers_range () =
  let t = Rng.create 9 in
  let seen = Array.make 10 false in
  for _ = 1 to 10_000 do
    seen.(Rng.int t 10) <- true
  done;
  Array.iteri (fun i b -> check Alcotest.bool (Printf.sprintf "value %d seen" i) true b) seen

let test_rng_float_bounds () =
  let t = Rng.create 10 in
  for _ = 1 to 10_000 do
    let v = Rng.float t 3.5 in
    if v < 0.0 || v >= 3.5 then Alcotest.failf "out of bounds: %f" v
  done

let test_rng_bernoulli_extremes () =
  let t = Rng.create 11 in
  for _ = 1 to 100 do
    check Alcotest.bool "p=0 never" false (Rng.bernoulli t 0.0);
    check Alcotest.bool "p=1 always" true (Rng.bernoulli t 1.0)
  done

let test_rng_bernoulli_rate () =
  let t = Rng.create 12 in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Rng.bernoulli t 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  check Alcotest.bool "rate near 0.3" true (rate > 0.27 && rate < 0.33)

let test_rng_split_independent () =
  let parent = Rng.create 42 in
  let child = Rng.split parent in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Rng.bits64 parent) (Rng.bits64 child) then incr same
  done;
  check Alcotest.bool "split streams differ" true (!same < 4)

let test_rng_copy () =
  let a = Rng.create 5 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  check Alcotest.int64 "copy continues identically" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_shuffle_permutation () =
  let t = Rng.create 13 in
  let arr = Array.init 50 (fun i -> i) in
  Rng.shuffle t arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_pick_list () =
  let t = Rng.create 14 in
  check Alcotest.int "singleton" 7 (Rng.pick_list t [ 7 ]);
  (match Rng.pick_list t [ 1; 2; 3 ] with
  | 1 | 2 | 3 -> ()
  | v -> Alcotest.failf "bad pick %d" v);
  Alcotest.check_raises "empty list" (Invalid_argument "Rng.pick_list: empty list") (fun () ->
      ignore (Rng.pick_list t []))

(* ------------------------------------------------------------------ *)
(* Heap_queue *)

let test_pq_ordering () =
  let q = Heap_queue.create ~compare:Int.compare in
  List.iter (fun k -> Heap_queue.push q k k) [ 5; 3; 8; 1; 9; 2; 7 ];
  let out = ref [] in
  let rec drain () =
    match Heap_queue.pop q with
    | Some (k, _) ->
        out := k :: !out;
        drain ()
    | None -> ()
  in
  drain ();
  check (Alcotest.list Alcotest.int) "sorted" [ 1; 2; 3; 5; 7; 8; 9 ] (List.rev !out)

let test_pq_fifo_ties () =
  let q = Heap_queue.create ~compare:Int.compare in
  Heap_queue.push q 1 "a";
  Heap_queue.push q 1 "b";
  Heap_queue.push q 1 "c";
  let pop () = match Heap_queue.pop q with Some (_, v) -> v | None -> "?" in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  check (Alcotest.list Alcotest.string) "fifo among equal keys" [ "a"; "b"; "c" ]
    [ first; second; third ]

let test_pq_peek () =
  let q = Heap_queue.create ~compare:Int.compare in
  check Alcotest.bool "empty peek" true (Heap_queue.peek q = None);
  Heap_queue.push q 4 "x";
  Heap_queue.push q 2 "y";
  (match Heap_queue.peek q with
  | Some (2, "y") -> ()
  | Some _ | None -> Alcotest.fail "wrong peek");
  check Alcotest.int "peek does not remove" 2 (Heap_queue.length q)

let test_pq_interleaved () =
  let q = Heap_queue.create ~compare:Int.compare in
  Heap_queue.push q 10 10;
  Heap_queue.push q 1 1;
  (match Heap_queue.pop q with Some (1, _) -> () | _ -> Alcotest.fail "expected 1");
  Heap_queue.push q 5 5;
  Heap_queue.push q 0 0;
  (match Heap_queue.pop q with Some (0, _) -> () | _ -> Alcotest.fail "expected 0");
  (match Heap_queue.pop q with Some (5, _) -> () | _ -> Alcotest.fail "expected 5");
  (match Heap_queue.pop q with Some (10, _) -> () | _ -> Alcotest.fail "expected 10");
  check Alcotest.bool "empty" true (Heap_queue.is_empty q)

let test_pq_grows () =
  let q = Heap_queue.create ~compare:Int.compare in
  for i = 999 downto 0 do
    Heap_queue.push q i i
  done;
  check Alcotest.int "length" 1000 (Heap_queue.length q);
  for i = 0 to 999 do
    match Heap_queue.pop q with
    | Some (k, _) -> check Alcotest.int "ascending" i k
    | None -> Alcotest.fail "ran out"
  done

let test_pq_to_list () =
  let q = Heap_queue.create ~compare:Int.compare in
  List.iter (fun k -> Heap_queue.push q k (string_of_int k)) [ 3; 1; 2 ];
  let l = Heap_queue.to_list q in
  check (Alcotest.list Alcotest.int) "ordered snapshot" [ 1; 2; 3 ] (List.map fst l);
  check Alcotest.int "non destructive" 3 (Heap_queue.length q)

let test_pq_random_against_sort () =
  let rng = Rng.create 77 in
  let q = Heap_queue.create ~compare:Int.compare in
  let keys = List.init 500 (fun _ -> Rng.int rng 1000) in
  List.iter (fun k -> Heap_queue.push q k ()) keys;
  let expected = List.sort compare keys in
  let rec drain acc =
    match Heap_queue.pop q with Some (k, ()) -> drain (k :: acc) | None -> List.rev acc
  in
  check (Alcotest.list Alcotest.int) "matches sort" expected (drain [])

(* ------------------------------------------------------------------ *)
(* Trace *)

let test_trace_order () =
  let t = Trace.create () in
  Trace.add t ~time:1 ~topic:"a" "one";
  Trace.add t ~time:2 ~topic:"b" "two";
  Trace.add t ~time:3 ~topic:"a" "three";
  check (Alcotest.list Alcotest.string) "order" [ "one"; "two"; "three" ]
    (List.map (fun (e : Trace.event) -> e.Trace.text) (Trace.events t))

let test_trace_by_topic () =
  let t = Trace.create () in
  Trace.add t ~time:1 ~topic:"a" "one";
  Trace.add t ~time:2 ~topic:"b" "two";
  Trace.add t ~time:3 ~topic:"a" "three";
  check Alcotest.int "topic filter" 2 (List.length (Trace.by_topic t "a"))

let test_trace_bounded () =
  let t = Trace.create ~capacity:4 () in
  for i = 1 to 10 do
    Trace.add t ~time:i ~topic:"t" (string_of_int i)
  done;
  let texts = List.map (fun (e : Trace.event) -> e.Trace.text) (Trace.events t) in
  check (Alcotest.list Alcotest.string) "keeps newest" [ "7"; "8"; "9"; "10" ] texts;
  check Alcotest.int "dropped count" 6 (Trace.dropped t)

let test_trace_disable () =
  let t = Trace.create () in
  Trace.set_enabled t false;
  Trace.add t ~time:1 ~topic:"x" "hidden";
  Trace.addf t ~time:2 ~topic:"x" "also %s" "hidden";
  check Alcotest.int "nothing recorded" 0 (List.length (Trace.events t))

let test_trace_clear () =
  let t = Trace.create () in
  Trace.add t ~time:1 ~topic:"x" "a";
  Trace.clear t;
  check Alcotest.int "cleared" 0 (List.length (Trace.events t))

let test_trace_addf () =
  let t = Trace.create () in
  Trace.addf t ~time:5 ~topic:"fmt" "%d-%s" 12 "ab";
  match Trace.events t with
  | [ e ] ->
      check Alcotest.string "formatted" "12-ab" e.Trace.text;
      check Alcotest.int "time" 5 e.Trace.time
  | _ -> Alcotest.fail "expected one event"

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_counters () =
  let s = Stats.create () in
  check Alcotest.int "zero default" 0 (Stats.get s "x");
  Stats.incr s "x";
  Stats.incr s "x";
  Stats.add s "x" 5;
  check Alcotest.int "accumulated" 7 (Stats.get s "x")

let test_stats_counters_sorted () =
  let s = Stats.create () in
  Stats.incr s "zebra";
  Stats.incr s "alpha";
  check (Alcotest.list Alcotest.string) "sorted names" [ "alpha"; "zebra" ]
    (List.map fst (Stats.counters s))

let test_stats_series () =
  let s = Stats.create () in
  List.iter (Stats.record s "lat") [ 1.0; 2.0; 3.0; 4.0 ];
  check Alcotest.int "count" 4 (Stats.count s "lat");
  check (Alcotest.float 1e-9) "mean" 2.5 (Stats.mean s "lat");
  check (Alcotest.float 1e-9) "total" 10.0 (Stats.total s "lat");
  (match Stats.min_max s "lat" with
  | Some (lo, hi) ->
      check (Alcotest.float 1e-9) "min" 1.0 lo;
      check (Alcotest.float 1e-9) "max" 4.0 hi
  | None -> Alcotest.fail "expected min/max")

let test_stats_percentile () =
  let s = Stats.create () in
  for i = 1 to 100 do
    Stats.record s "p" (float_of_int i)
  done;
  check (Alcotest.float 1e-9) "p50" 50.0 (Stats.percentile s "p" 50.0);
  check (Alcotest.float 1e-9) "p100" 100.0 (Stats.percentile s "p" 100.0);
  check (Alcotest.float 1e-9) "p1" 1.0 (Stats.percentile s "p" 1.0)

let test_stats_empty_series () =
  let s = Stats.create () in
  check Alcotest.bool "mean nan" true (Float.is_nan (Stats.mean s "none"));
  check Alcotest.bool "no min/max" true (Stats.min_max s "none" = None)

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () in
  Stats.incr a "c";
  Stats.add b "c" 2;
  Stats.record a "s" 1.0;
  Stats.record b "s" 3.0;
  Stats.merge_into ~src:a ~dst:b;
  check Alcotest.int "merged counter" 3 (Stats.get b "c");
  check Alcotest.int "merged series" 2 (Stats.count b "s")

let test_trace_disabled_addf_lazy () =
  (* A disabled trace must not even render the message: %t would call
     the closure during formatting. *)
  let t = Trace.create () in
  Trace.set_enabled t false;
  Trace.addf t ~time:1 ~topic:"x" "%t" (fun _ -> Alcotest.fail "rendered while disabled");
  check Alcotest.int "nothing recorded" 0 (List.length (Trace.events t))

let test_stats_percentile_edges () =
  let s = Stats.create () in
  check Alcotest.bool "empty is nan" true (Float.is_nan (Stats.percentile s "none" 50.0));
  Stats.record s "one" 7.0;
  List.iter
    (fun p -> check (Alcotest.float 1e-9) (Printf.sprintf "single p%g" p) 7.0 (Stats.percentile s "one" p))
    [ 0.0; 50.0; 100.0 ];
  for i = 1 to 10 do
    Stats.record s "ten" (float_of_int i)
  done;
  check (Alcotest.float 1e-9) "p0 is the minimum" 1.0 (Stats.percentile s "ten" 0.0);
  check (Alcotest.float 1e-9) "p100 is the maximum" 10.0 (Stats.percentile s "ten" 100.0)

let test_stats_labelled () =
  let s = Stats.create () in
  check Alcotest.string "canonical key, labels sorted" "net.bytes{dst=\"1\",src=\"0\"}"
    (Stats.labelled_key "net.bytes" [ ("src", "0"); ("dst", "1") ]);
  Stats.incr_l s "hits" ~labels:[ ("b", "2"); ("a", "1") ];
  Stats.add_l s "hits" ~labels:[ ("a", "1"); ("b", "2") ] 4;
  check Alcotest.int "label order is canonicalised" 5
    (Stats.get_l s "hits" ~labels:[ ("b", "2"); ("a", "1") ]);
  check Alcotest.int "different labels are distinct" 0
    (Stats.get_l s "hits" ~labels:[ ("a", "9") ]);
  (* Labelled counters live in the plain table and merge like any other. *)
  check Alcotest.int "visible as plain counter" 5 (Stats.get s "hits{a=\"1\",b=\"2\"}");
  let dst = Stats.create () in
  Stats.merge_into ~src:s ~dst;
  check Alcotest.int "merged" 5 (Stats.get_l dst "hits" ~labels:[ ("a", "1"); ("b", "2") ])

let test_stats_histogram () =
  let s = Stats.create () in
  let h = Stats.histogram s "lat" ~buckets:[| 1.0; 2.0; 4.0 |] in
  List.iter (Stats.observe s "lat") [ 0.5; 1.0; 1.5; 4.0; 100.0 ];
  (* v lands in the first bucket with v <= bound; beyond the last
     bound it overflows. *)
  check (Alcotest.array Alcotest.int) "bucket counts" [| 2; 1; 1; 1 |] h.Stats.counts;
  check Alcotest.int "samples" 5 h.Stats.samples;
  check (Alcotest.float 1e-9) "sum" 107.0 h.Stats.sum;
  (* First registration wins. *)
  let h' = Stats.histogram s "lat" ~buckets:[| 9.0 |] in
  check Alcotest.int "re-registration keeps buckets" 3 (Array.length h'.Stats.buckets);
  (* Auto-registration uses the default buckets. *)
  Stats.observe s "fresh" 3.0;
  (match Stats.histogram_opt s "fresh" with
  | Some h -> check Alcotest.int "default buckets" (Array.length Stats.default_buckets) (Array.length h.Stats.buckets)
  | None -> Alcotest.fail "observe did not register");
  check Alcotest.bool "unknown is None" true (Stats.histogram_opt s "nope" = None);
  check (Alcotest.list Alcotest.string) "sorted names" [ "fresh"; "lat" ]
    (List.map fst (Stats.histograms s))

module Json = Adgc_util.Json

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("b", Json.Arr [ Json.Int 1; Json.Null; Json.Bool false ]);
        ("a", Json.Str "esc \"x\"\n\t\x01");
        ("f", Json.of_float 2.5);
      ]
  in
  match Json.of_string (Json.to_string doc) with
  | Ok doc' -> check Alcotest.string "roundtrip" (Json.to_string doc) (Json.to_string doc')
  | Error e -> Alcotest.failf "parse error: %s" e

let test_json_rejects () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "1 2"; "nul"; "\"unterminated" ]

let test_json_float_repr () =
  let str f = Json.to_string (Json.of_float f) in
  check Alcotest.string "integral floats have no exponent" "3" (str 3.0);
  check Alcotest.string "nan is null" "null" (str Float.nan);
  check Alcotest.string "inf is null" "null" (str infinity);
  (* Representation must parse back to the same value. *)
  List.iter
    (fun f ->
      match Json.of_string (str f) with
      | Ok (Json.Float f') -> check (Alcotest.float 0.0) "exact" f f'
      | Ok (Json.Int i) -> check (Alcotest.float 0.0) "exact" f (float_of_int i)
      | Ok _ | Error _ -> Alcotest.failf "bad float repr %s" (str f))
    [ 0.1; 1.0 /. 3.0; 1e-300; 6.02e23 ]

let test_stats_to_json_stable () =
  let populate () =
    let s = Stats.create () in
    Stats.incr s "z";
    Stats.add s "a" 3;
    Stats.incr_l s "l" ~labels:[ ("k", "v") ];
    List.iter (Stats.record s "series") [ 3.0; 1.0; 2.0 ];
    List.iter (Stats.observe s "hist") [ 1.0; 5.0 ];
    s
  in
  let a = Json.to_string (Stats.to_json (populate ())) in
  let b = Json.to_string (Stats.to_json (populate ())) in
  check Alcotest.string "byte-stable" a b;
  (* Insertion order must not leak into the document. *)
  let s = Stats.create () in
  Stats.add s "a" 3;
  Stats.incr_l s "l" ~labels:[ ("k", "v") ];
  Stats.incr s "z";
  List.iter (Stats.observe s "hist") [ 5.0; 1.0 ];
  List.iter (Stats.record s "series") [ 3.0; 1.0; 2.0 ];
  check Alcotest.string "order-independent" a (Json.to_string (Stats.to_json s))

let test_json_validate () =
  let schema =
    Json.Obj
      [
        ("type", Json.Str "object");
        ("required", Json.Arr [ Json.Str "n" ]);
        ( "properties",
          Json.Obj
            [
              ("n", Json.Obj [ ("type", Json.Str "integer") ]);
              ("tag", Json.Obj [ ("enum", Json.Arr [ Json.Str "a"; Json.Str "b" ]) ]);
            ] );
      ]
  in
  (match Json.validate ~schema (Json.Obj [ ("n", Json.Int 1); ("tag", Json.Str "a") ]) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "unexpected: %s" e);
  (match Json.validate ~schema (Json.Obj [ ("tag", Json.Str "a") ]) with
  | Ok () -> Alcotest.fail "missing required accepted"
  | Error _ -> ());
  match Json.validate ~schema (Json.Obj [ ("n", Json.Int 1); ("tag", Json.Str "z") ]) with
  | Ok () -> Alcotest.fail "enum violation accepted"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Dense (epoch-marked bitset + interner) *)

module Mark = Adgc_util.Dense.Mark

module Str_interner = Adgc_util.Dense.Interner (struct
  type t = string

  let equal = String.equal
  let hash = Hashtbl.hash
end)

let test_mark_basics () =
  let m = Mark.create () in
  check Alcotest.bool "fresh id unmarked" false (Mark.is_marked m 3);
  check Alcotest.bool "first mark is new" true (Mark.mark m 3);
  check Alcotest.bool "now marked" true (Mark.is_marked m 3);
  check Alcotest.bool "second mark is not new" false (Mark.mark m 3);
  check Alcotest.bool "neighbours untouched" false (Mark.is_marked m 2)

let test_mark_epoch_clear () =
  let m = Mark.create ~capacity:8 () in
  for i = 0 to 7 do
    ignore (Mark.mark m i : bool)
  done;
  Mark.clear m;
  for i = 0 to 7 do
    check Alcotest.bool "cleared" false (Mark.is_marked m i)
  done;
  (* Re-marking after a clear behaves like a fresh set. *)
  check Alcotest.bool "mark again" true (Mark.mark m 5);
  check Alcotest.bool "others still clear" false (Mark.is_marked m 4);
  (* Many clears never wrap into stale marks. *)
  for _ = 1 to 10_000 do
    Mark.clear m
  done;
  check Alcotest.bool "no stale mark after many epochs" false (Mark.is_marked m 5)

let test_mark_growth () =
  let m = Mark.create ~capacity:2 () in
  check Alcotest.bool "mark far beyond capacity" true (Mark.mark m 1_000);
  check Alcotest.bool "marked after growth" true (Mark.is_marked m 1_000);
  check Alcotest.bool "beyond capacity reads unmarked" false (Mark.is_marked m 1_000_000);
  check Alcotest.bool "grown capacity" true (Mark.capacity m > 1_000)

let test_mark_negative () =
  let m = Mark.create () in
  check Alcotest.bool "negative is_marked is false" false (Mark.is_marked m (-1));
  Alcotest.check_raises "negative mark" (Invalid_argument "Dense.Mark.mark: negative id")
    (fun () -> ignore (Mark.mark m (-1) : bool))

let test_interner_bijection () =
  let t = Str_interner.create () in
  check Alcotest.int "empty" 0 (Str_interner.size t);
  check Alcotest.int "a -> 0" 0 (Str_interner.intern t "a");
  check Alcotest.int "b -> 1" 1 (Str_interner.intern t "b");
  check Alcotest.int "a stable" 0 (Str_interner.intern t "a");
  check Alcotest.int "size" 2 (Str_interner.size t);
  check Alcotest.string "key 0" "a" (Str_interner.key t 0);
  check Alcotest.string "key 1" "b" (Str_interner.key t 1);
  check (Alcotest.option Alcotest.int) "find known" (Some 1) (Str_interner.find t "b");
  check (Alcotest.option Alcotest.int) "find unknown" None (Str_interner.find t "zz");
  check Alcotest.bool "mem" true (Str_interner.mem t "a");
  check Alcotest.bool "not mem" false (Str_interner.mem t "zz")

let test_interner_iter_order () =
  let t = Str_interner.create ~capacity:1 () in
  let names = List.init 100 string_of_int in
  List.iter (fun s -> ignore (Str_interner.intern t s : int)) names;
  let out = ref [] in
  Str_interner.iter t (fun id key ->
      check Alcotest.int "id matches position" (List.length !out) id;
      out := key :: !out);
  check (Alcotest.list Alcotest.string) "id order = intern order" names (List.rev !out)

let test_interner_key_unassigned () =
  let t = Str_interner.create () in
  ignore (Str_interner.intern t "only" : int);
  Alcotest.check_raises "unassigned id" (Invalid_argument "Dense.Interner.key: id 1 unassigned")
    (fun () -> ignore (Str_interner.key t 1 : string))

(* ------------------------------------------------------------------ *)
(* Table *)

let test_table_render () =
  let s =
    Table.render ~header:[ "name"; "value" ] ~rows:[ [ "a"; "1" ]; [ "bc"; "23" ] ] ()
  in
  check Alcotest.bool "contains header" true
    (String.length s > 0 && String.index_opt s 'n' <> None);
  (* All lines share the same width. *)
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  let widths = List.map String.length lines in
  (match widths with
  | w :: rest -> List.iter (fun w' -> check Alcotest.int "aligned" w w') rest
  | [] -> Alcotest.fail "no output")

let test_table_pads_rows () =
  let s = Table.render ~header:[ "a"; "b"; "c" ] ~rows:[ [ "x" ]; [ "1"; "2"; "3"; "4" ] ] () in
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  check Alcotest.int "lines" 6 (List.length lines)

let suite =
  ( "util",
    [
      Alcotest.test_case "rng: determinism" `Quick test_rng_deterministic;
      Alcotest.test_case "rng: seed sensitivity" `Quick test_rng_seed_sensitivity;
      Alcotest.test_case "rng: int bounds" `Quick test_rng_int_bounds;
      Alcotest.test_case "rng: int_in bounds" `Quick test_rng_int_in_bounds;
      Alcotest.test_case "rng: int covers range" `Quick test_rng_int_covers_range;
      Alcotest.test_case "rng: float bounds" `Quick test_rng_float_bounds;
      Alcotest.test_case "rng: bernoulli extremes" `Quick test_rng_bernoulli_extremes;
      Alcotest.test_case "rng: bernoulli rate" `Quick test_rng_bernoulli_rate;
      Alcotest.test_case "rng: split independence" `Quick test_rng_split_independent;
      Alcotest.test_case "rng: copy" `Quick test_rng_copy;
      Alcotest.test_case "rng: shuffle is a permutation" `Quick test_rng_shuffle_permutation;
      Alcotest.test_case "rng: pick_list" `Quick test_rng_pick_list;
      Alcotest.test_case "pq: ordering" `Quick test_pq_ordering;
      Alcotest.test_case "pq: FIFO among ties" `Quick test_pq_fifo_ties;
      Alcotest.test_case "pq: peek" `Quick test_pq_peek;
      Alcotest.test_case "pq: interleaved ops" `Quick test_pq_interleaved;
      Alcotest.test_case "pq: growth" `Quick test_pq_grows;
      Alcotest.test_case "pq: to_list" `Quick test_pq_to_list;
      Alcotest.test_case "pq: random vs sort" `Quick test_pq_random_against_sort;
      Alcotest.test_case "trace: order" `Quick test_trace_order;
      Alcotest.test_case "trace: by topic" `Quick test_trace_by_topic;
      Alcotest.test_case "trace: bounded ring" `Quick test_trace_bounded;
      Alcotest.test_case "trace: disabled" `Quick test_trace_disable;
      Alcotest.test_case "trace: clear" `Quick test_trace_clear;
      Alcotest.test_case "trace: addf" `Quick test_trace_addf;
      Alcotest.test_case "stats: counters" `Quick test_stats_counters;
      Alcotest.test_case "stats: sorted names" `Quick test_stats_counters_sorted;
      Alcotest.test_case "stats: series" `Quick test_stats_series;
      Alcotest.test_case "stats: percentile" `Quick test_stats_percentile;
      Alcotest.test_case "stats: empty series" `Quick test_stats_empty_series;
      Alcotest.test_case "stats: merge" `Quick test_stats_merge;
      Alcotest.test_case "trace: disabled addf never renders" `Quick test_trace_disabled_addf_lazy;
      Alcotest.test_case "stats: percentile edges" `Quick test_stats_percentile_edges;
      Alcotest.test_case "stats: labelled counters" `Quick test_stats_labelled;
      Alcotest.test_case "stats: histograms" `Quick test_stats_histogram;
      Alcotest.test_case "stats: to_json is stable" `Quick test_stats_to_json_stable;
      Alcotest.test_case "json: roundtrip" `Quick test_json_roundtrip;
      Alcotest.test_case "json: rejects malformed" `Quick test_json_rejects;
      Alcotest.test_case "json: float representation" `Quick test_json_float_repr;
      Alcotest.test_case "json: schema validation" `Quick test_json_validate;
      Alcotest.test_case "dense: mark basics" `Quick test_mark_basics;
      Alcotest.test_case "dense: O(1) clear via epochs" `Quick test_mark_epoch_clear;
      Alcotest.test_case "dense: mark growth" `Quick test_mark_growth;
      Alcotest.test_case "dense: negative ids" `Quick test_mark_negative;
      Alcotest.test_case "dense: interner bijection" `Quick test_interner_bijection;
      Alcotest.test_case "dense: interner iter order" `Quick test_interner_iter_order;
      Alcotest.test_case "dense: interner key bounds" `Quick test_interner_key_unassigned;
      Alcotest.test_case "table: render alignment" `Quick test_table_render;
      Alcotest.test_case "table: row padding" `Quick test_table_pads_rows;
    ] )
