(* Tests for the DCDA itself: end-to-end detections on the paper's
   figures, each safety rule, the mutator race, termination, deletion
   modes and concurrent detections.  These drive snapshots and
   detections by hand for full control of the interleaving. *)

open Adgc_algebra
open Adgc_rt
module Detector = Adgc_dcda.Detector
module Policy = Adgc_dcda.Policy
module Report = Adgc_dcda.Report
module Summarize = Adgc_snapshot.Summarize
module Topology = Adgc_workload.Topology
module Stats = Adgc_util.Stats

let check = Alcotest.check

type harness = { cluster : Cluster.t; detectors : Detector.t array }

let mk ?(n = 6) ?(policy = Policy.aggressive) () =
  let cluster = Cluster.create ~n () in
  let rt = Cluster.rt cluster in
  let detectors = Array.map (fun p -> Detector.attach rt p ~policy) rt.Runtime.procs in
  { cluster; detectors }

let snapshot_all h =
  let now = Cluster.now h.cluster in
  Array.iteri
    (fun i d -> Detector.set_summary d (Summarize.run ~now (Cluster.proc h.cluster i)))
    h.detectors

let settle h = ignore (Cluster.drain h.cluster : int)

let gc_rounds h k =
  let rt = Cluster.rt h.cluster in
  for _ = 1 to k do
    Array.iter (fun p -> ignore (Lgc.run rt p : Lgc.report)) rt.Runtime.procs;
    Array.iter (fun p -> Reflist.send_new_sets rt p) rt.Runtime.procs;
    settle h
  done

let all_reports h =
  Array.to_list h.detectors |> List.concat_map Detector.reports

let stat h name = Stats.get (Cluster.stats h.cluster) name

(* ------------------------------------------------------------------ *)
(* Fig. 3: the simple distributed cycle *)

let test_fig3_detection () =
  let h = mk ~n:4 () in
  let built = Topology.fig3 h.cluster in
  Adgc_rt.Mutator.remove_root h.cluster (Topology.obj built "A");
  snapshot_all h;
  (* Initiate from the scion for F (held from P0, where B lives). *)
  let key_f = Topology.scion_key built ~src:0 "F" in
  check Alcotest.bool "initiated" true (Detector.initiate h.detectors.(1) key_f);
  settle h;
  (match all_reports h with
  | [ r ] ->
      check Alcotest.int "cycle of 4 refs" 4 (List.length r.Report.proven);
      check Alcotest.int "4 hops" 4 r.Report.hops;
      check Alcotest.int "span 4 processes" 4 (Report.span r);
      check Alcotest.bool "concluded at initiator" true
        (Proc_id.equal r.Report.concluded_at (Proc_id.of_int 1));
      (* The proven set is exactly the built cycle. *)
      let expected = List.sort Ref_key.compare built.Topology.cycle_refs in
      let got = List.sort Ref_key.compare r.Report.proven in
      check Alcotest.bool "proven = cycle" true (List.equal Ref_key.equal expected got)
  | l -> Alcotest.failf "expected 1 report, got %d" (List.length l));
  (* The arrival scion was deleted; the acyclic DGC unravels the rest. *)
  gc_rounds h 6;
  check Alcotest.int "everything reclaimed" 0 (Cluster.total_objects h.cluster)

let test_fig3_rooted_is_safe () =
  (* Same topology but the root stays: detection must refuse or abort,
     and nothing may be collected. *)
  let h = mk ~n:4 () in
  let built = Topology.fig3 h.cluster in
  snapshot_all h;
  let key_f = Topology.scion_key built ~src:0 "F" in
  (* F's scion is a legit candidate (F is not locally reachable at P1);
     the detection must die on the Local.Reach of B's stub at P0. *)
  ignore (Detector.initiate h.detectors.(1) key_f : bool);
  settle h;
  check Alcotest.int "no cycle found" 0 (List.length (all_reports h));
  check Alcotest.bool "stopped on local reachability" true
    (stat h "dcda.branch.local_reach" >= 1 || stat h "dcda.abort.locally_reachable" >= 1);
  gc_rounds h 4;
  check Alcotest.int "nothing collected" 14 (Cluster.total_objects h.cluster)

let test_fig3_candidate_refused_when_rooted_target () =
  let h = mk ~n:4 () in
  let built = Topology.fig3 h.cluster in
  (* Root directly on F: its scion is not even a candidate. *)
  Adgc_rt.Mutator.add_root h.cluster (Topology.obj built "F");
  snapshot_all h;
  let key_f = Topology.scion_key built ~src:0 "F" in
  check Alcotest.bool "refused" false (Detector.initiate h.detectors.(1) key_f)

(* ------------------------------------------------------------------ *)
(* Fig. 1: an extra dependency keeps the cycle alive *)

let test_fig1_extra_dependency () =
  (* The paper's first figure: a distributed cycle with one additional
     incoming reference (w in P4 -> x).  While w holds it, every
     detection ends with that dependency unresolved; when w lets go,
     the next detection concludes. *)
  let h = mk ~n:4 () in
  let built = Topology.ring h.cluster ~procs:[ 0; 1; 2 ] in
  let x = Topology.obj built "n0_0" in
  let w = Adgc_rt.Mutator.alloc h.cluster ~proc:3 () in
  Adgc_rt.Mutator.add_root h.cluster w;
  Adgc_rt.Mutator.wire_remote h.cluster ~holder:w ~target:x;
  snapshot_all h;
  let key = Topology.scion_key built ~src:2 "n0_0" in
  check Alcotest.bool "initiated" true (Detector.initiate h.detectors.(0) key);
  settle h;
  check Alcotest.int "no conclusion while w holds" 0 (List.length (all_reports h));
  gc_rounds h 3;
  check Alcotest.int "cycle intact" 4 (Cluster.total_objects h.cluster);
  (* w drops its reference; the dependency disappears. *)
  Adgc_rt.Mutator.unwire_remote h.cluster ~holder:w ~target:x;
  gc_rounds h 3;
  snapshot_all h;
  ignore (Detector.initiate h.detectors.(0) key : bool);
  settle h;
  check Alcotest.int "concluded once released" 1 (List.length (all_reports h));
  gc_rounds h 6;
  check Alcotest.int "only w remains" 1 (Cluster.total_objects h.cluster)

(* ------------------------------------------------------------------ *)
(* Fig. 4: mutually-linked cycles *)

let test_fig4_detection_from_f () =
  let h = mk () in
  let built = Topology.fig4 h.cluster in
  snapshot_all h;
  let key_f = Topology.scion_key built ~src:0 "F" in
  check Alcotest.bool "initiated" true (Detector.initiate h.detectors.(1) key_f);
  settle h;
  (* The first loop (F V T D) returns with the unresolved dependency on
     Y; the continuation through K ZB Y completes.  At least one
     conclusion must cover both cycles' references. *)
  let reports = all_reports h in
  check Alcotest.bool "concluded" true (reports <> []);
  let widest =
    List.fold_left (fun acc r -> Int.max acc (List.length r.Report.proven)) 0 reports
  in
  check Alcotest.int "full double cycle proven (7 refs)" 7 widest;
  check Alcotest.bool "no-new-info termination used" true (stat h "dcda.branch.no_new_info" >= 1);
  gc_rounds h 8;
  check Alcotest.int "both cycles reclaimed" 0 (Cluster.total_objects h.cluster)

let test_fig4_extra_dependency_blocks_first_pass () =
  (* Seen from the algebra: after the left loop only, Y is unresolved,
     so no conclusion can have happened after one loop.  We verify
     operationally: the detection does NOT conclude with just the 4
     left-cycle refs. *)
  let h = mk () in
  let built = Topology.fig4 h.cluster in
  snapshot_all h;
  ignore (Detector.initiate h.detectors.(1) (Topology.scion_key built ~src:0 "F") : bool);
  settle h;
  List.iter
    (fun r ->
      if List.length r.Report.proven = 4 then
        Alcotest.fail "concluded on the left cycle alone despite the Y dependency")
    (all_reports h)

(* ------------------------------------------------------------------ *)
(* Fig. 5: the mutator-DCDA race *)

(* Reproduce the §3.2 interleaving: detection starts from old
   snapshots; the mutator then invokes through the D->F reference and
   re-roots the cycle at M; P0's snapshot is only taken afterwards.
   The detection must abort on the invocation counters. *)
let test_fig5_race_aborts () =
  let h = mk ~n:5 () in
  let built = Topology.fig5 h.cluster in
  let f = Topology.obj built "F" in
  let j = Topology.obj built "J" in
  let m = Topology.obj built "M" in
  let a = Topology.obj built "A" in
  (* A also knows M (so the reference to J can travel to M later). *)
  Adgc_rt.Mutator.wire_remote h.cluster ~holder:a ~target:m;
  (* Old snapshots at P1 (F's process), P4 (V), P3 (T): IC of the
     F-reference is 0 in all of them. *)
  let now = Cluster.now h.cluster in
  List.iter
    (fun i ->
      Detector.set_summary h.detectors.(i) (Summarize.run ~now (Cluster.proc h.cluster i)))
    [ 1; 3; 4 ];
  (* The mutator races: invoke through D->F, fetch J, hand it to M,
     drop the root at A. *)
  let got = ref [] in
  Adgc_rt.Mutator.call h.cluster ~src:0 ~target:f.Heap.oid
    ~behavior:Adgc_rt.Mutator.return_field_refs
    ~on_reply:(fun results -> got := results)
    ();
  settle h;
  check Alcotest.bool "J came back" true (List.exists (Oid.equal j.Heap.oid) !got);
  Adgc_rt.Mutator.call h.cluster ~src:0 ~target:m.Heap.oid ~args:[ j.Heap.oid ]
    ~behavior:Adgc_rt.Mutator.store_args ();
  settle h;
  Adgc_rt.Mutator.remove_root h.cluster a;
  (* P0 snapshots only now: its stub for F carries IC = 1. *)
  let now = Cluster.now h.cluster in
  Detector.set_summary h.detectors.(0) (Summarize.run ~now (Cluster.proc h.cluster 0));
  (* Detection starts at P1 from its stale summary (scion IC = 0). *)
  let key_f = Topology.scion_key built ~src:0 "F" in
  check Alcotest.bool "initiated" true (Detector.initiate h.detectors.(1) key_f);
  settle h;
  check Alcotest.int "no cycle concluded" 0 (List.length (all_reports h));
  check Alcotest.bool "aborted on invocation counters" true
    (stat h "dcda.abort.ic_mismatch_delivery" >= 1
    || stat h "dcda.abort.ic_mismatch_matching" >= 1
    || stat h "dcda.abort.ic_conflict" >= 1);
  (* And the cycle is in fact alive through M: nothing may be swept. *)
  gc_rounds h 4;
  check Alcotest.bool "cycle survives (alive via M)" true
    (Heap.mem (Cluster.proc h.cluster 1).Process.heap f.Heap.oid)

let test_fig5_race_early_ic_check_saves_message () =
  (* Same race, with the paper's §3.2 optimization on: the process
     about to forward the conflicting algebra aborts locally instead
     of sending a doomed CDM. *)
  let policy = { Policy.aggressive with Policy.early_ic_check = true } in
  let h = mk ~n:5 ~policy () in
  let built = Topology.fig5 h.cluster in
  let f = Topology.obj built "F" in
  let now = Cluster.now h.cluster in
  List.iter
    (fun i ->
      Detector.set_summary h.detectors.(i) (Summarize.run ~now (Cluster.proc h.cluster i)))
    [ 1; 3; 4 ];
  Adgc_rt.Mutator.call h.cluster ~src:0 ~target:f.Heap.oid ();
  settle h;
  Adgc_rt.Mutator.remove_root h.cluster (Topology.obj built "A");
  let now = Cluster.now h.cluster in
  Detector.set_summary h.detectors.(0) (Summarize.run ~now (Cluster.proc h.cluster 0));
  ignore (Detector.initiate h.detectors.(1) (Topology.scion_key built ~src:0 "F") : bool);
  settle h;
  check Alcotest.int "no cycle concluded" 0 (List.length (all_reports h));
  check Alcotest.bool "early abort fired" true (stat h "dcda.abort.ic_mismatch_early" >= 1);
  check Alcotest.bool "a CDM was saved" true (stat h "dcda.cdm_saved" >= 1)

let test_fig5_after_snapshot_refresh_detects () =
  (* Control experiment: same topology, but when the cycle is truly
     garbage and all snapshots are current, the detection succeeds. *)
  let h = mk ~n:5 () in
  let built = Topology.fig5 h.cluster in
  Adgc_rt.Mutator.remove_root h.cluster (Topology.obj built "A");
  snapshot_all h;
  let key_f = Topology.scion_key built ~src:0 "F" in
  check Alcotest.bool "initiated" true (Detector.initiate h.detectors.(1) key_f);
  settle h;
  check Alcotest.int "cycle found" 1 (List.length (all_reports h))

(* ------------------------------------------------------------------ *)
(* Safety rule 1: stub without scion in the snapshot *)

let test_missing_scion_discards_cdm () =
  let h = mk ~n:4 () in
  let built = Topology.ring h.cluster ~procs:[ 0; 1; 2 ] in
  (* P1 snapshots BEFORE the ring exists from its point of view: fake
     it by giving P1 a summary of an empty process. *)
  let empty_cluster = Cluster.create ~n:4 () in
  Detector.set_summary h.detectors.(1)
    (Summarize.run ~now:0 (Cluster.proc empty_cluster 1));
  List.iter
    (fun i ->
      Detector.set_summary h.detectors.(i) (Summarize.run ~now:0 (Cluster.proc h.cluster i)))
    [ 0; 2 ];
  ignore (Detector.initiate h.detectors.(0) (Topology.scion_key built ~src:2 "n0_0") : bool);
  settle h;
  check Alcotest.int "no conclusion" 0 (List.length (all_reports h));
  check Alcotest.bool "rule 1 fired" true (stat h "dcda.abort.missing_scion" >= 1)

let test_no_summary_discards_cdm () =
  let h = mk ~n:3 () in
  let built = Topology.ring h.cluster ~procs:[ 0; 1; 2 ] in
  (* P1 never snapshots. *)
  List.iter
    (fun i ->
      Detector.set_summary h.detectors.(i) (Summarize.run ~now:0 (Cluster.proc h.cluster i)))
    [ 0; 2 ];
  ignore (Detector.initiate h.detectors.(0) (Topology.scion_key built ~src:2 "n0_0") : bool);
  settle h;
  check Alcotest.bool "no_summary abort" true (stat h "dcda.abort.no_summary" >= 1);
  check Alcotest.int "no conclusion" 0 (List.length (all_reports h))

(* ------------------------------------------------------------------ *)
(* TTL *)

let test_ttl_stops_detection () =
  let policy = { Policy.aggressive with Policy.ttl = Some 2 } in
  let h = mk ~n:4 ~policy () in
  let built = Topology.ring h.cluster ~procs:[ 0; 1; 2; 3 ] in
  snapshot_all h;
  ignore (Detector.initiate h.detectors.(0) (Topology.scion_key built ~src:3 "n0_0") : bool);
  settle h;
  check Alcotest.int "no conclusion" 0 (List.length (all_reports h));
  check Alcotest.bool "ttl abort" true (stat h "dcda.abort.ttl" >= 1)

(* ------------------------------------------------------------------ *)
(* Deletion modes *)

let reclaim_fig4_with mode =
  let policy = { Policy.aggressive with Policy.deletion_mode = mode } in
  let h = mk ~policy () in
  let built = Topology.fig4 h.cluster in
  let rec converge rounds =
    if rounds = 0 then ()
    else begin
      snapshot_all h;
      Array.iter (fun d -> ignore (Detector.scan d : int)) h.detectors;
      settle h;
      gc_rounds h 2;
      if Cluster.total_objects h.cluster > 0 then converge (rounds - 1)
    end
  in
  converge 12;
  ignore built;
  (h, Cluster.total_objects h.cluster)

let test_deletion_all_local () =
  let h, remaining = reclaim_fig4_with Policy.All_local in
  check Alcotest.int "reclaimed" 0 remaining;
  check Alcotest.int "no broadcast traffic" 0 (stat h "net.msg.sent.cdm_delete")

let test_deletion_arrival_only () =
  let h, remaining = reclaim_fig4_with Policy.Arrival_only in
  check Alcotest.int "reclaimed (may take more rounds)" 0 remaining;
  ignore h

let test_deletion_broadcast () =
  let h, remaining = reclaim_fig4_with Policy.Broadcast in
  check Alcotest.int "reclaimed" 0 remaining;
  check Alcotest.bool "broadcast used" true (stat h "net.msg.sent.cdm_delete" >= 1);
  check Alcotest.bool "remote deletions happened" true
    (stat h "dcda.scions_deleted.broadcast" >= 1)

(* ------------------------------------------------------------------ *)
(* Concurrent detections *)

let test_two_disjoint_cycles_in_parallel () =
  let h = mk ~n:6 () in
  let r1 = Topology.ring h.cluster ~procs:[ 0; 1; 2 ] in
  let r2 = Topology.ring h.cluster ~procs:[ 3; 4; 5 ] in
  snapshot_all h;
  check Alcotest.bool "first" true
    (Detector.initiate h.detectors.(0) (Topology.scion_key r1 ~src:2 "n0_0"));
  check Alcotest.bool "second" true
    (Detector.initiate h.detectors.(3) (Topology.scion_key r2 ~src:5 "n3_0"));
  settle h;
  let reports = all_reports h in
  check Alcotest.int "both concluded" 2 (List.length reports);
  let ids = List.map (fun r -> r.Report.id) reports in
  check Alcotest.bool "distinct detections" true
    (match ids with [ a; b ] -> not (Detection_id.equal a b) | _ -> false);
  gc_rounds h 6;
  check Alcotest.int "all reclaimed" 0 (Cluster.total_objects h.cluster)

let test_duplicate_detections_idempotent () =
  (* Two initiators race on the same ring: both may conclude; scion
     deletions are idempotent and everything is still reclaimed
     exactly once. *)
  let h = mk ~n:3 () in
  let built = Topology.ring h.cluster ~procs:[ 0; 1; 2 ] in
  snapshot_all h;
  ignore (Detector.initiate h.detectors.(0) (Topology.scion_key built ~src:2 "n0_0") : bool);
  ignore (Detector.initiate h.detectors.(1) (Topology.scion_key built ~src:0 "n1_0") : bool);
  settle h;
  check Alcotest.bool "at least one conclusion" true (all_reports h <> []);
  gc_rounds h 6;
  check Alcotest.int "reclaimed" 0 (Cluster.total_objects h.cluster)

(* ------------------------------------------------------------------ *)
(* Candidate scanning *)

let test_scan_respects_idle_threshold () =
  let policy = { Policy.aggressive with Policy.idle_threshold = 1_000_000 } in
  let h = mk ~n:3 ~policy () in
  let _built = Topology.ring h.cluster ~procs:[ 0; 1; 2 ] in
  snapshot_all h;
  let started = Array.fold_left (fun acc d -> acc + Detector.scan d) 0 h.detectors in
  check Alcotest.int "nothing idle enough" 0 started

let test_scan_cooldown () =
  let h = mk ~n:3 () in
  let _built = Topology.ring h.cluster ~procs:[ 0; 1; 2 ] in
  Cluster.run_for h.cluster 1_000;
  (* idle_threshold is 200 in the aggressive policy *)
  snapshot_all h;
  let s1 = Detector.scan h.detectors.(0) in
  check Alcotest.bool "initiated" true (s1 >= 1);
  let s2 = Detector.scan h.detectors.(0) in
  check Alcotest.int "cooldown suppresses immediate rescan" 0 s2

let test_scan_skips_rooted_targets () =
  let h = mk ~n:3 () in
  let _built = Topology.rooted_ring h.cluster ~procs:[ 0; 1; 2 ] in
  Cluster.run_for h.cluster 1_000;
  snapshot_all h;
  (* P0 holds the root; its scion's target is locally reachable, so
     detector 0 must not initiate from it. *)
  check Alcotest.int "rooted target not a candidate" 0 (Detector.scan h.detectors.(0))

(* 8 independent 2-cycles between P0 and P1 give P1 eight candidate
   scions; with max_per_scan = 3 the rotating order covers all eight
   in three scans (the huge cooldown exposes any revisits as a count
   below 8). *)
let test_scan_rotation_avoids_starvation () =
  let policy =
    {
      Policy.aggressive with
      Policy.max_per_scan = 3;
      cooldown = 1_000_000;
      scan_order = Policy.Rotating;
    }
  in
  let h = mk ~n:2 ~policy () in
  for _ = 1 to 8 do
    let a = Adgc_rt.Mutator.alloc h.cluster ~proc:0 () in
    let b = Adgc_rt.Mutator.alloc h.cluster ~proc:1 () in
    Adgc_rt.Mutator.wire_remote h.cluster ~holder:a ~target:b;
    Adgc_rt.Mutator.wire_remote h.cluster ~holder:b ~target:a
  done;
  Cluster.run_for h.cluster 1_000;
  snapshot_all h;
  let total = ref 0 in
  for _ = 1 to 3 do
    total := !total + Detector.scan h.detectors.(1)
  done;
  check Alcotest.int "all eight candidates initiated" 8 !total

let test_scan_backoff_on_fruitless_candidates () =
  (* A cycle pinned forever by an external reference (Fig. 1 with w
     never letting go): scans keep retrying but exponentially less
     often. *)
  let h = mk ~n:4 () in
  let built = Topology.ring h.cluster ~procs:[ 0; 1; 2 ] in
  let w = Adgc_rt.Mutator.alloc h.cluster ~proc:3 () in
  Adgc_rt.Mutator.add_root h.cluster w;
  Adgc_rt.Mutator.wire_remote h.cluster ~holder:w ~target:(Topology.obj built "n0_0");
  Cluster.run_for h.cluster 1_000;
  let count_initiations window =
    let before = stat h "dcda.detections_started" in
    for _ = 1 to window do
      Cluster.run_for h.cluster 2_000;
      (* cooldown in the aggressive policy *)
      snapshot_all h;
      Array.iter (fun d -> ignore (Detector.scan d : int)) h.detectors;
      settle h
    done;
    stat h "dcda.detections_started" - before
  in
  let early = count_initiations 8 in
  let late = count_initiations 8 in
  check Alcotest.bool "retries back off" true (late < early);
  check Alcotest.bool "still retried occasionally" true (early > 0)

let test_initiate_unknown_scion () =
  let h = mk ~n:3 () in
  snapshot_all h;
  let bogus =
    Ref_key.make ~src:(Proc_id.of_int 1) ~target:(Oid.make ~owner:(Proc_id.of_int 0) ~serial:99)
  in
  check Alcotest.bool "refused" false (Detector.initiate h.detectors.(0) bogus)

(* ------------------------------------------------------------------ *)
(* Harder topologies *)

let reclaim_via_sim ~n ~max_time build =
  let config = Adgc.Config.quick ~n_procs:n () in
  let sim = Adgc.Sim.create ~config () in
  let cluster = Adgc.Sim.cluster sim in
  let checker = Adgc_workload.Metrics.install_safety_checker cluster in
  let built = build cluster in
  ignore (built : Topology.built);
  Adgc.Sim.start sim;
  let clean = Adgc.Sim.run_until_clean ~step:1_000 ~max_time sim in
  Adgc_workload.Metrics.assert_safe checker;
  (clean, Cluster.total_objects cluster)

let test_star_cycles_reclaimed () =
  let clean, left = reclaim_via_sim ~n:5 ~max_time:300_000 (fun c -> Topology.star_cycles c) in
  check Alcotest.bool "clean" true clean;
  check Alcotest.int "nothing left" 0 left

let test_lattice_reclaimed () =
  let clean, left =
    reclaim_via_sim ~n:4 ~max_time:500_000 (fun c -> Topology.lattice c ~rows:3 ~cols:4)
  in
  check Alcotest.bool "clean" true clean;
  check Alcotest.int "nothing left" 0 left

let test_chain_into_ring_reclaimed () =
  let clean, left =
    reclaim_via_sim ~n:3 ~max_time:500_000 (fun c ->
        Topology.chain_into_ring ~chain:10 c ~procs:[ 0; 1; 2 ])
  in
  check Alcotest.bool "clean" true clean;
  check Alcotest.int "nothing left" 0 left

let test_small_clique_reclaimed_within_budget () =
  (* K4: every pair of 4 objects across 2 processes mutually linked.
     Conclusions need a CDM walk covering all 8 references; the
     default per-detection budget finds one. *)
  let config = Adgc.Config.quick ~n_procs:2 () in
  let sim = Adgc.Sim.create ~config () in
  let cluster = Adgc.Sim.cluster sim in
  let objs =
    Array.init 2 (fun p -> Array.init 2 (fun _ -> Adgc_rt.Mutator.alloc cluster ~proc:p ()))
  in
  Array.iteri
    (fun p row ->
      Array.iter
        (fun o ->
          Array.iteri
            (fun q row' ->
              Array.iter
                (fun o' ->
                  if o != o' then
                    if p = q then
                      ignore
                        (Adgc_rt.Heap.add_ref (Cluster.proc cluster p).Adgc_rt.Process.heap o
                           o'.Adgc_rt.Heap.oid
                          : int)
                    else Adgc_rt.Mutator.wire_remote cluster ~holder:o ~target:o')
                row')
            objs)
        row)
    objs;
  Adgc.Sim.start sim;
  check Alcotest.bool "K4 reclaimed" true (Adgc.Sim.run_until_clean ~max_time:300_000 sim)

let test_rooted_lattice_safe () =
  (* Root one grid corner: everything reachable from it must survive
     arbitrary detector activity. *)
  let config = Adgc.Config.quick ~n_procs:4 () in
  let sim = Adgc.Sim.create ~config () in
  let cluster = Adgc.Sim.cluster sim in
  let checker = Adgc_workload.Metrics.install_safety_checker cluster in
  let built = Topology.lattice cluster ~rows:2 ~cols:4 in
  Adgc_rt.Mutator.add_root cluster (Topology.obj built "g0_0");
  Adgc.Sim.start sim;
  Adgc.Sim.run_for sim 60_000;
  Adgc_workload.Metrics.assert_safe checker;
  (* From g0_0 the whole first row and everything below it is
     reachable (rows are rings, columns chain down): all 8 nodes. *)
  check Alcotest.int "rooted lattice intact" 8 (Cluster.total_objects cluster)

(* ------------------------------------------------------------------ *)
(* Detections under message loss *)

let test_detection_with_lost_cdm_retries () =
  (* Drop ALL CDMs for a while: the cycle survives (safe), and once the
     network heals a rescan finds it. *)
  let h = mk ~n:3 () in
  let built = Topology.ring h.cluster ~procs:[ 0; 1; 2 ] in
  (Network.config (Cluster.net h.cluster)).Network.drop_prob <- 1.0;
  snapshot_all h;
  ignore (Detector.initiate h.detectors.(0) (Topology.scion_key built ~src:2 "n0_0") : bool);
  settle h;
  check Alcotest.int "no conclusion yet" 0 (List.length (all_reports h));
  gc_rounds h 2;
  check Alcotest.int "cycle intact" 3 (Cluster.total_objects h.cluster);
  (Network.config (Cluster.net h.cluster)).Network.drop_prob <- 0.0;
  Cluster.run_for h.cluster 5_000;
  snapshot_all h;
  ignore (Detector.initiate h.detectors.(0) (Topology.scion_key built ~src:2 "n0_0") : bool);
  settle h;
  check Alcotest.int "found after heal" 1 (List.length (all_reports h));
  gc_rounds h 6;
  check Alcotest.int "reclaimed" 0 (Cluster.total_objects h.cluster)

(* qcheck: any garbage ring (random span, chain lengths, seed) is
   detected and fully reclaimed. *)
let prop_random_rings_always_reclaimed =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"any garbage ring is reclaimed" ~count:25
       QCheck2.Gen.(triple (int_range 2 8) (int_range 1 3) (int_range 0 10_000))
       (fun (span, objs_per_proc, seed) ->
         let config = Adgc.Config.quick ~seed ~n_procs:span () in
         let sim = Adgc.Sim.create ~config () in
         let cluster = Adgc.Sim.cluster sim in
         let _built =
           Topology.ring ~objs_per_proc cluster ~procs:(List.init span (fun i -> i))
         in
         Adgc.Sim.start sim;
         Adgc.Sim.run_until_clean ~step:1_000 ~max_time:400_000 sim))

(* qcheck: a rooted ring with the same parameters is never touched. *)
let prop_random_rooted_rings_survive =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"any rooted ring survives" ~count:25
       QCheck2.Gen.(triple (int_range 2 8) (int_range 1 3) (int_range 0 10_000))
       (fun (span, objs_per_proc, seed) ->
         let config = Adgc.Config.quick ~seed ~n_procs:span () in
         let sim = Adgc.Sim.create ~config () in
         let cluster = Adgc.Sim.cluster sim in
         let _built =
           Topology.rooted_ring ~objs_per_proc cluster ~procs:(List.init span (fun i -> i))
         in
         Adgc.Sim.start sim;
         Adgc.Sim.run_for sim 50_000;
         Cluster.total_objects cluster = span * objs_per_proc))

(* ------------------------------------------------------------------ *)
(* Duplicate delivery: a replayed CDM or cycle-deletion envelope must
   leave the detector state exactly as the first delivery did. *)

let test_duplicate_cdm_ignored () =
  let h = mk ~n:4 () in
  let built = Topology.fig3 h.cluster in
  Mutator.remove_root h.cluster (Topology.obj built "A");
  snapshot_all h;
  ignore (Detector.initiate h.detectors.(1) (Topology.scion_key built ~src:0 "F") : bool);
  (* Snatch the first CDM off the wire before it lands. *)
  let cdm_msg =
    match
      List.find_opt
        (fun (m : Msg.t) -> match m.Msg.payload with Msg.Cdm _ -> true | _ -> false)
        (Network.in_flight (Cluster.net h.cluster))
    with
    | Some m -> m
    | None -> Alcotest.fail "no CDM in flight after initiation"
  in
  settle h;
  let received = stat h "dcda.cdm_received" in
  let reports = List.length (all_reports h) in
  check Alcotest.int "detection concluded" 1 reports;
  (* Adversarial replay of the captured envelope. *)
  Network.send (Cluster.net h.cluster) cdm_msg;
  settle h;
  check Alcotest.int "replay suppressed" 1 (stat h "net.msg.duplicate_ignored");
  check Alcotest.int "detector never re-ran" received (stat h "dcda.cdm_received");
  check Alcotest.int "no extra conclusion" reports (List.length (all_reports h))

let test_duplicate_cdm_delete_idempotent () =
  let h = mk ~n:4 () in
  let built = Topology.fig3 h.cluster in
  Mutator.remove_root h.cluster (Topology.obj built "A");
  let key_f = Topology.scion_key built ~src:0 "F" in
  let p1 = Cluster.proc h.cluster 1 in
  check Alcotest.bool "scion exists" true (Scion_table.mem p1.Process.scions key_f);
  let id = Detection_id.make ~initiator:(Proc_id.of_int 1) ~seq:99 in
  let payload = Msg.Cdm_delete { id; scions = [ key_f ] } in
  let msg =
    Msg.make ~seq:500 ~src:(Proc_id.of_int 3) ~dst:p1.Process.id ~sent_at:0 payload
  in
  Network.send (Cluster.net h.cluster) msg;
  Network.send (Cluster.net h.cluster) msg;
  settle h;
  check Alcotest.bool "scion deleted" false (Scion_table.mem p1.Process.scions key_f);
  check Alcotest.bool "tombstoned" true (Scion_table.tombstoned p1.Process.scions key_f);
  check Alcotest.int "deleted exactly once" 1 (stat h "dcda.scions_deleted.broadcast");
  check Alcotest.int "replay suppressed" 1 (stat h "net.msg.duplicate_ignored");
  (* Same deletion inside a fresh envelope: the handler itself is
     idempotent — deleting a deleted scion is a no-op. *)
  let msg' =
    Msg.make ~seq:501 ~src:(Proc_id.of_int 3) ~dst:p1.Process.id ~sent_at:0 payload
  in
  Network.send (Cluster.net h.cluster) msg';
  settle h;
  check Alcotest.int "still deleted exactly once" 1 (stat h "dcda.scions_deleted.broadcast")

(* ------------------------------------------------------------------ *)
(* Detection lineage (telemetry on) *)

module Lineage = Adgc_obs.Lineage

let mk_telemetry ?(n = 6) ?(policy = Policy.aggressive) () =
  let cluster = Cluster.create ~telemetry:true ~n () in
  let rt = Cluster.rt cluster in
  let detectors = Array.map (fun p -> Detector.attach rt p ~policy) rt.Runtime.procs in
  { cluster; detectors }

(* A proven report's lineage must read as a complete story: initiated,
   at least one send and one receive, chronological, concluded. *)
let assert_full_chain (r : Report.t) =
  match r.Report.lineage with
  | [] -> Alcotest.fail "report has no lineage"
  | first :: _ as hops ->
      (match first with
      | Lineage.Initiated _ -> ()
      | h -> Alcotest.failf "chain starts with %s" (Format.asprintf "%a" Lineage.pp_hop h));
      (match List.nth hops (List.length hops - 1) with
      | Lineage.Concluded { proven; _ } -> check Alcotest.bool "concluded proven" true proven
      | h -> Alcotest.failf "chain ends with %s" (Format.asprintf "%a" Lineage.pp_hop h));
      check Alcotest.bool "has a send" true
        (List.exists (function Lineage.Sent _ -> true | _ -> false) hops);
      check Alcotest.bool "has a receive" true
        (List.exists (function Lineage.Received _ -> true | _ -> false) hops);
      let times = List.map Lineage.hop_time hops in
      check Alcotest.bool "chronological" true (List.sort Int.compare times = times)

let test_lineage_fig3_full_chain () =
  let h = mk_telemetry ~n:4 () in
  let built = Topology.fig3 h.cluster in
  Mutator.remove_root h.cluster (Topology.obj built "A");
  snapshot_all h;
  let key_f = Topology.scion_key built ~src:0 "F" in
  check Alcotest.bool "initiated" true (Detector.initiate h.detectors.(1) key_f);
  settle h;
  match all_reports h with
  | [ r ] ->
      assert_full_chain r;
      let received =
        List.length
          (List.filter (function Lineage.Received _ -> true | _ -> false) r.Report.lineage)
      in
      check Alcotest.int "one Received per CDM hop" r.Report.hops received
  | rs -> Alcotest.failf "expected one report, got %d" (List.length rs)

let test_lineage_every_concurrent_report () =
  let h = mk_telemetry ~n:6 () in
  let r1 = Topology.ring h.cluster ~procs:[ 0; 1; 2 ] in
  let r2 = Topology.ring h.cluster ~procs:[ 3; 4; 5 ] in
  snapshot_all h;
  ignore (Detector.initiate h.detectors.(0) (Topology.scion_key r1 ~src:2 "n0_0") : bool);
  ignore (Detector.initiate h.detectors.(3) (Topology.scion_key r2 ~src:5 "n3_0") : bool);
  settle h;
  let reports = all_reports h in
  check Alcotest.int "both concluded" 2 (List.length reports);
  List.iter assert_full_chain reports;
  (* The two chains are keyed separately in the registry. *)
  check Alcotest.int "two detections in the registry" 2
    (List.length (Lineage.detections (Cluster.lineage h.cluster)))

let test_lineage_guard_recorded () =
  (* A rooted (live) cycle: the detection must die on a guard, and the
     registry must say which one even though no report exists. *)
  let h = mk_telemetry ~n:4 () in
  let built = Topology.fig3 h.cluster in
  snapshot_all h;
  let key_f = Topology.scion_key built ~src:0 "F" in
  check Alcotest.bool "initiated" true (Detector.initiate h.detectors.(1) key_f);
  settle h;
  check Alcotest.int "no report for a live cycle" 0 (List.length (all_reports h));
  let lineage = Cluster.lineage h.cluster in
  match Lineage.detections lineage with
  | [ id ] ->
      check Alcotest.bool "guard recorded" true
        (List.exists
           (function Lineage.Guard _ -> true | _ -> false)
           (Lineage.hops lineage id))
  | ids -> Alcotest.failf "expected one detection, got %d" (List.length ids)

let test_lineage_off_is_empty () =
  let h = mk ~n:4 () in
  let built = Topology.fig3 h.cluster in
  Mutator.remove_root h.cluster (Topology.obj built "A");
  snapshot_all h;
  ignore (Detector.initiate h.detectors.(1) (Topology.scion_key built ~src:0 "F") : bool);
  settle h;
  match all_reports h with
  | [ r ] -> check Alcotest.int "no lineage without telemetry" 0 (List.length r.Report.lineage)
  | _ -> Alcotest.fail "expected one report"

let suite =
  ( "detector",
    [
      Alcotest.test_case "fig3: detects and reclaims" `Quick test_fig3_detection;
      Alcotest.test_case "fig3: rooted cycle is safe" `Quick test_fig3_rooted_is_safe;
      Alcotest.test_case "fig3: rooted target not a candidate" `Quick
        test_fig3_candidate_refused_when_rooted_target;
      Alcotest.test_case "fig1: extra dependency" `Quick test_fig1_extra_dependency;
      Alcotest.test_case "fig4: mutual cycles detected" `Quick test_fig4_detection_from_f;
      Alcotest.test_case "fig4: Y dependency blocks early conclusion" `Quick
        test_fig4_extra_dependency_blocks_first_pass;
      Alcotest.test_case "fig5: mutator race aborts" `Quick test_fig5_race_aborts;
      Alcotest.test_case "fig5: early IC check saves the doomed CDM" `Quick
        test_fig5_race_early_ic_check_saves_message;
      Alcotest.test_case "fig5: control (garbage detected)" `Quick
        test_fig5_after_snapshot_refresh_detects;
      Alcotest.test_case "rule 1: missing scion" `Quick test_missing_scion_discards_cdm;
      Alcotest.test_case "no summary: CDM discarded" `Quick test_no_summary_discards_cdm;
      Alcotest.test_case "ttl stops runaway detection" `Quick test_ttl_stops_detection;
      Alcotest.test_case "deletion: all_local" `Quick test_deletion_all_local;
      Alcotest.test_case "deletion: arrival_only" `Quick test_deletion_arrival_only;
      Alcotest.test_case "deletion: broadcast" `Quick test_deletion_broadcast;
      Alcotest.test_case "parallel disjoint detections" `Quick test_two_disjoint_cycles_in_parallel;
      Alcotest.test_case "duplicate detections idempotent" `Quick
        test_duplicate_detections_idempotent;
      Alcotest.test_case "scan: idle threshold" `Quick test_scan_respects_idle_threshold;
      Alcotest.test_case "scan: cooldown" `Quick test_scan_cooldown;
      Alcotest.test_case "scan: skips rooted targets" `Quick test_scan_skips_rooted_targets;
      Alcotest.test_case "scan: rotation avoids starvation" `Quick
        test_scan_rotation_avoids_starvation;
      Alcotest.test_case "scan: backoff on fruitless candidates" `Quick
        test_scan_backoff_on_fruitless_candidates;
      Alcotest.test_case "initiate: unknown scion refused" `Quick test_initiate_unknown_scion;
      Alcotest.test_case "loss: CDM drop is safe, retry succeeds" `Quick
        test_detection_with_lost_cdm_retries;
      Alcotest.test_case "topology: star cycles reclaimed" `Quick test_star_cycles_reclaimed;
      Alcotest.test_case "topology: lattice reclaimed" `Quick test_lattice_reclaimed;
      Alcotest.test_case "topology: chain into ring reclaimed" `Quick
        test_chain_into_ring_reclaimed;
      Alcotest.test_case "topology: rooted lattice safe" `Quick test_rooted_lattice_safe;
      Alcotest.test_case "topology: K4 clique within budget" `Quick
        test_small_clique_reclaimed_within_budget;
      prop_random_rings_always_reclaimed;
      prop_random_rooted_rings_survive;
      Alcotest.test_case "duplicate: CDM replay ignored" `Quick test_duplicate_cdm_ignored;
      Alcotest.test_case "duplicate: cycle deletion idempotent" `Quick
        test_duplicate_cdm_delete_idempotent;
      Alcotest.test_case "lineage: fig3 full chain" `Quick test_lineage_fig3_full_chain;
      Alcotest.test_case "lineage: every concurrent report" `Quick
        test_lineage_every_concurrent_report;
      Alcotest.test_case "lineage: guard on a live cycle" `Quick test_lineage_guard_recorded;
      Alcotest.test_case "lineage: empty when telemetry off" `Quick test_lineage_off_is_empty;
    ] )
