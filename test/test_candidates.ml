(* The incremental candidate maintainer checked against the full-scan
   oracle (satellite of the incremental-candidates tentpole):

   - a QCheck property drives a small cluster through arbitrary
     scripted heap/scion churn — edge inserts and cuts, root flips,
     remote wiring, local collections — and asserts after EVERY step
     that {!Adgc_dcda.Candidates.audit} agrees with an independent
     full root trace (label exactness is an invariant, not an
     eventually-property);
   - a sim-level matrix (3 seeds x {dcda, backtrack-coexistence} x
     {seq, par}) runs the real churn workload under timers and audits
     at checkpoints, proving the maintainer stays exact while an
     actual detector (or the backtracking baseline it merely coexists
     with) mutates heaps, scion tables and crash-prone schedules
     under both execution engines. *)

open Adgc_algebra
open Adgc_rt
module Sim = Adgc.Sim
module Config = Adgc.Config
module Candidates = Adgc_dcda.Candidates
module Detector = Adgc_dcda.Detector
module Rng = Adgc_util.Rng

let check = Alcotest.check

let fail_mismatch ~label i (only_inc, only_scan) =
  Alcotest.failf "%s: P%d candidate labels diverged (%d incremental-only, %d scan-only)" label
    i
    (Ref_key.Set.cardinal only_inc)
    (Ref_key.Set.cardinal only_scan)

let audit_all ~label maintainers =
  List.iteri
    (fun i c ->
      match Candidates.audit c with
      | None -> ()
      | Some diff -> fail_mismatch ~label i diff)
    maintainers

(* ------------------------------------------------------------------ *)
(* Property: label exactness under arbitrary churn scripts.

   Ops are abstract (tag + integer parameters) and resolved against
   the current cluster state by index, so any generated script is
   applicable and QCheck shrinking stays meaningful.  The property
   audits every process after every op: the incremental candidate set
   must equal the scan-derived one in every intermediate state. *)

type op =
  | Alloc of int  (** proc *)
  | Add_root of int * int  (** proc, object pick *)
  | Remove_root of int * int  (** proc, root pick *)
  | Link of int * int * int  (** proc, holder pick, target pick *)
  | Cut of int * int  (** proc, holder pick: clear its first Some field *)
  | Wire of int * int * int * int  (** holder proc, holder pick, target proc, target pick *)
  | Unwire of int * int  (** holder proc, stub pick *)
  | Collect of int  (** proc *)

let n_procs = 3

let gen_op =
  let open QCheck2.Gen in
  let proc = int_bound (n_procs - 1) in
  let pick = int_bound 31 in
  frequency
    [
      (4, map (fun p -> Alloc p) proc);
      (2, map2 (fun p k -> Add_root (p, k)) proc pick);
      (2, map2 (fun p k -> Remove_root (p, k)) proc pick);
      (4, map3 (fun p a b -> Link (p, a, b)) proc pick pick);
      (3, map2 (fun p a -> Cut (p, a)) proc pick);
      (3, map (fun (p, a, q, k) -> Wire (p, a, q, k)) (quad proc pick proc pick));
      (2, map2 (fun p k -> Unwire (p, k)) proc pick);
      (1, map (fun p -> Collect p) proc);
    ]

let gen_script = QCheck2.Gen.(list_size (int_range 1 60) gen_op)

let nth_mod l k = match l with [] -> None | _ -> List.nth_opt l (k mod List.length l)

let objs (p : Process.t) =
  Heap.fold p.Process.heap ~init:[] ~f:(fun acc o -> o :: acc)
  |> List.sort (fun (a : Heap.obj) b -> Oid.compare a.Heap.oid b.Heap.oid)

let apply_op cluster op =
  let rt = Cluster.rt cluster in
  match op with
  | Alloc p -> ignore (Heap.alloc (Cluster.proc cluster p).Process.heap : Heap.obj)
  | Add_root (p, k) -> (
      let heap = (Cluster.proc cluster p).Process.heap in
      match nth_mod (objs (Cluster.proc cluster p)) k with
      | Some o -> Heap.add_root heap o.Heap.oid
      | None -> ())
  | Remove_root (p, k) -> (
      let heap = (Cluster.proc cluster p).Process.heap in
      match nth_mod (Heap.roots heap |> List.sort Oid.compare) k with
      | Some r -> Heap.remove_root heap r
      | None -> ())
  | Link (p, a, b) -> (
      let proc = Cluster.proc cluster p in
      match (nth_mod (objs proc) a, nth_mod (objs proc) b) with
      | Some holder, Some target when not (Oid.equal holder.Heap.oid target.Heap.oid) ->
          ignore (Heap.add_ref proc.Process.heap holder target.Heap.oid : int)
      | _ -> ())
  | Cut (p, a) -> (
      let proc = Cluster.proc cluster p in
      match nth_mod (objs proc) a with
      | Some holder -> (
          let first_some = ref None in
          Array.iteri
            (fun slot f -> if f <> None && !first_some = None then first_some := Some slot)
            holder.Heap.fields;
          match !first_some with
          | Some slot -> Heap.set_field proc.Process.heap holder slot None
          | None -> ())
      | None -> ())
  | Wire (p, a, q, b) -> (
      if p = q then ()
      else
        let pp = Cluster.proc cluster p and pq = Cluster.proc cluster q in
        match (nth_mod (objs pp) a, nth_mod (objs pq) b) with
        | Some holder, Some target -> Mutator.wire_remote cluster ~holder ~target
        | _ -> ())
  | Unwire (p, k) -> (
      let proc = Cluster.proc cluster p in
      let stubs =
        Stub_table.entries proc.Process.stubs
        |> List.map (fun (e : Stub_table.entry) -> e.Stub_table.target)
        |> List.sort Oid.compare
      in
      match nth_mod stubs k with
      | Some target -> (
          let holder =
            List.find_opt
              (fun (o : Heap.obj) ->
                Array.exists (function Some f -> Oid.equal f target | None -> false) o.Heap.fields)
              (objs proc)
          in
          match holder with
          | Some h -> ignore (Heap.remove_ref proc.Process.heap h target : bool)
          | None -> ())
      | None -> ())
  | Collect p -> ignore (Lgc.run rt (Cluster.proc cluster p) : Lgc.report)

let prop_script_parity script =
  let config = { (Config.quick ~seed:7 ~n_procs ()) with Config.detector = Config.No_detector } in
  let sim = Sim.create ~config () in
  let cluster = Sim.cluster sim in
  let maintainers =
    List.init n_procs (fun i ->
        Candidates.attach ~stats:(Sim.stats sim) (Cluster.proc cluster i))
  in
  (* A root per process so collections don't empty the world at once. *)
  List.iter
    (fun i ->
      let o = Mutator.alloc cluster ~proc:i () in
      Mutator.add_root cluster o)
    [ 0; 1; 2 ];
  let ok = ref true in
  List.iter
    (fun op ->
      apply_op cluster op;
      List.iter (fun c -> if Candidates.audit c <> None then ok := false) maintainers)
    script;
  Sim.teardown sim;
  !ok

let test_property_parity =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"incremental labels == full scan after every churn op" ~count:120
       gen_script prop_script_parity)

(* ------------------------------------------------------------------ *)
(* Sim-level matrix: real workload, real timers, both engines, the
   detector present (dcda) or merely coexisting (backtrack). *)

let run_matrix_cell ~seed ~detector ~engine =
  let procs = 4 in
  let config = Config.quick ~seed ~n_procs:procs () in
  let config =
    { config with Config.detector; engine; candidates = Config.Incremental_candidates }
  in
  let sim = Sim.create ~config () in
  let cluster = Sim.cluster sim in
  let maintainers =
    match detector with
    | Config.Dcda -> List.init procs (fun i -> Detector.candidates (Sim.detector sim i))
    | _ -> List.init procs (fun i -> Candidates.attach ~stats:(Sim.stats sim) (Cluster.proc cluster i))
  in
  let _built =
    Adgc_workload.Topology.random cluster
      ~rng:(Rng.create (seed + 1))
      ~objects:80 ~edges:160 ~remote_prob:0.35 ~root_prob:0.15
  in
  let churn = Adgc_workload.Churn.create ~cluster ~rng:(Rng.create (seed + 2)) () in
  Adgc_workload.Churn.run churn ~steps:150 ~every:31;
  Sim.start sim;
  let label =
    Printf.sprintf "seed=%d %s/%s" seed
      (match detector with Config.Dcda -> "dcda" | _ -> "backtrack")
      (Config.engine_to_string engine)
  in
  for _checkpoint = 1 to 8 do
    Sim.run_for sim 2_500;
    audit_all ~label maintainers
  done;
  Sim.teardown sim;
  (* The maintainer actually did incremental work on this workload —
     the property is vacuous if the region never grows. *)
  check Alcotest.bool (label ^ ": maintainer saw churn") true
    (List.exists (fun c -> Candidates.label_updates c > 0 || Candidates.rebuilds c > 0) maintainers)

let test_matrix () =
  List.iter
    (fun seed ->
      List.iter
        (fun detector ->
          List.iter
            (fun engine -> run_matrix_cell ~seed ~detector ~engine)
            [ Config.Seq; Config.Par ])
        [ Config.Dcda; Config.Backtrack ])
    [ 5; 23; 71 ]

(* ------------------------------------------------------------------ *)
(* Sensitivity guard: the audit is not trivially silent.  Under the
   [drop_label_updates] mutant (the maintainer goes deaf to heap
   events) the very first rooted-then-wired object must produce a
   mismatch — the same divergence the mc gauntlet minimizes. *)

let test_audit_catches_deaf_maintainer () =
  Adgc_util.Mc_mutate.with_mutant "drop_label_updates" (fun () ->
      let config =
        { (Config.quick ~seed:11 ~n_procs:2 ()) with Config.detector = Config.No_detector }
      in
      let sim = Sim.create ~config () in
      let cluster = Sim.cluster sim in
      let c0 = Candidates.attach (Cluster.proc cluster 0) in
      let r = Mutator.alloc cluster ~proc:0 () in
      Mutator.add_root cluster r;
      let a = Mutator.alloc cluster ~proc:0 () in
      Mutator.link cluster ~from_:r ~to_:a;
      let b = Mutator.alloc cluster ~proc:1 () in
      Mutator.add_root cluster b;
      (* scion for [a] lands at P0; a full trace sees [a] rooted via
         [r], but the deaf maintainer's region is still empty. *)
      Mutator.wire_remote cluster ~holder:b ~target:a;
      check Alcotest.bool "deaf maintainer caught" true (Candidates.audit c0 <> None);
      Sim.teardown sim)

(* ------------------------------------------------------------------ *)
(* Satellite 4 pin: which mutation classes move the staleness
   signature [Sim.run_until_clean] keys on.  Reclamation can only
   happen after a class that might shrink the garbage set — object
   removal, reference/root insertion, a stored field — never after
   pure garbage creation (alloc, root/reference removal, field
   clear). *)

let test_reclaim_mutation_classes () =
  let config = { (Config.quick ~seed:3 ~n_procs:1 ()) with Config.detector = Config.No_detector } in
  let sim = Sim.create ~config () in
  let heap = (Cluster.proc (Sim.cluster sim) 0).Process.heap in
  let count () = Heap.reclaim_mutations heap in
  let expect_bump label f =
    let before = count () in
    f ();
    check Alcotest.bool (label ^ " counts as a reclaim mutation") true (count () > before)
  in
  let expect_still label f =
    let before = count () in
    f ();
    check Alcotest.int (label ^ " is reclaim-neutral") before (count ())
  in
  let a = Heap.alloc heap and b = Heap.alloc heap in
  expect_still "alloc" (fun () -> ignore (Heap.alloc heap : Heap.obj));
  expect_bump "add_root" (fun () -> Heap.add_root heap a.Heap.oid);
  expect_bump "add_ref" (fun () -> ignore (Heap.add_ref heap a b.Heap.oid : int));
  expect_bump "set_field Some" (fun () -> Heap.set_field heap b 0 (Some a.Heap.oid));
  expect_still "set_field None" (fun () -> Heap.set_field heap b 0 None);
  expect_still "remove_ref" (fun () -> ignore (Heap.remove_ref heap a b.Heap.oid : bool));
  expect_still "remove_root" (fun () -> Heap.remove_root heap a.Heap.oid);
  expect_bump "remove" (fun () -> Heap.remove heap b.Heap.oid);
  Sim.teardown sim

let suite =
  ( "candidates",
    [
      test_property_parity;
      Alcotest.test_case "matrix: 3 seeds x {dcda,backtrack} x {seq,par}" `Slow test_matrix;
      Alcotest.test_case "audit catches a deaf maintainer" `Quick
        test_audit_catches_deaf_maintainer;
      Alcotest.test_case "reclaim-mutation classes pinned" `Quick test_reclaim_mutation_classes;
    ] )
