(* Hierarchical process groups: the rank-arithmetic pins, the relay
   overlay's flat-vs-grouped reclamation identity (the PR's acceptance
   bar), the aggregation accounting, and the growable CSR adjacency
   underneath the heap tracer. *)

open Adgc_workload
module Sim = Adgc.Sim
module Config = Adgc.Config
module Cluster = Adgc_rt.Cluster
module Runtime = Adgc_rt.Runtime
module Heap = Adgc_rt.Heap
module Group = Adgc_rt.Group
module Oid = Adgc_algebra.Oid
module Stats = Adgc_util.Stats
module Rng = Adgc_util.Rng
module Csr = Adgc_util.Dense.Csr

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Pure rank arithmetic. *)

let test_group_arithmetic () =
  check Alcotest.bool "size 0 is flat" false (Group.enabled ~size:0);
  check Alcotest.bool "size 1 is flat" false (Group.enabled ~size:1);
  check Alcotest.bool "size 2 is grouped" true (Group.enabled ~size:2);
  check Alcotest.int "rank 7 in groups of 3" 2 (Group.of_rank ~size:3 7);
  check Alcotest.bool "0 and 2 share a group of 3" true (Group.same ~size:3 0 2);
  check Alcotest.bool "2 and 3 do not" false (Group.same ~size:3 2 3);
  check Alcotest.int "ceil(10/3) groups" 4 (Group.count ~size:3 ~n:10);
  check (Alcotest.list Alcotest.int) "full group" [ 3; 4; 5 ] (Group.members ~size:3 ~n:10 1);
  check (Alcotest.list Alcotest.int) "ragged tail" [ 9 ] (Group.members ~size:3 ~n:10 3);
  check (Alcotest.list Alcotest.int) "out of range" [] (Group.members ~size:3 ~n:10 4);
  (* Flat degenerate: every rank is its own group, and with no
     boundaries to cross [same] is vacuously true. *)
  check Alcotest.int "flat group = rank" 7 (Group.of_rank ~size:0 7);
  check Alcotest.bool "flat has no boundaries" true (Group.same ~size:0 1 2)

let test_group_proxy_failover () =
  let alive dead r = not (List.mem r dead) in
  check (Alcotest.option Alcotest.int) "healthy proxy is the lowest rank" (Some 3)
    (Group.proxy ~size:3 ~n:10 ~alive:(alive []) 1);
  check (Alcotest.option Alcotest.int) "crashed proxy fails over" (Some 4)
    (Group.proxy ~size:3 ~n:10 ~alive:(alive [ 3 ]) 1);
  check (Alcotest.option Alcotest.int) "whole group down" None
    (Group.proxy ~size:3 ~n:10 ~alive:(alive [ 3; 4; 5 ]) 1);
  check (Alcotest.option Alcotest.int) "ragged tail proxy" (Some 9)
    (Group.proxy ~size:3 ~n:10 ~alive:(alive []) 3)

(* ------------------------------------------------------------------ *)
(* Flat-vs-grouped reclamation identity.  The relay overlay reroutes
   and batches DGC control traffic but must not change what gets
   reclaimed: the same workload run flat and grouped ends with
   byte-identical surviving object sets (timing differs — identity is
   on the final sets after both runs converge, exactly like the
   engine's seq-vs-par bar). *)

let surviving cluster =
  let rt = Cluster.rt cluster in
  let acc = ref Oid.Set.empty in
  Array.iter
    (fun (p : Adgc_rt.Process.t) ->
      Heap.fold p.Adgc_rt.Process.heap ~init:() ~f:(fun () (o : Heap.obj) ->
          acc := Oid.Set.add o.Heap.oid !acc))
    rt.Adgc_rt.Runtime.procs;
  !acc

let run_leg ~seed ~detector ~engine ~groups =
  let n_procs = 8 in
  let config = Config.quick ~seed ~n_procs () in
  let config = { config with Config.detector; engine } in
  let config = Config.with_groups config groups in
  let sim = Sim.create ~config () in
  let cluster = Sim.cluster sim in
  let _built =
    Topology.random cluster
      ~rng:(Rng.create (seed + 1))
      ~objects:120 ~edges:240 ~remote_prob:0.35 ~root_prob:0.15
  in
  Sim.start sim;
  let clean = Sim.run_until_clean ~max_time:900_000 sim in
  let s = surviving cluster in
  Sim.teardown sim;
  (clean, s)

let identity_cell ~seed ~detector ~engine () =
  (* Group size 3 over 8 ranks: two full groups and a ragged tail. *)
  let flat_clean, flat = run_leg ~seed ~detector ~engine ~groups:0 in
  let grouped_clean, grouped = run_leg ~seed ~detector ~engine ~groups:3 in
  check Alcotest.bool "flat run converged" true flat_clean;
  check Alcotest.bool "grouped run converged" true grouped_clean;
  check Alcotest.int "same number of survivors" (Oid.Set.cardinal flat)
    (Oid.Set.cardinal grouped);
  check Alcotest.bool "identical surviving sets" true (Oid.Set.equal flat grouped)

let identity_cases =
  List.concat_map
    (fun seed ->
      List.concat_map
        (fun (dname, detector) ->
          List.map
            (fun (ename, engine) ->
              Alcotest.test_case
                (Printf.sprintf "flat == grouped: %s/%s seed %d" dname ename seed)
                `Slow
                (identity_cell ~seed ~detector ~engine))
            [ ("seq", Config.Seq); ("par", Config.Par) ])
        [ ("dcda", Config.Dcda); ("backtrack", Config.Backtrack) ])
    [ 5; 19; 33 ]

(* ------------------------------------------------------------------ *)
(* Aggregation accounting.  [group_size] alone turns on the boundary
   counters (so a flat-routing run with the same topology is an honest
   baseline); [group_relay] additionally funnels control traffic
   through the proxies.  The grouped run must put strictly fewer
   envelopes on cross-group links than the flat baseline. *)

let run_accounting ~relay () =
  let n_procs = 16 in
  let config = Config.quick ~seed:7 ~n_procs () in
  let config =
    {
      config with
      Config.runtime =
        { config.Config.runtime with Runtime.group_size = 4; group_relay = relay };
    }
  in
  let sim = Sim.create ~config () in
  let cluster = Sim.cluster sim in
  let _built = Topology.ring ~objs_per_proc:2 cluster ~procs:(List.init n_procs Fun.id) in
  Sim.start sim;
  let clean = Sim.run_until_clean ~max_time:900_000 sim in
  check Alcotest.bool "run converged" true clean;
  let stats = Stats.counters (Sim.stats sim) in
  Sim.teardown sim;
  fun key -> try List.assoc key stats with Not_found -> 0

let test_aggregation_accounting () =
  let flat = run_accounting ~relay:false () in
  let grouped = run_accounting ~relay:true () in
  check Alcotest.int "flat routing sends no relays" 0 (flat "group.relays");
  Alcotest.(check bool) "flat baseline counts boundary traffic" true (flat "net.msg.xgroup.dgc" > 0);
  Alcotest.(check bool) "grouped run relays" true (grouped "group.relays" > 0);
  Alcotest.(check bool)
    "relays aggregate at least one entry each" true
    (grouped "group.relay_entries" >= grouped "group.relays");
  Alcotest.(check bool)
    "relay envelopes were delivered" true
    (grouped "net.msg.delivered.group_relay" > 0);
  Alcotest.(check bool)
    (Printf.sprintf "grouped cuts cross-group DGC traffic (flat %d vs grouped %d)"
       (flat "net.msg.xgroup.dgc") (grouped "net.msg.xgroup.dgc"))
    true
    (grouped "net.msg.xgroup.dgc" < flat "net.msg.xgroup.dgc")

(* ------------------------------------------------------------------ *)
(* The CSR adjacency: multiset semantics against a reference model
   under random add/remove churn, plus block recycling. *)

let csr_matches_model =
  let gen =
    QCheck2.Gen.(list_size (int_bound 400) (triple bool (int_bound 12) (int_bound 8)))
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"csr matches a reference multiset" ~count:200 gen (fun ops ->
         let t = Csr.create ~capacity:4 () in
         let model = Array.make 13 [] in
         List.iter
           (fun (add, row, v) ->
             if add then begin
               Csr.add t row v;
               model.(row) <- v :: model.(row)
             end
             else begin
               let present = List.mem v model.(row) in
               let removed = Csr.remove t row v in
               if present <> removed then QCheck2.Test.fail_report "remove disagrees";
               if present then begin
                 let rec drop_one = function
                   | [] -> []
                   | x :: rest -> if x = v then rest else x :: drop_one rest
                 in
                 model.(row) <- drop_one model.(row)
               end
             end)
           ops;
         Array.iteri
           (fun row expected ->
             if Csr.length t row <> List.length expected then
               QCheck2.Test.fail_report "length disagrees";
             let got = ref [] in
             Csr.iter t row (fun v -> got := v :: !got);
             if List.sort compare !got <> List.sort compare expected then
               QCheck2.Test.fail_report "contents disagree")
           model;
         true))

let test_csr_recycles_blocks () =
  let t = Csr.create ~capacity:8 () in
  for v = 0 to 99 do
    Csr.add t 0 v
  done;
  let words_full = Csr.words t in
  check Alcotest.int "nothing parked while in use" 0 (Csr.free_blocks t);
  Csr.clear_row t 0;
  Alcotest.(check bool) "cleared blocks are parked" true (Csr.free_blocks t > 0);
  check Alcotest.int "row is empty" 0 (Csr.length t 0);
  (* Refill a different row: the parked blocks are reused, so the
     arena does not grow. *)
  for v = 0 to 99 do
    Csr.add t 1 v
  done;
  check Alcotest.int "recycling kept the arena flat" words_full (Csr.words t);
  check Alcotest.int "refilled row complete" 100 (Csr.length t 1);
  Csr.reset t;
  check Alcotest.int "reset empties every row" 0 (Csr.length t 1)

let suite =
  ( "group",
    [
      Alcotest.test_case "rank arithmetic" `Quick test_group_arithmetic;
      Alcotest.test_case "proxy failover is pure arithmetic" `Quick test_group_proxy_failover;
      Alcotest.test_case "aggregation accounting" `Slow test_aggregation_accounting;
      csr_matches_model;
      Alcotest.test_case "csr recycles cleared blocks" `Quick test_csr_recycles_blocks;
    ]
    @ identity_cases )
