(* Tests for the observability layer: span ring, detection lineage
   and the deterministic exporters. *)

module Span = Adgc_obs.Span
module Lineage = Adgc_obs.Lineage
module Export = Adgc_obs.Export
module Json = Adgc_util.Json
module Stats = Adgc_util.Stats
open Adgc_algebra

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Span ring *)

let test_span_disabled_is_none () =
  let t = Span.create () in
  let id = Span.begin_span t ~time:0 ~kind:Span.Run "r" in
  check Alcotest.int "none" Span.none id;
  Span.end_span t ~time:5 id;
  ignore (Span.event t ~time:1 ~kind:Span.Snapshot "s" : int);
  check Alcotest.int "nothing recorded" 0 (List.length (Span.spans t))

let test_span_begin_end () =
  let t = Span.create () in
  Span.set_enabled t true;
  let run = Span.begin_span t ~time:0 ~kind:Span.Run "run" in
  let child = Span.begin_span t ~time:3 ~parent:run ~proc:2 ~kind:Span.Lgc_sweep "lgc" in
  Span.end_span t ~time:7 ~args:[ ("swept", "4") ] child;
  Span.end_span t ~time:9 run;
  match Span.spans t with
  | [ r; c ] ->
      check Alcotest.string "run name" "run" r.Span.name;
      check Alcotest.bool "run has no parent" true (r.Span.parent = None);
      check Alcotest.bool "run closed" true (r.Span.end_time = Some 9);
      check Alcotest.bool "child parent" true (c.Span.parent = Some r.Span.id);
      check Alcotest.int "child proc" 2 c.Span.proc;
      check Alcotest.int "child start" 3 c.Span.start_time;
      check Alcotest.bool "child end" true (c.Span.end_time = Some 7);
      check Alcotest.bool "child args" true (List.mem_assoc "swept" c.Span.args)
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let test_span_end_unknown_ignored () =
  let t = Span.create () in
  Span.set_enabled t true;
  Span.end_span t ~time:1 Span.none;
  Span.end_span t ~time:1 999;
  let id = Span.begin_span t ~time:0 ~kind:Span.Run "r" in
  Span.end_span t ~time:1 id;
  Span.end_span t ~time:2 ~args:[ ("late", "x") ] id;
  match Span.spans t with
  | [ s ] ->
      check Alcotest.bool "first close wins" true (s.Span.end_time = Some 1);
      check Alcotest.bool "no late args" false (List.mem_assoc "late" s.Span.args)
  | _ -> Alcotest.fail "expected one span"

let test_span_eviction () =
  let t = Span.create ~capacity:4 () in
  Span.set_enabled t true;
  for i = 1 to 10 do
    ignore (Span.event t ~time:i ~kind:Span.Snapshot (string_of_int i) : int)
  done;
  let names = List.map (fun (s : Span.span) -> s.Span.name) (Span.spans t) in
  check (Alcotest.list Alcotest.string) "keeps newest" [ "7"; "8"; "9"; "10" ] names;
  check Alcotest.int "dropped" 6 (Span.dropped t);
  Span.clear t;
  check Alcotest.int "cleared" 0 (List.length (Span.spans t));
  check Alcotest.int "dropped reset" 0 (Span.dropped t)

let test_span_event_zero_duration () =
  let t = Span.create () in
  Span.set_enabled t true;
  let id = Span.event t ~time:5 ~args:[ ("k", "v") ] ~kind:(Span.Custom "probe") "e" in
  match Span.spans t with
  | [ s ] ->
      check Alcotest.int "id" s.Span.id id;
      check Alcotest.int "start" 5 s.Span.start_time;
      check Alcotest.bool "end" true (s.Span.end_time = Some 5);
      check Alcotest.string "kind" "probe" (Span.kind_name s.Span.kind)
  | _ -> Alcotest.fail "expected one span"

(* ------------------------------------------------------------------ *)
(* Lineage *)

let det ~initiator ~seq = Detection_id.make ~initiator:(Proc_id.of_int initiator) ~seq

let key ~src ~owner ~serial =
  Ref_key.make ~src:(Proc_id.of_int src) ~target:(Oid.make ~owner:(Proc_id.of_int owner) ~serial)

let test_lineage_disabled () =
  let t = Lineage.create () in
  let id = det ~initiator:0 ~seq:1 in
  Lineage.record t id (Lineage.Guard { at = Proc_id.of_int 0; time = 1; reason = "x" });
  check Alcotest.int "no hops" 0 (List.length (Lineage.hops t id));
  check Alcotest.int "no detections" 0 (List.length (Lineage.detections t))

let test_lineage_chain () =
  let t = Lineage.create () in
  Lineage.set_enabled t true;
  let id = det ~initiator:0 ~seq:1 in
  let p n = Proc_id.of_int n in
  Lineage.record t id (Lineage.Initiated { at = p 0; time = 1; candidate = key ~src:2 ~owner:0 ~serial:0 });
  Lineage.record t id (Lineage.Sent { at = p 0; dst = p 1; time = 1; sources = 1; targets = 1; hops = 1 });
  Lineage.record t id (Lineage.Received { at = p 1; time = 4; sources = 1; targets = 1; hops = 1 });
  Lineage.record t id (Lineage.Concluded { at = p 1; time = 4; proven = true; hops = 1; refs = 2 });
  (* A different detection does not leak in. *)
  Lineage.record t (det ~initiator:3 ~seq:9)
    (Lineage.Guard { at = p 3; time = 2; reason = "ttl" });
  let hops = Lineage.hops t id in
  check Alcotest.int "4 hops" 4 (List.length hops);
  check Alcotest.bool "chronological" true
    (List.for_all2
       (fun a b -> Lineage.hop_time a <= Lineage.hop_time b)
       (List.filteri (fun i _ -> i < 3) hops)
       (List.tl hops));
  (match (List.hd hops, List.nth hops 3) with
  | Lineage.Initiated _, Lineage.Concluded { proven = true; _ } -> ()
  | _ -> Alcotest.fail "chain must run Initiated -> ... -> Concluded");
  check Alcotest.int "two detections" 2 (List.length (Lineage.detections t));
  (* pp_chain renders every hop. *)
  let rendered = Format.asprintf "%a" Lineage.pp_chain (t, id) in
  List.iter
    (fun needle ->
      check Alcotest.bool needle true (Astring_contains.contains rendered needle))
    [ "initiated"; "->"; "received"; "concluded" ]

let test_lineage_span_association () =
  let t = Lineage.create () in
  Lineage.set_enabled t true;
  let id = det ~initiator:2 ~seq:7 in
  check Alcotest.bool "unknown" true (Lineage.span t id = None);
  Lineage.set_span t id 42;
  check Alcotest.bool "recorded" true (Lineage.span t id = Some 42)

let test_lineage_hop_cap () =
  let t = Lineage.create ~max_hops:8 () in
  Lineage.set_enabled t true;
  let id = det ~initiator:0 ~seq:0 in
  for i = 1 to 50 do
    Lineage.record t id (Lineage.Guard { at = Proc_id.of_int 0; time = i; reason = "g" })
  done;
  check Alcotest.bool "bounded" true (List.length (Lineage.hops t id) <= 8)

(* ------------------------------------------------------------------ *)
(* Exporters *)

let sample_spans () =
  let t = Span.create () in
  Span.set_enabled t true;
  let run = Span.begin_span t ~time:0 ~kind:Span.Run "run" in
  let d = Span.begin_span t ~time:2 ~parent:run ~kind:Span.Detection "det T1@P0" in
  ignore (Span.event t ~time:3 ~parent:d ~proc:1 ~args:[ ("from", "P0") ] ~kind:Span.Cdm_hop "cdm" : int);
  Span.end_span t ~time:5 ~args:[ ("proven", "true") ] d;
  Span.end_span t ~time:9 run;
  t

(* The structural contract a Chrome trace_event document must satisfy
   to load in about:tracing / Perfetto. *)
let chrome_schema =
  Json.Obj
    [
      ("type", Json.Str "object");
      ("required", Json.Arr [ Json.Str "traceEvents" ]);
      ( "properties",
        Json.Obj
          [
            ( "traceEvents",
              Json.Obj
                [
                  ("type", Json.Str "array");
                  ( "items",
                    Json.Obj
                      [
                        ("type", Json.Str "object");
                        ( "required",
                          Json.Arr
                            [
                              Json.Str "name"; Json.Str "cat"; Json.Str "ph"; Json.Str "ts";
                              Json.Str "dur"; Json.Str "pid"; Json.Str "tid";
                            ] );
                        ( "properties",
                          Json.Obj
                            [
                              ("name", Json.Obj [ ("type", Json.Str "string") ]);
                              ("cat", Json.Obj [ ("type", Json.Str "string") ]);
                              ("ph", Json.Obj [ ("enum", Json.Arr [ Json.Str "X" ]) ]);
                              ("ts", Json.Obj [ ("type", Json.Str "number") ]);
                              ("dur", Json.Obj [ ("type", Json.Str "number") ]);
                              ("pid", Json.Obj [ ("type", Json.Str "integer") ]);
                              ("tid", Json.Obj [ ("type", Json.Str "integer") ]);
                            ] );
                      ] );
                ] );
          ] );
    ]

let test_chrome_trace_structure () =
  let t = sample_spans () in
  let doc = Export.chrome_trace t in
  (* Self-parse: the serialized document must be valid JSON. *)
  (match Json.of_string (Json.to_string doc) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "chrome trace is not valid JSON: %s" e);
  (match Json.validate ~schema:chrome_schema doc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "chrome trace structure: %s" e);
  match doc with
  | Json.Obj fields -> (
      match List.assoc "traceEvents" fields with
      | Json.Arr events -> check Alcotest.int "all spans exported" 3 (List.length events)
      | _ -> Alcotest.fail "traceEvents not an array")
  | _ -> Alcotest.fail "not an object"

let test_jsonl_and_digest () =
  let t = sample_spans () in
  let lines = String.split_on_char '\n' (String.trim (Export.jsonl t)) in
  check Alcotest.int "one line per span" 3 (List.length lines);
  List.iter
    (fun line ->
      match Json.of_string line with
      | Ok (Json.Obj _) -> ()
      | Ok _ -> Alcotest.fail "line is not an object"
      | Error e -> Alcotest.failf "bad jsonl line %S: %s" line e)
    lines;
  (* Digest: stable across identical timelines, sensitive to change. *)
  let d1 = Export.span_digest t in
  let d2 = Export.span_digest (sample_spans ()) in
  check Alcotest.string "deterministic" d1 d2;
  ignore (Span.event t ~time:11 ~kind:Span.Snapshot "extra" : int);
  check Alcotest.bool "sensitive" false (String.equal d1 (Export.span_digest t))

let test_metrics_document () =
  let stats = Stats.create () in
  Stats.incr stats "c";
  Stats.observe stats "h" 2.0;
  let doc = Export.metrics_document ~meta:[ ("seed", Json.Int 7) ] stats in
  match doc with
  | Json.Obj fields ->
      check Alcotest.bool "schema_version" true
        (List.assoc "schema_version" fields = Json.Int Export.schema_version);
      (match List.assoc "meta" fields with
      | Json.Obj [ ("seed", Json.Int 7) ] -> ()
      | _ -> Alcotest.fail "meta not preserved");
      (match List.assoc "stats" fields with
      | Json.Obj stats_fields ->
          check Alcotest.bool "counters present" true (List.mem_assoc "counters" stats_fields);
          check Alcotest.bool "histograms present" true (List.mem_assoc "histograms" stats_fields)
      | _ -> Alcotest.fail "stats not an object")
  | _ -> Alcotest.fail "not an object"

let suite =
  ( "obs",
    [
      Alcotest.test_case "span: disabled costs nothing" `Quick test_span_disabled_is_none;
      Alcotest.test_case "span: begin/end with parent and args" `Quick test_span_begin_end;
      Alcotest.test_case "span: unknown/closed ids ignored" `Quick test_span_end_unknown_ignored;
      Alcotest.test_case "span: bounded ring eviction" `Quick test_span_eviction;
      Alcotest.test_case "span: zero-duration event" `Quick test_span_event_zero_duration;
      Alcotest.test_case "lineage: disabled records nothing" `Quick test_lineage_disabled;
      Alcotest.test_case "lineage: full chain per detection" `Quick test_lineage_chain;
      Alcotest.test_case "lineage: span association" `Quick test_lineage_span_association;
      Alcotest.test_case "lineage: hop cap" `Quick test_lineage_hop_cap;
      Alcotest.test_case "export: chrome trace structure" `Quick test_chrome_trace_structure;
      Alcotest.test_case "export: jsonl and digest" `Quick test_jsonl_and_digest;
      Alcotest.test_case "export: metrics document" `Quick test_metrics_document;
    ] )
