(* The bench harness itself, in smoke mode: every perf section runs,
   the results document validates against the checked-in schema, a
   same-seed re-run reproduces every non-timing field, and the
   `adgc_sim perf` CLI gates the way the acceptance contract says
   (0 on a clean baseline, 1 on a synthetic regression).

   Paper sections (table1, serialization, ...) are print-only with no
   smoke sizing and feed nothing into the gated document, so they are
   exercised by `dune exec bench/main.exe`, not here. *)

module Bench_common = Adgc_bench.Bench_common
module Bench_sections = Adgc_bench.Bench_sections
module Results = Adgc_perf.Results
module Sample = Adgc_perf.Sample
module Compare = Adgc_perf.Compare
module Json = Adgc_util.Json

let check = Alcotest.check

let perf_section_names = List.map fst Bench_sections.perf

let run_smoke =
  (* One shared pair of runs: the sections take ~1s but there is no
     reason to pay it per test case. *)
  let cache = ref None in
  fun () ->
    match !cache with
    | Some pair -> pair
    | None ->
        Bench_common.force_smoke true;
        let doc1 = Bench_sections.run ~names:perf_section_names () in
        let doc2 = Bench_sections.run ~names:perf_section_names () in
        cache := Some (doc1, doc2);
        (doc1, doc2)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let repo_file name =
  (* cwd is _build/default/test under `dune runtest`, the repo root
     under `dune exec test/test_main.exe`. *)
  let candidates = [ Filename.concat "../bench" name; Filename.concat "bench" name ] in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.failf "bench/%s not found from %s" name (Sys.getcwd ())

let results_schema () =
  match Json.of_string (read_file (repo_file "results_schema.json")) with
  | Ok schema -> schema
  | Error e -> Alcotest.failf "results_schema.json is not valid JSON: %s" e

let test_sections_cover_the_contract () =
  let doc, _ = run_smoke () in
  let sections = List.map fst doc.Results.sections in
  List.iter
    (fun s -> check Alcotest.bool (s ^ " section present") true (List.mem s sections))
    [ "tracer"; "telemetry"; "engine"; "net"; "detection" ];
  check Alcotest.bool "document is marked smoke" true doc.Results.smoke;
  (* The acceptance series: p99 end-to-end detection latency, gated
     by an SLO ceiling, deterministic in simulated ticks. *)
  match Results.find doc "detection.ring4.dcda.detection_latency.p99" with
  | None -> Alcotest.fail "detection latency p99 series missing"
  | Some s ->
      check Alcotest.bool "p99 latency carries an SLO" true (s.Sample.slo <> None);
      check Alcotest.bool "p99 latency is deterministic-class" true
        (s.Sample.klass = Sample.Deterministic);
      check Alcotest.string "p99 latency is in ticks" "ticks" s.Sample.unit_

let test_document_validates () =
  let doc, _ = run_smoke () in
  let schema = results_schema () in
  (match Json.validate ~schema (Results.to_json doc) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "results document rejected by schema: %s" e);
  (* ... and through the serialized form a consumer reads back. *)
  match Json.of_string (Results.to_string doc) with
  | Error e -> Alcotest.failf "results document does not reparse: %s" e
  | Ok reparsed -> (
      match Json.validate ~schema reparsed with
      | Ok () -> ()
      | Error e -> Alcotest.failf "reparsed results document rejected: %s" e)

let test_checked_in_baseline_validates () =
  let raw = read_file (repo_file "baseline.json") in
  (match Json.of_string raw with
  | Error e -> Alcotest.failf "baseline.json is not valid JSON: %s" e
  | Ok j -> (
      match Json.validate ~schema:(results_schema ()) j with
      | Ok () -> ()
      | Error e -> Alcotest.failf "baseline.json rejected by schema: %s" e));
  match Results.of_string raw with
  | Error e -> Alcotest.failf "baseline.json does not load: %s" e
  | Ok baseline ->
      (* The checked-in baseline must gate itself clean — otherwise a
         fresh checkout fails CI before anyone changes anything. *)
      let findings = Compare.compare_docs ~baseline ~current:baseline () in
      check Alcotest.int "baseline self-check is clean" 0 (Compare.exit_code findings)

let test_rerun_is_deterministic () =
  let doc1, doc2 = run_smoke () in
  check Alcotest.string "same-seed re-run reproduces every non-timing field"
    (Results.fingerprint doc1) (Results.fingerprint doc2)

(* --- the CLI gate, end to end ------------------------------------ *)

let adgc_sim_exe () =
  match Bench_common.adgc_sim_exe () with
  | Some exe -> exe
  | None -> Alcotest.fail "adgc_sim.exe not built; set ADGC_SIM_EXE"

let run_cli args =
  let cmd =
    String.concat " " (List.map Filename.quote (adgc_sim_exe () :: args)) ^ " >/dev/null 2>&1"
  in
  match Unix.system cmd with
  | Unix.WEXITED code -> code
  | Unix.WSIGNALED _ | Unix.WSTOPPED _ -> Alcotest.failf "%s died on a signal" cmd

let with_temp f =
  let path = Filename.temp_file "adgc_perf" ".json" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path) (fun () -> f path)

let regress doc =
  (* Double every deterministic median: far outside the unrelaxable
     band, so the gate must trip however slow the host is. *)
  {
    doc with
    Results.sections =
      List.map
        (fun (name, samples) ->
          ( name,
            List.map
              (fun (s : Sample.t) ->
                if s.Sample.klass = Sample.Deterministic && Float.is_finite s.Sample.median
                   && s.Sample.median > 0.0
                then
                  {
                    s with
                    Sample.median = (s.Sample.median *. 2.0) +. 10.0;
                    mean = (s.Sample.mean *. 2.0) +. 10.0;
                    min = (s.Sample.min *. 2.0) +. 10.0;
                    p99 = (s.Sample.p99 *. 2.0) +. 10.0;
                  }
                else s)
              samples ))
        doc.Results.sections;
  }

let test_cli_gates () =
  let doc, _ = run_smoke () in
  with_temp (fun baseline ->
      with_temp (fun current ->
          Results.save current doc;
          check Alcotest.int "promote exits 0" 0
            (run_cli [ "perf"; "promote"; "--baseline"; baseline; "--current"; current ]);
          check Alcotest.int "check against the promoted baseline exits 0" 0
            (run_cli [ "perf"; "check"; "--baseline"; baseline; "--current"; current ]);
          check Alcotest.int "report exits 0" 0
            (run_cli [ "perf"; "report"; "--baseline"; baseline; "--current"; current ]);
          Results.save current (regress doc);
          check Alcotest.int "synthetic regression exits 1" 1
            (run_cli [ "perf"; "check"; "--baseline"; baseline; "--current"; current ]);
          check Alcotest.int "relax does not forgive deterministic regressions" 1
            (run_cli
               [
                 "perf"; "check"; "--baseline"; baseline; "--current"; current; "--relax"; "100";
               ]);
          (* No current results: the baseline self-checks green. *)
          Sys.remove current;
          check Alcotest.int "missing current self-checks the baseline" 0
            (run_cli [ "perf"; "check"; "--baseline"; baseline; "--current"; current ])))

let test_cli_io_errors () =
  check Alcotest.int "missing baseline exits 2" 2
    (run_cli [ "perf"; "check"; "--baseline"; "/nonexistent/baseline.json" ]);
  check Alcotest.int "promote without results exits 2" 2
    (run_cli [ "perf"; "promote"; "--current"; "/nonexistent/latest.json" ])

let suite =
  ( "bench-smoke",
    [
      Alcotest.test_case "every perf section reports" `Slow test_sections_cover_the_contract;
      Alcotest.test_case "results document validates" `Slow test_document_validates;
      Alcotest.test_case "checked-in baseline validates" `Quick
        test_checked_in_baseline_validates;
      Alcotest.test_case "same-seed re-run is deterministic" `Slow test_rerun_is_deterministic;
      Alcotest.test_case "perf CLI gates end to end" `Slow test_cli_gates;
      Alcotest.test_case "perf CLI distinguishes IO errors" `Quick test_cli_io_errors;
    ] )
