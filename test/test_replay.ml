(* Deterministic replay: the same seed and scenario must reproduce the
   exact same run — byte-identical metrics JSON and an identical span
   digest — across detectors and fault profiles.  This pins down both
   the simulator's determinism and the exporters' stability (sorted
   keys, canonical float rendering, no wall-clock leakage). *)

module Sim = Adgc.Sim
module Config = Adgc.Config
module Faults = Adgc_rt.Faults
module Export = Adgc_obs.Export
module Json = Adgc_util.Json
open Adgc_workload

let check = Alcotest.check

let run_once ?(candidates = Config.Scan_candidates) ~seed ~detector ~faulty () =
  let n_procs = 6 in
  let config = Config.quick ~seed ~n_procs () in
  let faults =
    if faulty then Faults.plan_of_profile ~n_procs Faults.Loss_burst else Faults.none
  in
  let config = { config with Config.detector; candidates; faults; telemetry = true } in
  let sim = Sim.create ~config () in
  let cluster = Sim.cluster sim in
  let _garbage = Topology.ring cluster ~procs:[ 0; 1; 2 ] in
  let _live = Topology.rooted_ring cluster ~procs:[ 3; 4 ] in
  let churn = Churn.create ~cluster ~rng:(Adgc_util.Rng.create ((seed * 7) + 1)) () in
  Churn.run churn ~steps:200 ~every:23;
  Sim.start sim;
  Sim.run_for sim 20_000;
  Sim.teardown sim;
  let metrics = Json.to_string (Export.metrics_document (Sim.stats sim)) in
  let digest = Export.span_digest (Sim.obs sim) in
  (metrics, digest)

let detector_name = function
  | Config.Dcda -> "dcda"
  | Config.Backtrack -> "backtrack"
  | Config.Hughes_gc | Config.No_detector -> "other"

let test_replay_identical () =
  List.iter
    (fun detector ->
      List.iter
        (fun faulty ->
          List.iter
            (fun seed ->
              let label =
                Printf.sprintf "%s/%s/seed=%d" (detector_name detector)
                  (if faulty then "bursty" else "no-faults")
                  seed
              in
              let m1, d1 = run_once ~seed ~detector ~faulty () in
              let m2, d2 = run_once ~seed ~detector ~faulty () in
              check Alcotest.string (label ^ ": metrics JSON") m1 m2;
              check Alcotest.string (label ^ ": span digest") d1 d2)
            [ 3; 17; 42 ])
        [ false; true ])
    [ Config.Dcda; Config.Backtrack ]

let test_seeds_actually_differ () =
  (* Guard against a trivially-constant export: different seeds must
     produce different runs. *)
  let m1, _ = run_once ~seed:3 ~detector:Config.Dcda ~faulty:false () in
  let m2, _ = run_once ~seed:17 ~detector:Config.Dcda ~faulty:false () in
  check Alcotest.bool "seeds produce distinct metrics" false (String.equal m1 m2)

(* The tentpole's byte-identity acceptance: swapping the DCDA's
   candidate source from the full scan to the incremental maintainer
   must not change a single byte of the run — same metrics document
   (the candidate maintainer and its audit duty run in both modes, so
   even the dcda.candidates.* counters agree) and the same span
   digest, across the deterministic-replay seeds, clean and faulty. *)
let test_incremental_byte_identical () =
  List.iter
    (fun faulty ->
      List.iter
        (fun seed ->
          let label =
            Printf.sprintf "%s/seed=%d" (if faulty then "bursty" else "no-faults") seed
          in
          let m_scan, d_scan =
            run_once ~candidates:Config.Scan_candidates ~seed ~detector:Config.Dcda ~faulty ()
          in
          let m_inc, d_inc =
            run_once ~candidates:Config.Incremental_candidates ~seed ~detector:Config.Dcda
              ~faulty ()
          in
          check Alcotest.string (label ^ ": metrics JSON scan==incremental") m_scan m_inc;
          check Alcotest.string (label ^ ": span digest scan==incremental") d_scan d_inc)
        [ 3; 17; 42 ])
    [ false; true ]

let suite =
  ( "replay",
    [
      Alcotest.test_case "same seed, same bytes (12 scenarios)" `Quick test_replay_identical;
      Alcotest.test_case "different seeds, different runs" `Quick test_seeds_actually_differ;
      Alcotest.test_case "incremental candidates are byte-identical (6 scenarios)" `Quick
        test_incremental_byte_identical;
    ] )
