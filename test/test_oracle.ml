(* Oracle windowed-check boundaries: the sweep fires exactly on the
   window edge (not a tick earlier), teardown mid-window still runs
   the final sweep exactly once, and liveness checks converge on the
   final permitted tick (the emptiness test precedes the bound). *)

open Adgc_algebra
open Adgc_rt
module Oracle = Adgc_check.Oracle
module Invariant = Adgc_check.Invariant

let check = Alcotest.check

(* Forge a scion whose target was never allocated: a persistent
   [Scion_dangles] the instantaneous sweep reports every window. *)
let forge_dangling_scion cluster =
  let p0 = Cluster.proc cluster 0 in
  let ghost = Oid.make ~owner:(Cluster.proc_id cluster 0) ~serial:777 in
  let key = Ref_key.make ~src:(Cluster.proc_id cluster 1) ~target:ghost in
  ignore (Scion_table.ensure p0.Process.scions ~now:(Cluster.now cluster) key : Scion_table.entry)

let test_violation_at_window_edge () =
  let cluster = Cluster.create ~n:2 () in
  let oracle = Oracle.install ~window:100 cluster in
  forge_dangling_scion cluster;
  (* One tick short of the window: the violation exists but the sweep
     has not run. *)
  Cluster.run_for cluster 99;
  check Alcotest.bool "silent one tick before the edge" true (Oracle.safe oracle);
  Cluster.run_for cluster 1;
  (match Oracle.events oracle with
  | [ e ] ->
      check Alcotest.int "recorded exactly on the edge" 100 e.Oracle.time;
      check Alcotest.string "kind" "scion_dangles" (Invariant.kind e.Oracle.violation)
  | es -> Alcotest.failf "expected one event at the edge, got %d" (List.length es));
  (* A persistent violation is re-reported once per window, no more. *)
  Cluster.run_for cluster 100;
  check Alcotest.int "re-reported on the next edge" 2 (List.length (Oracle.events oracle));
  check Alcotest.bool "first report captured" true (Oracle.first_report oracle <> None);
  Cluster.teardown cluster

let test_teardown_mid_window () =
  let cluster = Cluster.create ~n:2 () in
  let oracle = Oracle.install ~window:1_000 cluster in
  forge_dangling_scion cluster;
  (* Tear down mid-window: the recurring sweep never fired, so only
     [stop]'s final sweep can catch the violation. *)
  Cluster.run_for cluster 300;
  check Alcotest.bool "sweep has not fired yet" true (Oracle.safe oracle);
  Cluster.teardown cluster;
  check Alcotest.bool "stopped by teardown" true (Oracle.stopped oracle);
  (match Oracle.events oracle with
  | [ e ] -> check Alcotest.int "final sweep at teardown time" 300 e.Oracle.time
  | es -> Alcotest.failf "expected the one final-sweep event, got %d" (List.length es));
  (* Idempotent: neither an explicit [stop] nor more scheduler time
     runs a second final sweep. *)
  Oracle.stop oracle;
  Cluster.run_for cluster 5_000;
  check Alcotest.int "final sweep ran exactly once" 1 (List.length (Oracle.events oracle))

(* Liveness from quiescence.  [run] is under test control: the lone
   garbage object disappears during the second step, so convergence
   lands exactly on [max_ticks]. *)
let quiescent_garbage () =
  let cluster = Cluster.create ~n:1 () in
  let oracle = Oracle.install cluster in
  let p0 = Cluster.proc cluster 0 in
  let obj = Heap.alloc p0.Process.heap in
  check Alcotest.bool "unrooted object is ground-truth garbage" true
    (Oid.Set.mem obj.Heap.oid (Cluster.garbage cluster));
  let calls = ref 0 in
  let run _step =
    incr calls;
    if !calls = 2 then Heap.remove p0.Process.heap obj.Heap.oid
  in
  (cluster, oracle, run)

let test_liveness_converges_on_final_tick () =
  let cluster, oracle, run = quiescent_garbage () in
  (* Reclamation completes at spent = 200 = max_ticks; the residual
     emptiness check precedes the bound check, so this is Converged,
     not Stuck. *)
  (match Oracle.check_liveness ~step:100 ~max_ticks:200 oracle ~run with
  | Oracle.Converged { ticks; reclaimed } ->
      check Alcotest.int "converged exactly at the bound" 200 ticks;
      check Alcotest.int "everything captured was reclaimed" 1 reclaimed
  | Oracle.Stuck _ as l -> Alcotest.failf "final-tick convergence misread as %a" Oracle.pp_liveness l);
  Cluster.teardown cluster

let test_liveness_stuck_one_step_short () =
  let cluster, oracle, run = quiescent_garbage () in
  (* Same run schedule, bound one step smaller: the second step never
     executes and the object survives. *)
  (match Oracle.check_liveness ~step:100 ~max_ticks:100 oracle ~run with
  | Oracle.Stuck { remaining; after } ->
      check Alcotest.int "gave up at the bound" 100 after;
      check Alcotest.int "the object remains" 1 (Oid.Set.cardinal remaining)
  | Oracle.Converged _ -> Alcotest.fail "converged without the reclaiming step");
  Cluster.teardown cluster

let suite =
  ( "oracle",
    [
      Alcotest.test_case "sweep fires exactly on the window edge" `Quick
        test_violation_at_window_edge;
      Alcotest.test_case "teardown mid-window runs one final sweep" `Quick
        test_teardown_mid_window;
      Alcotest.test_case "liveness converges on the final tick" `Quick
        test_liveness_converges_on_final_tick;
      Alcotest.test_case "liveness stuck one step short" `Quick test_liveness_stuck_one_step_short;
    ] )
