(* Crash-stop failures: the system must stay safe unconditionally, and
   with failure detection enabled it must also reclaim the state a
   crashed process pinned — including the documented unsafety when a
   partition is mistaken for a crash. *)

open Adgc_algebra
open Adgc_rt
open Adgc_workload
module Sim = Adgc.Sim
module Config = Adgc.Config

let check = Alcotest.check

let mk ?(n = 4) ?(failure_detection = false) () =
  let config = Config.quick ~n_procs:n () in
  let runtime =
    { config.Config.runtime with Runtime.failure_detection; holder_silence_limit = 5_000 }
  in
  let config = { config with Config.runtime = runtime } in
  let sim = Sim.create ~config () in
  (sim, Sim.cluster sim)

let test_dead_process_is_silent () =
  let sim, cluster = mk () in
  let a = Mutator.alloc cluster ~proc:0 () in
  let b = Mutator.alloc cluster ~proc:1 () in
  Mutator.add_root cluster a;
  Mutator.add_root cluster b;
  Mutator.wire_remote cluster ~holder:a ~target:b;
  Sim.start sim;
  Sim.run_for sim 3_000;
  Cluster.crash cluster 0;
  let crashed_at = Cluster.now cluster in
  (* Sample the wire faster than the minimum latency: every message
     P0 originated after the crash would be caught in flight. *)
  let originated_dead = ref 0 in
  let audit =
    Scheduler.every (Cluster.sched cluster) ~phase:1 ~period:3 (fun () ->
        List.iter
          (fun (m : Msg.t) ->
            if Proc_id.equal m.Msg.src (Proc_id.of_int 0) && m.Msg.sent_at > crashed_at then
              incr originated_dead)
          (Network.in_flight (Cluster.net cluster)))
  in
  Sim.run_for sim 5_000;
  Scheduler.cancel audit;
  (* P1 keeps probing (owner side), but nothing originates at P0. *)
  let dead_drops = Adgc_util.Stats.get (Sim.stats sim) "net.msg.dead_endpoint" in
  check Alcotest.bool "messages to the dead are dropped" true (dead_drops > 0);
  check Alcotest.int "nothing originates at the dead process" 0 !originated_dead;
  (* Direct attempt: a send whose source is dead is swallowed before
     it reaches the wire. *)
  let sent = Adgc_util.Stats.get (Sim.stats sim) "net.msg.sent" in
  Runtime.send (Cluster.rt cluster) ~src:(Proc_id.of_int 0) ~dst:(Proc_id.of_int 1)
    Msg.Scion_probe;
  check Alcotest.int "dead source never hits the wire" sent
    (Adgc_util.Stats.get (Sim.stats sim) "net.msg.sent");
  check Alcotest.bool "p0 reported dead" false (Cluster.alive cluster 0)

let test_crash_without_detection_leaks () =
  let sim, cluster = mk () in
  let holder = Mutator.alloc cluster ~proc:0 () in
  let target = Mutator.alloc cluster ~proc:1 () in
  Mutator.add_root cluster holder;
  Mutator.wire_remote cluster ~holder ~target;
  Sim.start sim;
  Sim.run_for sim 3_000;
  Cluster.crash cluster 0;
  Sim.run_for sim 60_000;
  (* Without failure detection the scion (and object) leak — the
     conservative default. *)
  let p1 = Cluster.proc cluster 1 in
  check Alcotest.bool "object leaks conservatively" true
    (Heap.mem p1.Process.heap target.Heap.oid)

let test_crash_with_detection_reclaims () =
  let sim, cluster = mk ~failure_detection:true () in
  let holder = Mutator.alloc cluster ~proc:0 () in
  let target = Mutator.alloc cluster ~proc:1 () in
  Mutator.add_root cluster holder;
  Mutator.wire_remote cluster ~holder ~target;
  Sim.start sim;
  Sim.run_for sim 3_000;
  Cluster.crash cluster 0;
  Sim.run_for sim 60_000;
  let p1 = Cluster.proc cluster 1 in
  check Alcotest.bool "scion reaped, object reclaimed" false
    (Heap.mem p1.Process.heap target.Heap.oid);
  check Alcotest.bool "reap counted" true
    (Adgc_util.Stats.get (Sim.stats sim) "reflist.scions_reaped" >= 1)

let test_live_holder_never_reaped () =
  (* Failure detection on, healthy network: periodic stub sets keep
     every live holder fresh and nothing is reaped. *)
  let sim, cluster = mk ~failure_detection:true () in
  let holder = Mutator.alloc cluster ~proc:0 () in
  let target = Mutator.alloc cluster ~proc:1 () in
  Mutator.add_root cluster holder;
  Mutator.wire_remote cluster ~holder ~target;
  Sim.start sim;
  Sim.run_for sim 60_000;
  check Alcotest.int "nothing reaped" 0
    (Adgc_util.Stats.get (Sim.stats sim) "reflist.scions_reaped");
  check Alcotest.bool "object alive" true
    (Heap.mem (Cluster.proc cluster 1).Process.heap target.Heap.oid)

let test_cycle_through_crashed_process () =
  (* A distributed cycle spanning a crashed process: the crash breaks
     the cycle; failure detection reclaims the remnants at the
     survivors. *)
  let sim, cluster = mk ~n:3 ~failure_detection:true () in
  let _built = Topology.ring cluster ~procs:[ 0; 1; 2 ] in
  Sim.start sim;
  Sim.run_for sim 1_000;
  Cluster.crash cluster 1;
  Sim.run_for sim 100_000;
  check Alcotest.int "survivor remnants reclaimed" 0 (Cluster.total_objects cluster)

let test_false_suspicion_is_unsafe () =
  (* The documented trade-off: partition a live holder for longer than
     the silence limit; its objects get reclaimed under it.  This test
     asserts the unsafety actually manifests — the reason
     failure_detection defaults to off. *)
  let sim, cluster = mk ~failure_detection:true () in
  let checker = Metrics.install_safety_checker cluster in
  let holder = Mutator.alloc cluster ~proc:0 () in
  let target = Mutator.alloc cluster ~proc:1 () in
  Mutator.add_root cluster holder;
  Mutator.wire_remote cluster ~holder ~target;
  Sim.start sim;
  Sim.run_for sim 2_000;
  (* Partition both directions: P0 is alive but unreachable. *)
  Network.block_link (Cluster.net cluster) (Proc_id.of_int 0) (Proc_id.of_int 1);
  Network.block_link (Cluster.net cluster) (Proc_id.of_int 1) (Proc_id.of_int 0);
  Sim.run_for sim 60_000;
  check Alcotest.bool "live object was reclaimed (documented unsafety)" true
    (List.length (Metrics.violations checker) >= 1)

let test_detection_dies_at_crashed_process () =
  (* A CDM addressed to a dead process vanishes; the detection never
     concludes and everything stays safe. *)
  let sim, cluster = mk ~n:3 () in
  let built = Topology.ring cluster ~procs:[ 0; 1; 2 ] in
  Sim.snapshot_all sim;
  Cluster.crash cluster 2;
  ignore
    (Adgc_dcda.Detector.initiate (Sim.detector sim 0)
       (Topology.scion_key built ~src:2 "n0_0")
      : bool);
  ignore (Cluster.drain cluster : int);
  check Alcotest.int "no conclusion" 0 (List.length (Sim.reports sim))

let test_crash_is_idempotent () =
  let _sim, cluster = mk () in
  Cluster.crash cluster 0;
  Cluster.crash cluster 0;
  check Alcotest.int "one crash counted" 1
    (Adgc_util.Stats.get (Cluster.stats cluster) "cluster.crashes")

let test_survivors_keep_collecting () =
  (* Normal distributed collection among survivors is unaffected by an
     unrelated crash. *)
  let sim, cluster = mk ~n:4 () in
  let a = Mutator.alloc cluster ~proc:0 () in
  let b = Mutator.alloc cluster ~proc:1 () in
  Mutator.wire_remote cluster ~holder:a ~target:b;
  Mutator.add_root cluster a;
  Sim.start sim;
  Cluster.crash cluster 3;
  Sim.run_for sim 2_000;
  Mutator.remove_root cluster a;
  check Alcotest.bool "chain reclaimed despite crash elsewhere" true
    (Sim.run_until_clean ~max_time:100_000 sim)

(* qcheck: with failure detection on and only true crash-stop failures
   (no partitions), safety holds under random topology, churn and
   crash schedule, and the survivors converge. *)
let prop_random_crash_schedules_safe =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"random crashes stay safe and converge" ~count:10
       QCheck2.Gen.(triple (int_range 0 1000) (int_range 0 3) (int_range 1 20_000))
       (fun (seed, victim, crash_time) ->
         let config = Config.quick ~seed ~n_procs:4 () in
         let runtime =
           {
             config.Config.runtime with
             Runtime.failure_detection = true;
             holder_silence_limit = 5_000;
           }
         in
         let config = { config with Config.runtime = runtime } in
         let sim = Sim.create ~config () in
         let cluster = Sim.cluster sim in
         let checker = Metrics.install_safety_checker cluster in
         let rng = Adgc_util.Rng.create (seed + 1) in
         let _built =
           Topology.random cluster ~rng ~objects:40 ~edges:80 ~remote_prob:0.3 ~root_prob:0.2
         in
         let churn = Churn.create ~cluster ~rng:(Adgc_util.Rng.create (seed + 2)) () in
         Churn.run churn ~steps:200 ~every:13;
         Adgc_rt.Scheduler.schedule_after (Cluster.sched cluster) ~delay:crash_time (fun () ->
             Cluster.crash cluster victim);
         Sim.start sim;
         Sim.run_for sim 40_000;
         let clean = Sim.run_until_clean ~step:5_000 ~max_time:2_000_000 sim in
         Metrics.assert_safe checker;
         clean))

(* --------------------------------------------------------------- *)
(* Duplicate-suppression truncation at restart quiescence.          *)

let test_prune_delivered_semantics () =
  let p = Process.create ~id:(Proc_id.of_int 0) ~rng:(Adgc_util.Rng.create 7) in
  let src = Proc_id.of_int 1 in
  for seq = 0 to 199 do
    check Alcotest.bool "first delivery accepted" true (Process.note_delivery p ~src ~seq)
  done;
  check Alcotest.int "table holds every entry" 200 (Process.delivered_count p);
  let removed = Process.prune_delivered p in
  (* floor = 199 - 64: everything below is summarised away. *)
  check Alcotest.int "entries below the floor removed" 135 removed;
  check Alcotest.int "slack window retained" 65 (Process.delivered_count p);
  check Alcotest.bool "sub-floor replay refused" false (Process.note_delivery p ~src ~seq:10);
  check Alcotest.bool "retained entry still suppresses" false
    (Process.note_delivery p ~src ~seq:150);
  check Alcotest.bool "fresh sequence accepted" true (Process.note_delivery p ~src ~seq:200);
  (* Pruning again moves the floor with the high-water mark but never
     above it. *)
  ignore (Process.prune_delivered p : int);
  check Alcotest.bool "post-prune fresh sequence accepted" true
    (Process.note_delivery p ~src ~seq:201)

let test_restart_bounds_delivered_table () =
  let sim, cluster = mk () in
  (* Steady cross-process traffic: remote references in both directions
     keep the reference-listing rounds (and their sequence numbers)
     flowing for the whole run. *)
  let a = Mutator.alloc cluster ~proc:0 () in
  let b = Mutator.alloc cluster ~proc:1 () in
  let c = Mutator.alloc cluster ~proc:2 () in
  Mutator.add_root cluster a;
  Mutator.add_root cluster b;
  Mutator.add_root cluster c;
  Mutator.wire_remote cluster ~holder:a ~target:b;
  Mutator.wire_remote cluster ~holder:b ~target:a;
  Mutator.wire_remote cluster ~holder:c ~target:a;
  Sim.start sim;
  let p0 = Cluster.proc cluster 0 in
  (* Without truncation this grows with every round; each restart is a
     quiescence point that must cap it at the per-sender slack
     window. *)
  let bound = 3 * 65 in
  for _round = 1 to 5 do
    Sim.run_for sim 20_000;
    Cluster.crash cluster 0;
    Cluster.restart cluster 0;
    check Alcotest.bool "delivered table bounded after restart" true
      (Process.delivered_count p0 <= bound)
  done;
  check Alcotest.bool "truncation actually fired" true
    (Adgc_util.Stats.get (Sim.stats sim) "cluster.delivered_pruned" > 0);
  (* The run stays healthy after repeated truncation: the listing
     exchange keeps flowing and nothing was reclaimed unsafely. *)
  Sim.run_for sim 2_000;
  check Alcotest.bool "reference listing still flowing" true
    (Adgc_util.Stats.get (Sim.stats sim) "reflist.sets_sent" > 0);
  List.iter
    (fun (o : Heap.obj) ->
      let owner = Proc_id.to_int (Oid.owner o.Heap.oid) in
      check Alcotest.bool "rooted object survives" true
        (Heap.mem (Cluster.proc cluster owner).Process.heap o.Heap.oid))
    [ a; b; c ]

let suite =
  ( "failures",
    [
      Alcotest.test_case "dead process is silent" `Quick test_dead_process_is_silent;
      Alcotest.test_case "crash without detection leaks (conservative)" `Quick
        test_crash_without_detection_leaks;
      Alcotest.test_case "crash with detection reclaims" `Quick test_crash_with_detection_reclaims;
      Alcotest.test_case "live holder never reaped" `Quick test_live_holder_never_reaped;
      Alcotest.test_case "cycle through crashed process" `Quick test_cycle_through_crashed_process;
      Alcotest.test_case "false suspicion is unsafe (documented)" `Quick
        test_false_suspicion_is_unsafe;
      Alcotest.test_case "detection dies at crashed process" `Quick
        test_detection_dies_at_crashed_process;
      Alcotest.test_case "crash is idempotent" `Quick test_crash_is_idempotent;
      Alcotest.test_case "survivors keep collecting" `Quick test_survivors_keep_collecting;
      Alcotest.test_case "prune_delivered semantics" `Quick test_prune_delivered_semantics;
      Alcotest.test_case "restart bounds the delivered table" `Quick
        test_restart_bounds_delivered_table;
      prop_random_crash_schedules_safe;
    ] )
