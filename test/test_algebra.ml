(* Tests for identifiers and the CDM algebra, including a step-by-step
   replay of the paper's Section 3 worked examples (Fig. 3 simple
   cycle, Fig. 4 mutually-linked cycles, §3.2 invocation-counter
   race). *)

open Adgc_algebra

let check = Alcotest.check

(* Terse builders: [oid p serial], [rkey src (oid)] *)
let oid p serial = Oid.make ~owner:(Proc_id.of_int p) ~serial

let rkey src target = Ref_key.make ~src:(Proc_id.of_int src) ~target

(* Objects of the paper's Fig. 3 (process numbers 1-based as in the
   paper; serial numbers arbitrary but fixed). *)
let f_p2 = oid 2 0 (* F in P2 *)

let q_p4 = oid 4 0

let o_p3 = oid 3 0

let d_p1 = oid 1 0

(* The references of the cycle, named by the paper's convention: the
   entry "F_P2" is the reference from P1's stub to F. *)
let ref_f = rkey 1 f_p2

let ref_q = rkey 2 q_p4

let ref_o = rkey 4 o_p3

let ref_d = rkey 3 d_p1

let add side alg (key, ic) = Algebra.add_exn alg side key ~ic

let source_of = List.fold_left (add Algebra.Source) Algebra.empty

let alg_of srcs tgts =
  List.fold_left (add Algebra.Target) (source_of srcs) tgts

let keys l = List.map fst l

let refkey = Alcotest.testable Ref_key.pp Ref_key.equal

type match_parts = { unresolved : (Ref_key.t * int) list; frontier : (Ref_key.t * int) list }

let match_exn alg =
  match Algebra.matching alg with
  | Algebra.Match { unresolved; frontier } -> { unresolved; frontier }
  | Algebra.Ic_abort _ -> Alcotest.fail "unexpected IC abort"

(* ------------------------------------------------------------------ *)
(* Identifier basics *)

let test_proc_id () =
  check Alcotest.int "roundtrip" 7 (Proc_id.to_int (Proc_id.of_int 7));
  check Alcotest.bool "equal" true (Proc_id.equal (Proc_id.of_int 3) (Proc_id.of_int 3));
  check Alcotest.string "pp" "P3" (Proc_id.to_string (Proc_id.of_int 3));
  Alcotest.check_raises "negative" (Invalid_argument "Proc_id.of_int: negative") (fun () ->
      ignore (Proc_id.of_int (-1)))

let test_oid_ordering () =
  let a = oid 1 5 and b = oid 1 6 and c = oid 2 0 in
  check Alcotest.bool "serial order" true (Oid.compare a b < 0);
  check Alcotest.bool "owner dominates" true (Oid.compare b c < 0);
  check Alcotest.bool "equal" true (Oid.equal a (oid 1 5))

let test_ref_key_ordering () =
  let a = rkey 1 (oid 2 0) and b = rkey 1 (oid 2 1) and c = rkey 2 (oid 1 0) in
  check Alcotest.bool "target order" true (Ref_key.compare a b < 0);
  check Alcotest.bool "src dominates" true (Ref_key.compare b c < 0);
  check Alcotest.string "owner" "P2" (Proc_id.to_string (Ref_key.owner a))

let test_detection_id () =
  let a = Detection_id.make ~initiator:(Proc_id.of_int 1) ~seq:3 in
  let b = Detection_id.make ~initiator:(Proc_id.of_int 1) ~seq:4 in
  check Alcotest.bool "ordered by seq" true (Detection_id.compare a b < 0);
  check Alcotest.string "pp" "D3@P1" (Detection_id.to_string a)

(* ------------------------------------------------------------------ *)
(* Algebra construction *)

let test_add_dedupe () =
  let alg = source_of [ (ref_f, 3); (ref_f, 3) ] in
  check Alcotest.int "one entry" 1 (fst (Algebra.cardinal alg))

let test_add_conflict () =
  let alg = source_of [ (ref_f, 3) ] in
  match Algebra.add alg Algebra.Source ref_f ~ic:4 with
  | Algebra.Ic_conflict { existing = 3; incoming = 4; _ } -> ()
  | Algebra.Ic_conflict _ -> Alcotest.fail "wrong conflict values"
  | Algebra.Added _ -> Alcotest.fail "expected conflict"

let test_sides_independent () =
  (* The same key may appear on both sides (that is how cancellation
     works); only same-side duplicates with different ICs conflict. *)
  let alg = alg_of [ (ref_f, 3) ] [ (ref_f, 3) ] in
  check (Alcotest.pair Alcotest.int Alcotest.int) "one each" (1, 1) (Algebra.cardinal alg)

let test_mem_and_ic () =
  let alg = alg_of [ (ref_f, 3) ] [ (ref_q, 1) ] in
  check Alcotest.bool "mem source" true (Algebra.mem alg Algebra.Source ref_f);
  check Alcotest.bool "not in target" false (Algebra.mem alg Algebra.Target ref_f);
  check (Alcotest.option Alcotest.int) "ic" (Some 1) (Algebra.ic alg Algebra.Target ref_q)

let test_equal () =
  let a = alg_of [ (ref_f, 0) ] [ (ref_q, 0) ] in
  let b = alg_of [ (ref_f, 0) ] [ (ref_q, 0) ] in
  let c = alg_of [ (ref_f, 1) ] [ (ref_q, 0) ] in
  check Alcotest.bool "equal" true (Algebra.equal a b);
  check Alcotest.bool "ic matters" false (Algebra.equal a c)

(* ------------------------------------------------------------------ *)
(* Matching semantics *)

let test_matching_empty () =
  match match_exn Algebra.empty with
  | { unresolved = []; frontier = [] } -> ()
  | _ -> Alcotest.fail "empty should match empty"

let test_matching_disjoint () =
  let alg = alg_of [ (ref_f, 0) ] [ (ref_q, 0) ] in
  let m = match_exn alg in
  check (Alcotest.list refkey) "unresolved" [ ref_f ] (keys m.unresolved);
  check (Alcotest.list refkey) "frontier" [ ref_q ] (keys m.frontier);
  check Alcotest.bool "not a cycle" false (Algebra.cycle_found alg)

let test_matching_cancels () =
  let alg = alg_of [ (ref_f, 0); (ref_q, 2) ] [ (ref_q, 2); (ref_o, 0) ] in
  let m = match_exn alg in
  check (Alcotest.list refkey) "unresolved" [ ref_f ] (keys m.unresolved);
  check (Alcotest.list refkey) "frontier" [ ref_o ] (keys m.frontier)

let test_matching_complete_cycle () =
  let entries = [ (ref_f, 0); (ref_q, 0); (ref_o, 0); (ref_d, 0) ] in
  let alg = alg_of entries entries in
  check Alcotest.bool "cycle found" true (Algebra.cycle_found alg)

let test_matching_ic_abort () =
  let alg = alg_of [ (ref_f, 3) ] [ (ref_f, 4) ] in
  (match Algebra.matching alg with
  | Algebra.Ic_abort { key; source_ic = 3; target_ic = 4 } ->
      check refkey "key" ref_f key
  | Algebra.Ic_abort _ -> Alcotest.fail "wrong ics"
  | Algebra.Match _ -> Alcotest.fail "expected abort");
  check Alcotest.bool "no cycle on abort" false (Algebra.cycle_found alg)

(* ------------------------------------------------------------------ *)
(* Paper Fig. 3, steps 1-26 *)

let test_paper_fig3_steps () =
  (* Step 1: F_P2 chosen as candidate. *)
  let alg0 = source_of [ (ref_f, 0) ] in
  (* Steps 2-3: StubsFrom(F_P2) = {Q_P4}. *)
  let alg1 = add Algebra.Target alg0 (ref_q, 0) in
  (* Step 6: matching at P4 -> {{F} -> {Q}} : no cycle. *)
  let m1 = match_exn alg1 in
  check (Alcotest.list refkey) "step6 source" [ ref_f ] (keys m1.unresolved);
  check (Alcotest.list refkey) "step6 target" [ ref_q ] (keys m1.frontier);
  check Alcotest.bool "step7 no cycle" false (Algebra.cycle_found alg1);
  (* Steps 8-10 at P4: add scion Q (arrival), stub O. *)
  let alg2 = add Algebra.Target (add Algebra.Source alg1 (ref_q, 0)) (ref_o, 0) in
  (* Step 13 at P3: matching -> {{F} -> {O}}. *)
  let alg2 = add Algebra.Source alg2 (ref_q, 0) in
  let m2 = match_exn alg2 in
  check (Alcotest.list refkey) "step13 source" [ ref_f ] (keys m2.unresolved);
  check (Alcotest.list refkey) "step13 target" [ ref_o ] (keys m2.frontier);
  (* Steps 15-16 at P3. *)
  let alg3 = add Algebra.Target (add Algebra.Source alg2 (ref_o, 0)) (ref_d, 0) in
  (* Step 19 at P1: matching -> {{F} -> {D}}. *)
  let m3 = match_exn alg3 in
  check (Alcotest.list refkey) "step19 source" [ ref_f ] (keys m3.unresolved);
  check (Alcotest.list refkey) "step19 target" [ ref_d ] (keys m3.frontier);
  (* Steps 21-22 at P1. *)
  let alg4 = add Algebra.Target (add Algebra.Source alg3 (ref_d, 0)) (ref_f, 0) in
  (* Steps 24-26 at P2: {{} -> {}} -> cycle found. *)
  let m4 = match_exn alg4 in
  check (Alcotest.list refkey) "step25 source empty" [] (keys m4.unresolved);
  check (Alcotest.list refkey) "step25 target empty" [] (keys m4.frontier);
  check Alcotest.bool "step26 cycle" true (Algebra.cycle_found alg4)

(* ------------------------------------------------------------------ *)
(* Paper Fig. 4 (mutually-linked cycles), key matchings *)

let v_p5 = oid 5 0

let y_p5 = oid 5 1

let t_p4 = oid 4 1

let k_p3 = oid 3 1

let zb_p6 = oid 6 0

let ref_v = rkey 2 v_p5 (* F_P2 -> V_P5 *)

let ref_y = rkey 6 y_p5 (* ZD_P6 -> Y_P5 *)

let ref_t = rkey 5 t_p4 (* {V,Y}_P5 -> T_P4: one shared stub *)

let ref_d4 = rkey 4 d_p1 (* T_P4 -> D_P1 *)

let ref_f4 = rkey 1 f_p2 (* D_P1 -> F_P2 *)

let ref_k = rkey 2 k_p3 (* F_P2 -> K_P3 *)

let ref_zb = rkey 3 zb_p6 (* K_P3 -> ZB_P6 *)

let test_paper_fig4_steps () =
  (* Steps 1-3 at P2: two derivations from candidate F. *)
  let alg0 = source_of [ (ref_f4, 0) ] in
  let alg1a = add Algebra.Target alg0 (ref_v, 0) in
  (* Steps 4-6 at P5: arrival V, extra dependency Y (ScionsTo of the
     shared stub to T), stub T. *)
  let alg2a =
    alg1a
    |> fun a ->
    add Algebra.Source a (ref_v, 0)
    |> fun a -> add Algebra.Source a (ref_y, 0) |> fun a -> add Algebra.Target a (ref_t, 0)
  in
  (* Step 7 at P4. *)
  let alg3a =
    add Algebra.Target (add Algebra.Source alg2a (ref_t, 0)) (ref_d4, 0)
  in
  (* Step 8 at P1. *)
  let alg4a =
    add Algebra.Target (add Algebra.Source alg3a (ref_d4, 0)) (ref_f4, 0)
  in
  (* Step 10 at P2: matching -> {{Y_P5} -> {}} — dependency on Y still
     unresolved; no cycle (step 11). *)
  let m = match_exn alg4a in
  check (Alcotest.list refkey) "step10 unresolved Y" [ ref_y ] (keys m.unresolved);
  check (Alcotest.list refkey) "step10 empty frontier" [] (keys m.frontier);
  check Alcotest.bool "step11 no cycle" false (Algebra.cycle_found alg4a);
  (* Steps 12-15 at P2: derivation along V again equals the delivered
     algebra -> terminate that branch (no new information). *)
  let alg5ab = add Algebra.Target alg4a (ref_v, 0) in
  check Alcotest.bool "step15 no new info" true (Algebra.equal alg5ab alg4a);
  (* Derivation along K is new. *)
  let alg5aa = add Algebra.Target alg4a (ref_k, 0) in
  check Alcotest.bool "step13 is new" false (Algebra.equal alg5aa alg4a);
  (* Step 17 at P3: matching of the delivered algebra (the arrival
     scion K joins the source set only when the next derivation is
     prepared, step 20) -> {{Y} -> {K}}. *)
  let m = match_exn alg5aa in
  check (Alcotest.list refkey) "step17 unresolved" [ ref_y ] (keys m.unresolved);
  check (Alcotest.list refkey) "step17 frontier" [ ref_k ] (keys m.frontier);
  (* Steps 19-20 at P3: source += K, target += ZB.  Step 21 at P6:
     matching -> {{Y} -> {ZB}}. *)
  let alg6aa = add Algebra.Target (add Algebra.Source alg5aa (ref_k, 0)) (ref_zb, 0) in
  let m = match_exn alg6aa in
  check (Alcotest.list refkey) "step21 unresolved" [ ref_y ] (keys m.unresolved);
  check (Alcotest.list refkey) "step21 frontier" [ ref_zb ] (keys m.frontier);
  (* Steps 23-24 at P6: source += ZB, target += Y. Step 25 at P5:
     {{} -> {}}. *)
  let alg7aa = add Algebra.Target (add Algebra.Source alg6aa (ref_zb, 0)) (ref_y, 0) in
  check Alcotest.bool "step26 cycle found" true (Algebra.cycle_found alg7aa)

(* ------------------------------------------------------------------ *)
(* Paper §3.2: the invocation-counter race *)

let test_paper_race_ic_mismatch () =
  (* Detection started with Scion(F_P2) at IC = x; the mutator then
     invoked through the reference, so P1's later snapshot carries the
     stub at IC = x+1.  Matching must abort, not find a cycle. *)
  let x = 5 in
  let alg =
    alg_of
      [ (ref_f4, x); (ref_v, 0); (ref_t, 0); (ref_d4, 0) ]
      [ (ref_v, 0); (ref_t, 0); (ref_d4, 0) ]
  in
  match Algebra.add alg Algebra.Target ref_f4 ~ic:(x + 1) with
  | Algebra.Ic_conflict _ -> Alcotest.fail "sides are independent; no conflict on add"
  | Algebra.Added alg -> (
      match Algebra.matching alg with
      | Algebra.Ic_abort { key; source_ic; target_ic } ->
          check refkey "aborts on F" ref_f4 key;
          check Alcotest.int "source ic" x source_ic;
          check Alcotest.int "target ic" (x + 1) target_ic
      | Algebra.Match _ -> Alcotest.fail "race not detected")

(* ------------------------------------------------------------------ *)
(* Extra dependency prevents wrong detection (Fig. 1 situation) *)

let test_extra_dependency_blocks () =
  (* A 2-cycle F <-> Q with an extra incoming reference W -> F from P9:
     even after the full loop, the W dependency stays unresolved. *)
  let w_ref = rkey 9 f_p2 in
  let alg =
    alg_of
      [ (ref_f, 0); (w_ref, 0); (ref_q, 0) ]
      [ (ref_q, 0); (ref_f, 0) ]
  in
  let m = match_exn alg in
  check (Alcotest.list refkey) "W unresolved" [ w_ref ] (keys m.unresolved);
  check Alcotest.bool "no cycle" false (Algebra.cycle_found alg)

(* ------------------------------------------------------------------ *)
(* Wire format *)

let test_sval_roundtrip () =
  let alg = alg_of [ (ref_f, 3); (ref_y, 1) ] [ (ref_q, 2) ] in
  match Algebra.of_sval (Algebra.to_sval alg) with
  | Some alg' -> check Alcotest.bool "roundtrip" true (Algebra.equal alg alg')
  | None -> Alcotest.fail "decode failed"

let test_compact_sval_roundtrip () =
  let alg = alg_of [ (ref_f, 3); (ref_y, 1); (ref_q, 2) ] [ (ref_q, 2); (ref_o, 0) ] in
  match Algebra.of_sval (Algebra.to_sval_compact alg) with
  | Some alg' -> check Alcotest.bool "roundtrip" true (Algebra.equal alg alg')
  | None -> Alcotest.fail "decode failed"

let test_compact_dedupes_shared_entries () =
  (* A fully-cancelled algebra (every key on both sides, equal ICs)
     must be about half the size of the plain encoding — measured on
     enough entries that per-message overheads do not dominate. *)
  let entries = List.init 16 (fun i -> (rkey (i mod 5) (oid ((i + 1) mod 5) i), 0)) in
  let alg = alg_of entries entries in
  let measure sval = String.length (Adgc_serial.Net_codec.encode sval) in
  let plain = measure (Algebra.to_sval alg) in
  let compact = measure (Algebra.to_sval_compact alg) in
  check Alcotest.bool "compact smaller" true (compact * 3 < plain * 2);
  (* Round-trips exactly. *)
  match Algebra.of_sval (Algebra.to_sval_compact alg) with
  | Some alg' -> check Alcotest.bool "equal" true (Algebra.equal alg alg')
  | None -> Alcotest.fail "decode failed"

let test_compact_keeps_ic_conflicts_apart () =
  (* Same key on both sides with different ICs: must be written twice
     and decode back to the conflicting state (which matching then
     aborts on). *)
  let alg = alg_of [ (ref_f, 3) ] [ (ref_f, 4) ] in
  match Algebra.of_sval (Algebra.to_sval_compact alg) with
  | Some alg' -> (
      check Alcotest.bool "equal" true (Algebra.equal alg alg');
      match Algebra.matching alg' with
      | Algebra.Ic_abort _ -> ()
      | Algebra.Match _ -> Alcotest.fail "conflict lost in the encoding")
  | None -> Alcotest.fail "decode failed"

let test_sval_rejects_junk () =
  check Alcotest.bool "junk rejected" true (Algebra.of_sval (Adgc_serial.Sval.Int 3) = None)

let test_cdm_sval_roundtrip () =
  let alg = alg_of [ (ref_f, 3) ] [ (ref_q, 2) ] in
  let id = Detection_id.make ~initiator:(Proc_id.of_int 2) ~seq:9 in
  let cdm = Cdm.make ~id ~algebra:alg ~frontier:ref_q ~hops:4 ~budget:9 in
  match Cdm.of_sval (Cdm.to_sval cdm) with
  | Some cdm' ->
      check Alcotest.bool "id" true (Detection_id.equal cdm.Cdm.id cdm'.Cdm.id);
      check refkey "frontier" cdm.Cdm.frontier cdm'.Cdm.frontier;
      check Alcotest.int "hops" 4 cdm'.Cdm.hops;
      check Alcotest.int "budget" 9 cdm'.Cdm.budget;
      check Alcotest.bool "algebra" true (Algebra.equal cdm.Cdm.algebra cdm'.Cdm.algebra)
  | None -> Alcotest.fail "decode failed"

let test_cdm_dest () =
  let alg = alg_of [ (ref_f, 0) ] [ (ref_q, 0) ] in
  let id = Detection_id.make ~initiator:(Proc_id.of_int 2) ~seq:0 in
  let cdm = Cdm.make ~id ~algebra:alg ~frontier:ref_q ~hops:1 ~budget:4 in
  check Alcotest.int "dest is target owner" 4 (Proc_id.to_int (Cdm.dest cdm))

(* ------------------------------------------------------------------ *)
(* qcheck properties *)

let gen_ref =
  let open QCheck2.Gen in
  map3
    (fun src owner serial -> rkey src (oid owner serial))
    (int_range 0 5) (int_range 0 5) (int_range 0 3)

let gen_entries = QCheck2.Gen.(list_size (int_bound 12) (pair gen_ref (int_range 0 3)))

let prop_cycle_iff_equal_sets =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"cycle_found iff source = target with equal ICs" ~count:500
       gen_entries (fun entries ->
         (* Dedupe by key to build a valid algebra. *)
         let dedup =
           List.fold_left
             (fun acc (k, ic) -> if List.mem_assoc k acc then acc else (k, ic) :: acc)
             [] entries
         in
         let alg = alg_of dedup dedup in
         Algebra.cycle_found alg))

let prop_matching_partitions =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"matching partitions the union of keys" ~count:500
       QCheck2.Gen.(pair gen_entries gen_entries)
       (fun (src, tgt) ->
         let dedup l =
           List.fold_left
             (fun acc (k, ic) -> if List.mem_assoc k acc then acc else (k, ic) :: acc)
             [] l
         in
         let src = dedup src and tgt = dedup tgt in
         let alg = alg_of src tgt in
         match Algebra.matching alg with
         | Algebra.Ic_abort { key; _ } ->
             (* Abort only when the same key appears on both sides with
                different ICs. *)
             let s = List.assoc key src and t = List.assoc key tgt in
             s <> t
         | Algebra.Match { unresolved; frontier } ->
             (* Unresolved keys are source-only; frontier keys are
                target-only; cancelled keys had equal ICs. *)
             List.for_all (fun (k, _) -> not (List.mem_assoc k tgt)) unresolved
             && List.for_all (fun (k, _) -> not (List.mem_assoc k src)) frontier
             && List.for_all
                  (fun (k, ic) ->
                    match List.assoc_opt k tgt with
                    | Some ic' -> ic = ic' || List.mem_assoc k unresolved
                    | None -> true)
                  src))

let prop_compact_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"compact algebra sval roundtrip" ~count:300
       QCheck2.Gen.(pair gen_entries gen_entries)
       (fun (src, tgt) ->
         let dedup l =
           List.fold_left
             (fun acc (k, ic) -> if List.mem_assoc k acc then acc else (k, ic) :: acc)
             [] l
         in
         let alg = alg_of (dedup src) (dedup tgt) in
         match Algebra.of_sval (Algebra.to_sval_compact alg) with
         | Some alg' -> Algebra.equal alg alg'
         | None -> false))

let prop_sval_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"algebra sval roundtrip" ~count:300
       QCheck2.Gen.(pair gen_entries gen_entries)
       (fun (src, tgt) ->
         let dedup l =
           List.fold_left
             (fun acc (k, ic) -> if List.mem_assoc k acc then acc else (k, ic) :: acc)
             [] l
         in
         let alg = alg_of (dedup src) (dedup tgt) in
         match Algebra.of_sval (Algebra.to_sval alg) with
         | Some alg' -> Algebra.equal alg alg'
         | None -> false))

(* ------------------------------------------------------------------ *)
(* Algebra laws (pinned as properties, not examples) *)

let dedup_entries l =
  List.fold_left
    (fun acc (k, ic) -> if List.mem_assoc k acc then acc else (k, ic) :: acc)
    [] l

let gen_alg =
  QCheck2.Gen.map
    (fun (src, tgt) -> alg_of (dedup_entries src) (dedup_entries tgt))
    QCheck2.Gen.(pair gen_entries gen_entries)

(* Two union results agree when both are defined with equal algebras
   or both are conflicts (the conflicting key may legitimately differ
   between evaluation orders). *)
let union_agrees l r =
  match (l, r) with
  | Ok a, Ok b -> Algebra.equal a b
  | Error _, Error _ -> true
  | Ok _, Error _ | Error _, Ok _ -> false

let prop_union_commutative =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"union is commutative" ~count:500
       QCheck2.Gen.(pair gen_alg gen_alg)
       (fun (a, b) -> union_agrees (Algebra.union a b) (Algebra.union b a)))

let prop_union_associative =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"union is associative" ~count:500
       QCheck2.Gen.(triple gen_alg gen_alg gen_alg)
       (fun (a, b, c) ->
         let l = Result.bind (Algebra.union a b) (fun ab -> Algebra.union ab c) in
         let r = Result.bind (Algebra.union b c) (fun bc -> Algebra.union a bc) in
         union_agrees l r))

let prop_union_idempotent =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"union is idempotent" ~count:500 gen_alg (fun a ->
         match Algebra.union a a with Ok a' -> Algebra.equal a a' | Error _ -> false))

let prop_union_absorbs_add =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"union agrees with entry-wise add" ~count:500
       QCheck2.Gen.(pair gen_alg gen_alg)
       (fun (a, b) ->
         (* Folding b's entries into a with [add] computes the same
            union, including whether a conflict arises. *)
         let fold side entries acc =
           List.fold_left
             (fun acc (key, ic) ->
               Result.bind acc (fun t ->
                   match Algebra.add t side key ~ic with
                   | Algebra.Added t -> Ok t
                   | Algebra.Ic_conflict { key; _ } -> Error (side, key)))
             acc entries
         in
         union_agrees (Algebra.union a b)
           (fold Algebra.Source (Algebra.source b) (Ok a)
           |> fold Algebra.Target (Algebra.target b))))

(* Matching is monotone under IC increments: bumping the counter of a
   single-side entry never changes the match partition (same
   unresolved and frontier keys), while bumping one side of a
   cancelling pair always turns the match into an abort — a remote
   invocation between snapshots can only make the verdict stricter,
   never conjure a cycle. *)
let bump_side side alg key delta =
  let entries s = if s = side then
      List.map (fun (k, ic) -> if Ref_key.equal k key then (k, ic + delta) else (k, ic))
    else Fun.id
  in
  alg_of (entries Algebra.Source (Algebra.source alg)) (entries Algebra.Target (Algebra.target alg))

let prop_matching_monotone_single_side =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"matching ignores IC bumps on single-side entries" ~count:500
       QCheck2.Gen.(triple gen_alg (int_range 0 20) (int_range 1 3))
       (fun (alg, pick, delta) ->
         let singles =
           List.filter (fun (k, _) -> not (Algebra.mem alg Algebra.Target k)) (Algebra.source alg)
           |> List.map (fun (k, _) -> (Algebra.Source, k))
         in
         let singles =
           singles
           @ (List.filter (fun (k, _) -> not (Algebra.mem alg Algebra.Source k)) (Algebra.target alg)
             |> List.map (fun (k, _) -> (Algebra.Target, k)))
         in
         match singles with
         | [] -> true
         | _ -> (
             let side, key = List.nth singles (pick mod List.length singles) in
             let bumped = bump_side side alg key delta in
             match (Algebra.matching alg, Algebra.matching bumped) with
             | ( Algebra.Match { unresolved = u; frontier = f },
                 Algebra.Match { unresolved = u'; frontier = f' } ) ->
                 keys u = keys u' && keys f = keys f'
             | Algebra.Ic_abort _, Algebra.Ic_abort _ -> true
             | Algebra.Match _, Algebra.Ic_abort _ | Algebra.Ic_abort _, Algebra.Match _ ->
                 false)))

let prop_matching_aborts_on_bumped_pair =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"matching aborts when a cancelled pair's IC is bumped" ~count:500
       QCheck2.Gen.(triple gen_alg (int_range 0 20) (int_range 1 3))
       (fun (alg, pick, delta) ->
         match Algebra.matching alg with
         | Algebra.Ic_abort _ -> true (* already aborting; bumps cannot help *)
         | Algebra.Match _ -> (
             let cancelled =
               List.filter
                 (fun (k, ic) -> Algebra.ic alg Algebra.Target k = Some ic)
                 (Algebra.source alg)
             in
             match cancelled with
             | [] -> true
             | _ -> (
                 let key, _ = List.nth cancelled (pick mod List.length cancelled) in
                 match Algebra.matching (bump_side Algebra.Source alg key delta) with
                 | Algebra.Ic_abort _ -> true
                 | Algebra.Match _ -> false))))

let gen_detection_id =
  QCheck2.Gen.map
    (fun (p, seq) -> Detection_id.make ~initiator:(Proc_id.of_int p) ~seq)
    QCheck2.Gen.(pair (int_range 0 4) (int_range 0 4))

let prop_detection_id_order_and_hash =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"Detection_id order is total and consistent with hash" ~count:500
       QCheck2.Gen.(triple gen_detection_id gen_detection_id gen_detection_id)
       (fun (a, b, c) ->
         let sgn x = compare x 0 in
         (* antisymmetry *)
         sgn (Detection_id.compare a b) = -sgn (Detection_id.compare b a)
         (* transitivity *)
         && (not (Detection_id.compare a b <= 0 && Detection_id.compare b c <= 0)
            || Detection_id.compare a c <= 0)
         (* equality agrees with the order *)
         && Detection_id.equal a b = (Detection_id.compare a b = 0)
         (* hash respects equality *)
         && (not (Detection_id.equal a b) || Detection_id.hash a = Detection_id.hash b)))

let suite =
  ( "algebra",
    [
      Alcotest.test_case "proc_id basics" `Quick test_proc_id;
      Alcotest.test_case "oid ordering" `Quick test_oid_ordering;
      Alcotest.test_case "ref_key ordering" `Quick test_ref_key_ordering;
      Alcotest.test_case "detection_id" `Quick test_detection_id;
      Alcotest.test_case "add: dedupe" `Quick test_add_dedupe;
      Alcotest.test_case "add: IC conflict" `Quick test_add_conflict;
      Alcotest.test_case "sides independent" `Quick test_sides_independent;
      Alcotest.test_case "mem and ic" `Quick test_mem_and_ic;
      Alcotest.test_case "equality" `Quick test_equal;
      Alcotest.test_case "matching: empty" `Quick test_matching_empty;
      Alcotest.test_case "matching: disjoint" `Quick test_matching_disjoint;
      Alcotest.test_case "matching: cancellation" `Quick test_matching_cancels;
      Alcotest.test_case "matching: complete cycle" `Quick test_matching_complete_cycle;
      Alcotest.test_case "matching: IC abort" `Quick test_matching_ic_abort;
      Alcotest.test_case "paper fig3 steps 1-26" `Quick test_paper_fig3_steps;
      Alcotest.test_case "paper fig4 mutual cycles" `Quick test_paper_fig4_steps;
      Alcotest.test_case "paper §3.2 IC race" `Quick test_paper_race_ic_mismatch;
      Alcotest.test_case "extra dependency blocks detection" `Quick test_extra_dependency_blocks;
      Alcotest.test_case "algebra sval roundtrip" `Quick test_sval_roundtrip;
      Alcotest.test_case "compact sval roundtrip" `Quick test_compact_sval_roundtrip;
      Alcotest.test_case "compact encoding dedupes" `Quick test_compact_dedupes_shared_entries;
      Alcotest.test_case "compact keeps IC conflicts" `Quick test_compact_keeps_ic_conflicts_apart;
      Alcotest.test_case "algebra sval rejects junk" `Quick test_sval_rejects_junk;
      Alcotest.test_case "cdm sval roundtrip" `Quick test_cdm_sval_roundtrip;
      Alcotest.test_case "cdm dest" `Quick test_cdm_dest;
      prop_cycle_iff_equal_sets;
      prop_matching_partitions;
      prop_sval_roundtrip;
      prop_compact_roundtrip;
      prop_union_commutative;
      prop_union_associative;
      prop_union_idempotent;
      prop_union_absorbs_add;
      prop_matching_monotone_single_side;
      prop_matching_aborts_on_bumped_pair;
      prop_detection_id_order_and_hash;
    ] )
