(* The engine contract: the parallel engine is an implementation
   detail, not a semantics.  Every observable — the full metrics
   document and the span-timeline digest — must be byte-identical
   between [Seq] and [Par] across detectors, fault profiles and
   seeds.  Plus the kernel-level guarantees the contract rests on:
   prepares touch no shared state, the ground-truth tracer refines
   in-flight replies, and the clean-poll staleness guard skips
   without changing answers. *)

open Adgc_algebra
open Adgc_rt
open Adgc_workload
module Sim = Adgc.Sim
module Config = Adgc.Config
module Snapshot_store = Adgc_snapshot.Snapshot_store
module Export = Adgc_obs.Export
module Json = Adgc_util.Json
module Stats = Adgc_util.Stats

let check = Alcotest.check

(* The container the suite usually runs on has one core, where the
   shared pool would start zero worker domains and [Par] degenerates
   to its sequential fallback.  Force real domains (unless the caller
   already chose a count) so the equivalence matrix actually crosses
   domain boundaries. *)
let () =
  if Sys.getenv_opt "ADGC_POOL_DOMAINS" = None then Unix.putenv "ADGC_POOL_DOMAINS" "2"

(* ---------------------------------------------------------------- *)
(* Cross-engine equivalence *)

let mk_config ~engine ~detector ~faults ~seed =
  let c = Config.quick ~seed ~n_procs:6 () in
  let c = { c with Config.engine; detector } in
  match faults with None -> c | Some f -> { c with Config.faults = f }

(* One deterministic life of a system: seeded workload, periodic
   timers, and explicit bulk rounds (the engine-parallel surface). *)
let run_system config =
  let sim = Sim.create ~config () in
  let cluster = Sim.cluster sim in
  let _garbage = Topology.ring cluster ~procs:[ 0; 1; 2 ] in
  let _live = Topology.rooted_ring cluster ~procs:[ 2; 3; 4; 5 ] in
  let _deep = Topology.chain_into_ring cluster ~procs:[ 1; 3; 5 ] in
  Sim.start sim;
  for _ = 1 to 4 do
    Sim.run_for sim 1_500;
    Sim.snapshot_all sim;
    ignore (Sim.scan_all sim : int);
    Sim.run_gc_cycle sim
  done;
  Sim.teardown sim;
  let metrics = Json.to_string (Export.metrics_document (Sim.stats sim)) in
  let spans = Export.span_digest (Sim.obs sim) in
  (metrics, spans)

let test_cross_engine_equivalence () =
  let fault_cases =
    [
      ("clean", None);
      ( "loss-burst",
        Some (Faults.plan_of_profile ~start:1_000 ~stop:4_000 ~n_procs:6 Faults.Loss_burst) );
    ]
  in
  List.iter
    (fun (det_name, detector) ->
      List.iter
        (fun (fault_name, faults) ->
          List.iter
            (fun seed ->
              let case = Printf.sprintf "%s/%s/seed%d" det_name fault_name seed in
              let m_seq, d_seq =
                run_system (mk_config ~engine:Config.Seq ~detector ~faults ~seed)
              in
              let m_par, d_par =
                run_system (mk_config ~engine:Config.Par ~detector ~faults ~seed)
              in
              check Alcotest.string (case ^ ": metrics document") m_seq m_par;
              check Alcotest.string (case ^ ": span digest") d_seq d_par)
            [ 7; 21 ])
        fault_cases)
    [ ("dcda", Config.Dcda); ("backtrack", Config.Backtrack) ];
  (* Parked pool domains tax every later suite's minor GCs
     (stop-the-world rendezvous) — release them now that the parallel
     cases are done. *)
  Adgc_util.Pool.shutdown_shared ()

let test_engine_names () =
  let name engine =
    let sim = Sim.create ~config:(mk_config ~engine ~detector:Config.Dcda ~faults:None ~seed:1) () in
    let n = Sim.engine_name sim in
    Sim.teardown sim;
    n
  in
  check Alcotest.string "seq" "seq" (name Config.Seq);
  check Alcotest.string "par" "par" (name Config.Par);
  check Alcotest.bool "env parser roundtrip" true
    (Config.engine_of_string (Config.engine_to_string Config.Par) = Some Config.Par);
  Adgc_util.Pool.shutdown_shared ()

(* ---------------------------------------------------------------- *)
(* Kernel purity: a snapshot prepare may read its process but must
   leave every shared observable — stats, spans, the store — alone.
   That is the invariant that lets [Par] run prepares off the main
   domain and still commit byte-identical output. *)

let test_prepare_touches_no_shared_state () =
  let sim = Sim.create ~config:(Config.quick ()) () in
  let cluster = Sim.cluster sim in
  let _ = Topology.ring cluster ~procs:[ 0; 1; 2 ] in
  Sim.run_for sim 500;
  let stats_json () = Json.to_string (Stats.to_json (Sim.stats sim)) in
  let before_stats = stats_json () in
  let before_spans = Export.span_digest (Sim.obs sim) in
  let store = Sim.store sim in
  let p = Cluster.proc cluster 0 in
  let pr = Snapshot_store.prepare store p in
  let _pr2 = Snapshot_store.prepare store p in
  check Alcotest.string "stats untouched by prepare" before_stats (stats_json ());
  check Alcotest.string "spans untouched by prepare" before_spans
    (Export.span_digest (Sim.obs sim));
  check Alcotest.bool "store untouched by prepare" true
    (Snapshot_store.latest store (Proc_id.of_int 0) = None);
  ignore (Snapshot_store.commit store pr : Adgc_snapshot.Summary.t);
  check Alcotest.int "exactly one publication" 1
    (Stats.get (Sim.stats sim) "snapshot.taken");
  check Alcotest.bool "commit published" true
    (Snapshot_store.latest store (Proc_id.of_int 0) <> None);
  Sim.teardown sim

(* ---------------------------------------------------------------- *)
(* The in-flight-reply race (satellite of the shared-tracer move): an
   RMI reply's [target] is routing metadata — it is never imported on
   delivery — so the one ground-truth tracer must not count it live,
   while the reply's [results] genuinely travel and must stay
   pinned. *)

let test_inflight_reply_target_not_pinned () =
  let config = Config.quick ~n_procs:2 () in
  config.Config.net.Network.delivery <- Network.Manual;
  let sim = Sim.create ~config () in
  let cluster = Sim.cluster sim in
  let target = Mutator.alloc cluster ~proc:1 () in
  let result = Mutator.alloc cluster ~proc:1 () in
  let payload =
    Msg.Rmi_reply { req_id = 0; target = target.Heap.oid; results = [ result.Heap.oid ] }
  in
  Runtime.send (Sim.rt sim) ~src:(Proc_id.of_int 1) ~dst:(Proc_id.of_int 0) payload;
  check Alcotest.int "reply parked in flight" 1 (Network.in_flight_count (Sim.net sim));
  let live = Cluster.globally_live cluster in
  check Alcotest.bool "in-flight results are live" true (Oid.Set.mem result.Heap.oid live);
  check Alcotest.bool "in-flight reply target is not" false
    (Oid.Set.mem target.Heap.oid live);
  (* The refinement is real: the raw payload walk does list the
     target, so an unrefined tracer would wrongly pin it. *)
  check Alcotest.bool "naive walk would pin it" true
    (List.mem target.Heap.oid (Msg.payload_refs payload));
  Sim.teardown sim

(* ---------------------------------------------------------------- *)
(* Staleness guard on the clean poll *)

let test_clean_poll_skips_when_quiet () =
  (* No timers, one garbage object, nothing ever moves: the first
     poll computes, every later poll is a signature hit. *)
  let sim = Sim.create ~config:(Config.quick ~n_procs:2 ()) () in
  let cluster = Sim.cluster sim in
  let _garbage = Mutator.alloc cluster ~proc:0 () in
  check Alcotest.bool "never becomes clean" false
    (Sim.run_until_clean ~step:100 ~max_time:1_000 sim);
  check Alcotest.int "one real trace" 1 (Stats.get (Sim.stats sim) "sim.clean_checks");
  check Alcotest.bool "quiet polls skipped" true
    (Stats.get (Sim.stats sim) "sim.clean_checks.skipped" >= 5);
  Sim.teardown sim

let test_clean_poll_stays_correct () =
  (* With live timers the guard must not change the verdict: the ring
     is collected and the poll reports clean. *)
  let sim = Sim.create ~config:(Config.quick ~n_procs:4 ()) () in
  let _ = Topology.ring (Sim.cluster sim) ~procs:[ 0; 1; 2; 3 ] in
  Sim.start sim;
  check Alcotest.bool "converges to clean" true
    (Sim.run_until_clean ~step:1_000 ~max_time:300_000 sim);
  check Alcotest.int "clean means clean" 0 (Sim.garbage_count sim);
  check Alcotest.bool "guard engaged" true
    (Stats.get (Sim.stats sim) "sim.clean_checks" >= 1);
  Sim.teardown sim

let suite =
  ( "engine",
    [
      Alcotest.test_case "cross-engine equivalence matrix" `Slow test_cross_engine_equivalence;
      Alcotest.test_case "engine names and env parsing" `Quick test_engine_names;
      Alcotest.test_case "snapshot prepare touches no shared state" `Quick
        test_prepare_touches_no_shared_state;
      Alcotest.test_case "in-flight reply target is not pinned" `Quick
        test_inflight_reply_target_not_pinned;
      Alcotest.test_case "clean poll skips when quiet" `Quick test_clean_poll_skips_when_quiet;
      Alcotest.test_case "clean poll stays correct" `Quick test_clean_poll_stays_correct;
    ] )
