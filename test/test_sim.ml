(* Sim-level API tests: assembly, accessors, timer lifecycle, manual
   driving, and pretty-printer coverage for the public value types. *)

open Adgc_algebra
open Adgc_workload
module Sim = Adgc.Sim
module Config = Adgc.Config
module Cluster = Adgc_rt.Cluster

let check = Alcotest.check

let test_accessor_mismatch_raises () =
  let sim = Sim.create ~config:(Config.quick ()) () in
  ignore (Sim.detector sim 0 : Adgc_dcda.Detector.t);
  Alcotest.check_raises "backtracker on dcda sim"
    (Invalid_argument "Sim.backtracker: not running the baseline") (fun () ->
      ignore (Sim.backtracker sim 0));
  let config = { (Config.quick ()) with Config.detector = Config.Backtrack } in
  let sim = Sim.create ~config () in
  ignore (Sim.backtracker sim 0 : Adgc_baseline.Backtrack.t);
  Alcotest.check_raises "detector on backtrack sim"
    (Invalid_argument "Sim.detector: not running the DCDA") (fun () ->
      ignore (Sim.detector sim 0))

let test_start_is_idempotent () =
  let sim = Sim.create ~config:(Config.quick ()) () in
  Sim.start sim;
  Sim.start sim;
  Sim.run_for sim 2_000;
  let runs = Adgc_util.Stats.get (Sim.stats sim) "lgc.runs" in
  (* 4 procs, period 300, 2000 ticks -> ~6 runs each; double timers
     would show ~2x. *)
  check Alcotest.bool "single set of timers" true (runs <= 4 * 7)

let test_stop_then_restart () =
  let sim = Sim.create ~config:(Config.quick ()) () in
  Sim.start sim;
  Sim.run_for sim 1_000;
  Sim.stop sim;
  let frozen = Adgc_util.Stats.get (Sim.stats sim) "snapshot.taken" in
  Sim.run_for sim 5_000;
  check Alcotest.int "no snapshots while stopped" frozen
    (Adgc_util.Stats.get (Sim.stats sim) "snapshot.taken");
  Sim.start sim;
  Sim.run_for sim 2_000;
  check Alcotest.bool "resumed" true
    (Adgc_util.Stats.get (Sim.stats sim) "snapshot.taken" > frozen)

let test_scan_all_counts () =
  let sim = Sim.create ~config:(Config.quick ~n_procs:3 ()) () in
  let _r = Topology.ring (Sim.cluster sim) ~procs:[ 0; 1; 2 ] in
  Sim.run_for sim 1_000;
  Sim.snapshot_all sim;
  let started = Sim.scan_all sim in
  (* One candidate scion per process. *)
  check Alcotest.int "three detections" 3 started

let test_reports_sorted_by_time () =
  let sim = Sim.create ~config:(Config.quick ~n_procs:6 ()) () in
  let _r1 = Topology.ring (Sim.cluster sim) ~procs:[ 0; 1 ] in
  let _r2 = Topology.ring (Sim.cluster sim) ~procs:[ 2; 3 ] in
  let _r3 = Topology.ring (Sim.cluster sim) ~procs:[ 4; 5 ] in
  Sim.start sim;
  Sim.run_for sim 30_000;
  let times = List.map (fun r -> r.Adgc_dcda.Report.concluded_time) (Sim.reports sim) in
  check Alcotest.bool "some reports" true (times <> []);
  check Alcotest.bool "sorted" true (List.sort compare times = times)

let test_live_oids_matches_ground_truth () =
  let sim = Sim.create ~config:(Config.quick ~n_procs:3 ()) () in
  let built = Topology.rooted_ring (Sim.cluster sim) ~procs:[ 0; 1; 2 ] in
  let live = Sim.live_oids sim in
  check Alcotest.int "three live" 3 (Oid.Set.cardinal live);
  check Alcotest.bool "contains the root" true
    (Oid.Set.mem (Topology.oid built "n0_0") live)

(* ------------------------------------------------------------------ *)
(* Pretty-printer coverage for public value types *)

let test_pp_coverage () =
  let oid = Oid.make ~owner:(Proc_id.of_int 2) ~serial:7 in
  check Alcotest.string "oid" "#7@P2" (Oid.to_string oid);
  let key = Ref_key.make ~src:(Proc_id.of_int 1) ~target:oid in
  check Alcotest.string "ref" "P1->#7@P2" (Ref_key.to_string key);
  let alg = Algebra.add_exn Algebra.empty Algebra.Source key ~ic:3 in
  check Alcotest.string "algebra" "{{P1->#7@P2:3} -> {}}" (Algebra.to_string alg);
  let id = Detection_id.make ~initiator:(Proc_id.of_int 1) ~seq:9 in
  let cdm = Cdm.make ~id ~algebra:alg ~frontier:key ~hops:2 ~budget:8 in
  let s = Format.asprintf "%a" Cdm.pp cdm in
  check Alcotest.bool "cdm pp mentions id" true
    (Astring_contains.contains s "D9@P1");
  ignore (Format.asprintf "%a" Btmsg.pp (Btmsg.Query { trace = { Btmsg.initiator = Proc_id.of_int 0; seq = 1 }; subject = key; visited = [] }) : string);
  ignore (Format.asprintf "%a" Hmsg.pp (Hmsg.Threshold { value = 5 }) : string)

let test_report_span () =
  let oid p s = Oid.make ~owner:(Proc_id.of_int p) ~serial:s in
  let key src target = Ref_key.make ~src:(Proc_id.of_int src) ~target in
  let report =
    {
      Adgc_dcda.Report.id = Detection_id.make ~initiator:(Proc_id.of_int 0) ~seq:0;
      concluded_at = Proc_id.of_int 0;
      concluded_time = 0;
      proven = [ key 0 (oid 1 0); key 1 (oid 2 0); key 2 (oid 0 0) ];
      hops = 3;
      deleted_here = [];
      lineage = [];
    }
  in
  check Alcotest.int "span 3" 3 (Adgc_dcda.Report.span report)

let test_inspect_summary_line () =
  let cluster = Cluster.create ~n:2 () in
  let _r = Topology.rooted_ring cluster ~procs:[ 0; 1 ] in
  let line = Inspect.summary_line cluster in
  check Alcotest.bool "mentions objects" true (Astring_contains.contains line "objects=2");
  check Alcotest.bool "mentions garbage" true (Astring_contains.contains line "garbage=0")

let test_teardown_detaches_observers () =
  let config = { (Config.quick ~n_procs:3 ()) with Config.telemetry = true } in
  let sim = Sim.create ~config () in
  let cluster = Sim.cluster sim in
  let oracle = Adgc_check.Oracle.install cluster in
  let sampler = Metrics.sample_every cluster ~period:500 in
  let _r = Topology.ring cluster ~procs:[ 0; 1; 2 ] in
  Sim.start sim;
  Sim.run_for sim 3_000;
  check Alcotest.bool "sampling while running" true (Metrics.sampling sampler);
  check Alcotest.bool "oracle running" false (Adgc_check.Oracle.stopped oracle);
  Sim.teardown sim;
  check Alcotest.bool "cluster torn down" true (Cluster.torn_down cluster);
  check Alcotest.bool "oracle auto-stopped" true (Adgc_check.Oracle.stopped oracle);
  check Alcotest.bool "sampler auto-detached" false (Metrics.sampling sampler);
  (* Driving the scheduler past teardown must not fire detached
     observers (this used to raise from the sampler's timer). *)
  let n_samples = List.length (Metrics.samples sampler) in
  Sim.run_for sim 5_000;
  check Alcotest.int "no further samples" n_samples (List.length (Metrics.samples sampler));
  (* All of these are idempotent, in any order. *)
  Sim.teardown sim;
  Adgc_check.Oracle.stop oracle;
  Metrics.stop_sampling sampler;
  check Alcotest.bool "still torn down" true (Cluster.torn_down cluster);
  (* Teardown closed the run span (exactly one, exactly once). *)
  let spans = Adgc_obs.Span.spans (Sim.obs sim) in
  match List.filter (fun s -> s.Adgc_obs.Span.kind = Adgc_obs.Span.Run) spans with
  | [ r ] -> check Alcotest.bool "run span closed" true (r.Adgc_obs.Span.end_time <> None)
  | runs -> Alcotest.failf "expected one run span, got %d" (List.length runs)

let suite =
  ( "sim",
    [
      Alcotest.test_case "accessor mismatch raises" `Quick test_accessor_mismatch_raises;
      Alcotest.test_case "start is idempotent" `Quick test_start_is_idempotent;
      Alcotest.test_case "stop then restart" `Quick test_stop_then_restart;
      Alcotest.test_case "scan_all counts" `Quick test_scan_all_counts;
      Alcotest.test_case "reports sorted by time" `Quick test_reports_sorted_by_time;
      Alcotest.test_case "live_oids ground truth" `Quick test_live_oids_matches_ground_truth;
      Alcotest.test_case "pretty-printer coverage" `Quick test_pp_coverage;
      Alcotest.test_case "report span" `Quick test_report_span;
      Alcotest.test_case "inspect summary line" `Quick test_inspect_summary_line;
      Alcotest.test_case "teardown detaches oracle and sampler" `Quick
        test_teardown_detaches_observers;
    ] )
