(* Tests for the Hughes timestamp baseline: it collects distributed
   cycles on a healthy system, spares live ones, and — the property
   the paper builds its case on — stalls globally as soon as one
   process stops participating. *)

open Adgc_rt
open Adgc_workload
module Hughes = Adgc_baseline.Hughes
module Stats = Adgc_util.Stats

let check = Alcotest.check

(* Hughes runs on top of the acyclic DGC only (no DCDA). *)
let mk ?(n = 4) () =
  let config =
    {
      (Runtime.default_config ()) with
      Runtime.lgc_period = 300;
      new_set_period = 350;
      scion_grace = 3_000;
    }
  in
  let cluster = Cluster.create ~config ~n () in
  Cluster.start_gc cluster;
  let hughes = Hughes.install ~round_period:200 cluster in
  (cluster, hughes)

let test_hughes_collects_garbage_ring () =
  let cluster, hughes = mk ~n:3 () in
  let _built = Topology.ring cluster ~procs:[ 0; 1; 2 ] in
  Cluster.run_for cluster 60_000;
  check Alcotest.int "ring reclaimed" 0 (Cluster.total_objects cluster);
  check Alcotest.bool "threshold advanced" true (Hughes.threshold hughes > 0);
  check Alcotest.bool "scions deleted by hughes" true
    (Stats.get (Cluster.stats cluster) "hughes.scions_deleted" >= 1)

let test_hughes_spares_live_ring () =
  let cluster, hughes = mk ~n:3 () in
  let _built = Topology.rooted_ring cluster ~procs:[ 0; 1; 2 ] in
  Cluster.run_for cluster 60_000;
  check Alcotest.int "live ring intact" 3 (Cluster.total_objects cluster);
  check Alcotest.bool "threshold still advanced" true (Hughes.threshold hughes > 0)

let test_hughes_mixed () =
  let cluster, _hughes = mk ~n:4 () in
  let _garbage = Topology.ring cluster ~procs:[ 0; 1; 2; 3 ] in
  let _live = Topology.rooted_ring cluster ~procs:[ 0; 2 ] in
  Cluster.run_for cluster 80_000;
  check Alcotest.int "only live ring remains" 2 (Cluster.total_objects cluster)

let test_hughes_mutual_cycles () =
  let cluster, _hughes = mk ~n:6 () in
  let _built = Topology.fig4 cluster in
  Cluster.run_for cluster 100_000;
  check Alcotest.int "mutual cycles reclaimed" 0 (Cluster.total_objects cluster)

let test_hughes_stalls_on_silent_process () =
  (* The paper's criticism, measured: crash an UNRELATED process; the
     garbage ring among the survivors is never reclaimed because the
     global minimum cannot advance. *)
  let cluster, hughes = mk ~n:4 () in
  let _built = Topology.ring cluster ~procs:[ 0; 1; 2 ] in
  Cluster.crash cluster 3;
  Cluster.run_for cluster 80_000;
  check Alcotest.int "garbage ring leaks" 3 (Cluster.total_objects cluster);
  check Alcotest.bool "coordinator stalled" true (Hughes.stalls hughes > 10);
  check Alcotest.int "threshold frozen" (-1) (Hughes.threshold hughes)

let test_dcda_does_not_stall_on_silent_process () =
  (* Control for the previous test: same scenario, DCDA instead of
     Hughes — the crash of an unrelated process changes nothing. *)
  let config = Adgc.Config.quick ~n_procs:4 () in
  let sim = Adgc.Sim.create ~config () in
  let cluster = Adgc.Sim.cluster sim in
  let _built = Topology.ring cluster ~procs:[ 0; 1; 2 ] in
  Cluster.crash cluster 3;
  Adgc.Sim.start sim;
  check Alcotest.bool "DCDA reclaims regardless" true
    (Adgc.Sim.run_until_clean ~max_time:100_000 sim)

let test_hughes_stamps_advance_for_live () =
  let cluster, hughes = mk ~n:2 () in
  let holder = Mutator.alloc cluster ~proc:0 () in
  let target = Mutator.alloc cluster ~proc:1 () in
  Mutator.add_root cluster holder;
  Mutator.wire_remote cluster ~holder ~target;
  let key = Adgc_algebra.Ref_key.make ~src:(Adgc_algebra.Proc_id.of_int 0) ~target:target.Heap.oid in
  Cluster.run_for cluster 5_000;
  let s1 = Hughes.scion_stamp hughes ~proc:1 key in
  Cluster.run_for cluster 5_000;
  let s2 = Hughes.scion_stamp hughes ~proc:1 key in
  match (s1, s2) with
  | Some a, Some b -> check Alcotest.bool "stamps refresh for live scions" true (b > a)
  | _ -> Alcotest.fail "stamps missing"

let test_hughes_via_sim () =
  let config = Adgc.Config.quick ~n_procs:3 () in
  let config = { config with Adgc.Config.detector = Adgc.Config.Hughes_gc } in
  let sim = Adgc.Sim.create ~config () in
  let _built = Topology.ring (Adgc.Sim.cluster sim) ~procs:[ 0; 1; 2 ] in
  Adgc.Sim.start sim;
  check Alcotest.bool "sim-driven hughes cleans" true
    (Adgc.Sim.run_until_clean ~max_time:300_000 sim);
  Adgc.Sim.stop sim;
  check Alcotest.int "no DCDA reports" 0 (List.length (Adgc.Sim.reports sim))

let suite =
  ( "hughes",
    [
      Alcotest.test_case "collects a garbage ring" `Quick test_hughes_collects_garbage_ring;
      Alcotest.test_case "spares a live ring" `Quick test_hughes_spares_live_ring;
      Alcotest.test_case "mixed live and garbage" `Quick test_hughes_mixed;
      Alcotest.test_case "mutual cycles" `Quick test_hughes_mutual_cycles;
      Alcotest.test_case "stalls when one process is silent" `Quick
        test_hughes_stalls_on_silent_process;
      Alcotest.test_case "DCDA control: no stall" `Quick test_dcda_does_not_stall_on_silent_process;
      Alcotest.test_case "live stamps keep advancing" `Quick test_hughes_stamps_advance_for_live;
      Alcotest.test_case "hughes through Sim" `Quick test_hughes_via_sim;
    ] )
