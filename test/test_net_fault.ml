(* Transport-fault behaviour of the socket driver: a SIGKILLed node
   must be detected and survived, and a severed link must reconnect
   and replay without the duplicate deliveries corrupting counters
   (Dispatch.deliver's seq dedup, backed by Process.note_delivery /
   prune_delivered, is what keeps the oracle clean here). *)

open Adgc_algebra
module Scenario = Adgc_net.Scenario
module Coordinator = Adgc_net.Coordinator
module Gather = Adgc_net.Gather
module Stats = Adgc_util.Stats

let check = Alcotest.check

let violations = Alcotest.list (Alcotest.testable Adgc_check.Invariant.pp ( = ))

let kill_scenario ~candidates =
  (* Pairs: each garbage cycle spans exactly one pair of ranks, so
     killing rank 2 floats only its own pair's cycle and the other
     pairs must still be reclaimed by the survivors. *)
  Scenario.make ~topology:Scenario.Pairs ~procs:6 ~seed:7 ~candidates ()

let run_kill_node scenario () =
  let opts =
    Coordinator.options ~tick_us:400 ~deadline_s:30.
      ~spawn:(Test_net_conformance.spawn ())
      ~faults:[ Coordinator.Kill { rank = 2; after_s = 0.2 } ]
      scenario
  in
  let r = Coordinator.run opts in
  check Alcotest.bool "killed rank declared dead" true (List.mem 2 r.Coordinator.dead);
  check violations "oracle clean over survivors" [] r.Coordinator.verdict.Gather.violations;
  (* The completion target really did shrink: the dead pair's cycle is
     floating garbage, not owed by anybody. *)
  let all_garbage = (Scenario.expected scenario).Scenario.garbage in
  check Alcotest.bool "dead rank's component excluded from target" true
    (Oid.Set.cardinal r.Coordinator.required < Oid.Set.cardinal all_garbage);
  check Alcotest.bool "required matches garbage_excluding" true
    (Oid.Set.equal r.Coordinator.required (Scenario.garbage_excluding scenario ~dead:[ 2 ]));
  check Alcotest.bool "survivors reclaimed everything still owed" true
    (Oid.Set.subset r.Coordinator.required r.Coordinator.verdict.Gather.reclaimed);
  check Alcotest.bool "run ok" true (Coordinator.ok r)

let test_drop_link_reconnects () =
  let scenario = Scenario.make ~topology:Scenario.Star ~procs:5 ~seed:7 () in
  let opts =
    Coordinator.options ~deadline_s:30.
      ~spawn:(Test_net_conformance.spawn ())
      ~faults:[ Coordinator.Drop { rank = 1; peer = 0; after_s = 0.1 } ]
      scenario
  in
  let r = Coordinator.run opts in
  check Alcotest.(list int) "nobody died from a dropped link" [] r.Coordinator.dead;
  (* Reconnect replays the backlog; any duplicates must be absorbed by
     the receiver's seq dedup — a double-counted invocation would
     surface as Ic_regression in the gathered-state oracle. *)
  check violations "oracle clean after reconnect + replay" [] r.Coordinator.verdict.Gather.violations;
  check Alcotest.bool "all garbage reclaimed despite the drop" true
    (Oid.Set.subset r.Coordinator.required r.Coordinator.verdict.Gather.reclaimed);
  check Alcotest.bool "wire traffic flowed" true (Stats.get r.Coordinator.stats "net.wire.sent" > 0);
  check Alcotest.bool "run ok" true (Coordinator.ok r)

let suite =
  ( "net_fault",
    [
      Alcotest.test_case "kill -9 a node mid-run" `Slow
        (run_kill_node (kill_scenario ~candidates:Adgc.Config.Scan_candidates));
      (* Same kill under incremental candidates: survivors keep exact
         labels (the per-node audit duty would flag drift) and reclaim
         the same still-owed set. *)
      Alcotest.test_case "kill -9 a node, incremental candidates" `Slow
        (run_kill_node (kill_scenario ~candidates:Adgc.Config.Incremental_candidates));
      Alcotest.test_case "dropped link reconnects and replays" `Slow test_drop_link_reconnects;
    ] )
