(* Telemetry section: what the observability layer (spans + lineage +
   per-link byte accounting) costs when on, and that it costs nothing
   when off (PR 3's ~15% claim). *)

module Sim = Adgc.Sim
module Config = Adgc.Config
module Table = Adgc_util.Table
module Topology = Adgc_workload.Topology
open Bench_common

let telemetry_run ~telemetry ~seed =
  let config = Config.quick ~seed ~n_procs:6 () in
  let config = { config with Config.telemetry } in
  let sim = Sim.create ~config () in
  let cluster = Sim.cluster sim in
  let _g1 = Topology.ring cluster ~procs:[ 0; 1; 2 ] in
  let _g2 = Topology.ring ~objs_per_proc:2 cluster ~procs:[ 3; 4; 5 ] in
  let _live = Topology.rooted_ring cluster ~procs:[ 0; 3 ] in
  let churn = Adgc_workload.Churn.create ~cluster ~rng:(Adgc_util.Rng.create 11) () in
  Adgc_workload.Churn.run churn ~steps:400 ~every:37;
  Sim.start sim;
  let (), ms = wall_ms (fun () -> Sim.run_for sim 60_000) in
  Sim.teardown sim;
  (sim, ms)

let run recorder =
  section "telemetry: observability overhead (6 procs, 2 garbage rings + churn)";
  let reps = if smoke () then 3 else 9 in
  ignore (telemetry_run ~telemetry:false ~seed:5 : Sim.t * float);
  ignore (telemetry_run ~telemetry:true ~seed:5 : Sim.t * float);
  let pairs =
    List.init reps (fun i ->
        Gc.compact ();
        let _, off = telemetry_run ~telemetry:false ~seed:(5 + i) in
        let _, on = telemetry_run ~telemetry:true ~seed:(5 + i) in
        (off, on))
  in
  let off = median (List.map fst pairs) in
  let on = median (List.map snd pairs) in
  let overhead = median (List.map (fun (o, n) -> pct o n) pairs) in
  let sim, _ = telemetry_run ~telemetry:true ~seed:5 in
  let spans = List.length (Adgc_obs.Span.spans (Sim.obs sim)) in
  let detections = List.length (Adgc_obs.Lineage.detections (Sim.lineage sim)) in
  Table.print
    ~header:[ "telemetry"; "60k ticks"; "overhead"; "spans"; "detections traced" ]
    ~rows:
      [
        [ "off"; Printf.sprintf "%.2f ms" off; "-"; "0"; "0" ];
        [
          "on";
          Printf.sprintf "%.2f ms" on;
          Printf.sprintf "%.2f%%" overhead;
          string_of_int spans;
          string_of_int detections;
        ];
      ]
    ();
  print_endline "off is the shipping default: disabled spans are a single load+branch,";
  print_endline "so the paths instrumented for this layer stay at their previous cost";
  let config = [ "telemetry"; "procs=6"; "time=60000"; string_of_int reps ] in
  timing recorder ~section:"telemetry" ~name:"telemetry.off_ms" ~unit_:"ms" ~config
    (List.map fst pairs);
  timing recorder ~section:"telemetry" ~name:"telemetry.on_ms" ~unit_:"ms" ~config
    (List.map snd pairs);
  timing recorder ~section:"telemetry" ~name:"telemetry.overhead_pct" ~unit_:"%" ~config
    (List.map (fun (o, n) -> pct o n) pairs);
  det recorder ~section:"telemetry" ~name:"telemetry.spans" ~unit_:"spans"
    ~direction:Sample.Higher_better ~config (float_of_int spans);
  det recorder ~section:"telemetry" ~name:"telemetry.detections_traced" ~unit_:"detections"
    ~direction:Sample.Higher_better ~config (float_of_int detections)
