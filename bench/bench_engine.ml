(* Engine section: the domain-parallel execution engine vs the
   sequential one on the process-local bulk phases (snapshot
   summarization + CDM scans), with the byte-equality contract
   checked on every run.

   Numbers are honest about the substrate: the document records the
   host's core count and worker-domain count, and on a single-core
   host (this repo's usual CI container) the parallel engine can only
   lose — the point of the run there is the equality assertion, not
   the speedup.  Set ADGC_POOL_DOMAINS to choose the worker count. *)

module Sim = Adgc.Sim
module Config = Adgc.Config
module Table = Adgc_util.Table
module Topology = Adgc_workload.Topology
open Bench_common

let engine_run ~engine ~procs ~objects ~seed ~reps =
  let config = { (Config.quick ~seed ~n_procs:procs ()) with Config.engine } in
  let sim = Sim.create ~config () in
  let cluster = Sim.cluster sim in
  let rng = Adgc_util.Rng.create (seed + 1) in
  let _built =
    Topology.random cluster ~rng ~objects ~edges:(2 * objects) ~remote_prob:0.05
      ~root_prob:0.02
  in
  let round () =
    Sim.snapshot_all sim;
    ignore (Sim.scan_all sim : int)
  in
  let samples = times ~reps round in
  Sim.teardown sim;
  let metrics = Adgc_util.Json.to_string (Adgc_obs.Export.metrics_document (Sim.stats sim)) in
  let spans = Adgc_obs.Export.span_digest (Sim.obs sim) in
  (samples, metrics, spans)

let run recorder =
  section "E22: execution engines — sequential vs domain-parallel bulk phases";
  let procs, objects = if smoke () then (8, 4_000) else (64, 100_000) in
  let reps = if smoke () then 3 else 5 in
  let seed = 23 in
  let seq, seq_metrics, seq_spans = engine_run ~engine:Config.Seq ~procs ~objects ~seed ~reps in
  let par, par_metrics, par_spans = engine_run ~engine:Config.Par ~procs ~objects ~seed ~reps in
  let seq_ms = median seq and par_ms = median par in
  let workers = Adgc_util.Pool.size (Adgc_util.Pool.shared ()) - 1 in
  Adgc_util.Pool.shutdown_shared ();
  let cores = Domain.recommended_domain_count () in
  let metrics_match = seq_metrics = par_metrics in
  let spans_match = seq_spans = par_spans in
  Table.print
    ~header:[ "engine"; "snapshot+scan round"; "speedup" ]
    ~rows:
      [
        [ "seq"; Printf.sprintf "%.2f ms" seq_ms; "1.00x" ];
        [ "par"; Printf.sprintf "%.2f ms" par_ms; Printf.sprintf "%.2fx" (seq_ms /. par_ms) ];
      ]
    ();
  Printf.printf
    "%d procs, %d objects; host: %d core%s, %d worker domain%s\n\
     byte-equality: metrics %s, span digest %s\n"
    procs objects cores
    (if cores = 1 then "" else "s")
    workers
    (if workers = 1 then "" else "s")
    (if metrics_match then "identical" else "DIFFER")
    (if spans_match then "identical" else "DIFFER");
  let config =
    [ "engine"; string_of_int procs; string_of_int objects; string_of_int reps;
      string_of_int seed ]
  in
  timing recorder ~section:"engine" ~name:"engine.seq.round_ms" ~unit_:"ms" ~config seq;
  timing recorder ~section:"engine" ~name:"engine.par.round_ms" ~unit_:"ms" ~config par;
  timing recorder ~section:"engine" ~name:"engine.par.speedup" ~unit_:"x"
    ~direction:Sample.Higher_better ~config
    [ seq_ms /. par_ms ];
  det recorder ~section:"engine" ~name:"engine.identical.metrics" ~unit_:"bool"
    ~direction:Sample.Higher_better ~config
    (if metrics_match then 1.0 else 0.0);
  det recorder ~section:"engine" ~name:"engine.identical.span_digest" ~unit_:"bool"
    ~direction:Sample.Higher_better ~config
    (if spans_match then 1.0 else 0.0);
  if not (metrics_match && spans_match) then
    failwith "engine equivalence violated: par output differs from seq"
