(* Scale section (E26): the clique curves and the hierarchical-group
   aggregation cut, small enough to gate in CI but shaped exactly like
   the 256→1024-proc runs the scale job drives through the CLI.

   Three legs per cell:
     - flat      : plain clique routing (the historical configuration)
     - flat+acct : same routing, but [group_size] set with relays off —
                   the honest baseline that counts how much DGC
                   control traffic crosses group boundaries when
                   nothing aggregates it (only constructible through
                   the runtime record: [Config.with_groups] always
                   couples relaying to the size)
     - grouped   : the real overlay, relays on
   The reclamation outcome must be identical across all three (the
   overlay reroutes, it must not change results); the interesting
   series are the cross-group DGC envelope cut and the usual
   ticks/messages/live-words columns.  A final pair of bulk rounds
   measures the parallel engine's chunked-commit speedup on the same
   population — deterministic series gate tightly, wall-clock ones are
   timing-class. *)

module Sim = Adgc.Sim
module Config = Adgc.Config
module Cluster = Adgc_rt.Cluster
module Heap = Adgc_rt.Heap
module Runtime = Adgc_rt.Runtime
module Process = Adgc_rt.Process
module Topology = Adgc_workload.Topology
module Stats = Adgc_util.Stats
module Table = Adgc_util.Table
module Rng = Adgc_util.Rng
open Bench_common

type leg = Flat | Flat_accounting | Grouped

let leg_name = function Flat -> "flat" | Flat_accounting -> "flat+acct" | Grouped -> "grouped"

let config_of ~seed ~procs ~groups ~engine = function
  | Flat ->
      let c = Config.quick ~seed ~n_procs:procs () in
      { c with Config.engine }
  | Flat_accounting ->
      let c = Config.quick ~seed ~n_procs:procs () in
      let c = { c with Config.engine } in
      {
        c with
        Config.runtime =
          { c.Config.runtime with Runtime.group_size = groups; group_relay = false };
      }
  | Grouped ->
      let c = Config.quick ~seed ~n_procs:procs () in
      Config.with_groups { c with Config.engine } groups

type outcome = {
  clean : bool;
  ticks : int;
  msgs_per_proc : float;
  dense_words : int;
  xgroup_dgc : int;
  survivors : int;
  wall_ms : float;
}

let run_leg ~seed ~procs ~objects ~groups ~engine leg =
  let config = config_of ~seed ~procs ~groups ~engine leg in
  let sim = Sim.create ~config () in
  let cluster = Sim.cluster sim in
  let _built =
    Topology.random cluster
      ~rng:(Rng.create (seed + 1))
      ~objects ~edges:(2 * objects) ~remote_prob:0.35 ~root_prob:0.15
  in
  (* Peak live-words proxy: the dense-trace arenas right after the
     build, when the population is at its maximum. *)
  let rt = Cluster.rt cluster in
  let dense_words = ref 0 in
  Array.iter
    (fun (p : Process.t) ->
      ignore (Heap.dense_sync p.Process.heap : int);
      dense_words := !dense_words + Heap.dense_words p.Process.heap)
    rt.Runtime.procs;
  Sim.start sim;
  let clean, wall_ms = wall_ms (fun () -> Sim.run_until_clean ~step:1_000 ~max_time:600_000 sim) in
  let stats = Sim.stats sim in
  let ticks = Sim.now sim in
  let msgs = Stats.get stats "net.msg.sent" in
  let xgroup_dgc = Stats.get stats "net.msg.xgroup.dgc" in
  let survivors =
    Array.fold_left
      (fun acc (p : Process.t) -> acc + Heap.size p.Process.heap)
      0 rt.Runtime.procs
  in
  Sim.teardown sim;
  {
    clean;
    ticks;
    msgs_per_proc = float_of_int msgs /. float_of_int procs;
    dense_words = !dense_words;
    xgroup_dgc;
    survivors;
    wall_ms;
  }

(* Bulk-phase parallel speedup: the same population snapshot-and-scans
   one full round under each engine.  This is the surface
   [Pool.run_chunked] pipelines, so it is where the chunked commits
   must show up; on a 1–2 core CI runner the ratio hovers near 1 and
   the series is timing-class with a generous gate. *)
let bulk_round_ms ~seed ~procs ~objects ~engine ~reps =
  let config = { (Config.quick ~seed ~n_procs:procs ()) with Config.engine } in
  let sim = Sim.create ~config () in
  let cluster = Sim.cluster sim in
  let _built =
    Topology.random cluster
      ~rng:(Rng.create (seed + 1))
      ~objects ~edges:(2 * objects) ~remote_prob:0.35 ~root_prob:0.15
  in
  let ms =
    time_reps ~reps (fun () ->
        Sim.snapshot_all sim;
        ignore (Sim.scan_all sim : int))
  in
  Sim.teardown sim;
  ms

let run recorder =
  section "E26: scale curves and hierarchical process groups";
  let seed = 11 in
  (* ADGC_SCALE_{PROCS,OBJECTS,GROUPS} override the full-mode sizes:
     the E26 curves (256–1024 procs) are produced by sweeping these,
     while CI's smoke leg stays pinned and cheap. *)
  let env_int var default =
    match Option.bind (Sys.getenv_opt var) int_of_string_opt with
    | Some v when v > 0 -> v
    | Some _ | None -> default
  in
  let procs, objects, groups, reps =
    if smoke () then (16, 2_000, 4, 2)
    else
      ( env_int "ADGC_SCALE_PROCS" 64,
        env_int "ADGC_SCALE_OBJECTS" 50_000,
        env_int "ADGC_SCALE_GROUPS" 8,
        3 )
  in
  let engine = Config.Seq in
  let legs = [ Flat; Flat_accounting; Grouped ] in
  let outcomes = List.map (fun l -> (l, run_leg ~seed ~procs ~objects ~groups ~engine l)) legs in
  let flat = List.assoc Flat outcomes in
  let acct = List.assoc Flat_accounting outcomes in
  let grouped = List.assoc Grouped outcomes in
  let config_digest =
    [ "scale"; string_of_int procs; string_of_int objects; string_of_int groups;
      string_of_bool (smoke ()) ]
  in
  List.iter
    (fun (l, o) ->
      let name fmt = Printf.sprintf "scale.%s.%s" (leg_name l) fmt in
      det recorder ~section:"scale" ~name:(name "ticks") ~unit_:"ticks" ~config:config_digest
        (float_of_int o.ticks);
      det recorder ~section:"scale" ~name:(name "msgs_per_proc") ~unit_:"msgs"
        ~config:config_digest o.msgs_per_proc;
      det recorder ~section:"scale" ~name:(name "dense_words") ~unit_:"words"
        ~config:config_digest (float_of_int o.dense_words);
      timing recorder ~section:"scale" ~name:(name "wall_ms") ~unit_:"ms" ~config:config_digest
        [ o.wall_ms ])
    outcomes;
  (* The aggregation claim: grouped routing cuts cross-group DGC
     envelopes vs the honest flat-accounting baseline.  At this bench
     scale the cut is real but modest; the ≥4x figure belongs to the
     256-proc CLI runs (EXPERIMENTS.md E26). *)
  let cut =
    float_of_int (Int.max 1 acct.xgroup_dgc) /. float_of_int (Int.max 1 grouped.xgroup_dgc)
  in
  det recorder ~section:"scale" ~name:"scale.grouped.xgroup_cut" ~unit_:"ratio"
    ~direction:Sample.Higher_better ~config:config_digest cut;
  det recorder ~section:"scale" ~name:"scale.identical.survivors" ~unit_:"bool"
    ~config:config_digest
    (if flat.survivors = grouped.survivors && acct.survivors = grouped.survivors then 1.0
     else 0.0);
  let seq_ms = bulk_round_ms ~seed ~procs ~objects ~engine:Config.Seq ~reps in
  let par_ms = bulk_round_ms ~seed ~procs ~objects ~engine:Config.Par ~reps in
  let speedup = seq_ms /. Float.max 1e-6 par_ms in
  timing recorder ~section:"scale" ~name:"scale.par.bulk_speedup" ~unit_:"x"
    ~direction:Sample.Higher_better ~config:config_digest [ speedup ];
  Table.print
    ~header:[ "leg"; "clean"; "ticks"; "msgs/proc"; "dense words"; "xgroup dgc"; "wall" ]
    ~rows:
      (List.map
         (fun (l, o) ->
           [
             leg_name l;
             string_of_bool o.clean;
             string_of_int o.ticks;
             Printf.sprintf "%.1f" o.msgs_per_proc;
             string_of_int o.dense_words;
             string_of_int o.xgroup_dgc;
             Printf.sprintf "%.0f ms" o.wall_ms;
           ])
         outcomes)
    ();
  Printf.printf "cross-group DGC cut (flat+acct vs grouped): %.2fx\n" cut;
  Printf.printf "bulk-phase par speedup on %d cores: %.2fx (seq %.1f ms, par %.1f ms)\n"
    (Domain.recommended_domain_count ()) speedup seq_ms par_ms
