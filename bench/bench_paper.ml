(* The paper-evaluation sections (see DESIGN.md section 4 for the
   experiment index).  These regenerate the paper's tables and
   ablations for humans to read; they are print-only and feed no
   samples to the perf recorder — the gated series live in the
   tracer/telemetry/engine/net/detection sections.

   Absolute numbers differ from the paper (its substrate was a 1.6 GHz
   laptop running Rotor; ours is a simulator), but every table prints
   the same rows and the shapes are comparable; EXPERIMENTS.md records
   the side-by-side. *)

module Sim = Adgc.Sim
module Config = Adgc.Config
module Cluster = Adgc_rt.Cluster
module Network = Adgc_rt.Network
module Runtime = Adgc_rt.Runtime
module Mutator = Adgc_rt.Mutator
module Heap = Adgc_rt.Heap
module Rmi = Adgc_rt.Rmi
module Detector = Adgc_dcda.Detector
module Policy = Adgc_dcda.Policy
module Report = Adgc_dcda.Report
module Backtrack = Adgc_baseline.Backtrack
module Summarize = Adgc_snapshot.Summarize
module Graph_image = Adgc_snapshot.Graph_image
module Stats = Adgc_util.Stats
module Table = Adgc_util.Table
module Topology = Adgc_workload.Topology
open Adgc_algebra
open Bench_common

(* ------------------------------------------------------------------ *)
(* E1 / Table 1: RMI cost, plain runtime vs DGC-extended.              *)

let run_rmi_batch ~dgc ~calls =
  let net_config = Network.default_config () in
  net_config.Network.latency_min <- 1;
  net_config.Network.latency_max <- 1;
  let config = { (Runtime.default_config ()) with Runtime.dgc_enabled = dgc; rmi_marshal = true } in
  let cluster = Cluster.create ~config ~net_config ~n:2 () in
  let caller = Mutator.alloc cluster ~proc:0 () in
  let callee = Mutator.alloc cluster ~proc:1 () in
  Mutator.add_root cluster caller;
  Mutator.add_root cluster callee;
  Mutator.wire_remote cluster ~holder:caller ~target:callee;
  (* Pre-allocate the 10 fresh argument objects of every call so the
     timed region is the invocation path itself, as in the paper's
     setup (arguments exist; exporting them is what is measured). *)
  let p0_heap = (Cluster.proc cluster 0).Adgc_rt.Process.heap in
  let args =
    Array.init calls (fun _ -> List.init 10 (fun _ -> (Mutator.alloc cluster ~proc:0 ()).Heap.oid))
  in
  Array.iter (fun l -> List.iter (Heap.add_root p0_heap) l) args;
  let rt = Cluster.rt cluster in
  let run () =
    for i = 0 to calls - 1 do
      (* Synchronous calls: the paper's client blocks on each of the
         series of invocations. *)
      Rmi.call rt ~src:(Proc_id.of_int 0) ~target:callee.Heap.oid ~args:args.(i)
        ~behavior:Mutator.store_args ();
      ignore (Cluster.drain cluster : int)
    done
  in
  let (), ms = wall_ms run in
  ms

let bench_table1 () =
  section "E1 / Table 1: RMI cost, original runtime vs DGC-extended";
  Printf.printf "(each call exports/imports 10 fresh references; client and server simulated)\n";
  let rows =
    List.map
      (fun calls ->
        (* Interleave the two modes and take medians of the paired
           measurements so host-level drift cancels out. *)
        ignore (run_rmi_batch ~dgc:false ~calls:5 : float);
        ignore (run_rmi_batch ~dgc:true ~calls:5 : float);
        let reps = if calls <= 100 then 11 else 7 in
        let pairs =
          List.init reps (fun _ ->
              Gc.compact ();
              let plain = run_rmi_batch ~dgc:false ~calls in
              let dgc = run_rmi_batch ~dgc:true ~calls in
              (plain, dgc))
        in
        let plain = median (List.map fst pairs) in
        let dgc = median (List.map snd pairs) in
        let overhead = median (List.map (fun (p, d) -> pct p d) pairs) in
        [
          string_of_int calls;
          Printf.sprintf "%.2f ms" plain;
          Printf.sprintf "%.2f ms" dgc;
          Printf.sprintf "%.2f%%" overhead;
        ])
      [ 10; 100; 500; 1000 ]
  in
  Table.print ~header:[ "# RMI calls"; "no DGC"; "with DGC"; "Variation" ] ~rows ();
  print_endline "paper (Rotor, P4-M 1.6GHz): 7.19% / 18.64% / 20.73% / 17.92% overhead"

(* ------------------------------------------------------------------ *)
(* E2: snapshot serialization (Rotor vs production codec, +/- stubs).  *)

let build_serialization_process ~objects ~with_stubs =
  let cluster = Cluster.create ~n:2 () in
  let p0 = Cluster.proc cluster 0 in
  let heap = p0.Adgc_rt.Process.heap in
  let chain = Array.init objects (fun _ -> Heap.alloc ~fields:2 ~payload:64 heap) in
  for i = 0 to objects - 2 do
    ignore (Heap.add_ref heap chain.(i) chain.(i + 1).Heap.oid : int)
  done;
  Heap.add_root heap chain.(0).Heap.oid;
  if with_stubs then begin
    (* One additional remote reference per object -> [objects] stubs,
       the paper's second configuration. *)
    let p1_heap = (Cluster.proc cluster 1).Adgc_rt.Process.heap in
    Array.iter
      (fun obj ->
        let remote = Heap.alloc ~fields:0 ~payload:8 p1_heap in
        Mutator.wire_remote cluster ~holder:obj ~target:remote)
      chain
  end;
  p0

let bench_serialization () =
  section "E2: snapshot (heap image) serialization";
  let objects = 10_000 in
  let codecs =
    [
      ("rotor", (module Adgc_serial.Rotor_codec : Adgc_serial.Codec.S));
      ("net", (module Adgc_serial.Net_codec : Adgc_serial.Codec.S));
    ]
  in
  let results = Hashtbl.create 8 in
  let rows =
    List.concat_map
      (fun (cname, codec) ->
        List.map
          (fun with_stubs ->
            let p = build_serialization_process ~objects ~with_stubs in
            let image = Graph_image.of_process ~include_stubs:with_stubs p in
            ignore (Adgc_serial.Codec.encode codec image : string);
            let samples =
              List.init 5 (fun _ ->
                  Gc.compact ();
                  wall_ms (fun () -> Adgc_serial.Codec.encode codec image))
            in
            let ms = median (List.map snd samples) in
            let encoded = fst (List.hd samples) in
            Hashtbl.replace results (cname, with_stubs) ms;
            [
              cname;
              (if with_stubs then Printf.sprintf "%d objs + %d stubs" objects objects
               else Printf.sprintf "%d objs" objects);
              Printf.sprintf "%.1f ms" ms;
              Printf.sprintf "%d bytes" (String.length encoded);
            ])
          [ false; true ])
      codecs
  in
  Table.print ~header:[ "codec"; "graph"; "serialize"; "size" ] ~rows ();
  let get k = Hashtbl.find results k in
  Printf.printf "stub surcharge (rotor): +%.0f%%   (paper: +73%%)\n"
    (pct (get ("rotor", false)) (get ("rotor", true)));
  Printf.printf "rotor / net ratio     : %.0fx    (paper: ~100x, 26037 ms vs 250-350 ms)\n"
    (get ("rotor", false) /. get ("net", false))

(* ------------------------------------------------------------------ *)
(* E6: detection cost vs cycle span.                                   *)

let detect_ring ~span =
  let net_config = Network.default_config () in
  net_config.Network.account_bytes <- true;
  let cluster = Cluster.create ~net_config ~n:span () in
  let rt = Cluster.rt cluster in
  let detectors =
    Array.map (fun p -> Detector.attach rt p ~policy:Policy.aggressive) rt.Runtime.procs
  in
  let built = Topology.ring cluster ~procs:(List.init span (fun i -> i)) in
  let now = Cluster.now cluster in
  Array.iteri
    (fun i d -> Detector.set_summary d (Summarize.run ~now (Cluster.proc cluster i)))
    detectors;
  let start = Cluster.now cluster in
  ignore (Detector.initiate detectors.(0) (Topology.scion_key built ~src:(span - 1) "n0_0") : bool);
  let (), wall = wall_ms (fun () -> ignore (Cluster.drain cluster : int)) in
  let stats = Cluster.stats cluster in
  let reports = Array.to_list detectors |> List.concat_map Detector.reports in
  let latency = match reports with r :: _ -> r.Report.concluded_time - start | [] -> -1 in
  (latency, Stats.get stats "net.msg.sent.cdm", Stats.get stats "net.bytes.cdm", wall)

let bench_detection_scaling () =
  section "E6: detection cost vs cycle span (one distributed cycle)";
  let rows =
    List.map
      (fun span ->
        let latency, msgs, bytes, wall = detect_ring ~span in
        [
          string_of_int span;
          Printf.sprintf "%d ticks" latency;
          string_of_int msgs;
          Printf.sprintf "%d B" bytes;
          Printf.sprintf "%.2f ms" wall;
        ])
      [ 2; 4; 8; 16; 32 ]
  in
  Table.print
    ~header:[ "processes"; "detection latency"; "CDM msgs"; "CDM bytes"; "host wall" ]
    ~rows ();
  print_endline "expected shape: one CDM per hop (span msgs), latency linear in span,";
  print_endline "bytes slightly super-linear (the algebra grows by one entry per hop)"

(* ------------------------------------------------------------------ *)
(* E7: DCDA vs distributed back-tracing.                               *)

let backtrack_ring ~span =
  let net_config = Network.default_config () in
  net_config.Network.account_bytes <- true;
  let cluster = Cluster.create ~net_config ~n:span () in
  let rt = Cluster.rt cluster in
  let bts = Array.map (fun p -> Backtrack.attach rt p) rt.Runtime.procs in
  let built = Topology.ring cluster ~procs:(List.init span (fun i -> i)) in
  let now = Cluster.now cluster in
  Array.iteri
    (fun i bt -> Backtrack.set_summary bt (Summarize.run ~now (Cluster.proc cluster i)))
    bts;
  ignore (Backtrack.suspect bts.(0) (Topology.scion_key built ~src:(span - 1) "n0_0") : bool);
  let (), wall = wall_ms (fun () -> ignore (Cluster.drain cluster : int)) in
  let stats = Cluster.stats cluster in
  (Stats.get stats "bt.msg", Stats.get stats "net.bytes.bt", Stats.get stats "bt.state_peak", wall)

let bench_baseline_compare () =
  section "E7: DCDA vs distributed back-tracing (related work [11])";
  let rows =
    List.map
      (fun span ->
        let _, cdm_msgs, cdm_bytes, _ = detect_ring ~span in
        let bt_msgs, bt_bytes, bt_state, _ = backtrack_ring ~span in
        [
          string_of_int span;
          string_of_int cdm_msgs;
          Printf.sprintf "%d B" cdm_bytes;
          "0";
          string_of_int bt_msgs;
          Printf.sprintf "%d B" bt_bytes;
          string_of_int bt_state;
        ])
      [ 2; 4; 8; 16 ]
  in
  Table.print
    ~header:
      [ "processes"; "DCDA msgs"; "DCDA bytes"; "DCDA state"; "BT msgs"; "BT bytes"; "BT state" ]
    ~rows ();
  print_endline "the DCDA keeps no per-detection state in processes; back-tracing must hold";
  print_endline "continuations (state column) and answer every query with a reply"

(* ------------------------------------------------------------------ *)
(* E8: tolerance to message loss.                                      *)

let bench_loss () =
  section "E8: reclamation under message loss (ring of 8, 24 objects)";
  let rows =
    List.map
      (fun loss ->
        let config = Config.quick ~seed:7 ~n_procs:8 () in
        config.Config.net.Network.drop_prob <- loss;
        let sim = Sim.create ~config () in
        let _built =
          Topology.ring ~objs_per_proc:3 (Sim.cluster sim) ~procs:[ 0; 1; 2; 3; 4; 5; 6; 7 ]
        in
        Sim.start sim;
        let clean = Sim.run_until_clean ~step:2_000 ~max_time:3_000_000 sim in
        let stats = Sim.stats sim in
        [
          Printf.sprintf "%.0f%%" (loss *. 100.0);
          (if clean then Printf.sprintf "%d ticks" (Sim.now sim) else "not reclaimed");
          string_of_int (Stats.get stats "dcda.detections_started");
          string_of_int (Stats.get stats "net.msg.dropped");
        ])
      [ 0.0; 0.05; 0.10; 0.20 ]
  in
  Table.print ~header:[ "loss"; "time to full reclamation"; "detections"; "msgs dropped" ] ~rows ();
  print_endline "safety is never at risk under loss; only reclamation latency grows"

(* ------------------------------------------------------------------ *)
(* E11: scion deletion modes (ablation of a design decision).          *)

let bench_deletion_modes () =
  section "E11: deletion mode after a proven cycle (fig. 4 mutual cycles)";
  let rows =
    List.map
      (fun mode ->
        let policy = { Policy.aggressive with Policy.deletion_mode = mode } in
        let config = Config.quick ~n_procs:6 () in
        let config = { config with Config.policy } in
        let sim = Sim.create ~config () in
        let _built = Topology.fig4 (Sim.cluster sim) in
        Sim.start sim;
        let clean = Sim.run_until_clean ~step:500 ~max_time:500_000 sim in
        let stats = Sim.stats sim in
        [
          Policy.deletion_mode_name mode;
          (if clean then Printf.sprintf "%d ticks" (Sim.now sim) else "not reclaimed");
          string_of_int (Stats.get stats "dcda.detections_started");
          string_of_int (Stats.get stats "dcda.scions_deleted");
          string_of_int (Stats.get stats "net.msg.sent.cdm_delete");
        ])
      [ Policy.Arrival_only; Policy.All_local; Policy.Broadcast ]
  in
  Table.print
    ~header:[ "mode"; "time to reclamation"; "detections"; "scions deleted"; "delete msgs" ]
    ~rows ()

(* ------------------------------------------------------------------ *)
(* E12: Hughes timestamp GC vs the DCDA.                               *)

let hughes_scenario ~crash_one =
  let config =
    {
      (Runtime.default_config ()) with
      Runtime.lgc_period = 300;
      new_set_period = 350;
      scion_grace = 3_000;
    }
  in
  let cluster = Cluster.create ~config ~n:4 () in
  Cluster.start_gc cluster;
  let hughes = Adgc_baseline.Hughes.install ~round_period:200 cluster in
  let _built = Topology.ring cluster ~procs:[ 0; 1; 2 ] in
  if crash_one then Cluster.crash cluster 3;
  let deadline = 150_000 in
  let rec go () =
    if Cluster.total_objects cluster = 0 then Some (Cluster.now cluster)
    else if Cluster.now cluster >= deadline then None
    else begin
      Cluster.run_for cluster 1_000;
      go ()
    end
  in
  let cleaned = go () in
  let stats = Cluster.stats cluster in
  (cleaned, Stats.get stats "hughes.stamp_msgs", Adgc_baseline.Hughes.stalls hughes)

let dcda_scenario ~crash_one =
  let config = Config.quick ~n_procs:4 () in
  let sim = Sim.create ~config () in
  let cluster = Sim.cluster sim in
  let _built = Topology.ring cluster ~procs:[ 0; 1; 2 ] in
  if crash_one then Cluster.crash cluster 3;
  Sim.start sim;
  let cleaned = if Sim.run_until_clean ~step:1_000 ~max_time:150_000 sim then Some (Sim.now sim) else None in
  (cleaned, Stats.get (Sim.stats sim) "net.msg.sent.cdm")

let bench_hughes_compare () =
  section "E12: Hughes timestamp GC [7] vs the DCDA (3-ring + 1 bystander)";
  let rows =
    List.map
      (fun crash_one ->
        let h_clean, h_msgs, h_stalls = hughes_scenario ~crash_one in
        let d_clean, d_msgs = dcda_scenario ~crash_one in
        let show = function Some t -> Printf.sprintf "%d ticks" t | None -> "NEVER" in
        [
          (if crash_one then "bystander crashed" else "healthy");
          show h_clean;
          string_of_int h_msgs;
          string_of_int h_stalls;
          show d_clean;
          string_of_int d_msgs;
        ])
      [ false; true ]
  in
  Table.print
    ~header:
      [ "scenario"; "Hughes reclaim"; "Hughes msgs"; "Hughes stalls"; "DCDA reclaim"; "DCDA msgs" ]
    ~rows ();
  print_endline "Hughes' global minimum needs every process: one silent bystander freezes";
  print_endline "collection everywhere, and stamp propagation is a permanent cost; the DCDA";
  print_endline "only ever involves the cycle's own processes (paper section 5)"

(* ------------------------------------------------------------------ *)
(* E13: candidate-selection heuristics (ablation).                     *)

let bench_heuristics () =
  section "E13: candidate heuristics (2 garbage rings + live churn)";
  let rows =
    List.map
      (fun (idle, backoff) ->
        let policy = { Policy.aggressive with Policy.idle_threshold = idle; backoff } in
        let config = Config.quick ~seed:5 ~n_procs:6 () in
        let config = { config with Config.policy } in
        let sim = Sim.create ~config () in
        let cluster = Sim.cluster sim in
        let _g1 = Topology.ring cluster ~procs:[ 0; 1; 2 ] in
        let _g2 = Topology.ring ~objs_per_proc:2 cluster ~procs:[ 3; 4; 5 ] in
        let _live = Topology.rooted_ring cluster ~procs:[ 0; 3 ] in
        let churn = Adgc_workload.Churn.create ~cluster ~rng:(Adgc_util.Rng.create 11) () in
        Adgc_workload.Churn.run churn ~steps:400 ~every:37;
        Sim.start sim;
        Sim.run_for sim 60_000;
        let stats = Sim.stats sim in
        let garbage = Sim.garbage_count sim in
        let aborts =
          List.fold_left
            (fun acc k -> acc + Stats.get stats ("dcda.abort." ^ k))
            0
            [ "missing_scion"; "locally_reachable"; "ic_mismatch_delivery"; "ic_conflict" ]
        in
        [
          string_of_int idle;
          (if backoff then "yes" else "no");
          string_of_int (Stats.get stats "dcda.detections_started");
          string_of_int (Stats.get stats "dcda.cdm_sent");
          string_of_int aborts;
          string_of_int (Stats.get stats "dcda.cycles_found");
          string_of_int garbage;
        ])
      [ (100, false); (100, true); (2_000, false); (2_000, true) ]
  in
  Table.print
    ~header:
      [ "idle"; "backoff"; "detections"; "CDMs"; "wasted (aborts)"; "cycles found"; "garbage left" ]
    ~rows ();
  print_endline "eager candidates find cycles sooner but waste CDMs on live suspects that";
  print_endline "abort downstream; patient ones trade reclamation latency for quiet wires"

(* ------------------------------------------------------------------ *)
(* E14: incremental vs full summarization under sparse mutation.       *)

let bench_incremental () =
  section "E14: incremental summarization under sparse mutation";
  let objects = 5_000 in
  let rows =
    List.map
      (fun mutations ->
        let cluster = Cluster.create ~n:2 () in
        let rng = Adgc_util.Rng.create 23 in
        let _built =
          Topology.random cluster ~rng ~objects ~edges:(2 * objects) ~remote_prob:0.05
            ~root_prob:0.05
        in
        let p = Cluster.proc cluster 0 in
        let state = Summarize.Incremental.create () in
        ignore (Summarize.Incremental.run state ~now:0 p : Adgc_snapshot.Summary.t);
        (* Sparse mutation: relink a few objects. *)
        let heap = p.Adgc_rt.Process.heap in
        let objs = Heap.fold heap ~init:[] ~f:(fun acc o -> o :: acc) |> Array.of_list in
        for i = 1 to mutations do
          let a = objs.(i * 97 mod Array.length objs) in
          let b = objs.(i * 31 mod Array.length objs) in
          ignore (Heap.add_ref heap a b.Heap.oid : int)
        done;
        let _, inc_ms =
          wall_ms (fun () -> ignore (Summarize.Incremental.run state ~now:1 p : Adgc_snapshot.Summary.t))
        in
        let _, full_ms =
          wall_ms (fun () ->
              ignore (Summarize.run ~algo:Summarize.Naive ~now:1 p : Adgc_snapshot.Summary.t))
        in
        [
          string_of_int mutations;
          Printf.sprintf "%.2f ms" full_ms;
          Printf.sprintf "%.2f ms" inc_ms;
          string_of_int (Summarize.Incremental.last_recomputed state);
          string_of_int (Summarize.Incremental.last_reused state);
        ])
      [ 0; 5; 50; 500 ]
  in
  Table.print
    ~header:[ "mutations"; "full resummarize"; "incremental"; "regions re-traced"; "reused" ]
    ~rows ();
  print_endline "the paper performs summarization \"lazily and incrementally\"; with few";
  print_endline "mutations the incremental form re-traces only the touched regions"

(* ------------------------------------------------------------------ *)
(* E15: the cost of retained garbage (the paper's introduction).       *)

let bench_garbage_cost () =
  section "E15: what leaked garbage costs (intro motivation)";
  (* Same store, growing amounts of uncollected cyclic garbage; measure
     what every process keeps paying: LGC trace time and snapshot
     serialization size/time. *)
  let rows =
    List.map
      (fun garbage_rings ->
        let cluster = Cluster.create ~n:4 () in
        (* A modest live population... *)
        let live = Topology.rooted_ring ~objs_per_proc:25 cluster ~procs:[ 0; 1; 2; 3 ] in
        ignore live;
        (* ...plus accumulated distributed cyclic garbage nobody can
           reclaim without a cycle detector. *)
        for _ = 1 to garbage_rings do
          ignore (Topology.ring ~objs_per_proc:25 cluster ~procs:[ 0; 1; 2; 3 ] : Topology.built)
        done;
        let rt = Cluster.rt cluster in
        let p0 = Cluster.proc cluster 0 in
        let _, lgc_ms =
          wall_ms (fun () ->
              for _ = 1 to 20 do
                ignore (Adgc_rt.Lgc.run rt p0 : Adgc_rt.Lgc.report)
              done)
        in
        let image = Graph_image.of_process ~include_stubs:true p0 in
        let encoded, snap_ms =
          wall_ms (fun () -> Adgc_serial.Net_codec.encode image)
        in
        [
          string_of_int (garbage_rings * 100);
          string_of_int (Cluster.total_objects cluster);
          Printf.sprintf "%.2f ms" (lgc_ms /. 20.0);
          Printf.sprintf "%.2f ms" snap_ms;
          Printf.sprintf "%d B" (String.length encoded);
        ])
      [ 0; 2; 8; 32 ]
  in
  Table.print
    ~header:[ "garbage objs"; "total objs"; "LGC (per run)"; "snapshot"; "snapshot size" ]
    ~rows ();
  print_endline "\"distributed garbage simply accumulates over time degrading performance...";
  print_endline "storage management, object loading, object marshalling\" — every duty scales";
  print_endline "with the retained heap, which is why completeness matters"

(* ------------------------------------------------------------------ *)
(* E16: safe DGC vs lease-style expiry under a network outage.         *)

let bench_leases () =
  section "E16: safe DGC vs lease-style expiry (paper: \"a safe DGC, not a lease-based one\")";
  (* A live remote reference sits across a link that goes dark for a
     while (outage, not a crash).  Lease-style collectors expire the
     scion when the lease runs out; the reference-listing DGC keeps it
     (probes + unbounded protection) and never kills a live object. *)
  let run ~lease ~outage =
    let config =
      { (Runtime.default_config ()) with Runtime.lgc_period = 300; new_set_period = 350 }
    in
    let config =
      if lease then { config with Runtime.failure_detection = true; holder_silence_limit = 5_000 }
      else config
    in
    let cluster = Cluster.create ~config ~n:2 () in
    let checker = Adgc_workload.Metrics.install_safety_checker cluster in
    let holder = Mutator.alloc cluster ~proc:0 () in
    let target = Mutator.alloc cluster ~proc:1 () in
    Mutator.add_root cluster holder;
    Mutator.wire_remote cluster ~holder ~target;
    Cluster.start_gc cluster;
    Cluster.run_for cluster 2_000;
    Network.block_link (Cluster.net cluster) (Proc_id.of_int 0) (Proc_id.of_int 1);
    Network.block_link (Cluster.net cluster) (Proc_id.of_int 1) (Proc_id.of_int 0);
    Cluster.run_for cluster outage;
    Network.unblock_link (Cluster.net cluster) (Proc_id.of_int 0) (Proc_id.of_int 1);
    Network.unblock_link (Cluster.net cluster) (Proc_id.of_int 1) (Proc_id.of_int 0);
    Cluster.run_for cluster 10_000;
    let object_alive = Adgc_rt.Heap.mem (Cluster.proc cluster 1).Adgc_rt.Process.heap target.Heap.oid in
    (object_alive, List.length (Adgc_workload.Metrics.violations checker))
  in
  let rows =
    List.concat_map
      (fun outage ->
        List.map
          (fun lease ->
            let alive, violations = run ~lease ~outage in
            [
              (if lease then "lease (5k)" else "reference listing");
              string_of_int outage;
              (if alive then "survived" else "KILLED");
              string_of_int violations;
            ])
          [ false; true ])
      [ 3_000; 20_000 ]
  in
  Table.print
    ~header:[ "collector"; "outage (ticks)"; "live remote object"; "safety violations" ]
    ~rows ();
  print_endline "leases trade safety for bounded float: an outage longer than the lease";
  print_endline "kills live objects; the paper's DGC never does (it floats instead)"

(* ------------------------------------------------------------------ *)
(* E17: paged-store load traffic vs retained garbage.                  *)

let bench_pstore () =
  section "E17: paged persistent store: loads per collection vs retained garbage";
  let capacity = 150 in
  let rows =
    List.map
      (fun garbage_rings ->
        let cluster = Cluster.create ~n:4 () in
        let _live = Topology.rooted_ring ~objs_per_proc:25 cluster ~procs:[ 0; 1; 2; 3 ] in
        for _ = 1 to garbage_rings do
          ignore (Topology.ring ~objs_per_proc:25 cluster ~procs:[ 0; 1; 2; 3 ] : Topology.built)
        done;
        let p0 = Cluster.proc cluster 0 in
        let store = Adgc_rt.Pstore.create ~capacity () in
        p0.Adgc_rt.Process.pstore <- Some store;
        let rt = Cluster.rt cluster in
        (* Warm, then measure 10 collections. *)
        ignore (Adgc_rt.Lgc.run rt p0 : Adgc_rt.Lgc.report);
        Adgc_rt.Pstore.reset_counters store;
        for _ = 1 to 10 do
          ignore (Adgc_rt.Lgc.run rt p0 : Adgc_rt.Lgc.report)
        done;
        let heap_size = Adgc_rt.Heap.size p0.Adgc_rt.Process.heap in
        [
          string_of_int (garbage_rings * 25);
          string_of_int heap_size;
          string_of_int (Adgc_rt.Pstore.loads store / 10);
          string_of_int (Adgc_rt.Pstore.hits store / 10);
        ])
      [ 0; 2; 8; 16 ]
  in
  Table.print
    ~header:
      [ "garbage objs @P0"; "heap @P0"; "loads per LGC (cap 150)"; "hits per LGC" ]
    ~rows ();
  print_endline "once retained garbage pushes the working set past primary memory, every";
  print_endline "collection pays disk loads — the intro's \"object loading on primary";
  print_endline "memory\" cost of incompleteness"

(* ------------------------------------------------------------------ *)
(* E18: dense-garbage worst case and the TTL mitigation.               *)

let clique ~procs ~per_proc cluster =
  (* Fully-connected distributed garbage: every object references
     every other (remote ones via bootstrap wiring). *)
  let objs =
    Array.init procs (fun p ->
        Array.init per_proc (fun _ -> Mutator.alloc cluster ~proc:p ()))
  in
  Array.iteri
    (fun p row ->
      Array.iter
        (fun o ->
          Array.iteri
            (fun q row' ->
              Array.iter
                (fun o' ->
                  if o != o' then
                    if p = q then
                      ignore (Heap.add_ref (Cluster.proc cluster p).Adgc_rt.Process.heap o o'.Heap.oid : int)
                    else Mutator.wire_remote cluster ~holder:o ~target:o')
                row')
            objs)
        row)
    objs

let bench_dense () =
  section "E18: dense garbage (cliques) — the single-walk coverage limit";
  let run ~label ~procs ~per_proc ~budget ~deadline =
    let policy = { Policy.aggressive with Policy.cdm_budget = budget } in
    let config = Config.quick ~n_procs:procs () in
    let config = { config with Config.policy } in
    let sim = Sim.create ~config () in
    clique ~procs ~per_proc (Sim.cluster sim);
    Sim.start sim;
    let clean = Sim.run_until_clean ~step:1_000 ~max_time:deadline in
    let clean = clean sim in
    let stats = Sim.stats sim in
    [
      label;
      string_of_int budget;
      (if clean then Printf.sprintf "%d ticks" (Sim.now sim) else "not reclaimed");
      string_of_int (Stats.get stats "dcda.detections_started");
      string_of_int (Stats.get stats "dcda.cdm_sent");
    ]
  in
  let rows =
    [
      run ~label:"K3 (1 obj x 3 procs, 6 refs)" ~procs:3 ~per_proc:1 ~budget:8 ~deadline:100_000;
      run ~label:"K3 (1 obj x 3 procs, 6 refs)" ~procs:3 ~per_proc:1 ~budget:32 ~deadline:100_000;
      run ~label:"K4 (2 obj x 2 procs, 8 refs)" ~procs:2 ~per_proc:2 ~budget:8 ~deadline:100_000;
      run ~label:"K4 (2 obj x 2 procs, 8 refs)" ~procs:2 ~per_proc:2 ~budget:32 ~deadline:100_000;
      run ~label:"K9 (3 obj x 3 procs, 18 refs)" ~procs:3 ~per_proc:3 ~budget:512 ~deadline:100_000;
    ]
  in
  Table.print
    ~header:[ "clique"; "budget/detection"; "reclaimed"; "detections"; "CDMs" ]
    ~rows ();
  print_endline "a conclusion needs ONE CDM walk to traverse every reference of the garbage";
  print_endline "closure (an Euler-walk requirement).  Small cliques conclude with a modest";
  print_endline "budget; K9's walk is improbable to find, and without the budget the";
  print_endline "derivation tree is combinatorial — the documented worst case of the";
  print_endline "algorithm.  Realistic sparse cycles (all other experiments) are unaffected"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks (E9 matching, E10 summarization, codecs). *)

let make_algebra n =
  let rec go i alg =
    if i >= n then alg
    else
      let key =
        Ref_key.make ~src:(Proc_id.of_int (i mod 7))
          ~target:(Oid.make ~owner:(Proc_id.of_int ((i + 1) mod 7)) ~serial:i)
      in
      let alg = Algebra.add_exn alg Algebra.Source key ~ic:0 in
      let alg = Algebra.add_exn alg Algebra.Target key ~ic:0 in
      go (i + 1) alg
  in
  go 0 Algebra.empty

let make_summarize_target objects =
  let cluster = Cluster.create ~n:2 () in
  let rng = Adgc_util.Rng.create 17 in
  let _built =
    Topology.random cluster ~rng ~objects ~edges:(2 * objects) ~remote_prob:0.1 ~root_prob:0.1
  in
  Cluster.proc cluster 0

(* The condensed summarizer's favourable case: many scions whose
   targets all reach one large shared region (the naive per-scion BFS
   re-traces the region for every scion; the condensation computes it
   once). *)
let make_shared_region_target ~scions ~region =
  let cluster = Cluster.create ~n:2 () in
  let p0 = Cluster.proc cluster 0 in
  let heap = p0.Adgc_rt.Process.heap in
  let blob = Array.init region (fun _ -> Heap.alloc heap) in
  for i = 0 to region - 2 do
    ignore (Heap.add_ref heap blob.(i) blob.(i + 1).Heap.oid : int)
  done;
  (* One remote reference at the bottom so the region matters. *)
  let far = Heap.alloc (Cluster.proc cluster 1).Adgc_rt.Process.heap in
  Mutator.wire_remote cluster ~holder:blob.(region - 1) ~target:far;
  (* Each scion targets its own entry object pointing into the blob. *)
  for i = 0 to scions - 1 do
    let entry = Heap.alloc heap in
    ignore (Heap.add_ref heap entry blob.(i mod region).Heap.oid : int);
    let holder = Heap.alloc (Cluster.proc cluster 1).Adgc_rt.Process.heap in
    Mutator.wire_remote cluster ~holder ~target:entry
  done;
  p0

let micro_tests () =
  let open Bechamel in
  let algebra_tests =
    Test.make_indexed ~name:"algebra/matching" ~args:[ 16; 256; 4096 ] (fun n ->
        let alg = make_algebra n in
        Staged.stage (fun () -> ignore (Algebra.matching alg : Algebra.matching_result)))
  in
  let image_1k =
    let p = build_serialization_process ~objects:1_000 ~with_stubs:false in
    Graph_image.of_process p
  in
  let codec_tests =
    [
      Test.make ~name:"codec/net-encode-1k"
        (Staged.stage (fun () -> ignore (Adgc_serial.Net_codec.encode image_1k : string)));
      Test.make ~name:"codec/rotor-encode-1k"
        (Staged.stage (fun () -> ignore (Adgc_serial.Rotor_codec.encode image_1k : string)));
    ]
  in
  let shared_tests =
    let p = make_shared_region_target ~scions:100 ~region:2_000 in
    [
      Test.make ~name:"summarize/naive-shared-region"
        (Staged.stage (fun () ->
             ignore (Summarize.run ~algo:Summarize.Naive ~now:0 p : Adgc_snapshot.Summary.t)));
      Test.make ~name:"summarize/condensed-shared-region"
        (Staged.stage (fun () ->
             ignore (Summarize.run ~algo:Summarize.Condensed ~now:0 p : Adgc_snapshot.Summary.t)));
    ]
  in
  let summarize_tests =
    List.concat_map
      (fun objects ->
        let p = make_summarize_target objects in
        [
          Test.make
            ~name:(Printf.sprintf "summarize/naive-%d" objects)
            (Staged.stage (fun () ->
                 ignore (Summarize.run ~algo:Summarize.Naive ~now:0 p : Adgc_snapshot.Summary.t)));
          Test.make
            ~name:(Printf.sprintf "summarize/condensed-%d" objects)
            (Staged.stage (fun () ->
                 ignore
                   (Summarize.run ~algo:Summarize.Condensed ~now:0 p : Adgc_snapshot.Summary.t)));
        ])
      [ 500; 4000 ]
  in
  Test.make_grouped ~name:"micro" ([ algebra_tests ] @ codec_tests @ summarize_tests @ shared_tests)

let bench_micro () =
  section "E9/E10 micro-costs (Bechamel, time per run)";
  let open Bechamel in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg [ instance ] (micro_tests ()) in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map (fun (name, ols) ->
           let ns =
             match Analyze.OLS.estimates ols with Some [ e ] -> e | Some _ | None -> Float.nan
           in
           let pretty =
             if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
             else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
             else Printf.sprintf "%.0f ns" ns
           in
           [ name; pretty ])
  in
  Table.print ~header:[ "micro-benchmark"; "time/run" ] ~rows ();
  print_endline "paper: \"CDM matching is inexpensive\"; condensed summarization shares";
  print_endline "work across scions where the naive one re-traces"

let sections =
  [
    ("table1", bench_table1);
    ("serialization", bench_serialization);
    ("detection_scaling", bench_detection_scaling);
    ("baseline_compare", bench_baseline_compare);
    ("loss_tolerance", bench_loss);
    ("deletion_modes", bench_deletion_modes);
    ("hughes_compare", bench_hughes_compare);
    ("heuristics", bench_heuristics);
    ("incremental", bench_incremental);
    ("garbage_cost", bench_garbage_cost);
    ("leases", bench_leases);
    ("pstore", bench_pstore);
    ("dense", bench_dense);
    ("micro", bench_micro);
  ]
