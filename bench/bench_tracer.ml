(* Tracer section: dense-id heap tracing vs the set-based paths, the
   condensed-snapshot fast path, DGC message batching and the
   clean-poll staleness guard (PR 1 / PR 5 speed claims). *)

module Sim = Adgc.Sim
module Config = Adgc.Config
module Cluster = Adgc_rt.Cluster
module Network = Adgc_rt.Network
module Runtime = Adgc_rt.Runtime
module Mutator = Adgc_rt.Mutator
module Heap = Adgc_rt.Heap
module Reflist = Adgc_rt.Reflist
module Summarize = Adgc_snapshot.Summarize
module Stats = Adgc_util.Stats
module Table = Adgc_util.Table
module Topology = Adgc_workload.Topology
open Bench_common

let build_tracer_heap ~objects =
  let cluster = Cluster.create ~n:2 () in
  let rng = Adgc_util.Rng.create 29 in
  let _built =
    Topology.random cluster ~rng ~objects ~edges:(2 * objects) ~remote_prob:0.05
      ~root_prob:0.02
  in
  Cluster.proc cluster 0

let tracer_case ~objects ~reps =
  let p = build_tracer_heap ~objects in
  let heap = p.Adgc_rt.Process.heap in
  let roots = Heap.roots heap in
  let sets =
    times ~reps (fun () -> ignore (Heap.trace_sets heap ~from:roots : Heap.trace_result))
  in
  let dense =
    times ~reps (fun () -> ignore (Heap.trace heap ~from:roots : Heap.trace_result))
  in
  let snap_sets =
    times ~reps (fun () ->
        ignore (Summarize.run ~algo:Summarize.Condensed_sets ~now:0 p : Adgc_snapshot.Summary.t))
  in
  let snap_dense =
    times ~reps (fun () ->
        ignore (Summarize.run ~algo:Summarize.Condensed ~now:0 p : Adgc_snapshot.Summary.t))
  in
  (sets, dense, snap_sets, snap_dense)

(* One advertisement round on a fully-wired clique: every process holds
   a reference into every other, so each (src, dst) pair carries one
   stub set plus one scion probe per round — exactly the traffic the
   batcher coalesces. *)
let batching_round ~batching =
  let n = 16 in
  let net_config = Network.default_config () in
  net_config.Network.account_bytes <- true;
  net_config.Network.latency_min <- 1;
  net_config.Network.latency_max <- 1;
  let config =
    { (Runtime.default_config ()) with Runtime.dgc_batching = batching; dgc_batch_window = 5 }
  in
  let cluster = Cluster.create ~config ~net_config ~n () in
  for p = 0 to n - 1 do
    for q = 0 to n - 1 do
      if p <> q then begin
        let holder = Mutator.alloc cluster ~proc:p () in
        Mutator.add_root cluster holder;
        let target = Mutator.alloc cluster ~proc:q () in
        Mutator.add_root cluster target;
        Mutator.wire_remote cluster ~holder ~target
      end
    done
  done;
  Cluster.run_for cluster 100;
  let rt = Cluster.rt cluster in
  let stats = Cluster.stats cluster in
  let sent0 = Stats.get stats "net.msg.sent" in
  let bytes0 = Stats.get stats "net.bytes" in
  Array.iter
    (fun p ->
      Reflist.send_new_sets rt p;
      Reflist.probe_idle_scions rt p ~threshold:1)
    rt.Runtime.procs;
  ignore (Cluster.drain cluster : int);
  ( Stats.get stats "net.msg.sent" - sent0,
    Stats.get stats "net.bytes" - bytes0,
    Stats.get stats "net.msg.batched",
    Stats.get stats "net.msg.batch_flushes" )

let run recorder =
  section "tracer: dense-id tracing, snapshot fast path, DGC batching";
  let sizes = if smoke () then [ 2_000 ] else [ 10_000; 100_000 ] in
  let reps objects = if smoke () then 3 else if objects >= 100_000 then 5 else 9 in
  let cases =
    List.map (fun objects -> (objects, tracer_case ~objects ~reps:(reps objects))) sizes
  in
  let rows =
    List.map
      (fun (objects, (sets, dense, snap_sets, snap_dense)) ->
        let m = median in
        [
          string_of_int objects;
          Printf.sprintf "%.2f ms" (m sets);
          Printf.sprintf "%.2f ms" (m dense);
          Printf.sprintf "%.2fx" (m sets /. m dense);
          Printf.sprintf "%.2f ms" (m snap_sets);
          Printf.sprintf "%.2f ms" (m snap_dense);
          Printf.sprintf "%.2fx" (m snap_sets /. m snap_dense);
        ])
      cases
  in
  Table.print
    ~header:
      [ "objects"; "trace (sets)"; "trace (dense)"; "speedup"; "snapshot (sets)";
        "snapshot (dense)"; "speedup" ]
    ~rows ();
  List.iter
    (fun (objects, (sets, dense, snap_sets, snap_dense)) ->
      let config =
        [ "tracer"; string_of_int objects; string_of_int (reps objects);
          string_of_bool (smoke ()) ]
      in
      let t name values =
        timing recorder ~section:"tracer"
          ~name:(Printf.sprintf "tracer.%s.%d" name objects)
          ~unit_:"ms" ~config values
      in
      t "trace.sets_ms" sets;
      t "trace.dense_ms" dense;
      t "snapshot.sets_ms" snap_sets;
      t "snapshot.dense_ms" snap_dense;
      timing recorder ~section:"tracer"
        ~name:(Printf.sprintf "tracer.trace.speedup.%d" objects)
        ~unit_:"x" ~direction:Sample.Higher_better ~config
        [ median sets /. median dense ];
      timing recorder ~section:"tracer"
        ~name:(Printf.sprintf "tracer.snapshot.speedup.%d" objects)
        ~unit_:"x" ~direction:Sample.Higher_better ~config
        [ median snap_sets /. median snap_dense ])
    cases;
  let plain_msgs, plain_bytes, _, _ = batching_round ~batching:false in
  let batched_msgs, batched_bytes, payloads, flushes = batching_round ~batching:true in
  let reduction =
    100.0 *. (1.0 -. (float_of_int batched_msgs /. float_of_int plain_msgs))
  in
  Printf.printf
    "batching (16-proc clique, one stub-set + probe round):\n\
    \  off: %d msgs, %d bytes    on: %d msgs, %d bytes (%d payloads in %d batches)\n\
    \  message reduction: %.0f%%\n"
    plain_msgs plain_bytes batched_msgs batched_bytes payloads flushes reduction;
  let bconfig = [ "tracer.batching"; "16"; "window=5" ] in
  let d name ?direction v =
    det recorder ~section:"tracer" ~name ?direction ~unit_:"msgs" ~config:bconfig v
  in
  d "tracer.batching.off_msgs" (float_of_int plain_msgs);
  d "tracer.batching.on_msgs" (float_of_int batched_msgs);
  det recorder ~section:"tracer" ~name:"tracer.batching.off_bytes" ~unit_:"bytes"
    ~config:bconfig (float_of_int plain_bytes);
  det recorder ~section:"tracer" ~name:"tracer.batching.on_bytes" ~unit_:"bytes"
    ~config:bconfig (float_of_int batched_bytes);
  det recorder ~section:"tracer" ~name:"tracer.batching.msg_reduction_pct" ~unit_:"%"
    ~direction:Sample.Higher_better ~config:bconfig reduction;
  (* Clean-poll staleness guard: run a full collection to quiescence
     and count how many ground-truth traces the signature check saved
     versus a guardless poll-every-step loop. *)
  let sim = Sim.create ~config:(Config.quick ~seed:31 ~n_procs:8 ()) () in
  let cluster2 = Sim.cluster sim in
  let _ = Topology.ring cluster2 ~procs:[ 0; 1; 2; 3; 4; 5; 6; 7 ] in
  Sim.start sim;
  let clean = Sim.run_until_clean ~step:100 ~max_time:300_000 sim in
  let traces = Stats.get (Sim.stats sim) "sim.clean_checks" in
  let skips = Stats.get (Sim.stats sim) "sim.clean_checks.skipped" in
  Sim.teardown sim;
  let saved_pct = 100.0 *. float_of_int skips /. float_of_int (Int.max 1 (traces + skips)) in
  Printf.printf
    "clean-poll staleness guard (8-proc ring to quiescence%s):\n\
    \  %d ground-truth traces computed, %d quiet polls skipped (%.0f%% saved)\n"
    (if clean then "" else ", BUDGET EXHAUSTED")
    traces skips saved_pct;
  let cconfig = [ "tracer.clean_poll"; "seed=31"; "procs=8" ] in
  det recorder ~section:"tracer" ~name:"tracer.clean_poll.traces_computed" ~unit_:"traces"
    ~config:cconfig (float_of_int traces);
  det recorder ~section:"tracer" ~name:"tracer.clean_poll.saved_pct" ~unit_:"%"
    ~direction:Sample.Higher_better ~config:cconfig saved_pct
