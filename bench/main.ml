(* Benchmark runner.

     dune exec bench/main.exe            -- run everything
     dune exec bench/main.exe -- tracer detection
                                         -- run selected sections

   Perf sections (tracer, telemetry, engine, net, detection) record
   uniform sample series; after the run the results document is
   written to bench/results/<rev>.json and bench/results/latest.json
   for `adgc_sim perf check` to gate against bench/baseline.json.
   Paper sections (table1, serialization, ...) print the paper's
   tables and record nothing.  ADGC_BENCH_SMOKE=1 selects the
   CI-sized variant of every section; docs/BENCHMARKING.md has the
   full workflow. *)

module Bench_sections = Adgc_bench.Bench_sections

let results_dir () =
  match Sys.getenv_opt "ADGC_BENCH_RESULTS_DIR" with
  | Some d when d <> "" -> d
  | Some _ | None -> "bench/results"

let () =
  let requested =
    match Array.to_list Sys.argv with _ :: (_ :: _ as names) -> names | _ :: [] | [] -> []
  in
  let doc =
    try Bench_sections.run ~names:requested ()
    with Invalid_argument msg ->
      Printf.eprintf "%s; available: %s\n" msg (String.concat ", " Bench_sections.names);
      exit 1
  in
  print_endline "\nall requested benchmark sections completed";
  if Adgc_perf.Results.samples doc = [] then
    print_endline "(no perf sections requested; no results document written)"
  else begin
    let rev_path, latest_path =
      Adgc_perf.Results.save_results ~dir:(results_dir ()) doc
    in
    Printf.printf "wrote %s\nwrote %s\n" rev_path latest_path
  end
