(* Net section (E23): the socket-backed multi-process driver vs the
   in-memory simulator on the same scenario — what real processes,
   syscalls and wire serialization cost relative to simulated
   delivery.  Nodes are spawned by exec'ing the adgc_sim binary
   ([Unix.fork] is off-limits here: the engine section may already
   have spawned domains, which forbids fork for the rest of the
   process).

   The in-memory columns are deterministic (pure functions of the
   seed); everything measured on the socket side is wall-clock slaved
   and recorded as timing-class. *)

module Sim = Adgc.Sim
module Stats = Adgc_util.Stats
module Table = Adgc_util.Table
module Net_scenario = Adgc_net.Scenario
module Coordinator = Adgc_net.Coordinator
open Bench_common

let run recorder =
  section "E23: socket driver vs in-memory simulator (ring to full reclamation)";
  match adgc_sim_exe () with
  | None -> print_endline "adgc_sim.exe not found (run `dune build` first); section skipped"
  | Some exe ->
      let sizes = if smoke () then [ 4 ] else [ 4; 8; 16 ] in
      let rows =
        List.map
          (fun procs ->
            let scenario = Net_scenario.make ~topology:Net_scenario.Ring ~procs () in
            let sim, _built = Net_scenario.build scenario in
            Sim.start sim;
            let clean, sim_ms =
              wall_ms (fun () -> Sim.run_until_clean ~step:1_000 ~max_time:600_000 sim)
            in
            let sim_ticks = Sim.now sim in
            let sim_msgs = Stats.get (Sim.stats sim) "net.msg.sent" in
            Sim.teardown sim;
            let r =
              Coordinator.run
                (Coordinator.options ~spawn:(Coordinator.Exec [ exe; "serve" ]) scenario)
            in
            let frames = Stats.get r.Coordinator.stats "net.wire.sent" in
            let wall = Float.max 1e-6 r.Coordinator.wall_s in
            let us_per_tick =
              wall *. 1e6 /. float_of_int (Int.max 1 r.Coordinator.max_tick)
            in
            let config =
              [ "net"; "ring"; string_of_int procs; string_of_bool (smoke ()) ]
            in
            det recorder ~section:"net"
              ~name:(Printf.sprintf "net.ring%d.sim_ticks" procs)
              ~unit_:"ticks" ~config (float_of_int sim_ticks);
            det recorder ~section:"net"
              ~name:(Printf.sprintf "net.ring%d.sim_msgs" procs)
              ~unit_:"msgs" ~config (float_of_int sim_msgs);
            timing recorder ~section:"net"
              ~name:(Printf.sprintf "net.ring%d.sim_wall_ms" procs)
              ~unit_:"ms" ~config [ sim_ms ];
            timing recorder ~section:"net"
              ~name:(Printf.sprintf "net.ring%d.wall_ms" procs)
              ~unit_:"ms" ~config
              [ wall *. 1000.0 ];
            timing recorder ~section:"net"
              ~name:(Printf.sprintf "net.ring%d.frames" procs)
              ~unit_:"frames" ~config (* reconnects/heartbeats vary run to run *)
              [ float_of_int frames ];
            timing recorder ~section:"net"
              ~name:(Printf.sprintf "net.ring%d.frames_per_sec" procs)
              ~unit_:"frames/s" ~direction:Sample.Higher_better ~config
              [ float_of_int frames /. wall ];
            timing recorder ~section:"net"
              ~name:(Printf.sprintf "net.ring%d.us_per_tick" procs)
              ~unit_:"us" ~config [ us_per_tick ];
            [
              string_of_int procs;
              Printf.sprintf "%.1f ms%s" sim_ms (if clean then "" else " (!)");
              Printf.sprintf "%d ticks" sim_ticks;
              string_of_int sim_msgs;
              Printf.sprintf "%.0f ms%s" (wall *. 1000.0)
                (if Coordinator.ok r then "" else " (!)");
              Printf.sprintf "%d ticks" r.Coordinator.max_tick;
              string_of_int frames;
              Printf.sprintf "%.0f" (float_of_int frames /. wall);
              Printf.sprintf "%.0f us" us_per_tick;
            ])
          sizes
      in
      Table.print
        ~header:
          [
            "procs"; "sim wall"; "sim ticks"; "sim msgs"; "net wall"; "net ticks"; "net frames";
            "frames/sec"; "net us/tick";
          ]
        ~rows ();
      print_endline "same scenario, same duties, same oracle; the socket columns add OS";
      print_endline "processes, select() scheduling and framed wire serialization ((!) marks a";
      print_endline "run that missed full reclamation)"
