(* Shared plumbing for the bench sections: wall-clock timing, smoke
   sizing, host/revision facts for the results document, and the
   sample-recording helpers every section reports through. *)

module Sample = Adgc_perf.Sample
module Recorder = Adgc_perf.Recorder
module Results = Adgc_perf.Results

let wall_ms f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  let t1 = Unix.gettimeofday () in
  (result, (t1 -. t0) *. 1000.0)

let pct base v = (v -. base) /. base *. 100.0

let section name = Printf.printf "\n================ %s ================\n%!" name

let median l =
  let sorted = List.sort Float.compare l in
  List.nth sorted (List.length sorted / 2)

(* Tests force smoke without touching the environment of the whole
   test binary; the CLI keeps the ADGC_BENCH_SMOKE contract. *)
let smoke_forced = ref None

let force_smoke v = smoke_forced := Some v

let smoke () =
  match !smoke_forced with
  | Some v -> v
  | None -> Sys.getenv_opt "ADGC_BENCH_SMOKE" <> None

let times ~reps f =
  f ();
  (* warm: faults caches and scratch state in *)
  List.init reps (fun _ -> snd (wall_ms f))

let time_reps ~reps f = median (times ~reps f)

let rev () =
  match Sys.getenv_opt "ADGC_BENCH_REV" with
  | Some r when r <> "" -> r
  | Some _ | None -> (
      match Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" with
      | exception Unix.Unix_error _ -> "dev"
      | ic -> (
          let line = try input_line ic with End_of_file -> "" in
          match Unix.close_process_in ic with
          | Unix.WEXITED 0 when line <> "" -> line
          | _ -> "dev"))

let host () =
  let cores = Domain.recommended_domain_count () in
  let worker_domains =
    match Option.bind (Sys.getenv_opt "ADGC_POOL_DOMAINS") int_of_string_opt with
    | Some n when n > 0 -> n
    | Some _ | None -> Int.max 1 (cores - 1)
  in
  { Results.cores; worker_domains }

(* Sample-recording shorthands: a timing series from raw repetition
   measurements, and a deterministic scalar (ticks, messages, bytes —
   pure functions of the seed). *)
let timing r ~section ~name ~unit_ ?(direction = Sample.Lower_better) ?slo ~config values =
  Recorder.add r ~section
    (Sample.of_values ~name ~unit_ ~direction ~klass:Sample.Timing ?slo
       ~config_digest:(Recorder.config_digest config) values)

let det r ~section ~name ~unit_ ?(direction = Sample.Lower_better) ?slo ~config v =
  Recorder.add r ~section
    (Sample.scalar ~name ~unit_ ~direction ~klass:Sample.Deterministic ?slo
       ~config_digest:(Recorder.config_digest config) v)

let adgc_sim_exe () =
  match Sys.getenv_opt "ADGC_SIM_EXE" with
  | Some p -> Some p
  | None ->
      List.find_opt Sys.file_exists
        [
          (* next to this executable, wherever it was run from *)
          Filename.concat (Filename.dirname Sys.executable_name) "../bin/adgc_sim.exe";
          "_build/default/bin/adgc_sim.exe";
          "../bin/adgc_sim.exe";
          "bin/adgc_sim.exe";
        ]
      |> Option.map (fun p ->
             if Filename.is_relative p then Filename.concat (Sys.getcwd ()) p else p)
