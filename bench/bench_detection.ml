(* Detection section (new in the perf harness): end-to-end
   cycle-reclamation latency, in simulated ticks, with percentiles
   drawn from the lib/obs histograms the detector feeds under
   telemetry (dcda.detection_latency: initiation tick to conclusion
   tick, per proven cycle).

   Everything but the host wall column is a pure function of the
   seed, so these are the tightest gates in the document — and the
   p99 latency carries a hard SLO ceiling: blowing past it fails
   `adgc_sim perf check` even if someone also regresses the checked-in
   baseline to match. *)

module Sim = Adgc.Sim
module Config = Adgc.Config
module Stats = Adgc_util.Stats
module Table = Adgc_util.Table
module Topology = Adgc_workload.Topology
open Bench_common

type scenario = {
  label : string;
  procs : int;
  seed : int;
  slo_p99 : float;  (* ticks *)
  build : Adgc_rt.Cluster.t -> unit;
}

let ring ~label ~span ~slo_p99 =
  {
    label;
    procs = span;
    seed = 42;
    slo_p99;
    build =
      (fun cluster ->
        ignore
          (Topology.ring ~objs_per_proc:2 cluster ~procs:(List.init span (fun i -> i))
            : Topology.built));
  }

let scenarios () =
  let base =
    [
      ring ~label:"ring4" ~span:4 ~slo_p99:2048.0;
      {
        label = "fig4";
        procs = 6;
        seed = 42;
        slo_p99 = 2048.0;
        build = (fun cluster -> ignore (Topology.fig4 cluster : Topology.built));
      };
    ]
  in
  if smoke () then base else base @ [ ring ~label:"ring8" ~span:8 ~slo_p99:4096.0 ]

let run_scenario s =
  let config = { (Config.quick ~seed:s.seed ~n_procs:s.procs ()) with Config.telemetry = true } in
  let sim = Sim.create ~config () in
  s.build (Sim.cluster sim);
  Sim.start sim;
  let clean, wall = wall_ms (fun () -> Sim.run_until_clean ~step:500 ~max_time:600_000 sim) in
  let stats = Sim.stats sim in
  let pcts =
    match Adgc_obs.Export.percentiles ~ps:[ 50.0; 99.0 ] stats "dcda.detection_latency" with
    | Some [ (_, p50); (_, p99) ] -> Some (p50, p99)
    | Some _ | None -> None
  in
  let cycles = Stats.get stats "dcda.cycles_found" in
  let cdms = Stats.get stats "net.msg.sent.cdm" in
  let ticks = Sim.now sim in
  Sim.teardown sim;
  (clean, ticks, pcts, cycles, cdms, wall)

(* ------------------------------------------------------------------ *)
(* Incremental candidate maintenance: the detection.incremental series.

   Two workload shapes from the paper experiments: E6 (one distributed
   cycle around a ring — sparse, insert-only churn, the incremental
   maintainer's best case) and E18 (a dense garbage clique — every
   wire lands in an already-labelled region, the audit's stress
   case).  Each runs under both candidate sources; the deterministic
   columns gate the maintainer's work profile (events handled, eager
   BFS edges, deferred rebuilds, audit agreement) and the timing pair
   tracks the wall cost of incremental vs full-scan candidates on the
   identical seed. *)

let clique ~procs ~per_proc cluster =
  let module Mutator = Adgc_rt.Mutator in
  let module Heap = Adgc_rt.Heap in
  let module Cluster = Adgc_rt.Cluster in
  let objs =
    Array.init procs (fun p -> Array.init per_proc (fun _ -> Mutator.alloc cluster ~proc:p ()))
  in
  Array.iteri
    (fun p row ->
      Array.iter
        (fun o ->
          Array.iteri
            (fun q row' ->
              Array.iter
                (fun o' ->
                  if o != o' then
                    if p = q then
                      ignore
                        (Heap.add_ref (Cluster.proc cluster p).Adgc_rt.Process.heap o o'.Heap.oid
                          : int)
                    else Mutator.wire_remote cluster ~holder:o ~target:o')
                row')
            objs)
        row)
    objs

type inc_scenario = { ilabel : string; iprocs : int; ibuild : Adgc_rt.Cluster.t -> unit }

let inc_scenarios () =
  let e6 =
    {
      ilabel = "e6_ring6";
      iprocs = 6;
      ibuild =
        (fun cluster ->
          ignore
            (Topology.ring ~objs_per_proc:2 cluster ~procs:(List.init 6 (fun i -> i))
              : Topology.built);
          (* A rooted component besides the garbage ring: root and edge
             inserts land inside the region, so the eager label path
             (grow_from / flips) does measurable work instead of the
             whole workload degenerating to an empty region. *)
          ignore (Topology.rooted_ring cluster ~procs:[ 0; 1; 2 ] : Topology.built));
    }
  in
  let e18 = { ilabel = "e18_k4"; iprocs = 2; ibuild = clique ~procs:2 ~per_proc:2 } in
  if smoke () then [ e6 ] else [ e6; e18 ]

let run_inc_mode s ~candidates =
  let config =
    {
      (Config.quick ~seed:42 ~n_procs:s.iprocs ()) with
      Config.telemetry = true;
      candidates;
    }
  in
  let sim = Sim.create ~config () in
  s.ibuild (Sim.cluster sim);
  Sim.start sim;
  let clean, wall = wall_ms (fun () -> Sim.run_until_clean ~step:500 ~max_time:600_000 sim) in
  let stats = Sim.stats sim in
  let get k = Stats.get stats ("dcda.candidates." ^ k) in
  let counters =
    ( get "events",
      get "flips",
      get "grow_edges",
      get "rebuilds",
      get "audits",
      get "audit_mismatch" )
  in
  let ticks = Sim.now sim in
  Sim.teardown sim;
  (clean, ticks, counters, wall)

let run_incremental recorder =
  section "detection.incremental: candidate-label maintenance vs the full scan";
  let rows =
    List.map
      (fun s ->
        let _scan_clean, scan_ticks, _scan_counters, scan_wall =
          run_inc_mode s ~candidates:Config.Scan_candidates
        in
        let clean, ticks, (events, flips, grow_edges, rebuilds, audits, mismatches), wall =
          run_inc_mode s ~candidates:Config.Incremental_candidates
        in
        let config = [ "detection.incremental"; s.ilabel; string_of_int s.iprocs; "42" ] in
        let d name v =
          det recorder ~section:"detection"
            ~name:(Printf.sprintf "detection.incremental.%s.%s" s.ilabel name)
            ~unit_:"count" ~config (float_of_int v)
        in
        det recorder ~section:"detection"
          ~name:(Printf.sprintf "detection.incremental.%s.time_to_clean_ticks" s.ilabel)
          ~unit_:"ticks" ~config (float_of_int ticks);
        (* Byte-identity means the tick clock must agree with the
           full-scan run; gate the delta at exactly zero. *)
        det recorder ~section:"detection"
          ~name:(Printf.sprintf "detection.incremental.%s.ticks_vs_scan_delta" s.ilabel)
          ~unit_:"ticks" ~slo:0.0 ~config
          (Float.abs (float_of_int (ticks - scan_ticks)));
        d "events" events;
        d "label_flips" flips;
        d "grow_edges" grow_edges;
        d "rebuilds" rebuilds;
        d "audits" audits;
        det recorder ~section:"detection"
          ~name:(Printf.sprintf "detection.incremental.%s.audit_mismatch" s.ilabel)
          ~unit_:"count" ~slo:0.0 ~config (float_of_int mismatches);
        timing recorder ~section:"detection"
          ~name:(Printf.sprintf "detection.incremental.%s.wall_ms" s.ilabel)
          ~unit_:"ms" ~config [ wall ];
        timing recorder ~section:"detection"
          ~name:(Printf.sprintf "detection.incremental.%s.scan_wall_ms" s.ilabel)
          ~unit_:"ms" ~config [ scan_wall ];
        [
          s.ilabel;
          (if clean then Printf.sprintf "%d ticks" ticks else "NOT RECLAIMED");
          string_of_int events;
          string_of_int flips;
          string_of_int grow_edges;
          string_of_int rebuilds;
          Printf.sprintf "%d/%d" mismatches audits;
          Printf.sprintf "%.1f vs %.1f ms" wall scan_wall;
        ])
      (inc_scenarios ())
  in
  Table.print
    ~header:
      [
        "workload";
        "time to clean";
        "events";
        "flips";
        "BFS edges";
        "rebuilds";
        "mismatch/audits";
        "inc vs scan wall";
      ]
    ~rows ();
  print_endline "identical seeds under both candidate sources; the maintainer's work is";
  print_endline "deterministic (events, eager BFS edges, deferred rebuilds) and the audit";
  print_endline "duty must agree with the full scan every time it fires (mismatch gate 0)"

let run recorder =
  section "detection: end-to-end cycle-reclamation latency (obs histograms)";
  let rows =
    List.map
      (fun s ->
        let clean, ticks, pcts, cycles, cdms, wall = run_scenario s in
        let p50, p99 = match pcts with Some (a, b) -> (a, b) | None -> (Float.nan, Float.nan) in
        let config =
          [ "detection"; s.label; string_of_int s.procs; string_of_int s.seed ]
        in
        det recorder ~section:"detection"
          ~name:(Printf.sprintf "detection.%s.time_to_clean_ticks" s.label)
          ~unit_:"ticks" ~config (float_of_int ticks);
        det recorder ~section:"detection"
          ~name:(Printf.sprintf "detection.%s.dcda.detection_latency.p50" s.label)
          ~unit_:"ticks" ~config p50;
        det recorder ~section:"detection"
          ~name:(Printf.sprintf "detection.%s.dcda.detection_latency.p99" s.label)
          ~unit_:"ticks" ~slo:s.slo_p99 ~config p99;
        det recorder ~section:"detection"
          ~name:(Printf.sprintf "detection.%s.cycles_found" s.label)
          ~unit_:"cycles" ~direction:Sample.Higher_better ~config (float_of_int cycles);
        det recorder ~section:"detection"
          ~name:(Printf.sprintf "detection.%s.cdms_per_cycle" s.label)
          ~unit_:"msgs" ~config
          (float_of_int cdms /. float_of_int (Int.max 1 cycles));
        timing recorder ~section:"detection"
          ~name:(Printf.sprintf "detection.%s.wall_ms" s.label)
          ~unit_:"ms" ~config [ wall ];
        [
          s.label;
          (if clean then Printf.sprintf "%d ticks" ticks else "NOT RECLAIMED");
          Printf.sprintf "%.0f" p50;
          Printf.sprintf "%.0f (SLO %.0f)" p99 s.slo_p99;
          string_of_int cycles;
          string_of_int cdms;
          Printf.sprintf "%.1f ms" wall;
        ])
      (scenarios ())
  in
  Table.print
    ~header:
      [ "scenario"; "time to clean"; "latency p50"; "latency p99"; "cycles"; "CDMs"; "host wall" ]
    ~rows ();
  print_endline "latencies are simulated ticks from the dcda.detection_latency histogram";
  print_endline "(initiation to conclusion per proven cycle), so the p50/p99 gates are";
  print_endline "machine-independent; only the host-wall column is timing-class";
  run_incremental recorder
