(* Detection section (new in the perf harness): end-to-end
   cycle-reclamation latency, in simulated ticks, with percentiles
   drawn from the lib/obs histograms the detector feeds under
   telemetry (dcda.detection_latency: initiation tick to conclusion
   tick, per proven cycle).

   Everything but the host wall column is a pure function of the
   seed, so these are the tightest gates in the document — and the
   p99 latency carries a hard SLO ceiling: blowing past it fails
   `adgc_sim perf check` even if someone also regresses the checked-in
   baseline to match. *)

module Sim = Adgc.Sim
module Config = Adgc.Config
module Stats = Adgc_util.Stats
module Table = Adgc_util.Table
module Topology = Adgc_workload.Topology
open Bench_common

type scenario = {
  label : string;
  procs : int;
  seed : int;
  slo_p99 : float;  (* ticks *)
  build : Adgc_rt.Cluster.t -> unit;
}

let ring ~label ~span ~slo_p99 =
  {
    label;
    procs = span;
    seed = 42;
    slo_p99;
    build =
      (fun cluster ->
        ignore
          (Topology.ring ~objs_per_proc:2 cluster ~procs:(List.init span (fun i -> i))
            : Topology.built));
  }

let scenarios () =
  let base =
    [
      ring ~label:"ring4" ~span:4 ~slo_p99:2048.0;
      {
        label = "fig4";
        procs = 6;
        seed = 42;
        slo_p99 = 2048.0;
        build = (fun cluster -> ignore (Topology.fig4 cluster : Topology.built));
      };
    ]
  in
  if smoke () then base else base @ [ ring ~label:"ring8" ~span:8 ~slo_p99:4096.0 ]

let run_scenario s =
  let config = { (Config.quick ~seed:s.seed ~n_procs:s.procs ()) with Config.telemetry = true } in
  let sim = Sim.create ~config () in
  s.build (Sim.cluster sim);
  Sim.start sim;
  let clean, wall = wall_ms (fun () -> Sim.run_until_clean ~step:500 ~max_time:600_000 sim) in
  let stats = Sim.stats sim in
  let pcts =
    match Adgc_obs.Export.percentiles ~ps:[ 50.0; 99.0 ] stats "dcda.detection_latency" with
    | Some [ (_, p50); (_, p99) ] -> Some (p50, p99)
    | Some _ | None -> None
  in
  let cycles = Stats.get stats "dcda.cycles_found" in
  let cdms = Stats.get stats "net.msg.sent.cdm" in
  let ticks = Sim.now sim in
  Sim.teardown sim;
  (clean, ticks, pcts, cycles, cdms, wall)

let run recorder =
  section "detection: end-to-end cycle-reclamation latency (obs histograms)";
  let rows =
    List.map
      (fun s ->
        let clean, ticks, pcts, cycles, cdms, wall = run_scenario s in
        let p50, p99 = match pcts with Some (a, b) -> (a, b) | None -> (Float.nan, Float.nan) in
        let config =
          [ "detection"; s.label; string_of_int s.procs; string_of_int s.seed ]
        in
        det recorder ~section:"detection"
          ~name:(Printf.sprintf "detection.%s.time_to_clean_ticks" s.label)
          ~unit_:"ticks" ~config (float_of_int ticks);
        det recorder ~section:"detection"
          ~name:(Printf.sprintf "detection.%s.dcda.detection_latency.p50" s.label)
          ~unit_:"ticks" ~config p50;
        det recorder ~section:"detection"
          ~name:(Printf.sprintf "detection.%s.dcda.detection_latency.p99" s.label)
          ~unit_:"ticks" ~slo:s.slo_p99 ~config p99;
        det recorder ~section:"detection"
          ~name:(Printf.sprintf "detection.%s.cycles_found" s.label)
          ~unit_:"cycles" ~direction:Sample.Higher_better ~config (float_of_int cycles);
        det recorder ~section:"detection"
          ~name:(Printf.sprintf "detection.%s.cdms_per_cycle" s.label)
          ~unit_:"msgs" ~config
          (float_of_int cdms /. float_of_int (Int.max 1 cycles));
        timing recorder ~section:"detection"
          ~name:(Printf.sprintf "detection.%s.wall_ms" s.label)
          ~unit_:"ms" ~config [ wall ];
        [
          s.label;
          (if clean then Printf.sprintf "%d ticks" ticks else "NOT RECLAIMED");
          Printf.sprintf "%.0f" p50;
          Printf.sprintf "%.0f (SLO %.0f)" p99 s.slo_p99;
          string_of_int cycles;
          string_of_int cdms;
          Printf.sprintf "%.1f ms" wall;
        ])
      (scenarios ())
  in
  Table.print
    ~header:
      [ "scenario"; "time to clean"; "latency p50"; "latency p99"; "cycles"; "CDMs"; "host wall" ]
    ~rows ();
  print_endline "latencies are simulated ticks from the dcda.detection_latency histogram";
  print_endline "(initiation to conclusion per proven cycle), so the p50/p99 gates are";
  print_endline "machine-independent; only the host-wall column is timing-class"
