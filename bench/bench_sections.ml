(* The section registry, shared by the CLI runner and the smoke test.

   Perf sections feed samples into the recorder and are what
   `adgc_sim perf check` gates; paper sections print the paper's
   tables for humans and record nothing. *)

let perf : (string * (Adgc_perf.Recorder.t -> unit)) list =
  [
    ("tracer", Bench_tracer.run);
    ("telemetry", Bench_telemetry.run);
    ("engine", Bench_engine.run);
    ("net", Bench_net.run);
    ("detection", Bench_detection.run);
    ("scale", Bench_scale.run);
  ]

let paper : (string * (unit -> unit)) list = Bench_paper.sections

let names = List.map fst perf @ List.map fst paper

(* Run the requested sections (all when [names] is empty) against a
   fresh recorder and return the results document.  Unknown names
   raise [Invalid_argument]. *)
let run ?(names = []) () =
  let requested = match names with [] -> List.map fst perf @ List.map fst paper | l -> l in
  List.iter
    (fun name ->
      if (not (List.mem_assoc name perf)) && not (List.mem_assoc name paper) then
        invalid_arg (Printf.sprintf "unknown bench section %S" name))
    requested;
  let recorder = Adgc_perf.Recorder.create ~smoke:(Bench_common.smoke ()) () in
  List.iter
    (fun name ->
      match List.assoc_opt name perf with
      | Some f -> f recorder
      | None -> (List.assoc name paper) ())
    requested;
  Adgc_perf.Recorder.document recorder ~rev:(Bench_common.rev ()) ~host:(Bench_common.host ())
