(* adgc_sim: command-line driver for the simulator.

   Examples:
     adgc_sim run --topology fig3 --time 50000
     adgc_sim run --topology ring --procs 12 --loss 0.1 --detector dcda
     adgc_sim run --topology random --objects 200 --churn 1000 --trace dcda
     adgc_sim trace --topology fig4 *)

module Sim = Adgc.Sim
module Config = Adgc.Config
module Cluster = Adgc_rt.Cluster
module Network = Adgc_rt.Network
module Faults = Adgc_rt.Faults
module Oracle = Adgc_check.Oracle
module Stats = Adgc_util.Stats
module Trace = Adgc_util.Trace
open Adgc_workload

type topology = Fig3 | Fig4 | Fig5 | Ring | Hybrid | Random | Star | Lattice | Web | Chain

let topology_conv =
  let parse = function
    | "fig3" -> Ok Fig3
    | "fig4" -> Ok Fig4
    | "fig5" -> Ok Fig5
    | "ring" -> Ok Ring
    | "hybrid" -> Ok Hybrid
    | "random" -> Ok Random
    | "star" -> Ok Star
    | "lattice" -> Ok Lattice
    | "web" -> Ok Web
    | "chain" -> Ok Chain
    | s -> Error (`Msg (Printf.sprintf "unknown topology %S" s))
  in
  let print ppf t =
    Format.pp_print_string ppf
      (match t with
      | Fig3 -> "fig3"
      | Fig4 -> "fig4"
      | Fig5 -> "fig5"
      | Ring -> "ring"
      | Hybrid -> "hybrid"
      | Random -> "random"
      | Star -> "star"
      | Lattice -> "lattice"
      | Web -> "web"
      | Chain -> "chain")
  in
  Cmdliner.Arg.conv (parse, print)

let detector_conv =
  let parse = function
    | "dcda" -> Ok Config.Dcda
    | "backtrack" -> Ok Config.Backtrack
    | "hughes" -> Ok Config.Hughes_gc
    | "none" -> Ok Config.No_detector
    | s -> Error (`Msg (Printf.sprintf "unknown detector %S" s))
  in
  let print ppf d =
    Format.pp_print_string ppf
      (match d with
      | Config.Dcda -> "dcda"
      | Config.Backtrack -> "backtrack"
      | Config.Hughes_gc -> "hughes"
      | Config.No_detector -> "none")
  in
  Cmdliner.Arg.conv (parse, print)

let engine_conv =
  let parse s =
    match Config.engine_of_string s with
    | Some e -> Ok e
    | None -> Error (`Msg (Printf.sprintf "unknown engine %S (seq or par)" s))
  in
  let print ppf e = Format.pp_print_string ppf (Config.engine_to_string e) in
  Cmdliner.Arg.conv (parse, print)

let candidates_conv =
  let parse s =
    match Config.candidates_of_string s with
    | Some c -> Ok c
    | None -> Error (`Msg (Printf.sprintf "unknown candidate mode %S (scan or incremental)" s))
  in
  let print ppf c = Format.pp_print_string ppf (Config.candidates_to_string c) in
  Cmdliner.Arg.conv (parse, print)

let groups_conv =
  let parse s =
    match Config.groups_of_string s with
    | Some g -> Ok g
    | None -> Error (`Msg (Printf.sprintf "bad group size %S (off, on or an integer)" s))
  in
  let print ppf g = Format.pp_print_string ppf (Config.groups_to_string g) in
  Cmdliner.Arg.conv (parse, print)

let faults_conv =
  let parse s =
    match Faults.profile_of_string s with
    | Some p -> Ok p
    | None -> Error (`Msg (Printf.sprintf "unknown fault profile %S" s))
  in
  let print ppf p = Format.pp_print_string ppf (Faults.profile_name p) in
  Cmdliner.Arg.conv (parse, print)

let min_procs = function
  | Fig3 -> 4
  | Fig4 -> 6
  | Fig5 -> 5
  | Ring -> 2
  | Hybrid -> 3
  | Random -> 2
  | Star -> 4
  | Lattice -> 3
  | Web -> 2
  | Chain -> 2

let build_topology topology cluster ~seed ~objects ~edges =
  match topology with
  | Fig3 ->
      let built = Topology.fig3 cluster in
      (* The figure's cycle is garbage once A's root goes. *)
      Adgc_rt.Mutator.remove_root cluster (Topology.obj built "A");
      built
  | Fig4 -> Topology.fig4 cluster
  | Fig5 ->
      let built = Topology.fig5 cluster in
      Adgc_rt.Mutator.remove_root cluster (Topology.obj built "A");
      built
  | Ring ->
      Topology.ring ~objs_per_proc:2 cluster
        ~procs:(List.init (Cluster.n_procs cluster) (fun i -> i))
  | Hybrid -> Topology.hybrid cluster
  | Random ->
      Topology.random cluster
        ~rng:(Adgc_util.Rng.create (seed + 1))
        ~objects ~edges ~remote_prob:0.35 ~root_prob:0.15
  | Star -> Topology.star_cycles ~arms:(Cluster.n_procs cluster - 1) cluster
  | Lattice -> Topology.lattice cluster ~rows:3 ~cols:(Cluster.n_procs cluster)
  | Web -> Topology.web cluster ~rng:(Adgc_util.Rng.create (seed + 1))
  | Chain ->
      Topology.chain_into_ring cluster
        ~procs:(List.init (Cluster.n_procs cluster) (fun i -> i))

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let run_cmd topology procs seed loss detector candidates groups engine time churn_steps objects
    edges trace_topics crash_list faults_profile metrics_file spans_file inspect quiet =
  let n_procs = Int.max procs (min_procs topology) in
  let config = Config.quick ~seed ~n_procs () in
  let config = Config.with_groups config groups in
  config.Config.net.Network.drop_prob <- loss;
  (* Faults run over the middle of the run: armed at 1/5 of the time
     budget, quiescent at 3/5, leaving the last 2/5 for recovery. *)
  let faults =
    match faults_profile with
    | None -> Faults.none
    | Some p -> Faults.plan_of_profile ~start:(time / 5) ~stop:(time * 3 / 5) ~n_procs p
  in
  let telemetry = metrics_file <> None || spans_file <> None in
  let config = { config with Config.detector; candidates; engine; faults; telemetry } in
  let sim = Sim.create ~config () in
  let cluster = Sim.cluster sim in
  let checker = Metrics.install_safety_checker cluster in
  let oracle = Oracle.install cluster in
  let _built = build_topology topology cluster ~seed ~objects ~edges in
  if churn_steps > 0 then begin
    let churn = Churn.create ~cluster ~rng:(Adgc_util.Rng.create (seed + 2)) () in
    Churn.run churn ~steps:churn_steps ~every:29
  end;
  (* Crash the listed processes one third into the run. *)
  List.iter
    (fun i ->
      Adgc_rt.Scheduler.schedule_after (Cluster.sched cluster) ~delay:(time / 3) (fun () ->
          Cluster.crash cluster i))
    crash_list;
  let initial = Metrics.sample cluster in
  Sim.start sim;
  Sim.run_for sim time;
  let final = Metrics.sample cluster in
  if inspect then Format.printf "@[<v>%a@]@." (Inspect.pp_cluster ?names:None) cluster;
  if not quiet then begin
    Format.printf "initial: %a@." Metrics.pp_sample initial;
    Format.printf "final  : %a@." Metrics.pp_sample final;
    List.iter (fun r -> Format.printf "cycle  : %a@." Adgc_dcda.Report.pp r) (Sim.reports sim);
    let stats = Sim.stats sim in
    let interesting prefix (k, _) =
      String.length k >= String.length prefix && String.sub k 0 (String.length prefix) = prefix
    in
    let print_group prefix =
      List.iter
        (fun (k, v) -> Format.printf "  %-40s %d@." k v)
        (List.filter (interesting prefix) (Stats.counters stats))
    in
    Format.printf "-- collector counters --@.";
    List.iter print_group [ "lgc."; "dgc."; "reflist."; "dcda."; "bt."; "rmi."; "net.msg" ]
  end;
  List.iter
    (fun topic ->
      Format.printf "-- trace %s --@." topic;
      List.iter
        (fun (e : Trace.event) -> Format.printf "%a@." Trace.pp_event e)
        (Trace.by_topic (Sim.trace sim) topic))
    trace_topics;
  Oracle.stop oracle;
  Sim.teardown sim;
  (match metrics_file with
  | None -> ()
  | Some path ->
      let meta =
        [
          ("seed", Adgc_util.Json.Int seed);
          ("procs", Adgc_util.Json.Int n_procs);
          ("time", Adgc_util.Json.Int time);
          ( "detector",
            Adgc_util.Json.Str
              (match detector with
              | Config.Dcda -> "dcda"
              | Config.Backtrack -> "backtrack"
              | Config.Hughes_gc -> "hughes"
              | Config.No_detector -> "none") );
          ("candidates", Adgc_util.Json.Str (Config.candidates_to_string candidates));
          ("groups", Adgc_util.Json.Str (Config.groups_to_string groups));
        ]
      in
      write_file path
        (Adgc_util.Json.to_string_pretty (Adgc_obs.Export.metrics_document ~meta (Sim.stats sim)));
      if not quiet then Printf.printf "metrics written to %s\n" path);
  (match spans_file with
  | None -> ()
  | Some path ->
      write_file path (Adgc_util.Json.to_string (Adgc_obs.Export.chrome_trace (Sim.obs sim)));
      if not quiet then Printf.printf "spans written to %s\n" path);
  match (Metrics.violations checker, Oracle.first_report oracle) with
  | [], None ->
      if final.Metrics.garbage = 0 then begin
        if not quiet then print_endline "OK: no garbage left, no safety violations";
        0
      end
      else begin
        Printf.printf "NOTE: %d garbage objects not yet reclaimed (increase --time?)\n"
          final.Metrics.garbage;
        0
      end
  | violations, oracle_report ->
      if violations <> [] then
        Printf.eprintf "SAFETY VIOLATIONS: %d live objects reclaimed!\n" (List.length violations);
      Option.iter (fun r -> Printf.eprintf "ORACLE:\n%s\n" r) oracle_report;
      1

(* ----------------------------------------------------------------- *)
(* mc: bounded model checking, trace replay and the mutation gauntlet. *)

module Mc_scenario = Adgc_mc.Scenario
module Mc_scenarios = Adgc_mc.Scenarios
module Mc_explore = Adgc_mc.Explore
module Mc_action = Adgc_mc.Action
module Mc_trace = Adgc_mc.Trace
module Mc_mutants = Adgc_mc.Mutants

let pp_trail ppf trail =
  List.iteri (fun i a -> Format.fprintf ppf "  %2d. %a@." (i + 1) Mc_action.pp a) trail

(* On a violation, delta-debug the trail down and save it as a
   replayable counterexample. *)
let emit_counterexample ?mutant ~scenario ~out trail =
  let test t =
    match Mc_explore.run ?mutant scenario t with
    | Ok (_, viols) -> viols <> []
    | Error _ -> false
  in
  let minimized = Mc_explore.ddmin ~test trail in
  let violations =
    match Mc_explore.run ?mutant scenario minimized with
    | Ok (_, viols) -> viols
    | Error _ -> []
  in
  let trace =
    {
      Mc_trace.scenario = scenario.Mc_scenario.name;
      mutant;
      expect = Mc_trace.Violation;
      caps = None;
      violations;
      trail = minimized;
    }
  in
  let path =
    match out with
    | Some p -> p
    | None -> Printf.sprintf "mc_%s_counterexample.json" scenario.Mc_scenario.name
  in
  Mc_trace.save path trace;
  Format.printf "minimized counterexample (%d of %d actions) written to %s@."
    (List.length minimized) (List.length trail) path;
  Format.printf "%a" pp_trail minimized;
  List.iter (fun v -> Format.printf "  violation: %s@." v) violations

let mc_scenarios_of = function
  | None -> Ok Mc_scenarios.all
  | Some name -> (
      match Mc_scenarios.find name with
      | Some s -> Ok [ s ]
      | None ->
          Error
            (Printf.sprintf "unknown scenario %S (have: %s)" name
               (String.concat ", "
                  (List.map (fun (s : Mc_scenario.t) -> s.Mc_scenario.name) Mc_scenarios.all))))

let mc_explore ?mutant ~max_depth ~out scenarios =
  let failed = ref false in
  List.iter
    (fun (s : Mc_scenario.t) ->
      let t0 = Sys.time () in
      let o = Mc_explore.explore ?mutant ~max_depth s in
      let dt = Sys.time () -. t0 in
      Format.printf "%-18s %7d states %8d transitions  %s  (%.1fs)@." s.Mc_scenario.name
        o.Mc_explore.states o.Mc_explore.transitions
        (if o.Mc_explore.complete then "complete" else "depth-capped")
        dt;
      if not o.Mc_explore.complete then failed := true;
      match o.Mc_explore.violation with
      | None -> ()
      | Some (trail, _) ->
          failed := true;
          Format.printf "VIOLATION in %s:@." s.Mc_scenario.name;
          emit_counterexample ?mutant ~scenario:s ~out trail)
    scenarios;
  if !failed then 1 else 0

let mc_swarm ?mutant ~seeds ~steps ~seed ~out scenarios =
  let seed_list = List.init seeds (fun i -> seed + i) in
  let failed = ref false in
  List.iter
    (fun (s : Mc_scenario.t) ->
      match Mc_explore.swarm ?mutant ~seeds:seed_list ~steps s with
      | None ->
          Format.printf "%-18s %d walks x %d steps: no violation@." s.Mc_scenario.name seeds
            steps
      | Some (bad_seed, trail, _) ->
          failed := true;
          Format.printf "VIOLATION in %s (seed %d):@." s.Mc_scenario.name bad_seed;
          emit_counterexample ?mutant ~scenario:s ~out trail)
    scenarios;
  if !failed then 1 else 0

let mc_gauntlet traces_dir =
  (match traces_dir with
  | Some dir when not (Sys.file_exists dir) -> Sys.mkdir dir 0o755
  | Some _ | None -> ());
  let all_ok = ref true in
  List.iter
    (fun (e : Mc_mutants.entry) ->
      let o = Mc_mutants.run_entry e in
      let ok = o.Mc_mutants.caught && o.Mc_mutants.deterministic in
      if not ok then all_ok := false;
      Format.printf "%-28s %s  witness %2d -> minimized %2d%s@." e.Mc_mutants.mutant
        (if o.Mc_mutants.caught then "CAUGHT" else "MISSED")
        (List.length e.Mc_mutants.witness)
        (List.length o.Mc_mutants.minimized)
        (if o.Mc_mutants.caught && not o.Mc_mutants.deterministic then "  NONDETERMINISTIC"
         else "");
      if o.Mc_mutants.caught then
        Option.iter
          (fun dir ->
            let path = Filename.concat dir ("mc_" ^ e.Mc_mutants.mutant ^ ".json") in
            Mc_trace.save path (Mc_mutants.trace_of o))
          traces_dir)
    Mc_mutants.all;
  if !all_ok then begin
    Printf.printf "gauntlet: all %d mutants caught with deterministic minimized traces\n"
      (List.length Mc_mutants.all);
    0
  end
  else begin
    Printf.eprintf "gauntlet: FAILED (a mutant escaped or a trace was nondeterministic)\n";
    1
  end

let mc_replay file =
  match Mc_trace.load file with
  | Error e ->
      Printf.eprintf "%s: %s\n" file e;
      2
  | Ok t -> (
      Format.printf "replaying %s: scenario %s%s, %d actions@." file t.Mc_trace.scenario
        (match t.Mc_trace.mutant with Some m -> " under mutant " ^ m | None -> "")
        (List.length t.Mc_trace.trail);
      match Mc_trace.replay t with
      | Mc_trace.Reproduced ->
          print_endline "reproduced";
          0
      | Mc_trace.Failed reason ->
          Printf.eprintf "FAILED to reproduce: %s\n" reason;
          1)

let mc_cmd scenario mutant max_depth gauntlet swarm seeds steps seed replay traces_dir out =
  match replay with
  | Some file -> mc_replay file
  | None ->
      if gauntlet then mc_gauntlet traces_dir
      else begin
        match mc_scenarios_of scenario with
        | Error msg ->
            Printf.eprintf "%s\n" msg;
            2
        | Ok scenarios ->
            if swarm then mc_swarm ?mutant ~seeds ~steps ~seed ~out scenarios
            else mc_explore ?mutant ~max_depth ~out scenarios
      end

type trace_format = Text | Chrome | Jsonl

let trace_format_conv =
  let parse = function
    | "text" -> Ok Text
    | "chrome" -> Ok Chrome
    | "jsonl" -> Ok Jsonl
    | s -> Error (`Msg (Printf.sprintf "unknown trace format %S" s))
  in
  let print ppf f =
    Format.pp_print_string ppf
      (match f with Text -> "text" | Chrome -> "chrome" | Jsonl -> "jsonl")
  in
  Cmdliner.Arg.conv (parse, print)

let trace_cmd topology seed format out =
  let n_procs = min_procs topology in
  let config = Config.quick ~seed ~n_procs () in
  (* Structured exports need the span ring; the text dump keeps the
     seed behaviour (plain Trace buffer, telemetry off). *)
  let config =
    { config with Config.telemetry = (match format with Text -> false | Chrome | Jsonl -> true) }
  in
  let sim = Sim.create ~config () in
  let cluster = Sim.cluster sim in
  let built = build_topology topology cluster ~seed ~objects:0 ~edges:0 in
  (* Let the candidates age past the idle threshold. *)
  Sim.run_for sim 1_000;
  Sim.snapshot_all sim;
  let started = Sim.scan_all sim in
  ignore (Cluster.drain cluster : int);
  Sim.teardown sim;
  let emit contents =
    match out with
    | None -> print_string contents
    | Some path ->
        write_file path contents;
        Printf.printf "trace written to %s\n" path
  in
  (match format with
  | Chrome -> emit (Adgc_util.Json.to_string (Adgc_obs.Export.chrome_trace (Sim.obs sim)))
  | Jsonl -> emit (Adgc_obs.Export.jsonl (Sim.obs sim))
  | Text ->
      Format.printf "detections initiated by one scan: %d@." started;
      List.iter
        (fun (e : Trace.event) -> Format.printf "%a@." Trace.pp_event e)
        (Trace.by_topic (Sim.trace sim) "dcda");
      List.iter
        (fun (r : Adgc_dcda.Report.t) ->
          Format.printf "@.proven cycle (%d refs):@." (List.length r.Adgc_dcda.Report.proven);
          List.iter
            (fun key -> Format.printf "  %a@." (Names.pp_ref built.Topology.names) key)
            r.Adgc_dcda.Report.proven;
          Format.printf "%a@." Adgc_dcda.Report.pp_lineage r)
        (Sim.reports sim));
  0

(* ----------------------------------------------------------------- *)
(* serve/drive: the socket-backed multi-process driver.  [drive]
   spawns one [serve] process per rank (re-executing this binary),
   waits for the peer mesh, runs the same kernel duties off wall-clock
   timers, and judges the gathered final state with the same oracle
   invariants the in-memory drivers use. *)

module Net_scenario = Adgc_net.Scenario
module Coordinator = Adgc_net.Coordinator

let serve_cmd dir rank topology procs seed detector candidates groups objects edges tick_us
    max_ticks =
  let scenario =
    Net_scenario.make ~topology ~procs ~seed ~detector ~candidates ~groups ~objects ~edges ()
  in
  match Adgc_net.Node.main { Adgc_net.Node.rank; scenario; dir; tick_us; max_ticks } with
  | () -> 0
  | exception (Failure msg | Invalid_argument msg) ->
      Printf.eprintf "serve: %s\n" msg;
      1

let drive_cmd topology procs seed detector candidates groups objects edges tick_us deadline dir
    keep_dir kill drop metrics_file spans_file quiet =
  let scenario =
    Net_scenario.make ~topology ~procs ~seed ~detector ~candidates ~groups ~objects ~edges ()
  in
  let faults =
    (match kill with
    | Some (rank, after_s) -> [ Coordinator.Kill { rank; after_s } ]
    | None -> [])
    @
    match drop with
    | Some (rank, peer, after_s) -> [ Coordinator.Drop { rank; peer; after_s } ]
    | None -> []
  in
  let opts =
    Coordinator.options ?dir ~tick_us ~deadline_s:deadline ~faults
      ~spawn:(Coordinator.Exec [ Sys.executable_name; "serve" ])
      ~keep_dir scenario
  in
  match Coordinator.run opts with
  | result ->
      if not quiet then Format.printf "%a@." Coordinator.pp_result result;
      (match metrics_file with
      | None -> ()
      | Some path ->
          let meta =
            [
              ("driver", Adgc_util.Json.Str "net");
              ("topology", Adgc_util.Json.Str (Net_scenario.topology_to_string topology));
              ("procs", Adgc_util.Json.Int (Net_scenario.n_procs scenario));
              ("seed", Adgc_util.Json.Int seed);
              ("detector", Adgc_util.Json.Str (Net_scenario.detector_to_string detector));
              ("candidates", Adgc_util.Json.Str (Config.candidates_to_string candidates));
              ("groups", Adgc_util.Json.Str (Config.groups_to_string groups));
              ("tick_us", Adgc_util.Json.Int tick_us);
              ("wall_s", Adgc_util.Json.Float result.Coordinator.wall_s);
              ("ok", Adgc_util.Json.Bool (Coordinator.ok result));
            ]
          in
          write_file path
            (Adgc_util.Json.to_string_pretty
               (Adgc_obs.Export.metrics_document ~meta result.Coordinator.stats));
          if not quiet then Printf.printf "metrics written to %s\n" path);
      (match spans_file with
      | None -> ()
      | Some path ->
          write_file path
            (Adgc_util.Json.to_string (Adgc_obs.Export.chrome_trace result.Coordinator.obs));
          if not quiet then Printf.printf "spans written to %s\n" path);
      if Coordinator.ok result then 0
      else begin
        Format.eprintf "NET RUN FAILED (logs in %s):@.%a@." result.Coordinator.dir
          Coordinator.pp_result result;
        1
      end
  | exception Failure msg ->
      Printf.eprintf "drive: %s\n" msg;
      1

(* ----------------------------------------------------------------- *)
(* perf: gate benchmark results against the checked-in baseline.      *)

module Perf_results = Adgc_perf.Results
module Perf_compare = Adgc_perf.Compare

let fmt_value v = if Float.is_integer v && Float.abs v < 1e9 then Printf.sprintf "%.0f" v else Printf.sprintf "%.3f" v

let fmt_sample = function
  | None -> "-"
  | Some (s : Adgc_perf.Sample.t) -> Printf.sprintf "%s %s" (fmt_value s.Adgc_perf.Sample.median) s.Adgc_perf.Sample.unit_

let pp_findings ?(all = false) findings =
  let shown =
    if all then findings
    else
      List.filter
        (fun f -> f.Perf_compare.verdict <> Perf_compare.Unchanged || f.Perf_compare.slo_violated)
        findings
  in
  if shown <> [] then
    Adgc_util.Table.print
      ~header:[ "series"; "verdict"; "baseline"; "current"; "detail" ]
      ~rows:
        (List.map
           (fun (f : Perf_compare.finding) ->
             [
               f.Perf_compare.name;
               Perf_compare.verdict_to_string f.Perf_compare.verdict
               ^ (if f.Perf_compare.slo_violated then " +SLO" else "");
               fmt_sample f.Perf_compare.base;
               fmt_sample f.Perf_compare.current;
               f.Perf_compare.detail;
             ])
           shown)
      ();
  let tally = Perf_compare.tally findings in
  print_endline
    (String.concat "  "
       (List.map
          (fun (v, n) -> Printf.sprintf "%s: %d" (Perf_compare.verdict_to_string v) n)
          tally))

let perf_load what path =
  match Perf_results.load path with
  | Ok doc -> Ok doc
  | Error e -> Error (Printf.sprintf "%s (%s): %s" what path e)

let perf_tolerance rel stddev_mult min_effect relax =
  { Perf_compare.rel; stddev_mult; min_effect; relax }

let perf_check_cmd baseline current rel stddev_mult min_effect relax quiet =
  let tol = perf_tolerance rel stddev_mult min_effect relax in
  match perf_load "baseline" baseline with
  | Error e ->
      Printf.eprintf "perf check: %s\n" e;
      2
  | Ok base_doc -> (
      let current_doc =
        if Sys.file_exists current then perf_load "current results" current
        else begin
          (* No fresh run to judge: self-check the baseline so a clean
             checkout (bench not yet run) gates trivially green while
             still validating the document and any SLO ceilings. *)
          if not quiet then
            Printf.printf "no current results at %s; self-checking the baseline\n" current;
          Ok base_doc
        end
      in
      match current_doc with
      | Error e ->
          Printf.eprintf "perf check: %s\n" e;
          2
      | Ok cur_doc ->
          let findings = Perf_compare.compare_docs ~tol ~baseline:base_doc ~current:cur_doc () in
          if not quiet then pp_findings findings;
          let code = Perf_compare.exit_code findings in
          (if code = 0 then (if not quiet then print_endline "perf check: PASS")
           else
             Printf.eprintf "perf check: FAIL (%d gating regression%s)\n"
               (List.length (Perf_compare.regressions findings))
               (if List.length (Perf_compare.regressions findings) = 1 then "" else "s"));
          code)

let perf_promote_cmd baseline current quiet =
  match perf_load "current results" current with
  | Error e ->
      Printf.eprintf "perf promote: %s\n" e;
      2
  | Ok doc ->
      Perf_compare.promote ~baseline_path:baseline doc;
      if not quiet then Printf.printf "promoted %s -> %s\n" current baseline;
      0

let perf_report_cmd baseline current rel stddev_mult min_effect relax =
  let tol = perf_tolerance rel stddev_mult min_effect relax in
  match (perf_load "baseline" baseline, perf_load "current results" current) with
  | Error e, _ | _, Error e ->
      Printf.eprintf "perf report: %s\n" e;
      2
  | Ok base_doc, Ok cur_doc ->
      Printf.printf "baseline: rev %s (smoke=%b)  current: rev %s (smoke=%b, %d cores)\n"
        base_doc.Perf_results.rev base_doc.Perf_results.smoke cur_doc.Perf_results.rev
        cur_doc.Perf_results.smoke cur_doc.Perf_results.host.Perf_results.cores;
      pp_findings ~all:true (Perf_compare.compare_docs ~tol ~baseline:base_doc ~current:cur_doc ());
      0

open Cmdliner

let topology_arg =
  Arg.(value & opt topology_conv Ring & info [ "topology"; "t" ] ~doc:"Topology: fig3, fig4, fig5, ring, hybrid, random, star, lattice, web or chain.")

(* Scale knobs default from the environment so CI matrix legs and the
   scale smoke job can sweep process/object counts without rewriting
   every command line. *)
let int_env var default =
  match Sys.getenv_opt var with
  | Some s -> ( match int_of_string_opt (String.trim s) with Some n when n > 0 -> n | _ -> default)
  | None -> default

let procs_arg =
  Arg.(
    value
    & opt int (int_env "ADGC_PROCS" 4)
    & info [ "procs"; "p" ] ~doc:"Number of processes (default from ADGC_PROCS, then 4).")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Deterministic seed.")

let loss_arg = Arg.(value & opt float 0.0 & info [ "loss" ] ~doc:"Message drop probability.")

let detector_arg =
  Arg.(value & opt detector_conv Config.Dcda & info [ "detector"; "d" ] ~doc:"dcda, backtrack, hughes or none.")

let candidates_arg =
  Arg.(
    value
    & opt candidates_conv (Config.candidates_of_env ())
    & info [ "candidates" ]
        ~doc:
          "DCDA cycle-candidate source: scan (recompute from each published summary, the \
           oracle) or incremental (labels maintained from stub/scion edge mutations; the \
           periodic audit duty cross-checks against the scan-derived set). Defaults to the \
           ADGC_CANDIDATES environment variable, then scan."
        ~docv:"MODE")

let engine_arg =
  Arg.(
    value
    & opt engine_conv (Config.engine_of_env ())
    & info [ "engine" ]
        ~doc:
          "Execution engine for the bulk phases: seq (interleaved, the reference) or par \
           (domain-parallel prepares, byte-identical output; worker count from \
           ADGC_POOL_DOMAINS). Defaults to the ADGC_ENGINE environment variable, then seq."
        ~docv:"ENGINE")

let time_arg = Arg.(value & opt int 100_000 & info [ "time" ] ~doc:"Simulated ticks to run.")

let churn_arg = Arg.(value & opt int 0 & info [ "churn" ] ~doc:"Random mutator actions to schedule.")

let objects_arg =
  Arg.(
    value
    & opt int (int_env "ADGC_OBJECTS" 100)
    & info [ "objects" ]
        ~doc:"Objects (random topology; default from ADGC_OBJECTS, then 100).")

let groups_arg =
  Arg.(
    value
    & opt groups_conv (Config.groups_of_env ())
    & info [ "groups" ]
        ~doc:
          "Hierarchical process-group size: off (flat routing), on (groups of 8) or an \
           integer size. DGC control traffic between groups is aggregated through per-group \
           proxies. Defaults to the ADGC_GROUPS environment variable, then off."
        ~docv:"SIZE")

let edges_arg = Arg.(value & opt int 200 & info [ "edges" ] ~doc:"Edges (random topology).")

let trace_arg =
  Arg.(value & opt_all string [] & info [ "trace" ] ~doc:"Print a trace topic (dcda, reflist, lgc, snapshot, bt). Repeatable.")

let quiet_arg = Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Only report problems.")

let crash_arg =
  Arg.(value & opt_all int [] & info [ "crash" ] ~doc:"Crash process $(docv) one third into the run. Repeatable." ~docv:"PROC")

let inspect_arg =
  Arg.(value & flag & info [ "inspect" ] ~doc:"Dump the full cluster state at the end.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ]
        ~doc:"Write the run's metrics (counters, histograms, series) as JSON to $(docv). Implies telemetry."
        ~docv:"FILE")

let spans_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "spans" ]
        ~doc:"Write the run's span timeline as Chrome trace_event JSON to $(docv). Implies telemetry."
        ~docv:"FILE")

let trace_format_arg =
  Arg.(
    value
    & opt trace_format_conv Text
    & info [ "format"; "f" ]
        ~doc:"Output format: text (CDM trace + lineage), chrome (trace_event JSON for \
              about:tracing/Perfetto) or jsonl (one span per line)."
        ~docv:"FORMAT")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out"; "o" ] ~doc:"Write the export to $(docv) instead of stdout." ~docv:"FILE")

let faults_arg =
  Arg.(
    value
    & opt (some faults_conv) None
    & info [ "faults" ]
        ~doc:
          "Fault-injection profile: loss-burst, duplicate, reorder, partition-heal or \
           crash-restart. Active over the middle of the run; the oracle reports any safety \
           violation."
        ~docv:"PROFILE")

let run_term =
  Term.(
    const run_cmd $ topology_arg $ procs_arg $ seed_arg $ loss_arg $ detector_arg
    $ candidates_arg $ groups_arg $ engine_arg $ time_arg $ churn_arg $ objects_arg $ edges_arg
    $ trace_arg $ crash_arg $ faults_arg $ metrics_arg $ spans_arg $ inspect_arg $ quiet_arg)

let run_cmd_info = Cmd.info "run" ~doc:"Run a scenario end to end and report."

let trace_term = Term.(const trace_cmd $ topology_arg $ seed_arg $ trace_format_arg $ out_arg)

let trace_cmd_info =
  Cmd.info "trace" ~doc:"Run one detection on a figure topology and print the CDM trace."

let mc_scenario_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "scenario"; "s" ]
        ~doc:"Restrict to one model-checking scenario (default: all of them)." ~docv:"NAME")

let mc_mutant_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "mutant"; "m" ] ~doc:"Activate one Mc_mutate protocol variant." ~docv:"NAME")

let mc_depth_arg =
  Arg.(value & opt int 64 & info [ "max-depth" ] ~doc:"Exploration depth bound.")

let mc_gauntlet_arg =
  Arg.(
    value
    & flag
    & info [ "gauntlet" ]
        ~doc:"Run the mutation gauntlet: every mutant must be caught with a deterministic \
              minimized trace.")

let mc_swarm_arg =
  Arg.(
    value
    & flag
    & info [ "swarm" ] ~doc:"Randomized per-seed walks instead of exhaustive exploration.")

let mc_seeds_arg =
  Arg.(value & opt int 32 & info [ "seeds" ] ~doc:"Number of swarm walks.")

let mc_steps_arg =
  Arg.(value & opt int 40 & info [ "steps" ] ~doc:"Actions per swarm walk.")

let mc_replay_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "replay" ] ~doc:"Replay a counterexample trace file and verify it reproduces."
        ~docv:"FILE")

let mc_traces_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "traces-dir" ]
        ~doc:"Gauntlet: write each minimized counterexample as JSON into $(docv)."
        ~docv:"DIR")

let mc_term =
  Term.(
    const mc_cmd $ mc_scenario_arg $ mc_mutant_arg $ mc_depth_arg $ mc_gauntlet_arg
    $ mc_swarm_arg $ mc_seeds_arg $ mc_steps_arg $ seed_arg $ mc_replay_arg
    $ mc_traces_dir_arg $ out_arg)

let mc_cmd_info =
  Cmd.info "mc"
    ~doc:
      "Bounded model checking: exhaustively explore small-scope scenarios under every \
       interleaving of deliveries, drops and collector duties; replay minimized \
       counterexamples; run the mutation gauntlet."

(* serve / drive *)

let net_topology_conv =
  let parse s =
    match Net_scenario.topology_of_string s with
    | Some t -> Ok t
    | None -> Error (`Msg (Printf.sprintf "unknown topology %S" s))
  in
  Arg.conv (parse, fun ppf t -> Format.pp_print_string ppf (Net_scenario.topology_to_string t))

let net_detector_conv =
  let parse s =
    match Net_scenario.detector_of_string s with
    | Some d -> Ok d
    | None -> Error (`Msg (Printf.sprintf "unknown detector %S (hughes is not driveable over sockets)" s))
  in
  Arg.conv (parse, fun ppf d -> Format.pp_print_string ppf (Net_scenario.detector_to_string d))

let net_topology_arg =
  Arg.(
    value
    & opt net_topology_conv Net_scenario.Ring
    & info [ "topology"; "t" ]
        ~doc:"Topology: fig3, fig4, fig5, ring, hybrid, random, star, lattice, web or chain.")

let net_detector_arg =
  Arg.(
    value
    & opt net_detector_conv Config.Dcda
    & info [ "detector"; "d" ] ~doc:"dcda, backtrack or none.")

let tick_us_arg =
  Arg.(
    value
    & opt int 100
    & info [ "tick-us" ] ~doc:"Wall microseconds per simulated tick." ~docv:"US")

let serve_dir_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "dir" ] ~doc:"Socket/log directory shared with the coordinator." ~docv:"DIR")

let serve_rank_arg =
  Arg.(required & opt (some int) None & info [ "rank" ] ~doc:"This node's process rank.")

let max_ticks_arg =
  Arg.(
    value
    & opt int 10_000_000
    & info [ "max-ticks" ] ~doc:"Refuse to simulate past this tick (safety stop).")

let serve_term =
  Term.(
    const serve_cmd $ serve_dir_arg $ serve_rank_arg $ net_topology_arg $ procs_arg $ seed_arg
    $ net_detector_arg $ candidates_arg $ groups_arg $ objects_arg $ edges_arg $ tick_us_arg
    $ max_ticks_arg)

let serve_cmd_info =
  Cmd.info "serve"
    ~doc:
      "Run one node of the socket-backed driver (normally spawned by $(b,drive), not by \
       hand): build the scenario replica, join the peer mesh, and run this rank's \
       collector duties off wall-clock timers until the coordinator says shutdown."

let drive_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dir" ] ~doc:"Socket/log directory (default: a fresh temp dir)." ~docv:"DIR")

let keep_dir_arg =
  Arg.(value & flag & info [ "keep-dir" ] ~doc:"Keep the socket/log directory after a clean run.")

let deadline_arg =
  Arg.(
    value
    & opt float 60.0
    & info [ "deadline" ] ~doc:"Wall-clock seconds allowed after start." ~docv:"SECONDS")

let kill_arg =
  Arg.(
    value
    & opt (some (pair ~sep:'@' int float)) None
    & info [ "kill" ]
        ~doc:"Fault injection: SIGKILL rank $(i,R) $(i,S) seconds after start (R@S)."
        ~docv:"R@S")

let drop_arg =
  Arg.(
    value
    & opt (some (t3 ~sep:'@' int int float)) None
    & info [ "drop" ]
        ~doc:
          "Fault injection: tell rank $(i,A) to sever its link to rank $(i,B) $(i,S) \
           seconds after start (A@B@S); the link reconnects and replays."
        ~docv:"A@B@S")

let drive_term =
  Term.(
    const drive_cmd $ net_topology_arg $ procs_arg $ seed_arg $ net_detector_arg
    $ candidates_arg $ groups_arg $ objects_arg $ edges_arg $ tick_us_arg $ deadline_arg
    $ drive_dir_arg $ keep_dir_arg $ kill_arg $ drop_arg $ metrics_arg $ spans_arg $ quiet_arg)

let drive_cmd_info =
  Cmd.info "drive"
    ~doc:
      "Run a scenario on real OS processes over Unix-domain sockets: spawn one node per \
       rank, wait for the peer mesh, collect until every expected-garbage object is \
       reclaimed, then gather state and run the oracle invariants over the union."

(* perf *)

let baseline_arg =
  Arg.(
    value
    & opt string "bench/baseline.json"
    & info [ "baseline" ] ~doc:"The checked-in baseline document." ~docv:"FILE")

let current_arg =
  Arg.(
    value
    & opt string "bench/results/latest.json"
    & info [ "current" ] ~doc:"The results document to judge (written by bench/main.exe)."
        ~docv:"FILE")

let rel_arg =
  Arg.(
    value
    & opt float Adgc_perf.Compare.default_tolerance.Adgc_perf.Compare.rel
    & info [ "rel" ] ~doc:"Relative threshold as a fraction of the baseline median.")

let stddev_mult_arg =
  Arg.(
    value
    & opt float Adgc_perf.Compare.default_tolerance.Adgc_perf.Compare.stddev_mult
    & info [ "stddev-mult" ] ~doc:"Multiples of the noisier side's stddev added to the band.")

let min_effect_arg =
  Arg.(
    value
    & opt float Adgc_perf.Compare.default_tolerance.Adgc_perf.Compare.min_effect
    & info [ "min-effect" ]
        ~doc:"Absolute floor (in the sample's unit) below which nothing flags.")

let relax_arg =
  Arg.(
    value
    & opt float 1.0
    & info [ "relax" ]
        ~doc:
          "Extra tolerance multiplier applied to timing-class series only (use on slow or \
           1-core CI runners); deterministic series are never relaxed.")

let perf_check_term =
  Term.(
    const perf_check_cmd $ baseline_arg $ current_arg $ rel_arg $ stddev_mult_arg
    $ min_effect_arg $ relax_arg $ quiet_arg)

let perf_check_info =
  Cmd.info "check"
    ~doc:
      "Compare the latest bench results against the checked-in baseline; exit 1 on a gating \
       regression (noise-model verdict or SLO breach), 2 on a usage/IO error.  Without a \
       current results file the baseline self-checks (clean checkouts gate green)."

let perf_promote_term = Term.(const perf_promote_cmd $ baseline_arg $ current_arg $ quiet_arg)

let perf_promote_info =
  Cmd.info "promote"
    ~doc:
      "Overwrite the checked-in baseline with the latest results (canonical rendering, so a \
       promote followed by a check is always clean)."

let perf_report_term =
  Term.(
    const perf_report_cmd $ baseline_arg $ current_arg $ rel_arg $ stddev_mult_arg
    $ min_effect_arg $ relax_arg)

let perf_report_info =
  Cmd.info "report" ~doc:"Print every series verdict (informational; always exits 0 or 2)."

let perf_cmd =
  Cmd.group
    (Cmd.info "perf"
       ~doc:
         "The continuous perf harness: gate, promote or report bench results against \
          bench/baseline.json (see docs/BENCHMARKING.md).")
    [
      Cmd.v perf_check_info perf_check_term;
      Cmd.v perf_promote_info perf_promote_term;
      Cmd.v perf_report_info perf_report_term;
    ]

let main =
  Cmd.group
    (Cmd.info "adgc_sim" ~version:"1.0.0"
       ~doc:"Asynchronous complete distributed garbage collection simulator.")
    [
      Cmd.v run_cmd_info run_term;
      Cmd.v trace_cmd_info trace_term;
      Cmd.v mc_cmd_info mc_term;
      Cmd.v serve_cmd_info serve_term;
      Cmd.v drive_cmd_info drive_term;
      perf_cmd;
    ]

let () = exit (Cmd.eval' main)
