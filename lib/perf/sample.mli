(** The uniform benchmark sample record every section reports
    through: one named measurement with descriptive statistics over
    its repetitions, a direction (is lower or higher better?), a
    noise class, an optional SLO ceiling and a digest of the
    configuration that produced it. *)

module Json = Adgc_util.Json

type direction =
  | Lower_better  (** latencies, durations, message counts *)
  | Higher_better  (** throughputs, speedups *)

(** How the comparator should treat the value. *)
type klass =
  | Timing
      (** host-wall-clock dependent; gated loosely and scaled by the
          relax factor on slow/1-core runners *)
  | Deterministic
      (** a pure function of the seed (sim ticks, message counts,
          bytes); gated tightly and never relaxed *)

type t = {
  name : string;  (** e.g. ["tracer.trace.dense_ms.10000"] *)
  unit_ : string;  (** "ms", "ticks", "msgs", "ops/s", ... *)
  reps : int;
  median : float;
  mean : float;
  stddev : float;
  min : float;
  p99 : float;
  direction : direction;
  klass : klass;
  slo : float option;
      (** hard ceiling (in [unit_], [Lower_better] semantics): the
          comparator flags the sample even without a baseline entry *)
  config_digest : string;
}

val direction_to_string : direction -> string

val direction_of_string : string -> direction option

val klass_to_string : klass -> string

val klass_of_string : string -> klass option

val of_values :
  name:string ->
  unit_:string ->
  direction:direction ->
  klass:klass ->
  ?slo:float ->
  config_digest:string ->
  float list ->
  t
(** Build a sample from raw per-repetition measurements.  Raises
    [Invalid_argument] on an empty list. *)

val scalar :
  name:string ->
  unit_:string ->
  direction:direction ->
  klass:klass ->
  ?slo:float ->
  config_digest:string ->
  float ->
  t
(** A single-measurement sample ([reps = 1], all statistics equal). *)

val to_json : t -> Json.t

val of_json : Json.t -> (t, string) result
