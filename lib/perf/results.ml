module Json = Adgc_util.Json

let schema_version = 1

type host = { cores : int; worker_domains : int }

type t = {
  rev : string;
  smoke : bool;
  host : host;
  sections : (string * Sample.t list) list;
}

let normalize t =
  let sections =
    t.sections
    |> List.map (fun (name, samples) ->
           (name, List.sort (fun (a : Sample.t) b -> String.compare a.Sample.name b.name) samples))
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  { t with sections }

let samples t = List.concat_map snd t.sections

let find t name =
  List.find_opt (fun (s : Sample.t) -> s.Sample.name = name) (samples t)

let to_json t =
  let t = normalize t in
  Json.Obj
    [
      ("schema_version", Json.Int schema_version);
      ("rev", Json.Str t.rev);
      ("smoke", Json.Bool t.smoke);
      ( "host",
        Json.Obj
          [
            ("cores", Json.Int t.host.cores);
            ("worker_domains", Json.Int t.host.worker_domains);
          ] );
      ( "sections",
        Json.obj_sorted
          (List.map
             (fun (name, samples) -> (name, Json.Arr (List.map Sample.to_json samples)))
             t.sections) );
    ]

let member k = function Json.Obj fields -> List.assoc_opt k fields | _ -> None

let of_json j =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let* () =
    match member "schema_version" j with
    | Some (Json.Int v) when v = schema_version -> Ok ()
    | Some (Json.Int v) -> Error (Printf.sprintf "unsupported schema_version %d" v)
    | _ -> Error "missing schema_version"
  in
  let* rev =
    match member "rev" j with Some (Json.Str s) -> Ok s | _ -> Error "missing rev"
  in
  let* smoke =
    match member "smoke" j with Some (Json.Bool b) -> Ok b | _ -> Error "missing smoke"
  in
  let* host =
    match member "host" j with
    | Some h -> (
        match (member "cores" h, member "worker_domains" h) with
        | Some (Json.Int cores), Some (Json.Int worker_domains) -> Ok { cores; worker_domains }
        | _ -> Error "malformed host")
    | None -> Error "missing host"
  in
  let* sections =
    match member "sections" j with
    | Some (Json.Obj fields) ->
        List.fold_left
          (fun acc (name, v) ->
            let* acc = acc in
            match v with
            | Json.Arr items ->
                let* samples =
                  List.fold_left
                    (fun acc item ->
                      let* acc = acc in
                      let* s = Sample.of_json item in
                      Ok (s :: acc))
                    (Ok []) items
                in
                Ok ((name, List.rev samples) :: acc)
            | _ -> Error (Printf.sprintf "section %S is not an array" name))
          (Ok []) fields
        |> Result.map List.rev
    | _ -> Error "missing sections"
  in
  Ok (normalize { rev; smoke; host; sections })

let of_string s = Result.bind (Json.of_string s) of_json

let to_string t = Json.to_string_pretty (to_json t)

(* The non-timing identity of a document: every structural field plus
   the values of Deterministic samples, with Timing values blanked.
   Two same-seed runs must agree on this byte string however noisy
   the host clock was. *)
let fingerprint t =
  let t = normalize t in
  let sample (s : Sample.t) =
    let v f = match s.klass with Sample.Deterministic -> Json.of_float f | Timing -> Json.Null in
    Json.obj_sorted
      [
        ("name", Json.Str s.name);
        ("unit", Json.Str s.unit_);
        ("reps", Json.Int s.reps);
        ("median", v s.median);
        ("min", v s.min);
        ("direction", Json.Str (Sample.direction_to_string s.direction));
        ("class", Json.Str (Sample.klass_to_string s.klass));
        ("slo", match s.slo with Some x -> Json.of_float x | None -> Json.Null);
        ("config_digest", Json.Str s.config_digest);
      ]
  in
  Json.to_string
    (Json.obj_sorted
       (List.map (fun (name, ss) -> (name, Json.Arr (List.map sample ss))) t.sections))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc contents)

let load path =
  match read_file path with
  | exception Sys_error e -> Error e
  | contents -> (
      match of_string contents with
      | Ok t -> Ok t
      | Error e -> Error (Printf.sprintf "%s: %s" path e))

let save path t = write_file path (to_string t)

let mkdir_p dir =
  let rec go d =
    if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      (try Sys.mkdir d 0o755 with Sys_error _ -> ())
    end
  in
  go dir

(* One canonical landing spot per revision plus a stable alias the
   comparator and CI read by default. *)
let save_results ~dir t =
  mkdir_p dir;
  let rev_path = Filename.concat dir (t.rev ^ ".json") in
  save rev_path t;
  let latest = Filename.concat dir "latest.json" in
  save latest t;
  (rev_path, latest)
