type verdict = Improved | Unchanged | Regressed | Missing | New

let verdict_to_string = function
  | Improved -> "improved"
  | Unchanged -> "unchanged"
  | Regressed -> "REGRESSED"
  | Missing -> "missing"
  | New -> "new"

type tolerance = {
  rel : float;
  stddev_mult : float;
  min_effect : float;
  relax : float;
}

(* 10% relative, three sigmas of the noisier side, and a one-unit
   absolute floor so sub-unit wobble on tiny values never flags.
   [relax] widens the Timing-class band only: deterministic series
   (ticks, messages, bytes) mean the same thing on every host. *)
let default_tolerance = { rel = 0.10; stddev_mult = 3.0; min_effect = 1.0; relax = 1.0 }

type finding = {
  name : string;
  verdict : verdict;
  base : Sample.t option;
  current : Sample.t option;
  ratio : float option;  (** current/baseline median *)
  slo_violated : bool;
  detail : string;
}

let finite f = Float.is_finite f

let band tol (base : Sample.t) (cur : Sample.t) =
  let noise = tol.stddev_mult *. Float.max base.Sample.stddev cur.Sample.stddev in
  let raw = Float.max (tol.rel *. Float.abs base.Sample.median) (Float.max noise tol.min_effect) in
  match cur.Sample.klass with
  | Sample.Timing -> raw *. Float.max 1.0 tol.relax
  | Sample.Deterministic -> raw

(* Positive effect = worse, whatever the sample's direction. *)
let effect_of (base : Sample.t) (cur : Sample.t) =
  let delta = cur.Sample.median -. base.Sample.median in
  match cur.Sample.direction with
  | Sample.Lower_better -> delta
  | Sample.Higher_better -> -.delta

let slo_of (cur : Sample.t) (base : Sample.t option) =
  match cur.Sample.slo with
  | Some _ as s -> s
  | None -> Option.bind base (fun (b : Sample.t) -> b.Sample.slo)

(* An SLO is an absolute ceiling in [Lower_better] terms: the sample
   breaches it on its own, baseline or not. *)
let slo_breach (cur : Sample.t) (base : Sample.t option) =
  match slo_of cur base with
  | Some ceiling when finite cur.Sample.median && cur.Sample.median > ceiling ->
      Some (Printf.sprintf "SLO breach: %g %s > ceiling %g" cur.Sample.median cur.Sample.unit_ ceiling)
  | Some _ | None -> None

let judge_pair tol (base : Sample.t) (cur : Sample.t) =
  let slo = slo_breach cur (Some base) in
  let ratio =
    if finite base.Sample.median && Float.abs base.Sample.median > 0.0 then
      Some (cur.Sample.median /. base.Sample.median)
    else None
  in
  if not (finite base.Sample.median && finite cur.Sample.median) then
    {
      name = cur.Sample.name;
      verdict = (if slo = None then Unchanged else Regressed);
      base = Some base;
      current = Some cur;
      ratio = None;
      slo_violated = slo <> None;
      detail = Option.value slo ~default:"non-finite median; not compared";
    }
  else
    let eff = effect_of base cur in
    let tol_band = band tol base cur in
    let verdict =
      if slo <> None then Regressed
      else if eff > tol_band then Regressed
      else if eff < -.tol_band then Improved
      else Unchanged
    in
    let detail =
      match slo with
      | Some msg -> msg
      | None ->
          Printf.sprintf "%+.3g %s vs tolerance %.3g" eff cur.Sample.unit_ tol_band
    in
    {
      name = cur.Sample.name;
      verdict;
      base = Some base;
      current = Some cur;
      ratio;
      slo_violated = slo <> None;
      detail;
    }

let compare_docs ?(tol = default_tolerance) ~(baseline : Results.t) ~(current : Results.t) () =
  let base_samples = Results.samples baseline in
  let cur_samples = Results.samples current in
  let base_by_name = List.map (fun (s : Sample.t) -> (s.Sample.name, s)) base_samples in
  let cur_names = List.map (fun (s : Sample.t) -> s.Sample.name) cur_samples in
  let paired =
    List.map
      (fun (cur : Sample.t) ->
        match List.assoc_opt cur.Sample.name base_by_name with
        | Some base -> judge_pair tol base cur
        | None ->
            let slo = slo_breach cur None in
            {
              name = cur.Sample.name;
              verdict = (if slo = None then New else Regressed);
              base = None;
              current = Some cur;
              ratio = None;
              slo_violated = slo <> None;
              detail = Option.value slo ~default:"no baseline entry";
            })
      cur_samples
  in
  let missing =
    List.filter_map
      (fun (s : Sample.t) ->
        if List.mem s.Sample.name cur_names then None
        else
          Some
            {
              name = s.Sample.name;
              verdict = Missing;
              base = Some s;
              current = None;
              ratio = None;
              slo_violated = false;
              detail = "present in baseline, absent from current run";
            })
      base_samples
  in
  List.sort (fun a b -> String.compare a.name b.name) (paired @ missing)

let regressions findings =
  List.filter (fun f -> f.verdict = Regressed || f.slo_violated) findings

let tally findings =
  List.map
    (fun v -> (v, List.length (List.filter (fun f -> f.verdict = v) findings)))
    [ Improved; Unchanged; Regressed; Missing; New ]

(* 0 clean, 1 gated failure; 2 (IO/usage) is the caller's to raise. *)
let exit_code findings = if regressions findings = [] then 0 else 1

let promote ~baseline_path (current : Results.t) = Results.save baseline_path current
