module Json = Adgc_util.Json

type direction = Lower_better | Higher_better

type klass = Timing | Deterministic

type t = {
  name : string;
  unit_ : string;
  reps : int;
  median : float;
  mean : float;
  stddev : float;
  min : float;
  p99 : float;
  direction : direction;
  klass : klass;
  slo : float option;
  config_digest : string;
}

let direction_to_string = function Lower_better -> "lower" | Higher_better -> "higher"

let direction_of_string = function
  | "lower" -> Some Lower_better
  | "higher" -> Some Higher_better
  | _ -> None

let klass_to_string = function Timing -> "timing" | Deterministic -> "deterministic"

let klass_of_string = function
  | "timing" -> Some Timing
  | "deterministic" -> Some Deterministic
  | _ -> None

(* Descriptive statistics over raw repetition measurements; the
   nearest-rank p99 of a handful of reps is just the max, which is
   exactly what a gate wants to see. *)
let stddev_of values mean =
  match values with
  | [] | [ _ ] -> 0.0
  | _ ->
      let n = float_of_int (List.length values) in
      let var =
        List.fold_left (fun acc v -> acc +. ((v -. mean) *. (v -. mean))) 0.0 values /. n
      in
      sqrt var

let of_values ~name ~unit_ ~direction ~klass ?slo ~config_digest values =
  match values with
  | [] -> invalid_arg "Sample.of_values: empty"
  | _ ->
      let sorted = List.sort Float.compare values in
      let arr = Array.of_list sorted in
      let n = Array.length arr in
      let median = arr.(n / 2) in
      let mean = List.fold_left ( +. ) 0.0 values /. float_of_int n in
      let rank p = Int.max 0 (Int.min (n - 1) (int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1)) in
      {
        name;
        unit_;
        reps = n;
        median;
        mean;
        stddev = stddev_of values mean;
        min = arr.(0);
        p99 = arr.(rank 99.0);
        direction;
        klass;
        slo;
        config_digest;
      }

let scalar ~name ~unit_ ~direction ~klass ?slo ~config_digest v =
  of_values ~name ~unit_ ~direction ~klass ?slo ~config_digest [ v ]

let to_json s =
  Json.obj_sorted
    ([
       ("name", Json.Str s.name);
       ("unit", Json.Str s.unit_);
       ("reps", Json.Int s.reps);
       ("median", Json.of_float s.median);
       ("mean", Json.of_float s.mean);
       ("stddev", Json.of_float s.stddev);
       ("min", Json.of_float s.min);
       ("p99", Json.of_float s.p99);
       ("direction", Json.Str (direction_to_string s.direction));
       ("class", Json.Str (klass_to_string s.klass));
       ("config_digest", Json.Str s.config_digest);
     ]
    @ match s.slo with Some v -> [ ("slo", Json.of_float v) ] | None -> [])

let member k = function Json.Obj fields -> List.assoc_opt k fields | _ -> None

let float_member k j =
  match member k j with
  | Some (Json.Float f) -> Some f
  | Some (Json.Int i) -> Some (float_of_int i)
  | Some Json.Null -> Some Float.nan
  | Some _ | None -> None

let str_member k j = match member k j with Some (Json.Str s) -> Some s | _ -> None

let of_json j =
  let ( let* ) o f = match o with Some v -> f v | None -> Error "malformed sample" in
  let* name = str_member "name" j in
  let* unit_ = str_member "unit" j in
  let* reps = match member "reps" j with Some (Json.Int i) -> Some i | _ -> None in
  let* median = float_member "median" j in
  let* mean = float_member "mean" j in
  let* stddev = float_member "stddev" j in
  let* min = float_member "min" j in
  let* p99 = float_member "p99" j in
  let* direction = Option.bind (str_member "direction" j) direction_of_string in
  let* klass = Option.bind (str_member "class" j) klass_of_string in
  let* config_digest = str_member "config_digest" j in
  let slo = float_member "slo" j in
  Ok { name; unit_; reps; median; mean; stddev; min; p99; direction; klass; slo; config_digest }
