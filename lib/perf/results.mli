(** The canonical, schema-versioned benchmark results document:
    sections of {!Sample.t} records plus the host facts a reader
    needs to judge the numbers (core count, worker domains, smoke
    flag, source revision).

    The JSON rendering is deterministic — sections and samples are
    sorted by name, floats print canonically — so two same-seed runs
    produce byte-comparable documents and {!fingerprint} can pin the
    non-timing fields in a regression test. *)

module Json = Adgc_util.Json

val schema_version : int

type host = { cores : int; worker_domains : int }

type t = {
  rev : string;  (** source revision, or "dev" outside a checkout *)
  smoke : bool;
  host : host;
  sections : (string * Sample.t list) list;
}

val normalize : t -> t
(** Sections and samples sorted by name. *)

val samples : t -> Sample.t list

val find : t -> string -> Sample.t option
(** Lookup a sample by name across all sections. *)

val to_json : t -> Json.t

val of_json : Json.t -> (t, string) result

val to_string : t -> string
(** Pretty, deterministic; what [save] writes. *)

val of_string : string -> (t, string) result

val fingerprint : t -> string
(** Deterministic digest-input string of the non-timing content:
    section/sample names, units, reps, directions, classes, SLOs,
    config digests, and the values of [Deterministic]-class samples.
    [Timing]-class values are blanked. *)

val load : string -> (t, string) result

val save : string -> t -> unit

val save_results : dir:string -> t -> string * string
(** Write [<dir>/<rev>.json] and [<dir>/latest.json] (creating [dir]
    if needed); returns both paths. *)
