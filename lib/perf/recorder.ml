type t = { mutable sections : (string * Sample.t list) list; smoke : bool }

let create ~smoke () = { sections = []; smoke }

let smoke t = t.smoke

let add t ~section sample =
  match List.assoc_opt section t.sections with
  | Some _ ->
      t.sections <-
        List.map
          (fun (name, ss) -> if name = section then (name, sample :: ss) else (name, ss))
          t.sections
  | None -> t.sections <- (section, [ sample ]) :: t.sections

let config_digest parts = Digest.to_hex (Digest.string (String.concat "|" parts))

let document t ~rev ~host =
  Results.normalize { Results.rev; smoke = t.smoke; host; sections = t.sections }
