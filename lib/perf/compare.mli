(** The statistics-hardened baseline comparator.

    Series are paired by sample name across the whole document; each
    pair gets a verdict from a noise model with three widening terms
    — a relative threshold, a stddev-scaled tolerance, a min-effect
    floor — plus hard SLO ceilings for latency series that must never
    drift past an absolute bound regardless of the baseline. *)

type verdict =
  | Improved  (** better than baseline beyond the noise band *)
  | Unchanged  (** within the noise band *)
  | Regressed  (** worse beyond the noise band, or an SLO breach *)
  | Missing  (** in the baseline, absent from the current run *)
  | New  (** in the current run, absent from the baseline *)

val verdict_to_string : verdict -> string

type tolerance = {
  rel : float;  (** relative threshold as a fraction of the baseline median *)
  stddev_mult : float;  (** multiples of the noisier side's stddev *)
  min_effect : float;  (** absolute floor (in the sample's unit) below which nothing flags *)
  relax : float;
      (** extra multiplier on [Timing]-class tolerances for slow or
          1-core runners; [Deterministic] series are never relaxed *)
}

val default_tolerance : tolerance
(** [{rel = 0.10; stddev_mult = 3.0; min_effect = 1.0; relax = 1.0}] *)

type finding = {
  name : string;
  verdict : verdict;
  base : Sample.t option;
  current : Sample.t option;
  ratio : float option;  (** current/baseline median when defined *)
  slo_violated : bool;
  detail : string;
}

val compare_docs :
  ?tol:tolerance -> baseline:Results.t -> current:Results.t -> unit -> finding list
(** One finding per sample name seen on either side, sorted by name.
    [Missing]/[New] are informational (exit-clean); an SLO breach is
    [Regressed] even when the sample is [New]. *)

val regressions : finding list -> finding list
(** The findings that gate: [Regressed] verdicts and SLO breaches. *)

val tally : finding list -> (verdict * int) list

val exit_code : finding list -> int
(** 0 when {!regressions} is empty, 1 otherwise (2 — usage/IO — is
    the CLI's to raise). *)

val promote : baseline_path:string -> Results.t -> unit
(** Overwrite the checked-in baseline with the current document
    (canonical rendering, so [promote] then [check] is clean). *)
