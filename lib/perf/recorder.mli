(** Accumulates {!Sample.t} records per bench section while a run is
    in flight, then folds them into one {!Results.t} document. *)

type t

val create : smoke:bool -> unit -> t

val smoke : t -> bool

val add : t -> section:string -> Sample.t -> unit

val config_digest : string list -> string
(** Canonical digest of the configuration facts (sizes, seeds, reps)
    that produced a sample, so a baseline entry measured under a
    different configuration is never silently paired. *)

val document : t -> rev:string -> host:Results.host -> Results.t
