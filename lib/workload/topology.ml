open Adgc_algebra
open Adgc_rt

type built = {
  names : Names.t;
  objects : (string * Heap.obj) list;
  cycle_refs : Ref_key.t list;
}

let obj t name = List.assoc name t.objects

let oid t name = (obj t name).Heap.oid

let scion_key t ~src name = Ref_key.make ~src:(Proc_id.of_int src) ~target:(oid t name)

(* Small builder DSL threading the cluster and a name table. *)
type ctx = { cluster : Cluster.t; names : Names.t; mutable objs : (string * Heap.obj) list }

let start cluster = { cluster; names = Names.create (); objs = [] }

let add ctx ~proc name =
  let o = Mutator.alloc ctx.cluster ~proc () in
  Names.register ctx.names o name;
  ctx.objs <- (name, o) :: ctx.objs;
  o

let local ctx a b = Mutator.link ctx.cluster ~from_:a ~to_:b

let remote ctx a b =
  Mutator.wire_remote ctx.cluster ~holder:a ~target:b;
  Ref_key.make
    ~src:(Oid.owner a.Heap.oid)
    ~target:b.Heap.oid

let finish ctx cycle_refs = { names = ctx.names; objects = List.rev ctx.objs; cycle_refs }

let need cluster n fn_name =
  if Cluster.n_procs cluster < n then
    invalid_arg (Printf.sprintf "Topology.%s: needs at least %d processes" fn_name n)

let fig3 cluster =
  need cluster 4 "fig3";
  let ctx = start cluster in
  (* P1 *)
  let a = add ctx ~proc:0 "A" and c = add ctx ~proc:0 "C" and b = add ctx ~proc:0 "B" in
  let d = add ctx ~proc:0 "D" in
  (* P2 *)
  let f = add ctx ~proc:1 "F" and g = add ctx ~proc:1 "G" in
  let h = add ctx ~proc:1 "H" and j = add ctx ~proc:1 "J" in
  (* P3 *)
  let o = add ctx ~proc:2 "O" and m = add ctx ~proc:2 "M" and k = add ctx ~proc:2 "K" in
  (* P4 *)
  let q = add ctx ~proc:3 "Q" and r = add ctx ~proc:3 "R" and s = add ctx ~proc:3 "S" in
  (* Local structure *)
  local ctx a c;
  local ctx d c;
  local ctx c b;
  local ctx f g;
  local ctx f h;
  local ctx g h;
  local ctx h j;
  local ctx q r;
  local ctx r s;
  local ctx o m;
  local ctx m k;
  (* The distributed cycle *)
  let r1 = remote ctx b f in
  let r2 = remote ctx j q in
  let r3 = remote ctx s o in
  let r4 = remote ctx k d in
  Mutator.add_root cluster a;
  finish ctx [ r1; r2; r3; r4 ]

let fig4 cluster =
  need cluster 6 "fig4";
  let ctx = start cluster in
  let f = add ctx ~proc:1 "F" in
  let v = add ctx ~proc:4 "V" and y = add ctx ~proc:4 "Y" in
  let t = add ctx ~proc:3 "T" in
  let d = add ctx ~proc:0 "D" in
  let k = add ctx ~proc:2 "K" in
  let zb = add ctx ~proc:5 "ZB" and zd = add ctx ~proc:5 "ZD" in
  (* Leftmost cycle: F -> V -> T -> D -> F *)
  let r1 = remote ctx f v in
  let r2 = remote ctx v t in
  let r3 = remote ctx t d in
  let r4 = remote ctx d f in
  (* Rightmost cycle: F -> K -> ZB -> (ZD) -> Y -> T -> ... *)
  let r5 = remote ctx f k in
  let r6 = remote ctx k zb in
  local ctx zb zd;
  let r7 = remote ctx zd y in
  (* Y converges on the same stub P5 -> T. *)
  ignore (Heap.add_ref (Cluster.proc cluster 4).Process.heap y t.Heap.oid : int);
  finish ctx [ r1; r2; r3; r4; r5; r6; r7 ]

let fig5 cluster =
  need cluster 5 "fig5";
  let ctx = start cluster in
  let a = add ctx ~proc:0 "A" and d = add ctx ~proc:0 "D" in
  let f = add ctx ~proc:1 "F" and j = add ctx ~proc:1 "J" in
  let m = add ctx ~proc:2 "M" in
  let t = add ctx ~proc:3 "T" in
  let v = add ctx ~proc:4 "V" in
  local ctx a d;
  local ctx f j;
  local ctx j f;
  let r1 = remote ctx d f in
  let r2 = remote ctx f v in
  let r3 = remote ctx v t in
  let r4 = remote ctx t d in
  Mutator.add_root cluster a;
  Mutator.add_root cluster m;
  finish ctx [ r1; r2; r3; r4 ]

let build_ring ?(objs_per_proc = 1) cluster ~procs ~rooted =
  (match procs with
  | [] | [ _ ] -> invalid_arg "Topology.ring: need at least two processes"
  | _ :: _ :: _ -> ());
  need cluster (List.fold_left Int.max 0 procs + 1) "ring";
  let ctx = start cluster in
  let chains =
    List.map
      (fun proc ->
        List.init objs_per_proc (fun i -> add ctx ~proc (Printf.sprintf "n%d_%d" proc i)))
      procs
  in
  List.iter
    (fun chain ->
      ignore
        (List.fold_left
           (fun prev o ->
             (match prev with Some prev -> local ctx prev o | None -> ());
             Some o)
           None chain))
    chains;
  let firsts = List.map List.hd chains in
  let lasts = List.map (fun chain -> List.nth chain (List.length chain - 1)) chains in
  let nexts = match firsts with [] -> [] | x :: rest -> rest @ [ x ] in
  let refs = List.map2 (fun last next -> remote ctx last next) lasts nexts in
  (match (rooted, firsts) with
  | true, first :: _ -> Mutator.add_root cluster first
  | true, [] | false, _ -> ());
  finish ctx refs

let ring ?objs_per_proc cluster ~procs = build_ring ?objs_per_proc cluster ~procs ~rooted:false

let rooted_ring ?objs_per_proc cluster ~procs =
  build_ring ?objs_per_proc cluster ~procs ~rooted:true

let hybrid cluster =
  need cluster 3 "hybrid";
  let ctx = start cluster in
  (* Upstream acyclic chain (pure acyclic garbage): U1_P0 -> U2_P1 -> cycle. *)
  let u1 = add ctx ~proc:0 "U1" and u2 = add ctx ~proc:1 "U2" in
  (* The cycle: C0_P0 -> C1_P1 -> C2_P2 -> C0. *)
  let c0 = add ctx ~proc:0 "C0" and c1 = add ctx ~proc:1 "C1" and c2 = add ctx ~proc:2 "C2" in
  (* Downstream acyclic tail: C2 -> W1_P0 -> W2_P1. *)
  let w1 = add ctx ~proc:0 "W1" and w2 = add ctx ~proc:1 "W2" in
  let r0 = remote ctx u1 u2 in
  let r1 = remote ctx u2 c0 in
  let r2 = remote ctx c1 c2 in
  let r3 = remote ctx c2 c0 in
  let r4 = remote ctx c0 c1 in
  let r5 = remote ctx c2 w1 in
  let r6 = remote ctx w1 w2 in
  finish ctx [ r0; r1; r2; r3; r4; r5; r6 ]

let star_cycles ?(arms = 4) cluster =
  need cluster (arms + 1) "star_cycles";
  let ctx = start cluster in
  let hub = add ctx ~proc:0 "hub" in
  let refs =
    List.concat
      (List.init arms (fun i ->
           let arm = add ctx ~proc:(i + 1) (Printf.sprintf "arm%d" (i + 1)) in
           let out = remote ctx hub arm in
           let back = remote ctx arm hub in
           [ out; back ]))
  in
  finish ctx refs

let pairs cluster =
  let n = Cluster.n_procs cluster in
  need cluster 2 "pairs";
  let ctx = start cluster in
  let refs = ref [] in
  (* Each process pair carries its own independent two-party garbage
     cycle — no object is shared between pairs, so crashing one rank
     leaves every other pair's cycle fully collectable. *)
  for k = 0 to (n / 2) - 1 do
    let p = 2 * k and q = (2 * k) + 1 in
    let a = add ctx ~proc:p (Printf.sprintf "a%d" k) in
    let b = add ctx ~proc:q (Printf.sprintf "b%d" k) in
    refs := remote ctx a b :: remote ctx b a :: !refs
  done;
  (* One rooted local object per process keeps every heap's live set
     non-empty. *)
  for p = 0 to n - 1 do
    let r = add ctx ~proc:p (Printf.sprintf "r%d" p) in
    let c = add ctx ~proc:p (Printf.sprintf "c%d" p) in
    local ctx r c;
    Mutator.add_root cluster r
  done;
  finish ctx (List.rev !refs)

let lattice cluster ~rows ~cols =
  if rows < 1 || cols < 2 then invalid_arg "Topology.lattice: need rows >= 1 and cols >= 2";
  need cluster cols "lattice";
  let ctx = start cluster in
  let node =
    Array.init rows (fun r ->
        Array.init cols (fun c -> add ctx ~proc:c (Printf.sprintf "g%d_%d" r c)))
  in
  let refs = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      (* Rightward edges close each row into a distributed ring. *)
      let right = node.(r).((c + 1) mod cols) in
      refs := remote ctx node.(r).(c) right :: !refs;
      (* Downward edges chain the rows (same process: local links). *)
      if r + 1 < rows then local ctx node.(r).(c) node.(r + 1).(c)
    done
  done;
  finish ctx (List.rev !refs)

let chain_into_ring ?(chain = 16) cluster ~procs =
  let ring_built = build_ring cluster ~procs ~rooted:false in
  let ctx =
    { cluster; names = ring_built.names; objs = List.rev ring_built.objects }
  in
  let n = Cluster.n_procs cluster in
  let links = Array.init chain (fun i -> add ctx ~proc:(i mod n) (Printf.sprintf "c%d" i)) in
  let refs = ref [] in
  for i = 0 to chain - 2 do
    let a = links.(i) and b = links.(i + 1) in
    if Proc_id.equal (Oid.owner a.Heap.oid) (Oid.owner b.Heap.oid) then local ctx a b
    else refs := remote ctx a b :: !refs
  done;
  (* The tail of the chain points into the ring. *)
  let ring_head = List.assoc (Printf.sprintf "n%d_0" (List.hd procs)) ring_built.objects in
  let tail = links.(chain - 1) in
  (if Proc_id.equal (Oid.owner tail.Heap.oid) (Oid.owner ring_head.Heap.oid) then
     local ctx tail ring_head
   else refs := remote ctx tail ring_head :: !refs);
  finish ctx (ring_built.cycle_refs @ List.rev !refs)

let web ?(pages_per_site = 8) ?cross_links ?(back_prob = 0.5) cluster ~rng =
  let module Rng = Adgc_util.Rng in
  let sites = Cluster.n_procs cluster in
  if sites < 2 then invalid_arg "Topology.web: need at least two sites";
  let cross_links = match cross_links with Some c -> c | None -> 2 * sites in
  let ctx = start cluster in
  (* Each site: an index page rooting a chain of content pages, with a
     "home" back-link from the last page (intra-site cycles are the
     norm). *)
  let pages =
    Array.init sites (fun s ->
        Array.init pages_per_site (fun i -> add ctx ~proc:s (Printf.sprintf "s%d_p%d" s i)))
  in
  Array.iter
    (fun site ->
      for i = 0 to pages_per_site - 2 do
        local ctx site.(i) site.(i + 1)
      done;
      local ctx site.(pages_per_site - 1) site.(0);
      Mutator.add_root cluster site.(0))
    pages;
  (* Cross-site links, randomly reciprocated. *)
  let refs = ref [] in
  for _ = 1 to cross_links do
    let s1 = Rng.int rng sites in
    let s2 = (s1 + 1 + Rng.int rng (sites - 1)) mod sites in
    let a = pages.(s1).(Rng.int rng pages_per_site) in
    let b = pages.(s2).(Rng.int rng pages_per_site) in
    refs := remote ctx a b :: !refs;
    if Rng.bernoulli rng back_prob then refs := remote ctx b a :: !refs
  done;
  finish ctx (List.rev !refs)

let random cluster ~rng ~objects ~edges ~remote_prob ~root_prob =
  let ctx = start cluster in
  let n = Cluster.n_procs cluster in
  let objs =
    Array.init objects (fun i -> add ctx ~proc:(i mod n) (Printf.sprintf "r%d" i))
  in
  let module Rng = Adgc_util.Rng in
  for _ = 1 to edges do
    let a = objs.(Rng.int rng objects) in
    if Rng.bernoulli rng remote_prob then begin
      (* Remote edge: pick a target in a different process. *)
      let b = objs.(Rng.int rng objects) in
      if not (Proc_id.equal (Oid.owner a.Heap.oid) (Oid.owner b.Heap.oid)) then
        ignore (remote ctx a b : Ref_key.t)
    end
    else begin
      (* Local edge: pick a target in the same process. *)
      let b = objs.(Rng.int rng objects) in
      if Proc_id.equal (Oid.owner a.Heap.oid) (Oid.owner b.Heap.oid) && a != b then
        local ctx a b
    end
  done;
  Array.iter (fun o -> if Rng.bernoulli rng root_prob then Mutator.add_root cluster o) objs;
  finish ctx []
