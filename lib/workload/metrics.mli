(** Ground-truth measurement and safety checking.

    Everything here is omniscient (it inspects all heaps and in-flight
    messages directly) and is used by tests, examples and benches —
    never by the algorithms themselves. *)

type sample = { time : int; objects : int; live : int; garbage : int }

val sample : Adgc_rt.Cluster.t -> sample

val pp_sample : Format.formatter -> sample -> unit

type sampler

val sample_every : Adgc_rt.Cluster.t -> period:int -> sampler
(** Record a sample each [period] ticks (from the next period on).
    Registered with {!Adgc_rt.Cluster.at_teardown}, so tearing the
    cluster down stops the sampler automatically. *)

val samples : sampler -> sample list
(** Oldest first. *)

val stop_sampling : sampler -> unit
(** Idempotent. *)

val sampling : sampler -> bool

(** {1 Safety checking} *)

type safety_checker

val install_safety_checker : Adgc_rt.Cluster.t -> safety_checker
(** Hook every LGC sweep: before an object is reclaimed it must be
    globally unreachable (checked against ground truth computed at the
    moment of reclamation).  Violations are recorded, not raised. *)

val violations : safety_checker -> (Adgc_algebra.Proc_id.t * Adgc_algebra.Oid.t) list

val assert_safe : safety_checker -> unit
(** @raise Failure listing the violations, if any. *)
