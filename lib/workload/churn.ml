open Adgc_algebra
open Adgc_rt
module Rng = Adgc_util.Rng

type rates = {
  alloc : float;
  invoke : float;
  export : float;
  drop_root : float;
  add_root : float;
  unlink : float;
}

let default_rates =
  { alloc = 3.0; invoke = 4.0; export = 2.0; drop_root = 0.5; add_root = 1.0; unlink = 1.5 }

type t = { rates : rates; cluster : Cluster.t; rng : Rng.t; mutable actions : int }

let create ?(rates = default_rates) ~cluster ~rng () = { rates; cluster; rng; actions = 0 }

let actions t = t.actions

(* A real program can only act on what it can reach from its roots:
   picking arbitrary heap objects would "resurrect" garbage, violating
   the stability-of-garbage premise the detector (correctly) relies
   on.  So all picks draw from the root-reachable region. *)
let reachable (p : Process.t) = Heap.trace p.Process.heap ~from:(Heap.roots p.Process.heap)

let random_obj t (p : Process.t) =
  let { Heap.local; _ } = reachable p in
  match Oid.Set.elements local with
  | [] -> None
  | oids -> Heap.get p.Process.heap (Rng.pick_list t.rng oids)

let random_stub t (p : Process.t) =
  let { Heap.remote; _ } = reachable p in
  match Oid.Set.elements remote with
  | [] -> None
  | targets -> Stub_table.find p.Process.stubs (Rng.pick_list t.rng targets)

let do_alloc t p =
  let o = Heap.alloc p.Process.heap in
  match random_obj t p with
  | Some parent when not (Oid.equal parent.Heap.oid o.Heap.oid) ->
      ignore (Heap.add_ref p.Process.heap parent o.Heap.oid : int)
  | Some _ | None -> Heap.add_root p.Process.heap o.Heap.oid

(* Name-service lookup: when a process holds no remote reference at
   all, real applications reconnect to a well-known service.  Model
   that by wiring a reachable local object to a mutator-reachable
   object of another process (never to garbage). *)
let lookup t (p : Process.t) =
  let n = Cluster.n_procs t.cluster in
  let other = (Proc_id.to_int p.Process.id + 1 + Rng.int t.rng (n - 1)) mod n in
  let q = Cluster.proc t.cluster other in
  if not q.Process.alive then None
  else
  match (random_obj t p, random_obj t q) with
  | Some holder, Some target ->
      Mutator.wire_remote t.cluster ~holder ~target;
      Stub_table.find p.Process.stubs target.Heap.oid
  | (Some _ | None), _ -> None

let stub_or_lookup t (p : Process.t) =
  match random_stub t p with Some stub -> Some stub | None -> lookup t p

let do_invoke t (p : Process.t) =
  match stub_or_lookup t p with
  | None -> ()
  | Some stub ->
      Rmi.call (Cluster.rt t.cluster) ~src:p.Process.id ~target:stub.Stub_table.target ()

let do_export t (p : Process.t) =
  match (stub_or_lookup t p, random_obj t p) with
  | Some stub, Some arg ->
      Rmi.call (Cluster.rt t.cluster) ~src:p.Process.id ~target:stub.Stub_table.target
        ~args:[ arg.Heap.oid ] ~behavior:Mutator.store_args ()
  | (Some _ | None), _ -> ()

(* Keep at least one root per process: a program whose last root dies
   terminates, and with it all activity — not the steady state the
   churn models. *)
let do_drop_root t (p : Process.t) =
  match Heap.roots p.Process.heap with
  | [] | [ _ ] -> ()
  | roots -> Heap.remove_root p.Process.heap (Rng.pick_list t.rng roots)

let do_add_root t (p : Process.t) =
  match random_obj t p with
  | None -> ()
  | Some o -> Heap.add_root p.Process.heap o.Heap.oid

let do_unlink t (p : Process.t) =
  match random_obj t p with
  | None -> ()
  | Some o ->
      let refs = Array.to_list o.Heap.fields |> List.filter_map (fun f -> f) in
      (match refs with
      | [] -> ()
      | _ :: _ -> ignore (Heap.remove_ref p.Process.heap o (Rng.pick_list t.rng refs) : bool))

let step t =
  t.actions <- t.actions + 1;
  let p = Cluster.proc t.cluster (Rng.int t.rng (Cluster.n_procs t.cluster)) in
  if not p.Process.alive then ()
  else
  let r = t.rates in
  let total = r.alloc +. r.invoke +. r.export +. r.drop_root +. r.add_root +. r.unlink in
  let x = Rng.float t.rng total in
  if x < r.alloc then do_alloc t p
  else if x < r.alloc +. r.invoke then do_invoke t p
  else if x < r.alloc +. r.invoke +. r.export then do_export t p
  else if x < r.alloc +. r.invoke +. r.export +. r.drop_root then do_drop_root t p
  else if x < r.alloc +. r.invoke +. r.export +. r.drop_root +. r.add_root then do_add_root t p
  else do_unlink t p

let run t ~steps ~every =
  let sched = Cluster.sched t.cluster in
  for i = 1 to steps do
    Scheduler.schedule_after sched ~delay:(i * every) (fun () -> step t)
  done
