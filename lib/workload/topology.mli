(** Builders for the paper's figures and parametric graph families.

    Every builder works on a fresh cluster via the bootstrap wiring of
    {!Adgc_rt.Mutator} (fields + stubs + confirmed scions, as if the
    references had been exchanged earlier) and registers object names
    so traces read like the paper. *)

open Adgc_algebra
open Adgc_rt

type built = {
  names : Names.t;
  objects : (string * Heap.obj) list;
  cycle_refs : Ref_key.t list;
      (** the inter-process references making up the constructed
          garbage cycle(s), in traversal order where meaningful *)
}

val obj : built -> string -> Heap.obj
(** @raise Not_found for an unknown name. *)

val oid : built -> string -> Oid.t

val scion_key : built -> src:int -> string -> Ref_key.t
(** Key of the reference from process [src] to the named object. *)

(** {1 Paper figures} *)

val fig3 : Cluster.t -> built
(** Figure 3 (4 processes): the simple distributed garbage cycle
    [B_P1 -> F_P2 -> (J) -> Q_P4 -> (S) -> O_P3 -> (K) -> D_P1 -> ...]
    plus the locally rooted object [A_P1 -> C].  [A] is {e rooted} on
    return; remove its root to turn the cycle into garbage.  Needs
    [>= 4] processes. *)

val fig4 : Cluster.t -> built
(** Figure 4 (6 processes): two mutually-linked distributed cycles
    sharing the path [T_P4 -> D_P1 -> F_P2]; entirely garbage on
    return. *)

val fig5 : Cluster.t -> built
(** Figure 5 (>= 5 processes): the mutator-race scenario — cycle
    [F_P2 -> V_P5 -> T_P4 -> D_P1 -> F_P2] held reachable by
    [root -> A_P1 -> D -> F], plus the bystander objects [J_P2]
    (linked from [F]) and rooted [M_P3].  The race is then driven by
    the caller (see the [mutator_race] example and tests). *)

(** {1 Parametric families} *)

val ring : ?objs_per_proc:int -> Cluster.t -> procs:int list -> built
(** A distributed cycle spanning [procs] in order: a local chain of
    [objs_per_proc] objects (default 1) in each process, the last
    linking remotely to the first object in the next process, wrapping
    around.  Garbage on return. *)

val rooted_ring : ?objs_per_proc:int -> Cluster.t -> procs:int list -> built
(** Same, but the first object is rooted (a live cycle — the detector
    must never collect it). *)

val hybrid : Cluster.t -> built
(** Distributed cycle with an upstream acyclic chain pointing into it
    and a downstream acyclic tail hanging off it, across 3 processes:
    the classic "hybrid garbage" the acyclic collector reclaims only
    partially.  Everything is garbage on return. *)

val star_cycles : ?arms:int -> Cluster.t -> built
(** [arms] (default 4) distributed 2-cycles all sharing one hub object
    at process 0: every arm is a separate garbage cycle through the
    hub, so the hub's scions accumulate many converging dependencies —
    a stress test for [ScionsTo] bookkeeping and algebra growth.
    Entirely garbage on return; needs [>= arms + 1] processes. *)

val pairs : Cluster.t -> built
(** One independent two-party garbage cycle per process pair
    ((0,1), (2,3), ...), plus a rooted local object with a child on
    every process.  Nothing is shared between pairs, so crashing one
    rank leaves every other pair's cycle collectable — the workload
    the socket driver's crash tests assert survivor progress on.
    Needs [>= 2] processes; an odd last rank gets only live objects. *)

val lattice : Cluster.t -> rows:int -> cols:int -> built
(** A [rows x cols] grid of objects, one process per column; each node
    points right and down, and the last column points back to the
    first column of the same row (making every row a distributed
    cycle), while the downward edges chain the rows — overlapping
    cycles sharing structure.  Entirely garbage on return; needs
    [>= cols] processes. *)

val chain_into_ring :
  ?chain:int -> Cluster.t -> procs:int list -> built
(** A long acyclic chain ([chain] objects, default 16, spread over the
    processes round-robin and linked remotely) whose tail points into
    a distributed ring over [procs].  The classic upstream-garbage
    pattern: the acyclic collector eats the chain hop by hop while the
    detector handles the ring; the no-new-information rule is what
    keeps detections from looping on the not-yet-reclaimed chain. *)

val web :
  ?pages_per_site:int ->
  ?cross_links:int ->
  ?back_prob:float ->
  Cluster.t ->
  rng:Adgc_util.Rng.t ->
  built
(** A WWW-like object graph (the paper cites Richer & Shapiro: "in
    these systems, cycles are frequent").  Each process is a site with
    a chain of [pages_per_site] pages (default 8) rooted at its index
    page; [cross_links] (default [2 * sites]) random inter-site links,
    each reciprocated with probability [back_prob] (default 0.5) —
    reciprocal cross-site links are how distributed cycles arise on
    the web.  Dropping a site's index-page root turns its share of the
    link structure into (heavily cyclic) garbage. *)

val random :
  Cluster.t ->
  rng:Adgc_util.Rng.t ->
  objects:int ->
  edges:int ->
  remote_prob:float ->
  root_prob:float ->
  built
(** Random graph: [objects] spread round-robin over all processes,
    [edges] drawn uniformly (remote with [remote_prob], installed with
    bootstrap wiring), each object rooted with [root_prob].
    [cycle_refs] is empty (ground truth comes from
    {!Adgc_rt.Cluster.garbage}). *)
