open Adgc_algebra
open Adgc_rt

type sample = { time : int; objects : int; live : int; garbage : int }

let sample cluster =
  let objects = Cluster.total_objects cluster in
  let garbage = Cluster.garbage_count cluster in
  { time = Cluster.now cluster; objects; live = objects - garbage; garbage }

let pp_sample ppf s =
  Format.fprintf ppf "t=%d objects=%d live=%d garbage=%d" s.time s.objects s.live s.garbage

type sampler = { mutable acc : sample list; mutable handle : Scheduler.recurring option }

let stop_sampling t =
  match t.handle with
  | Some h ->
      Scheduler.cancel h;
      t.handle <- None
  | None -> ()

let sampling t = t.handle <> None

let sample_every cluster ~period =
  let t = { acc = []; handle = None } in
  let handle =
    Scheduler.every (Cluster.sched cluster) ~period (fun () -> t.acc <- sample cluster :: t.acc)
  in
  t.handle <- Some handle;
  (* Auto-detach at run end: the omniscient sample walks every heap,
     and a sampler leaked past teardown keeps doing that for the rest
     of a long bench process. *)
  Cluster.at_teardown cluster (fun () -> stop_sampling t);
  t

let samples t = List.rev t.acc

type safety_checker = { mutable violations : (Proc_id.t * Oid.t) list }

let install_safety_checker cluster =
  let checker = { violations = [] } in
  let rt = Cluster.rt cluster in
  (* The pre-sweep hook fires with every heap still intact, so ground
     truth computed here is exact for the objects about to go. *)
  rt.Runtime.on_pre_sweep <-
    Some
      (fun proc doomed ->
        List.iter
          (fun oid -> checker.violations <- (proc, oid) :: checker.violations)
          (Cluster.live_among cluster doomed));
  checker

let violations t = List.rev t.violations

let assert_safe t =
  match violations t with
  | [] -> ()
  | vs ->
      let msg =
        String.concat ", "
          (List.map
             (fun (p, o) -> Format.asprintf "%a swept live %a" Proc_id.pp p Oid.pp o)
             vs)
      in
      failwith ("GC safety violated: " ^ msg)
