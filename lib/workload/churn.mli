(** Random mutator activity.

    Drives a cluster with application-like behaviour: allocations,
    local relinking, root churn, and remote invocations that export
    references (the only way remote references appear, as on the real
    platform).  All choices come from the supplied deterministic
    generator.

    The driver never touches DGC state directly — it only does what a
    program could do, so it is safe to run concurrently with
    collection and detection; the safety property tests do exactly
    that.  The one concession: when a process holds no remote
    reference at all it performs a "name-service lookup" (bootstrap
    wiring to a {e mutator-reachable} object elsewhere), as a real
    application would reconnect to a well-known service; without it
    remote activity would die permanently the first time the last
    remote reference is dropped. *)

type rates = {
  alloc : float;  (** allocate + link locally *)
  invoke : float;  (** remote call through a random held stub *)
  export : float;  (** remote call passing a random local object *)
  drop_root : float;
  add_root : float;
  unlink : float;  (** clear a random local reference *)
}

val default_rates : rates

type t

val create :
  ?rates:rates -> cluster:Adgc_rt.Cluster.t -> rng:Adgc_util.Rng.t -> unit -> t

val step : t -> unit
(** Perform one random action somewhere in the cluster.  An action
    landing on a crashed process is skipped — the dead run no code. *)

val run : t -> steps:int -> every:int -> unit
(** Schedule [steps] actions, one every [every] ticks starting now
    (does not advance time itself). *)

val actions : t -> int
(** Actions performed so far. *)
