(** Message payloads of the Hughes-style timestamp baseline.

    Hughes' collector (the paper's related work [7]) propagates
    timestamps from roots towards scions; a scion whose timestamp
    falls below a {e global minimum} — computed over all processes —
    is garbage.  The payloads live here so the runtime's closed
    message type can carry them (same arrangement as {!Btmsg}). *)

type t =
  | Stamp of (Oid.t * int) list
      (** stub-side timestamps for objects owned by the destination *)
  | Report of { round_time : int }
      (** a process tells the coordinator it completed a propagation
          round *)
  | Threshold of { value : int }
      (** the coordinator's new global minimum *)

val pp : Format.formatter -> t -> unit

val to_sval : t -> Adgc_serial.Sval.t

val of_sval : Adgc_serial.Sval.t -> t option
