(** Message payloads of the distributed back-tracing baseline
    (Maheshwari & Liskov, PODC'97 style).

    They live here — next to the CDM payloads — so that the runtime's
    closed message type can carry either detector's traffic without
    depending on the detector implementations. *)

type trace_id = { initiator : Proc_id.t; seq : int }

val trace_id_compare : trace_id -> trace_id -> int

val pp_trace_id : Format.formatter -> trace_id -> unit

(** A query asks the process holding the stub [subject] (that is,
    [subject.src]) whether that stub is reachable from any local root,
    tracing {e backwards} through the scions that lead to it.
    [visited] carries the references already being back-traced on this
    path, to cut loops — the per-message analogue of the trace-id
    marking the paper's related-work section describes. *)
type query = { trace : trace_id; subject : Ref_key.t; visited : Ref_key.t list }

(** The answer to one query: is [subject] (transitively) reachable
    from some local root? [Cycle_back] means the back-trace returned
    to an already-visited reference without meeting a root. *)
type verdict = Rooted | Cycle_back

type reply = { trace : trace_id; subject : Ref_key.t; verdict : verdict }

type t = Query of query | Reply of reply

val pp : Format.formatter -> t -> unit

val to_sval : t -> Adgc_serial.Sval.t

val of_sval : Adgc_serial.Sval.t -> t option
(** For message-size accounting in the E7 comparison bench. *)
