(** The CDM algebra (paper, Section 3).

    A cycle-detection message carries two sets of reference entries:

    - the {b source set}: compiled {e dependencies} — every scion the
      detection has relied upon (the candidate scion, each arrival
      scion, and every extra [ScionsTo] dependency discovered along
      the way);
    - the {b target set}: every stub the message has been {e forwarded
      along}.

    Each entry is a reference key paired with the invocation counter
    (IC) observed in the snapshot of the process that contributed the
    entry — scion-side for source entries, stub-side for target
    entries.

    {b Matching} cancels entries present in both sets: a dependency on
    a reference is resolved exactly when the detection has traversed
    that reference's stub.  Two occurrences of the same key with
    different ICs mean a remote invocation slipped between the two
    snapshots — the mutator touched the CDM-Graph — and matching
    reports an abort (paper §3.2, safety rule ii).  A distributed
    garbage cycle is proven when matching leaves both sets empty
    (paper step 25-26: [{{} -> {}}]). *)

type t

val empty : t

type side = Source | Target

val side_name : side -> string

(** {1 Construction} *)

type add_result =
  | Added of t
  | Ic_conflict of { key : Ref_key.t; existing : int; incoming : int }
      (** The same reference was already recorded on that side with a
          different IC: a mutation signal; the detection must abort. *)

val add : t -> side -> Ref_key.t -> ic:int -> add_result
(** Adding an entry that is already present with the same IC returns
    the algebra unchanged (sets, not multisets). *)

val add_exn : t -> side -> Ref_key.t -> ic:int -> t
(** Test helper. @raise Invalid_argument on conflict. *)

val union : t -> t -> (t, side * Ref_key.t) result
(** Entry-wise union of the two source sets and the two target sets —
    the merge a detection performs when combining what two CDMs have
    compiled.  [Error (side, key)] when the same key carries divergent
    counters on one side (the same mutation signal as
    {!add}'s [Ic_conflict]).  Where defined, union is commutative,
    associative and idempotent — pinned by the algebra-law property
    suite. *)

(** {1 Observation} *)

val source : t -> (Ref_key.t * int) list
(** Ascending key order. *)

val target : t -> (Ref_key.t * int) list

val mem : t -> side -> Ref_key.t -> bool

val ic : t -> side -> Ref_key.t -> int option

val cardinal : t -> int * int
(** [(|source|, |target|)]. *)

val equal : t -> t -> bool
(** Keys {e and} ICs on both sides. Used for the paper's
    no-new-information termination rule (step 15). *)

(** {1 Matching} *)

type matching_result =
  | Match of { unresolved : (Ref_key.t * int) list; frontier : (Ref_key.t * int) list }
      (** [unresolved]: source-only entries (dependencies not yet
          traversed); [frontier]: target-only entries (the wave front
          of the detection).  The cycle is found when both are []. *)
  | Ic_abort of { key : Ref_key.t; source_ic : int; target_ic : int }

val matching : t -> matching_result

val cycle_found : t -> bool
(** [matching t = Match {unresolved = []; frontier = []}]. *)

(** {1 Wire format and printing} *)

val to_sval : t -> Adgc_serial.Sval.t
(** Plain representation: the two sets written out separately. *)

val of_sval : Adgc_serial.Sval.t -> t option
(** Accepts both the plain and the compact representation. *)

val to_sval_compact : t -> Adgc_serial.Sval.t
(** The paper's optimized representation (§4): one entry per distinct
    reference with two presence bits (source/target), so a reference
    in both sets is written once.  On a concluding CDM (every entry in
    both sets) this halves the entry count.  An entry appearing on
    both sides with {e different} ICs cannot be shared and is written
    twice.  [of_sval] reads it back; [of_sval (to_sval_compact t)]
    equals [t]. *)

val pp : Format.formatter -> t -> unit
(** Paper style: [{{P1->#0@P2:3} -> {P2->#1@P4:0}}] where the integer
    after [:] is the IC. *)

val to_string : t -> string
