type t = { initiator : Proc_id.t; seq : int }

let make ~initiator ~seq = { initiator; seq }

let compare a b =
  let c = Proc_id.compare a.initiator b.initiator in
  if c <> 0 then c else Int.compare a.seq b.seq

let equal a b = compare a b = 0

let hash t = Hashtbl.hash (Proc_id.to_int t.initiator, t.seq)

let pp ppf t = Format.fprintf ppf "D%d@@%a" t.seq Proc_id.pp t.initiator

let to_string t = Format.asprintf "%a" pp t

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
