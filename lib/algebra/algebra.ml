module Sval = Adgc_serial.Sval

type t = { source : int Ref_key.Map.t; target : int Ref_key.Map.t }

let empty = { source = Ref_key.Map.empty; target = Ref_key.Map.empty }

type side = Source | Target

let side_name = function Source -> "source" | Target -> "target"

type add_result =
  | Added of t
  | Ic_conflict of { key : Ref_key.t; existing : int; incoming : int }

let pick = function Source -> fun t -> t.source | Target -> fun t -> t.target

let put side t m = match side with Source -> { t with source = m } | Target -> { t with target = m }

let add t side key ~ic =
  let m = pick side t in
  match Ref_key.Map.find_opt key m with
  | Some existing when existing = ic -> Added t
  | Some existing -> Ic_conflict { key; existing; incoming = ic }
  | None -> Added (put side t (Ref_key.Map.add key ic m))

let add_exn t side key ~ic =
  match add t side key ~ic with
  | Added t -> t
  | Ic_conflict { key; existing; incoming } ->
      invalid_arg
        (Format.asprintf "Algebra.add_exn: IC conflict on %a (%d vs %d)" Ref_key.pp key
           existing incoming)

exception Union_conflict of side * Ref_key.t

let union a b =
  let merge side m1 m2 =
    Ref_key.Map.union
      (fun key l r -> if l = r then Some l else raise (Union_conflict (side, key)))
      m1 m2
  in
  try Ok { source = merge Source a.source b.source; target = merge Target a.target b.target }
  with Union_conflict (side, key) -> Error (side, key)

let source t = Ref_key.Map.bindings t.source

let target t = Ref_key.Map.bindings t.target

let mem t side key = Ref_key.Map.mem key (pick side t)

let ic t side key = Ref_key.Map.find_opt key (pick side t)

let cardinal t = (Ref_key.Map.cardinal t.source, Ref_key.Map.cardinal t.target)

let equal a b =
  Ref_key.Map.equal Int.equal a.source b.source
  && Ref_key.Map.equal Int.equal a.target b.target

type matching_result =
  | Match of { unresolved : (Ref_key.t * int) list; frontier : (Ref_key.t * int) list }
  | Ic_abort of { key : Ref_key.t; source_ic : int; target_ic : int }

exception Abort of Ref_key.t * int * int

let matching t =
  (* One simultaneous walk over both ordered maps: entries present on
     both sides cancel when their ICs agree and abort otherwise. *)
  try
    let unresolved = ref [] and frontier = ref [] in
    let cancel key source_ic target_ic =
      (* Gauntlet mutant: cancelling despite an IC disagreement is the
         paper's canonical unsafe variant — a mutator invocation
         between the two snapshots goes unnoticed. *)
      if source_ic <> target_ic && not (Adgc_util.Mc_mutate.enabled "skip_ic_guards")
      then raise (Abort (key, source_ic, target_ic))
      else None
    in
    ignore
      (Ref_key.Map.merge
         (fun key s_ic t_ic ->
           (match (s_ic, t_ic) with
           | Some s, Some tg -> ignore (cancel key s tg)
           | Some s, None -> unresolved := (key, s) :: !unresolved
           | None, Some tg -> frontier := (key, tg) :: !frontier
           | None, None -> ());
           None)
         t.source t.target);
    Match { unresolved = List.rev !unresolved; frontier = List.rev !frontier }
  with Abort (key, source_ic, target_ic) -> Ic_abort { key; source_ic; target_ic }

let cycle_found t =
  match matching t with
  | Match { unresolved = []; frontier = [] } -> true
  | Match _ | Ic_abort _ -> false

let entry_to_sval (key, ic) =
  Sval.Record
    ( "entry",
      [
        ("src", Sval.Int (Proc_id.to_int key.Ref_key.src));
        ("owner", Sval.Int (Proc_id.to_int (Oid.owner key.Ref_key.target)));
        ("serial", Sval.Int key.Ref_key.target.Oid.serial);
        ("ic", Sval.Int ic);
      ] )

let entry_of_sval = function
  | Sval.Record
      ( "entry",
        [ ("src", Sval.Int src); ("owner", Sval.Int owner); ("serial", Sval.Int serial); ("ic", Sval.Int ic) ]
      )
    when src >= 0 && owner >= 0 && serial >= 0 ->
      let target = Oid.make ~owner:(Proc_id.of_int owner) ~serial in
      Some (Ref_key.make ~src:(Proc_id.of_int src) ~target, ic)
  | _ -> None

let to_sval t =
  Sval.Record
    ( "algebra",
      [
        ("source", Sval.List (List.map entry_to_sval (source t)));
        ("target", Sval.List (List.map entry_to_sval (target t)));
      ] )

(* Compact form: one record per distinct (key, ic) with two presence
   bits packed into one integer (1 = source, 2 = target, 3 = both). *)
let compact_entry_to_sval (key, ic, bits) =
  Sval.Record
    ( "ce",
      [
        ("src", Sval.Int (Proc_id.to_int key.Ref_key.src));
        ("owner", Sval.Int (Proc_id.to_int (Oid.owner key.Ref_key.target)));
        ("serial", Sval.Int key.Ref_key.target.Oid.serial);
        ("ic", Sval.Int ic);
        ("bits", Sval.Int bits);
      ] )

let to_sval_compact t =
  let entries =
    Ref_key.Map.fold
      (fun key s_ic acc ->
        match Ref_key.Map.find_opt key t.target with
        | Some t_ic when t_ic = s_ic -> (key, s_ic, 3) :: acc
        | Some _ | None -> (key, s_ic, 1) :: acc)
      t.source []
  in
  let entries =
    Ref_key.Map.fold
      (fun key t_ic acc ->
        match Ref_key.Map.find_opt key t.source with
        | Some s_ic when s_ic = t_ic -> acc (* already written with bits=3 *)
        | Some _ | None -> (key, t_ic, 2) :: acc)
      t.target entries
  in
  Sval.Record ("algebra_c", [ ("entries", Sval.List (List.rev_map compact_entry_to_sval entries)) ])

let compact_entry_of_sval = function
  | Sval.Record
      ( "ce",
        [
          ("src", Sval.Int src);
          ("owner", Sval.Int owner);
          ("serial", Sval.Int serial);
          ("ic", Sval.Int ic);
          ("bits", Sval.Int bits);
        ] )
    when src >= 0 && owner >= 0 && serial >= 0 && bits >= 1 && bits <= 3 ->
      let target = Oid.make ~owner:(Proc_id.of_int owner) ~serial in
      Some (Ref_key.make ~src:(Proc_id.of_int src) ~target, ic, bits)
  | _ -> None

let of_sval_compact entries =
  List.fold_left
    (fun acc e ->
      match (acc, compact_entry_of_sval e) with
      | Some t, Some (key, ic, bits) ->
          let add_side side t =
            match add t side key ~ic with Added t -> Some t | Ic_conflict _ -> None
          in
          let t = if bits land 1 <> 0 then add_side Source t else Some t in
          Option.bind t (fun t -> if bits land 2 <> 0 then add_side Target t else Some t)
      | _, _ -> None)
    (Some empty) entries

let of_sval v =
  let entries l =
    List.fold_left
      (fun acc e ->
        match (acc, entry_of_sval e) with
        | Some acc, Some entry -> Some (entry :: acc)
        | _, _ -> None)
      (Some []) l
    |> Option.map List.rev
  in
  match v with
  | Sval.Record ("algebra_c", [ ("entries", Sval.List l) ]) -> of_sval_compact l
  | Sval.Record ("algebra", [ ("source", Sval.List src); ("target", Sval.List tgt) ]) -> (
      match (entries src, entries tgt) with
      | Some src, Some tgt ->
          let build side init l =
            List.fold_left
              (fun acc (key, ic) ->
                match acc with
                | None -> None
                | Some t -> ( match add t side key ~ic with Added t -> Some t | Ic_conflict _ -> None))
              (Some init) l
          in
          Option.bind (build Source empty src) (fun t -> build Target t tgt)
      | _, _ -> None)
  | _ -> None

let pp_entry ppf (key, ic) = Format.fprintf ppf "%a:%d" Ref_key.pp key ic

let pp_entries ppf l =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_entry)
    l

let pp ppf t = Format.fprintf ppf "{%a -> %a}" pp_entries (source t) pp_entries (target t)

let to_string t = Format.asprintf "%a" pp t
