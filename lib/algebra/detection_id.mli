(** Identity of one cycle detection.

    A detection is named by the process that initiated it and a local
    sequence number, so several detections can be in flight at once —
    "several detections can be performed in parallel, at any rate of
    progress, and comprising any number of processes, without
    conflict" (paper §3.1). *)

type t = { initiator : Proc_id.t; seq : int }

val make : initiator:Proc_id.t -> seq:int -> t

val equal : t -> t -> bool

val compare : t -> t -> int

val hash : t -> int
(** Consistent with {!equal} (hence with the {!compare} total order):
    ids that compare equal hash equal — required by the hashed
    duplicate-suppression and lineage tables. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string

module Map : Map.S with type key = t

module Set : Set.S with type elt = t
