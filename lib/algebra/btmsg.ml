module Sval = Adgc_serial.Sval

type trace_id = { initiator : Proc_id.t; seq : int }

let trace_id_compare a b =
  let c = Proc_id.compare a.initiator b.initiator in
  if c <> 0 then c else Int.compare a.seq b.seq

let pp_trace_id ppf t = Format.fprintf ppf "T%d@@%a" t.seq Proc_id.pp t.initiator

type query = { trace : trace_id; subject : Ref_key.t; visited : Ref_key.t list }

type verdict = Rooted | Cycle_back

type reply = { trace : trace_id; subject : Ref_key.t; verdict : verdict }

type t = Query of query | Reply of reply

let pp ppf = function
  | Query q ->
      Format.fprintf ppf "BT-QUERY[%a subject=%a visited=%d]" pp_trace_id q.trace Ref_key.pp
        q.subject (List.length q.visited)
  | Reply r ->
      Format.fprintf ppf "BT-REPLY[%a subject=%a %s]" pp_trace_id r.trace Ref_key.pp r.subject
        (match r.verdict with Rooted -> "rooted" | Cycle_back -> "cycle-back")

let ref_to_sval (k : Ref_key.t) =
  Sval.List
    [
      Sval.Int (Proc_id.to_int k.src);
      Sval.Int (Proc_id.to_int (Oid.owner k.target));
      Sval.Int k.target.Oid.serial;
    ]

let to_sval = function
  | Query q ->
      Sval.Record
        ( "bt_query",
          [
            ("initiator", Sval.Int (Proc_id.to_int q.trace.initiator));
            ("seq", Sval.Int q.trace.seq);
            ("subject", ref_to_sval q.subject);
            ("visited", Sval.List (List.map ref_to_sval q.visited));
          ] )
  | Reply r ->
      Sval.Record
        ( "bt_reply",
          [
            ("initiator", Sval.Int (Proc_id.to_int r.trace.initiator));
            ("seq", Sval.Int r.trace.seq);
            ("subject", ref_to_sval r.subject);
            ("verdict", Sval.Bool (match r.verdict with Rooted -> true | Cycle_back -> false));
          ] )

let ref_of_sval = function
  | Sval.List [ Sval.Int src; Sval.Int owner; Sval.Int serial ]
    when src >= 0 && owner >= 0 && serial >= 0 ->
      Some
        (Ref_key.make ~src:(Proc_id.of_int src)
           ~target:(Oid.make ~owner:(Proc_id.of_int owner) ~serial))
  | _ -> None

let refs_of_sval svals =
  List.fold_right
    (fun sv acc ->
      match (acc, ref_of_sval sv) with Some acc, Some k -> Some (k :: acc) | _ -> None)
    svals (Some [])

let of_sval = function
  | Sval.Record
      ( "bt_query",
        [
          ("initiator", Sval.Int initiator);
          ("seq", Sval.Int seq);
          ("subject", subject);
          ("visited", Sval.List visited);
        ] )
    when initiator >= 0 -> (
      match (ref_of_sval subject, refs_of_sval visited) with
      | Some subject, Some visited ->
          Some (Query { trace = { initiator = Proc_id.of_int initiator; seq }; subject; visited })
      | _ -> None)
  | Sval.Record
      ( "bt_reply",
        [
          ("initiator", Sval.Int initiator);
          ("seq", Sval.Int seq);
          ("subject", subject);
          ("verdict", Sval.Bool verdict);
        ] )
    when initiator >= 0 -> (
      match ref_of_sval subject with
      | Some subject ->
          Some
            (Reply
               {
                 trace = { initiator = Proc_id.of_int initiator; seq };
                 subject;
                 verdict = (if verdict then Rooted else Cycle_back);
               })
      | None -> None)
  | _ -> None
