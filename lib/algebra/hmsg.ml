module Sval = Adgc_serial.Sval

type t =
  | Stamp of (Oid.t * int) list
  | Report of { round_time : int }
  | Threshold of { value : int }

let pp ppf = function
  | Stamp stamps -> Format.fprintf ppf "H-STAMP[%d entries]" (List.length stamps)
  | Report { round_time } -> Format.fprintf ppf "H-REPORT[t=%d]" round_time
  | Threshold { value } -> Format.fprintf ppf "H-THRESHOLD[%d]" value

let to_sval = function
  | Stamp stamps ->
      Sval.Record
        ( "h_stamp",
          [
            ( "stamps",
              Sval.List
                (List.map
                   (fun ((o : Oid.t), stamp) ->
                     Sval.List
                       [
                         Sval.Int (Proc_id.to_int (Oid.owner o));
                         Sval.Int o.Oid.serial;
                         Sval.Int stamp;
                       ])
                   stamps) );
          ] )
  | Report { round_time } -> Sval.Record ("h_report", [ ("round_time", Sval.Int round_time) ])
  | Threshold { value } -> Sval.Record ("h_threshold", [ ("value", Sval.Int value) ])

let of_sval = function
  | Sval.Record ("h_stamp", [ ("stamps", Sval.List entries) ]) ->
      List.fold_right
        (fun sv acc ->
          match (acc, sv) with
          | Some acc, Sval.List [ Sval.Int owner; Sval.Int serial; Sval.Int stamp ]
            when owner >= 0 && serial >= 0 ->
              Some ((Oid.make ~owner:(Proc_id.of_int owner) ~serial, stamp) :: acc)
          | _ -> None)
        entries (Some [])
      |> Option.map (fun stamps -> Stamp stamps)
  | Sval.Record ("h_report", [ ("round_time", Sval.Int round_time) ]) ->
      Some (Report { round_time })
  | Sval.Record ("h_threshold", [ ("value", Sval.Int value) ]) -> Some (Threshold { value })
  | _ -> None
