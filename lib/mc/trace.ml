module Json = Adgc_util.Json

type expectation = Violation | Divergence

type t = {
  scenario : string;
  mutant : string option;
  expect : expectation;
  caps : Scenario.caps option;
  violations : string list;
  trail : Action.t list;
}

let version = 1

let caps_to_json (c : Scenario.caps) =
  Json.obj_sorted
    [
      ("snapshots", Json.Int c.Scenario.snapshots);
      ("scans", Json.Int c.Scenario.scans);
      ("lgcs", Json.Int c.Scenario.lgcs);
      ("sends", Json.Int c.Scenario.sends);
      ("drops", Json.Int c.Scenario.drops);
    ]

let caps_of_json = function
  | Json.Obj fields -> (
      let int name =
        match List.assoc_opt name fields with
        | Some (Json.Int n) when n >= 0 -> Ok n
        | Some _ | None -> Error (Printf.sprintf "trace: caps field %S must be a non-negative int" name)
      in
      match (int "snapshots", int "scans", int "lgcs", int "sends", int "drops") with
      | Ok snapshots, Ok scans, Ok lgcs, Ok sends, Ok drops ->
          Ok { Scenario.snapshots; scans; lgcs; sends; drops }
      | (Error _ as e), _, _, _, _
      | _, (Error _ as e), _, _, _
      | _, _, (Error _ as e), _, _
      | _, _, _, (Error _ as e), _
      | _, _, _, _, (Error _ as e) ->
          e)
  | _ -> Error "trace: caps must be an object"

let expectation_to_string = function
  | Violation -> "violation"
  | Divergence -> "divergence"

let expectation_of_string = function
  | "violation" -> Ok Violation
  | "divergence" -> Ok Divergence
  | s -> Error (Printf.sprintf "unknown expectation %S" s)

let to_json t =
  Json.obj_sorted
    [
      ("version", Json.Int version);
      ("scenario", Json.Str t.scenario);
      ( "mutant",
        match t.mutant with None -> Json.Null | Some m -> Json.Str m );
      ("expect", Json.Str (expectation_to_string t.expect));
      ("caps", match t.caps with None -> Json.Null | Some c -> caps_to_json c);
      ("violations", Json.Arr (List.map (fun v -> Json.Str v) t.violations));
      ("trail", Json.Arr (List.map Action.to_json t.trail));
    ]

let ( let* ) = Result.bind

let field name = function
  | Json.Obj fields -> (
      match List.assoc_opt name fields with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "trace: missing field %S" name))
  | _ -> Error "trace: expected an object"

let of_json json =
  let* v = field "version" json in
  let* () =
    match v with
    | Json.Int n when n = version -> Ok ()
    | Json.Int n -> Error (Printf.sprintf "trace: unsupported version %d" n)
    | _ -> Error "trace: version must be an integer"
  in
  let* scenario =
    let* s = field "scenario" json in
    match s with Json.Str s -> Ok s | _ -> Error "trace: scenario must be a string"
  in
  let* mutant =
    let* m = field "mutant" json in
    match m with
    | Json.Null -> Ok None
    | Json.Str m -> Ok (Some m)
    | _ -> Error "trace: mutant must be a string or null"
  in
  let* expect =
    let* e = field "expect" json in
    match e with
    | Json.Str e -> expectation_of_string e
    | _ -> Error "trace: expect must be a string"
  in
  let* caps =
    (* Absent (older writer) reads as None: the scenario default. *)
    match field "caps" json with
    | Error _ | Ok Json.Null -> Ok None
    | Ok c -> Result.map Option.some (caps_of_json c)
  in
  let* violations =
    let* vs = field "violations" json in
    match vs with
    | Json.Arr items ->
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            match item with
            | Json.Str s -> Ok (s :: acc)
            | _ -> Error "trace: violations must be strings")
          (Ok []) items
        |> Result.map List.rev
    | _ -> Error "trace: violations must be an array"
  in
  let* trail =
    let* ts = field "trail" json in
    match ts with
    | Json.Arr items ->
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            let* a = Action.of_json item in
            Ok (a :: acc))
          (Ok []) items
        |> Result.map List.rev
    | _ -> Error "trace: trail must be an array"
  in
  Ok { scenario; mutant; expect; caps; violations; trail }

let save path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.to_string_pretty (to_json t)))

let load path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | contents ->
      let* json = Json.of_string contents in
      of_json json

type verdict = Reproduced | Failed of string

let replay t =
  match Scenarios.find t.scenario with
  | None -> Failed (Printf.sprintf "unknown scenario %S" t.scenario)
  | Some scenario -> (
      match t.expect with
      | Violation -> (
          match Explore.run ?mutant:t.mutant ?caps:t.caps scenario t.trail with
          | Error e -> Failed (Printf.sprintf "trail inapplicable: %s" e)
          | Ok (_, viols) ->
              if viols = t.violations then Reproduced
              else
                Failed
                  (Printf.sprintf "expected violations [%s], got [%s]"
                     (String.concat "; " t.violations)
                     (String.concat "; " viols)))
      | Divergence -> (
          (* the trail must reach the goal on the clean build... *)
          match Explore.run ?caps:t.caps scenario t.trail with
          | Error e -> Failed (Printf.sprintf "clean replay inapplicable: %s" e)
          | Ok (sys, viols) ->
              if viols <> [] then
                Failed "clean replay violated an invariant"
              else if not (System.goal_reached sys) then
                Failed "clean replay did not reach the goal"
              else (
                (* ...and miss it (or become inapplicable) under the mutant *)
                match Explore.run ?mutant:t.mutant ?caps:t.caps scenario t.trail with
                | Error _ -> Reproduced
                | Ok (sys', _) ->
                    if System.goal_reached sys' then
                      Failed "mutated replay still reaches the goal"
                    else Reproduced)))
