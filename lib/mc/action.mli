(** One nondeterministic choice of the bounded model checker.

    Every step the explored system takes is one of these actions; a
    finished exploration path (a {e trail}) is just a list of them.
    Actions are {e descriptors}, not handles: a delivery names an
    envelope by its message kind, endpoints and rank among identical
    pending envelopes ([nth]), never by internal injection id.  That
    keeps a trail meaningful after delta-debugging removes some of its
    prefix — the [nth]-of-kind envelope is still well defined, or the
    action is cleanly inapplicable and the candidate subset is
    rejected. *)

type t =
  | Deliver of { kind : string; src : int; dst : int; nth : int }
      (** dispatch the [nth] (0-based, in send order) pending envelope
          with this {!Adgc_rt.Msg.kind} on the [src -> dst] link *)
  | Drop of { kind : string; src : int; dst : int; nth : int }
      (** discard that envelope instead (counts against the scope's
          drop budget) *)
  | Snapshot of int  (** take and publish a snapshot of process [i] *)
  | Scan of int  (** run one detector candidate scan at process [i] *)
  | Lgc of int  (** run the local collector at process [i] *)
  | Send_sets of int  (** run a [NewSetStubs] round at process [i] *)
  | Mutate of int
      (** fire scripted mutation [i] — only applicable when [i] is the
          next unfired mutation, so scripts stay well-formed *)

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit

val to_json : t -> Adgc_util.Json.t

val of_json : Adgc_util.Json.t -> (t, string) result
