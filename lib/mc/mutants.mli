(** The mutation-testing gauntlet.

    Each entry names one intentionally-broken protocol variant (a
    {!Adgc_util.Mc_mutate} flag compiled into the production code), the
    scenario whose scope exposes it, and a hand-written witness
    schedule.  [run_entry] replays the witness, checks the mutant is
    caught, delta-debugs the trail to a 1-minimal counterexample and
    verifies the minimized trace replays deterministically.

    Two catch strategies:

    - [Safety]: under the mutant, the witness trail drives the system
      into an invariant violation (a live object reclaimed).  The ddmin
      predicate is "replaying this subsequence under the mutant still
      violates".
    - [Divergence]: the witness reaches the scenario goal (a proven
      reclamation) on the clean build, but under the mutant an action
      becomes inapplicable or the goal is missed — a liveness kill.
      The ddmin predicate is differential: the subsequence must still
      succeed clean {e and} fail mutated. *)

type strategy = Safety | Divergence

type entry = {
  mutant : string;
  descr : string;  (** what the broken variant forgets *)
  scenario : string;
  strategy : strategy;
  caps : Scenario.caps option;  (** scope override for the witness *)
  witness : Action.t list;
}

val all : entry list
(** The gauntlet, in catch order. *)

type outcome = {
  entry : entry;
  caught : bool;
  minimized : Action.t list;  (** 1-minimal witness, valid when caught *)
  violations : string list;  (** [Safety] only: violations of the minimized trail *)
  deterministic : bool;  (** minimized trace replayed twice with equal results *)
}

val run_entry : entry -> outcome

val trace_of : outcome -> Trace.t
(** Package a caught outcome as a replayable counterexample. *)
