(** The scenario registry, plus the scripted trails the conformance
    tests and the mutation gauntlet replay.

    Each scenario was designed (and is regression-checked) so that its
    {e whole} explored scope is violation-free on the unmutated build:
    every interleaving of deliveries, drops, snapshots, scans, local
    collections and scripted mutations within the caps keeps the
    paper's safety claims intact.  The scripted trails below are
    specific schedules through those scopes with known verdicts. *)

val two_proc_cycle : Scenario.t
(** Two processes, root [R -> A] at P0, remote cycle [A <-> B] with B
    at P1; one scripted mutation unlinks [R -> A].  The paper's
    canonical distributed garbage cycle. *)

val two_proc_cycle_incremental : Scenario.t
(** {!two_proc_cycle} with the candidate source pinned to
    [Incremental_candidates].  The audit invariant checked after every
    {!System.apply} step turns exhaustive exploration into a proof
    that the incremental labels match an independent full root trace
    in every reachable state of the scope; the [drop_label_updates]
    mutant is killed here. *)

val ic_race : Scenario.t
(** Two processes, root [R -> D] at P0, remote cycle [D <-> F]; the
    script first invokes [F] through P0's stub (bumping the stub-side
    counter while the request is parked in flight), then unlinks the
    root.  Exercises safety rule 3: any detection racing the
    invocation must abort on the counter mismatch. *)

val external_holder : Scenario.t
(** Three processes: remote cycle [A <-> B] between P1 and P2, and a
    rooted external reference to [A] from P0.  No mutation — the
    "cycle" is reachable and must never be reclaimed.  The
    [drop_source_scion] mutant loses exactly the external dependency
    here. *)

val export_handshake : Scenario.t
(** Three processes: P1 holds rooted stubs to [X] (owned by P0) and
    [Y] (owned by P2).  The script RMI-calls [Y] passing [X] — a
    third-party export whose notice/ack handshake must keep [X]
    protected — then drops P1's reference to [X].  Detection duties
    are capped to zero: the scope checks the reference-listing
    handshake alone. *)

val grouped_cycle : Scenario.t
(** {!two_proc_cycle} stretched across a group boundary: four
    processes in two groups of two ([groups = Some 2]), the cycle
    spanning P0 and P2.  Every DGC control message of the detection
    crosses the boundary and travels as a [Group_relay] through the
    group proxies; exhaustive exploration proves the relay overlay
    preserves safety and the reclamation goal. *)

val all : Scenario.t list

val find : string -> Scenario.t option

(** {1 Scripted trails} *)

val reclaim_trail : Action.t list
(** [two_proc_cycle]: unlink, snapshot both, scan P0, deliver the CDM
    chain and the deletion broadcast, collect both — the cycle is
    reclaimed (goal reached). *)

val lost_cdm_trail : Action.t list
(** [two_proc_cycle]: same, except the first CDM is dropped and a
    second scan retries the detection — still reclaims (the paper's
    resilience-to-loss claim).  Replay under {!lost_cdm_caps}. *)

val lost_cdm_caps : Scenario.caps
(** Scope for {!lost_cdm_trail}: one scan wider than the scenario's
    default exhaustive scope. *)

val stale_witness_trail : Action.t list
(** [reclaim_trail] prefixed with a pre-unlink snapshot of P0.
    Unmutated, the later snapshot supersedes it and the cycle is
    reclaimed; under [stale_summaries] the detector keeps the first
    (locally-reachable) summary and never initiates.  Replay under
    {!stale_witness_caps}. *)

val stale_witness_caps : Scenario.caps
(** Scope for {!stale_witness_trail}: one snapshot wider than the
    scenario's default exhaustive scope. *)

val ic_race_reclaim_trail : Action.t list
(** [ic_race]: run the invocation to completion (request and reply
    delivered), then detect and reclaim — the exact verdict is
    reclamation, since a settled invocation leaves the counters
    consistent. *)

val grouped_reclaim_trail : Action.t list
(** [grouped_cycle]: the {!reclaim_trail} schedule translated to the
    grouped clique — every CDM leg is a single-entry [Group_relay]
    envelope between the two proxies.  The exact verdict is
    reclamation. *)

val ic_race_abort_trail : Action.t list
(** [ic_race]: detect while the invocation request is still in flight —
    the exact verdict is {e no} reclamation: the CDM aborts on the
    counter mismatch at delivery (safety rule 3) and both cycle members
    survive their local collections. *)
