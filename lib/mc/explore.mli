(** Bounded exploration of a scenario's choice space.

    Stateless-search design: there is no undo, so every tree node is
    reconstructed by replaying its trail against a fresh
    {!System.create}.  A node whose {!System.fingerprint} was already
    visited with at least as much remaining depth budget is pruned —
    interleavings of commuting actions collapse onto one state, which
    is what makes small scopes exhaustively explorable. *)

type outcome = {
  states : int;  (** distinct state fingerprints visited *)
  transitions : int;  (** actions applied across the search *)
  complete : bool;
      (** the whole scope was explored: no node was cut off by
          [max_depth] while it still had enabled actions *)
  violation : (Action.t list * string list) option;
      (** first violating trail found, with its violations; exploration
          stops there *)
}

val run :
  ?mutant:string ->
  ?caps:Scenario.caps ->
  Scenario.t ->
  Action.t list ->
  (System.t * string list, string) Stdlib.result
(** Replay a trail from scratch; [Ok (system, violations)] with every
    violation observed along the way (in order), or [Error reason] at
    the first inapplicable action. *)

val explore :
  ?mutant:string -> ?caps:Scenario.caps -> ?max_depth:int -> Scenario.t -> outcome
(** Depth-first search of the whole scope (default depth bound 64 —
    effectively "until the caps close the space").  Stops at the first
    violation. *)

val find_goal :
  ?mutant:string -> ?caps:Scenario.caps -> max_depth:int -> Scenario.t -> Action.t list option
(** Shortest trail reaching the scenario goal, by iterative
    deepening; [None] if the goal is unreachable within the bound. *)

val ddmin : test:(Action.t list -> bool) -> Action.t list -> Action.t list
(** Classic delta debugging over a trail known to satisfy [test]
    (1-minimal result: removing any single remaining action breaks
    [test]).  [test] receives candidate subsequences; reject trails
    with inapplicable actions there. *)

val swarm :
  ?mutant:string ->
  ?caps:Scenario.caps ->
  seeds:int list ->
  steps:int ->
  Scenario.t ->
  (int * Action.t list * string list) option
(** Randomized walks, one per seed, each up to [steps] actions: pick a
    uniformly random enabled action, apply, check.  Returns the first
    violating walk as [(seed, trail, violations)].  Fully
    deterministic per seed. *)
