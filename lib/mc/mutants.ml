type strategy = Safety | Divergence

type entry = {
  mutant : string;
  descr : string;
  scenario : string;
  strategy : strategy;
  caps : Scenario.caps option;
  witness : Action.t list;
}

let deliver kind src dst = Action.Deliver { kind; src; dst; nth = 0 }

let all =
  [
    {
      mutant = "lgc_ignores_scions";
      descr = "local collector forgets that scions are GC roots";
      scenario = "two_proc_cycle";
      strategy = Safety;
      caps = None;
      witness = [ Action.Lgc 1 ];
    };
    {
      mutant = "ignore_local_reach";
      descr = "detector forgets safety rule 2 (never follow or accept a locally reachable branch)";
      scenario = "two_proc_cycle";
      strategy = Safety;
      caps = None;
      (* Root intact: the detection started at P1 walks straight through
         the rooted A and proves the live cycle. *)
      witness =
        [
          Action.Snapshot 0;
          Action.Snapshot 1;
          Action.Scan 1;
          deliver "cdm" 1 0;
          deliver "cdm" 0 1;
          Action.Lgc 1;
        ];
    };
    {
      mutant = "conclude_ignores_unresolved";
      descr = "detector concludes while scion dependencies are untraversed";
      scenario = "external_holder";
      strategy = Safety;
      caps = None;
      (* The external dependency (p0 -> A) stays unresolved forever; the
         mutant concludes over it at P2 — B's own scion is among the
         proven set and is deleted on the spot. *)
      witness =
        [
          Action.Snapshot 1;
          Action.Snapshot 2;
          Action.Scan 1;
          deliver "cdm" 1 2;
          Action.Lgc 2;
        ];
    };
    {
      mutant = "drop_source_scion";
      descr = "detector loses one scion dependency when deriving a CDM";
      scenario = "external_holder";
      strategy = Safety;
      caps = None;
      (* The dropped dependency is exactly the external holder's, so the
         remaining algebra cancels and the conclusion at P2 deletes B's
         only scion. *)
      witness =
        [
          Action.Snapshot 1;
          Action.Snapshot 2;
          Action.Scan 2;
          deliver "cdm" 2 1;
          deliver "cdm" 1 2;
          Action.Lgc 2;
        ];
    };
    {
      mutant = "ack_before_delivery";
      descr = "export notice acknowledged without recording the scion";
      scenario = "export_handshake";
      strategy = Safety;
      caps = None;
      (* With no scion for P2's reference, the exporter's post-drop
         listing round leaves X wholly unprotected at its owner. *)
      witness =
        [
          Action.Mutate 0;
          deliver "export_notice" 1 0;
          deliver "rmi_request" 1 2;
          deliver "export_ack" 0 1;
          deliver "rmi_reply" 2 1;
          Action.Send_sets 1;
          deliver "new_set_stubs" 1 0;
          Action.Mutate 1;
          Action.Lgc 1;
          Action.Send_sets 1;
          deliver "new_set_stubs" 1 0;
          Action.Lgc 0;
        ];
    };
    {
      mutant = "skip_ic_guards";
      descr = "detector forgets safety rule 3 (invocation-count consistency, all three checks)";
      scenario = "ic_race";
      strategy = Safety;
      caps = None;
      (* The undelivered invocation keeps F live while its stub-side
         counter is already ahead; with every IC check gone the stale
         detection cancels and concludes over the live cycle. *)
      witness =
        [
          Action.Mutate 0;
          Action.Mutate 1;
          Action.Snapshot 0;
          Action.Snapshot 1;
          Action.Scan 0;
          deliver "cdm" 0 1;
          deliver "cdm" 1 0;
          deliver "cdm_delete" 0 1;
          Action.Lgc 1;
        ];
    };
    {
      mutant = "drop_label_updates";
      descr = "incremental candidate maintainer goes deaf to heap edge/root events";
      scenario = "two_proc_cycle_incremental";
      strategy = Safety;
      caps = None;
      (* With every heap event dropped, P0's root region never grows
         past the (empty) heap it was attached to, so the scion
         guarding the remotely-held cycle member is labelled a
         candidate while a full root trace says it is reachable — the
         per-step audit invariant catches the divergence on the very
         first action.  Safety here means label exactness, the
         property the incremental scan's correctness rests on. *)
      witness = [ Action.Snapshot 0 ];
    };
    {
      mutant = "no_reinitiation";
      descr = "detector never retries a candidate after a fruitless attempt";
      scenario = "two_proc_cycle";
      strategy = Divergence;
      caps = Some Scenarios.lost_cdm_caps;
      (* The paper's resilience claim: losing a CDM only delays the
         collection until the next scan retries.  Without reinitiation
         the retry scan initiates nothing and the cycle leaks. *)
      witness = Scenarios.lost_cdm_trail;
    };
    {
      mutant = "stale_summaries";
      descr = "detector keeps its first snapshot forever";
      scenario = "two_proc_cycle";
      strategy = Divergence;
      caps = Some Scenarios.stale_witness_caps;
      (* The frozen pre-unlink summary says the cycle is locally
         reachable, so the detector refuses to initiate ever again. *)
      witness = Scenarios.stale_witness_trail;
    };
  ]

type outcome = {
  entry : entry;
  caught : bool;
  minimized : Action.t list;
  violations : string list;
  deterministic : bool;
}

let scenario_of e =
  match Scenarios.find e.scenario with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Mutants.run_entry: unknown scenario %S" e.scenario)

(* Safety: the subsequence still violates under the mutant. *)
let violates e scenario trail =
  match Explore.run ~mutant:e.mutant ?caps:e.caps scenario trail with
  | Ok (_, viols) -> viols <> []
  | Error _ -> false

(* Divergence: the subsequence still reaches the goal clean AND still
   fails (inapplicable action, missed goal or violation) mutated. *)
let clean_succeeds e scenario trail =
  match Explore.run ?caps:e.caps scenario trail with
  | Ok (sys, []) -> System.goal_reached sys
  | Ok (_, _ :: _) | Error _ -> false

let mutated_fails e scenario trail =
  match Explore.run ~mutant:e.mutant ?caps:e.caps scenario trail with
  | Ok (sys, viols) -> viols <> [] || not (System.goal_reached sys)
  | Error _ -> true

let run_entry e =
  let scenario = scenario_of e in
  let test =
    match e.strategy with
    | Safety -> violates e scenario
    | Divergence -> fun trail -> clean_succeeds e scenario trail && mutated_fails e scenario trail
  in
  let caught = test e.witness in
  if not caught then
    { entry = e; caught = false; minimized = []; violations = []; deterministic = false }
  else begin
    let minimized = Explore.ddmin ~test e.witness in
    let replay () =
      match Explore.run ~mutant:e.mutant ?caps:e.caps scenario minimized with
      | Ok (sys, viols) -> Some (System.fingerprint sys, viols)
      | Error _ -> None
    in
    let first = replay () and second = replay () in
    let violations = match first with Some (_, viols) -> viols | None -> [] in
    { entry = e; caught = true; minimized; violations; deterministic = first = second }
  end

let trace_of o =
  {
    Trace.scenario = o.entry.scenario;
    mutant = Some o.entry.mutant;
    expect = (match o.entry.strategy with Safety -> Trace.Violation | Divergence -> Trace.Divergence);
    caps = o.entry.caps;
    violations = o.violations;
    trail = o.minimized;
  }
