open Adgc_algebra
open Adgc_rt
module Sim = Adgc.Sim
module Config = Adgc.Config
module Kernel = Adgc.Kernel
module Json = Adgc_util.Json

type t = {
  sim : Sim.t;
  kctx : Kernel.ctx;
  caps : Scenario.caps;
  inst : Scenario.instance;
  n_procs : int;
  mutable mut_cursor : int;
  mutable drops_used : int;
  snaps : int array;
  scans : int array;
  lgcs : int array;
  sends : int array;
  mutable sweep_violations : string list;
}

(* Ground truth for the checker is the cluster's own tracer,
   [Cluster.globally_live] — including its in-flight refinement (an
   RMI reply's [target] is never imported on delivery, only its
   [results] are, so a sweep racing the reply envelope is
   legitimate).  The checker keeps no private copy: the simulator's
   oracle, the metrics sampler and this checker all judge liveness
   with the same function, so a refinement bug cannot hide in one
   driver. *)
let live_refined t = Cluster.globally_live (Sim.cluster t.sim)

let create ?mutant ?caps (scenario : Scenario.t) =
  Adgc_util.Mc_mutate.set mutant;
  let caps = match caps with Some c -> c | None -> scenario.Scenario.caps in
  let config = Config.mc ~n_procs:scenario.Scenario.n_procs () in
  let config =
    match scenario.Scenario.candidates with
    | None -> config (* inherit ADGC_CANDIDATES via Config.default *)
    | Some candidates -> { config with Config.candidates }
  in
  let config =
    match scenario.Scenario.groups with
    | None -> config (* inherit ADGC_GROUPS via Config.default *)
    | Some g -> Config.with_groups config g
  in
  let sim = Sim.create ~config () in
  let inst = scenario.Scenario.setup sim in
  let n = scenario.Scenario.n_procs in
  let t =
    {
      sim;
      kctx = Sim.kernel_ctx sim;
      caps;
      inst;
      n_procs = n;
      mut_cursor = 0;
      drops_used = 0;
      snaps = Array.make n 0;
      scans = Array.make n 0;
      lgcs = Array.make n 0;
      sends = Array.make n 0;
      sweep_violations = [];
    }
  in
  let rt = Sim.rt sim in
  rt.Runtime.on_pre_sweep <-
    Some
      (fun proc doomed ->
        let live = live_refined t in
        List.iter
          (fun oid ->
            if Oid.Set.mem oid live then
              t.sweep_violations <-
                Format.asprintf "live_reclaimed: globally-live %a swept by %a's LGC" Oid.pp oid
                  Proc_id.pp proc
                :: t.sweep_violations)
          doomed);
  t

let sim t = t.sim

let goal_reached t = match t.inst.Scenario.goal with Some g -> g () | None -> false

(* Pending envelopes grouped into (kind, src, dst) classes; the [nth]
   rank within a class is its position in send order.  Descriptors
   survive trail surgery: removing an earlier send shifts ranks
   consistently or makes the action inapplicable, never silently
   retargets it to a different class. *)
let pending_classes t =
  List.map
    (fun (id, (m : Msg.t)) ->
      ( id,
        Msg.kind m.Msg.payload,
        Proc_id.to_int m.Msg.src,
        Proc_id.to_int m.Msg.dst ))
    (Network.pending (Sim.net t.sim))

let resolve t ~kind ~src ~dst ~nth =
  let matching =
    List.filter (fun (_, k, s, d) -> k = kind && s = src && d = dst) (pending_classes t)
  in
  match List.nth_opt matching nth with
  | Some (id, _, _, _) -> Some id
  | None -> None

let enabled t =
  let mutations =
    if t.mut_cursor < Array.length t.inst.Scenario.mutations then [ Action.Mutate t.mut_cursor ]
    else []
  in
  let per_proc cap counts mk =
    let rec go i acc = if i < 0 then acc else go (i - 1) (if counts.(i) < cap then mk i :: acc else acc) in
    go (t.n_procs - 1) []
  in
  (* A listing round by a process with nothing to advertise (and
     nobody owed a retraction) sends no message and clears no mark —
     offering it would only split states on the spent counter. *)
  let useful_send i =
    Reflist.would_advertise (Cluster.proc (Sim.cluster t.sim) i)
  in
  let duties =
    per_proc t.caps.Scenario.snapshots t.snaps (fun i -> Action.Snapshot i)
    @ per_proc t.caps.Scenario.scans t.scans (fun i -> Action.Scan i)
    @ (per_proc t.caps.Scenario.sends t.sends (fun i -> Action.Send_sets i)
      |> List.filter (function Action.Send_sets i -> useful_send i | _ -> true))
    @ per_proc t.caps.Scenario.lgcs t.lgcs (fun i -> Action.Lgc i)
  in
  (* One action per distinct (kind, src, dst) class and rank. *)
  let seen = Hashtbl.create 16 in
  let deliveries =
    List.map
      (fun (_, kind, src, dst) ->
        let key = (kind, src, dst) in
        let nth = match Hashtbl.find_opt seen key with Some n -> n | None -> 0 in
        Hashtbl.replace seen key (nth + 1);
        Action.Deliver { kind; src; dst; nth })
      (pending_classes t)
  in
  let drops =
    if t.drops_used >= t.caps.Scenario.drops then []
    else
      List.map
        (function
          | Action.Deliver { kind; src; dst; nth } -> Action.Drop { kind; src; dst; nth }
          | _ -> assert false)
        deliveries
  in
  mutations @ duties @ deliveries @ drops

let perform t (a : Action.t) =
  match a with
  | Action.Mutate i ->
      if i <> t.mut_cursor || i >= Array.length t.inst.Scenario.mutations then
        Error "mutation is not the next scripted one"
      else begin
        (snd t.inst.Scenario.mutations.(i)) ();
        t.mut_cursor <- i + 1;
        Ok ()
      end
  | Action.Snapshot p ->
      if p < 0 || p >= t.n_procs then Error "no such process"
      else if t.snaps.(p) >= t.caps.Scenario.snapshots then Error "snapshot cap reached"
      else begin
        Kernel.run_duty t.kctx (Kernel.Snapshot p);
        t.snaps.(p) <- t.snaps.(p) + 1;
        Ok ()
      end
  | Action.Scan p ->
      if p < 0 || p >= t.n_procs then Error "no such process"
      else if t.scans.(p) >= t.caps.Scenario.scans then Error "scan cap reached"
      else begin
        Kernel.run_duty t.kctx (Kernel.Scan p);
        t.scans.(p) <- t.scans.(p) + 1;
        Ok ()
      end
  | Action.Lgc p ->
      if p < 0 || p >= t.n_procs then Error "no such process"
      else if t.lgcs.(p) >= t.caps.Scenario.lgcs then Error "lgc cap reached"
      else begin
        Kernel.run_duty t.kctx (Kernel.Lgc p);
        t.lgcs.(p) <- t.lgcs.(p) + 1;
        Ok ()
      end
  | Action.Send_sets p ->
      if p < 0 || p >= t.n_procs then Error "no such process"
      else if t.sends.(p) >= t.caps.Scenario.sends then Error "send-sets cap reached"
      else begin
        Kernel.run_duty t.kctx (Kernel.Send_sets p);
        t.sends.(p) <- t.sends.(p) + 1;
        Ok ()
      end
  | Action.Deliver { kind; src; dst; nth } -> (
      match resolve t ~kind ~src ~dst ~nth with
      | None -> Error "no such pending envelope"
      | Some id ->
          Network.deliver_one (Sim.net t.sim) id;
          Ok ())
  | Action.Drop { kind; src; dst; nth } ->
      if t.drops_used >= t.caps.Scenario.drops then Error "drop budget exhausted"
      else (
        match resolve t ~kind ~src ~dst ~nth with
        | None -> Error "no such pending envelope"
        | Some id ->
            Network.drop_one (Sim.net t.sim) id;
            t.drops_used <- t.drops_used + 1;
            Ok ())

(* The candidate maintainer runs in every mode, so its audit is an
   invariant of every explored state: the incrementally maintained
   candidate set must equal one recomputed from an independent full
   root trace.  The audit only refreshes internal labels (never the
   frozen [published] list), so checking it after each action does
   not perturb the explored behaviour or the fingerprint. *)
let audit_violations t =
  List.concat
    (List.init t.n_procs (fun i ->
         match Adgc_dcda.Candidates.audit (Adgc_dcda.Detector.candidates (Sim.detector t.sim i)) with
         | None -> []
         | Some (only_inc, only_scan) ->
             [
               Printf.sprintf
                 "candidate_audit: P%d incremental labels diverge from full scan (%d \
                  incremental-only, %d scan-only)"
                 i
                 (Ref_key.Set.cardinal only_inc)
                 (Ref_key.Set.cardinal only_scan);
             ]))

let apply t a =
  match perform t a with
  | Error _ as e -> e
  | Ok () ->
      let swept = List.rev t.sweep_violations in
      t.sweep_violations <- [];
      let live = live_refined t in
      let inst =
        List.map
          (fun v ->
            Printf.sprintf "%s: %s" (Adgc_check.Invariant.kind v)
              (Adgc_check.Invariant.describe v))
          (Adgc_check.Invariant.check ~live (Sim.cluster t.sim))
      in
      Ok (swept @ inst @ audit_violations t)

(* --------------------------------------------------------------- *)
(* Canonical state digest.                                          *)

let oid_str o = Format.asprintf "%a" Oid.pp o

let key_str k = Format.asprintf "%a" Ref_key.pp k

let fingerprint t =
  let rt = Sim.rt t.sim in
  let procs =
    Array.to_list rt.Runtime.procs
    |> List.map (fun (p : Process.t) ->
           let heap =
             Heap.fold p.Process.heap ~init:[] ~f:(fun acc obj ->
                 let fields =
                   Array.to_list obj.Heap.fields
                   |> List.map (function None -> Json.Null | Some o -> Json.Str (oid_str o))
                 in
                 (oid_str obj.Heap.oid, Json.Arr fields) :: acc)
             |> List.sort compare
             |> List.map (fun (k, v) -> Json.Obj [ ("o", Json.Str k); ("f", v) ])
           in
           let roots =
             Heap.roots p.Process.heap |> List.map oid_str |> List.sort compare
             |> List.map (fun s -> Json.Str s)
           in
           let stubs =
             Stub_table.entries p.Process.stubs
             |> List.map (fun (e : Stub_table.entry) ->
                    ( oid_str e.Stub_table.target,
                      Json.Arr
                        [
                          Json.Int e.Stub_table.ic;
                          Json.Int e.Stub_table.pins;
                          Json.Bool e.Stub_table.live;
                          Json.Bool e.Stub_table.fresh;
                        ] ))
             |> List.sort compare
             |> List.map (fun (k, v) -> Json.Obj [ ("s", Json.Str k); ("e", v) ])
           in
           let scions =
             Scion_table.entries p.Process.scions
             |> List.map (fun (e : Scion_table.entry) ->
                    ( key_str e.Scion_table.key,
                      Json.Arr [ Json.Int e.Scion_table.ic; Json.Bool e.Scion_table.confirmed ]
                    ))
             |> List.sort compare
             |> List.map (fun (k, v) -> Json.Obj [ ("s", Json.Str k); ("e", v) ])
           in
           let summary =
             match Adgc_dcda.Detector.summary (Sim.detector t.sim (Proc_id.to_int p.Process.id)) with
             | None -> Json.Null
             | Some s ->
                 Json.Str
                   (Format.asprintf "%a" Adgc_serial.Sval.pp (Adgc_snapshot.Summary.to_sval s))
           in
           Json.obj_sorted
             [
               ("alive", Json.Bool p.Process.alive);
               ("heap", Json.Arr heap);
               ("roots", Json.Arr roots);
               ("stubs", Json.Arr stubs);
               ("scions", Json.Arr scions);
               ("summary", summary);
             ])
  in
  (* Parked envelopes, order-independent: identical payloads between
     the same endpoints are interchangeable, so sort on the canonical
     payload rendering (which excludes the envelope sequence
     number). *)
  let in_flight =
    Network.pending (Sim.net t.sim)
    |> List.map (fun (_, (m : Msg.t)) ->
           Printf.sprintf "%d>%d:%s"
             (Proc_id.to_int m.Msg.src)
             (Proc_id.to_int m.Msg.dst)
             (Format.asprintf "%a" Adgc_serial.Sval.pp (Msg.payload_sval m.Msg.payload)))
    |> List.sort compare
    |> List.map (fun s -> Json.Str s)
  in
  let ints a = Json.Arr (Array.to_list a |> List.map (fun i -> Json.Int i)) in
  let doc =
    Json.obj_sorted
      [
        ("procs", Json.Arr procs);
        ("net", Json.Arr in_flight);
        ("mut", Json.Int t.mut_cursor);
        ("drops", Json.Int t.drops_used);
        ("snaps", ints t.snaps);
        ("scans", ints t.scans);
        ("lgcs", ints t.lgcs);
        ("sends", ints t.sends);
      ]
  in
  Digest.to_hex (Digest.string (Json.to_string doc))
