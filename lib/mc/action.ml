module Json = Adgc_util.Json

type t =
  | Deliver of { kind : string; src : int; dst : int; nth : int }
  | Drop of { kind : string; src : int; dst : int; nth : int }
  | Snapshot of int
  | Scan of int
  | Lgc of int
  | Send_sets of int
  | Mutate of int

let compare = Stdlib.compare

let equal a b = compare a b = 0

let pp ppf = function
  | Deliver { kind; src; dst; nth } ->
      Format.fprintf ppf "deliver %s p%d->p%d #%d" kind src dst nth
  | Drop { kind; src; dst; nth } -> Format.fprintf ppf "drop %s p%d->p%d #%d" kind src dst nth
  | Snapshot p -> Format.fprintf ppf "snapshot p%d" p
  | Scan p -> Format.fprintf ppf "scan p%d" p
  | Lgc p -> Format.fprintf ppf "lgc p%d" p
  | Send_sets p -> Format.fprintf ppf "send_sets p%d" p
  | Mutate i -> Format.fprintf ppf "mutate #%d" i

let envelope tag kind src dst nth =
  Json.obj_sorted
    [
      ("t", Json.Str tag);
      ("kind", Json.Str kind);
      ("src", Json.Int src);
      ("dst", Json.Int dst);
      ("nth", Json.Int nth);
    ]

let proc_action tag p = Json.obj_sorted [ ("t", Json.Str tag); ("proc", Json.Int p) ]

let to_json = function
  | Deliver { kind; src; dst; nth } -> envelope "deliver" kind src dst nth
  | Drop { kind; src; dst; nth } -> envelope "drop" kind src dst nth
  | Snapshot p -> proc_action "snapshot" p
  | Scan p -> proc_action "scan" p
  | Lgc p -> proc_action "lgc" p
  | Send_sets p -> proc_action "send_sets" p
  | Mutate i -> Json.obj_sorted [ ("t", Json.Str "mutate"); ("index", Json.Int i) ]

let field obj name =
  match obj with
  | Json.Obj fields -> (
      match List.assoc_opt name fields with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "missing field %S" name))
  | _ -> Error "action is not an object"

let int_field obj name =
  match field obj name with
  | Ok (Json.Int i) -> Ok i
  | Ok _ -> Error (Printf.sprintf "field %S is not an int" name)
  | Error e -> Error e

let str_field obj name =
  match field obj name with
  | Ok (Json.Str s) -> Ok s
  | Ok _ -> Error (Printf.sprintf "field %S is not a string" name)
  | Error e -> Error e

let ( let* ) = Result.bind

let of_json j =
  let* tag = str_field j "t" in
  match tag with
  | "deliver" | "drop" ->
      let* kind = str_field j "kind" in
      let* src = int_field j "src" in
      let* dst = int_field j "dst" in
      let* nth = int_field j "nth" in
      if tag = "deliver" then Ok (Deliver { kind; src; dst; nth })
      else Ok (Drop { kind; src; dst; nth })
  | "snapshot" ->
      let* p = int_field j "proc" in
      Ok (Snapshot p)
  | "scan" ->
      let* p = int_field j "proc" in
      Ok (Scan p)
  | "lgc" ->
      let* p = int_field j "proc" in
      Ok (Lgc p)
  | "send_sets" ->
      let* p = int_field j "proc" in
      Ok (Send_sets p)
  | "mutate" ->
      let* i = int_field j "index" in
      Ok (Mutate i)
  | other -> Error (Printf.sprintf "unknown action tag %S" other)
