(** The system under exploration: a time-frozen simulator driven
    exclusively by {!Action} steps.

    Built from {!Adgc.Config.mc}, so the scheduler clock never
    advances and the network parks every envelope for explicit
    delivery: the full system state is a pure function of the action
    sequence applied since [create].  The explorer rebuilds a system
    by replaying a trail — there is no undo. *)

type t

val create : ?mutant:string -> ?caps:Scenario.caps -> Scenario.t -> t
(** Fresh system with the scenario's topology built.  [mutant]
    activates one {!Adgc_util.Mc_mutate} variant for the whole life of
    the exploration (the switch is global: systems are used one at a
    time).  [caps] overrides the scenario's default scope. *)

val enabled : t -> Action.t list
(** Every action applicable right now, in a deterministic order:
    the next scripted mutation, then per-process duties (snapshot,
    scan, send-sets, LGC) still under their caps, then deliveries in
    send order, then drops if the drop budget allows. *)

val apply : t -> Action.t -> (string list, string) result
(** Perform one action.  [Ok violations] carries every safety
    violation observed during or right after the step (pre-sweep
    ground-truth hits, {!Adgc_check.Invariant.check} findings and
    per-process candidate-label audits —
    {!Adgc_dcda.Candidates.audit} against an independent root trace —
    rendered as stable strings); [Error reason] means the action was
    not applicable in this state and nothing happened. *)

val fingerprint : t -> string
(** Canonical digest of the reachable system state: heaps, roots,
    stub and scion tables, published detector summaries, parked
    envelopes (send-order independent) and the scope counters.
    Internal identity counters (envelope sequence numbers, RMI request
    ids, detection sequence numbers) and scion tombstones are
    deliberately excluded — states identical up to such renaming
    behave identically, so pruning on this digest is sound for
    safety.  See docs/MODEL_CHECKING.md for the approximation
    argument. *)

val goal_reached : t -> bool
(** The scenario's liveness goal, [false] when it has none. *)

val live_refined : t -> Adgc_algebra.Oid.Set.t
(** Ground truth used for violation checking — exactly
    {!Adgc_rt.Cluster.globally_live}, which already refines in-flight
    RMI replies down to their result references (the target field is
    routing metadata that confers no reference on delivery).  The
    checker keeps no private tracer. *)

val sim : t -> Adgc.Sim.t
