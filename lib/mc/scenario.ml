type caps = { snapshots : int; scans : int; lgcs : int; sends : int; drops : int }

type instance = {
  mutations : (string * (unit -> unit)) array;
  goal : (unit -> bool) option;
}

type t = {
  name : string;
  descr : string;
  n_procs : int;
  candidates : Adgc.Config.candidates_kind option;
  groups : int option;
  caps : caps;
  setup : Adgc.Sim.t -> instance;
}
