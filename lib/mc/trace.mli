(** Replayable counterexample traces.

    A trace file is the checker's deliverable: scenario name, active
    mutant (if any), the violations observed, and the action trail
    that produces them.  [adgc_sim mc --replay FILE] re-executes it
    deterministically and verifies the recorded violations (or goal
    divergence) reproduce. *)

type expectation =
  | Violation  (** replaying the trail yields these safety violations *)
  | Divergence
      (** the trail reaches the scenario goal unmutated but fails to
          under the recorded mutant (a liveness kill) *)

type t = {
  scenario : string;
  mutant : string option;
  expect : expectation;
  caps : Scenario.caps option;
      (** scope override the trail was recorded under; [None] replays
          with the scenario's default caps *)
  violations : string list;  (** recorded violations ([Violation] only) *)
  trail : Action.t list;
}

val to_json : t -> Adgc_util.Json.t

val of_json : Adgc_util.Json.t -> (t, string) result

val save : string -> t -> unit
(** Write as pretty-printed JSON. *)

val load : string -> (t, string) result

type verdict = Reproduced | Failed of string

val replay : t -> verdict
(** Re-run the trace and check its expectation: a [Violation] trace
    must yield exactly the recorded violations; a [Divergence] trace
    must reach the goal on the unmutated replay and miss it (or become
    inapplicable) under the mutant. *)
