open Adgc_rt
module Sim = Adgc.Sim

let heap_of sim i = (Cluster.proc (Sim.cluster sim) i).Process.heap

let gone sim i (o : Heap.obj) = not (Heap.mem (heap_of sim i) o.Heap.oid)

let two_proc_cycle : Scenario.t =
  {
    Scenario.name = "two_proc_cycle";
    descr = "root->A at P0, remote cycle A<->B with B at P1; unlink the root";
    n_procs = 2;
    candidates = None;
    groups = None;
    (* The acceptance scope: one snapshot, scan and collection per
       process plus one possible message loss.  No listing rounds —
       none of this scenario's trails or witnesses need them, and each
       extra duty multiplies the interleaving space.  Trails that need
       a wider scope (a retry scan, a pre-mutation snapshot) carry
       their own caps. *)
    caps = { Scenario.snapshots = 1; scans = 1; lgcs = 1; sends = 0; drops = 1 };
    setup =
      (fun sim ->
        let c = Sim.cluster sim in
        let r = Mutator.alloc c ~proc:0 () in
        Mutator.add_root c r;
        let a = Mutator.alloc c ~proc:0 () in
        let b = Mutator.alloc c ~proc:1 () in
        Mutator.link c ~from_:r ~to_:a;
        Mutator.wire_remote c ~holder:a ~target:b;
        Mutator.wire_remote c ~holder:b ~target:a;
        {
          Scenario.mutations =
            [| ("unlink_root", fun () -> Mutator.unlink c ~from_:r ~to_:a) |];
          goal = Some (fun () -> gone sim 0 a && gone sim 1 b);
        });
  }

(* The same shape and scope as [two_proc_cycle], but with the
   detector's candidate source pinned to the incremental maintainer.
   Every [System.apply] step cross-checks the maintained candidate
   set against an independent full root trace (the audit invariant),
   so exhaustive exploration of this scenario proves the labels stay
   exact under {e every} interleaving the scope admits — and the
   [drop_label_updates] mutant is killed the moment the labels can
   first diverge. *)
let two_proc_cycle_incremental : Scenario.t =
  {
    two_proc_cycle with
    Scenario.name = "two_proc_cycle_incremental";
    descr = two_proc_cycle.Scenario.descr ^ "; incremental candidate labels + audit invariant";
    candidates = Some Adgc.Config.Incremental_candidates;
  }

let ic_race : Scenario.t =
  {
    Scenario.name = "ic_race";
    descr =
      "root->D at P0, remote cycle D<->F; invoke F through the stub, then unlink the root";
    n_procs = 2;
    candidates = None;
    groups = None;
    caps = { Scenario.snapshots = 1; scans = 1; lgcs = 1; sends = 0; drops = 0 };
    setup =
      (fun sim ->
        let c = Sim.cluster sim in
        let r = Mutator.alloc c ~proc:0 () in
        Mutator.add_root c r;
        let d = Mutator.alloc c ~proc:0 () in
        let f = Mutator.alloc c ~proc:1 () in
        Mutator.link c ~from_:r ~to_:d;
        Mutator.wire_remote c ~holder:d ~target:f;
        Mutator.wire_remote c ~holder:f ~target:d;
        {
          Scenario.mutations =
            [|
              ("invoke_f", fun () -> Mutator.invoke c ~src:0 ~target:f.Heap.oid);
              ("unlink_root", fun () -> Mutator.unlink c ~from_:r ~to_:d);
            |];
          goal = Some (fun () -> gone sim 0 d && gone sim 1 f);
        });
  }

let external_holder : Scenario.t =
  {
    Scenario.name = "external_holder";
    descr = "cycle A<->B between P1 and P2, rooted external reference to A from P0";
    n_procs = 3;
    candidates = None;
    groups = None;
    caps = { Scenario.snapshots = 1; scans = 1; lgcs = 1; sends = 0; drops = 0 };
    setup =
      (fun sim ->
        let c = Sim.cluster sim in
        let r = Mutator.alloc c ~proc:0 () in
        Mutator.add_root c r;
        let a = Mutator.alloc c ~proc:1 () in
        let b = Mutator.alloc c ~proc:2 () in
        Mutator.wire_remote c ~holder:a ~target:b;
        Mutator.wire_remote c ~holder:b ~target:a;
        Mutator.wire_remote c ~holder:r ~target:a;
        { Scenario.mutations = [||]; goal = None });
  }

let export_handshake : Scenario.t =
  {
    Scenario.name = "export_handshake";
    descr =
      "P1 exports X (owned by P0) to P2 as an RMI argument, then drops its own reference";
    n_procs = 3;
    candidates = None;
    groups = None;
    (* Two listing rounds: the first primes [set_recipients] for the
       owner of X, so the post-drop round reaches it with an empty set. *)
    caps = { Scenario.snapshots = 0; scans = 0; lgcs = 1; sends = 2; drops = 0 };
    setup =
      (fun sim ->
        let c = Sim.cluster sim in
        let x = Mutator.alloc c ~proc:0 () in
        let r1 = Mutator.alloc c ~proc:1 () in
        Mutator.add_root c r1;
        let r2 = Mutator.alloc c ~proc:2 () in
        Mutator.add_root c r2;
        let y = Mutator.alloc c ~proc:2 () in
        Mutator.link c ~from_:r2 ~to_:y;
        Mutator.wire_remote c ~holder:r1 ~target:x;
        Mutator.wire_remote c ~holder:r1 ~target:y;
        {
          Scenario.mutations =
            [|
              ( "export_x_to_y",
                fun () ->
                  Mutator.call c ~src:1 ~target:y.Heap.oid ~args:[ x.Heap.oid ]
                    ~behavior:Mutator.store_args () );
              ("drop_x", fun () -> Mutator.unwire_remote c ~holder:r1 ~target:x);
            |];
          goal = None;
        });
  }

(* [two_proc_cycle] stretched across a group boundary: four processes
   in two groups of two, with the cycle spanning P0 (group 0) and P2
   (group 1).  Every DGC control message of the detection now crosses
   the boundary, so with relaying pinned on it travels as a
   [Group_relay] through the group proxies (synchronously flushed —
   the mc config forces [group_window = 0]).  Exhaustive exploration
   of this scope proves the relay overlay preserves both safety and
   the reclamation goal.  P1 and P3 are empty bystanders; their duties
   are no-ops but still multiply the interleaving space, so the scope
   keeps [drops = 0]. *)
let grouped_cycle : Scenario.t =
  {
    Scenario.name = "grouped_cycle";
    descr = "remote cycle A<->B spanning the group boundary of a 2x2 grouped clique";
    n_procs = 4;
    candidates = None;
    groups = Some 2;
    caps = { Scenario.snapshots = 1; scans = 1; lgcs = 1; sends = 0; drops = 0 };
    setup =
      (fun sim ->
        let c = Sim.cluster sim in
        let r = Mutator.alloc c ~proc:0 () in
        Mutator.add_root c r;
        let a = Mutator.alloc c ~proc:0 () in
        let b = Mutator.alloc c ~proc:2 () in
        Mutator.link c ~from_:r ~to_:a;
        Mutator.wire_remote c ~holder:a ~target:b;
        Mutator.wire_remote c ~holder:b ~target:a;
        {
          Scenario.mutations =
            [| ("unlink_root", fun () -> Mutator.unlink c ~from_:r ~to_:a) |];
          goal = Some (fun () -> gone sim 0 a && gone sim 2 b);
        });
  }

let all =
  [
    two_proc_cycle;
    two_proc_cycle_incremental;
    ic_race;
    external_holder;
    export_handshake;
    grouped_cycle;
  ]

let find name = List.find_opt (fun (s : Scenario.t) -> s.Scenario.name = name) all

(* ----------------------------------------------------------------- *)
(* Scripted trails.  Hand-derived schedules; the conformance tests
   replay them and assert the exact verdicts. *)

let deliver kind src dst = Action.Deliver { kind; src; dst; nth = 0 }

let drop kind src dst = Action.Drop { kind; src; dst; nth = 0 }

let reclaim_core =
  [
    Action.Snapshot 0;
    Action.Snapshot 1;
    Action.Scan 0;
    (* detection of scion (P1, A) initiated at P0 travels the cycle:
       CDM to P1 (explaining stub A->B), back to P0 (full match),
       conclusion broadcasts the deletion of P1's scion for B *)
    deliver "cdm" 0 1;
    deliver "cdm" 1 0;
    deliver "cdm_delete" 0 1;
    Action.Lgc 0;
    Action.Lgc 1;
  ]

let reclaim_trail = Action.Mutate 0 :: reclaim_core

let lost_cdm_trail =
  [
    Action.Mutate 0;
    Action.Snapshot 0;
    Action.Snapshot 1;
    Action.Scan 0;
    drop "cdm" 0 1;
    (* the detection died with its first CDM; a later scan retries *)
    Action.Scan 0;
    deliver "cdm" 0 1;
    deliver "cdm" 1 0;
    deliver "cdm_delete" 0 1;
    Action.Lgc 0;
    Action.Lgc 1;
  ]

(* The retry needs a second scan at P0 — one more than the default
   exhaustive scope allows. *)
let lost_cdm_caps = { Scenario.snapshots = 1; scans = 2; lgcs = 1; sends = 0; drops = 1 }

let stale_witness_trail = Action.Snapshot 0 :: Action.Mutate 0 :: reclaim_core

(* The pre-mutation snapshot of P0 is a second one. *)
let stale_witness_caps = { Scenario.snapshots = 2; scans = 1; lgcs = 1; sends = 0; drops = 0 }

let ic_race_reclaim_trail =
  [
    Action.Mutate 0;
    (* invoke F: request parked P0->P1 *)
    deliver "rmi_request" 0 1;
    (* scion-side counter adopts the bump; reply parked P1->P0 *)
    deliver "rmi_reply" 1 0;
    Action.Mutate 1;
    (* unlink the root: the cycle is now garbage with settled counters *)
    Action.Snapshot 0;
    Action.Snapshot 1;
    Action.Scan 1;
    deliver "cdm" 1 0;
    deliver "cdm" 0 1;
    deliver "cdm_delete" 1 0;
    Action.Lgc 0;
    Action.Lgc 1;
  ]

(* [reclaim_core] translated to the grouped clique: P0 and P2 are the
   proxies of their own groups, so each cross-boundary CDM is exactly
   one single-entry [Group_relay] envelope between them (member ->
   own-proxy and proxy -> final-destination hops are identities
   here). *)
let grouped_reclaim_trail =
  [
    Action.Mutate 0;
    Action.Snapshot 0;
    Action.Snapshot 2;
    Action.Scan 0;
    deliver "group_relay" 0 2;
    (* the CDM delivered out of the relay; P2's reply CDM and the
       conclusion's deletion broadcast relay back the same way *)
    deliver "group_relay" 2 0;
    deliver "group_relay" 0 2;
    Action.Lgc 0;
    Action.Lgc 2;
  ]

let ic_race_abort_trail =
  [
    Action.Mutate 0;
    (* invoke F, but never deliver the request: the stub-side counter
       is ahead of every scion-side snapshot *)
    Action.Mutate 1;
    Action.Snapshot 0;
    Action.Snapshot 1;
    Action.Scan 0;
    (* the CDM carries the bumped stub counter; delivery at P1 compares
       it with the stale scion counter and must abort (safety rule 3) *)
    deliver "cdm" 0 1;
    Action.Lgc 0;
    Action.Lgc 1;
  ]
