(** A model-checking scenario: a small topology, a script of
    application mutations, and the scope bounds of the exploration.

    Scenarios respect the {e well-formed mutation} discipline: a
    scripted mutation may only create references the application could
    legitimately hold at that point (local links between reachable
    objects, invocations through reachable stubs, root removal).
    Cross-process references appear exclusively through the RMI /
    export machinery — never forged — so every explored interleaving
    is a behaviour the real platform could exhibit, and an invariant
    violation is always the protocol's fault. *)

type caps = {
  snapshots : int;  (** snapshots per process *)
  scans : int;  (** detector candidate scans per process *)
  lgcs : int;  (** local collections per process *)
  sends : int;  (** [NewSetStubs] rounds per process *)
  drops : int;  (** message drops, whole run *)
}

type instance = {
  mutations : (string * (unit -> unit)) array;
      (** scripted application steps, fired in order by
          {!Action.Mutate}; the name is documentation for traces *)
  goal : (unit -> bool) option;
      (** liveness target (e.g. "the cycle was reclaimed"), reachable
          in the unmutated scope; [None] for pure-safety scenarios *)
}

type t = {
  name : string;
  descr : string;
  n_procs : int;
  candidates : Adgc.Config.candidates_kind option;
      (** pin the DCDA candidate source for this scenario; [None]
          inherits the ambient config (the [ADGC_CANDIDATES]
          environment variable), so the CI candidate matrix also
          sweeps the unpinned scenarios *)
  groups : int option;
      (** pin the hierarchical group size; [None] inherits the ambient
          config ([ADGC_GROUPS]), so the CI groups dimension also
          sweeps the unpinned scenarios.  The mc config always flushes
          relays synchronously ([group_window = 0]). *)
  caps : caps;  (** default scope; explorations may override *)
  setup : Adgc.Sim.t -> instance;
      (** build the initial topology and return the mutation script
          (closing over the objects it created) *)
}
