type outcome = {
  states : int;
  transitions : int;
  complete : bool;
  violation : (Action.t list * string list) option;
}

let run ?mutant ?caps scenario trail =
  let sys = System.create ?mutant ?caps scenario in
  let rec go acc = function
    | [] -> Ok (sys, List.rev acc)
    | a :: rest -> (
        match System.apply sys a with
        | Error e -> Error (Format.asprintf "%a: %s" Action.pp a e)
        | Ok viols -> go (List.rev_append viols acc) rest)
  in
  go [] trail

let explore ?mutant ?caps ?(max_depth = 64) scenario =
  (* fingerprint -> largest remaining budget it was expanded with *)
  let seen : (string, int) Hashtbl.t = Hashtbl.create 4096 in
  let states = ref 0 in
  let transitions = ref 0 in
  let truncated = ref false in
  let violation = ref None in
  let exception Found in
  let rec dfs trail sys depth =
    let fp = System.fingerprint sys in
    let remaining = max_depth - depth in
    let expand =
      match Hashtbl.find_opt seen fp with
      | Some r when r >= remaining -> false
      | Some _ -> true
      | None ->
          incr states;
          true
    in
    if expand then begin
      Hashtbl.replace seen fp remaining;
      let acts = System.enabled sys in
      if acts <> [] && remaining <= 0 then truncated := true
      else
        List.iter
          (fun a ->
            let trail' = trail @ [ a ] in
            match run ?mutant ?caps scenario trail' with
            | Error _ ->
                (* enabled implies applicable; an error here would be a
                   nondeterminism bug, which the replay test suite
                   guards against *)
                ()
            | Ok (sys', viols) ->
                incr transitions;
                if viols <> [] then begin
                  violation := Some (trail', viols);
                  raise Found
                end
                else dfs trail' sys' (depth + 1))
          acts
    end
  in
  (try
     match run ?mutant ?caps scenario [] with
     | Error _ -> ()
     | Ok (sys0, viols) ->
         if viols <> [] then violation := Some ([], viols) else dfs [] sys0 0
   with Found -> ());
  {
    states = !states;
    transitions = !transitions;
    complete = (not !truncated) && !violation = None;
    violation = !violation;
  }

let find_goal ?mutant ?caps ~max_depth scenario =
  let exception Got of Action.t list in
  try
    for bound = 0 to max_depth do
      let seen : (string, int) Hashtbl.t = Hashtbl.create 1024 in
      let rec dfs trail sys depth =
        if System.goal_reached sys then raise (Got trail);
        if depth < bound then begin
          let fp = System.fingerprint sys in
          let remaining = bound - depth in
          let expand =
            match Hashtbl.find_opt seen fp with Some r when r >= remaining -> false | _ -> true
          in
          if expand then begin
            Hashtbl.replace seen fp remaining;
            List.iter
              (fun a ->
                match run ?mutant ?caps scenario (trail @ [ a ]) with
                | Error _ -> ()
                | Ok (sys', _) -> dfs (trail @ [ a ]) sys' (depth + 1))
              (System.enabled sys)
          end
        end
      in
      match run ?mutant ?caps scenario [] with
      | Error _ -> ()
      | Ok (sys0, _) -> dfs [] sys0 0
    done;
    None
  with Got trail -> Some trail

(* --------------------------------------------------------------- *)
(* Delta debugging (Zeller's ddmin) over the action trail.          *)

let split_chunks trail n =
  let len = List.length trail in
  let arr = Array.of_list trail in
  let base = len / n and extra = len mod n in
  let chunks = ref [] in
  let pos = ref 0 in
  for i = 0 to n - 1 do
    let size = base + if i < extra then 1 else 0 in
    if size > 0 then begin
      chunks := Array.to_list (Array.sub arr !pos size) :: !chunks;
      pos := !pos + size
    end
  done;
  List.rev !chunks

let ddmin ~test trail =
  let rec go trail n =
    let len = List.length trail in
    if len <= 1 then trail
    else begin
      let chunks = split_chunks trail n in
      let try_candidates candidates =
        List.find_opt test candidates
      in
      (* Reduce to a single chunk... *)
      match try_candidates chunks with
      | Some chunk -> go chunk 2
      | None -> (
          (* ...or to the complement of one. *)
          let complements =
            List.mapi (fun i _ -> List.concat (List.filteri (fun j _ -> j <> i) chunks)) chunks
          in
          match try_candidates complements with
          | Some rest -> go rest (max (n - 1) 2)
          | None -> if n >= len then trail else go trail (min len (2 * n)))
    end
  in
  if test trail then go trail 2 else trail

let swarm ?mutant ?caps ~seeds ~steps scenario =
  let walk seed =
    let rng = Adgc_util.Rng.create seed in
    let sys = System.create ?mutant ?caps scenario in
    let rec go trail k =
      if k >= steps then None
      else
        match System.enabled sys with
        | [] -> None
        | acts -> (
            let a = List.nth acts (Adgc_util.Rng.int rng (List.length acts)) in
            match System.apply sys a with
            | Error _ -> None
            | Ok viols ->
                let trail = trail @ [ a ] in
                if viols <> [] then Some (seed, trail, viols) else go trail (k + 1))
    in
    go [] 0
  in
  List.find_map walk seeds
