module Net_codec = Adgc_serial.Net_codec
module Wire = Adgc_serial.Wire

type addr = Unix_sock of string | Tcp of string * int

let addr_of_string s =
  match String.rindex_opt s ':' with
  | Some i -> (
      let host = String.sub s 0 i and port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p when host <> "" -> Tcp (host, p)
      | _ -> Unix_sock s)
  | None -> Unix_sock s

let pp_addr ppf = function
  | Unix_sock path -> Format.fprintf ppf "unix:%s" path
  | Tcp (host, port) -> Format.fprintf ppf "tcp:%s:%d" host port

let sockaddr = function
  | Unix_sock path -> Unix.ADDR_UNIX path
  | Tcp (host, port) ->
      let ip =
        try Unix.inet_addr_of_string host
        with _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      Unix.ADDR_INET (ip, port)

type conn = {
  sock : Unix.file_descr;
  enc : Net_codec.Stream.writer;
  dec : Net_codec.Stream.reader;
  frames : Frame.decoder;
  backlog : Buffer.t;  (* bytes accepted by [send] but not yet by the kernel *)
  mutable backlog_off : int;
  mutable sent_frames : int;
  mutable received_frames : int;
  mutable alive : bool;
  readbuf : Bytes.t;
}

let of_fd sock =
  Unix.set_nonblock sock;
  (try Unix.setsockopt sock Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  {
    sock;
    enc = Net_codec.Stream.writer ();
    dec = Net_codec.Stream.reader ();
    frames = Frame.decoder ();
    backlog = Buffer.create 4096;
    backlog_off = 0;
    sent_frames = 0;
    received_frames = 0;
    alive = true;
    readbuf = Bytes.create 65536;
  }

let fd t = t.sock

let alive t = t.alive

let close t =
  if t.alive then begin
    t.alive <- false;
    try Unix.close t.sock with Unix.Unix_error _ -> ()
  end

let kill t = close t

let sent_frames t = t.sent_frames

let received_frames t = t.received_frames

let compact t =
  if t.backlog_off > 0 && t.backlog_off = Buffer.length t.backlog then begin
    Buffer.clear t.backlog;
    t.backlog_off <- 0
  end
  else if t.backlog_off > 1 lsl 20 then begin
    let rest = Buffer.sub t.backlog t.backlog_off (Buffer.length t.backlog - t.backlog_off) in
    Buffer.clear t.backlog;
    Buffer.add_string t.backlog rest;
    t.backlog_off <- 0
  end

let flush t =
  if t.alive then begin
    let contents = Buffer.contents t.backlog in
    let continue = ref true in
    while !continue && t.backlog_off < String.length contents do
      let len = String.length contents - t.backlog_off in
      match Unix.write_substring t.sock contents t.backlog_off len with
      | 0 -> continue := false
      | n -> t.backlog_off <- t.backlog_off + n
      | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _) ->
          continue := false
      | exception Unix.Unix_error _ -> kill t; continue := false
    done;
    compact t
  end

let want_write t = t.alive && t.backlog_off < Buffer.length t.backlog

let send t env =
  if t.alive then begin
    let payload = Net_codec.Stream.encode t.enc (Envelope.to_sval env) in
    Buffer.add_string t.backlog (Frame.encode payload);
    t.sent_frames <- t.sent_frames + 1;
    flush t
  end

let recv t =
  if not t.alive then []
  else begin
    let continue = ref true in
    while !continue do
      match Unix.read t.sock t.readbuf 0 (Bytes.length t.readbuf) with
      | 0 -> kill t; continue := false
      | n ->
          Frame.feed_sub t.frames t.readbuf 0 n;
          if n < Bytes.length t.readbuf then continue := false
      | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _) ->
          continue := false
      | exception Unix.Unix_error _ -> kill t; continue := false
    done;
    let out = ref [] in
    (try
       let rec drain () =
         match Frame.next t.frames with
         | None -> ()
         | Some payload -> (
             match Envelope.of_sval (Net_codec.Stream.decode t.dec payload) with
             | Some env ->
                 t.received_frames <- t.received_frames + 1;
                 out := env :: !out;
                 drain ()
             | None -> kill t)
       in
       drain ()
     with Wire.Malformed _ -> kill t);
    List.rev !out
  end

let listen addr =
  let domain = match addr with Unix_sock _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET in
  let sock = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match addr with
  | Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> Unix.setsockopt sock Unix.SO_REUSEADDR true);
  Unix.bind sock (sockaddr addr);
  Unix.listen sock 64;
  Unix.set_nonblock sock;
  sock

let accept lsock =
  match Unix.accept lsock with
  | sock, _ -> Some (of_fd sock)
  | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _) -> None

let dial ?(attempts = 40) ?(delay = 0.05) addr =
  let sa = sockaddr addr in
  let rec go n delay =
    let domain = match addr with Unix_sock _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET in
    let sock = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect sock sa with
    | () -> of_fd sock
    | exception Unix.Unix_error (err, _, _) ->
        (try Unix.close sock with Unix.Unix_error _ -> ());
        if n <= 1 then
          Format.kasprintf failwith "dial %a: %s" pp_addr addr (Unix.error_message err)
        else begin
          Unix.sleepf delay;
          go (n - 1) (Float.min 0.5 (delay *. 1.5))
        end
  in
  go attempts delay
