(** Everything that crosses a socket, control plane included.

    Protocol traffic rides as [Net_msg] (the untouched {!Adgc_rt.Msg}
    wire representation, per-sender sequence number and all — which is
    what makes delivery idempotent under transport-level
    retransmission); the remaining constructors are the driver's
    control plane: connection handshake, liveness, run orchestration
    and state gathering.

    Encoding is {!Adgc_serial.Net_codec} with {e per-connection}
    interning ({!Adgc_serial.Net_codec.Stream}) — record and field
    names cross each connection once, which is what the two-frame
    shrink test in [test_serial.ml] pins down. *)

type status = {
  st_rank : int;
  st_tick : int;
  st_ready : bool;  (** all peer links established *)
  st_reclaimed : Adgc_algebra.Oid.t list;  (** objects swept so far, oldest first *)
  st_wire_sent : int;
  st_wire_received : int;
  st_dup_ignored : int;  (** envelopes refused by [Process.note_delivery] *)
}

type t =
  | Hello of { rank : int; procs : int; seed : int }
      (** First frame on every connection, dialer first.  Rank [-1] is
          the coordinator.  [procs]/[seed] double as a configuration
          cross-check: a mismatched node must not join. *)
  | Start  (** coordinator -> node: begin duties; tick 0 is now *)
  | Heartbeat of { tick : int }
  | Net_msg of Adgc_rt.Msg.t  (** one protocol envelope, node -> node *)
  | Status_req
  | Status of status
  | State_req
  | State of Gather.node_state
  | Drop_peer of int
      (** coordinator -> node (tests): sever the link to that rank
          right now, as if the connection had failed; the normal
          reconnect machinery takes over. *)
  | Shutdown  (** coordinator -> node: flush, reply [Bye], exit *)
  | Bye

val to_sval : t -> Adgc_serial.Sval.t

val of_sval : Adgc_serial.Sval.t -> t option

val kind : t -> string
(** Stable tag for stats counters ("hello", "net_msg", ...). *)
