module Config = Adgc.Config
module Stats = Adgc_util.Stats
module Span = Adgc_obs.Span
open Adgc_algebra

type spawn = Fork | Exec of string list

type fault =
  | Kill of { rank : int; after_s : float }
  | Drop of { rank : int; peer : int; after_s : float }

type options = {
  scenario : Scenario.t;
  dir : string option;
  tick_us : int;
  deadline_s : float;
  faults : fault list;
  spawn : spawn;
  keep_dir : bool;
}

let options ?dir ?(tick_us = 100) ?(deadline_s = 60.0) ?(faults = []) ?(spawn = Fork)
    ?(keep_dir = false) scenario =
  { scenario; dir; tick_us; deadline_s; faults; spawn; keep_dir }

type result = {
  verdict : Gather.verdict;
  states : Gather.node_state list;
  statuses : Envelope.status list;
  dead : int list;
  required : Oid.Set.t;
  wall_s : float;
  max_tick : int;
  timed_out : bool;
  stats : Stats.t;
  obs : Span.t;
  dir : string;
}

let ok r =
  Gather.clean r.verdict
  && Oid.Set.is_empty (Oid.Set.diff r.required r.verdict.Gather.reclaimed)
  && not r.timed_out

let pp_result ppf r =
  Format.fprintf ppf "@[<v>net run: %s in %.2fs (max tick %d)%s@,%a@]"
    (if ok r then "ok" else "FAILED")
    r.wall_s r.max_tick
    (match r.dead with
    | [] -> ""
    | d -> Format.asprintf ", dead ranks %s" (String.concat "," (List.map string_of_int d)))
    Gather.pp_verdict r.verdict

(* ------------------------------------------------------------------ *)

type node = {
  rank : int;
  pid : int;
  mutable conn : Transport.conn option;
  mutable last_seen : float;
  mutable status : Envelope.status option;
  mutable state : Gather.node_state option;
  mutable bye : bool;
  mutable dead : bool;
  mutable reaped : bool;
}

let mkdir_p dir = if not (Sys.file_exists dir) then Unix.mkdir dir 0o755

let fresh_dir () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "adgc-net-%d-%.0f" (Unix.getpid ()) (Unix.gettimeofday () *. 1e3))
  in
  mkdir_p dir;
  dir

let rm_rf dir =
  if Sys.file_exists dir && Sys.is_directory dir then begin
    Array.iter (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

let node_config opts ~dir rank =
  let max_ticks =
    int_of_float (opts.deadline_s *. 1e6 /. float_of_int opts.tick_us) + 100_000
  in
  { Node.rank; scenario = opts.scenario; dir; tick_us = opts.tick_us; max_ticks }

let spawn_fork opts ~dir ~listener rank =
  let err = Filename.concat dir (Printf.sprintf "node-%d.err" rank) in
  match Unix.fork () with
  | 0 ->
      let code =
        try
          let fd = Unix.openfile err [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
          Unix.dup2 fd Unix.stdout;
          Unix.dup2 fd Unix.stderr;
          Unix.close fd;
          (try Unix.close listener with Unix.Unix_error _ -> ());
          Node.main (node_config opts ~dir rank);
          0
        with exn ->
          Printf.eprintf "node %d: %s\n%!" rank (Printexc.to_string exn);
          1
      in
      Unix._exit code
  | pid -> pid

let spawn_exec opts ~dir argv rank =
  let sc = opts.scenario in
  let cfg = node_config opts ~dir rank in
  let args =
    argv
    @ [
        "--dir"; dir;
        "--rank"; string_of_int rank;
        "--topology"; Scenario.topology_to_string sc.Scenario.topology;
        "--procs"; string_of_int (Scenario.n_procs sc);
        "--seed"; string_of_int sc.Scenario.seed;
        "--detector"; Scenario.detector_to_string sc.Scenario.detector;
        "--candidates"; Adgc.Config.candidates_to_string sc.Scenario.candidates;
        "--groups"; string_of_int sc.Scenario.groups;
        "--objects"; string_of_int sc.Scenario.objects;
        "--edges"; string_of_int sc.Scenario.edges;
        "--tick-us"; string_of_int cfg.Node.tick_us;
        "--max-ticks"; string_of_int cfg.Node.max_ticks;
      ]
  in
  let err =
    Unix.openfile
      (Filename.concat dir (Printf.sprintf "node-%d.err" rank))
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
      0o644
  in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let pid = Unix.create_process (List.hd argv) (Array.of_list args) devnull err err in
  Unix.close err;
  Unix.close devnull;
  pid

(* ------------------------------------------------------------------ *)

let heartbeat_silence = 3.0

let reap_children ?(mark_dead = true) nodes =
  Array.iter
    (fun nd ->
      if not nd.reaped then
        match Unix.waitpid [ Unix.WNOHANG ] nd.pid with
        | 0, _ -> ()
        | _, _ ->
            nd.reaped <- true;
            if mark_dead then nd.dead <- true
        | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
            nd.reaped <- true;
            if mark_dead then nd.dead <- true)
    nodes

let handle_envelope nd ~now ~max_tick env =
  nd.last_seen <- now;
  match env with
  | Envelope.Status s ->
      nd.status <- Some s;
      max_tick := Int.max !max_tick s.Envelope.st_tick
  | Envelope.State ns -> nd.state <- Some ns
  | Envelope.Heartbeat { tick } -> max_tick := Int.max !max_tick tick
  | Envelope.Bye -> nd.bye <- true
  | Envelope.Hello _ | Envelope.Start | Envelope.Status_req | Envelope.State_req
  | Envelope.Net_msg _ | Envelope.Drop_peer _ | Envelope.Shutdown ->
      ()

type pump = {
  listener : Unix.file_descr;
  nodes : node array;
  mutable pending : Transport.conn list;
  max_tick : int ref;
  started : bool ref;
  closing : bool ref;  (* Shutdown broadcast: exits and EOFs are expected now *)
}

(* One select round: accept, handshake, drain node traffic, flush. *)
let poll pump timeout =
  let now = Unix.gettimeofday () in
  let node_conns =
    Array.to_list pump.nodes
    |> List.filter_map (fun nd ->
           match nd.conn with Some c when Transport.alive c -> Some (nd, c) | _ -> None)
  in
  let pending = List.filter Transport.alive pump.pending in
  let all_conns = pending @ List.map snd node_conns in
  let reads = pump.listener :: List.map Transport.fd all_conns in
  let writes =
    List.filter_map (fun c -> if Transport.want_write c then Some (Transport.fd c) else None)
      all_conns
  in
  let readable, writable, _ =
    try Unix.select reads writes [] timeout
    with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
  in
  if List.mem pump.listener readable then begin
    let continue = ref true in
    while !continue do
      match Transport.accept pump.listener with
      | Some conn -> pump.pending <- conn :: pump.pending
      | None -> continue := false
    done
  end;
  let pending = List.filter Transport.alive pump.pending in
  pump.pending <-
    List.filter
      (fun conn ->
        if List.mem (Transport.fd conn) readable then
          match Transport.recv conn with
          | [] -> Transport.alive conn
          | Envelope.Hello { rank; _ } :: rest
            when rank >= 0 && rank < Array.length pump.nodes ->
              let nd = pump.nodes.(rank) in
              (match nd.conn with Some old -> Transport.close old | None -> ());
              nd.conn <- Some conn;
              nd.last_seen <- Unix.gettimeofday ();
              List.iter (handle_envelope nd ~now ~max_tick:pump.max_tick) rest;
              false
          | _ ->
              Transport.close conn;
              false
        else Transport.alive conn)
      pending;
  List.iter
    (fun (nd, c) ->
      if List.mem (Transport.fd c) readable then
        List.iter (handle_envelope nd ~now ~max_tick:pump.max_tick) (Transport.recv c))
    node_conns;
  List.iter (fun c -> if List.mem (Transport.fd c) writable then Transport.flush c) all_conns;
  (* Death detection: child exit, connection EOF, heartbeat silence.
     Once the shutdown phase begins, exits are the desired outcome. *)
  let mark_dead = not !(pump.closing) in
  reap_children ~mark_dead pump.nodes;
  Array.iter
    (fun nd ->
      (match nd.conn with
      | Some c when not (Transport.alive c) ->
          nd.conn <- None;
          if !(pump.started) && mark_dead then nd.dead <- true
      | Some _ | None -> ());
      if
        !(pump.started) && mark_dead && (not nd.dead) && nd.conn <> None
        && now -. nd.last_seen > heartbeat_silence
      then nd.dead <- true)
    pump.nodes

let broadcast pump env =
  Array.iter
    (fun nd ->
      if not nd.dead then
        match nd.conn with Some c when Transport.alive c -> Transport.send c env | _ -> ())
    pump.nodes

let live pump = Array.to_list pump.nodes |> List.filter (fun nd -> not nd.dead)

(* ------------------------------------------------------------------ *)

let kill_all nodes =
  Array.iter
    (fun nd ->
      if not nd.reaped then begin
        (try Unix.kill nd.pid Sys.sigkill with Unix.Unix_error _ -> ());
        (try ignore (Unix.waitpid [] nd.pid) with Unix.Unix_error _ -> ());
        nd.reaped <- true
      end)
    nodes

let run opts =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let scenario = opts.scenario in
  let n = Scenario.n_procs scenario in
  let dir, temp_dir =
    match opts.dir with
    | Some d ->
        mkdir_p d;
        (d, false)
    | None -> (fresh_dir (), true)
  in
  let stats = Stats.create () in
  let obs = Span.create () in
  Span.set_enabled obs true;
  let t0 = Unix.gettimeofday () in
  let us () = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6) in
  let run_span = Span.begin_span obs ~time:(us ()) ~kind:Span.Run "net.run" in
  let phase name f =
    let id = Span.begin_span obs ~time:(us ()) ~parent:run_span ~kind:(Span.Custom "net.phase") name in
    let r = f () in
    Span.end_span obs ~time:(us ()) id;
    r
  in
  let expected = phase "net.expect" (fun () -> Scenario.expected scenario) in
  let expected_dead =
    List.filter_map (function Kill { rank; _ } -> Some rank | Drop _ -> None) opts.faults
  in
  let required =
    if expected_dead = [] then expected.Scenario.garbage
    else Scenario.garbage_excluding scenario ~dead:expected_dead
  in
  let listener = Transport.listen (Transport.Unix_sock (Node.coord_path ~dir)) in
  (* Fork safety: no live worker domains may cross the fork. *)
  Adgc_util.Pool.shutdown_shared ();
  let nodes =
    phase "net.spawn" (fun () ->
        Array.init n (fun rank ->
            let pid =
              match opts.spawn with
              | Fork -> spawn_fork opts ~dir ~listener rank
              | Exec argv -> spawn_exec opts ~dir argv rank
            in
            {
              rank;
              pid;
              conn = None;
              last_seen = Unix.gettimeofday ();
              status = None;
              state = None;
              bye = false;
              dead = false;
              reaped = false;
            }))
  in
  let max_tick = ref 0 in
  let pump = { listener; nodes; pending = []; max_tick; started = ref false; closing = ref false } in
  let fail fmt =
    Format.kasprintf
      (fun msg ->
        kill_all nodes;
        (try Unix.close listener with Unix.Unix_error _ -> ());
        failwith ("coordinator: " ^ msg ^ " (logs in " ^ dir ^ ")"))
      fmt
  in
  (* Handshake: every node dials in and says Hello. *)
  phase "net.handshake" (fun () ->
      let deadline = Unix.gettimeofday () +. 20.0 in
      while Array.exists (fun nd -> nd.conn = None) nodes do
        if Unix.gettimeofday () > deadline then
          fail "nodes %s never reported in"
            (String.concat ","
               (Array.to_list nodes
               |> List.filter (fun nd -> nd.conn = None)
               |> List.map (fun nd -> string_of_int nd.rank)));
        if Array.exists (fun nd -> nd.dead) nodes then
          fail "node died during handshake";
        poll pump 0.05
      done);
  (* Ready gate: every node has its full peer mesh up. *)
  phase "net.ready" (fun () ->
      let deadline = Unix.gettimeofday () +. 20.0 in
      let last_req = ref 0.0 in
      let all_ready () =
        Array.for_all
          (fun nd ->
            match nd.status with Some s -> s.Envelope.st_ready | None -> false)
          nodes
      in
      while not (all_ready ()) do
        if Unix.gettimeofday () > deadline then fail "peer mesh never completed";
        if Array.exists (fun nd -> nd.dead) nodes then fail "node died before start";
        let now = Unix.gettimeofday () in
        if now -. !last_req > 0.1 then begin
          last_req := now;
          broadcast pump Envelope.Status_req
        end;
        poll pump 0.05
      done);
  (* Go. *)
  broadcast pump Envelope.Start;
  pump.started := true;
  let start_t = Unix.gettimeofday () in
  let faults = ref (List.map (fun f -> (f, false)) opts.faults) in
  let reclaimed_union () =
    Array.fold_left
      (fun acc nd ->
        match nd.status with
        | Some s ->
            List.fold_left (fun acc o -> Oid.Set.add o acc) acc s.Envelope.st_reclaimed
        | None -> acc)
      Oid.Set.empty nodes
  in
  let timed_out = ref false in
  phase "net.collect" (fun () ->
      let last_req = ref 0.0 in
      (* Not done until every scheduled fault has actually fired —
         otherwise a fast run completes before the fault it was meant
         to survive. *)
      let done_ () =
        List.for_all (fun (_, fired) -> fired) !faults
        && Oid.Set.subset required (reclaimed_union ())
      in
      while not (done_ ()) && not !timed_out do
        let now = Unix.gettimeofday () in
        if now -. start_t > opts.deadline_s then timed_out := true
        else begin
          faults :=
            List.map
              (fun (f, fired) ->
                let due after_s = (not fired) && now -. start_t >= after_s in
                match f with
                | Kill { rank; after_s } when due after_s ->
                    (try Unix.kill nodes.(rank).pid Sys.sigkill
                     with Unix.Unix_error _ -> ());
                    (f, true)
                | Drop { rank; peer; after_s } when due after_s ->
                    (match nodes.(rank).conn with
                    | Some c when Transport.alive c ->
                        Transport.send c (Envelope.Drop_peer peer)
                    | _ -> ());
                    (f, true)
                | (Kill _ | Drop _) -> (f, fired))
              !faults;
          if now -. !last_req > 0.1 then begin
            last_req := now;
            broadcast pump Envelope.Status_req
          end;
          poll pump 0.05
        end
      done);
  let wall_s = Unix.gettimeofday () -. start_t in
  (* Gather authoritative state from the survivors. *)
  phase "net.gather" (fun () ->
      broadcast pump Envelope.State_req;
      let deadline = Unix.gettimeofday () +. 10.0 in
      let missing () = List.filter (fun nd -> nd.state = None) (live pump) in
      while missing () <> [] && Unix.gettimeofday () < deadline do
        poll pump 0.05
      done);
  phase "net.shutdown" (fun () ->
      pump.closing := true;
      broadcast pump Envelope.Shutdown;
      let deadline = Unix.gettimeofday () +. 5.0 in
      while
        List.exists (fun nd -> not nd.bye) (live pump) && Unix.gettimeofday () < deadline
      do
        poll pump 0.05
      done;
      Array.iter
        (fun nd -> match nd.conn with Some c -> Transport.close c | None -> ())
        nodes;
      (try Unix.close listener with Unix.Unix_error _ -> ());
      (* Give children a moment to exit cleanly, then make sure. *)
      let deadline = Unix.gettimeofday () +. 3.0 in
      let rec wait_all () =
        reap_children ~mark_dead:false nodes;
        if Array.exists (fun nd -> not nd.reaped) nodes then
          if Unix.gettimeofday () > deadline then kill_all nodes
          else begin
            Unix.sleepf 0.02;
            wait_all ()
          end
      in
      wait_all ());
  let dead =
    Array.to_list nodes |> List.filter (fun nd -> nd.dead) |> List.map (fun nd -> nd.rank)
  in
  let states =
    Array.to_list nodes
    |> List.filter_map (fun nd -> nd.state)
    |> List.sort (fun (a : Gather.node_state) b -> compare a.Gather.rank b.Gather.rank)
  in
  let statuses =
    Array.to_list nodes
    |> List.filter (fun nd -> not nd.dead)
    |> List.filter_map (fun nd -> nd.status)
  in
  let verdict =
    Gather.check ~expected_live:expected.Scenario.live ~expected_garbage:expected.Scenario.garbage
      ~dead states
  in
  (* Merge node counters (summed across ranks, original names) plus
     the driver's own net.* series. *)
  List.iter
    (fun (ns : Gather.node_state) ->
      List.iter (fun (k, v) -> Stats.add stats k v) ns.Gather.counters)
    states;
  List.iter
    (fun (s : Envelope.status) ->
      Stats.add stats "net.wire.sent" s.Envelope.st_wire_sent;
      Stats.add stats "net.wire.received" s.Envelope.st_wire_received;
      Stats.add stats "net.wire.dup_ignored" s.Envelope.st_dup_ignored;
      Stats.add_l stats "net.wire.sent.rank"
        ~labels:[ ("rank", string_of_int s.Envelope.st_rank) ]
        s.Envelope.st_wire_sent)
    statuses;
  Stats.add stats "net.nodes" n;
  Stats.add stats "net.dead" (List.length dead);
  Stats.add stats "net.run.max_tick" !max_tick;
  Stats.record stats "net.run.wall_s" wall_s;
  Span.end_span obs ~time:(us ()) run_span;
  let result =
    {
      verdict;
      states;
      statuses;
      dead;
      required;
      wall_s;
      max_tick = !max_tick;
      timed_out = !timed_out;
      stats;
      obs;
      dir;
    }
  in
  if ok result && temp_dir && not opts.keep_dir then rm_rf dir;
  result
