open Adgc_algebra
module Sim = Adgc.Sim
module Config = Adgc.Config
module Cluster = Adgc_rt.Cluster
module Topology = Adgc_workload.Topology

type topology = Fig3 | Fig4 | Fig5 | Ring | Hybrid | Random | Star | Pairs | Lattice | Web | Chain

let topology_of_string = function
  | "fig3" -> Some Fig3
  | "fig4" -> Some Fig4
  | "fig5" -> Some Fig5
  | "ring" -> Some Ring
  | "hybrid" -> Some Hybrid
  | "random" -> Some Random
  | "star" -> Some Star
  | "pairs" -> Some Pairs
  | "lattice" -> Some Lattice
  | "web" -> Some Web
  | "chain" -> Some Chain
  | _ -> None

let topology_to_string = function
  | Fig3 -> "fig3"
  | Fig4 -> "fig4"
  | Fig5 -> "fig5"
  | Ring -> "ring"
  | Hybrid -> "hybrid"
  | Random -> "random"
  | Star -> "star"
  | Pairs -> "pairs"
  | Lattice -> "lattice"
  | Web -> "web"
  | Chain -> "chain"

let detector_of_string = function
  | "dcda" -> Some Config.Dcda
  | "backtrack" -> Some Config.Backtrack
  | "none" -> Some Config.No_detector
  | _ -> None

let detector_to_string = function
  | Config.Dcda -> "dcda"
  | Config.Backtrack -> "backtrack"
  | Config.No_detector -> "none"
  | Config.Hughes_gc -> "hughes"

let min_procs = function
  | Fig3 -> 4
  | Fig4 -> 6
  | Fig5 -> 5
  | Ring -> 2
  | Hybrid -> 3
  | Random -> 2
  | Star -> 4
  | Pairs -> 2
  | Lattice -> 3
  | Web -> 2
  | Chain -> 2

type t = {
  topology : topology;
  procs : int;
  seed : int;
  detector : Config.detector_kind;
  candidates : Config.candidates_kind;
  groups : int;
  objects : int;
  edges : int;
}

let make ?(topology = Ring) ?(procs = 4) ?(seed = 42) ?(detector = Config.Dcda)
    ?(candidates = Config.Scan_candidates) ?groups ?(objects = 100) ?(edges = 200) () =
  let groups = match groups with Some g -> g | None -> Config.groups_of_env () in
  { topology; procs; seed; detector; candidates; groups; objects; edges }

let n_procs t = Int.max t.procs (min_procs t.topology)

let build_topology t cluster =
  let seed = t.seed in
  match t.topology with
  | Fig3 ->
      let built = Topology.fig3 cluster in
      (* The figure's cycle is garbage once A's root goes. *)
      Adgc_rt.Mutator.remove_root cluster (Topology.obj built "A");
      built
  | Fig4 -> Topology.fig4 cluster
  | Fig5 ->
      let built = Topology.fig5 cluster in
      Adgc_rt.Mutator.remove_root cluster (Topology.obj built "A");
      built
  | Ring ->
      Topology.ring ~objs_per_proc:2 cluster
        ~procs:(List.init (Cluster.n_procs cluster) (fun i -> i))
  | Hybrid -> Topology.hybrid cluster
  | Random ->
      Topology.random cluster
        ~rng:(Adgc_util.Rng.create (seed + 1))
        ~objects:t.objects ~edges:t.edges ~remote_prob:0.35 ~root_prob:0.15
  | Star -> Topology.star_cycles ~arms:(Cluster.n_procs cluster - 1) cluster
  | Pairs -> Topology.pairs cluster
  | Lattice -> Topology.lattice cluster ~rows:3 ~cols:(Cluster.n_procs cluster)
  | Web -> Topology.web cluster ~rng:(Adgc_util.Rng.create (seed + 1))
  | Chain ->
      Topology.chain_into_ring cluster
        ~procs:(List.init (Cluster.n_procs cluster) (fun i -> i))

let build ?(telemetry = false) ?(engine = Config.Seq) t =
  let config = Config.quick ~seed:t.seed ~n_procs:(n_procs t) () in
  let config =
    { config with Config.detector = t.detector; candidates = t.candidates; engine; telemetry }
  in
  let config = Config.with_groups config t.groups in
  let sim = Sim.create ~config () in
  let built = build_topology t (Sim.cluster sim) in
  (sim, built)

type expected = { live : Oid.Set.t; garbage : Oid.Set.t }

let expected t =
  let sim, _built = build t in
  let cluster = Sim.cluster sim in
  let live = Cluster.globally_live cluster in
  let garbage = Cluster.garbage cluster in
  Sim.teardown sim;
  { live; garbage }

let garbage_excluding t ~dead =
  let sim, _built = build t in
  let cluster = Sim.cluster sim in
  let rt = Sim.rt sim in
  let garbage = Cluster.garbage cluster in
  (* Undirected adjacency within the garbage set: a garbage component
     is reclaimable only if every participant can still run the
     protocol, so any component touching a dead rank is dropped. *)
  let adj : Oid.t list Oid.Tbl.t = Oid.Tbl.create 256 in
  let edge a b =
    Oid.Tbl.replace adj a (b :: (try Oid.Tbl.find adj a with Not_found -> []));
    Oid.Tbl.replace adj b (a :: (try Oid.Tbl.find adj b with Not_found -> []))
  in
  Array.iter
    (fun (p : Adgc_rt.Process.t) ->
      Adgc_rt.Heap.fold p.Adgc_rt.Process.heap ~init:() ~f:(fun () (o : Adgc_rt.Heap.obj) ->
          if Oid.Set.mem o.oid garbage then
            Array.iter
              (function
                | Some r when Oid.Set.mem r garbage -> edge o.oid r
                | Some _ | None -> ())
              o.fields))
    rt.Adgc_rt.Runtime.procs;
  let dead_rank r = List.mem (Proc_id.to_int (Oid.owner r)) dead in
  let excluded = ref Oid.Set.empty in
  let queue = Queue.create () in
  Oid.Set.iter (fun o -> if dead_rank o then Queue.add o queue) garbage;
  while not (Queue.is_empty queue) do
    let o = Queue.pop queue in
    if not (Oid.Set.mem o !excluded) then begin
      excluded := Oid.Set.add o !excluded;
      List.iter (fun n -> Queue.add n queue) (try Oid.Tbl.find adj o with Not_found -> [])
    end
  done;
  Sim.teardown sim;
  Oid.Set.diff garbage !excluded
