(** One OS process of the socket-backed driver.

    A node builds the {e whole} cluster from the shared
    {!Scenario.t} spec but is authoritative for exactly one rank: only
    that rank's duty timers run here, and only envelopes addressed to
    it are delivered here.  Peer ranks' replica state stays frozen at
    bootstrap — it exists so {!Adgc_rt.Dispatch} finds registered
    behaviours and ids without a remote lookup.

    Remote-bound envelopes are intercepted by the
    {!Adgc_rt.Network.set_transport} hook and shipped as
    {!Envelope.Net_msg} frames; self-sends keep the simulated timed
    path.  Wall clock drives simulated time: tick [k] is
    [k * tick_us] microseconds after the coordinator's [Start], and
    the node advances its scheduler with [Cluster.run_until] to match
    — so periodic machinery (duty timers, export retries, batch
    flushes) runs exactly as in the one-process simulator.

    Peer mesh: rank [i] dials every rank [j < i] and accepts from
    ranks [> i]; the dialer speaks first ([Hello]).  A broken link is
    redialed with capped exponential backoff by whichever side is the
    dialer; on reconnect the last {!val-ring} outbound envelopes are
    replayed — duplicates are refused by the receiver's
    [Process.note_delivery], which is precisely what the fault tests
    assert. *)

val sock_path : dir:string -> int -> string
(** The Unix-domain socket rank [i] listens on. *)

val coord_path : dir:string -> string
(** Where the coordinator listens; every node dials it. *)

val log_path : dir:string -> int -> string

val ring : int
(** Outbound replay window per peer (envelopes). *)

type config = {
  rank : int;
  scenario : Scenario.t;
  dir : string;  (** sockets + logs live here *)
  tick_us : int;  (** wall microseconds per simulated tick *)
  max_ticks : int;  (** refuse to simulate past this, [Start]-relative *)
}

val main : config -> unit
(** Run until the coordinator's [Shutdown] (or [max_ticks]).  Returns
    normally; forked callers are expected to [Unix._exit] right
    after.  Raises on setup failure (bad scenario, unreachable
    coordinator). *)
