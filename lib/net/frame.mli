(** Length-prefixed framing for the socket transport.

    A frame is a 4-byte big-endian unsigned length followed by exactly
    that many payload bytes (one {!Adgc_serial.Net_codec}-encoded
    envelope).  The decoder is incremental: feed it whatever chunk
    sizes [read()] happens to return — including a length prefix split
    across two reads — and pull complete frames out as they become
    available.

    Corrupt input (a length of zero, or one beyond {!max_frame})
    raises {!Adgc_serial.Wire.Malformed} and nothing else: a framing
    error is always distinguishable from a crash, and the transport
    answers it by resetting the connection. *)

val max_frame : int
(** Largest accepted payload (16 MiB) — far beyond any protocol
    envelope; a prefix claiming more is malformed framing, not a big
    message. *)

val encode : string -> string
(** The payload with its 4-byte length prefix.
    @raise Adgc_serial.Wire.Malformed when the payload is empty or
    exceeds {!max_frame} (a frame that could never be decoded must not
    be sent). *)

type decoder

val decoder : unit -> decoder

val feed : decoder -> string -> unit
(** Append raw bytes as they arrived from the socket. *)

val feed_sub : decoder -> Bytes.t -> int -> int -> unit
(** [feed_sub d buf off len] — the [read()]-buffer form of {!feed}. *)

val next : decoder -> string option
(** The next complete frame payload, or [None] until more bytes
    arrive.  Call repeatedly — one [feed] can complete several frames.
    @raise Adgc_serial.Wire.Malformed on a corrupt length prefix; the
    decoder is then poisoned and every later call re-raises. *)

val buffered : decoder -> int
(** Bytes held waiting for a complete frame (diagnostics). *)
