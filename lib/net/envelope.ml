module Sval = Adgc_serial.Sval
module Msg = Adgc_rt.Msg
open Adgc_algebra

type status = {
  st_rank : int;
  st_tick : int;
  st_ready : bool;
  st_reclaimed : Oid.t list;
  st_wire_sent : int;
  st_wire_received : int;
  st_dup_ignored : int;
}

type t =
  | Hello of { rank : int; procs : int; seed : int }
  | Start
  | Heartbeat of { tick : int }
  | Net_msg of Msg.t
  | Status_req
  | Status of status
  | State_req
  | State of Gather.node_state
  | Drop_peer of int
  | Shutdown
  | Bye

let kind = function
  | Hello _ -> "hello"
  | Start -> "start"
  | Heartbeat _ -> "heartbeat"
  | Net_msg _ -> "net_msg"
  | Status_req -> "status_req"
  | Status _ -> "status"
  | State_req -> "state_req"
  | State _ -> "state"
  | Drop_peer _ -> "drop_peer"
  | Shutdown -> "shutdown"
  | Bye -> "bye"

let oid_sval (o : Oid.t) =
  Sval.List [ Sval.Int (Proc_id.to_int (Oid.owner o)); Sval.Int o.Oid.serial ]

let oid_of_sval = function
  | Sval.List [ Sval.Int owner; Sval.Int serial ] when owner >= 0 ->
      Some (Oid.make ~owner:(Proc_id.of_int owner) ~serial)
  | _ -> None

let all_of f l =
  List.fold_right
    (fun x acc -> match (f x, acc) with Some v, Some vs -> Some (v :: vs) | _ -> None)
    l (Some [])

let to_sval = function
  | Hello { rank; procs; seed } ->
      Sval.Record
        ("hello", [ ("rank", Sval.Int rank); ("procs", Sval.Int procs); ("seed", Sval.Int seed) ])
  | Start -> Sval.Record ("start", [])
  | Heartbeat { tick } -> Sval.Record ("heartbeat", [ ("tick", Sval.Int tick) ])
  | Net_msg m -> Sval.Record ("net_msg", [ ("msg", Msg.to_sval m) ])
  | Status_req -> Sval.Record ("status_req", [])
  | Status s ->
      Sval.Record
        ( "status",
          [
            ("rank", Sval.Int s.st_rank);
            ("tick", Sval.Int s.st_tick);
            ("ready", Sval.Bool s.st_ready);
            ("reclaimed", Sval.List (List.map oid_sval s.st_reclaimed));
            ("wire_sent", Sval.Int s.st_wire_sent);
            ("wire_received", Sval.Int s.st_wire_received);
            ("dup_ignored", Sval.Int s.st_dup_ignored);
          ] )
  | State_req -> Sval.Record ("state_req", [])
  | State ns -> Sval.Record ("state", [ ("node", Gather.to_sval ns) ])
  | Drop_peer rank -> Sval.Record ("drop_peer", [ ("rank", Sval.Int rank) ])
  | Shutdown -> Sval.Record ("shutdown", [])
  | Bye -> Sval.Record ("bye", [])

let of_sval = function
  | Sval.Record ("hello", [ ("rank", Sval.Int rank); ("procs", Sval.Int procs); ("seed", Sval.Int seed) ])
    ->
      Some (Hello { rank; procs; seed })
  | Sval.Record ("start", []) -> Some Start
  | Sval.Record ("heartbeat", [ ("tick", Sval.Int tick) ]) -> Some (Heartbeat { tick })
  | Sval.Record ("net_msg", [ ("msg", m) ]) -> Option.map (fun m -> Net_msg m) (Msg.of_sval m)
  | Sval.Record ("status_req", []) -> Some Status_req
  | Sval.Record
      ( "status",
        [
          ("rank", Sval.Int st_rank);
          ("tick", Sval.Int st_tick);
          ("ready", Sval.Bool st_ready);
          ("reclaimed", Sval.List reclaimed);
          ("wire_sent", Sval.Int st_wire_sent);
          ("wire_received", Sval.Int st_wire_received);
          ("dup_ignored", Sval.Int st_dup_ignored);
        ] ) ->
      Option.map
        (fun st_reclaimed ->
          Status
            {
              st_rank;
              st_tick;
              st_ready;
              st_reclaimed;
              st_wire_sent;
              st_wire_received;
              st_dup_ignored;
            })
        (all_of oid_of_sval reclaimed)
  | Sval.Record ("state_req", []) -> Some State_req
  | Sval.Record ("state", [ ("node", ns) ]) -> Option.map (fun ns -> State ns) (Gather.of_sval ns)
  | Sval.Record ("drop_peer", [ ("rank", Sval.Int rank) ]) -> Some (Drop_peer rank)
  | Sval.Record ("shutdown", []) -> Some Shutdown
  | Sval.Record ("bye", []) -> Some Bye
  | _ -> None
