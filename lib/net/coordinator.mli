(** The driver's control process: spawn the nodes, gate the run, judge
    the outcome.

    The coordinator builds a throwaway replica of the scenario to
    compute the expected live/garbage sets, spawns one OS process per
    rank, waits for every node to report all peer links up, broadcasts
    [Start], then polls [Status] until the completion target (every
    expected-garbage object not excluded by a crash) has been
    reclaimed — or the deadline passes.  It then gathers each
    survivor's authoritative state and runs the {!Gather.check} oracle
    over the union.

    Failure handling is crash-stop: a node is declared dead on child
    exit ([waitpid]), connection EOF, or heartbeat silence; its rank's
    garbage stops being required (see {!Scenario.garbage_excluding})
    and the run continues with the survivors. *)

type spawn =
  | Fork  (** [Unix.fork] + {!Node.main} in the child — any binary (tests, bench) *)
  | Exec of string list
      (** spawn [argv @ per-node flags] via [Unix.create_process]; the
          command must implement the [serve] contract
          ([adgc_sim serve] does) *)

type fault =
  | Kill of { rank : int; after_s : float }  (** SIGKILL that node mid-run *)
  | Drop of { rank : int; peer : int; after_s : float }
      (** tell [rank] to sever its link to [peer] — reconnect + replay
          machinery takes over *)

type options = {
  scenario : Scenario.t;
  dir : string option;  (** sockets + logs; fresh temp dir when [None] *)
  tick_us : int;
  deadline_s : float;  (** wall-clock budget after [Start] *)
  faults : fault list;
  spawn : spawn;
  keep_dir : bool;  (** keep the temp dir (logs) after a clean run *)
}

val options :
  ?dir:string ->
  ?tick_us:int ->
  ?deadline_s:float ->
  ?faults:fault list ->
  ?spawn:spawn ->
  ?keep_dir:bool ->
  Scenario.t ->
  options
(** Defaults: temp dir, 100 us/tick, 60 s deadline, no faults,
    [Fork]. *)

type result = {
  verdict : Gather.verdict;
  states : Gather.node_state list;  (** survivors only, rank order *)
  statuses : Envelope.status list;  (** last status per surviving rank *)
  dead : int list;
  required : Adgc_algebra.Oid.Set.t;  (** the completion target used *)
  wall_s : float;  (** [Start] to completion/deadline *)
  max_tick : int;
  timed_out : bool;
  stats : Adgc_util.Stats.t;  (** merged node counters + net.* *)
  obs : Adgc_obs.Span.t;  (** wall-clock phase spans, microseconds *)
  dir : string;
}

val ok : result -> bool
(** Oracle clean, nothing required left unreclaimed, no timeout. *)

val pp_result : Format.formatter -> result -> unit

val run : options -> result
(** Raises [Failure] on setup errors (nodes that never report in);
    protocol-level failures land in the {!result} instead. *)
