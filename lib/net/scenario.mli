(** Deterministic workload specification shared by every driver.

    The socket driver never ships heap graphs over the wire: the
    coordinator and each node build the {e same} initial cluster state
    from this small spec (topology family, process count, seed,
    detector), relying on the builders' determinism — same spec, same
    oids, same edges, same roots, byte-for-byte.  The coordinator's
    replica therefore doubles as the ground-truth oracle input
    ({!expected}), and the conformance suite feeds the very same spec
    to the in-memory simulator.

    The workload is static once built: topologies use bootstrap wiring
    (no messages), and the socket driver runs no mutator churn, so
    global reachability never changes during a run. *)

open Adgc_algebra

type topology = Fig3 | Fig4 | Fig5 | Ring | Hybrid | Random | Star | Pairs | Lattice | Web | Chain

val topology_of_string : string -> topology option

val topology_to_string : topology -> string

val min_procs : topology -> int

val detector_of_string : string -> Adgc.Config.detector_kind option
(** ["dcda"], ["backtrack"], ["none"] — the hughes baseline has no
    per-rank duty decomposition and is not driveable over sockets. *)

val detector_to_string : Adgc.Config.detector_kind -> string

type t = {
  topology : topology;
  procs : int;  (** raised to {!min_procs} at build time *)
  seed : int;
  detector : Adgc.Config.detector_kind;
  candidates : Adgc.Config.candidates_kind;
      (** DCDA candidate source; shipped to every node (the
          coordinator passes [--candidates]) so all ranks seed their
          scans the same way *)
  groups : int;
      (** hierarchical group size ([0] = flat); part of the spec so
          the coordinator ships it to every node ([--groups]) and all
          replicas route identically *)
  objects : int;  (** [Random] only *)
  edges : int;  (** [Random] only *)
}

val make :
  ?topology:topology ->
  ?procs:int ->
  ?seed:int ->
  ?detector:Adgc.Config.detector_kind ->
  ?candidates:Adgc.Config.candidates_kind ->
  ?groups:int ->
  ?objects:int ->
  ?edges:int ->
  unit ->
  t
(** Defaults: [Ring], 4 processes, seed 42, DCDA, full-scan
    candidates, groups from [ADGC_GROUPS] (flat when unset), 100
    objects / 200 edges. *)

val n_procs : t -> int
(** [max procs (min_procs topology)] — what [build] actually creates. *)

val build :
  ?telemetry:bool -> ?engine:Adgc.Config.engine_kind -> t -> Adgc.Sim.t * Adgc_workload.Topology.built
(** Build the simulator (quick periods, chosen detector) and the
    topology, applying each figure's garbage-making root removal.
    [engine] defaults to [Seq] — node processes must stay
    single-domain (they fork). *)

type expected = { live : Oid.Set.t; garbage : Oid.Set.t }

val expected : t -> expected
(** Ground truth from a throwaway replica: build, trace, tear down. *)

val garbage_excluding : t -> dead:int list -> Oid.Set.t
(** The garbage a run with those ranks crashed can still be expected
    to reclaim: [expected.garbage] minus every undirected garbage
    component containing an object owned by a dead rank — a cycle
    through a crashed process is undetectable without
    failure-detection leases, so it is floating, not a liveness
    failure. *)
