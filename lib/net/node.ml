module Config = Adgc.Config
module Sim = Adgc.Sim
module Kernel = Adgc.Kernel
module Cluster = Adgc_rt.Cluster
module Runtime = Adgc_rt.Runtime
module Process = Adgc_rt.Process
module Dispatch = Adgc_rt.Dispatch
module Network = Adgc_rt.Network
module Scheduler = Adgc_rt.Scheduler
module Reflist = Adgc_rt.Reflist
module Msg = Adgc_rt.Msg
module Stats = Adgc_util.Stats
open Adgc_algebra

let sock_path ~dir rank = Filename.concat dir (Printf.sprintf "node-%d.sock" rank)

let coord_path ~dir = Filename.concat dir "coord.sock"

let log_path ~dir rank = Filename.concat dir (Printf.sprintf "node-%d.log" rank)

let ring = 64

type config = {
  rank : int;
  scenario : Scenario.t;
  dir : string;
  tick_us : int;
  max_ticks : int;
}

type peer = {
  prank : int;
  mutable conn : Transport.conn option;
  mutable backlog : Msg.t list;  (* replay window, newest first *)
  mutable backlog_len : int;
  mutable next_dial : float;
  mutable dial_delay : float;
}

type t = {
  cfg : config;
  sim : Sim.t;
  rt : Runtime.t;
  cluster : Cluster.t;
  log : out_channel;
  listener : Unix.file_descr;
  mutable coord : Transport.conn;
  peers : peer option array;  (* by rank; [None] at our own slot *)
  mutable pending_conns : (Transport.conn * float) list;  (* accepted, awaiting Hello *)
  mutable epoch : float option;
  mutable quit : bool;
  reclaimed : Oid.t list ref;  (* newest first *)
  mutable wire_sent : int;
  mutable wire_received : int;
  mutable last_heartbeat : float;
}

let logf t fmt =
  Printf.ksprintf
    (fun s ->
      Printf.fprintf t.log "[%.3f n%d] %s\n" (Unix.gettimeofday ()) t.cfg.rank s;
      flush t.log)
    fmt

(* ------------------------------------------------------------------ *)
(* Duties: the same four kernel transitions the simulator fires, with
   the same phase stagger (Sim.start / Cluster.start_gc), installed
   for this node's own rank only. *)

let install_duties sim rank =
  let cluster = Sim.cluster sim in
  let rt = Sim.rt sim in
  let sched = Cluster.sched cluster in
  let n = Cluster.n_procs cluster in
  let i = rank in
  let p = Cluster.proc cluster i in
  let rcfg = rt.Runtime.config in
  let ctx = Sim.kernel_ctx sim in
  let policy = (Sim.config sim).Config.policy in
  let snap = policy.Adgc_dcda.Policy.snapshot_period in
  let scan = policy.Adgc_dcda.Policy.scan_period in
  let every ~phase ~period f = ignore (Scheduler.every sched ~phase ~period f : Scheduler.recurring) in
  every ~phase:(1 + (i * snap / n)) ~period:snap (fun () ->
      if p.Process.alive then Kernel.run_duty ctx (Kernel.Snapshot i));
  every ~phase:(1 + (i * scan / n)) ~period:scan (fun () ->
      if p.Process.alive then Kernel.run_duty ctx (Kernel.Scan i));
  every
    ~phase:(1 + (i * rcfg.Runtime.lgc_period / n))
    ~period:rcfg.Runtime.lgc_period
    (fun () -> if p.Process.alive then Kernel.run_duty ctx (Kernel.Lgc i));
  every
    ~phase:(1 + (i * rcfg.Runtime.new_set_period / n))
    ~period:rcfg.Runtime.new_set_period
    (fun () ->
      if p.Process.alive then begin
        Kernel.run_duty ctx (Kernel.Send_sets i);
        Reflist.probe_idle_scions rt p ~threshold:(3 * rcfg.Runtime.new_set_period);
        Reflist.reap_dead_holders rt p
      end);
  let audit = policy.Adgc_dcda.Policy.candidate_audit_period in
  every ~phase:(1 + (i * audit / n)) ~period:audit (fun () ->
      if p.Process.alive then Kernel.run_duty ctx (Kernel.Maintain_candidates i))

(* ------------------------------------------------------------------ *)
(* Peer links. *)

let peer_exn t rank =
  match t.peers.(rank) with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "node %d: no peer slot for rank %d" t.cfg.rank rank)

let send_peer t peer env =
  match peer.conn with
  | Some c when Transport.alive c ->
      Transport.send c env;
      t.wire_sent <- t.wire_sent + 1
  | Some _ | None -> ()

(* Replay the backlog oldest-first on a fresh connection; already
   delivered envelopes carry their original [Msg.seq] and are refused
   by the receiver's [Process.note_delivery]. *)
let replay_backlog t peer =
  let msgs = List.rev peer.backlog in
  if msgs <> [] then logf t "replaying %d envelopes to rank %d" (List.length msgs) peer.prank;
  List.iter (fun m -> send_peer t peer (Envelope.Net_msg m)) msgs

let attach_peer t peer conn =
  (match peer.conn with Some old -> Transport.close old | None -> ());
  peer.conn <- Some conn;
  peer.dial_delay <- 0.05;
  logf t "link to rank %d up" peer.prank;
  replay_backlog t peer

let forward t dst msg =
  let peer = peer_exn t dst in
  peer.backlog <- msg :: peer.backlog;
  if peer.backlog_len >= ring then
    peer.backlog <- List.filteri (fun i _ -> i < ring - 1) peer.backlog
  else peer.backlog_len <- peer.backlog_len + 1;
  send_peer t peer (Envelope.Net_msg msg)

let hello t = Envelope.Hello { rank = t.cfg.rank; procs = Scenario.n_procs t.cfg.scenario; seed = t.cfg.scenario.Scenario.seed }

let redial_due t now =
  Array.iter
    (function
      | Some peer
        when peer.prank < t.cfg.rank && peer.conn = None && now >= peer.next_dial && not t.quit
        -> (
          match
            Transport.dial ~attempts:1 (Transport.Unix_sock (sock_path ~dir:t.cfg.dir peer.prank))
          with
          | conn ->
              Transport.send conn (hello t);
              attach_peer t peer conn
          | exception Failure _ ->
              peer.dial_delay <- Float.min 1.0 (peer.dial_delay *. 1.5);
              peer.next_dial <- now +. peer.dial_delay)
      | Some _ | None -> ())
    t.peers

(* ------------------------------------------------------------------ *)
(* Envelope handling. *)

let status t =
  let ready =
    Array.for_all
      (function
        | Some peer -> ( match peer.conn with Some c -> Transport.alive c | None -> false)
        | None -> true)
      t.peers
  in
  Envelope.Status
    {
      st_rank = t.cfg.rank;
      st_tick = Cluster.now t.cluster;
      st_ready = ready;
      st_reclaimed = List.rev !(t.reclaimed);
      st_wire_sent = t.wire_sent;
      st_wire_received = t.wire_received;
      st_dup_ignored = Stats.get t.rt.Runtime.stats "net.msg.duplicate_ignored";
    }

let handle_coord t env =
  match env with
  | Envelope.Start ->
      if t.epoch = None then begin
        t.epoch <- Some (Unix.gettimeofday ());
        logf t "start (tick_us=%d)" t.cfg.tick_us
      end
  | Envelope.Status_req -> Transport.send t.coord (status t)
  | Envelope.State_req ->
      let ns =
        Gather.capture ~rt:t.rt ~rank:t.cfg.rank ~tick:(Cluster.now t.cluster)
          ~reclaimed:(List.rev !(t.reclaimed))
      in
      Transport.send t.coord (Envelope.State ns)
  | Envelope.Drop_peer rank ->
      logf t "drop_peer %d" rank;
      (match t.peers.(rank) with
      | Some peer -> (
          match peer.conn with
          | Some c ->
              Transport.close c;
              peer.conn <- None;
              peer.next_dial <- Unix.gettimeofday () +. peer.dial_delay
          | None -> ())
      | None -> ())
  | Envelope.Shutdown ->
      logf t "shutdown at tick %d" (Cluster.now t.cluster);
      Transport.send t.coord Envelope.Bye;
      t.quit <- true
  | Envelope.Net_msg m -> Dispatch.deliver t.rt m
  | Envelope.Hello _ | Envelope.Heartbeat _ | Envelope.Status _ | Envelope.State _ | Envelope.Bye
    ->
      ()

let handle_peer t env =
  match env with
  | Envelope.Net_msg m ->
      t.wire_received <- t.wire_received + 1;
      Dispatch.deliver t.rt m
  | Envelope.Hello _ | Envelope.Heartbeat _ -> ()
  | Envelope.Start | Envelope.Status_req | Envelope.Status _ | Envelope.State_req
  | Envelope.State _ | Envelope.Drop_peer _ | Envelope.Shutdown | Envelope.Bye ->
      ()

let handle_handshake t conn env =
  match env with
  | Envelope.Hello { rank; procs; seed }
    when rank >= 0
         && rank < Array.length t.peers
         && rank <> t.cfg.rank
         && procs = Scenario.n_procs t.cfg.scenario
         && seed = t.cfg.scenario.Scenario.seed ->
      attach_peer t (peer_exn t rank) conn;
      true
  | _ ->
      logf t "handshake rejected (%s)" (Envelope.kind env);
      Transport.close conn;
      false

(* ------------------------------------------------------------------ *)
(* The event loop. *)

let live_conns t =
  let acc = ref [] in
  (match t.coord with c when Transport.alive c -> acc := c :: !acc | _ -> ());
  Array.iter
    (function
      | Some peer -> (
          match peer.conn with Some c when Transport.alive c -> acc := c :: !acc | _ -> ())
      | None -> ())
    t.peers;
  List.iter (fun (c, _) -> if Transport.alive c then acc := c :: !acc) t.pending_conns;
  !acc

let reap t =
  let now = Unix.gettimeofday () in
  Array.iter
    (function
      | Some peer -> (
          match peer.conn with
          | Some c when not (Transport.alive c) ->
              logf t "link to rank %d down" peer.prank;
              peer.conn <- None;
              peer.next_dial <- now +. peer.dial_delay
          | Some _ | None -> ())
      | None -> ())
    t.peers;
  t.pending_conns <-
    List.filter
      (fun (c, since) ->
        if not (Transport.alive c) then false
        else if now -. since > 5.0 then (Transport.close c; false)
        else true)
      t.pending_conns;
  if not (Transport.alive t.coord) && not t.quit then begin
    logf t "coordinator link lost; exiting";
    t.quit <- true
  end

let advance t =
  match t.epoch with
  | None -> ()
  | Some e ->
      let now = Unix.gettimeofday () in
      let target = int_of_float ((now -. e) *. 1e6 /. float_of_int t.cfg.tick_us) in
      let target = Int.min target t.cfg.max_ticks in
      let cur = Cluster.now t.cluster in
      (* Bound catch-up so a stall never turns into one giant burst. *)
      if target > cur then Cluster.run_until t.cluster ~time:(Int.min target (cur + 10_000))

let step t =
  let now = Unix.gettimeofday () in
  let conns = live_conns t in
  let reads = t.listener :: List.map Transport.fd conns in
  let writes = List.filter_map (fun c -> if Transport.want_write c then Some (Transport.fd c) else None) conns in
  let timeout =
    match t.epoch with
    | None -> 0.05
    | Some e ->
        let next = e +. (float_of_int ((Cluster.now t.cluster + 1) * t.cfg.tick_us) /. 1e6) in
        Float.max 0.0 (Float.min 0.05 (next -. now))
  in
  let readable, writable, _ =
    try Unix.select reads writes [] timeout with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
  in
  if List.mem t.listener readable then begin
    let continue = ref true in
    while !continue do
      match Transport.accept t.listener with
      | Some conn -> t.pending_conns <- (conn, now) :: t.pending_conns
      | None -> continue := false
    done
  end;
  (* Handshakes first so a freshly attached peer's traffic lands on
     the attached connection below. *)
  t.pending_conns <-
    List.filter
      (fun (conn, _) ->
        if List.mem (Transport.fd conn) readable then
          match Transport.recv conn with
          | [] -> Transport.alive conn
          | env :: rest ->
              if handle_handshake t conn env then begin
                List.iter (handle_peer t) rest;
                false
              end
              else false
        else Transport.alive conn)
      t.pending_conns;
  if Transport.alive t.coord && List.mem (Transport.fd t.coord) readable then
    List.iter (handle_coord t) (Transport.recv t.coord);
  Array.iter
    (function
      | Some peer -> (
          match peer.conn with
          | Some c when Transport.alive c && List.mem (Transport.fd c) readable ->
              List.iter (handle_peer t) (Transport.recv c)
          | Some _ | None -> ())
      | None -> ())
    t.peers;
  List.iter (fun c -> if List.mem (Transport.fd c) writable then Transport.flush c) conns;
  reap t;
  redial_due t (Unix.gettimeofday ());
  if not t.quit then advance t;
  let now = Unix.gettimeofday () in
  if Transport.alive t.coord && now -. t.last_heartbeat > 0.2 then begin
    t.last_heartbeat <- now;
    Transport.send t.coord (Envelope.Heartbeat { tick = Cluster.now t.cluster })
  end

(* ------------------------------------------------------------------ *)

let main cfg =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let n = Scenario.n_procs cfg.scenario in
  if cfg.rank < 0 || cfg.rank >= n then
    invalid_arg (Printf.sprintf "node rank %d out of range for %d processes" cfg.rank n);
  if cfg.scenario.Scenario.detector = Config.Hughes_gc then
    invalid_arg "socket driver does not support the hughes baseline";
  let log = open_out (log_path ~dir:cfg.dir cfg.rank) in
  let sim, _built = Scenario.build ~engine:Config.Seq cfg.scenario in
  let rt = Sim.rt sim in
  let cluster = Sim.cluster sim in
  install_duties sim cfg.rank;
  let reclaimed = ref [] in
  rt.Runtime.on_reclaim <-
    Some
      (fun pid oid ->
        if Proc_id.to_int pid = cfg.rank then reclaimed := oid :: !reclaimed);
  let listener = Transport.listen (Transport.Unix_sock (sock_path ~dir:cfg.dir cfg.rank)) in
  let coord = Transport.dial (Transport.Unix_sock (coord_path ~dir:cfg.dir)) in
  let t =
    {
      cfg;
      sim;
      rt;
      cluster;
      log;
      listener;
      coord;
      peers = Array.init n (fun r -> if r = cfg.rank then None else Some {
          prank = r;
          conn = None;
          backlog = [];
          backlog_len = 0;
          next_dial = 0.0;
          dial_delay = 0.05;
        });
      pending_conns = [];
      epoch = None;
      quit = false;
      reclaimed;
      wire_sent = 0;
      wire_received = 0;
      last_heartbeat = 0.0;
    }
  in
  logf t "up: %s procs=%d seed=%d detector=%s"
    (Scenario.topology_to_string cfg.scenario.Scenario.topology)
    n cfg.scenario.Scenario.seed
    (match cfg.scenario.Scenario.detector with
    | Config.Dcda -> "dcda"
    | Config.Backtrack -> "backtrack"
    | Config.Hughes_gc -> "hughes"
    | Config.No_detector -> "none");
  Transport.send coord (hello t);
  (* Remote-bound envelopes leave through the socket; self-sends keep
     the simulated timed path. *)
  Network.set_transport (Sim.net sim) (fun (msg : Msg.t) ->
      let dst = Proc_id.to_int msg.Msg.dst in
      if dst = cfg.rank then false
      else begin
        forward t dst msg;
        true
      end);
  (* Dial every lower rank; they are already listening (everyone
     listens before dialing anyone). *)
  for r = 0 to cfg.rank - 1 do
    let conn = Transport.dial (Transport.Unix_sock (sock_path ~dir:cfg.dir r)) in
    Transport.send conn (hello t);
    attach_peer t (peer_exn t r) conn
  done;
  (try
     while not t.quit do
       step t
     done
   with exn -> logf t "fatal: %s" (Printexc.to_string exn));
  (* Best-effort drain of the goodbye. *)
  let deadline = Unix.gettimeofday () +. 1.0 in
  while Transport.want_write t.coord && Unix.gettimeofday () < deadline do
    ignore (Unix.select [] [ Transport.fd t.coord ] [] 0.05);
    Transport.flush t.coord
  done;
  List.iter Transport.close (live_conns t);
  (try Unix.close t.listener with Unix.Unix_error _ -> ());
  Sim.teardown t.sim;
  logf t "down";
  close_out t.log
