(** Socket plumbing for the multi-process driver.

    One {!conn} per peer: a nonblocking socket with a per-connection
    codec ({!Adgc_serial.Net_codec.Stream} interning in both
    directions), an incremental {!Frame} decoder on the read side and
    a byte backlog on the write side.  Everything here is
    single-threaded and [Unix.select]-driven — calls never block.

    Failure model: any read/write error, EOF, or malformed frame marks
    the connection {e dead}; it is never half-usable.  Reconnecting
    means a fresh [conn] — interning tables are connection-scoped, so
    codec state can never straddle a reconnect. *)

type addr = Unix_sock of string | Tcp of string * int

val addr_of_string : string -> addr
(** ["host:port"] is TCP, anything else a Unix-domain socket path. *)

val pp_addr : Format.formatter -> addr -> unit

(** {1 Connections} *)

type conn

val of_fd : Unix.file_descr -> conn
(** Adopt an accepted or connected socket: set it nonblocking and
    attach fresh codec state. *)

val fd : conn -> Unix.file_descr

val alive : conn -> bool

val close : conn -> unit
(** Idempotent; marks the connection dead. *)

val send : conn -> Envelope.t -> unit
(** Encode, frame, append to the write backlog and try to flush.  On a
    dead connection this is a silent no-op — the caller notices via
    {!alive} at its next poll. *)

val flush : conn -> unit
(** Push backlog bytes until the kernel pushes back ([EWOULDBLOCK]) or
    the backlog drains.  Write errors kill the connection. *)

val want_write : conn -> bool
(** Backlog non-empty — include the fd in the select write set. *)

val recv : conn -> Envelope.t list
(** Drain readable bytes and return every complete envelope, in order.
    Returns [[]] when nothing is pending.  EOF, a malformed frame or
    an undecodable envelope kills the connection (frames after the
    damage are unrecoverable — interning is stateful). *)

val sent_frames : conn -> int

val received_frames : conn -> int

(** {1 Endpoints} *)

val listen : addr -> Unix.file_descr
(** Bind + listen, nonblocking.  Unix-domain paths are unlinked first;
    TCP sockets set [SO_REUSEADDR]. *)

val accept : Unix.file_descr -> conn option
(** Nonblocking accept; [None] when no connection is pending. *)

val dial : ?attempts:int -> ?delay:float -> addr -> conn
(** Connect with retry: [attempts] tries (default 40) spaced by
    [delay] seconds (default 0.05) growing 1.5x up to 0.5s — enough
    patience for a coordinator that is still forking its nodes.
    Raises [Failure] once exhausted. *)
