module Wire = Adgc_serial.Wire

let max_frame = 16 * 1024 * 1024

let header_len = 4

let encode payload =
  let n = String.length payload in
  if n = 0 || n > max_frame then
    raise (Wire.Malformed { offset = 0; what = Printf.sprintf "unsendable frame length %d" n });
  let b = Bytes.create (header_len + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b header_len n;
  Bytes.unsafe_to_string b

(* The pending buffer compacts lazily: [start] walks forward as frames
   complete and the live region slides back to offset 0 only when the
   dead prefix outgrows the live remainder, so a fast stream of small
   frames never memmoves per frame. *)
type decoder = {
  mutable buf : Bytes.t;
  mutable start : int;  (** first unconsumed byte *)
  mutable len : int;  (** bytes valid from [start] *)
  mutable poisoned : string option;  (** sticky malformed-framing error *)
  mutable consumed : int;  (** total bytes consumed (error offsets) *)
}

let decoder () =
  { buf = Bytes.create 4096; start = 0; len = 0; poisoned = None; consumed = 0 }

let buffered d = d.len

let grow d need =
  let live = d.len in
  if d.start > 0 && Bytes.length d.buf - d.start < need + live then begin
    Bytes.blit d.buf d.start d.buf 0 live;
    d.start <- 0
  end;
  if Bytes.length d.buf - d.start - live < need then begin
    let cap = ref (Bytes.length d.buf * 2) in
    while !cap - live < need do
      cap := !cap * 2
    done;
    let bigger = Bytes.create !cap in
    Bytes.blit d.buf d.start bigger 0 live;
    d.buf <- bigger;
    d.start <- 0
  end

let feed_sub d src off len =
  if len < 0 || off < 0 || off + len > Bytes.length src then
    invalid_arg "Frame.feed_sub: bad range";
  grow d len;
  Bytes.blit src off d.buf (d.start + d.len) len;
  d.len <- d.len + len

let feed d s = feed_sub d (Bytes.unsafe_of_string s) 0 (String.length s)

let poison d what =
  d.poisoned <- Some what;
  raise (Wire.Malformed { offset = d.consumed; what })

let next d =
  (match d.poisoned with
  | Some what -> raise (Wire.Malformed { offset = d.consumed; what })
  | None -> ());
  if d.len < header_len then None
  else begin
    let n = Int32.to_int (Bytes.get_int32_be d.buf d.start) in
    if n <= 0 || n > max_frame then
      poison d (Printf.sprintf "implausible frame length %d" n)
    else if d.len < header_len + n then None
    else begin
      let payload = Bytes.sub_string d.buf (d.start + header_len) n in
      d.start <- d.start + header_len + n;
      d.len <- d.len - header_len - n;
      d.consumed <- d.consumed + header_len + n;
      if d.len = 0 then d.start <- 0;
      Some payload
    end
  end
