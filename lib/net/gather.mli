(** Ground-truth collection for the socket driver.

    In the in-memory drivers the oracle is omniscient: it reads every
    heap directly.  Across OS processes nobody has that view, so each
    node serializes its {e authoritative} state — its own process's
    heap, stub and scion tables plus the objects it reclaimed — and
    the coordinator reassembles the cluster-wide ground truth and runs
    the same invariants {!Adgc_check.Invariant} checks in-memory,
    producing the same {!Adgc_check.Invariant.violation} values.

    The workload is frozen once the run starts (topologies are built
    deterministically before [Start]; the mutator never runs under the
    socket driver), so reachability is a static property: the expected
    live and garbage sets computed on a replica {e before} the run are
    exact for the whole run.  That turns the oracle into set algebra —
    everything reclaimed must come from [expected_garbage], everything
    in [expected_garbage] (owned by a surviving node) must eventually
    be reclaimed — plus the structural invariants over the gathered
    final state. *)

open Adgc_algebra

type object_state = { oid : Oid.t; refs : Oid.t list; rooted : bool }

type stub_state = { target : Oid.t; stub_ic : int }

type scion_state = { key : Ref_key.t; scion_ic : int; confirmed : bool }

type node_state = {
  rank : int;
  tick : int;  (** the node's simulated clock at capture time *)
  objects : object_state list;
  stubs : stub_state list;
  scions : scion_state list;
  reclaimed : Oid.t list;  (** every object this node's LGC swept, in sweep order *)
  counters : (string * int) list;  (** the node's {!Adgc_util.Stats} counters *)
}

val capture :
  rt:Adgc_rt.Runtime.t -> rank:int -> tick:int -> reclaimed:Oid.t list -> node_state
(** Snapshot the state this node is authoritative for: process
    [rank]'s heap, tables and stats. *)

val to_sval : node_state -> Adgc_serial.Sval.t

val of_sval : Adgc_serial.Sval.t -> node_state option

(** {1 The gathered-state oracle} *)

type verdict = {
  violations : Adgc_check.Invariant.violation list;
      (** structural invariant breaks, same constructors the in-memory
          oracle reports *)
  live : Oid.Set.t;  (** reachability closure over the gathered heaps *)
  reclaimed : Oid.Set.t;  (** union of every node's reclaimed set *)
  unreclaimed : Oid.Set.t;
      (** expected garbage owned by a surviving node and still
          unreclaimed — liveness debt; empty at convergence *)
}

val check :
  expected_live:Oid.Set.t ->
  expected_garbage:Oid.Set.t ->
  ?dead:int list ->
  node_state list ->
  verdict
(** Run the invariants over the gathered states.  [dead] ranks follow
    the in-memory oracle's crash-stop semantics: their state is
    wreckage — absent from the gather, excluded from roots, references
    into them unjudged, their garbage owed by nobody.

    Checked: [Live_reclaimed] (a reclaimed object is in
    [expected_live]), [Dangling_ref] (a gathered-live object's field
    points at memory absent from every surviving heap),
    [Scion_dangles] (a scion's target is gone from its owner's heap)
    and [Ic_regression] (a scion counter ahead of the surviving stub
    it mirrors). *)

val clean : verdict -> bool
(** No violations — the safety half only; liveness is [unreclaimed]. *)

val pp_verdict : Format.formatter -> verdict -> unit
