open Adgc_algebra
module Sval = Adgc_serial.Sval
module Invariant = Adgc_check.Invariant

type object_state = { oid : Oid.t; refs : Oid.t list; rooted : bool }

type stub_state = { target : Oid.t; stub_ic : int }

type scion_state = { key : Ref_key.t; scion_ic : int; confirmed : bool }

type node_state = {
  rank : int;
  tick : int;
  objects : object_state list;
  stubs : stub_state list;
  scions : scion_state list;
  reclaimed : Oid.t list;
  counters : (string * int) list;
}

let capture ~rt ~rank ~tick ~reclaimed =
  let p = rt.Adgc_rt.Runtime.procs.(rank) in
  let heap = p.Adgc_rt.Process.heap in
  let objects =
    Adgc_rt.Heap.fold heap ~init:[] ~f:(fun acc (o : Adgc_rt.Heap.obj) ->
        let refs =
          Array.fold_right (fun f acc -> match f with Some r -> r :: acc | None -> acc) o.fields []
        in
        { oid = o.oid; refs; rooted = Adgc_rt.Heap.is_root heap o.oid } :: acc)
    |> List.sort (fun a b -> Oid.compare a.oid b.oid)
  in
  let stubs =
    List.map
      (fun (e : Adgc_rt.Stub_table.entry) -> { target = e.target; stub_ic = e.ic })
      (Adgc_rt.Stub_table.entries p.Adgc_rt.Process.stubs)
  in
  let scions =
    List.map
      (fun (e : Adgc_rt.Scion_table.entry) ->
        { key = e.key; scion_ic = e.ic; confirmed = e.confirmed })
      (Adgc_rt.Scion_table.entries p.Adgc_rt.Process.scions)
  in
  {
    rank;
    tick;
    objects;
    stubs;
    scions;
    reclaimed;
    counters = Adgc_util.Stats.counters rt.Adgc_rt.Runtime.stats;
  }

(* ------------------------------------------------------------------ *)
(* Wire representation.  Same id conventions as Msg's codec: an oid is
   [owner; serial], a ref key is [src; oid]. *)

let oid_sval (o : Oid.t) =
  Sval.List [ Sval.Int (Proc_id.to_int (Oid.owner o)); Sval.Int o.Oid.serial ]

let key_sval (k : Ref_key.t) =
  Sval.List [ Sval.Int (Proc_id.to_int k.Ref_key.src); oid_sval k.Ref_key.target ]

let to_sval t =
  Sval.Record
    ( "node_state",
      [
        ("rank", Sval.Int t.rank);
        ("tick", Sval.Int t.tick);
        ( "objects",
          Sval.List
            (List.map
               (fun o ->
                 Sval.List
                   [ oid_sval o.oid; Sval.List (List.map oid_sval o.refs); Sval.Bool o.rooted ])
               t.objects) );
        ( "stubs",
          Sval.List
            (List.map (fun s -> Sval.List [ oid_sval s.target; Sval.Int s.stub_ic ]) t.stubs) );
        ( "scions",
          Sval.List
            (List.map
               (fun s -> Sval.List [ key_sval s.key; Sval.Int s.scion_ic; Sval.Bool s.confirmed ])
               t.scions) );
        ("reclaimed", Sval.List (List.map oid_sval t.reclaimed));
        ( "counters",
          Sval.List
            (List.map (fun (k, v) -> Sval.List [ Sval.Str k; Sval.Int v ]) t.counters) );
      ] )

let oid_of_sval = function
  | Sval.List [ Sval.Int owner; Sval.Int serial ] when owner >= 0 ->
      Some (Oid.make ~owner:(Proc_id.of_int owner) ~serial)
  | _ -> None

let key_of_sval = function
  | Sval.List [ Sval.Int src; oid ] when src >= 0 ->
      Option.map (fun target -> Ref_key.make ~src:(Proc_id.of_int src) ~target) (oid_of_sval oid)
  | _ -> None

let all_of f l =
  List.fold_right
    (fun x acc -> match (f x, acc) with Some v, Some vs -> Some (v :: vs) | _ -> None)
    l (Some [])

let object_of_sval = function
  | Sval.List [ oid; Sval.List refs; Sval.Bool rooted ] -> (
      match (oid_of_sval oid, all_of oid_of_sval refs) with
      | Some oid, Some refs -> Some { oid; refs; rooted }
      | _ -> None)
  | _ -> None

let stub_of_sval = function
  | Sval.List [ target; Sval.Int stub_ic ] ->
      Option.map (fun target -> { target; stub_ic }) (oid_of_sval target)
  | _ -> None

let scion_of_sval = function
  | Sval.List [ key; Sval.Int scion_ic; Sval.Bool confirmed ] ->
      Option.map (fun key -> { key; scion_ic; confirmed }) (key_of_sval key)
  | _ -> None

let counter_of_sval = function
  | Sval.List [ Sval.Str k; Sval.Int v ] -> Some (k, v)
  | _ -> None

let of_sval = function
  | Sval.Record
      ( "node_state",
        [
          ("rank", Sval.Int rank);
          ("tick", Sval.Int tick);
          ("objects", Sval.List objects);
          ("stubs", Sval.List stubs);
          ("scions", Sval.List scions);
          ("reclaimed", Sval.List reclaimed);
          ("counters", Sval.List counters);
        ] ) -> (
      match
        ( all_of object_of_sval objects,
          all_of stub_of_sval stubs,
          all_of scion_of_sval scions,
          all_of oid_of_sval reclaimed,
          all_of counter_of_sval counters )
      with
      | Some objects, Some stubs, Some scions, Some reclaimed, Some counters ->
          Some { rank; tick; objects; stubs; scions; reclaimed; counters }
      | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* The oracle over gathered state. *)

type verdict = {
  violations : Invariant.violation list;
  live : Oid.Set.t;
  reclaimed : Oid.Set.t;
  unreclaimed : Oid.Set.t;
}

let clean v = v.violations = []

let check ~expected_live ~expected_garbage ?(dead = []) states =
  let dead_ranks = List.fold_left (fun s r -> Proc_id.Set.add (Proc_id.of_int r) s) Proc_id.Set.empty dead in
  let is_dead pid = Proc_id.Set.mem pid dead_ranks in
  (* Index every surviving object. *)
  let objects : object_state Oid.Tbl.t = Oid.Tbl.create 1024 in
  List.iter
    (fun (ns : node_state) -> List.iter (fun o -> Oid.Tbl.replace objects o.oid o) ns.objects)
    states;
  let reclaimed =
    List.fold_left
      (fun acc (ns : node_state) ->
        List.fold_left (fun acc o -> Oid.Set.add o acc) acc ns.reclaimed)
      Oid.Set.empty states
  in
  (* Reachability closure from every surviving root, crossing remote
     references — the distributed-state mirror of
     [Cluster.globally_live] (no in-flight messages: the coordinator
     only judges quiescent gathers). *)
  let live = ref Oid.Set.empty in
  let queue = Queue.create () in
  List.iter
    (fun (ns : node_state) ->
      List.iter (fun o -> if o.rooted then Queue.add o.oid queue) ns.objects)
    states;
  while not (Queue.is_empty queue) do
    let oid = Queue.pop queue in
    if not (Oid.Set.mem oid !live) && Oid.Tbl.mem objects oid then begin
      live := Oid.Set.add oid !live;
      List.iter (fun r -> Queue.add r queue) (Oid.Tbl.find objects oid).refs
    end
  done;
  let live = !live in
  let violations = ref [] in
  let report v = violations := v :: !violations in
  (* Safety half of Live_reclaimed: the workload is static, so the
     pre-run expected live set is exact — anything reclaimed from it
     was reclaimed while globally reachable. *)
  List.iter
    (fun (ns : node_state) ->
      List.iter
        (fun oid ->
          if Oid.Set.mem oid expected_live then
            report (Invariant.Live_reclaimed { proc = Proc_id.of_int ns.rank; oid }))
        ns.reclaimed)
    states;
  (* Dangling_ref: a live object's field points at memory absent from
     every surviving heap.  References into dead processes are
     wreckage, not judged. *)
  List.iter
    (fun (ns : node_state) ->
      List.iter
        (fun o ->
          if Oid.Set.mem o.oid live then
            List.iter
              (fun r ->
                if (not (is_dead (Oid.owner r))) && not (Oid.Tbl.mem objects r) then
                  report
                    (Invariant.Dangling_ref
                       { proc = Proc_id.of_int ns.rank; holder = o.oid; target = r }))
              o.refs)
        ns.objects)
    states;
  (* Scion_dangles / Ic_regression over the gathered tables. *)
  let stub_ics : (Proc_id.t * Oid.t, int) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (ns : node_state) ->
      List.iter
        (fun s -> Hashtbl.replace stub_ics (Proc_id.of_int ns.rank, s.target) s.stub_ic)
        ns.stubs)
    states;
  List.iter
    (fun (ns : node_state) ->
      List.iter
        (fun s ->
          let target = s.key.Ref_key.target in
          let holder = s.key.Ref_key.src in
          if not (Oid.Tbl.mem objects target) then report (Invariant.Scion_dangles { key = s.key });
          if not (is_dead holder) then
            match Hashtbl.find_opt stub_ics (holder, target) with
            | Some stub_ic when s.scion_ic > stub_ic ->
                report (Invariant.Ic_regression { key = s.key; stub_ic; scion_ic = s.scion_ic })
            | Some _ | None -> ())
        ns.scions)
    states;
  let owned_by_dead oid = is_dead (Oid.owner oid) in
  let unreclaimed =
    Oid.Set.filter (fun o -> not (owned_by_dead o)) (Oid.Set.diff expected_garbage reclaimed)
  in
  { violations = List.rev !violations; live; reclaimed; unreclaimed }

let pp_verdict ppf v =
  Format.fprintf ppf "@[<v>reclaimed %d, live %d, unreclaimed garbage %d, violations %d"
    (Oid.Set.cardinal v.reclaimed) (Oid.Set.cardinal v.live) (Oid.Set.cardinal v.unreclaimed)
    (List.length v.violations);
  List.iter (fun viol -> Format.fprintf ppf "@,  %a" Invariant.pp viol) v.violations;
  Format.fprintf ppf "@]"
