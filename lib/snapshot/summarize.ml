open Adgc_algebra
open Adgc_rt

type algo = Naive | Condensed | Condensed_sets

(* Shared post-processing: given [stubs_from] per scion target and the
   root-trace result, assemble the summary. *)
let assemble ~now (p : Process.t) ~root_local ~root_remote ~stubs_from_of_target =
  let stub_entries = Stub_table.entries p.Process.stubs in
  let stub_targets =
    List.fold_left (fun s (e : Stub_table.entry) -> Oid.Set.add e.Stub_table.target s)
      Oid.Set.empty stub_entries
  in
  let scion_entries = Scion_table.entries p.Process.scions in
  let scions =
    List.map
      (fun (e : Scion_table.entry) ->
        let target = e.Scion_table.key.Ref_key.target in
        let stubs_from = Oid.Set.inter (stubs_from_of_target target) stub_targets in
        {
          Summary.key = e.Scion_table.key;
          scion_ic = e.Scion_table.ic;
          stubs_from;
          target_locally_reachable = Oid.Set.mem target root_local;
          last_invoked = e.Scion_table.last_invoked;
        })
      scion_entries
  in
  let scions_to =
    List.fold_left
      (fun acc (s : Summary.scion_info) ->
        Oid.Set.fold
          (fun stub_target acc ->
            let prev =
              match Oid.Map.find_opt stub_target acc with
              | Some set -> set
              | None -> Ref_key.Set.empty
            in
            Oid.Map.add stub_target (Ref_key.Set.add s.Summary.key prev) acc)
          s.Summary.stubs_from acc)
      Oid.Map.empty scions
  in
  let stubs =
    List.map
      (fun (e : Stub_table.entry) ->
        {
          Summary.target = e.Stub_table.target;
          stub_ic = e.Stub_table.ic;
          scions_to =
            Option.value ~default:Ref_key.Set.empty (Oid.Map.find_opt e.Stub_table.target scions_to);
          local_reach = Oid.Set.mem e.Stub_table.target root_remote;
        })
      stub_entries
  in
  Summary.make ~proc:p.Process.id ~taken_at:now ~scions ~stubs

let run_naive ~now (p : Process.t) =
  let heap = p.Process.heap in
  let { Heap.local = root_local; remote = root_remote } =
    Heap.trace heap ~from:(Heap.roots heap)
  in
  let cache : Oid.Set.t Oid.Tbl.t = Oid.Tbl.create 16 in
  let stubs_from_of_target target =
    match Oid.Tbl.find_opt cache target with
    | Some set -> set
    | None ->
        let { Heap.remote; _ } = Heap.trace heap ~from:[ target ] in
        Oid.Tbl.add cache target remote;
        remote
  in
  assemble ~now p ~root_local ~root_remote ~stubs_from_of_target

(* ------------------------------------------------------------------ *)
(* Condensed variant: iterative Tarjan SCC + DAG dynamic program over
   the heap's dense index.  The local graph is laid out in CSR form
   (one flat successor array + offsets), every per-node attribute is a
   plain int array indexed by dense id, and the whole scratch is a
   domain-local pool reused across runs (the arrays are fully
   re-initialized for [0, n) each run), so steady-state summarization
   allocates only at the Summary boundary.  Domain-local, not
   module-level: the parallel engine summarizes several processes
   concurrently, and each domain must own its scratch. *)

type scratch = {
  mutable index : int array; (* Tarjan discovery index, -1 = unvisited *)
  mutable lowlink : int array;
  mutable on_stack : Bytes.t;
  mutable scc : int array; (* node -> scc id, -1 = unassigned *)
  mutable off : int array; (* CSR: node -> start in succ_flat, length n+1 *)
  mutable succ_flat : int array; (* CSR: concatenated local successor ids *)
  mutable remote : Oid.t list array; (* node -> direct remote refs *)
  mutable stack : int array; (* Tarjan SCC stack *)
  mutable work_id : int array; (* explicit DFS stack: node... *)
  mutable work_child : int array; (* ...and its next-child cursor *)
  mutable scc_off : int array; (* scc -> start in member_flat *)
  mutable member_flat : int array; (* members bucketed by scc id *)
}

let scratch_key =
  Domain.DLS.new_key (fun () ->
      {
        index = [||];
        lowlink = [||];
        on_stack = Bytes.empty;
        scc = [||];
        off = [||];
        succ_flat = [||];
        remote = [||];
        stack = [||];
        work_id = [||];
        work_child = [||];
        scc_off = [||];
        member_flat = [||];
      })

let ensure_int_array get set n =
  if Array.length (get ()) < n then set (Array.make (Int.max 64 n) 0)

let run_condensed ~now (p : Process.t) =
  let heap = p.Process.heap in
  let me = p.Process.id in
  let n = Heap.dense_sync heap in
  let s = Domain.DLS.get scratch_key in
  ensure_int_array (fun () -> s.index) (fun a -> s.index <- a) n;
  ensure_int_array (fun () -> s.lowlink) (fun a -> s.lowlink <- a) n;
  ensure_int_array (fun () -> s.scc) (fun a -> s.scc <- a) n;
  ensure_int_array (fun () -> s.off) (fun a -> s.off <- a) (n + 1);
  ensure_int_array (fun () -> s.stack) (fun a -> s.stack <- a) n;
  ensure_int_array (fun () -> s.work_id) (fun a -> s.work_id <- a) (n + 1);
  ensure_int_array (fun () -> s.work_child) (fun a -> s.work_child <- a) (n + 1);
  ensure_int_array (fun () -> s.scc_off) (fun a -> s.scc_off <- a) (n + 2);
  ensure_int_array (fun () -> s.member_flat) (fun a -> s.member_flat <- a) n;
  if Bytes.length s.on_stack < n then s.on_stack <- Bytes.make (Int.max 64 n) '\000';
  if Array.length s.remote < n then s.remote <- Array.make (Int.max 64 n) [];
  Array.fill s.index 0 n (-1);
  Array.fill s.scc 0 n (-1);
  Bytes.fill s.on_stack 0 n '\000';
  Array.fill s.remote 0 n [];
  (* CSR layout in one pass: iter_dense walks ids in ascending order,
     so successor runs land contiguously in [succ_flat]. *)
  let edge = ref 0 in
  let push_succ id =
    if !edge >= Array.length s.succ_flat then begin
      let bigger = Array.make (Int.max 256 (2 * Array.length s.succ_flat)) 0 in
      Array.blit s.succ_flat 0 bigger 0 (Array.length s.succ_flat);
      s.succ_flat <- bigger
    end;
    s.succ_flat.(!edge) <- id;
    incr edge
  in
  let last = ref 0 in
  Heap.iter_dense heap (fun id obj ->
      (* Dead ids between [last] and [id] keep empty successor runs. *)
      for i = !last to id do
        s.off.(i) <- !edge
      done;
      last := id + 1;
      Array.iter
        (function
          | None -> ()
          | Some target ->
              if Proc_id.equal (Oid.owner target) me then begin
                match Heap.dense_id heap target with
                | Some sid -> push_succ sid
                | None -> () (* dangling local reference *)
              end
              else s.remote.(id) <- target :: s.remote.(id))
        obj.Heap.fields);
  for i = !last to n do
    s.off.(i) <- !edge
  done;
  (* Iterative Tarjan: an explicit work stack of (node, next-child).
     SCCs are numbered in emission order, i.e. reverse topological
     order of the condensation (every successor SCC of [c] has a
     number smaller than [c]). *)
  let counter = ref 0 in
  let scc_count = ref 0 in
  let sp = ref 0 in
  (* Tarjan stack pointer *)
  let visit start =
    if s.index.(start) = -1 then begin
      let wp = ref 0 in
      let push_work id child =
        s.work_id.(!wp) <- id;
        s.work_child.(!wp) <- child;
        incr wp
      in
      let discover id =
        s.index.(id) <- !counter;
        s.lowlink.(id) <- !counter;
        incr counter;
        Bytes.unsafe_set s.on_stack id '\001';
        s.stack.(!sp) <- id;
        incr sp
      in
      discover start;
      push_work start 0;
      while !wp > 0 do
        decr wp;
        let id = s.work_id.(!wp) and child = s.work_child.(!wp) in
        if s.off.(id) + child < s.off.(id + 1) then begin
          push_work id (child + 1);
          let succ = s.succ_flat.(s.off.(id) + child) in
          if s.index.(succ) = -1 then begin
            discover succ;
            push_work succ 0
          end
          else if Bytes.unsafe_get s.on_stack succ = '\001' then
            s.lowlink.(id) <- Int.min s.lowlink.(id) s.index.(succ)
        end
        else begin
          (* All children done: propagate lowlink to the parent and
             emit an SCC when this node is its root. *)
          (if !wp > 0 then
             let parent = s.work_id.(!wp - 1) in
             s.lowlink.(parent) <- Int.min s.lowlink.(parent) s.lowlink.(id));
          if s.lowlink.(id) = s.index.(id) then begin
            let cid = !scc_count in
            incr scc_count;
            let continue = ref true in
            while !continue do
              decr sp;
              let member = s.stack.(!sp) in
              Bytes.unsafe_set s.on_stack member '\000';
              s.scc.(member) <- cid;
              if member = id then continue := false
            done
          end
        end
      done
    end
  in
  Heap.iter_dense heap (fun id _ -> visit id);
  let nscc = !scc_count in
  (* Bucket members by SCC id (counting sort), then run the DP over
     the condensation: reachable remote references per SCC.  Successor
     SCCs always carry smaller ids, so ascending order works. *)
  Array.fill s.scc_off 0 (nscc + 1) 0;
  Heap.iter_dense heap (fun id _ -> s.scc_off.(s.scc.(id) + 1) <- s.scc_off.(s.scc.(id) + 1) + 1);
  for c = 1 to nscc do
    s.scc_off.(c) <- s.scc_off.(c) + s.scc_off.(c - 1)
  done;
  (* scc_off now holds start offsets; fill and restore in one pass by
     shifting a cursor copy. *)
  let cursor = Array.sub s.scc_off 0 (nscc + 1) in
  Heap.iter_dense heap (fun id _ ->
      let c = s.scc.(id) in
      s.member_flat.(cursor.(c)) <- id;
      cursor.(c) <- cursor.(c) + 1);
  let reach = Array.make (Int.max nscc 1) Oid.Set.empty in
  for c = 0 to nscc - 1 do
    let acc = ref Oid.Set.empty in
    for m = s.scc_off.(c) to s.scc_off.(c + 1) - 1 do
      let id = s.member_flat.(m) in
      List.iter (fun r -> acc := Oid.Set.add r !acc) s.remote.(id);
      for e = s.off.(id) to s.off.(id + 1) - 1 do
        let succ_scc = s.scc.(s.succ_flat.(e)) in
        if succ_scc <> c then acc := Oid.Set.union !acc reach.(succ_scc)
      done
    done;
    reach.(c) <- !acc
  done;
  let { Heap.local = root_local; remote = root_remote } =
    Heap.trace heap ~from:(Heap.roots heap)
  in
  let stubs_from_of_target target =
    match Heap.dense_id heap target with
    | Some id -> reach.(s.scc.(id))
    | None -> Oid.Set.empty
  in
  assemble ~now p ~root_local ~root_remote ~stubs_from_of_target

(* ------------------------------------------------------------------ *)
(* Pre-dense condensed variant: same Tarjan + DP, but every per-node
   attribute lives in a freshly allocated Oid.Tbl.  Kept behind
   [Condensed_sets] as the reference the tracer benchmark and the
   equivalence property measure the dense rewrite against. *)

type tarjan_node = {
  mutable index : int; (* -1 = unvisited *)
  mutable lowlink : int;
  mutable on_stack : bool;
  mutable scc : int; (* -1 = unassigned *)
  fields : Oid.t array; (* local successors *)
  remote : Oid.t list; (* remote references held directly *)
}

let run_condensed_sets ~now (p : Process.t) =
  let heap = p.Process.heap in
  let nodes : tarjan_node Oid.Tbl.t = Oid.Tbl.create (Heap.size heap * 2) in
  Heap.iter heap (fun obj ->
      let local_fields = ref [] and remote = ref [] in
      Array.iter
        (function
          | None -> ()
          | Some target ->
              if Proc_id.equal (Oid.owner target) p.Process.id then begin
                if Heap.mem heap target then local_fields := target :: !local_fields
              end
              else remote := target :: !remote)
        obj.Heap.fields;
      Oid.Tbl.replace nodes obj.Heap.oid
        {
          index = -1;
          lowlink = 0;
          on_stack = false;
          scc = -1;
          fields = Array.of_list !local_fields;
          remote = !remote;
        });
  let counter = ref 0 in
  let scc_count = ref 0 in
  let stack : Oid.t Stack.t = Stack.create () in
  let sccs_members : Oid.t list array ref = ref (Array.make 16 []) in
  let push_scc members =
    let id = !scc_count in
    incr scc_count;
    if id >= Array.length !sccs_members then begin
      let bigger = Array.make (2 * Array.length !sccs_members) [] in
      Array.blit !sccs_members 0 bigger 0 (Array.length !sccs_members);
      sccs_members := bigger
    end;
    !sccs_members.(id) <- members;
    id
  in
  let visit start =
    let work = Stack.create () in
    let start_node = Oid.Tbl.find nodes start in
    if start_node.index = -1 then begin
      Stack.push (start, 0) work;
      start_node.index <- !counter;
      start_node.lowlink <- !counter;
      incr counter;
      start_node.on_stack <- true;
      Stack.push start stack;
      while not (Stack.is_empty work) do
        let oid, child = Stack.pop work in
        let node = Oid.Tbl.find nodes oid in
        if child < Array.length node.fields then begin
          Stack.push (oid, child + 1) work;
          let succ = node.fields.(child) in
          let succ_node = Oid.Tbl.find nodes succ in
          if succ_node.index = -1 then begin
            succ_node.index <- !counter;
            succ_node.lowlink <- !counter;
            incr counter;
            succ_node.on_stack <- true;
            Stack.push succ stack;
            Stack.push (succ, 0) work
          end
          else if succ_node.on_stack then
            node.lowlink <- Int.min node.lowlink succ_node.index
        end
        else begin
          (if not (Stack.is_empty work) then
             let parent_oid, _ = Stack.top work in
             let parent = Oid.Tbl.find nodes parent_oid in
             parent.lowlink <- Int.min parent.lowlink node.lowlink);
          if node.lowlink = node.index then begin
            let members = ref [] in
            let continue = ref true in
            while !continue do
              let member = Stack.pop stack in
              let m = Oid.Tbl.find nodes member in
              m.on_stack <- false;
              members := member :: !members;
              if Oid.equal member oid then continue := false
            done;
            let id = push_scc !members in
            List.iter (fun member -> (Oid.Tbl.find nodes member).scc <- id) !members
          end
        end
      done
    end
  in
  Heap.iter heap (fun obj -> visit obj.Heap.oid);
  let n = !scc_count in
  let reach = Array.make (Int.max n 1) Oid.Set.empty in
  for id = 0 to n - 1 do
    let direct =
      List.fold_left
        (fun acc member ->
          let node = Oid.Tbl.find nodes member in
          let acc = List.fold_left (fun acc r -> Oid.Set.add r acc) acc node.remote in
          Array.fold_left
            (fun acc succ ->
              let succ_scc = (Oid.Tbl.find nodes succ).scc in
              if succ_scc = id then acc else Oid.Set.union acc reach.(succ_scc))
            acc node.fields)
        Oid.Set.empty !sccs_members.(id)
    in
    reach.(id) <- direct
  done;
  let { Heap.local = root_local; remote = root_remote } =
    Heap.trace_sets heap ~from:(Heap.roots heap)
  in
  let stubs_from_of_target target =
    match Oid.Tbl.find_opt nodes target with
    | Some node -> reach.(node.scc)
    | None -> Oid.Set.empty
  in
  assemble ~now p ~root_local ~root_remote ~stubs_from_of_target

let run ?(algo = Condensed) ~now p =
  match algo with
  | Naive -> run_naive ~now p
  | Condensed -> run_condensed ~now p
  | Condensed_sets -> run_condensed_sets ~now p

module Incremental = struct
  type region = { r_local : Oid.Set.t; r_remote : Oid.Set.t }

  type state = {
    (* Cached per scion target: the local region its trace covered and
       the remote references found (= StubsFrom). *)
    regions : region Oid.Tbl.t;
    mutable root_region : region option;
    mutable recomputed : int;
    mutable reused : int;
  }

  let create () = { regions = Oid.Tbl.create 32; root_region = None; recomputed = 0; reused = 0 }

  let last_recomputed t = t.recomputed

  let last_reused t = t.reused

  let intersects set dirty = not (Oid.Set.is_empty (Oid.Set.inter set dirty))

  let run t ~now (p : Process.t) =
    let heap = p.Process.heap in
    let dirty, roots_dirty = Heap.take_dirty heap in
    t.recomputed <- 0;
    t.reused <- 0;
    (* Root region. *)
    let root =
      match t.root_region with
      | Some r when (not roots_dirty) && not (intersects r.r_local dirty) ->
          t.reused <- t.reused + 1;
          r
      | Some _ | None ->
          t.recomputed <- t.recomputed + 1;
          let { Heap.local; remote } = Heap.trace heap ~from:(Heap.roots heap) in
          let r = { r_local = local; r_remote = remote } in
          t.root_region <- Some r;
          r
    in
    (* Per-scion-target regions: refresh stale ones, drop vanished
       targets, trace new ones. *)
    let wanted =
      List.fold_left
        (fun acc (e : Scion_table.entry) -> Oid.Set.add e.Scion_table.key.Ref_key.target acc)
        Oid.Set.empty
        (Scion_table.entries p.Process.scions)
    in
    let vanished =
      Oid.Tbl.fold
        (fun target _ acc -> if Oid.Set.mem target wanted then acc else target :: acc)
        t.regions []
    in
    List.iter (Oid.Tbl.remove t.regions) vanished;
    Oid.Set.iter
      (fun target ->
        match Oid.Tbl.find_opt t.regions target with
        | Some r when not (intersects r.r_local dirty) -> t.reused <- t.reused + 1
        | Some _ | None ->
            t.recomputed <- t.recomputed + 1;
            let { Heap.local; remote } = Heap.trace heap ~from:[ target ] in
            Oid.Tbl.replace t.regions target { r_local = local; r_remote = remote })
      wanted;
    let stubs_from_of_target target =
      match Oid.Tbl.find_opt t.regions target with
      | Some r -> r.r_remote
      | None -> Oid.Set.empty
    in
    assemble ~now p ~root_local:root.r_local ~root_remote:root.r_remote ~stubs_from_of_target
end
