open Adgc_algebra
open Adgc_rt
module Stats = Adgc_util.Stats

type t = {
  rt : Runtime.t;
  codec : Adgc_serial.Codec.t;
  algo : Summarize.algo;
  inc_states : (int, Summarize.Incremental.state) Hashtbl.t option;
  store : (int, Summary.t * string) Hashtbl.t; (* proc -> summary, encoded bytes *)
  mutable subscribers : (Summary.t -> unit) list;
}

let create ?codec ?(algo = Summarize.Condensed) ?(incremental = false) rt =
  let codec =
    match codec with Some c -> c | None -> (module Adgc_serial.Net_codec : Adgc_serial.Codec.S)
  in
  {
    rt;
    codec;
    algo;
    inc_states = (if incremental then Some (Hashtbl.create 16) else None);
    store = Hashtbl.create 16;
    subscribers = [];
  }

let summarize t ~now (p : Process.t) =
  match t.inc_states with
  | None -> Summarize.run ~algo:t.algo ~now p
  | Some states ->
      let i = Proc_id.to_int p.Process.id in
      let state =
        match Hashtbl.find_opt states i with
        | Some s -> s
        | None ->
            let s = Summarize.Incremental.create () in
            Hashtbl.add states i s;
            s
      in
      Summarize.Incremental.run state ~now p

type prepared = {
  p_proc : Process.t;
  p_time : int;
  p_encoded : string;
  p_published : Summary.t;
  p_decode_failed : bool;
}

(* The pure per-process phase: summarize, encode and round-trip
   decode.  Reads only [p]'s heap and tables (plus this store's
   per-process incremental state), touches no shared sink — safe to
   run for many processes concurrently under {!Adgc.Engine.Par}. *)
let prepare t (p : Process.t) =
  let now = Runtime.now t.rt in
  let summary = summarize t ~now p in
  let encoded = Adgc_serial.Codec.encode t.codec (Summary.to_sval summary) in
  (* Publish what survives the round-trip, not the in-memory value. *)
  let published, p_decode_failed =
    match Summary.of_sval (Adgc_serial.Codec.decode t.codec encoded) with
    | Some s -> (s, false)
    | None -> (summary, true)
  in
  { p_proc = p; p_time = now; p_encoded = encoded; p_published = published; p_decode_failed }

(* The effect phase: stats, spans, the published store, the log and
   the subscribers (detectors).  Runs in canonical process order. *)
let commit t pr =
  let p = pr.p_proc and encoded = pr.p_encoded and published = pr.p_published in
  Stats.incr t.rt.Runtime.stats "snapshot.taken";
  Stats.add t.rt.Runtime.stats "snapshot.bytes" (String.length encoded);
  if pr.p_decode_failed then Stats.incr t.rt.Runtime.stats "snapshot.decode_failures";
  if Adgc_obs.Span.enabled t.rt.Runtime.obs then begin
    Stats.observe t.rt.Runtime.stats "snapshot.size_bytes" (float_of_int (String.length encoded));
    ignore
      (Adgc_obs.Span.event t.rt.Runtime.obs ~time:pr.p_time ~parent:t.rt.Runtime.run_span
         ~proc:(Proc_id.to_int p.Process.id)
         ~args:[ ("bytes", string_of_int (String.length encoded)) ]
         ~kind:Adgc_obs.Span.Snapshot
         (Printf.sprintf "snapshot %s" (Proc_id.to_string p.Process.id))
        : int)
  end;
  Hashtbl.replace t.store (Proc_id.to_int p.Process.id) (published, encoded);
  Runtime.log t.rt ~topic:"snapshot" "%a summarized: %d scions, %d stubs, %d bytes" Proc_id.pp
    p.Process.id
    (fst (Summary.counts published))
    (snd (Summary.counts published))
    (String.length encoded);
  List.iter (fun f -> f published) t.subscribers;
  published

let take t (p : Process.t) = commit t (prepare t p)

let take_all t = Array.iter (fun p -> ignore (take t p : Summary.t)) t.rt.Runtime.procs

let latest t proc = Option.map fst (Hashtbl.find_opt t.store (Proc_id.to_int proc))

let bytes_on_disk t proc =
  match Hashtbl.find_opt t.store (Proc_id.to_int proc) with
  | Some (_, bytes) -> String.length bytes
  | None -> 0

let subscribe t f = t.subscribers <- f :: t.subscribers
