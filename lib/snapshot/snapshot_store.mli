(** Snapshot pipeline: summarize, serialize, publish.

    The paper's processes periodically store a snapshot "on disk" and
    the DCDA works on the summarized form.  This store performs the
    honest equivalent: it summarizes the process, encodes the summary
    through the configured codec, keeps the bytes (our "disk"), and
    publishes the {e decoded} summary — so the detector always reads
    what survived a serialization round-trip, never the live tables.

    Sizes and durations are recorded in the cluster statistics. *)

open Adgc_algebra

type t

val create :
  ?codec:Adgc_serial.Codec.t ->
  ?algo:Summarize.algo ->
  ?incremental:bool ->
  Adgc_rt.Runtime.t ->
  t
(** Default codec: the compact one; default algorithm: [Condensed].
    With [~incremental:true] each process gets a persistent
    {!Summarize.Incremental} state and [algo] is ignored. *)

val take : t -> Adgc_rt.Process.t -> Summary.t
(** Snapshot one process now; returns (and publishes) the summary.
    Equivalent to {!commit} of {!prepare}. *)

val take_all : t -> unit

(** {2 Engine-facing split}

    {!prepare} is the pure per-process phase (summarize + encode +
    round-trip decode): it reads only the process's own state and may
    run for many processes concurrently.  {!commit} applies the
    effects — stats, spans, the published store, subscribers — and
    must run in canonical process order. *)

type prepared

val prepare : t -> Adgc_rt.Process.t -> prepared

val commit : t -> prepared -> Summary.t

val latest : t -> Proc_id.t -> Summary.t option

val bytes_on_disk : t -> Proc_id.t -> int
(** Size of the stored encoded summary (0 when none). *)

val subscribe : t -> (Summary.t -> unit) -> unit
(** Called with every newly published summary (the detector hooks in
    here). *)
