(** Building a {!Summary} from a live process.

    Two interchangeable implementations:

    - [Naive] — one breadth-first trace per distinct scion target
      (plus one from the roots), the direct transcription of the
      paper's description;
    - [Condensed] — a single Tarjan strongly-connected-components
      condensation of the local graph followed by a dynamic program
      over the resulting DAG, sharing work between scions that reach
      the same region (the paper's "breadth-first, to minimize
      re-tracing" concern, taken further).  Runs on the heap's
      persistent dense index: CSR adjacency, int-array Tarjan state
      and a reused module-level scratch pool, so steady-state
      summarization allocates only at the {!Summary} boundary.
    - [Condensed_sets] — the pre-dense implementation of [Condensed]
      (per-node [Oid.Tbl] state, functional sets).  Kept as the
      reference path: the equivalence property pins the dense rewrite
      to it and the [tracer] benchmark measures the speedup.

    All variants produce identical summaries (a property test) and the
    E10 / tracer benchmarks compare their cost profiles.

    The summarizer reads the process {e synchronously} inside one
    simulator event, which models the paper's serialize-then-summarize
    pipeline: the snapshot reflects one instant of the process, while
    the rest of the system keeps running. *)

type algo = Naive | Condensed | Condensed_sets

val run : ?algo:algo -> now:int -> Adgc_rt.Process.t -> Summary.t
(** Default algorithm: [Condensed]. *)

(** Incremental summarization — the paper's "performed, lazily and
    incrementally, in each process" (§4), implemented with dirty-region
    tracking: the heap logs which objects' fields changed
    ({!Adgc_rt.Heap.take_dirty}); a scion's [StubsFrom] is re-traced
    only when its cached region intersects the dirty set (any edge
    change that alters reachability from a scion necessarily dirties
    an object inside the old region).  Invocation counters and table
    membership are always refreshed from the live tables — they are
    cheap.  Produces summaries identical to a full run (a qcheck
    property). *)
module Incremental : sig
  type state
  (** Per-process cache; create one per process and keep it across
      runs.  It consumes the heap's dirty log, so give each heap at
      most one incremental summarizer. *)

  val create : unit -> state

  val run : state -> now:int -> Adgc_rt.Process.t -> Summary.t

  val last_recomputed : state -> int
  (** Regions re-traced by the most recent run (diagnostics and the
      E14 benchmark). *)

  val last_reused : state -> int
end
