(** Detector policy knobs.

    The paper leaves candidate selection to "efficient heuristics from
    the literature"; this policy implements the natural one its §2.1
    sketches — a scion whose target is not locally reachable and has
    not been invoked for a while is suspected of belonging to a
    distributed garbage cycle — plus rate limiting, an optional hop
    budget, and the scion-deletion mode ablated by experiment E11. *)

type deletion_mode =
  | Arrival_only
      (** delete only the scion the concluding CDM arrived on — the
          paper's minimal action; mutually-linked cycles then need
          further detections to unravel completely *)
  | All_local
      (** delete every proven scion owned by the concluding process —
          still purely local, converges in one acyclic-DGC cascade *)
  | Broadcast
      (** additionally notify the other owners of proven scions *)

val deletion_mode_name : deletion_mode -> string

type scan_order =
  | Sorted  (** always scan candidates in key order *)
  | Rotating
      (** resume after the last initiated candidate, wrapping — under
          more eligible candidates than [max_per_scan] this guarantees
          every scion is eventually tried (no starvation) *)
  | Random_order  (** shuffle candidates with the process's RNG *)

val scan_order_name : scan_order -> string

type t = {
  idle_threshold : int;
      (** minimum simulated time since the last invocation through a
          scion before it can become a candidate *)
  scan_period : int;  (** how often each process scans for candidates *)
  snapshot_period : int;  (** how often each process re-summarizes *)
  max_per_scan : int;  (** candidate initiations per scan *)
  cooldown : int;  (** do not re-initiate from the same scion sooner *)
  ttl : int option;  (** optional CDM hop budget *)
  deletion_mode : deletion_mode;
  early_ic_check : bool;
      (** the paper's §3.2 optimization: before forwarding a
          derivation, match it locally and abort on an IC conflict
          instead of letting the next hop discover it — saves the
          doomed message; "not required to maintain safety" *)
  scan_order : scan_order;
  backoff : bool;
      (** double the per-candidate cooldown after every fruitless
          initiation (capped at 32x) — stops candidates pinned by
          long-lived external references (Fig. 1) from burning CDMs at
          every scan *)
  cdm_budget : int;
      (** work allowance per detection: each forwarded CDM costs one
          and fan-outs split the remainder (randomly skewed so retries
          explore different derivation subtrees), bounding a single
          detection to at most this many messages even on densely
          connected garbage, where unbounded fan-out is combinatorial
          (experiment E18) *)
  candidate_audit_period : int;
      (** how often each process runs the full-scan audit of its
          incremental candidate labels ({!Detector.audit_candidates})
          — deliberately several snapshot periods, so the audit is a
          low-frequency safety net rather than a recurring O(heap)
          cost *)
}

val default : t
(** idle 2000, scan 3000, snapshot 2500, 4 per scan, cooldown 10000,
    no TTL, [All_local]. *)

val aggressive : t
(** Short periods and thresholds — for tests that want detections to
    happen quickly. *)
