open Adgc_algebra
open Adgc_rt
module Summary = Adgc_snapshot.Summary
module Stats = Adgc_util.Stats
module Span = Adgc_obs.Span
module Lineage = Adgc_obs.Lineage

type candidates_mode = Full_scan | Incremental

type t = {
  rt : Runtime.t;
  proc : Process.t;
  policy : Policy.t;
  mode : candidates_mode;
  candidates : Candidates.t;
  mutable summary : Summary.t option;
  mutable next_seq : int;
  mutable started : int;
  last_initiated : int Ref_key.Tbl.t; (* candidate cooldown *)
  attempts : int Ref_key.Tbl.t;
      (* fruitless initiations per candidate: the cooldown backs off
         exponentially so cycles blocked by long-lived external
         dependencies (paper Fig. 1) stop burning CDMs every scan *)
  mutable scan_cursor : Ref_key.t option; (* rotation point, see Policy.scan_order *)
  mutable reports : Report.t list;
}

let proc_id t = t.proc.Process.id

let policy t = t.policy

let set_summary t summary =
  (* Gauntlet mutant: freeze the first snapshot forever — guards then
     reason about counters the mutator has since moved past.  The
     candidate maintainer's publish snapshot is skipped too, so the
     frozen scan source stays coherent with the frozen summary. *)
  match (t.summary, Adgc_util.Mc_mutate.enabled "stale_summaries") with
  | Some _, true -> ()
  | (Some _ | None), _ ->
      t.summary <- Some summary;
      Candidates.note_publish t.candidates

let summary t = t.summary

let candidates t = t.candidates

let mode t = t.mode

let reports t = List.rev t.reports

let detections_started t = t.started

let abort t id reason =
  Stats.incr t.rt.Runtime.stats ("dcda.abort." ^ reason);
  Lineage.record t.rt.Runtime.lineage id
    (Lineage.Guard { at = proc_id t; time = Runtime.now t.rt; reason });
  Runtime.log t.rt ~topic:"dcda" "%a: %a aborted (%s)" Proc_id.pp (proc_id t) Detection_id.pp id
    reason

(* Delete proven scions at the concluding process per policy, and
   broadcast the remaining ones when configured. *)
let conclude t ~(id : Detection_id.t) ~algebra ~(arrival : Ref_key.t) ~hops =
  let proven = List.map fst (Algebra.source algebra) in
  let mine, others =
    List.partition (fun key -> Proc_id.equal (Ref_key.owner key) (proc_id t)) proven
  in
  let to_delete =
    match t.policy.Policy.deletion_mode with
    | Policy.Arrival_only -> [ arrival ]
    | Policy.All_local | Policy.Broadcast -> mine
  in
  let deleted_here =
    List.filter (fun key -> Scion_table.delete ~tombstone:true t.proc.Process.scions key) to_delete
  in
  List.iter
    (fun key ->
      Stats.incr t.rt.Runtime.stats "dcda.scions_deleted";
      Runtime.log t.rt ~topic:"dcda" "%a: proven-cycle scion %a deleted" Proc_id.pp (proc_id t)
        Ref_key.pp key)
    deleted_here;
  (match t.policy.Policy.deletion_mode with
  | Policy.Broadcast ->
      let by_owner =
        List.fold_left
          (fun acc key ->
            let owner = Ref_key.owner key in
            let prev = Option.value ~default:[] (Proc_id.Map.find_opt owner acc) in
            Proc_id.Map.add owner (key :: prev) acc)
          Proc_id.Map.empty others
      in
      Proc_id.Map.iter
        (fun owner scions ->
          Runtime.send_dgc t.rt ~src:(proc_id t) ~dst:owner (Msg.Cdm_delete { id; scions }))
        by_owner
  | Policy.Arrival_only | Policy.All_local -> ());
  Stats.incr t.rt.Runtime.stats "dcda.cycles_found";
  let now = Runtime.now t.rt in
  let lineage = t.rt.Runtime.lineage in
  if Lineage.enabled lineage then begin
    Lineage.record lineage id
      (Lineage.Concluded
         { at = proc_id t; time = now; proven = true; hops; refs = List.length proven });
    Stats.observe t.rt.Runtime.stats "dcda.cdm_chain_hops" (float_of_int hops);
    (* Detection latency needs the initiation tick, which only the
       lineage registry (fed at the initiator) knows — hence this
       metric exists only under telemetry. *)
    (match Lineage.hops lineage id with
    | Lineage.Initiated { time = t0; _ } :: _ ->
        Stats.observe t.rt.Runtime.stats "dcda.detection_latency" (float_of_int (now - t0))
    | _ -> ());
    match Lineage.span lineage id with
    | Some span ->
        Span.end_span t.rt.Runtime.obs ~time:now
          ~args:[ ("proven", string_of_int (List.length proven)); ("hops", string_of_int hops) ]
          span
    | None -> ()
  end;
  let report =
    {
      Report.id;
      concluded_at = proc_id t;
      concluded_time = now;
      proven;
      hops;
      deleted_here;
      lineage = Lineage.hops lineage id;
    }
  in
  t.reports <- report :: t.reports;
  Runtime.log t.rt ~topic:"dcda" "%a: CYCLE FOUND %a (%d refs, %d hops)" Proc_id.pp (proc_id t)
    Detection_id.pp id (List.length proven) hops

(* Fan the detection out from an arrival scion: one CDM derivation per
   followable stub in StubsFrom.  [delivered] is the algebra as it
   stood when the CDM arrived (arrival-scion entry included) — the
   reference for the no-new-information check.  [budget] is what this
   branch may still spend; it is split across the derivations that
   survive the filters, with the remainder handed out at a random
   rotation so repeated attempts explore different subtrees of a dense
   garbage graph. *)
let proceed_from t ~id ~delivered ~(si : Summary.scion_info) ~hops ~budget =
  let summary = match t.summary with Some s -> s | None -> assert false in
  let exception Stop of string in
  try
    (* First pass: build the forwardable derivations. *)
    let derivations =
      Oid.Set.fold
        (fun stub_target acc ->
          match Summary.find_stub summary stub_target with
          | None ->
              (* The summary is internally consistent, so this indicates
                 a stub swept between trace passes; treat as rule 1. *)
              Stats.incr t.rt.Runtime.stats "dcda.branch.missing_stub";
              acc
          | Some stub ->
              if
                stub.Summary.local_reach
                (* The ignore_local_reach mutant forgets rule 2 both
                   here and at CDM arrival: locally reachable
                   continuations get followed and concluded over. *)
                && not (Adgc_util.Mc_mutate.enabled "ignore_local_reach")
              then begin
                (* Locally reachable continuation: never follow (§2.1). *)
                Stats.incr t.rt.Runtime.stats "dcda.branch.local_reach";
                acc
              end
              else begin
                let add side key ~ic alg =
                  match Algebra.add alg side key ~ic with
                  | Algebra.Added alg -> alg
                  | Algebra.Ic_conflict _ ->
                      (* The skip_ic_guards mutant keeps the first
                         counter it saw instead of aborting — rule 3 in
                         its add-time form is the same guard. *)
                      if Adgc_util.Mc_mutate.enabled "skip_ic_guards" then alg
                      else raise (Stop "ic_conflict")
                in
                let stub_key = Ref_key.make ~src:(proc_id t) ~target:stub_target in
                (* Gauntlet mutant: lose one scion dependency from the
                   source set — an external holder of the "cycle" goes
                   unaccounted and matching can cancel to nothing. *)
                let deps =
                  if
                    Adgc_util.Mc_mutate.enabled "drop_source_scion"
                    && not (Ref_key.Set.is_empty stub.Summary.scions_to)
                  then
                    Ref_key.Set.remove
                      (Ref_key.Set.min_elt stub.Summary.scions_to)
                      stub.Summary.scions_to
                  else stub.Summary.scions_to
                in
                let alg =
                  delivered
                  |> fun alg ->
                  Ref_key.Set.fold
                    (fun dep alg ->
                      match Summary.find_scion summary dep with
                      | Some dep_info -> add Algebra.Source dep ~ic:dep_info.Summary.scion_ic alg
                      | None -> alg (* cannot happen for a coherent summary *))
                    deps alg
                  |> add Algebra.Target stub_key ~ic:stub.Summary.stub_ic
                in
                if Algebra.equal alg delivered then begin
                  (* No new information: the derivation would loop
                     forever re-announcing the same dependency. *)
                  Stats.incr t.rt.Runtime.stats "dcda.branch.no_new_info";
                  acc
                end
                else if
                  (* §3.2 optimization: analyse the unmatched counters
                     of the algebra about to leave; a conflict here
                     means the next hop would only abort it anyway. *)
                  t.policy.Policy.early_ic_check
                  &&
                  match Algebra.matching alg with
                  | Algebra.Ic_abort _ -> true
                  | Algebra.Match _ -> false
                then begin
                  Stats.incr t.rt.Runtime.stats "dcda.abort.ic_mismatch_early";
                  Stats.incr t.rt.Runtime.stats "dcda.cdm_saved";
                  acc
                end
                else (stub_key, alg) :: acc
              end)
        si.Summary.stubs_from []
    in
    (* Second pass: split the budget and send.  [budget] is the number
       of CDMs this branch may still emit in total; each child send
       costs one and the leftover is divided among the children (a
       zero-leftover child is still sent — its delivery can conclude
       the detection without forwarding further). *)
    let k = List.length derivations in
    (* A chain that cannot fan out any further is a dead end, not an
       abort — but the lineage should still say where it stopped. *)
    if k = 0 then
      Lineage.record t.rt.Runtime.lineage id
        (Lineage.Guard { at = proc_id t; time = Runtime.now t.rt; reason = "dead_end" })
    else if budget <= 0 then
      Lineage.record t.rt.Runtime.lineage id
        (Lineage.Guard { at = proc_id t; time = Runtime.now t.rt; reason = "budget" });
    if k > 0 && budget > 0 then begin
      let to_send = Int.min k budget in
      let leftover = budget - to_send in
      let share = leftover / to_send and extra = leftover mod to_send in
      (* Random rotation: which derivations get funded (and which get
         the +1) changes between attempts, so retries explore different
         subtrees of dense graphs. *)
      let rotation = if k > 1 then Adgc_util.Rng.int t.proc.Process.rng k else 0 in
      List.iteri
        (fun i (stub_key, alg) ->
          let slot = (i + k - rotation) mod k in
          if slot >= to_send then Stats.incr t.rt.Runtime.stats "dcda.branch.budget"
          else begin
            let child_budget = share + (if slot < extra then 1 else 0) in
            Stats.incr t.rt.Runtime.stats "dcda.cdm_sent";
            Lineage.record t.rt.Runtime.lineage id
              (Lineage.Sent
                 {
                   at = proc_id t;
                   dst = Ref_key.owner stub_key;
                   time = Runtime.now t.rt;
                   sources = List.length (Algebra.source alg);
                   targets = List.length (Algebra.target alg);
                   hops = hops + 1;
                 });
            Runtime.send_dgc t.rt ~src:(proc_id t)
              ~dst:(Ref_key.owner stub_key)
              (Msg.Cdm
                 (Cdm.make ~id ~algebra:alg ~frontier:stub_key ~hops:(hops + 1)
                    ~budget:child_budget))
          end)
        derivations
    end
    else if k > 0 then Stats.incr t.rt.Runtime.stats "dcda.branch.budget"
  with Stop reason -> abort t id reason

let handle_cdm t (cdm : Cdm.t) =
  Stats.incr t.rt.Runtime.stats "dcda.cdm_received";
  let id = cdm.Cdm.id in
  Lineage.record t.rt.Runtime.lineage id
    (Lineage.Received
       {
         at = proc_id t;
         time = Runtime.now t.rt;
         sources = List.length (Algebra.source cdm.Cdm.algebra);
         targets = List.length (Algebra.target cdm.Cdm.algebra);
         hops = cdm.Cdm.hops;
       });
  match t.summary with
  | None -> abort t id "no_summary"
  | Some summary -> (
      let arrival = cdm.Cdm.frontier in
      match Summary.find_scion summary arrival with
      | None ->
          (* Safety rule 1: stub without corresponding scion in the
             published snapshot — ignore the CDM. *)
          abort t id "missing_scion"
      | Some si -> (
          (* Safety rule 3 (delivery-time form): the stub-side counter
             travelled in the CDM's target set; compare it with the
             scion-side counter in our snapshot. *)
          let stub_side_ic = Algebra.ic cdm.Cdm.algebra Algebra.Target arrival in
          match stub_side_ic with
          | Some ic
            when ic <> si.Summary.scion_ic
                 && not (Adgc_util.Mc_mutate.enabled "skip_ic_guards") ->
              abort t id "ic_mismatch_delivery"
          | None -> abort t id "malformed_cdm"
          | Some _ ->
              if
                si.Summary.target_locally_reachable
                && not (Adgc_util.Mc_mutate.enabled "ignore_local_reach")
              then abort t id "locally_reachable"
              else begin
                (* The skip_ic_guards mutant trusts the counter that
                   travelled in the CDM over the snapshot's own — and
                   keeps whichever value arrived first on a conflict. *)
                let arrival_ic =
                  if Adgc_util.Mc_mutate.enabled "skip_ic_guards" then
                    match stub_side_ic with Some ic -> ic | None -> si.Summary.scion_ic
                  else si.Summary.scion_ic
                in
                match
                  match Algebra.add cdm.Cdm.algebra Algebra.Source arrival ~ic:arrival_ic with
                  | Algebra.Ic_conflict _
                    when Adgc_util.Mc_mutate.enabled "skip_ic_guards" ->
                      (* Same mutant as in [proceed_from]: rule 3's
                         add-time form silently keeps the first counter
                         instead of aborting. *)
                      Algebra.Added cdm.Cdm.algebra
                  | r -> r
                with
                | Algebra.Ic_conflict _ -> abort t id "ic_conflict"
                | Algebra.Added alg -> (
                    match Algebra.matching alg with
                    | Algebra.Ic_abort _ -> abort t id "ic_mismatch_matching"
                    | Algebra.Match { unresolved = []; frontier = [] } ->
                        conclude t ~id ~algebra:alg ~arrival ~hops:cdm.Cdm.hops
                    | Algebra.Match { unresolved = _ :: _; frontier = [] }
                      when Adgc_util.Mc_mutate.enabled "conclude_ignores_unresolved" ->
                        (* Gauntlet mutant: declare victory while scion
                           dependencies are still untraversed — an
                           external holder of the "cycle" (paper Fig. 1)
                           is exactly such a dependency. *)
                        conclude t ~id ~algebra:alg ~arrival ~hops:cdm.Cdm.hops
                    | Algebra.Match _ -> (
                        match t.policy.Policy.ttl with
                        | Some ttl when cdm.Cdm.hops >= ttl -> abort t id "ttl"
                        | Some _ | None ->
                            proceed_from t ~id ~delivered:alg ~si ~hops:cdm.Cdm.hops
                              ~budget:cdm.Cdm.budget))
              end))

let handle_cdm_delete t (_id : Detection_id.t) (scions : Ref_key.t list) =
  List.iter
    (fun key ->
      if Proc_id.equal (Ref_key.owner key) (proc_id t) then
        if Scion_table.delete ~tombstone:true t.proc.Process.scions key then begin
          Stats.incr t.rt.Runtime.stats "dcda.scions_deleted";
          Stats.incr t.rt.Runtime.stats "dcda.scions_deleted.broadcast"
        end)
    scions

let initiate t key =
  match t.summary with
  | None -> false
  | Some summary -> (
      match Summary.find_scion summary key with
      | None -> false
      | Some si ->
          if si.Summary.target_locally_reachable then false
          else if
            (* Gauntlet mutant: never retry a candidate — a detection
               whose CDM was lost then starves forever, breaking the
               paper's resilience-to-message-loss claim. *)
            Ref_key.Tbl.mem t.last_initiated key
            && Adgc_util.Mc_mutate.enabled "no_reinitiation"
          then false
          else begin
            let id = Detection_id.make ~initiator:(proc_id t) ~seq:t.next_seq in
            t.next_seq <- t.next_seq + 1;
            t.started <- t.started + 1;
            Ref_key.Tbl.replace t.last_initiated key (Runtime.now t.rt);
            (* Counted as fruitless until proven otherwise: a
               conclusion deletes the scion, which resets the entry
               (the key disappears from future summaries). *)
            Ref_key.Tbl.replace t.attempts key
              (1 + Option.value ~default:0 (Ref_key.Tbl.find_opt t.attempts key));
            Stats.incr t.rt.Runtime.stats "dcda.detections_started";
            let lineage = t.rt.Runtime.lineage in
            if Lineage.enabled lineage then begin
              let now = Runtime.now t.rt in
              Lineage.record lineage id
                (Lineage.Initiated { at = proc_id t; time = now; candidate = key });
              let span =
                Span.begin_span t.rt.Runtime.obs ~time:now ~parent:t.rt.Runtime.run_span
                  ~proc:(Proc_id.to_int (proc_id t))
                  ~kind:Span.Detection
                  (Printf.sprintf "detection %s" (Detection_id.to_string id))
              in
              Lineage.set_span lineage id span
            end;
            Runtime.log t.rt ~topic:"dcda" "%a: detection %a starts from candidate %a" Proc_id.pp
              (proc_id t) Detection_id.pp id Ref_key.pp key;
            let alg = Algebra.add_exn Algebra.empty Algebra.Source key ~ic:si.Summary.scion_ic in
            proceed_from t ~id ~delivered:alg ~si ~hops:0
              ~budget:t.policy.Policy.cdm_budget;
            true
          end)

(* Reorder the candidate list per the configured scan order. *)
let arrange t candidates =
  match t.policy.Policy.scan_order with
  | Policy.Sorted -> candidates
  | Policy.Rotating -> (
      match t.scan_cursor with
      | None -> candidates
      | Some cursor ->
          let after, upto =
            List.partition
              (fun (si : Summary.scion_info) -> Ref_key.compare si.Summary.key cursor > 0)
              candidates
          in
          after @ upto)
  | Policy.Random_order ->
      let arr = Array.of_list candidates in
      Adgc_util.Rng.shuffle t.proc.Process.rng arr;
      Array.to_list arr

(* Pure phase of a scan: evaluate the published summary against the
   policy and pick this round's candidates.  Touches only this
   detector's own state (tables, cursor, the per-process rng for
   [Random_order]) — never the network, stats or another process —
   so many detectors' scan_prepare may run concurrently under the
   parallel engine.

   The candidate source depends on the mode: [Full_scan] walks every
   scion of the published summary (the oracle path); [Incremental]
   walks only the keys the candidate maintainer froze when that same
   summary was published.  Both lists are in ascending key order and
   the frozen set equals exactly the summary's not-locally-reachable
   scions (the audit duty asserts it), so the downstream filters,
   arrangement, pick and cursor update are byte-identical. *)
let scan_source t summary =
  match t.mode with
  | Full_scan -> Summary.scion_list summary
  | Incremental -> List.filter_map (Summary.find_scion summary) (Candidates.published t.candidates)

let scan_prepare t =
  match t.summary with
  | None -> []
  | Some summary ->
      let now = Runtime.now t.rt in
      let effective_cooldown key =
        if not t.policy.Policy.backoff then t.policy.Policy.cooldown
        else
          let attempts =
            Int.min 5 (Option.value ~default:0 (Ref_key.Tbl.find_opt t.attempts key))
          in
          t.policy.Policy.cooldown * (1 lsl attempts)
      in
      let candidates =
        List.filter
          (fun (si : Summary.scion_info) ->
            (not si.Summary.target_locally_reachable)
            && now - si.Summary.last_invoked >= t.policy.Policy.idle_threshold
            &&
            match Ref_key.Tbl.find_opt t.last_initiated si.Summary.key with
            | Some last -> now - last >= effective_cooldown si.Summary.key
            | None -> true)
          (scan_source t summary)
      in
      let candidates = arrange t candidates in
      let picked = List.filteri (fun i _ -> i < t.policy.Policy.max_per_scan) candidates in
      (match List.rev picked with
      | last :: _ -> t.scan_cursor <- Some last.Summary.key
      | [] -> ());
      picked

(* Effect phase: start a detection per picked candidate (CDM sends,
   stats, lineage).  Canonical process order. *)
let scan_commit t picked =
  List.fold_left
    (fun acc (si : Summary.scion_info) -> if initiate t si.Summary.key then acc + 1 else acc)
    0 picked

let scan t = scan_commit t (scan_prepare t)

(* The full-scan audit duty: recompute the candidate set from scratch
   and compare with the maintained one.  Runs in every mode — it is
   cheap at its low frequency, and keeping it mode-independent keeps
   the stats table (and with it the metrics document) byte-identical
   between modes. *)
let audit_candidates t =
  match Candidates.audit t.candidates with
  | None -> true
  | Some (only_inc, only_scan) ->
      Runtime.log t.rt ~topic:"dcda" "%a: candidate audit MISMATCH (+%d incremental, +%d scan)"
        Proc_id.pp (proc_id t)
        (Ref_key.Set.cardinal only_inc)
        (Ref_key.Set.cardinal only_scan);
      false

let attach ?(candidates_mode = Full_scan) rt proc ~policy =
  let t =
    {
      rt;
      proc;
      policy;
      mode = candidates_mode;
      candidates = Candidates.attach ~stats:rt.Runtime.stats proc;
      summary = None;
      next_seq = 0;
      started = 0;
      last_initiated = Ref_key.Tbl.create 16;
      attempts = Ref_key.Tbl.create 16;
      scan_cursor = None;
      reports = [];
    }
  in
  proc.Process.on_cdm <- Some (handle_cdm t);
  proc.Process.on_cdm_delete <- Some (handle_cdm_delete t);
  t
