type deletion_mode = Arrival_only | All_local | Broadcast

let deletion_mode_name = function
  | Arrival_only -> "arrival_only"
  | All_local -> "all_local"
  | Broadcast -> "broadcast"

type scan_order = Sorted | Rotating | Random_order

let scan_order_name = function
  | Sorted -> "sorted"
  | Rotating -> "rotating"
  | Random_order -> "random"

type t = {
  idle_threshold : int;
  scan_period : int;
  snapshot_period : int;
  max_per_scan : int;
  cooldown : int;
  ttl : int option;
  deletion_mode : deletion_mode;
  early_ic_check : bool;
  scan_order : scan_order;
  backoff : bool;
  cdm_budget : int;
  candidate_audit_period : int;
}

let default =
  {
    idle_threshold = 2_000;
    scan_period = 3_000;
    snapshot_period = 2_500;
    max_per_scan = 4;
    cooldown = 10_000;
    ttl = None;
    deletion_mode = All_local;
    early_ic_check = false;
    scan_order = Rotating;
    backoff = true;
    cdm_budget = 256;
    candidate_audit_period = 12_500;
  }

let aggressive =
  {
    idle_threshold = 200;
    scan_period = 500;
    snapshot_period = 400;
    max_per_scan = 16;
    cooldown = 2_000;
    ttl = None;
    deletion_mode = All_local;
    early_ic_check = false;
    scan_order = Rotating;
    backoff = true;
    cdm_budget = 256;
    candidate_audit_period = 2_000;
  }
