(** Records of concluded cycle detections. *)

open Adgc_algebra

type t = {
  id : Detection_id.t;
  concluded_at : Proc_id.t;  (** process where matching came out empty *)
  concluded_time : int;
  proven : Ref_key.t list;  (** the cancelled reference set — the cycle *)
  hops : int;  (** hops of the concluding CDM *)
  deleted_here : Ref_key.t list;  (** scions deleted at the concluding process *)
  lineage : Adgc_obs.Lineage.hop list;
      (** full hop chain of the detection (initiation, every CDM
          send/receive, guards, conclusion), chronological; empty
          unless the cluster runs with telemetry *)
}

val span : t -> int
(** Number of distinct processes the proven references touch. *)

val pp : Format.formatter -> t -> unit

val pp_lineage : Format.formatter -> t -> unit
(** The hop chain, one line per hop; prints a placeholder when
    telemetry was off. *)
