(** Incremental cycle-candidate maintenance.

    The DCDA's candidate heuristic needs, for every scion, one bit:
    is the scion's target reachable from the local root?  The
    summarizer recomputes that bit with a full root trace at every
    snapshot — O(heap) work per period, paid even when nothing
    changed.  This module maintains the bit {e incrementally} on the
    heap's edge mutation events instead, in the style of incremental
    cycle/topological-order maintenance (Cohen–Fiat–Kaplan–Roditty):

    - the {e region} is the set of local objects reachable from the
      root set, mirrored as a label on every object that carries one;
    - an inserted edge whose holder is inside the region grows the
      region by a bounded BFS over exactly the newly reachable
      objects (O(new area), not O(heap));
    - a cut touching the region only {e marks it stale}: deletions
      cannot be repaired locally without recomputing, so the rebuild
      (one root trace) is deferred to the next {!refresh} — O(heap)
      work happens only after a churn burst actually removed edges,
      never on a quiet or insert-only heap;
    - scion creations and deletions keep a per-target index in step,
      so the candidate set (scions whose target is outside the
      region) updates in O(1) per membership change.

    A {!t} is attached to one process and subscribes to its heap
    ({!Adgc_rt.Heap.on_event}), scion table
    ({!Adgc_rt.Scion_table.on_change}) and crash-recovery
    ({!Adgc_rt.Process.on_revive}) hooks.  The detector snapshots the
    candidate set at every summary publish ({!note_publish}) so the
    incremental scan source is exactly as stale as the published
    summary — which is what makes it byte-identical to the full-scan
    path.  {!audit} is the self-check duty: an independent full root
    trace recomputes the candidate set from the live tables and
    compares; a disagreement is a maintenance bug (or an injected
    mutant), never an expected state. *)

open Adgc_algebra

type t

val attach : ?stats:Adgc_util.Stats.t -> Adgc_rt.Process.t -> t
(** Subscribe to the process's heap, scion-table and revive hooks and
    build the initial labels from the current state.  All counters
    land in [stats] under ["dcda.candidates.*"] when given. *)

val proc_id : t -> Proc_id.t

val refresh : t -> unit
(** Apply any deferred rebuild: when a cut (or a crash recovery) has
    marked the region stale, redo the root trace and relabel; a no-op
    otherwise. *)

val stale : t -> bool
(** A cut has invalidated the region and {!refresh} has not yet run. *)

val live : t -> Ref_key.Set.t
(** The current candidate set — scions (live table) whose target is
    outside the root region — after {!refresh}. *)

val note_publish : t -> unit
(** The detector published a fresh summary: {!refresh}, then freeze
    the current candidate set as the scan source ({!published}).
    Called under the summary-store commit, in canonical process
    order, so engines agree on the frozen set. *)

val published : t -> Ref_key.t list
(** The candidate keys frozen by the last {!note_publish}, in
    ascending key order — the incremental scan iterates these instead
    of every scion in the summary. *)

val audit : t -> (Ref_key.Set.t * Ref_key.Set.t) option
(** Full-scan self-check: {!refresh}, recompute the candidate set
    from scratch (independent root trace over the live heap and scion
    table) and compare with the incrementally maintained one.  [None]
    on agreement; [Some (only_incremental, only_scan)] — and a bumped
    ["dcda.candidates.audit_mismatch"] counter — on divergence. *)

(** {1 Diagnostics} *)

val region_size : t -> int
(** Objects currently labelled root-reachable (before any deferred
    rebuild). *)

val candidate_count : t -> int

val rebuilds : t -> int
(** Deferred full rebuilds performed so far (staleness repairs). *)

val label_updates : t -> int
(** Objects whose label flipped through the eager insert path so far
    — the O(churn) work measure the benchmarks gate on. *)
