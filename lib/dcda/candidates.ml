open Adgc_algebra
open Adgc_rt
module Stats = Adgc_util.Stats

type t = {
  proc : Process.t;
  stats : Stats.t option;
  region : unit Oid.Tbl.t; (* local objects labelled root-reachable *)
  scion_keys : Ref_key.Set.t Oid.Tbl.t; (* local target -> scions on it *)
  candidates : unit Ref_key.Tbl.t; (* scions whose target is outside the region *)
  mutable stale : bool; (* a cut invalidated the region; rebuild deferred *)
  mutable published : Ref_key.t list; (* frozen at the last summary publish *)
  mutable rebuilds : int;
  mutable label_updates : int;
}

let proc_id t = t.proc.Process.id

let stale t = t.stale

let region_size t = Oid.Tbl.length t.region

let candidate_count t = Ref_key.Tbl.length t.candidates

let rebuilds t = t.rebuilds

let label_updates t = t.label_updates

let incr t name = match t.stats with Some s -> Stats.incr s name | None -> ()

let add t name n = match t.stats with Some s -> Stats.add s name n | None -> ()

let observe t name v = match t.stats with Some s -> Stats.observe s name v | None -> ()

let heap t = t.proc.Process.heap

let in_region t oid = Oid.Tbl.mem t.region oid

let is_local t oid = Proc_id.equal (Oid.owner oid) (proc_id t)

(* Scions on a freshly reachable target stop being candidates. *)
let label_reachable t oid =
  t.label_updates <- t.label_updates + 1;
  Oid.Tbl.replace t.region oid ();
  match Oid.Tbl.find_opt t.scion_keys oid with
  | None -> ()
  | Some keys ->
      Ref_key.Set.iter
        (fun key ->
          if Ref_key.Tbl.mem t.candidates key then begin
            Ref_key.Tbl.remove t.candidates key;
            incr t "dcda.candidates.flips"
          end)
        keys

(* Eager insert path: a new edge from inside the region made [start]
   reachable — label exactly the newly reachable area with one
   bounded BFS.  Cost is the number of edges examined, reported to
   the update-cost histogram; on insert-only churn this is the only
   work the maintainer ever does. *)
let grow_from t start =
  let heap = heap t in
  let queue = Queue.create () in
  let edges = ref 0 in
  label_reachable t start;
  Queue.add start queue;
  while not (Queue.is_empty queue) do
    let oid = Queue.pop queue in
    match Heap.get heap oid with
    | None -> ()
    | Some obj ->
        Array.iter
          (function
            | None -> ()
            | Some target ->
                edges := !edges + 1;
                if is_local t target && (not (in_region t target)) && Heap.mem heap target
                then begin
                  label_reachable t target;
                  Queue.add target queue
                end)
          obj.Heap.fields
  done;
  add t "dcda.candidates.grow_edges" !edges;
  observe t "dcda.candidates.update_cost" (float_of_int !edges)

let mark_stale t =
  if not t.stale then begin
    t.stale <- true;
    incr t "dcda.candidates.cuts"
  end

(* Deferred repair: one root trace relabels everything and the scion
   index re-derives the candidate set.  This is the only O(heap) step
   and it runs only after a cut (or a crash recovery) actually
   invalidated the labels. *)
let rebuild t =
  let heap = heap t in
  let reached = (Heap.trace heap ~from:(Heap.roots heap)).Heap.local in
  Oid.Tbl.reset t.region;
  Oid.Set.iter (fun oid -> Oid.Tbl.replace t.region oid ()) reached;
  Ref_key.Tbl.reset t.candidates;
  Oid.Tbl.iter
    (fun target keys ->
      if not (Oid.Tbl.mem t.region target) then
        Ref_key.Set.iter (fun key -> Ref_key.Tbl.replace t.candidates key ()) keys)
    t.scion_keys;
  t.stale <- false;
  t.rebuilds <- t.rebuilds + 1;
  incr t "dcda.candidates.rebuilds"

let refresh t = if t.stale then rebuild t

let on_heap_event t ev =
  incr t "dcda.candidates.events";
  (* Gauntlet mutant: the maintainer goes deaf to heap mutations —
     labels freeze at their last rebuilt state, which the audit (and
     the mc scope running it as an invariant) must flag. *)
  if not (Adgc_util.Mc_mutate.enabled "drop_label_updates") then
    match ev with
    | Heap.Edge_added (holder, target) ->
        if
          (not t.stale) && is_local t target && in_region t holder
          && (not (in_region t target))
          && Heap.mem (heap t) target
        then grow_from t target
    | Heap.Edge_removed (holder, target) ->
        (* Cuts outside the region cannot shrink it; cuts inside
           might (the target may have other reachable holders, which
           only a retrace can tell). *)
        if (not t.stale) && is_local t target && in_region t holder && in_region t target
        then mark_stale t
    | Heap.Root_added oid ->
        if (not t.stale) && (not (in_region t oid)) && Heap.mem (heap t) oid then
          grow_from t oid
    | Heap.Root_removed oid -> if (not t.stale) && in_region t oid then mark_stale t
    | Heap.Removed oid ->
        (* Sweeps only remove unreachable objects, so the region
           should never contain one; a removal that does hit the
           region (a test poking the heap directly) invalidates it. *)
        if (not t.stale) && in_region t oid then mark_stale t

let index_add t key =
  let target = key.Ref_key.target in
  let keys =
    match Oid.Tbl.find_opt t.scion_keys target with
    | Some keys -> Ref_key.Set.add key keys
    | None -> Ref_key.Set.singleton key
  in
  Oid.Tbl.replace t.scion_keys target keys;
  if not (in_region t target) then Ref_key.Tbl.replace t.candidates key ()

let index_remove t key =
  let target = key.Ref_key.target in
  (match Oid.Tbl.find_opt t.scion_keys target with
  | None -> ()
  | Some keys ->
      let keys = Ref_key.Set.remove key keys in
      if Ref_key.Set.is_empty keys then Oid.Tbl.remove t.scion_keys target
      else Oid.Tbl.replace t.scion_keys target keys);
  Ref_key.Tbl.remove t.candidates key

let on_scion_change t = function
  | Scion_table.Added key -> index_add t key
  | Scion_table.Deleted key -> index_remove t key

(* Crash recovery: the revived heap and scion table are authoritative
   — reseed the index from the live table and force a rebuild, so
   labels cached across the downtime can never resurrect. *)
let on_revive t =
  Oid.Tbl.reset t.scion_keys;
  Ref_key.Tbl.reset t.candidates;
  List.iter (fun e -> index_add t e.Scion_table.key) (Scion_table.entries t.proc.Process.scions);
  t.stale <- true;
  incr t "dcda.candidates.revive_rebuilds"

let live t =
  refresh t;
  Ref_key.Tbl.fold (fun key () acc -> Ref_key.Set.add key acc) t.candidates Ref_key.Set.empty

let note_publish t =
  refresh t;
  let keys =
    Ref_key.Tbl.fold (fun key () acc -> key :: acc) t.candidates []
    |> List.sort Ref_key.compare
  in
  t.published <- keys;
  observe t "dcda.candidates.set_size" (float_of_int (List.length keys))

let published t = t.published

let audit t =
  refresh t;
  incr t "dcda.candidates.audits";
  (* Independent derivation: fresh root trace over the live heap,
     candidate status read off the live scion table — deliberately
     not through this module's own region or index. *)
  let reached = (Heap.trace (heap t) ~from:(Heap.roots (heap t))).Heap.local in
  let derived =
    List.fold_left
      (fun acc e ->
        if Oid.Set.mem e.Scion_table.key.Ref_key.target reached then acc
        else Ref_key.Set.add e.Scion_table.key acc)
      Ref_key.Set.empty
      (Scion_table.entries t.proc.Process.scions)
  in
  let mine =
    Ref_key.Tbl.fold (fun key () acc -> Ref_key.Set.add key acc) t.candidates Ref_key.Set.empty
  in
  if Ref_key.Set.equal derived mine then None
  else begin
    incr t "dcda.candidates.audit_mismatch";
    Some (Ref_key.Set.diff mine derived, Ref_key.Set.diff derived mine)
  end

let attach ?stats proc =
  let t =
    {
      proc;
      stats;
      region = Oid.Tbl.create 64;
      scion_keys = Oid.Tbl.create 16;
      candidates = Ref_key.Tbl.create 16;
      stale = true;
      published = [];
      rebuilds = 0;
      label_updates = 0;
    }
  in
  List.iter (fun e -> index_add t e.Scion_table.key) (Scion_table.entries proc.Process.scions);
  rebuild t;
  Heap.on_event proc.Process.heap (on_heap_event t);
  Scion_table.on_change proc.Process.scions (on_scion_change t);
  proc.Process.on_revive <- proc.Process.on_revive @ [ (fun () -> on_revive t) ];
  t
