open Adgc_algebra

type t = {
  id : Detection_id.t;
  concluded_at : Proc_id.t;
  concluded_time : int;
  proven : Ref_key.t list;
  hops : int;
  deleted_here : Ref_key.t list;
  lineage : Adgc_obs.Lineage.hop list;
}

let span t =
  List.fold_left
    (fun acc (key : Ref_key.t) ->
      Proc_id.Set.add key.Ref_key.src (Proc_id.Set.add (Ref_key.owner key) acc))
    Proc_id.Set.empty t.proven
  |> Proc_id.Set.cardinal

let pp ppf t =
  Format.fprintf ppf "%a concluded at %a t=%d hops=%d cycle={%a}" Detection_id.pp t.id Proc_id.pp
    t.concluded_at t.concluded_time t.hops
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Ref_key.pp)
    t.proven

let pp_lineage ppf t =
  match t.lineage with
  | [] -> Format.fprintf ppf "(no lineage: telemetry was off)"
  | hops ->
      Format.fprintf ppf "@[<v2>lineage of %a:" Detection_id.pp t.id;
      List.iter (fun h -> Format.fprintf ppf "@,%a" Adgc_obs.Lineage.pp_hop h) hops;
      Format.fprintf ppf "@]"
