(** The Distributed Cycle Detection Algorithm (one instance per
    process).

    A detector works exclusively on its process's {e published
    summary} (never the live tables), initiates detections from
    candidate scions, and processes arriving CDMs by pairwise
    combination of the carried algebra with the summary, enforcing the
    paper's safety rules (§2.2):

    + CDM addressed to a scion absent from the summary → discarded;
    + stub-side IC in the CDM differs from the scion-side IC in the
      summary → detection terminated (mutator raced the detector);
    + a derivation equal to the delivered CDM carries no new
      information → that branch stops (termination, §3.1 step 15);
    + locally reachable stubs are never followed, and a scion whose
      target is locally reachable terminates the detection (negative).

    Matching with both sets empty proves a distributed garbage cycle;
    the detector then deletes scions according to the
    {!Policy.deletion_mode} and lets the acyclic collector cascade. *)

open Adgc_algebra

type t

type candidates_mode =
  | Full_scan
      (** seed scans from every scion of the published summary — the
          oracle path *)
  | Incremental
      (** seed scans from the incrementally maintained candidate set
          ({!Candidates}), frozen at each summary publish; pinned
          byte-identical to [Full_scan] by the audit duty and the
          parity tests *)

val attach :
  ?candidates_mode:candidates_mode ->
  Adgc_rt.Runtime.t ->
  Adgc_rt.Process.t ->
  policy:Policy.t ->
  t
(** Create the instance and install its message hooks on the process.
    A {!Candidates} maintainer is attached in every mode (so stats —
    and the metrics document built from them — do not depend on the
    mode); [candidates_mode] (default [Full_scan]) only selects the
    scan source. *)

val proc_id : t -> Proc_id.t

val policy : t -> Policy.t

val mode : t -> candidates_mode

val candidates : t -> Candidates.t
(** The attached incremental candidate maintainer. *)

val audit_candidates : t -> bool
(** Run the full-scan audit ({!Candidates.audit}); [false] — plus a
    log line and the ["dcda.candidates.audit_mismatch"] counter — on
    divergence.  Scheduled as the low-frequency
    [Kernel.Maintain_candidates] duty. *)

val set_summary : t -> Adgc_snapshot.Summary.t -> unit
(** Publish a freshly taken summary (see {!Adgc_snapshot.Snapshot_store}). *)

val summary : t -> Adgc_snapshot.Summary.t option

(** {1 Driving} *)

val scan : t -> int
(** Look for candidate scions per the policy heuristic and initiate
    detections; returns how many were started.  Equivalent to
    {!scan_commit} of {!scan_prepare}. *)

val scan_prepare : t -> Adgc_snapshot.Summary.scion_info list
(** Pure phase of a scan: filter, arrange and pick this round's
    candidates from the published summary (advancing the rotating
    cursor).  Touches only this detector's own state, so prepares for
    many processes may run concurrently ({!Adgc.Engine.Par}). *)

val scan_commit : t -> Adgc_snapshot.Summary.scion_info list -> int
(** Effect phase: initiate a detection per picked candidate (CDM
    sends, stats, lineage); returns how many started.  Must run in
    canonical process order. *)

val initiate : t -> Ref_key.t -> bool
(** Force a detection from one scion (tests and the CLI use this);
    [false] when the summary rejects it (missing, or locally
    reachable target). *)

val handle_cdm : t -> Cdm.t -> unit
(** Normally invoked through the process hook. *)

(** {1 Results} *)

val reports : t -> Report.t list
(** Cycles proven at this process, oldest first. *)

val detections_started : t -> int
