open Adgc_algebra
open Adgc_rt
module Trace = Adgc_util.Trace

type event = { time : int; violation : Invariant.violation }

type t = {
  cluster : Cluster.t;
  mutable events : event list;  (** newest first *)
  mutable first_report : string option;
  mutable handle : Scheduler.recurring option;
  mutable stopped : bool;
}

let trace_tail ppf trace =
  let events = Trace.events trace in
  let n = List.length events in
  let skip = Int.max 0 (n - 40) in
  List.iteri
    (fun i e -> if i >= skip then Format.fprintf ppf "%a@," Trace.pp_event e)
    events

(* With telemetry on, every detection's hop chain goes into the
   report: a safety violation usually traces back to the detection
   that deleted the scion, and the lineage shows exactly which hops
   and guards led there. *)
let lineage_chains ppf cluster =
  let lineage = Cluster.lineage cluster in
  match Adgc_obs.Lineage.detections lineage with
  | [] -> Format.fprintf ppf "(no lineage: telemetry was off)"
  | ids ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.fprintf ppf "@,")
        (fun ppf id -> Adgc_obs.Lineage.pp_chain ppf (lineage, id))
        ppf ids

let report t violation =
  Format.asprintf
    "@[<v>oracle: first violation at t=%d: %a@,@,-- cluster --@,%a@,-- trace tail --@,%a@,-- \
     detection lineage --@,%a@]"
    (Cluster.now t.cluster) Invariant.pp violation
    (fun ppf c -> Adgc_workload.Inspect.pp_cluster ppf c)
    t.cluster
    trace_tail (Cluster.trace t.cluster)
    lineage_chains t.cluster

let record t violation =
  if t.first_report = None then t.first_report <- Some (report t violation);
  t.events <- { time = Cluster.now t.cluster; violation } :: t.events

let sweep_instantaneous t = List.iter (record t) (Invariant.check t.cluster)

let stop t =
  (* Idempotent: long bench runs tear the cluster down while the
     caller may still call [stop] on its own — the final sweep must
     run exactly once and the recurring handle must never survive. *)
  if not t.stopped then begin
    t.stopped <- true;
    (match t.handle with
    | Some h ->
        Scheduler.cancel h;
        t.handle <- None
    | None -> ());
    sweep_instantaneous t
  end

let install ?(window = 500) cluster =
  let t = { cluster; events = []; first_report = None; handle = None; stopped = false } in
  let rt = Cluster.rt cluster in
  let previous = rt.Runtime.on_pre_sweep in
  rt.Runtime.on_pre_sweep <-
    Some
      (fun proc doomed ->
        (match previous with Some f -> f proc doomed | None -> ());
        (* Every heap is still intact here, so ground truth is exact
           for the objects about to go. *)
        if not t.stopped then
          List.iter
            (fun oid -> record t (Invariant.Live_reclaimed { proc; oid }))
            (Cluster.live_among cluster doomed));
  t.handle <-
    Some (Scheduler.every (Cluster.sched cluster) ~period:window (fun () -> sweep_instantaneous t));
  Cluster.at_teardown cluster (fun () -> stop t);
  t

let stopped t = t.stopped

let events t = List.rev t.events

let safe t = t.events = []

let first_report t = t.first_report

let assert_safe t =
  match t.first_report with None -> () | Some r -> failwith r

type liveness =
  | Converged of { ticks : int; reclaimed : int }
  | Stuck of { remaining : Oid.Set.t; after : int }

let residual t baseline =
  let rt = Cluster.rt t.cluster in
  Oid.Set.filter
    (fun oid ->
      let p = Runtime.proc rt (Oid.owner oid) in
      p.Process.alive && Heap.mem p.Process.heap oid)
    baseline

let check_liveness ?(step = 2_000) ?(max_ticks = 600_000) t ~run =
  let baseline = Cluster.garbage t.cluster in
  let total = Oid.Set.cardinal baseline in
  let rec go spent =
    let remaining = residual t baseline in
    if Oid.Set.is_empty remaining then Converged { ticks = spent; reclaimed = total }
    else if spent >= max_ticks then Stuck { remaining; after = spent }
    else begin
      run step;
      go (spent + step)
    end
  in
  go 0

let pp_liveness ppf = function
  | Converged { ticks; reclaimed } ->
      Format.fprintf ppf "converged: %d garbage objects reclaimed within %d ticks" reclaimed ticks
  | Stuck { remaining; after } ->
      Format.fprintf ppf "stuck: %d garbage objects still allocated after %d ticks (%a)"
        (Oid.Set.cardinal remaining) after
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") Oid.pp)
        (Oid.Set.elements remaining)
