(** Whole-system structural invariants, checked against ground truth.

    Everything here is omniscient — it reads every heap and table
    directly and compares against {!Adgc_rt.Cluster.globally_live},
    which no protocol state can influence.  The invariants are the
    safety claims of the paper made mechanical:

    - a globally-live object never holds a reference into freed
      memory (reclamation is never observable from live objects);
    - every scion guards an object that still exists in its owner's
      heap (the GC roots the protocol maintains are never dangling);
    - invocation counters are conserved per stub/scion pair: the
      scion-side counter — defined as the owner's knowledge of the
      stub-side counter — never runs ahead of the stub it mirrors
      (see {!Adgc_rt.Scion_table.sync_ic}; stub counters are monotone
      per (process, target) even across entry recreation, which makes
      the comparison sound at any instant).

    The companion temporal invariant — no globally-live object is ever
    swept — needs the pre-sweep hook and lives in {!Oracle}. *)

open Adgc_algebra

type violation =
  | Live_reclaimed of { proc : Proc_id.t; oid : Oid.t }
      (** an LGC was about to sweep (or swept) a globally-live object *)
  | Dangling_ref of { proc : Proc_id.t; holder : Oid.t; target : Oid.t }
      (** a globally-live object's field points at freed memory *)
  | Scion_dangles of { key : Ref_key.t }
      (** a scion protects an object its owner already freed *)
  | Ic_regression of { key : Ref_key.t; stub_ic : int; scion_ic : int }
      (** the scion counter overtook the stub counter it mirrors *)

val pp : Format.formatter -> violation -> unit

val check : Adgc_rt.Cluster.t -> violation list
(** Run every instantaneous invariant over the whole cluster.  Dead
    processes are wreckage and are skipped (their state is allowed to
    dangle); references into a dead process are not judged either —
    they become judgeable again if the owner restarts. *)
