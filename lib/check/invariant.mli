(** Whole-system structural invariants, checked against ground truth.

    Everything here is omniscient — it reads every heap and table
    directly and compares against {!Adgc_rt.Cluster.globally_live},
    which no protocol state can influence.  The invariants are the
    safety claims of the paper made mechanical:

    - a globally-live object never holds a reference into freed
      memory (reclamation is never observable from live objects);
    - every scion guards an object that still exists in its owner's
      heap (the GC roots the protocol maintains are never dangling);
    - invocation counters are conserved per stub/scion pair: the
      scion-side counter — defined as the owner's knowledge of the
      stub-side counter — never runs ahead of the stub it mirrors
      (see {!Adgc_rt.Scion_table.sync_ic}; stub counters are monotone
      per (process, target) even across entry recreation, which makes
      the comparison sound at any instant).

    The companion temporal invariant — no globally-live object is ever
    swept — needs the pre-sweep hook and lives in {!Oracle}. *)

open Adgc_algebra

type violation =
  | Live_reclaimed of { proc : Proc_id.t; oid : Oid.t }
      (** an LGC was about to sweep (or swept) a globally-live object *)
  | Dangling_ref of { proc : Proc_id.t; holder : Oid.t; target : Oid.t }
      (** a globally-live object's field points at freed memory *)
  | Scion_dangles of { key : Ref_key.t }
      (** a scion protects an object its owner already freed *)
  | Ic_regression of { key : Ref_key.t; stub_ic : int; scion_ic : int }
      (** the scion counter overtook the stub counter it mirrors *)

val pp : Format.formatter -> violation -> unit

val kind : violation -> string
(** Stable machine-readable tag ("live_reclaimed", "dangling_ref",
    "scion_dangles", "ic_regression") — what counterexample traces
    record. *)

val describe : violation -> string
(** [pp] rendered to a string. *)

val check : ?live:Oid.Set.t -> Adgc_rt.Cluster.t -> violation list
(** Run every instantaneous invariant over the whole cluster.  Dead
    processes are wreckage and are skipped (their state is allowed to
    dangle); references into a dead process are not judged either —
    they become judgeable again if the owner restarts.

    [live] overrides the ground-truth live set.  The model checker
    passes a refinement of {!Adgc_rt.Cluster.globally_live} in which an
    in-flight RMI reply contributes only its result references: the
    reply's target field is routing metadata (nothing imports it on
    delivery), and treating it as a capability would flag the
    legitimate race where a proven-dead cycle's invocation reply is
    still in transit when the sweep runs. *)
