open Adgc_algebra
open Adgc_rt

type violation =
  | Live_reclaimed of { proc : Proc_id.t; oid : Oid.t }
  | Dangling_ref of { proc : Proc_id.t; holder : Oid.t; target : Oid.t }
  | Scion_dangles of { key : Ref_key.t }
  | Ic_regression of { key : Ref_key.t; stub_ic : int; scion_ic : int }

let pp ppf = function
  | Live_reclaimed { proc; oid } ->
      Format.fprintf ppf "globally-live %a reclaimed by %a's LGC" Oid.pp oid Proc_id.pp proc
  | Dangling_ref { proc; holder; target } ->
      Format.fprintf ppf "live %a at %a references freed %a" Oid.pp holder Proc_id.pp proc Oid.pp
        target
  | Scion_dangles { key } ->
      Format.fprintf ppf "scion %a guards an object its owner freed" Ref_key.pp key
  | Ic_regression { key; stub_ic; scion_ic } ->
      Format.fprintf ppf "scion %a counter %d ahead of stub counter %d" Ref_key.pp key scion_ic
        stub_ic

let kind = function
  | Live_reclaimed _ -> "live_reclaimed"
  | Dangling_ref _ -> "dangling_ref"
  | Scion_dangles _ -> "scion_dangles"
  | Ic_regression _ -> "ic_regression"

let describe v = Format.asprintf "%a" pp v

let check ?live cluster =
  let rt = Cluster.rt cluster in
  (* Membership in the globally-live set: an explicit [?live] set is
     honoured as-is (tests pin baselines that way); the default path
     uses the set-free mark-byte predicate — at millions of objects
     the windowed oracle sweep cannot afford to build the Oid.Set. *)
  let is_live =
    match live with
    | Some l -> fun oid -> Oid.Set.mem oid l
    | None -> Cluster.live_predicate cluster
  in
  let acc = ref [] in
  let push v = acc := v :: !acc in
  Array.iter
    (fun (p : Process.t) ->
      if p.Process.alive then begin
        (* Live references never dangle into freed memory.  Only
           globally-live holders are judged: a garbage object may
           legitimately outlive what it points at (sweeps are not
           atomic across processes), but nothing reachable may. *)
        Heap.iter p.Process.heap (fun obj ->
            if is_live obj.Heap.oid then
              Array.iter
                (function
                  | None -> ()
                  | Some target ->
                      let owner = Runtime.proc rt (Oid.owner target) in
                      if owner.Process.alive && not (Heap.mem owner.Process.heap target) then
                        push (Dangling_ref { proc = p.Process.id; holder = obj.Heap.oid; target }))
                obj.Heap.fields);
        (* Every scion guards an existing object, and its counter
           never overtakes the stub counter it is a copy of. *)
        List.iter
          (fun (e : Scion_table.entry) ->
            let key = e.Scion_table.key in
            if not (Heap.mem p.Process.heap key.Ref_key.target) then push (Scion_dangles { key })
            else begin
              let holder = Runtime.proc rt key.Ref_key.src in
              if holder.Process.alive then
                match Stub_table.find holder.Process.stubs key.Ref_key.target with
                | Some se when se.Stub_table.ic < e.Scion_table.ic ->
                    push
                      (Ic_regression
                         { key; stub_ic = se.Stub_table.ic; scion_ic = e.Scion_table.ic })
                | Some _ | None -> ()
            end)
          (Scion_table.entries p.Process.scions)
      end)
    rt.Runtime.procs;
  List.rev !acc
