(** Whole-system safety / liveness oracle.

    Installed over a {!Adgc_rt.Cluster.t}, the oracle watches two
    channels:

    - the pre-sweep hook, where it computes ground truth with every
      heap still intact and flags any globally-live object about to be
      reclaimed (the temporal half of safety);
    - a recurring tick-window sweep of the instantaneous
      {!Invariant}s (dangling references, dangling scions, invocation
      counter conservation).

    The first violation captures a full report — the violated
    invariant, the {!Adgc_workload.Inspect} cluster dump and the tail
    of the event trace — so a failing (seed, fault plan) pair is
    immediately replayable and diagnosable.

    After fault quiescence, {!check_liveness} asserts the complement:
    everything that is garbage once faults stop is actually reclaimed
    within a bounded amount of further simulated time. *)

open Adgc_algebra

type t

type event = { time : int; violation : Invariant.violation }

val install : ?window:int -> Adgc_rt.Cluster.t -> t
(** Start watching.  [window] (default 500 ticks) is the period of the
    instantaneous-invariant sweep.  The pre-sweep hook chains: a
    previously installed hook (e.g. {!Adgc_workload.Metrics}'s
    checker) keeps running.  The oracle registers itself with
    {!Adgc_rt.Cluster.at_teardown}, so tearing the cluster down
    detaches it automatically. *)

val stop : t -> unit
(** Cancel the recurring sweep and run one final check.  Idempotent:
    the final check runs exactly once however many times [stop] fires
    (explicitly, or via cluster teardown). *)

val stopped : t -> bool

val events : t -> event list
(** Every recorded violation, oldest first.  A persistent broken
    invariant is re-reported every window. *)

val safe : t -> bool

val first_report : t -> string option
(** The full diagnostic captured at the first violation. *)

val assert_safe : t -> unit
(** @raise Failure with {!first_report} when a violation was seen. *)

(** {1 Liveness} *)

type liveness =
  | Converged of { ticks : int; reclaimed : int }
      (** all fault-quiescence garbage gone within [ticks] further simulated time *)
  | Stuck of { remaining : Oid.Set.t; after : int }

val check_liveness : ?step:int -> ?max_ticks:int -> t -> run:(int -> unit) -> liveness
(** Capture the current garbage set (call this at fault quiescence),
    then repeatedly advance the simulation by [step] (default 2_000)
    ticks through [run] until every captured object is reclaimed or
    [max_ticks] (default 600_000) of additional time elapsed.  Objects
    on dead processes count as reclaimed (wreckage is outside the
    protocol's obligations unless the process restarts). *)

val pp_liveness : Format.formatter -> liveness -> unit
