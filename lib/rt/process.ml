open Adgc_algebra

type behavior = t -> target:Oid.t -> args:Oid.t list -> Oid.t list

and pending_call = {
  call_target : Oid.t;
  pinned : Oid.t list;
  on_reply : (Oid.t list -> unit) option;
}

and pending_notice = { notice_target : Oid.t; new_holder : Proc_id.t }

and batch_queue = { mutable queued : Msg.payload list; opened_at : int }

and relay_queue = {
  mutable rel_queued : (Proc_id.t * Proc_id.t * Msg.payload) list;
  rel_opened_at : int;
}

and t = {
  id : Proc_id.t;
  heap : Heap.t;
  stubs : Stub_table.t;
  scions : Scion_table.t;
  rng : Adgc_util.Rng.t;
  mutable alive : bool;
  mutable next_msg_seq : int;
  delivered : (int, unit) Hashtbl.t;
  delivered_high : (int, int) Hashtbl.t;
  delivered_floor : (int, int) Hashtbl.t;
  out_seqnos : (int, int) Hashtbl.t;
  mutable set_recipients : Proc_id.Set.t;
  (* Per-process protocol kernel state: every id this process mints
     and every table it consults when handling a delivery is its own.
     Nothing here is shared with any other process — a delivery or a
     duty is a transition on one process's state plus outbound
     messages, which is what lets an engine run the compute phases of
     different processes on different domains. *)
  mutable next_req_id : int;
  mutable next_notice_id : int;
  behaviors : (int, behavior) Hashtbl.t;
  pending_calls : (int, pending_call) Hashtbl.t;
  pending_notices : (int, pending_notice) Hashtbl.t;
  pending_batches : (int, batch_queue) Hashtbl.t;
  pending_relays : (int, relay_queue) Hashtbl.t;
  mutable on_cdm : (Cdm.t -> unit) option;
  mutable on_cdm_delete : (Detection_id.t -> Ref_key.t list -> unit) option;
  mutable on_bt : (src:Proc_id.t -> Btmsg.t -> unit) option;
  mutable on_hughes : (src:Proc_id.t -> Hmsg.t -> unit) option;
  mutable on_revive : (unit -> unit) list;
  mutable pstore : Pstore.t option;
}

let create ~id ~rng =
  {
    id;
    heap = Heap.create ~owner:id;
    stubs = Stub_table.create ~owner:id;
    scions = Scion_table.create ~owner:id;
    rng;
    alive = true;
    next_msg_seq = 0;
    delivered = Hashtbl.create 64;
    delivered_high = Hashtbl.create 8;
    delivered_floor = Hashtbl.create 8;
    out_seqnos = Hashtbl.create 8;
    set_recipients = Proc_id.Set.empty;
    next_req_id = 0;
    next_notice_id = 0;
    behaviors = Hashtbl.create 8;
    pending_calls = Hashtbl.create 8;
    pending_notices = Hashtbl.create 8;
    pending_batches = Hashtbl.create 8;
    pending_relays = Hashtbl.create 8;
    on_cdm = None;
    on_cdm_delete = None;
    on_bt = None;
    on_hughes = None;
    on_revive = [];
    pstore = None;
  }

let next_msg_seq t =
  let s = t.next_msg_seq in
  t.next_msg_seq <- s + 1;
  s

let fresh_req_id t =
  let id = t.next_req_id in
  t.next_req_id <- id + 1;
  id

let fresh_notice_id t =
  let id = t.next_notice_id in
  t.next_notice_id <- id + 1;
  id

(* (sender, seq) packed into one int; seqs stay far below 2^44. *)
let delivery_key ~src ~seq = (Proc_id.to_int src lsl 44) lor seq

let note_delivery t ~src ~seq =
  if seq < 0 then true
  else begin
    let s = Proc_id.to_int src in
    let below_floor =
      match Hashtbl.find_opt t.delivered_floor s with Some f -> seq < f | None -> false
    in
    if below_floor then false
    else begin
      let key = delivery_key ~src ~seq in
      if Hashtbl.mem t.delivered key then false
      else begin
        Hashtbl.add t.delivered key ();
        (match Hashtbl.find_opt t.delivered_high s with
        | Some hi when hi >= seq -> ()
        | Some _ | None -> Hashtbl.replace t.delivered_high s seq);
        true
      end
    end
  end

let delivered_count t = Hashtbl.length t.delivered

(* The duplicate-suppression table only needs individual entries for
   envelopes a stale copy of which could still arrive.  At a
   quiescence point (restart) everything more than [slack] sequence
   numbers behind a sender's high-water mark is summarised by a
   per-sender floor instead: [note_delivery] refuses any sub-floor
   sequence outright, which is sound because a never-delivered
   envelope that old is indistinguishable from a network loss — and
   every protocol already tolerates loss. *)
let prune_delivered ?(slack = 64) t =
  let removed = ref 0 in
  Hashtbl.iter
    (fun src hi ->
      let floor = hi - slack in
      if floor > 0 then
        match Hashtbl.find_opt t.delivered_floor src with
        | Some f when f >= floor -> ()
        | Some _ | None -> Hashtbl.replace t.delivered_floor src floor)
    t.delivered_high;
  let stale =
    Hashtbl.fold
      (fun key () acc ->
        let src = key lsr 44 in
        let seq = key land ((1 lsl 44) - 1) in
        match Hashtbl.find_opt t.delivered_floor src with
        | Some floor when seq < floor -> key :: acc
        | Some _ | None -> acc)
      t.delivered []
  in
  List.iter
    (fun key ->
      Hashtbl.remove t.delivered key;
      incr removed)
    stale;
  !removed

let next_out_seqno t ~dst =
  let key = Proc_id.to_int dst in
  let next = match Hashtbl.find_opt t.out_seqnos key with Some s -> s + 1 | None -> 0 in
  Hashtbl.replace t.out_seqnos key next;
  next

let pp ppf t =
  Format.fprintf ppf "%a[heap=%d stubs=%d scions=%d]" Proc_id.pp t.id (Heap.size t.heap)
    (Stub_table.size t.stubs) (Scion_table.size t.scions)
