open Adgc_algebra
module Mark = Adgc_util.Dense.Mark
module Csr = Adgc_util.Dense.Csr
module Interner = Adgc_util.Dense.Interner (Oid)

type obj = { oid : Oid.t; mutable fields : Oid.t option array; mutable payload : int }

(* Persistent dense-trace state.  The interner assigns each local
   object a dense id; [slots] maps ids back to the live object (or
   [None] once swept).  The whole record survives across traces so
   consecutive snapshots pay no allocation: the visited set is an
   epoch-marked bitset and the BFS queue a reused int array.  It is
   resynchronized lazily when the heap's generation counter says the
   object population changed. *)
type tracer = {
  mutable ids : Interner.t; (* local oid -> dense id *)
  mutable slots : obj option array; (* dense id -> live object *)
  mark : Mark.t; (* visited set over dense ids *)
  mutable queue : int array; (* BFS scratch, reused *)
  remote_ids : Interner.t; (* remote oid -> dense id (dedup only) *)
  remote_mark : Mark.t;
  adj : Csr.t;
      (* int-packed adjacency mirror of the field arrays, by dense id:
         local targets as their dense id, remote targets as
         [-(remote id) - 1].  Maintained incrementally by the mutators
         so the BFS walks flat int blocks instead of boxed option
         arrays — at millions of objects that is the difference
         between an allocation-free walk and a cache-missing one. *)
  mutable synced_gen : int; (* heap generation at last sync; -1 = never *)
  mutable rebuilds : int;
      (* bumped each time the interner is rebuilt: every dense id is
         reassigned then, so anything caching per-id state (the
         cluster's live-mark cache) keys its validity on this *)
}

(* Edge-level mutation events, fired synchronously after the heap
   state is updated.  The incremental candidate maintainer
   (Adgc_dcda.Candidates) subscribes to keep its root-region labels in
   step with the graph; the events carry exactly the reachability
   delta (edges, roots, sweeps) and nothing about payloads. *)
type event =
  | Edge_added of Oid.t * Oid.t (* holder, target *)
  | Edge_removed of Oid.t * Oid.t
  | Root_added of Oid.t
  | Root_removed of Oid.t
  | Removed of Oid.t

type t = {
  owner : Proc_id.t;
  objs : obj Oid.Tbl.t;
  root_set : unit Oid.Tbl.t;
  mutable next_serial : int;
  dirty : unit Oid.Tbl.t;
  mutable roots_dirty : bool;
  mutable generation : int; (* bumped whenever the object population changes *)
  mutable mutations : int; (* bumped on every reachability-relevant change *)
  mutable reclaim_mutations : int; (* bumped only by classes after which garbage can shrink *)
  mutable removals : int;
      (* bumped only by [remove]: the one mutation class that cannot
         {e grow} reachability, so the globally-live set is unchanged
         by it (unless the removal itself was the safety violation) *)
  mutable hooks : (event -> unit) list;
  tracer : tracer;
}

let create ~owner =
  {
    owner;
    objs = Oid.Tbl.create 64;
    root_set = Oid.Tbl.create 8;
    next_serial = 0;
    dirty = Oid.Tbl.create 16;
    roots_dirty = false;
    generation = 0;
    mutations = 0;
    reclaim_mutations = 0;
    removals = 0;
    hooks = [];
    tracer =
      {
        ids = Interner.create ();
        slots = Array.make 64 None;
        mark = Mark.create ();
        queue = Array.make 64 0;
        remote_ids = Interner.create ();
        remote_mark = Mark.create ();
        adj = Csr.create ();
        synced_gen = -1;
        rebuilds = 0;
      };
  }

let on_event t f = t.hooks <- t.hooks @ [ f ]

let fire t ev = match t.hooks with [] -> () | hooks -> List.iter (fun f -> f ev) hooks

(* ------------------------------------------------------------------ *)
(* Incremental adjacency maintenance.  Dense ids are append-only
   between interner rebuilds, so the mutators can intern on demand and
   update the packed mirror in place; [sync_tracer] rebuilds the
   mirror wholesale only when it replaces the interner (compaction). *)

(* Ids interned outside a sync can outrun [slots]/[queue]; grow them
   here so the trace path may index unconditionally.  Stale content is
   harmless — the next sync rewrites [0, n). *)
let ensure_dense_capacity tr =
  let n = Interner.size tr.ids in
  if Array.length tr.slots < n then begin
    let cap = ref (Int.max 64 (Array.length tr.slots)) in
    while n > !cap do
      cap := 2 * !cap
    done;
    let bigger = Array.make !cap None in
    Array.blit tr.slots 0 bigger 0 (Array.length tr.slots);
    tr.slots <- bigger
  end;
  if Array.length tr.queue < Array.length tr.slots then
    tr.queue <- Array.make (Array.length tr.slots) 0

let intern_local tr oid =
  let id = Interner.intern tr.ids oid in
  ensure_dense_capacity tr;
  id

let pack_target t tr oid =
  if Proc_id.equal (Oid.owner oid) t.owner then intern_local tr oid
  else -(Interner.intern tr.remote_ids oid) - 1

let adj_add t holder target =
  let tr = t.tracer in
  Csr.add tr.adj (intern_local tr holder) (pack_target t tr target)

let adj_remove t holder target =
  let tr = t.tracer in
  match Interner.find tr.ids holder with
  | None -> ()
  | Some hid -> ignore (Csr.remove tr.adj hid (pack_target t tr target) : bool)

let adj_clear t oid =
  let tr = t.tracer in
  match Interner.find tr.ids oid with None -> () | Some id -> Csr.clear_row tr.adj id

let mark_dirty t oid = Oid.Tbl.replace t.dirty oid ()

let take_dirty t =
  let dirty = Oid.Tbl.fold (fun oid () acc -> Oid.Set.add oid acc) t.dirty Oid.Set.empty in
  let roots_dirty = t.roots_dirty in
  Oid.Tbl.reset t.dirty;
  t.roots_dirty <- false;
  (dirty, roots_dirty)

let dirty_pending t = Oid.Tbl.length t.dirty

let owner t = t.owner

let size t = Oid.Tbl.length t.objs

let generation t = t.generation

let mutations t = t.mutations

let reclaim_mutations t = t.reclaim_mutations

(* Mutations that can change the globally-live set: everything except
   removals.  A (safe) sweep only deletes garbage, which by definition
   is outside the live set — so while this counter stands still the
   cluster's cached live marks remain exact, sweeps or not. *)
let live_mutations t = t.mutations - t.removals

let alloc ?(fields = 2) ?(payload = 16) t =
  let oid = Oid.make ~owner:t.owner ~serial:t.next_serial in
  t.next_serial <- t.next_serial + 1;
  let obj = { oid; fields = Array.make fields None; payload } in
  Oid.Tbl.add t.objs oid obj;
  t.generation <- t.generation + 1;
  t.mutations <- t.mutations + 1;
  obj

let get t oid = Oid.Tbl.find_opt t.objs oid

let get_exn t oid =
  match get t oid with
  | Some obj -> obj
  | None -> invalid_arg (Format.asprintf "Heap.get_exn: %a not in heap of %a" Oid.pp oid Proc_id.pp t.owner)

let mem t oid = Oid.Tbl.mem t.objs oid

let set_field t obj i v =
  if i < 0 || i >= Array.length obj.fields then
    invalid_arg (Format.asprintf "Heap.set_field: slot %d out of range for %a" i Oid.pp obj.oid);
  let old = obj.fields.(i) in
  obj.fields.(i) <- v;
  t.mutations <- t.mutations + 1;
  if v <> None then t.reclaim_mutations <- t.reclaim_mutations + 1;
  mark_dirty t obj.oid;
  (match old with Some o -> adj_remove t obj.oid o | None -> ());
  (match v with Some o -> adj_add t obj.oid o | None -> ());
  (match old with Some o -> fire t (Edge_removed (obj.oid, o)) | None -> ());
  match v with Some o -> fire t (Edge_added (obj.oid, o)) | None -> ()

let add_ref t obj oid =
  t.mutations <- t.mutations + 1;
  t.reclaim_mutations <- t.reclaim_mutations + 1;
  mark_dirty t obj.oid;
  let n = Array.length obj.fields in
  let rec find_empty i = if i >= n then None else if obj.fields.(i) = None then Some i else find_empty (i + 1) in
  let slot =
    match find_empty 0 with
    | Some i ->
        obj.fields.(i) <- Some oid;
        i
    | None ->
        let bigger = Array.make (Int.max 2 (2 * n)) None in
        Array.blit obj.fields 0 bigger 0 n;
        obj.fields <- bigger;
        obj.fields.(n) <- Some oid;
        n
  in
  adj_add t obj.oid oid;
  fire t (Edge_added (obj.oid, oid));
  slot

let remove_ref t obj oid =
  t.mutations <- t.mutations + 1;
  mark_dirty t obj.oid;
  let n = Array.length obj.fields in
  let rec go i =
    if i >= n then false
    else
      match obj.fields.(i) with
      | Some o when Oid.equal o oid ->
          obj.fields.(i) <- None;
          true
      | Some _ | None -> go (i + 1)
  in
  let found = go 0 in
  if found then begin
    adj_remove t obj.oid oid;
    fire t (Edge_removed (obj.oid, oid))
  end;
  found

let remove t oid =
  if Oid.Tbl.mem t.objs oid then begin
    Oid.Tbl.remove t.objs oid;
    adj_clear t oid;
    t.generation <- t.generation + 1;
    t.mutations <- t.mutations + 1;
    t.reclaim_mutations <- t.reclaim_mutations + 1;
    t.removals <- t.removals + 1;
    fire t (Removed oid)
  end

let add_root t oid =
  if not (Proc_id.equal (Oid.owner oid) t.owner) then
    invalid_arg (Format.asprintf "Heap.add_root: %a is not local to %a" Oid.pp oid Proc_id.pp t.owner);
  Oid.Tbl.replace t.root_set oid ();
  t.mutations <- t.mutations + 1;
  t.reclaim_mutations <- t.reclaim_mutations + 1;
  t.roots_dirty <- true;
  fire t (Root_added oid)

let remove_root t oid =
  Oid.Tbl.remove t.root_set oid;
  t.mutations <- t.mutations + 1;
  t.roots_dirty <- true;
  fire t (Root_removed oid)

let is_root t oid = Oid.Tbl.mem t.root_set oid

let roots t = Oid.Tbl.fold (fun oid () acc -> oid :: acc) t.root_set [] |> List.sort Oid.compare

let iter t f = Oid.Tbl.iter (fun _ obj -> f obj) t.objs

let fold t ~init ~f = Oid.Tbl.fold (fun _ obj acc -> f acc obj) t.objs init

(* ------------------------------------------------------------------ *)
(* Dense tracing *)

(* Bring the tracer in line with the current object population.  Noop
   (one int comparison) while the generation is unchanged, so back-to-
   back snapshots of a quiet heap reuse everything.  After mutation it
   re-interns the population and refreshes the id -> object slots; the
   interner is rebuilt from scratch only when sweeps have left it
   mostly dead weight (ids are append-only, so without compaction a
   churning heap would grow its arrays forever). *)
let sync_tracer t =
  let tr = t.tracer in
  if tr.synced_gen <> t.generation then begin
    let live = Oid.Tbl.length t.objs in
    let rebuilt = Interner.size tr.ids > (2 * live) + 64 in
    if rebuilt then begin
      tr.ids <- Interner.create ~capacity:(2 * live) ();
      tr.rebuilds <- tr.rebuilds + 1
    end;
    Oid.Tbl.iter (fun oid _ -> ignore (Interner.intern tr.ids oid : int)) t.objs;
    let n = Interner.size tr.ids in
    if Array.length tr.slots < n then begin
      let cap = ref (Int.max 64 (Array.length tr.slots)) in
      while n > !cap do
        cap := 2 * !cap
      done;
      tr.slots <- Array.make !cap None
    end;
    for i = 0 to n - 1 do
      tr.slots.(i) <- Oid.Tbl.find_opt t.objs (Interner.key tr.ids i)
    done;
    if Array.length tr.queue < n then tr.queue <- Array.make (Array.length tr.slots) 0;
    if rebuilt then begin
      (* The interner was replaced, so every dense id changed and the
         adjacency mirror keyed by the old ids is meaningless —
         rebuild it from the authoritative field arrays. *)
      Csr.reset tr.adj;
      Oid.Tbl.iter
        (fun oid obj ->
          match Interner.find tr.ids oid with
          | None -> ()
          | Some hid ->
              Array.iter
                (function None -> () | Some target -> Csr.add tr.adj hid (pack_target t tr target))
                obj.fields)
        t.objs
    end;
    tr.synced_gen <- t.generation
  end;
  tr

let dense_sync t =
  let tr = sync_tracer t in
  Interner.size tr.ids

let dense_generation t = t.tracer.rebuilds

(* Words held by the dense-trace machinery (arrays + packed adjacency)
   — the bench's peak-memory proxy, counted without forcing a sync so
   sampling it is free. *)
let dense_words t =
  let tr = t.tracer in
  Array.length tr.slots + Array.length tr.queue + Csr.words tr.adj + Mark.capacity tr.mark
  + Mark.capacity tr.remote_mark

let dense_id t oid =
  let tr = sync_tracer t in
  match Interner.find tr.ids oid with
  | Some id when tr.slots.(id) <> None -> Some id
  | Some _ | None -> None

let dense_oid t id =
  let tr = sync_tracer t in
  Interner.key tr.ids id

let dense_obj t id =
  let tr = sync_tracer t in
  if id < 0 || id >= Interner.size tr.ids then None else tr.slots.(id)

let iter_dense t f =
  let tr = sync_tracer t in
  for id = 0 to Interner.size tr.ids - 1 do
    match tr.slots.(id) with None -> () | Some obj -> f id obj
  done

type trace_result = { local : Oid.Set.t; remote : Oid.Set.t }

let trace_dense ?(reset = true) t ~from ~visit_local ~visit_remote =
  let tr = sync_tracer t in
  if reset then begin
    Mark.clear tr.mark;
    Mark.clear tr.remote_mark
  end;
  let tail = ref 0 in
  let push id =
    (* dangling or never-allocated local ids have a [None] slot *)
    if tr.slots.(id) <> None && Mark.mark tr.mark id then begin
      tr.queue.(!tail) <- id;
      incr tail
    end
  in
  (* The walk itself never touches an [Oid.t]: edges come out of the
     packed adjacency rows (local dense id, or [-(remote id) - 1]),
     so the hot loop is int reads plus bitset marks. *)
  let visit_packed v =
    if v >= 0 then push v
    else begin
      let rid = -v - 1 in
      if Mark.mark tr.remote_mark rid then visit_remote (Interner.key tr.remote_ids rid)
    end
  in
  let visit_seed oid =
    if Proc_id.equal (Oid.owner oid) t.owner then (
      match Interner.find tr.ids oid with Some id -> push id | None -> ())
    else begin
      let rid = Interner.intern tr.remote_ids oid in
      if Mark.mark tr.remote_mark rid then visit_remote oid
    end
  in
  List.iter visit_seed from;
  let head = ref 0 in
  while !head < !tail do
    let id = tr.queue.(!head) in
    incr head;
    Csr.iter tr.adj id visit_packed
  done;
  for i = 0 to !tail - 1 do
    visit_local tr.queue.(i)
  done

let trace t ~from =
  let tr = t.tracer in
  let local = ref Oid.Set.empty in
  let remote = ref Oid.Set.empty in
  trace_dense t ~from
    ~visit_local:(fun id -> local := Oid.Set.add (Interner.key tr.ids id) !local)
    ~visit_remote:(fun oid -> remote := Oid.Set.add oid !remote);
  { local = !local; remote = !remote }

let trace_all_remote t ~from = (trace t ~from).remote

(* Reference implementation of [trace] over functional sets, the
   pre-dense code path.  Kept for the tracer benchmark (old vs new)
   and the equivalence property test; not used by the runtime. *)
let trace_sets t ~from =
  let local = ref Oid.Set.empty in
  let remote = ref Oid.Set.empty in
  let queue = Queue.create () in
  let visit oid =
    if Proc_id.equal (Oid.owner oid) t.owner then begin
      if (not (Oid.Set.mem oid !local)) && Oid.Tbl.mem t.objs oid then begin
        local := Oid.Set.add oid !local;
        Queue.add oid queue
      end
    end
    else remote := Oid.Set.add oid !remote
  in
  List.iter visit from;
  while not (Queue.is_empty queue) do
    let oid = Queue.pop queue in
    match Oid.Tbl.find_opt t.objs oid with
    | None -> ()
    | Some obj ->
        Array.iter (function None -> () | Some target -> visit target) obj.fields
  done;
  { local = !local; remote = !remote }
