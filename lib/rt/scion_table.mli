(** Incoming remote references (scions) of one process.

    One entry per (remote holder, local object) pair.  Scions are the
    GC roots the local collector must honour; they are deleted when a
    [NewSetStubs] from the holder no longer lists the object — but
    only once the holder has {e acknowledged} the reference at least
    once (the [confirmed] flag), which makes the export handshake
    loss-tolerant: a scion created for an in-flight reference cannot
    be killed by a stub set that was computed before the reference
    arrived.  Per-holder sequence numbers discard reordered or
    duplicated stub sets. *)

open Adgc_algebra

type entry = private {
  key : Ref_key.t;
  mutable ic : int;
  mutable confirmed : bool;
      (** a stub set (or equivalent acknowledgement) from the holder
          has listed this target at least once *)
  mutable created_at : int;
  mutable last_invoked : int;
      (** simulated time of the last invocation delivered through this
          reference; the DCDA candidate heuristic reads it *)
}

type t

val create : owner:Proc_id.t -> t

val owner : t -> Proc_id.t

val ensure : t -> now:int -> Ref_key.t -> entry
(** Find or create.
    @raise Invalid_argument if the target is not owned by this
    process, or if the holder is this process itself. *)

val find : t -> Ref_key.t -> entry option

val mem : t -> Ref_key.t -> bool

val delete : ?tombstone:bool -> t -> Ref_key.t -> bool
(** [true] if it existed.  With [~tombstone:true] (the DCDA's proven
    cycle deletion) the key is remembered so that a later stub set
    from the holder — who has not collected its side of the cycle yet
    and therefore still advertises the reference — cannot "heal" the
    scion back into existence.  The tombstone dissolves on the first
    stub set from that holder that no longer lists the target. *)

val tombstoned : t -> Ref_key.t -> bool

val confirm : entry -> unit
(** Mark the entry as acknowledged by its holder (healing and
    bootstrap wiring; normal confirmation happens in
    {!apply_new_set}). *)

val sync_ic : entry -> int -> unit
(** Raise the invocation counter to the given stub-side value if it is
    ahead (never lowers it).

    The scion-side counter is defined as {e the owner's knowledge of
    the stub-side counter}: it only ever adopts values heard from the
    holder (piggy-backed on invocations and on stub sets), so it can
    never run ahead of the stub, in-flight invocations are never
    double-counted, and after quiescence plus one stub-set exchange
    the two ends are equal. *)

val observe_invocation : t -> now:int -> Ref_key.t -> stub_ic:int -> unit
(** An invocation carrying the holder's counter was delivered through
    this reference: adopt the counter and refresh [last_invoked].
    @raise Invalid_argument when absent. *)

val ic : t -> Ref_key.t -> int option

(** {1 Stub-set processing} *)

type apply_result = {
  deleted : Ref_key.t list;  (** scions removed by this set *)
  unknown : (Oid.t * int) list;
      (** targets (with stub-side ICs) listed by the holder for which
          no scion existed — the self-healing path for lost export
          notices; the caller recreates them for objects still alive *)
  stale : bool;  (** the set was out of order and ignored *)
}

val apply_new_set :
  ?grace:int -> t -> now:int -> src:Proc_id.t -> seqno:int -> targets:int Oid.Map.t -> apply_result
(** Listed scions are confirmed and their invocation counter raised to
    the advertised stub-side value when it is ahead (the two drift
    apart when an invocation request is lost: the stub was bumped at
    the send, the scion never saw the delivery; without
    re-synchronization the DCDA's IC check would reject that reference
    forever).

    An {e unconfirmed} scion that the set does not list is normally
    kept (the export may still be in flight).  [grace] (default
    [max_int]: never) bounds that protection: once the scion is older
    than [grace] ticks, an excluding set deletes it — sound whenever
    [grace] exceeds the maximum message lifetime plus one
    advertisement period, because by then a holder that had received
    the reference would have listed it.  This reclaims scions whose
    reference was exported but lost in transit. *)

val last_seqno : t -> Proc_id.t -> int
(** Highest stub-set sequence number accepted from that holder; -1
    initially. *)

val idle_sources : t -> now:int -> threshold:int -> Proc_id.t list
(** Holders we have scions from but no stub set (nor scion creation)
    within [threshold] ticks — candidates for a {!Msg.Scion_probe}.
    The probe/answer pair makes the protocol tolerate losing the final
    (empty) stub set a departing holder sends. *)

val touch_all_sources : t -> now:int -> unit
(** Pretend every holder just spoke: reset the silence clock of every
    source to [now].  A restarting owner calls this so its own
    downtime is not mistaken for every holder's crash by
    [failure_detection] the moment it rejoins. *)

(** {1 Queries used by the collector and the summarizer} *)

val protected_targets : t -> Oid.t list
(** Distinct local objects with at least one scion — extra GC roots
    for the LGC. *)

val entries : t -> entry list
(** Ascending key order. *)

val entries_for_target : t -> Oid.t -> entry list

val delete_from : t -> Proc_id.t -> Ref_key.t list
(** Remove every scion held by that process (crash-stop reclamation);
    returns the removed keys. *)

val drop_for_targets : t -> Oid.Set.t -> int
(** Remove every scion whose target is in the set (used when the LGC
    has swept the objects themselves, e.g. after cycle deletion);
    returns how many were dropped. *)

val size : t -> int

(** {1 Change events}

    Every scion creation funnels through {!ensure} and every removal —
    stub-set exclusion, crash-stop reclamation, sweep cleanup, cycle
    deletion — through {!delete}, so these two hooks see the complete
    membership history of the table.  The incremental candidate
    maintainer subscribes to track the scion population without
    rescanning. *)

type change = Added of Ref_key.t | Deleted of Ref_key.t

val on_change : t -> (change -> unit) -> unit
(** Register an observer, fired synchronously after the table is
    updated, in registration order.  {!delete} fires only when the key
    was present; tombstone-only deletes are silent. *)
