(** The message transport.

    Point-to-point, unordered, unreliable: each message is delivered
    after a drawn latency, dropped by the link's loss model, or
    blackholed while its link is partitioned.  All protocols above are
    required to tolerate this; the tests inject loss and partitions
    aggressively.

    Beyond the config's uniform latency / Bernoulli drop baseline, a
    {!Faults.plan} turns on adversarial delivery per link: correlated
    loss bursts (Gilbert–Elliott), message duplication (each copy gets
    its own latency, so a duplicate can overtake the original),
    bounded reordering, and scheduled partition / heal windows.  Every
    fate is drawn from the network's seeded RNG — same seed, same
    plan, same fault sequence.

    The network keeps an explicit registry of in-flight messages so
    the omniscient ground-truth checker can treat references inside
    undelivered messages as reachable. *)

open Adgc_algebra

type delivery_mode =
  | Timed  (** latency/loss drawn from the seeded RNG, delivery scheduled *)
  | Manual
      (** envelopes park in the in-flight set; an external scheduler
          (the model checker) delivers or drops each one explicitly.
          No RNG is consumed on the send path. *)

type config = {
  mutable latency_min : int;
  mutable latency_max : int;  (** inclusive; must be [>= latency_min] *)
  mutable drop_prob : float;
  mutable account_bytes : bool;
      (** when set, every sent message is actually encoded with the
          compact codec and its size recorded (slower; benches that
          report bytes enable it) *)
  mutable per_link_bytes : bool;
      (** additionally record bytes per (src, dst) link under the
          labelled counter [net.bytes.link{dst,src}]; implied by
          cluster telemetry, off otherwise *)
  mutable delivery : delivery_mode;
}

val default_config : unit -> config
(** latency 5..25 ticks, no drops, no byte accounting, timed delivery. *)

type t

val create :
  ?faults:Faults.plan ->
  sched:Scheduler.t ->
  rng:Adgc_util.Rng.t ->
  stats:Adgc_util.Stats.t ->
  config:config ->
  unit ->
  t
(** Partition / heal events of the plan are scheduled immediately;
    crash / restart events are the cluster's job. *)

val config : t -> config

val set_deliver : t -> (Msg.t -> unit) -> unit
(** Install the cluster's dispatch function. Must be called before the
    first [send]. *)

val set_transport : t -> (Msg.t -> bool) -> unit
(** Install an external transport intercept, consulted on every
    {!send} before the simulated link machinery.  Returning [true]
    claims the envelope: it leaves the simulated network entirely (no
    latency draw, no loss model, no local delivery) and becomes the
    transport's responsibility — the socket driver claims every
    envelope addressed to a process hosted by another OS process and
    ships it as a {!Adgc_serial.Net_codec} frame.  Returning [false]
    leaves the envelope on the normal simulated path (how
    self-addressed DGC traffic still gets its local delivery).
    Claimed envelopes are byte-accounted like delivered ones when
    [account_bytes] is set. *)

val send : t -> Msg.t -> unit
(** Draw latency/drop/duplication fate and schedule delivery.
    Self-addressed messages are delivered with latency too (a
    process's DGC talks to itself through the same paths). *)

val block_link : t -> Proc_id.t -> Proc_id.t -> unit
(** Drop everything subsequently sent from the first to the second
    process (one direction). *)

val unblock_link : t -> Proc_id.t -> Proc_id.t -> unit

val in_flight : t -> Msg.t list
(** Sorted by injection id (send order).  {b Tests and the model
    checker only}: this materialises and sorts the whole registry
    (O(n log n) per call), so nothing on a runtime, oracle or stats
    hot path may use it — those go through the O(1) views below
    ({!in_flight_count}, {!in_flight_on}, {!iter_in_flight_live_refs}),
    which are maintained incrementally as envelopes enter and leave
    the wire. *)

val in_flight_count : t -> int
(** O(1). *)

val in_flight_on : t -> src:Proc_id.t -> dst:Proc_id.t -> int
(** In-flight envelopes currently on one directed link.  O(1), backed
    by per-link counters. *)

val iter_in_flight_live_refs : t -> (Oid.t -> unit) -> unit
(** Iterate the distinct object references kept reachable by in-flight
    envelopes ({!Msg.live_refs} of every registered payload) — the
    oracle's message-seed set, without scanning the registry.  Each
    distinct reference is presented once regardless of how many
    envelopes carry it. *)

val in_flight_live_ref_count : t -> int
(** Number of distinct in-flight live references.  O(1). *)

(** {2 Manual delivery} — only meaningful in {!Manual} mode. *)

val pending : t -> (int * Msg.t) list
(** Parked envelopes with their injection ids, sorted by id (send
    order).  The id is the handle for [deliver_one] / [drop_one]. *)

val deliver_one : t -> int -> unit
(** Dispatch that parked envelope now.  Raises [Invalid_argument] on
    an unknown id. *)

val drop_one : t -> int -> unit
(** Discard that parked envelope (counted as a network drop). *)
