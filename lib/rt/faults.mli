(** Deterministic fault-injection plans for the network.

    A plan is pure data: per-link latency and loss models, duplication
    and reordering probabilities, and a schedule of timed partition /
    heal and crash / restart events.  The network draws every fate
    from its own seeded RNG, so a (seed, plan) pair replays the exact
    same fault sequence — a failing oracle run names the seed and is
    immediately reproducible.

    Loss can be correlated: the Gilbert–Elliott two-state channel
    alternates between a good state (rare drops) and a burst state
    (most messages die), with per-link state advanced on every send.
    Reordering is bounded: a reordered message is delayed by at most
    [reorder_skew] extra ticks.  Keep the skew well under
    {!Runtime.config}[.scion_grace] — the grace window is the
    protocol's tolerance for stale stub sets, and the fault layer must
    stay inside the envelope the protocol was designed for (the paper
    assumes loss and finite reordering, not arbitrarily old
    messages). *)

type latency =
  | Inherit_latency  (** use the network config's uniform range *)
  | Fixed of int
  | Uniform of { min : int; max : int }  (** inclusive *)

type loss =
  | Inherit_loss  (** use the network config's [drop_prob] *)
  | Bernoulli of float
  | Gilbert_elliott of {
      p_enter : float;  (** good → burst transition probability per send *)
      p_exit : float;  (** burst → good transition probability per send *)
      loss_good : float;
      loss_burst : float;
    }

type link = {
  latency : latency;
  loss : loss;
  duplicate_prob : float;  (** probability a delivered message also arrives a second time *)
  reorder_prob : float;
  reorder_skew : int;  (** extra delay (1..skew ticks) given to a reordered message *)
}

val default_link : link
(** Inherits the network config; no duplication, no reordering. *)

type event =
  | Partition of { links : (int * int) list; at : int; heal : int option }
      (** cut each listed link in both directions at [at]; restore at
          [heal] if given *)
  | Crash of { proc : int; at : int }
  | Restart of { proc : int; at : int }
      (** the process rejoins with its persistent state intact
          (crash-recovery model: heap, stubs and scions survive) *)

type plan = {
  default_link : link;
  overrides : ((int * int) * link) list;  (** per-(src, dst) exceptions *)
  link_faults_until : int option;
      (** after this tick the link model reverts to {!default_link}'s
          inherited behaviour — the fault-quiescence point the
          liveness oracle measures from.  [None]: faults never stop. *)
  events : event list;
}

val none : plan
(** The seed behaviour: config latency/drop only, no events. *)

val link_for : plan -> src:int -> dst:int -> link

val split_halves : n_procs:int -> (int * int) list
(** The links crossing a cut of [0 .. n/2-1] from the rest (one
    direction each; partitions cut both). *)

(** {1 Named profiles (the fault-matrix regimes)} *)

type profile = Loss_burst | Duplicate | Reorder | Partition_heal | Crash_restart

val profiles : (string * profile) list

val profile_of_string : string -> profile option

val profile_name : profile -> string

val plan_of_profile : ?start:int -> ?stop:int -> n_procs:int -> profile -> plan
(** Link regimes run from time 0 until [stop] (default 18_000); timed
    events (partition, crash) fire at [start] (default 4_000) and heal
    / restart at [stop].  Every profile quiesces at [stop], so
    liveness is decidable afterwards. *)
