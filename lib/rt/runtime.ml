open Adgc_algebra

type config = {
  dgc_enabled : bool;
  count_replies : bool;
  export_retry_delay : int;
  rmi_pin_timeout : int;
  rmi_marshal : bool;
  lgc_period : int;
  new_set_period : int;
  scion_grace : int;
  failure_detection : bool;
  holder_silence_limit : int;
  dgc_batching : bool;
  dgc_batch_window : int;
}

let default_config () =
  {
    dgc_enabled = true;
    count_replies = false;
    export_retry_delay = 100;
    rmi_pin_timeout = 5_000;
    rmi_marshal = false;
    lgc_period = 1_000;
    new_set_period = 1_500;
    scion_grace = 10_000;
    failure_detection = false;
    holder_silence_limit = 30_000;
    dgc_batching = false;
    dgc_batch_window = 10;
  }

type t = {
  sched : Scheduler.t;
  net : Network.t;
  procs : Process.t array;
  rng : Adgc_util.Rng.t;
  stats : Adgc_util.Stats.t;
  trace : Adgc_util.Trace.t;
  obs : Adgc_obs.Span.t;
  lineage : Adgc_obs.Lineage.t;
  mutable run_span : int;
  config : config;
  mutable on_reclaim : (Proc_id.t -> Oid.t -> unit) option;
  mutable on_pre_sweep : (Proc_id.t -> Oid.t list -> unit) option;
}

type behavior = t -> Process.t -> target:Oid.t -> args:Oid.t list -> Oid.t list

let create ~sched ~net ~procs ~rng ~stats ~trace ?obs ?lineage ~config () =
  {
    sched;
    net;
    procs;
    rng;
    stats;
    trace;
    obs = (match obs with Some o -> o | None -> Adgc_obs.Span.create ~capacity:1 ());
    lineage = (match lineage with Some l -> l | None -> Adgc_obs.Lineage.create ());
    run_span = Adgc_obs.Span.none;
    config;
    on_reclaim = None;
    on_pre_sweep = None;
  }

let proc t id = t.procs.(Proc_id.to_int id)

let proc_count t = Array.length t.procs

let now t = Scheduler.now t.sched

let log t ~topic fmt = Adgc_util.Trace.addf t.trace ~time:(now t) ~topic fmt

let send t ~src ~dst payload =
  (* Crash-stop: the dead neither speak nor listen.  Receive-side
     filtering happens again at dispatch so a crash mid-flight also
     silences delivery. *)
  let sender = proc t src in
  if sender.Process.alive && (proc t dst).Process.alive then
    let seq = Process.next_msg_seq sender in
    Network.send t.net (Msg.make ~seq ~src ~dst ~sent_at:(now t) payload)
  else Adgc_util.Stats.incr t.stats "net.msg.dead_endpoint"

(* ------------------------------------------------------------------ *)
(* DGC traffic coalescing.  Control messages (stub sets, probes, CDMs,
   proven-cycle deletions) tolerate a small extra delay, so instead of
   hitting the wire one by one they sit in the sender's per-destination
   queue for [dgc_batch_window] ticks and leave as one [Msg.Batch]
   envelope — one latency charge, one header, one network event.
   Liveness is unaffected: the window only postpones, never
   suppresses, and every protocol above already tolerates delay. *)

let flush_batch t ~src ~dst =
  let sender = proc t src in
  let key = Proc_id.to_int dst in
  match Hashtbl.find_opt sender.Process.pending_batches key with
  | None -> ()
  | Some q ->
      Hashtbl.remove sender.Process.pending_batches key;
      (match List.rev q.Process.queued with
      | [] -> ()
      | [ payload ] -> send t ~src ~dst payload
      | payloads ->
          Adgc_util.Stats.incr t.stats "net.msg.batch_flushes";
          Adgc_util.Stats.add t.stats "net.msg.batched" (List.length payloads);
          if Adgc_obs.Span.enabled t.obs then begin
            let span =
              Adgc_obs.Span.begin_span t.obs ~time:q.Process.opened_at ?parent:None
                ~proc:(Proc_id.to_int src) ~kind:Adgc_obs.Span.Batch_flush
                (Printf.sprintf "batch %s->%s" (Proc_id.to_string src) (Proc_id.to_string dst))
            in
            Adgc_obs.Span.end_span t.obs ~time:(now t)
              ~args:[ ("payloads", string_of_int (List.length payloads)) ]
              span
          end;
          send t ~src ~dst (Msg.Batch payloads))

let flush_all_batches t =
  Array.iter
    (fun (p : Process.t) ->
      let dsts = Hashtbl.fold (fun d _ acc -> d :: acc) p.Process.pending_batches [] in
      List.iter (fun d -> flush_batch t ~src:p.Process.id ~dst:(Proc_id.of_int d)) dsts)
    t.procs

let send_dgc t ~src ~dst payload =
  if not t.config.dgc_batching then send t ~src ~dst payload
  else begin
    let sender = proc t src in
    let key = Proc_id.to_int dst in
    match Hashtbl.find_opt sender.Process.pending_batches key with
    | Some q -> q.Process.queued <- payload :: q.Process.queued
    | None ->
        Hashtbl.add sender.Process.pending_batches key
          { Process.queued = [ payload ]; opened_at = now t };
        Scheduler.schedule_after t.sched ~delay:t.config.dgc_batch_window (fun () ->
            flush_batch t ~src ~dst)
  end
