open Adgc_algebra

type config = {
  dgc_enabled : bool;
  count_replies : bool;
  export_retry_delay : int;
  rmi_pin_timeout : int;
  rmi_marshal : bool;
  lgc_period : int;
  new_set_period : int;
  scion_grace : int;
  failure_detection : bool;
  holder_silence_limit : int;
  dgc_batching : bool;
  dgc_batch_window : int;
  group_size : int;
  group_relay : bool;
  group_window : int;
}

let default_config () =
  {
    dgc_enabled = true;
    count_replies = false;
    export_retry_delay = 100;
    rmi_pin_timeout = 5_000;
    rmi_marshal = false;
    lgc_period = 1_000;
    new_set_period = 1_500;
    scion_grace = 10_000;
    failure_detection = false;
    holder_silence_limit = 30_000;
    dgc_batching = false;
    dgc_batch_window = 10;
    group_size = 0;
    group_relay = false;
    group_window = 10;
  }

type t = {
  sched : Scheduler.t;
  net : Network.t;
  procs : Process.t array;
  rng : Adgc_util.Rng.t;
  stats : Adgc_util.Stats.t;
  trace : Adgc_util.Trace.t;
  obs : Adgc_obs.Span.t;
  lineage : Adgc_obs.Lineage.t;
  mutable run_span : int;
  config : config;
  mutable on_reclaim : (Proc_id.t -> Oid.t -> unit) option;
  mutable on_pre_sweep : (Proc_id.t -> Oid.t list -> unit) option;
}

type behavior = t -> Process.t -> target:Oid.t -> args:Oid.t list -> Oid.t list

let create ~sched ~net ~procs ~rng ~stats ~trace ?obs ?lineage ~config () =
  {
    sched;
    net;
    procs;
    rng;
    stats;
    trace;
    obs = (match obs with Some o -> o | None -> Adgc_obs.Span.create ~capacity:1 ());
    lineage = (match lineage with Some l -> l | None -> Adgc_obs.Lineage.create ());
    run_span = Adgc_obs.Span.none;
    config;
    on_reclaim = None;
    on_pre_sweep = None;
  }

let proc t id = t.procs.(Proc_id.to_int id)

let proc_count t = Array.length t.procs

let now t = Scheduler.now t.sched

let log t ~topic fmt = Adgc_util.Trace.addf t.trace ~time:(now t) ~topic fmt

(* ------------------------------------------------------------------ *)
(* Group overlay.  [config.group_size > 1] partitions the rank space
   into contiguous groups ({!Group}); crossing envelopes are counted
   under [net.msg.xgroup] regardless of routing, so a flat-routing run
   with the same [group_size] yields the honest baseline for the
   cut-factor comparison. *)

let same_group t a b =
  Group.same ~size:t.config.group_size (Proc_id.to_int a) (Proc_id.to_int b)

let group_of t p = Group.of_rank ~size:t.config.group_size (Proc_id.to_int p)

let group_proxy t g =
  Group.proxy ~size:t.config.group_size ~n:(Array.length t.procs)
    ~alive:(fun r -> t.procs.(r).Process.alive)
    g

(* Application RMI traffic and the export handshake are point-to-point
   by nature; everything else on a crossing envelope is DGC control
   plane (stub sets, probes, CDMs, deletions, baselines and the group
   envelopes themselves) — that is the population group relaying can
   aggregate, and the one the cut-factor acceptance measures. *)
let control_plane = function
  | Msg.Rmi_request _ | Msg.Rmi_reply _ | Msg.Export_notice _ | Msg.Export_ack _ -> false
  | _ -> true

let send t ~src ~dst payload =
  (* Crash-stop: the dead neither speak nor listen.  Receive-side
     filtering happens again at dispatch so a crash mid-flight also
     silences delivery. *)
  let sender = proc t src in
  if sender.Process.alive && (proc t dst).Process.alive then begin
    (if t.config.group_size > 1 && not (same_group t src dst) then begin
       Adgc_util.Stats.incr t.stats "net.msg.xgroup";
       if control_plane payload then Adgc_util.Stats.incr t.stats "net.msg.xgroup.dgc"
     end);
    let seq = Process.next_msg_seq sender in
    Network.send t.net (Msg.make ~seq ~src ~dst ~sent_at:(now t) payload)
  end
  else Adgc_util.Stats.incr t.stats "net.msg.dead_endpoint"

(* ------------------------------------------------------------------ *)
(* DGC traffic coalescing.  Control messages (stub sets, probes, CDMs,
   proven-cycle deletions) tolerate a small extra delay, so instead of
   hitting the wire one by one they sit in the sender's per-destination
   queue for [dgc_batch_window] ticks and leave as one [Msg.Batch]
   envelope — one latency charge, one header, one network event.
   Liveness is unaffected: the window only postpones, never
   suppresses, and every protocol above already tolerates delay. *)

let flush_batch t ~src ~dst =
  let sender = proc t src in
  let key = Proc_id.to_int dst in
  match Hashtbl.find_opt sender.Process.pending_batches key with
  | None -> ()
  | Some q ->
      Hashtbl.remove sender.Process.pending_batches key;
      (match List.rev q.Process.queued with
      | [] -> ()
      | [ payload ] -> send t ~src ~dst payload
      | payloads ->
          Adgc_util.Stats.incr t.stats "net.msg.batch_flushes";
          Adgc_util.Stats.add t.stats "net.msg.batched" (List.length payloads);
          if Adgc_obs.Span.enabled t.obs then begin
            let span =
              Adgc_obs.Span.begin_span t.obs ~time:q.Process.opened_at ?parent:None
                ~proc:(Proc_id.to_int src) ~kind:Adgc_obs.Span.Batch_flush
                (Printf.sprintf "batch %s->%s" (Proc_id.to_string src) (Proc_id.to_string dst))
            in
            Adgc_obs.Span.end_span t.obs ~time:(now t)
              ~args:[ ("payloads", string_of_int (List.length payloads)) ]
              span
          end;
          send t ~src ~dst (Msg.Batch payloads))

let flush_all_batches t =
  Array.iter
    (fun (p : Process.t) ->
      let dsts = Hashtbl.fold (fun d _ acc -> d :: acc) p.Process.pending_batches [] in
      List.iter (fun d -> flush_batch t ~src:p.Process.id ~dst:(Proc_id.of_int d)) dsts)
    t.procs

(* ------------------------------------------------------------------ *)
(* Group relaying.  With [group_relay] on, a DGC control payload bound
   for another group does not cross the boundary on its own: the
   holder queues an [(orig_src, final_dst, payload)] entry per
   destination group, and one flush window later the whole queue
   leaves as a single {!Msg.Group_relay} toward the next hop — my
   group's proxy if that is someone else, the destination group's
   proxy if I am my group's proxy.  The receiving side
   ({!Dispatch.handle_payload}) delivers entries addressed to itself,
   {!Msg.Group_fwd}s entries for its own group, and re-enqueues the
   rest, so only [Group_relay] envelopes ever cross a group boundary
   on this plane.  Proxies are elected per flush (lowest alive member,
   {!Group.proxy}), which makes crash failover automatic; a relay
   whose destination group is entirely dead is dropped with a counter
   — indistinguishable from network loss, which every protocol above
   already tolerates. *)

let flush_relay t ~src ~group =
  let sender = proc t src in
  match Hashtbl.find_opt sender.Process.pending_relays group with
  | None -> ()
  | Some q -> (
      Hashtbl.remove sender.Process.pending_relays group;
      match List.rev q.Process.rel_queued with
      | [] -> ()
      | entries ->
          if not sender.Process.alive then
            Adgc_util.Stats.add t.stats "group.relay.sender_dead" (List.length entries)
          else begin
            let me = Proc_id.to_int src in
            let my_group = Group.of_rank ~size:t.config.group_size me in
            let next_hop =
              match group_proxy t my_group with
              | Some p when p <> me -> Some p
              | _ -> group_proxy t group
            in
            match next_hop with
            | None -> Adgc_util.Stats.add t.stats "group.relay.dead_group" (List.length entries)
            | Some hop ->
                (* Failover visibility: the elected proxy is not its
                   group's nominal (lowest-rank) member, so a crash
                   rerouted this relay. *)
                let nominal =
                  Group.of_rank ~size:t.config.group_size hop * t.config.group_size
                in
                if hop <> nominal then Adgc_util.Stats.incr t.stats "group.proxy_fallbacks";
                Adgc_util.Stats.incr t.stats "group.relays";
                Adgc_util.Stats.add t.stats "group.relay_entries" (List.length entries);
                send t ~src ~dst:(Proc_id.of_int hop) (Msg.Group_relay { entries })
          end)

let flush_all_relays t =
  Array.iter
    (fun (p : Process.t) ->
      let groups = Hashtbl.fold (fun g _ acc -> g :: acc) p.Process.pending_relays [] in
      List.iter (fun g -> flush_relay t ~src:p.Process.id ~group:g) (List.sort Int.compare groups))
    t.procs

let relay_enqueue t ~src ~orig_src ~final_dst payload =
  let sender = proc t src in
  let key = group_of t final_dst in
  match Hashtbl.find_opt sender.Process.pending_relays key with
  | Some q -> q.Process.rel_queued <- (orig_src, final_dst, payload) :: q.Process.rel_queued
  | None ->
      Hashtbl.add sender.Process.pending_relays key
        { Process.rel_queued = [ (orig_src, final_dst, payload) ]; rel_opened_at = now t };
      if t.config.group_window <= 0 then
        (* Synchronous flush: no scheduler involvement, so the relay
           path also works under the model checker's frozen clock. *)
        flush_relay t ~src ~group:key
      else
        Scheduler.schedule_after t.sched ~delay:t.config.group_window (fun () ->
            flush_relay t ~src ~group:key)

let relayed t ~src ~dst =
  t.config.group_relay && t.config.group_size > 1 && not (same_group t src dst)

let send_dgc t ~src ~dst payload =
  if relayed t ~src ~dst then relay_enqueue t ~src ~orig_src:src ~final_dst:dst payload
  else if not t.config.dgc_batching then send t ~src ~dst payload
  else begin
    let sender = proc t src in
    let key = Proc_id.to_int dst in
    match Hashtbl.find_opt sender.Process.pending_batches key with
    | Some q -> q.Process.queued <- payload :: q.Process.queued
    | None ->
        Hashtbl.add sender.Process.pending_batches key
          { Process.queued = [ payload ]; opened_at = now t };
        Scheduler.schedule_after t.sched ~delay:t.config.dgc_batch_window (fun () ->
            flush_batch t ~src ~dst)
  end
