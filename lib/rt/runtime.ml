open Adgc_algebra

type config = {
  mutable dgc_enabled : bool;
  mutable count_replies : bool;
  mutable export_retry_delay : int;
  mutable rmi_pin_timeout : int;
  mutable rmi_marshal : bool;
  mutable lgc_period : int;
  mutable new_set_period : int;
  mutable scion_grace : int;
  mutable failure_detection : bool;
  mutable holder_silence_limit : int;
  mutable dgc_batching : bool;
  mutable dgc_batch_window : int;
}

let default_config () =
  {
    dgc_enabled = true;
    count_replies = false;
    export_retry_delay = 100;
    rmi_pin_timeout = 5_000;
    rmi_marshal = false;
    lgc_period = 1_000;
    new_set_period = 1_500;
    scion_grace = 10_000;
    failure_detection = false;
    holder_silence_limit = 30_000;
    dgc_batching = false;
    dgc_batch_window = 10;
  }

type batch_queue = { mutable queued : Msg.payload list; opened_at : int }

type t = {
  sched : Scheduler.t;
  net : Network.t;
  procs : Process.t array;
  rng : Adgc_util.Rng.t;
  stats : Adgc_util.Stats.t;
  trace : Adgc_util.Trace.t;
  obs : Adgc_obs.Span.t;
  lineage : Adgc_obs.Lineage.t;
  mutable run_span : int;
  config : config;
  behaviors : (int, behavior) Hashtbl.t;
  pending_calls : (int, pending_call) Hashtbl.t;
  pending_notices : (int, pending_notice) Hashtbl.t;
  pending_batches : (int * int, batch_queue) Hashtbl.t;
  mutable next_req_id : int;
  mutable next_notice_id : int;
  mutable on_reclaim : (Proc_id.t -> Oid.t -> unit) option;
  mutable on_pre_sweep : (Proc_id.t -> Oid.t list -> unit) option;
}

and behavior = t -> Process.t -> target:Oid.t -> args:Oid.t list -> Oid.t list

and pending_call = {
  caller : Proc_id.t;
  call_target : Oid.t;
  pinned : Oid.t list;
  on_reply : (Oid.t list -> unit) option;
}

and pending_notice = { exporter : Proc_id.t; notice_target : Oid.t; new_holder : Proc_id.t }

let create ~sched ~net ~procs ~rng ~stats ~trace ?obs ?lineage ~config () =
  {
    sched;
    net;
    procs;
    rng;
    stats;
    trace;
    obs = (match obs with Some o -> o | None -> Adgc_obs.Span.create ~capacity:1 ());
    lineage = (match lineage with Some l -> l | None -> Adgc_obs.Lineage.create ());
    run_span = Adgc_obs.Span.none;
    config;
    behaviors = Hashtbl.create 32;
    pending_calls = Hashtbl.create 32;
    pending_notices = Hashtbl.create 32;
    pending_batches = Hashtbl.create 16;
    next_req_id = 0;
    next_notice_id = 0;
    on_reclaim = None;
    on_pre_sweep = None;
  }

let proc t id = t.procs.(Proc_id.to_int id)

let proc_count t = Array.length t.procs

let now t = Scheduler.now t.sched

let log t ~topic fmt = Adgc_util.Trace.addf t.trace ~time:(now t) ~topic fmt

let fresh_req_id t =
  let id = t.next_req_id in
  t.next_req_id <- id + 1;
  id

let fresh_notice_id t =
  let id = t.next_notice_id in
  t.next_notice_id <- id + 1;
  id

let send t ~src ~dst payload =
  (* Crash-stop: the dead neither speak nor listen.  Receive-side
     filtering happens again at dispatch so a crash mid-flight also
     silences delivery. *)
  let sender = proc t src in
  if sender.Process.alive && (proc t dst).Process.alive then
    let seq = Process.next_msg_seq sender in
    Network.send t.net (Msg.make ~seq ~src ~dst ~sent_at:(now t) payload)
  else Adgc_util.Stats.incr t.stats "net.msg.dead_endpoint"

(* ------------------------------------------------------------------ *)
(* DGC traffic coalescing.  Control messages (stub sets, probes, CDMs,
   proven-cycle deletions) tolerate a small extra delay, so instead of
   hitting the wire one by one they sit in a per-(src, dst) queue for
   [dgc_batch_window] ticks and leave as one [Msg.Batch] envelope —
   one latency charge, one header, one network event.  Liveness is
   unaffected: the window only postpones, never suppresses, and every
   protocol above already tolerates arbitrary delay. *)

let flush_batch t ~src ~dst =
  let key = (Proc_id.to_int src, Proc_id.to_int dst) in
  match Hashtbl.find_opt t.pending_batches key with
  | None -> ()
  | Some q ->
      Hashtbl.remove t.pending_batches key;
      (match List.rev q.queued with
      | [] -> ()
      | [ payload ] -> send t ~src ~dst payload
      | payloads ->
          Adgc_util.Stats.incr t.stats "net.msg.batch_flushes";
          Adgc_util.Stats.add t.stats "net.msg.batched" (List.length payloads);
          if Adgc_obs.Span.enabled t.obs then begin
            let span =
              Adgc_obs.Span.begin_span t.obs ~time:q.opened_at ?parent:None
                ~proc:(Proc_id.to_int src) ~kind:Adgc_obs.Span.Batch_flush
                (Printf.sprintf "batch %s->%s" (Proc_id.to_string src) (Proc_id.to_string dst))
            in
            Adgc_obs.Span.end_span t.obs ~time:(now t)
              ~args:[ ("payloads", string_of_int (List.length payloads)) ]
              span
          end;
          send t ~src ~dst (Msg.Batch payloads))

let flush_all_batches t =
  let keys = Hashtbl.fold (fun (s, d) _ acc -> (s, d) :: acc) t.pending_batches [] in
  List.iter
    (fun (s, d) -> flush_batch t ~src:(Proc_id.of_int s) ~dst:(Proc_id.of_int d))
    keys

let send_dgc t ~src ~dst payload =
  if not t.config.dgc_batching then send t ~src ~dst payload
  else begin
    let key = (Proc_id.to_int src, Proc_id.to_int dst) in
    match Hashtbl.find_opt t.pending_batches key with
    | Some q -> q.queued <- payload :: q.queued
    | None ->
        Hashtbl.add t.pending_batches key { queued = [ payload ]; opened_at = now t };
        Scheduler.schedule_after t.sched ~delay:t.config.dgc_batch_window (fun () ->
            flush_batch t ~src ~dst)
  end
