(** One participant of the distributed system.

    A process bundles its heap, its DGC tables, the handler hooks
    through which pluggable components (the cycle detector, the
    back-tracing baseline) receive their traffic — and {e all} of its
    protocol kernel state: the ids it mints, the RMI calls and export
    handshakes it has in flight, the DGC batches it is coalescing.
    Nothing protocol-related is shared between processes; handling a
    delivery or running a duty is a transition on one process's state
    plus outbound messages, mirroring the paper's
    no-global-synchronization process model.  The protocol logic
    itself lives in {!Reflist}, {!Rmi} and {!Lgc}, driven through the
    shared {!Runtime} context (scheduler, network, stats — the
    engine shell, not protocol state). *)

open Adgc_algebra

type behavior = t -> target:Oid.t -> args:Oid.t list -> Oid.t list
(** The body run at the callee: receives the callee process and the
    imported argument references; returns the references to ship back
    in the reply.  {!Rmi.call} wraps the user-facing
    {!Runtime.behavior} (which also receives the runtime context)
    into this form at registration time. *)

and pending_call = {
  call_target : Oid.t;
  pinned : Oid.t list;  (** stubs pinned at the caller for this call *)
  on_reply : (Oid.t list -> unit) option;
}

and pending_notice = { notice_target : Oid.t; new_holder : Proc_id.t }

and batch_queue = { mutable queued : Msg.payload list; opened_at : int }
(** Payloads (newest first) plus the tick the queue opened, so the
    flush span covers the whole coalescing window. *)

and relay_queue = {
  mutable rel_queued : (Proc_id.t * Proc_id.t * Msg.payload) list;
      (** [(orig_src, final_dst, payload)] entries, newest first *)
  rel_opened_at : int;
}
(** Cross-group DGC traffic awaiting its {!Msg.Group_relay} flush,
    queued per destination group (see {!Runtime.send_dgc}). *)

and t = {
  id : Proc_id.t;
  heap : Heap.t;
  stubs : Stub_table.t;
  scions : Scion_table.t;
  rng : Adgc_util.Rng.t;
  mutable alive : bool;
      (** crash-stop flag: a dead process sends and receives nothing
          and performs no duties; its state is unreachable wreckage
          (until a scheduled {!Faults.Restart} revives it) *)
  mutable next_msg_seq : int;  (** next envelope sequence number (all outgoing traffic) *)
  delivered : (int, unit) Hashtbl.t;
      (** packed (sender, seq) pairs already processed — the receiver
          side of envelope-level duplicate suppression *)
  delivered_high : (int, int) Hashtbl.t;
      (** per-sender highest sequence number delivered so far *)
  delivered_floor : (int, int) Hashtbl.t;
      (** per-sender floor left by {!prune_delivered}: sequence
          numbers below it are refused without a table lookup *)
  (* Reference-listing state *)
  out_seqnos : (int, int) Hashtbl.t;  (** next NewSetStubs seqno per destination *)
  mutable set_recipients : Proc_id.Set.t;
      (** owners that received a non-empty stub set last round (they
          get one trailing, possibly empty, set) *)
  (* Protocol kernel state, all per-process *)
  mutable next_req_id : int;  (** next RMI request id minted by this caller *)
  mutable next_notice_id : int;  (** next export-notice id minted by this exporter *)
  behaviors : (int, behavior) Hashtbl.t;
      (** pending RMI bodies this process registered as caller, by
          request id (the callee fetches the body from the caller's
          table — the simulator's stand-in for shipping code) *)
  pending_calls : (int, pending_call) Hashtbl.t;  (** caller-side in-flight RMIs *)
  pending_notices : (int, pending_notice) Hashtbl.t;
      (** third-party export handshakes this process initiated,
          awaiting acknowledgement *)
  pending_batches : (int, batch_queue) Hashtbl.t;
      (** DGC payloads queued per destination awaiting their batch
          flush *)
  pending_relays : (int, relay_queue) Hashtbl.t;
      (** cross-group DGC entries queued per destination {e group}
          awaiting their relay flush (only populated when the runtime
          config enables group relaying) *)
  (* Detector hooks *)
  mutable on_cdm : (Cdm.t -> unit) option;
  mutable on_cdm_delete : (Detection_id.t -> Ref_key.t list -> unit) option;
  mutable on_bt : (src:Proc_id.t -> Btmsg.t -> unit) option;
  mutable on_hughes : (src:Proc_id.t -> Hmsg.t -> unit) option;
  mutable on_revive : (unit -> unit) list;
      (** fired (registration order) by {!Cluster.restart} when this
          process comes back from a crash; components caching derived
          views of the heap (the incremental candidate maintainer)
          rebuild from the revived state here *)
  mutable pstore : Pstore.t option;
      (** optional paged persistent store; collector duties report
          their object traversals to it (experiment E17) *)
}

val create : id:Proc_id.t -> rng:Adgc_util.Rng.t -> t

val next_out_seqno : t -> dst:Proc_id.t -> int
(** Increment and return the NewSetStubs sequence number for that
    destination. *)

val next_msg_seq : t -> int
(** Allocate the envelope sequence number for an outgoing message
    ({!Runtime.send} stamps it on every envelope). *)

val fresh_req_id : t -> int
(** Mint the next RMI request id.  Ids are unique per caller; the
    wire pairs them with the caller's identity. *)

val fresh_notice_id : t -> int
(** Mint the next export-notice id (unique per exporter). *)

val note_delivery : t -> src:Proc_id.t -> seq:int -> bool
(** [true] on first delivery of that (sender, seq) envelope; [false]
    for a replay, which the dispatcher must ignore.  Unsequenced
    envelopes ([seq < 0]) are always fresh.  Sequences below a floor
    left by {!prune_delivered} are refused as stale. *)

val delivered_count : t -> int
(** Number of individual (sender, seq) entries currently retained. *)

val prune_delivered : ?slack:int -> t -> int
(** Truncate the duplicate-suppression table: for each sender, replace
    every entry more than [slack] (default 64) sequence numbers behind
    that sender's high-water mark with a per-sender floor.  Sub-floor
    envelopes are subsequently refused outright — sound, because such
    an envelope is indistinguishable from a loss, which every protocol
    tolerates.  Returns the number of entries removed.  Called at
    quiescence points ({!Cluster.restart}); long crash/restart runs
    would otherwise grow the table without bound. *)

val pp : Format.formatter -> t -> unit
(** One-line summary: heap size, stub/scion counts. *)
