(** One participant of the distributed system.

    A process bundles its heap, its DGC tables and the handler hooks
    through which pluggable components (the cycle detector, the
    back-tracing baseline) receive their traffic.  The protocol logic
    itself lives in {!Reflist}, {!Rmi} and {!Lgc}, driven through the
    shared {!Runtime} context. *)

open Adgc_algebra

type t = {
  id : Proc_id.t;
  heap : Heap.t;
  stubs : Stub_table.t;
  scions : Scion_table.t;
  rng : Adgc_util.Rng.t;
  mutable alive : bool;
      (** crash-stop flag: a dead process sends and receives nothing
          and performs no duties; its state is unreachable wreckage
          (until a scheduled {!Faults.Restart} revives it) *)
  mutable next_msg_seq : int;  (** next envelope sequence number (all outgoing traffic) *)
  delivered : (int, unit) Hashtbl.t;
      (** packed (sender, seq) pairs already processed — the receiver
          side of envelope-level duplicate suppression *)
  delivered_high : (int, int) Hashtbl.t;
      (** per-sender highest sequence number delivered so far *)
  delivered_floor : (int, int) Hashtbl.t;
      (** per-sender floor left by {!prune_delivered}: sequence
          numbers below it are refused without a table lookup *)
  (* Reference-listing state *)
  out_seqnos : (int, int) Hashtbl.t;  (** next NewSetStubs seqno per destination *)
  mutable set_recipients : Proc_id.Set.t;
      (** owners that received a non-empty stub set last round (they
          get one trailing, possibly empty, set) *)
  (* Detector hooks *)
  mutable on_cdm : (Cdm.t -> unit) option;
  mutable on_cdm_delete : (Detection_id.t -> Ref_key.t list -> unit) option;
  mutable on_bt : (src:Proc_id.t -> Btmsg.t -> unit) option;
  mutable on_hughes : (src:Proc_id.t -> Hmsg.t -> unit) option;
  mutable pstore : Pstore.t option;
      (** optional paged persistent store; collector duties report
          their object traversals to it (experiment E17) *)
}

val create : id:Proc_id.t -> rng:Adgc_util.Rng.t -> t

val next_out_seqno : t -> dst:Proc_id.t -> int
(** Increment and return the NewSetStubs sequence number for that
    destination. *)

val next_msg_seq : t -> int
(** Allocate the envelope sequence number for an outgoing message
    ({!Runtime.send} stamps it on every envelope). *)

val note_delivery : t -> src:Proc_id.t -> seq:int -> bool
(** [true] on first delivery of that (sender, seq) envelope; [false]
    for a replay, which the dispatcher must ignore.  Unsequenced
    envelopes ([seq < 0]) are always fresh.  Sequences below a floor
    left by {!prune_delivered} are refused as stale. *)

val delivered_count : t -> int
(** Number of individual (sender, seq) entries currently retained. *)

val prune_delivered : ?slack:int -> t -> int
(** Truncate the duplicate-suppression table: for each sender, replace
    every entry more than [slack] (default 64) sequence numbers behind
    that sender's high-water mark with a per-sender floor.  Sub-floor
    envelopes are subsequently refused outright — sound, because such
    an envelope is indistinguishable from a loss, which every protocol
    tolerates.  Returns the number of entries removed.  Called at
    quiescence points ({!Cluster.restart}); long crash/restart runs
    would otherwise grow the table without bound. *)

val pp : Format.formatter -> t -> unit
(** One-line summary: heap size, stub/scion counts. *)
