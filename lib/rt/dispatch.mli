(** The kernel's delivery step: route one arriving envelope to the
    receiving process's handler.

    This is the single dispatch path in the whole system.  The timed
    simulator reaches it through {!Network.set_deliver} (installed by
    {!Cluster.create}), and the model checker reaches it through
    {!Network.deliver_one} on a manual-delivery network — there is no
    second copy of the routing logic anywhere, so the two can never
    drift.

    A delivery is a transition on the {e receiving} process's state
    (plus, for RMI requests, a read of the caller's registered body —
    the simulator's stand-in for code shipped with the request): the
    handlers mutate [at]'s tables and emit outbound messages through
    {!Runtime.send}; they never touch another process's protocol
    state. *)

val deliver : Runtime.t -> Msg.t -> unit
(** Envelope acceptance (crash-stop filtering, duplicate suppression
    via {!Process.note_delivery}) followed by payload dispatch.
    [Batch] envelopes are unpacked in queueing order under a single
    acceptance check. *)
