(** Hierarchical process groups — pure rank arithmetic.

    When {!Runtime.config.group_size} is [> 1], the flat clique is
    overlaid with contiguous groups of that many ranks; DGC control
    traffic crossing a group boundary funnels through each group's
    {e proxy} (its lowest alive member) as {!Msg.Group_relay}
    envelopes.  This module is the one place the rank→group mapping
    lives; it holds no state, so the sim and socket drivers and the
    model checker all share exactly the same topology function.

    A [size <= 1] degenerates to the flat clique: every rank is its
    own group, and — since there are no boundaries to cross — {!same}
    is vacuously true for every pair. *)

val enabled : size:int -> bool

val of_rank : size:int -> int -> int
(** Group owning a flat rank. *)

val same : size:int -> int -> int -> bool
(** Whether two ranks share a group. *)

val count : size:int -> n:int -> int
(** Number of (possibly ragged-tailed) groups over [n] ranks. *)

val members : size:int -> n:int -> int -> int list
(** Ranks of a group, ascending; [[]] for an out-of-range group. *)

val proxy : size:int -> n:int -> alive:(int -> bool) -> int -> int option
(** The group's proxy: its lowest alive rank, or [None] when the whole
    group is down.  Computed fresh from the caller's aliveness view at
    every send, so a crashed proxy fails over without any handshake. *)
