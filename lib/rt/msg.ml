open Adgc_algebra
module Sval = Adgc_serial.Sval

type payload =
  | Rmi_request of { req_id : int; target : Oid.t; args : Oid.t list; stub_ic : int }
  | Rmi_reply of { req_id : int; target : Oid.t; results : Oid.t list }
  | Export_notice of { notice_id : int; target : Oid.t; new_holder : Proc_id.t }
  | Export_ack of { notice_id : int; target : Oid.t; new_holder : Proc_id.t }
  | New_set_stubs of { seqno : int; targets : int Oid.Map.t }
  | Scion_probe
  | Cdm of Cdm.t
  | Cdm_delete of { id : Detection_id.t; scions : Ref_key.t list }
  | Bt of Btmsg.t
  | Hughes of Hmsg.t
  | Batch of payload list

type t = { src : Proc_id.t; dst : Proc_id.t; seq : int; sent_at : int; payload : payload }

let make ?(seq = -1) ~src ~dst ~sent_at payload = { src; dst; seq; sent_at; payload }

let kind = function
  | Rmi_request _ -> "rmi_request"
  | Rmi_reply _ -> "rmi_reply"
  | Export_notice _ -> "export_notice"
  | Export_ack _ -> "export_ack"
  | New_set_stubs _ -> "new_set_stubs"
  | Scion_probe -> "scion_probe"
  | Cdm _ -> "cdm"
  | Cdm_delete _ -> "cdm_delete"
  | Bt _ -> "bt"
  | Hughes _ -> "hughes"
  | Batch _ -> "batch"

let rec payload_refs = function
  | Rmi_request { target; args; _ } -> target :: args
  | Rmi_reply { target; results; _ } -> target :: results
  | Export_notice { target; _ } | Export_ack { target; _ } -> [ target ]
  | New_set_stubs _ | Scion_probe -> []
  | Cdm _ -> []
  | Cdm_delete _ -> []
  | Bt _ -> []
  | Hughes _ -> []
  | Batch payloads -> List.concat_map payload_refs payloads

let oid_sval (o : Oid.t) = Sval.List [ Sval.Int (Proc_id.to_int (Oid.owner o)); Sval.Int o.Oid.serial ]

let ref_sval (k : Ref_key.t) =
  Sval.List [ Sval.Int (Proc_id.to_int k.Ref_key.src); oid_sval k.Ref_key.target ]

let rec payload_sval = function
  | Rmi_request { req_id; target; args; stub_ic } ->
      Sval.Record
        ( "rmi_request",
          [
            ("req_id", Sval.Int req_id);
            ("target", oid_sval target);
            ("args", Sval.List (List.map oid_sval args));
            ("stub_ic", Sval.Int stub_ic);
          ] )
  | Rmi_reply { req_id; target; results } ->
      Sval.Record
        ( "rmi_reply",
          [ ("req_id", Sval.Int req_id); ("target", oid_sval target); ("results", Sval.List (List.map oid_sval results)) ] )
  | Export_notice { notice_id; target; new_holder } ->
      Sval.Record
        ( "export_notice",
          [ ("notice_id", Sval.Int notice_id); ("target", oid_sval target); ("new_holder", Sval.Int (Proc_id.to_int new_holder)) ] )
  | Export_ack { notice_id; target; new_holder } ->
      Sval.Record
        ( "export_ack",
          [ ("notice_id", Sval.Int notice_id); ("target", oid_sval target); ("new_holder", Sval.Int (Proc_id.to_int new_holder)) ] )
  | New_set_stubs { seqno; targets } ->
      let entry (o, ic) = Sval.List [ oid_sval o; Sval.Int ic ] in
      Sval.Record
        ( "new_set_stubs",
          [ ("seqno", Sval.Int seqno); ("targets", Sval.List (List.map entry (Oid.Map.bindings targets))) ] )
  | Scion_probe -> Sval.Record ("scion_probe", [])
  | Cdm cdm -> Cdm.to_sval cdm
  | Cdm_delete { id; scions } ->
      Sval.Record
        ( "cdm_delete",
          [
            ("initiator", Sval.Int (Proc_id.to_int id.Detection_id.initiator));
            ("seq", Sval.Int id.Detection_id.seq);
            ("scions", Sval.List (List.map ref_sval scions));
          ] )
  | Bt bt -> Btmsg.to_sval bt
  | Hughes h -> Hmsg.to_sval h
  | Batch payloads -> Sval.Record ("batch", [ ("msgs", Sval.List (List.map payload_sval payloads)) ])

let to_sval t =
  Sval.Record
    ( "msg",
      [
        ("src", Sval.Int (Proc_id.to_int t.src));
        ("dst", Sval.Int (Proc_id.to_int t.dst));
        ("seq", Sval.Int t.seq);
        ("sent_at", Sval.Int t.sent_at);
        ("payload", payload_sval t.payload);
      ] )

let pp ppf t =
  Format.fprintf ppf "%a->%a@%d %s" Proc_id.pp t.src Proc_id.pp t.dst t.sent_at (kind t.payload)
