open Adgc_algebra
module Sval = Adgc_serial.Sval

type payload =
  | Rmi_request of { req_id : int; target : Oid.t; args : Oid.t list; stub_ic : int }
  | Rmi_reply of { req_id : int; target : Oid.t; results : Oid.t list }
  | Export_notice of { notice_id : int; target : Oid.t; new_holder : Proc_id.t }
  | Export_ack of { notice_id : int; target : Oid.t; new_holder : Proc_id.t }
  | New_set_stubs of { seqno : int; targets : int Oid.Map.t }
  | Scion_probe
  | Cdm of Cdm.t
  | Cdm_delete of { id : Detection_id.t; scions : Ref_key.t list }
  | Bt of Btmsg.t
  | Hughes of Hmsg.t
  | Batch of payload list
  | Group_fwd of { orig_src : Proc_id.t; inner : payload }
  | Group_relay of { entries : (Proc_id.t * Proc_id.t * payload) list }

type t = { src : Proc_id.t; dst : Proc_id.t; seq : int; sent_at : int; payload : payload }

let make ?(seq = -1) ~src ~dst ~sent_at payload = { src; dst; seq; sent_at; payload }

let kind = function
  | Rmi_request _ -> "rmi_request"
  | Rmi_reply _ -> "rmi_reply"
  | Export_notice _ -> "export_notice"
  | Export_ack _ -> "export_ack"
  | New_set_stubs _ -> "new_set_stubs"
  | Scion_probe -> "scion_probe"
  | Cdm _ -> "cdm"
  | Cdm_delete _ -> "cdm_delete"
  | Bt _ -> "bt"
  | Hughes _ -> "hughes"
  | Batch _ -> "batch"
  | Group_fwd _ -> "group_fwd"
  | Group_relay _ -> "group_relay"

let rec payload_refs = function
  | Rmi_request { target; args; _ } -> target :: args
  | Rmi_reply { target; results; _ } -> target :: results
  | Export_notice { target; _ } | Export_ack { target; _ } -> [ target ]
  | New_set_stubs _ | Scion_probe -> []
  | Cdm _ -> []
  | Cdm_delete _ -> []
  | Bt _ -> []
  | Hughes _ -> []
  | Batch payloads -> List.concat_map payload_refs payloads
  | Group_fwd { inner; _ } -> payload_refs inner
  | Group_relay { entries } -> List.concat_map (fun (_, _, p) -> payload_refs p) entries

(* Ground-truth view: what a delivery can actually import.  A reply's
   [target] names the called object for bookkeeping but is never
   imported at the caller (only [results] are), so a sweep racing the
   reply envelope is legitimate — counting it live would report a
   phantom violation on every proven-dead cycle whose last invocation
   reply is still in transit. *)
let rec live_refs = function
  | Rmi_reply { results; _ } -> results
  | Batch payloads -> List.concat_map live_refs payloads
  | Group_fwd { inner; _ } -> live_refs inner
  | Group_relay { entries } -> List.concat_map (fun (_, _, p) -> live_refs p) entries
  | p -> payload_refs p

let oid_sval (o : Oid.t) = Sval.List [ Sval.Int (Proc_id.to_int (Oid.owner o)); Sval.Int o.Oid.serial ]

let ref_sval (k : Ref_key.t) =
  Sval.List [ Sval.Int (Proc_id.to_int k.Ref_key.src); oid_sval k.Ref_key.target ]

let rec payload_sval = function
  | Rmi_request { req_id; target; args; stub_ic } ->
      Sval.Record
        ( "rmi_request",
          [
            ("req_id", Sval.Int req_id);
            ("target", oid_sval target);
            ("args", Sval.List (List.map oid_sval args));
            ("stub_ic", Sval.Int stub_ic);
          ] )
  | Rmi_reply { req_id; target; results } ->
      Sval.Record
        ( "rmi_reply",
          [ ("req_id", Sval.Int req_id); ("target", oid_sval target); ("results", Sval.List (List.map oid_sval results)) ] )
  | Export_notice { notice_id; target; new_holder } ->
      Sval.Record
        ( "export_notice",
          [ ("notice_id", Sval.Int notice_id); ("target", oid_sval target); ("new_holder", Sval.Int (Proc_id.to_int new_holder)) ] )
  | Export_ack { notice_id; target; new_holder } ->
      Sval.Record
        ( "export_ack",
          [ ("notice_id", Sval.Int notice_id); ("target", oid_sval target); ("new_holder", Sval.Int (Proc_id.to_int new_holder)) ] )
  | New_set_stubs { seqno; targets } ->
      let entry (o, ic) = Sval.List [ oid_sval o; Sval.Int ic ] in
      Sval.Record
        ( "new_set_stubs",
          [ ("seqno", Sval.Int seqno); ("targets", Sval.List (List.map entry (Oid.Map.bindings targets))) ] )
  | Scion_probe -> Sval.Record ("scion_probe", [])
  | Cdm cdm -> Cdm.to_sval cdm
  | Cdm_delete { id; scions } ->
      Sval.Record
        ( "cdm_delete",
          [
            ("initiator", Sval.Int (Proc_id.to_int id.Detection_id.initiator));
            ("seq", Sval.Int id.Detection_id.seq);
            ("scions", Sval.List (List.map ref_sval scions));
          ] )
  | Bt bt -> Btmsg.to_sval bt
  | Hughes h -> Hmsg.to_sval h
  | Batch payloads -> Sval.Record ("batch", [ ("msgs", Sval.List (List.map payload_sval payloads)) ])
  | Group_fwd { orig_src; inner } ->
      Sval.Record
        ( "group_fwd",
          [ ("orig_src", Sval.Int (Proc_id.to_int orig_src)); ("inner", payload_sval inner) ] )
  | Group_relay { entries } ->
      let entry (orig_src, final_dst, p) =
        Sval.List
          [ Sval.Int (Proc_id.to_int orig_src); Sval.Int (Proc_id.to_int final_dst); payload_sval p ]
      in
      Sval.Record ("group_relay", [ ("entries", Sval.List (List.map entry entries)) ])

let to_sval t =
  Sval.Record
    ( "msg",
      [
        ("src", Sval.Int (Proc_id.to_int t.src));
        ("dst", Sval.Int (Proc_id.to_int t.dst));
        ("seq", Sval.Int t.seq);
        ("sent_at", Sval.Int t.sent_at);
        ("payload", payload_sval t.payload);
      ] )

(* Decoders.  Like {!Cdm.of_sval}, field order is part of the wire
   format: a reordered record is malformed, not merely unusual. *)

let oid_of_sval = function
  | Sval.List [ Sval.Int owner; Sval.Int serial ] when owner >= 0 && serial >= 0 ->
      Some (Oid.make ~owner:(Proc_id.of_int owner) ~serial)
  | _ -> None

let ref_of_sval = function
  | Sval.List [ Sval.Int src; oid ] when src >= 0 ->
      Option.map (fun target -> Ref_key.make ~src:(Proc_id.of_int src) ~target) (oid_of_sval oid)
  | _ -> None

let all_of f svals =
  List.fold_right
    (fun sv acc ->
      match (acc, f sv) with Some acc, Some v -> Some (v :: acc) | _ -> None)
    svals (Some [])

let rec payload_of_sval sval =
  match sval with
  | Sval.Record
      ( "rmi_request",
        [
          ("req_id", Sval.Int req_id);
          ("target", target);
          ("args", Sval.List args);
          ("stub_ic", Sval.Int stub_ic);
        ] ) -> (
      match (oid_of_sval target, all_of oid_of_sval args) with
      | Some target, Some args -> Some (Rmi_request { req_id; target; args; stub_ic })
      | _ -> None)
  | Sval.Record
      ("rmi_reply", [ ("req_id", Sval.Int req_id); ("target", target); ("results", Sval.List results) ])
    -> (
      match (oid_of_sval target, all_of oid_of_sval results) with
      | Some target, Some results -> Some (Rmi_reply { req_id; target; results })
      | _ -> None)
  | Sval.Record
      ( "export_notice",
        [ ("notice_id", Sval.Int notice_id); ("target", target); ("new_holder", Sval.Int holder) ] )
    when holder >= 0 ->
      Option.map
        (fun target ->
          Export_notice { notice_id; target; new_holder = Proc_id.of_int holder })
        (oid_of_sval target)
  | Sval.Record
      ( "export_ack",
        [ ("notice_id", Sval.Int notice_id); ("target", target); ("new_holder", Sval.Int holder) ] )
    when holder >= 0 ->
      Option.map
        (fun target -> Export_ack { notice_id; target; new_holder = Proc_id.of_int holder })
        (oid_of_sval target)
  | Sval.Record ("new_set_stubs", [ ("seqno", Sval.Int seqno); ("targets", Sval.List entries) ]) ->
      let entry = function
        | Sval.List [ oid; Sval.Int ic ] -> Option.map (fun o -> (o, ic)) (oid_of_sval oid)
        | _ -> None
      in
      Option.map
        (fun entries ->
          New_set_stubs
            {
              seqno;
              targets = List.fold_left (fun m (o, ic) -> Oid.Map.add o ic m) Oid.Map.empty entries;
            })
        (all_of entry entries)
  | Sval.Record ("scion_probe", []) -> Some Scion_probe
  | Sval.Record ("cdm", _) -> Option.map (fun cdm -> Cdm cdm) (Cdm.of_sval sval)
  | Sval.Record
      ( "cdm_delete",
        [ ("initiator", Sval.Int initiator); ("seq", Sval.Int seq); ("scions", Sval.List scions) ]
      )
    when initiator >= 0 ->
      Option.map
        (fun scions ->
          Cdm_delete
            { id = Detection_id.make ~initiator:(Proc_id.of_int initiator) ~seq; scions })
        (all_of ref_of_sval scions)
  | Sval.Record (("bt_query" | "bt_reply"), _) ->
      Option.map (fun bt -> Bt bt) (Btmsg.of_sval sval)
  | Sval.Record (("h_stamp" | "h_report" | "h_threshold"), _) ->
      Option.map (fun h -> Hughes h) (Hmsg.of_sval sval)
  | Sval.Record ("batch", [ ("msgs", Sval.List payloads) ]) ->
      (* Batches are never nested, and a decoded batch must not smuggle
         one in.  The group wrappers are likewise flat: a relayed
         payload is always a bare DGC control message. *)
      let constituent sv =
        match payload_of_sval sv with
        | Some (Batch _ | Group_fwd _ | Group_relay _) -> None
        | (Some _ | None) as r -> r
      in
      Option.map (fun payloads -> Batch payloads) (all_of constituent payloads)
  | Sval.Record ("group_fwd", [ ("orig_src", Sval.Int orig_src); ("inner", inner) ])
    when orig_src >= 0 -> (
      match payload_of_sval inner with
      | Some (Batch _ | Group_fwd _ | Group_relay _) | None -> None
      | Some inner -> Some (Group_fwd { orig_src = Proc_id.of_int orig_src; inner }))
  | Sval.Record ("group_relay", [ ("entries", Sval.List entries) ]) ->
      let entry = function
        | Sval.List [ Sval.Int orig_src; Sval.Int final_dst; p ] when orig_src >= 0 && final_dst >= 0
          -> (
            match payload_of_sval p with
            | Some (Batch _ | Group_fwd _ | Group_relay _) | None -> None
            | Some p -> Some (Proc_id.of_int orig_src, Proc_id.of_int final_dst, p))
        | _ -> None
      in
      Option.map (fun entries -> Group_relay { entries }) (all_of entry entries)
  | _ -> None

let of_sval = function
  | Sval.Record
      ( "msg",
        [
          ("src", Sval.Int src);
          ("dst", Sval.Int dst);
          ("seq", Sval.Int seq);
          ("sent_at", Sval.Int sent_at);
          ("payload", payload);
        ] )
    when src >= 0 && dst >= 0 ->
      Option.map
        (fun payload ->
          make ~seq ~src:(Proc_id.of_int src) ~dst:(Proc_id.of_int dst) ~sent_at payload)
        (payload_of_sval payload)
  | _ -> None

let pp ppf t =
  Format.fprintf ppf "%a->%a@%d %s" Proc_id.pp t.src Proc_id.pp t.dst t.sent_at (kind t.payload)
