open Adgc_algebra
module Rng = Adgc_util.Rng
module Stats = Adgc_util.Stats

type config = {
  mutable latency_min : int;
  mutable latency_max : int;
  mutable drop_prob : float;
  mutable account_bytes : bool;
}

let default_config () = { latency_min = 5; latency_max = 25; drop_prob = 0.0; account_bytes = false }

type t = {
  sched : Scheduler.t;
  rng : Rng.t;
  stats : Stats.t;
  config : config;
  mutable deliver : (Msg.t -> unit) option;
  in_flight : (int, Msg.t) Hashtbl.t;
  mutable next_id : int;
  blocked : (int * int, unit) Hashtbl.t;
}

let create ~sched ~rng ~stats ~config =
  {
    sched;
    rng;
    stats;
    config;
    deliver = None;
    in_flight = Hashtbl.create 64;
    next_id = 0;
    blocked = Hashtbl.create 4;
  }

let config t = t.config

let set_deliver t f = t.deliver <- Some f

let link_key a b = (Proc_id.to_int a, Proc_id.to_int b)

let block_link t a b = Hashtbl.replace t.blocked (link_key a b) ()

let unblock_link t a b = Hashtbl.remove t.blocked (link_key a b)

(* One encode per accounted message: the byte count feeds both the
   aggregate and the per-kind counter.  Callers invoke this only for
   messages that actually travel — a message killed by a blocked link
   or the drop probability is never encoded at all. *)
let account t (msg : Msg.t) =
  if t.config.account_bytes then begin
    let bytes = String.length (Adgc_serial.Net_codec.encode (Msg.to_sval msg)) in
    Stats.add t.stats "net.bytes" bytes;
    Stats.add t.stats ("net.bytes." ^ Msg.kind msg.payload) bytes
  end

let send t (msg : Msg.t) =
  let deliver =
    match t.deliver with
    | Some f -> f
    | None -> invalid_arg "Network.send: no dispatch function installed"
  in
  Stats.incr t.stats "net.msg.sent";
  Stats.incr t.stats ("net.msg.sent." ^ Msg.kind msg.payload);
  let dropped =
    Hashtbl.mem t.blocked (link_key msg.src msg.dst)
    || Rng.bernoulli t.rng t.config.drop_prob
  in
  if dropped then begin
    Stats.incr t.stats "net.msg.dropped";
    Stats.incr t.stats ("net.msg.dropped." ^ Msg.kind msg.payload)
  end
  else begin
    account t msg;
    let id = t.next_id in
    t.next_id <- t.next_id + 1;
    Hashtbl.replace t.in_flight id msg;
    let cfg = t.config in
    let latency =
      if cfg.latency_max <= cfg.latency_min then cfg.latency_min
      else Rng.int_in t.rng cfg.latency_min cfg.latency_max
    in
    Scheduler.schedule_after t.sched ~delay:latency (fun () ->
        Hashtbl.remove t.in_flight id;
        Stats.incr t.stats "net.msg.delivered";
        deliver msg)
  end

let in_flight t = Hashtbl.fold (fun _ m acc -> m :: acc) t.in_flight []

let in_flight_count t = Hashtbl.length t.in_flight
