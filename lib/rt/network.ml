open Adgc_algebra
module Rng = Adgc_util.Rng
module Stats = Adgc_util.Stats

type delivery_mode = Timed | Manual

type config = {
  mutable latency_min : int;
  mutable latency_max : int;
  mutable drop_prob : float;
  mutable account_bytes : bool;
  mutable per_link_bytes : bool;
  mutable delivery : delivery_mode;
}

let default_config () =
  {
    latency_min = 5;
    latency_max = 25;
    drop_prob = 0.0;
    account_bytes = false;
    per_link_bytes = false;
    delivery = Timed;
  }

type t = {
  sched : Scheduler.t;
  rng : Rng.t;
  stats : Stats.t;
  config : config;
  faults : Faults.plan;
  mutable deliver : (Msg.t -> unit) option;
  mutable transport : (Msg.t -> bool) option;
  in_flight : (int, Msg.t) Hashtbl.t;  (** keyed by injection id *)
  link_counts : (int * int, int ref) Hashtbl.t;
      (** in-flight envelopes per (src, dst) link — O(1) view of the registry *)
  live_refs : int Oid.Tbl.t;
      (** multiset of the live references carried by in-flight envelopes *)
  mutable next_id : int;
  cut : (int * int, unit) Hashtbl.t;  (** partitioned links (scheduled and manual) *)
  burst : (int * int, bool ref) Hashtbl.t;  (** Gilbert–Elliott state per link; [true] = in a burst *)
}

let link_key a b = (Proc_id.to_int a, Proc_id.to_int b)

let block_link t a b = Hashtbl.replace t.cut (link_key a b) ()

let unblock_link t a b = Hashtbl.remove t.cut (link_key a b)

let create ?(faults = Faults.none) ~sched ~rng ~stats ~config () =
  let t =
    {
      sched;
      rng;
      stats;
      config;
      faults;
      deliver = None;
      transport = None;
      in_flight = Hashtbl.create 64;
      link_counts = Hashtbl.create 64;
      live_refs = Oid.Tbl.create 64;
      next_id = 0;
      cut = Hashtbl.create 4;
      burst = Hashtbl.create 4;
    }
  in
  List.iter
    (function
      | Faults.Partition { links; at; heal } ->
          let pid = Proc_id.of_int in
          Scheduler.schedule_at sched ~time:at (fun () ->
              List.iter
                (fun (a, b) ->
                  block_link t (pid a) (pid b);
                  block_link t (pid b) (pid a))
                links;
              Stats.incr stats "net.partitions");
          Option.iter
            (fun time ->
              Scheduler.schedule_at sched ~time (fun () ->
                  List.iter
                    (fun (a, b) ->
                      unblock_link t (pid a) (pid b);
                      unblock_link t (pid b) (pid a))
                    links;
                  Stats.incr stats "net.heals"))
            heal
      | Faults.Crash _ | Faults.Restart _ -> (* the cluster schedules these *) ())
    faults.Faults.events;
  t

let config t = t.config

let set_deliver t f = t.deliver <- Some f

let set_transport t f = t.transport <- Some f

(* One encode per accounted message: the byte count feeds both the
   aggregate and the per-kind counter.  Callers invoke this only for
   messages that actually travel — a message killed by a cut link or
   the loss model is never encoded at all. *)
let account t (msg : Msg.t) =
  if t.config.account_bytes then begin
    let bytes = String.length (Adgc_serial.Net_codec.encode (Msg.to_sval msg)) in
    Stats.add t.stats "net.bytes" bytes;
    Stats.add t.stats ("net.bytes." ^ Msg.kind msg.payload) bytes;
    if t.config.per_link_bytes then
      Stats.add_l t.stats "net.bytes.link"
        ~labels:
          [
            ("src", Proc_id.to_string msg.src);
            ("dst", Proc_id.to_string msg.dst);
          ]
        bytes
  end

(* The link regime for this send: the plan's link while faults are
   active, the inherited default afterwards (fault quiescence). *)
let active_link t key =
  let quiescent =
    match t.faults.Faults.link_faults_until with
    | None -> false
    | Some until_ -> Scheduler.now t.sched >= until_
  in
  if quiescent then Faults.default_link
  else Faults.link_for t.faults ~src:(fst key) ~dst:(snd key)

let draw_loss t key (lk : Faults.link) =
  match lk.Faults.loss with
  | Faults.Inherit_loss -> Rng.bernoulli t.rng t.config.drop_prob
  | Faults.Bernoulli p -> Rng.bernoulli t.rng p
  | Faults.Gilbert_elliott { p_enter; p_exit; loss_good; loss_burst } ->
      let state =
        match Hashtbl.find_opt t.burst key with
        | Some r -> r
        | None ->
            let r = ref false in
            Hashtbl.add t.burst key r;
            r
      in
      (if !state then begin
         if Rng.bernoulli t.rng p_exit then state := false
       end
       else if Rng.bernoulli t.rng p_enter then begin
         state := true;
         Stats.incr t.stats "net.bursts"
       end);
      let lost = Rng.bernoulli t.rng (if !state then loss_burst else loss_good) in
      if lost && !state then Stats.incr t.stats "net.msg.dropped.burst";
      lost

let draw_latency t (lk : Faults.link) =
  let base =
    match lk.Faults.latency with
    | Faults.Inherit_latency ->
        let cfg = t.config in
        if cfg.latency_max <= cfg.latency_min then cfg.latency_min
        else Rng.int_in t.rng cfg.latency_min cfg.latency_max
    | Faults.Fixed d -> d
    | Faults.Uniform { min; max } -> if max <= min then min else Rng.int_in t.rng min max
  in
  if lk.Faults.reorder_prob > 0.0 && Rng.bernoulli t.rng lk.Faults.reorder_prob then begin
    Stats.incr t.stats "net.msg.reordered";
    base + Rng.int_in t.rng 1 (Int.max 1 lk.Faults.reorder_skew)
  end
  else base

(* O(1) shadow bookkeeping for the registry.  The [in_flight] table
   stays the ground truth, but neither the oracle's reachability seeds
   nor any per-tick stat may scan it: alongside it we keep a per-link
   envelope counter and a multiset of the live references the parked
   and travelling envelopes carry, maintained at the four points where
   an envelope enters or leaves the registry (timed injection, timed
   delivery, manual park, manual take). *)
let register t (msg : Msg.t) =
  (let key = link_key msg.Msg.src msg.Msg.dst in
   match Hashtbl.find_opt t.link_counts key with
   | Some r -> incr r
   | None -> Hashtbl.add t.link_counts key (ref 1));
  List.iter
    (fun o ->
      let n = match Oid.Tbl.find_opt t.live_refs o with Some n -> n | None -> 0 in
      Oid.Tbl.replace t.live_refs o (n + 1))
    (Msg.live_refs msg.Msg.payload)

let unregister t (msg : Msg.t) =
  (let key = link_key msg.Msg.src msg.Msg.dst in
   match Hashtbl.find_opt t.link_counts key with
   | Some r ->
       decr r;
       if !r = 0 then Hashtbl.remove t.link_counts key
   | None -> assert false);
  List.iter
    (fun o ->
      match Oid.Tbl.find_opt t.live_refs o with
      | Some 1 -> Oid.Tbl.remove t.live_refs o
      | Some n -> Oid.Tbl.replace t.live_refs o (n - 1)
      | None -> assert false)
    (Msg.live_refs msg.Msg.payload)

(* Put one copy of the message on the wire.  Each copy gets its own
   injection id and latency draw, so a duplicate can overtake the
   original. *)
let inject t deliver (msg : Msg.t) ~latency =
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  Hashtbl.replace t.in_flight id msg;
  register t msg;
  Scheduler.schedule_after t.sched ~delay:latency (fun () ->
      Hashtbl.remove t.in_flight id;
      unregister t msg;
      Stats.incr t.stats "net.msg.delivered";
      Stats.incr t.stats ("net.msg.delivered." ^ Msg.kind msg.payload);
      deliver msg)

let send t (msg : Msg.t) =
  let deliver =
    match t.deliver with
    | Some f -> f
    | None -> invalid_arg "Network.send: no dispatch function installed"
  in
  Stats.incr t.stats "net.msg.sent";
  Stats.incr t.stats ("net.msg.sent." ^ Msg.kind msg.payload);
  let consumed =
    match t.transport with
    | Some f ->
        (* External transport first: a socket driver claims envelopes
           bound for processes living in other OS processes.  A claimed
           envelope leaves the simulated network entirely — the
           transport does its own delivery accounting on the far end. *)
        let claimed = f msg in
        if claimed then account t msg;
        claimed
    | None -> false
  in
  if consumed then ()
  else
  let key = link_key msg.src msg.dst in
  let drop reason =
    Stats.incr t.stats "net.msg.dropped";
    Stats.incr t.stats ("net.msg.dropped." ^ Msg.kind msg.payload);
    match reason with Some r -> Stats.incr t.stats ("net.msg.dropped." ^ r) | None -> ()
  in
  if Hashtbl.mem t.cut key then drop (Some "partition")
  else
    match t.config.delivery with
    | Manual ->
        (* Explored delivery: park the envelope; an external scheduler
           (the model checker) decides its fate through [deliver_one]
           or [drop_one].  No RNG is consumed, so a manual run is a
           pure function of the choice sequence. *)
        account t msg;
        let id = t.next_id in
        t.next_id <- id + 1;
        Hashtbl.replace t.in_flight id msg;
        register t msg
    | Timed ->
        let lk = active_link t key in
        if draw_loss t key lk then drop None
        else begin
          account t msg;
          inject t deliver msg ~latency:(draw_latency t lk);
          if lk.Faults.duplicate_prob > 0.0 && Rng.bernoulli t.rng lk.Faults.duplicate_prob
          then begin
            Stats.incr t.stats "net.msg.duplicated";
            inject t deliver msg ~latency:(draw_latency t lk)
          end
        end

let in_flight t =
  Hashtbl.fold (fun id m acc -> (id, m) :: acc) t.in_flight []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  |> List.map snd

let in_flight_count t = Hashtbl.length t.in_flight

let in_flight_on t ~src ~dst =
  match Hashtbl.find_opt t.link_counts (link_key src dst) with Some r -> !r | None -> 0

let iter_in_flight_live_refs t f = Oid.Tbl.iter (fun o _ -> f o) t.live_refs

let in_flight_live_ref_count t = Oid.Tbl.length t.live_refs

let pending t =
  Hashtbl.fold (fun id m acc -> (id, m) :: acc) t.in_flight []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let take_pending t id =
  match Hashtbl.find_opt t.in_flight id with
  | None -> invalid_arg "Network: unknown pending envelope id"
  | Some msg ->
      Hashtbl.remove t.in_flight id;
      unregister t msg;
      msg

let deliver_one t id =
  let msg = take_pending t id in
  let deliver =
    match t.deliver with
    | Some f -> f
    | None -> invalid_arg "Network.deliver_one: no dispatch function installed"
  in
  Stats.incr t.stats "net.msg.delivered";
  Stats.incr t.stats ("net.msg.delivered." ^ Msg.kind msg.Msg.payload);
  deliver msg

let drop_one t id =
  let msg = take_pending t id in
  Stats.incr t.stats "net.msg.dropped";
  Stats.incr t.stats ("net.msg.dropped." ^ Msg.kind msg.Msg.payload)
