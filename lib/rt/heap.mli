(** Per-process object heap.

    Objects are records of reference slots (plus an opaque payload
    weight used by the serialization experiments).  A slot may hold a
    reference to a local object or to a remote one; remote references
    are installed only by the runtime's import machinery, which does
    the stub bookkeeping — the heap itself is policy-free.

    The heap also provides the tracing primitive shared by the local
    collector and the graph summarizer: a breadth-first walk from a
    set of starting objects that stays inside this process and
    reports, separately, the local objects visited and the remote
    references encountered.

    Tracing runs on a persistent dense index ({!Adgc_util.Dense}):
    every local object is interned once into a dense integer id, the
    visited set is an epoch-marked bitset cleared in O(1), and the BFS
    queue is a reused int array.  The index survives across traces —
    consecutive snapshots of a quiet heap allocate nothing — and is
    resynchronized lazily when the {!generation} counter shows the
    object population changed. *)

open Adgc_algebra

type obj = private {
  oid : Oid.t;
  mutable fields : Oid.t option array;
  mutable payload : int;  (** simulated data weight, in abstract bytes *)
}

type t

val create : owner:Proc_id.t -> t

val owner : t -> Proc_id.t

val size : t -> int
(** Number of objects currently allocated. *)

val generation : t -> int
(** Bumped whenever the object population changes (allocation or
    removal).  The dense tracer — and anything else caching per-object
    state — checks it to decide whether a resync is due.  Reference
    mutations do not bump it; they go through the dirty log. *)

val mutations : t -> int
(** Monotonic counter bumped by {e every} reachability-relevant change
    to this heap: allocation, removal, field writes, reference edits
    and root set changes.  An unchanged counter guarantees this heap
    contributes the same reachability as last time. *)

val reclaim_mutations : t -> int
(** Monotonic counter bumped only by the mutation classes after which
    the set of garbage objects can {e shrink}: sweeps ({!remove}) and
    reattachments ({!add_ref}, {!add_root}, {!set_field} storing a
    reference).  Allocation, reference clears and root drops can only
    create garbage, never reclaim it, so they are excluded.
    {!Adgc.Sim.run_until_clean} folds this counter — not {!mutations}
    — into its staleness signature: an unchanged signature proves a
    cached nonzero garbage count cannot have dropped to zero, which is
    the only transition the clean-poll waits for. *)

val live_mutations : t -> int
(** Monotonic counter bumped by every mutation class that can change
    the {e globally-live} set: everything {!mutations} counts except
    removals ({!remove}).  A (safe) sweep only deletes garbage, which
    is by definition outside the live set, so while this counter (and
    its peers across the cluster, plus the in-flight message counters)
    stands still, a cached live-set answer remains exact — sweeps or
    not.  {!Adgc_rt.Cluster.live_among} keys its mark cache on this,
    which is what makes per-sweep safety checking affordable at
    scale. *)

(** {1 Allocation and mutation} *)

val alloc : ?fields:int -> ?payload:int -> t -> obj
(** Fresh object with [fields] empty slots (default 2) and payload
    weight (default 16). *)

val get : t -> Oid.t -> obj option

val get_exn : t -> Oid.t -> obj
(** @raise Invalid_argument when absent. *)

val mem : t -> Oid.t -> bool

val set_field : t -> obj -> int -> Oid.t option -> unit
(** @raise Invalid_argument on an out-of-range slot. *)

val add_ref : t -> obj -> Oid.t -> int
(** Store a reference in the first empty slot, growing the object if
    none is free; returns the slot index used. *)

val remove_ref : t -> obj -> Oid.t -> bool
(** Clear the first slot holding exactly this reference; [false] if
    not found. *)

val remove : t -> Oid.t -> unit
(** Used by the collector's sweep. *)

(** {1 Roots} *)

val add_root : t -> Oid.t -> unit
(** The object must be local to this heap. *)

val remove_root : t -> Oid.t -> unit

val is_root : t -> Oid.t -> bool

val roots : t -> Oid.t list

(** {1 Traversal} *)

val iter : t -> (obj -> unit) -> unit

val fold : t -> init:'a -> f:('a -> obj -> 'a) -> 'a

(** {1 Mutation tracking}

    Every reference mutation marks the holding object dirty and root
    changes raise a flag; the incremental summarizer consumes this log
    to decide which scion regions to re-trace.  Allocation alone does
    not dirty anything (a fresh object is unreachable until linked,
    and the link marks the holder), and neither does {!remove} (the
    collector only removes objects no scion or root can reach, so no
    cached region contains them). *)

val take_dirty : t -> Oid.Set.t * bool
(** Objects whose fields changed since the last call, and whether the
    root set changed; clears the log.  Intended for a single consumer
    per heap. *)

val dirty_pending : t -> int
(** Size of the current log (diagnostics). *)

(** {1 Mutation events}

    Edge-level change notifications, orthogonal to the dirty log
    (which is a single-consumer set of {e objects} to re-trace; these
    are per-{e edge} deltas fanned out to any number of observers).
    The incremental candidate maintainer subscribes to keep its
    root-region labels in step with the graph. *)

type event =
  | Edge_added of Oid.t * Oid.t
      (** [(holder, target)] — a slot of [holder] now references [target]
          ({!add_ref}, or {!set_field} storing [Some]). *)
  | Edge_removed of Oid.t * Oid.t
      (** [(holder, target)] — a slot of [holder] dropped its reference
          to [target] ({!remove_ref} when found, or {!set_field}
          overwriting [Some]). *)
  | Root_added of Oid.t
  | Root_removed of Oid.t
  | Removed of Oid.t  (** the object was swept ({!remove}). *)

val on_event : t -> (event -> unit) -> unit
(** Register an observer, fired synchronously {e after} the heap state
    is updated, in registration order.  Observers must not mutate the
    heap. *)

type trace_result = {
  local : Oid.Set.t;  (** local objects reached (including the starts that exist) *)
  remote : Oid.Set.t;  (** remote objects referenced from reached objects *)
}

val trace : t -> from:Oid.t list -> trace_result
(** Breadth-first reachability within this heap.  Starting points that
    are remote contribute (only) to the remote set; absent local
    starting points contribute nothing.  References to local oids that
    are absent from the heap (dangling, e.g. mid-sweep) are ignored. *)

val trace_all_remote : t -> from:Oid.t list -> Oid.Set.t
(** [ (trace t ~from).remote ] — convenience. *)

val trace_sets : t -> from:Oid.t list -> trace_result
(** Reference implementation of {!trace} over functional [Oid.Set]s
    (the pre-dense code path).  Semantically identical — the property
    tests assert it — and kept only so the tracer benchmark can
    measure the old path against the new one. *)

(** {1 Dense view}

    Low-level access to the persistent dense index for hot loops that
    want to replace [Oid.Tbl] lookups with array indexing (the
    condensed summarizer).  All accessors resynchronize lazily, so
    they are always coherent with the heap; dense ids are stable while
    the heap is unmutated, which is the lifetime such loops need. *)

val dense_sync : t -> int
(** Force a resync and return the dense capacity [n]: every live
    object has an id in [0, n) (some ids in that range may be dead —
    recently swept — slots). *)

val dense_id : t -> Oid.t -> int option
(** Dense id of a {e live} local object; [None] for remote, swept or
    unknown oids. *)

val dense_generation : t -> int
(** Bumped each time the dense interner is rebuilt (compaction after
    heavy sweeping): every dense id is reassigned then.  Between two
    equal readings taken after a {!dense_sync}, ids are append-only —
    existing ids keep naming the same objects — so per-id caches
    (the cluster's live marks) remain index-valid. *)

val dense_oid : t -> int -> Oid.t
(** Oid owning a dense id.
    @raise Invalid_argument when the id was never assigned. *)

val dense_obj : t -> int -> obj option
(** Live object behind a dense id; [None] for dead slots. *)

val iter_dense : t -> (int -> obj -> unit) -> unit
(** Every live object with its dense id, in id order. *)

val trace_dense :
  ?reset:bool ->
  t ->
  from:Oid.t list ->
  visit_local:(int -> unit) ->
  visit_remote:(Oid.t -> unit) ->
  unit
(** Callback form of {!trace}: reports each reached local object (by
    dense id) and each distinct remote reference exactly once, without
    building sets.  [visit_remote] fires during the walk,
    [visit_local] once the walk is complete.

    The walk itself runs over an int-packed adjacency mirror of the
    field arrays ({!Adgc_util.Dense.Csr}, maintained incrementally by
    the mutators), so the hot loop performs no hashing and no
    allocation.

    [reset] (default [true]) clears the visited marks first.  Passing
    [false] continues the previous walk's marks: already-visited
    objects and remote refs are skipped, and [visit_local] reports
    only the objects {e newly} reached by this call — how the global
    oracle runs its cross-process fixpoint without revisiting whole
    heaps each round.  Only valid while the heap is unmutated since
    the previous call (mutation may compact the dense ids the marks
    refer to). *)

val dense_words : t -> int
(** Approximate words held by the dense-trace machinery (slot/queue
    arrays, packed adjacency, mark bitsets) — the benchmarks' peak
    memory proxy.  Does not force a resync. *)
