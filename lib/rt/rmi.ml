open Adgc_algebra
module Stats = Adgc_util.Stats

let noop_behavior _rt _p ~target:_ ~args:_ = []

(* When [rmi_marshal] is on, do the real serialization work an RMI
   implies at each end: encode the descriptor and decode it back
   (marshal at the sender, unmarshal at the receiver). *)
let marshal_work rt (msg : Msg.t) =
  if rt.Runtime.config.rmi_marshal then begin
    let encoded = Adgc_serial.Net_codec.encode (Msg.to_sval msg) in
    ignore (Adgc_serial.Net_codec.decode encoded : Adgc_serial.Sval.t)
  end

(* Caller-side transition: the pending-call table and the pins are the
   caller's own state. *)
let release_pins (p : Process.t) req_id =
  match Hashtbl.find_opt p.Process.pending_calls req_id with
  | None -> None
  | Some pending ->
      Hashtbl.remove p.Process.pending_calls req_id;
      List.iter (Stub_table.unpin p.Process.stubs) pending.Process.pinned;
      Some pending

let call rt ~src ~target ?(args = []) ?(behavior = noop_behavior) ?on_reply () =
  let p = Runtime.proc rt src in
  if Proc_id.equal (Oid.owner target) src then
    invalid_arg (Format.asprintf "Rmi.call: %a is local to %a" Oid.pp target Proc_id.pp src);
  if rt.Runtime.config.dgc_enabled && not (Stub_table.mem p.Process.stubs target) then
    invalid_arg
      (Format.asprintf "Rmi.call: %a holds no stub for %a" Proc_id.pp src Oid.pp target);
  Stats.incr rt.Runtime.stats "rmi.calls";
  let dgc = rt.Runtime.config.dgc_enabled in
  (* Bump the stub-side counter and piggy-back the new value on the
     request, as the paper prescribes (§3.2). *)
  let stub_ic = if dgc then Stub_table.bump_ic p.Process.stubs target else 0 in
  (* Pin everything the call references until the reply (or timeout). *)
  let now = Runtime.now rt in
  let remote_args = List.filter (fun a -> not (Proc_id.equal (Oid.owner a) src)) args in
  let pinned = if dgc then target :: remote_args else [] in
  List.iter (Stub_table.pin p.Process.stubs ~now) pinned;
  if dgc then List.iter (fun a -> Reflist.export_ref rt ~from_:p ~to_:(Oid.owner target) a) args;
  (* Request ids are minted per caller; the wire pairs them with the
     caller's identity, so distinct callers reusing the same number
     can never collide. *)
  let req_id = Process.fresh_req_id p in
  Hashtbl.replace p.Process.behaviors req_id (fun at ~target ~args -> behavior rt at ~target ~args);
  Hashtbl.replace p.Process.pending_calls req_id
    { Process.call_target = target; pinned; on_reply };
  (* The marshalling work Table 1's base cost consists of. *)
  marshal_work rt
    (Msg.make ~src ~dst:(Oid.owner target) ~sent_at:now
       (Msg.Rmi_request { req_id; target; args; stub_ic }));
  Scheduler.schedule_after rt.Runtime.sched ~delay:rt.Runtime.config.rmi_pin_timeout (fun () ->
      match release_pins p req_id with
      | Some _ -> Stats.incr rt.Runtime.stats "rmi.pin_timeouts"
      | None -> ());
  Runtime.send rt ~src ~dst:(Oid.owner target) (Msg.Rmi_request { req_id; target; args; stub_ic })

let handle_request rt ~(at : Process.t) ~src ~req_id ~target ~args ~stub_ic =
  (* Unmarshal the incoming request. *)
  marshal_work rt
    (Msg.make ~src ~dst:at.Process.id ~sent_at:(Runtime.now rt)
       (Msg.Rmi_request { req_id; target; args; stub_ic }));
  (* The body travels with the request in a real platform; the
     simulator's stand-in fetches it from the caller's table. *)
  let caller = Runtime.proc rt src in
  let behavior =
    match Hashtbl.find_opt caller.Process.behaviors req_id with
    | Some b ->
        Hashtbl.remove caller.Process.behaviors req_id;
        b
    | None -> fun _p ~target:_ ~args:_ -> []
  in
  if not (Heap.mem at.Process.heap target) then begin
    (* The target was collected before the request arrived: an
       application-level dangling call.  Reply empty so the caller
       releases its pins. *)
    Stats.incr rt.Runtime.stats "rmi.dangling";
    Runtime.send rt ~src:at.Process.id ~dst:src (Msg.Rmi_reply { req_id; target; results = [] })
  end
  else begin
    Stats.incr rt.Runtime.stats "rmi.served";
    let dgc = rt.Runtime.config.dgc_enabled in
    (* Adopt the piggy-backed counter on the scion side of the
       traversed reference; heal the scion first if an export notice
       was lost. *)
    if dgc then begin
      let key = Ref_key.make ~src ~target in
      ignore (Scion_table.ensure at.Process.scions ~now:(Runtime.now rt) key : Scion_table.entry);
      Scion_table.observe_invocation at.Process.scions ~now:(Runtime.now rt) key ~stub_ic;
      List.iter (fun a -> Reflist.import_ref rt ~at a) args
    end;
    let results = behavior at ~target ~args in
    if dgc then List.iter (fun r -> Reflist.export_ref rt ~from_:at ~to_:src r) results;
    (* Marshal the outgoing reply. *)
    marshal_work rt
      (Msg.make ~src:at.Process.id ~dst:src ~sent_at:(Runtime.now rt)
         (Msg.Rmi_reply { req_id; target; results }));
    Runtime.send rt ~src:at.Process.id ~dst:src (Msg.Rmi_reply { req_id; target; results })
  end

let handle_reply rt ~(at : Process.t) ~req_id ~target ~results =
  Stats.incr rt.Runtime.stats "rmi.replies";
  marshal_work rt
    (Msg.make ~src:at.Process.id ~dst:at.Process.id ~sent_at:(Runtime.now rt)
       (Msg.Rmi_reply { req_id; target; results }));
  let pending = release_pins at req_id in
  if rt.Runtime.config.dgc_enabled then begin
    (* count_replies: the reply is an invocation through the same
       reference in the other direction — bump the stub side here; the
       owner learns the new value from the next request or stub set. *)
    if rt.Runtime.config.count_replies && Stub_table.mem at.Process.stubs target then
      ignore (Stub_table.bump_ic at.Process.stubs target : int);
    List.iter (fun r -> Reflist.import_ref rt ~at r) results
  end;
  match pending with
  | Some { Process.on_reply = Some k; _ } -> k results
  | Some { Process.on_reply = None; _ } | None -> ()
