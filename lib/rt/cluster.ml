open Adgc_algebra
module Rng = Adgc_util.Rng
module Stats = Adgc_util.Stats
module Trace = Adgc_util.Trace

module Span = Adgc_obs.Span
module Lineage = Adgc_obs.Lineage

type t = {
  rt : Runtime.t;
  mutable gc_handles : Scheduler.recurring list;
  mutable teardown_hooks : (unit -> unit) list;
  mutable torn_down : bool;
}

let crash_proc rt i =
  let p = Runtime.proc rt (Proc_id.of_int i) in
  if p.Process.alive then begin
    p.Process.alive <- false;
    Stats.incr rt.Runtime.stats "cluster.crashes";
    Runtime.log rt ~topic:"cluster" "%a crashed" Proc_id.pp p.Process.id
  end

let restart_proc rt i =
  let p = Runtime.proc rt (Proc_id.of_int i) in
  if not p.Process.alive then begin
    p.Process.alive <- true;
    (* Crash-recovery model: heap, stubs and scions survived in the
       persistent store.  Reset the holder-silence clocks so the
       downtime is not immediately read as every holder's crash by
       failure detection; the periodic duties (guarded per firing on
       [alive]) resume by themselves. *)
    Scion_table.touch_all_sources p.Process.scions ~now:(Scheduler.now rt.Runtime.sched);
    (* Restart is a quiescence point for this process's inbound links
       (nothing was accepted while down), so the duplicate-suppression
       table can be truncated to per-sender floors here; unbounded
       crash/restart runs otherwise grow it forever. *)
    let pruned = Process.prune_delivered p in
    if pruned > 0 then Stats.add rt.Runtime.stats "cluster.delivered_pruned" pruned;
    Stats.incr rt.Runtime.stats "cluster.restarts";
    (* Components caching derived views of this heap (the incremental
       candidate maintainer) rebuild from the revived state; the crash
       may have interrupted them mid-update. *)
    List.iter (fun hook -> hook ()) p.Process.on_revive;
    Runtime.log rt ~topic:"cluster" "%a restarted" Proc_id.pp p.Process.id
  end

let create ?(seed = 42) ?config ?net_config ?(faults = Faults.none) ?trace_capacity
    ?(telemetry = false) ?span_capacity ~n () =
  if n <= 0 then invalid_arg "Cluster.create: need at least one process";
  let config = match config with Some c -> c | None -> Runtime.default_config () in
  let net_config = match net_config with Some c -> c | None -> Network.default_config () in
  if telemetry then net_config.Network.per_link_bytes <- true;
  let rng = Rng.create seed in
  let sched = Scheduler.create () in
  let stats = Stats.create () in
  let trace = Trace.create ?capacity:trace_capacity () in
  let obs = Span.create ?capacity:span_capacity () in
  let lineage = Lineage.create () in
  Span.set_enabled obs telemetry;
  Lineage.set_enabled lineage telemetry;
  let net = Network.create ~faults ~sched ~rng:(Rng.split rng) ~stats ~config:net_config () in
  let procs =
    Array.init n (fun i -> Process.create ~id:(Proc_id.of_int i) ~rng:(Rng.split rng))
  in
  let rt = Runtime.create ~sched ~net ~procs ~rng ~stats ~trace ~obs ~lineage ~config () in
  rt.Runtime.run_span <- Span.begin_span obs ~time:0 ~kind:Span.Run "run";
  Network.set_deliver net (Dispatch.deliver rt);
  List.iter
    (function
      | Faults.Crash { proc; at } -> Scheduler.schedule_at sched ~time:at (fun () -> crash_proc rt proc)
      | Faults.Restart { proc; at } ->
          Scheduler.schedule_at sched ~time:at (fun () -> restart_proc rt proc)
      | Faults.Partition _ -> (* the network schedules these *) ())
    faults.Faults.events;
  { rt; gc_handles = []; teardown_hooks = []; torn_down = false }

let rt t = t.rt

let sched t = t.rt.Runtime.sched

let net t = t.rt.Runtime.net

let stats t = t.rt.Runtime.stats

let trace t = t.rt.Runtime.trace

let obs t = t.rt.Runtime.obs

let lineage t = t.rt.Runtime.lineage

let proc t i = t.rt.Runtime.procs.(i)

let proc_id _t i = Proc_id.of_int i

let n_procs t = Array.length t.rt.Runtime.procs

let now t = Scheduler.now (sched t)

let run_for t delay = Scheduler.run_for (sched t) ~delay

let run_until t ~time = Scheduler.run_until (sched t) ~time

let drain ?limit t = Scheduler.drain ?limit (sched t)

let start_gc t =
  if t.gc_handles = [] then begin
    let cfg = t.rt.Runtime.config in
    let handles = ref [] in
    Array.iteri
      (fun i p ->
        (* Phase-stagger the duties so processes do not collect in
           lockstep — closer to independent real processes. *)
        let lgc_phase = 1 + (i * cfg.Runtime.lgc_period / Int.max 1 (n_procs t)) in
        let set_phase = 1 + (i * cfg.Runtime.new_set_period / Int.max 1 (n_procs t)) in
        let h1 =
          Scheduler.every (sched t) ~phase:lgc_phase ~period:cfg.Runtime.lgc_period (fun () ->
              if p.Process.alive then ignore (Lgc.run t.rt p : Lgc.report))
        in
        let h2 =
          Scheduler.every (sched t) ~phase:set_phase ~period:cfg.Runtime.new_set_period
            (fun () ->
              if p.Process.alive then begin
                Reflist.send_new_sets t.rt p;
                Reflist.probe_idle_scions t.rt p ~threshold:(3 * cfg.Runtime.new_set_period);
                Reflist.reap_dead_holders t.rt p
              end)
        in
        handles := h1 :: h2 :: !handles)
      t.rt.Runtime.procs;
    t.gc_handles <- !handles
  end

let stop_gc t =
  List.iter Scheduler.cancel t.gc_handles;
  t.gc_handles <- []

let gc_running t = t.gc_handles <> []

let at_teardown t hook = t.teardown_hooks <- hook :: t.teardown_hooks

let torn_down t = t.torn_down

let teardown t =
  if not t.torn_down then begin
    t.torn_down <- true;
    stop_gc t;
    (* Hooks run newest-first (reverse registration order), each at
       most once: checkers registered by Oracle/Metrics detach here
       so nothing keeps firing on a dismantled cluster. *)
    let hooks = t.teardown_hooks in
    t.teardown_hooks <- [];
    List.iter (fun hook -> hook ()) hooks;
    Span.end_span t.rt.Runtime.obs
      ~time:(Scheduler.now t.rt.Runtime.sched)
      t.rt.Runtime.run_span
  end

let crash t i = crash_proc t.rt i

let restart t i = restart_proc t.rt i

let alive t i = (proc t i).Process.alive

(* Dead processes contribute nothing to ground truth: their objects
   are wreckage, their roots gone. *)
let total_objects t =
  Array.fold_left
    (fun acc p -> if p.Process.alive then acc + Heap.size p.Process.heap else acc)
    0 t.rt.Runtime.procs

let globally_live t =
  (* Seeds: all local roots plus references inside in-flight messages
     ([Msg.live_refs]: what a delivery can import — notably an RMI
     reply's target field is excluded, it is never imported).  This is
     the one ground-truth tracer; the oracle, the metrics sampler and
     the model checker all call it. *)
  let seeds =
    Array.fold_left
      (fun acc p ->
        if p.Process.alive then List.rev_append (Heap.roots p.Process.heap) acc else acc)
      [] t.rt.Runtime.procs
  in
  let seeds =
    List.fold_left
      (fun acc (m : Msg.t) -> List.rev_append (Msg.live_refs m.Msg.payload) acc)
      seeds
      (Network.in_flight (net t))
  in
  (* Global BFS: trace within each heap, carry the remote frontier
     across processes until a fixpoint. *)
  let live = ref Oid.Set.empty in
  let frontier = ref (List.fold_left (fun s o -> Oid.Set.add o s) Oid.Set.empty seeds) in
  while not (Oid.Set.is_empty !frontier) do
    let by_proc =
      Oid.Set.fold
        (fun oid acc ->
          if Oid.Set.mem oid !live then acc
          else
            let owner = Proc_id.to_int (Oid.owner oid) in
            let prev = match List.assoc_opt owner acc with Some l -> l | None -> [] in
            (owner, oid :: prev) :: List.remove_assoc owner acc)
        !frontier []
    in
    frontier := Oid.Set.empty;
    List.iter
      (fun (owner, oids) ->
        let p = t.rt.Runtime.procs.(owner) in
        if not p.Process.alive then ()
        else
        let { Heap.local; remote } = Heap.trace p.Process.heap ~from:oids in
        live := Oid.Set.union !live local;
        Oid.Set.iter
          (fun r -> if not (Oid.Set.mem r !live) then frontier := Oid.Set.add r !frontier)
          remote)
      by_proc
  done;
  !live

let garbage t =
  let live = globally_live t in
  Array.fold_left
    (fun acc p ->
      if not p.Process.alive then acc
      else
        Heap.fold p.Process.heap ~init:acc ~f:(fun acc obj ->
            if Oid.Set.mem obj.Heap.oid live then acc else Oid.Set.add obj.Heap.oid acc))
    Oid.Set.empty t.rt.Runtime.procs
