open Adgc_algebra
module Rng = Adgc_util.Rng
module Stats = Adgc_util.Stats
module Trace = Adgc_util.Trace

module Span = Adgc_obs.Span
module Lineage = Adgc_obs.Lineage

type t = {
  rt : Runtime.t;
  mutable gc_handles : Scheduler.recurring list;
  mutable teardown_hooks : (unit -> unit) list;
  mutable torn_down : bool;
}

(* Payload handling is separate from envelope acceptance: the
   duplicate check below runs once per envelope, so the constituents
   of a [Batch] (which share their envelope's sequence number) are
   not mistaken for replays of each other. *)
let rec handle_payload rt (msg : Msg.t) (at : Process.t) payload =
  match payload with
  | Msg.Batch payloads ->
      (* Unpack in queueing order; each constituent is handled as if
         it had arrived alone (same envelope timestamps). *)
      Stats.add rt.Runtime.stats "net.msg.unbatched" (List.length payloads);
      List.iter (handle_payload rt msg at) payloads
  | Msg.Rmi_request { req_id; target; args; stub_ic } ->
      Rmi.handle_request rt ~at ~src:msg.Msg.src ~req_id ~target ~args ~stub_ic
  | Msg.Rmi_reply { req_id; target; results } -> Rmi.handle_reply rt ~at ~req_id ~target ~results
  | Msg.Export_notice { notice_id; target; new_holder } ->
      Reflist.handle_export_notice rt ~at ~src:msg.Msg.src ~notice_id ~target ~new_holder
  | Msg.Export_ack { notice_id; _ } -> Reflist.handle_export_ack rt ~at ~notice_id
  | Msg.New_set_stubs { seqno; targets } ->
      Reflist.handle_new_set rt ~at ~src:msg.Msg.src ~seqno ~targets
  | Msg.Scion_probe -> Reflist.handle_probe rt ~at ~src:msg.Msg.src
  | Msg.Cdm cdm ->
      (* One network hop of the detection: spans the transit time and
         nests under the detection span when lineage knows it. *)
      if Span.enabled rt.Runtime.obs then begin
        let parent = Lineage.span rt.Runtime.lineage cdm.Cdm.id in
        let span =
          Span.begin_span rt.Runtime.obs ~time:msg.Msg.sent_at ?parent
            ~proc:(Proc_id.to_int msg.Msg.dst) ~kind:Span.Cdm_hop
            (Printf.sprintf "cdm %s hop %d" (Detection_id.to_string cdm.Cdm.id) cdm.Cdm.hops)
        in
        Span.end_span rt.Runtime.obs
          ~time:(Scheduler.now rt.Runtime.sched)
          ~args:
            [
              ("from", Proc_id.to_string msg.Msg.src);
              ("budget", string_of_int cdm.Cdm.budget);
            ]
          span
      end;
      (match at.Process.on_cdm with
      | Some f -> f cdm
      | None -> Stats.incr rt.Runtime.stats "cdm.unhandled")
  | Msg.Cdm_delete { id; scions } -> (
      match at.Process.on_cdm_delete with
      | Some f -> f id scions
      | None -> Stats.incr rt.Runtime.stats "cdm_delete.unhandled")
  | Msg.Bt bt -> (
      match at.Process.on_bt with
      | Some f -> f ~src:msg.Msg.src bt
      | None -> Stats.incr rt.Runtime.stats "bt.unhandled")
  | Msg.Hughes h -> (
      match at.Process.on_hughes with
      | Some f -> f ~src:msg.Msg.src h
      | None -> Stats.incr rt.Runtime.stats "hughes.unhandled")

let dispatch rt (msg : Msg.t) =
  let at = Runtime.proc rt msg.Msg.dst in
  if not at.Process.alive then Stats.incr rt.Runtime.stats "net.msg.dead_endpoint"
  else if not (Process.note_delivery at ~src:msg.Msg.src ~seq:msg.Msg.seq) then
    (* A replayed envelope (network duplication, or an adversarial
       re-send in the tests): every handler above runs at most once
       per sequenced envelope, which is what makes delivery
       idempotent. *)
    Stats.incr rt.Runtime.stats "net.msg.duplicate_ignored"
  else handle_payload rt msg at msg.Msg.payload

let crash_proc rt i =
  let p = Runtime.proc rt (Proc_id.of_int i) in
  if p.Process.alive then begin
    p.Process.alive <- false;
    Stats.incr rt.Runtime.stats "cluster.crashes";
    Runtime.log rt ~topic:"cluster" "%a crashed" Proc_id.pp p.Process.id
  end

let restart_proc rt i =
  let p = Runtime.proc rt (Proc_id.of_int i) in
  if not p.Process.alive then begin
    p.Process.alive <- true;
    (* Crash-recovery model: heap, stubs and scions survived in the
       persistent store.  Reset the holder-silence clocks so the
       downtime is not immediately read as every holder's crash by
       failure detection; the periodic duties (guarded per firing on
       [alive]) resume by themselves. *)
    Scion_table.touch_all_sources p.Process.scions ~now:(Scheduler.now rt.Runtime.sched);
    (* Restart is a quiescence point for this process's inbound links
       (nothing was accepted while down), so the duplicate-suppression
       table can be truncated to per-sender floors here; unbounded
       crash/restart runs otherwise grow it forever. *)
    let pruned = Process.prune_delivered p in
    if pruned > 0 then Stats.add rt.Runtime.stats "cluster.delivered_pruned" pruned;
    Stats.incr rt.Runtime.stats "cluster.restarts";
    Runtime.log rt ~topic:"cluster" "%a restarted" Proc_id.pp p.Process.id
  end

let create ?(seed = 42) ?config ?net_config ?(faults = Faults.none) ?trace_capacity
    ?(telemetry = false) ?span_capacity ~n () =
  if n <= 0 then invalid_arg "Cluster.create: need at least one process";
  let config = match config with Some c -> c | None -> Runtime.default_config () in
  let net_config = match net_config with Some c -> c | None -> Network.default_config () in
  if telemetry then net_config.Network.per_link_bytes <- true;
  let rng = Rng.create seed in
  let sched = Scheduler.create () in
  let stats = Stats.create () in
  let trace = Trace.create ?capacity:trace_capacity () in
  let obs = Span.create ?capacity:span_capacity () in
  let lineage = Lineage.create () in
  Span.set_enabled obs telemetry;
  Lineage.set_enabled lineage telemetry;
  let net = Network.create ~faults ~sched ~rng:(Rng.split rng) ~stats ~config:net_config () in
  let procs =
    Array.init n (fun i -> Process.create ~id:(Proc_id.of_int i) ~rng:(Rng.split rng))
  in
  let rt = Runtime.create ~sched ~net ~procs ~rng ~stats ~trace ~obs ~lineage ~config () in
  rt.Runtime.run_span <- Span.begin_span obs ~time:0 ~kind:Span.Run "run";
  Network.set_deliver net (dispatch rt);
  List.iter
    (function
      | Faults.Crash { proc; at } -> Scheduler.schedule_at sched ~time:at (fun () -> crash_proc rt proc)
      | Faults.Restart { proc; at } ->
          Scheduler.schedule_at sched ~time:at (fun () -> restart_proc rt proc)
      | Faults.Partition _ -> (* the network schedules these *) ())
    faults.Faults.events;
  { rt; gc_handles = []; teardown_hooks = []; torn_down = false }

let rt t = t.rt

let sched t = t.rt.Runtime.sched

let net t = t.rt.Runtime.net

let stats t = t.rt.Runtime.stats

let trace t = t.rt.Runtime.trace

let obs t = t.rt.Runtime.obs

let lineage t = t.rt.Runtime.lineage

let proc t i = t.rt.Runtime.procs.(i)

let proc_id _t i = Proc_id.of_int i

let n_procs t = Array.length t.rt.Runtime.procs

let now t = Scheduler.now (sched t)

let run_for t delay = Scheduler.run_for (sched t) ~delay

let run_until t ~time = Scheduler.run_until (sched t) ~time

let drain ?limit t = Scheduler.drain ?limit (sched t)

let start_gc t =
  if t.gc_handles = [] then begin
    let cfg = t.rt.Runtime.config in
    let handles = ref [] in
    Array.iteri
      (fun i p ->
        (* Phase-stagger the duties so processes do not collect in
           lockstep — closer to independent real processes. *)
        let lgc_phase = 1 + (i * cfg.Runtime.lgc_period / Int.max 1 (n_procs t)) in
        let set_phase = 1 + (i * cfg.Runtime.new_set_period / Int.max 1 (n_procs t)) in
        let h1 =
          Scheduler.every (sched t) ~phase:lgc_phase ~period:cfg.Runtime.lgc_period (fun () ->
              if p.Process.alive then ignore (Lgc.run t.rt p : Lgc.report))
        in
        let h2 =
          Scheduler.every (sched t) ~phase:set_phase ~period:cfg.Runtime.new_set_period
            (fun () ->
              if p.Process.alive then begin
                Reflist.send_new_sets t.rt p;
                Reflist.probe_idle_scions t.rt p ~threshold:(3 * cfg.Runtime.new_set_period);
                Reflist.reap_dead_holders t.rt p
              end)
        in
        handles := h1 :: h2 :: !handles)
      t.rt.Runtime.procs;
    t.gc_handles <- !handles
  end

let stop_gc t =
  List.iter Scheduler.cancel t.gc_handles;
  t.gc_handles <- []

let gc_running t = t.gc_handles <> []

let at_teardown t hook = t.teardown_hooks <- hook :: t.teardown_hooks

let torn_down t = t.torn_down

let teardown t =
  if not t.torn_down then begin
    t.torn_down <- true;
    stop_gc t;
    (* Hooks run newest-first (reverse registration order), each at
       most once: checkers registered by Oracle/Metrics detach here
       so nothing keeps firing on a dismantled cluster. *)
    let hooks = t.teardown_hooks in
    t.teardown_hooks <- [];
    List.iter (fun hook -> hook ()) hooks;
    Span.end_span t.rt.Runtime.obs
      ~time:(Scheduler.now t.rt.Runtime.sched)
      t.rt.Runtime.run_span
  end

let crash t i = crash_proc t.rt i

let restart t i = restart_proc t.rt i

let alive t i = (proc t i).Process.alive

(* Dead processes contribute nothing to ground truth: their objects
   are wreckage, their roots gone. *)
let total_objects t =
  Array.fold_left
    (fun acc p -> if p.Process.alive then acc + Heap.size p.Process.heap else acc)
    0 t.rt.Runtime.procs

let globally_live t =
  (* Seeds: all local roots plus references inside in-flight messages. *)
  let seeds =
    Array.fold_left
      (fun acc p ->
        if p.Process.alive then List.rev_append (Heap.roots p.Process.heap) acc else acc)
      [] t.rt.Runtime.procs
  in
  let seeds =
    List.fold_left
      (fun acc (m : Msg.t) -> List.rev_append (Msg.payload_refs m.Msg.payload) acc)
      seeds
      (Network.in_flight (net t))
  in
  (* Global BFS: trace within each heap, carry the remote frontier
     across processes until a fixpoint. *)
  let live = ref Oid.Set.empty in
  let frontier = ref (List.fold_left (fun s o -> Oid.Set.add o s) Oid.Set.empty seeds) in
  while not (Oid.Set.is_empty !frontier) do
    let by_proc =
      Oid.Set.fold
        (fun oid acc ->
          if Oid.Set.mem oid !live then acc
          else
            let owner = Proc_id.to_int (Oid.owner oid) in
            let prev = match List.assoc_opt owner acc with Some l -> l | None -> [] in
            (owner, oid :: prev) :: List.remove_assoc owner acc)
        !frontier []
    in
    frontier := Oid.Set.empty;
    List.iter
      (fun (owner, oids) ->
        let p = t.rt.Runtime.procs.(owner) in
        if not p.Process.alive then ()
        else
        let { Heap.local; remote } = Heap.trace p.Process.heap ~from:oids in
        live := Oid.Set.union !live local;
        Oid.Set.iter
          (fun r -> if not (Oid.Set.mem r !live) then frontier := Oid.Set.add r !frontier)
          remote)
      by_proc
  done;
  !live

let garbage t =
  let live = globally_live t in
  Array.fold_left
    (fun acc p ->
      if not p.Process.alive then acc
      else
        Heap.fold p.Process.heap ~init:acc ~f:(fun acc obj ->
            if Oid.Set.mem obj.Heap.oid live then acc else Oid.Set.add obj.Heap.oid acc))
    Oid.Set.empty t.rt.Runtime.procs
