open Adgc_algebra
module Rng = Adgc_util.Rng
module Stats = Adgc_util.Stats
module Trace = Adgc_util.Trace

module Span = Adgc_obs.Span
module Lineage = Adgc_obs.Lineage

type t = {
  rt : Runtime.t;
  mutable gc_handles : Scheduler.recurring list;
  mutable gc_lanes : Scheduler.lane list;
  mutable teardown_hooks : (unit -> unit) list;
  mutable torn_down : bool;
  (* Cached globally-live marks (per-process bytes indexed by dense
     id) with the staleness signature and dense generations they were
     computed under — see [live_marks] below.  [live_sig = min_int]
     means no cache. *)
  mutable live_marks : Bytes.t array;
  mutable live_sig : int;
  mutable live_gens : int array;
}

let crash_proc rt i =
  let p = Runtime.proc rt (Proc_id.of_int i) in
  if p.Process.alive then begin
    p.Process.alive <- false;
    Stats.incr rt.Runtime.stats "cluster.crashes";
    Runtime.log rt ~topic:"cluster" "%a crashed" Proc_id.pp p.Process.id
  end

let restart_proc rt i =
  let p = Runtime.proc rt (Proc_id.of_int i) in
  if not p.Process.alive then begin
    p.Process.alive <- true;
    (* Crash-recovery model: heap, stubs and scions survived in the
       persistent store.  Reset the holder-silence clocks so the
       downtime is not immediately read as every holder's crash by
       failure detection; the periodic duties (guarded per firing on
       [alive]) resume by themselves. *)
    Scion_table.touch_all_sources p.Process.scions ~now:(Scheduler.now rt.Runtime.sched);
    (* Restart is a quiescence point for this process's inbound links
       (nothing was accepted while down), so the duplicate-suppression
       table can be truncated to per-sender floors here; unbounded
       crash/restart runs otherwise grow it forever. *)
    let pruned = Process.prune_delivered p in
    if pruned > 0 then Stats.add rt.Runtime.stats "cluster.delivered_pruned" pruned;
    Stats.incr rt.Runtime.stats "cluster.restarts";
    (* Components caching derived views of this heap (the incremental
       candidate maintainer) rebuild from the revived state; the crash
       may have interrupted them mid-update. *)
    List.iter (fun hook -> hook ()) p.Process.on_revive;
    Runtime.log rt ~topic:"cluster" "%a restarted" Proc_id.pp p.Process.id
  end

let create ?(seed = 42) ?config ?net_config ?(faults = Faults.none) ?trace_capacity
    ?(telemetry = false) ?span_capacity ~n () =
  if n <= 0 then invalid_arg "Cluster.create: need at least one process";
  let config = match config with Some c -> c | None -> Runtime.default_config () in
  let net_config = match net_config with Some c -> c | None -> Network.default_config () in
  if telemetry then net_config.Network.per_link_bytes <- true;
  let rng = Rng.create seed in
  let sched = Scheduler.create () in
  let stats = Stats.create () in
  let trace = Trace.create ?capacity:trace_capacity () in
  let obs = Span.create ?capacity:span_capacity () in
  let lineage = Lineage.create () in
  Span.set_enabled obs telemetry;
  Lineage.set_enabled lineage telemetry;
  let net = Network.create ~faults ~sched ~rng:(Rng.split rng) ~stats ~config:net_config () in
  let procs =
    Array.init n (fun i -> Process.create ~id:(Proc_id.of_int i) ~rng:(Rng.split rng))
  in
  let rt = Runtime.create ~sched ~net ~procs ~rng ~stats ~trace ~obs ~lineage ~config () in
  rt.Runtime.run_span <- Span.begin_span obs ~time:0 ~kind:Span.Run "run";
  Network.set_deliver net (Dispatch.deliver rt);
  List.iter
    (function
      | Faults.Crash { proc; at } -> Scheduler.schedule_at sched ~time:at (fun () -> crash_proc rt proc)
      | Faults.Restart { proc; at } ->
          Scheduler.schedule_at sched ~time:at (fun () -> restart_proc rt proc)
      | Faults.Partition _ -> (* the network schedules these *) ())
    faults.Faults.events;
  {
    rt;
    gc_handles = [];
    gc_lanes = [];
    teardown_hooks = [];
    torn_down = false;
    live_marks = [||];
    live_sig = min_int;
    live_gens = [||];
  }

let rt t = t.rt

let sched t = t.rt.Runtime.sched

let net t = t.rt.Runtime.net

let stats t = t.rt.Runtime.stats

let trace t = t.rt.Runtime.trace

let obs t = t.rt.Runtime.obs

let lineage t = t.rt.Runtime.lineage

let proc t i = t.rt.Runtime.procs.(i)

let proc_id _t i = Proc_id.of_int i

let n_procs t = Array.length t.rt.Runtime.procs

let now t = Scheduler.now (sched t)

let run_for t delay = Scheduler.run_for (sched t) ~delay

let run_until t ~time = Scheduler.run_until (sched t) ~time

let drain ?limit t = Scheduler.drain ?limit (sched t)

let start_gc t =
  if t.gc_lanes = [] then begin
    let cfg = t.rt.Runtime.config in
    let n = n_procs t in
    let procs = t.rt.Runtime.procs in
    (* Phase-stagger the duties so processes do not collect in
       lockstep — closer to independent real processes.  Each duty
       kind is one scheduler {e lane}: a single global-queue event per
       kind with the members' fire times in a lane-local heap, so the
       global queue holds O(duty kinds) entries instead of
       O(processes x duty kinds) — the per-member fire instants are
       unchanged. *)
    let lgc =
      Scheduler.lane (sched t) ~n
        ~phase_of:(fun i -> 1 + (i * cfg.Runtime.lgc_period / Int.max 1 n))
        ~period:cfg.Runtime.lgc_period
        (fun i ->
          let p = procs.(i) in
          if p.Process.alive then ignore (Lgc.run t.rt p : Lgc.report))
    in
    let sets =
      Scheduler.lane (sched t) ~n
        ~phase_of:(fun i -> 1 + (i * cfg.Runtime.new_set_period / Int.max 1 n))
        ~period:cfg.Runtime.new_set_period
        (fun i ->
          let p = procs.(i) in
          if p.Process.alive then begin
            Reflist.send_new_sets t.rt p;
            Reflist.probe_idle_scions t.rt p ~threshold:(3 * cfg.Runtime.new_set_period);
            Reflist.reap_dead_holders t.rt p
          end)
    in
    t.gc_lanes <- [ lgc; sets ]
  end

let stop_gc t =
  List.iter Scheduler.cancel t.gc_handles;
  t.gc_handles <- [];
  List.iter Scheduler.cancel_lane t.gc_lanes;
  t.gc_lanes <- []

let gc_running t = t.gc_lanes <> [] || t.gc_handles <> []

let at_teardown t hook = t.teardown_hooks <- hook :: t.teardown_hooks

let torn_down t = t.torn_down

let teardown t =
  if not t.torn_down then begin
    t.torn_down <- true;
    stop_gc t;
    (* Hooks run newest-first (reverse registration order), each at
       most once: checkers registered by Oracle/Metrics detach here
       so nothing keeps firing on a dismantled cluster. *)
    let hooks = t.teardown_hooks in
    t.teardown_hooks <- [];
    List.iter (fun hook -> hook ()) hooks;
    Span.end_span t.rt.Runtime.obs
      ~time:(Scheduler.now t.rt.Runtime.sched)
      t.rt.Runtime.run_span
  end

let crash t i = crash_proc t.rt i

let restart t i = restart_proc t.rt i

let alive t i = (proc t i).Process.alive

(* Dead processes contribute nothing to ground truth: their objects
   are wreckage, their roots gone. *)
let total_objects t =
  Array.fold_left
    (fun acc p -> if p.Process.alive then acc + Heap.size p.Process.heap else acc)
    0 t.rt.Runtime.procs

(* The one ground-truth global tracer: seeds are all local roots plus
   the references in-flight messages keep importable ([Msg.live_refs]
   — notably an RMI reply's target field is excluded, it is never
   imported; the network maintains that multiset incrementally).  The
   fixpoint buckets the remote frontier per owner and re-enters each
   heap {e without} resetting its visited marks ([trace_dense
   ~reset:false] after the first visit), so across all rounds every
   object is traced exactly once and nothing but the per-round seed
   lists is allocated — at a thousand processes and millions of
   objects this is what keeps the oracle's clean-poll affordable.
   [visit i id] receives each live local object (by owner index and
   dense id) exactly once. *)
let trace_globally_live t ~visit =
  Stats.incr t.rt.Runtime.stats "cluster.global_traces";
  let procs = t.rt.Runtime.procs in
  let n = Array.length procs in
  let buckets = Array.make n [] in
  let pending = ref 0 in
  let push oid =
    let owner = Proc_id.to_int (Oid.owner oid) in
    if owner >= 0 && owner < n then begin
      buckets.(owner) <- oid :: buckets.(owner);
      incr pending
    end
  in
  Array.iter
    (fun p -> if p.Process.alive then List.iter push (Heap.roots p.Process.heap))
    procs;
  Network.iter_in_flight_live_refs (net t) push;
  let started = Array.make n false in
  while !pending > 0 do
    pending := 0;
    for i = 0 to n - 1 do
      match buckets.(i) with
      | [] -> ()
      | seeds ->
          buckets.(i) <- [];
          let p = procs.(i) in
          if p.Process.alive then begin
            let reset = not started.(i) in
            started.(i) <- true;
            Heap.trace_dense ~reset p.Process.heap ~from:seeds
              ~visit_local:(fun id -> visit i id)
              ~visit_remote:push
          end
    done
  done

let globally_live t =
  let live = ref Oid.Set.empty in
  trace_globally_live t ~visit:(fun i id ->
      live := Oid.Set.add (Heap.dense_oid t.rt.Runtime.procs.(i).Process.heap id) !live);
  !live

let garbage_count t =
  (* Same fixpoint, but only counting: garbage on each alive heap is
     its population minus the objects the global trace reached there.
     No sets, no oid materialization — the run-until-clean poll's
     fast path. *)
  let procs = t.rt.Runtime.procs in
  let live_counts = Array.make (Array.length procs) 0 in
  trace_globally_live t ~visit:(fun i _id -> live_counts.(i) <- live_counts.(i) + 1);
  let total = ref 0 in
  Array.iteri
    (fun i p ->
      if p.Process.alive then total := !total + Heap.size p.Process.heap - live_counts.(i))
    procs;
  !total

(* The message kinds whose payloads can carry importable references —
   the in-flight population of these is part of the reachability
   inputs, so their send/deliver/drop counters belong in every
   liveness staleness signature.  (The group envelopes are ref-free in
   practice, only ref-free DGC control payloads are relayed, but the
   message type permits refs inside them so they stay in the
   conservative set.)  [Sim.run_until_clean] shares this list. *)
let ref_carrying_kinds =
  [
    "rmi_request";
    "rmi_reply";
    "export_notice";
    "export_ack";
    "batch";
    "group_fwd";
    "group_relay";
  ]

(* Staleness signature for the live-mark cache: every component is a
   monotonic counter, so the sum strictly grows on any change and two
   equal readings prove every input to global reachability — roots,
   edges, allocations, in-flight references, crash state — is
   untouched.  Crucially it folds [Heap.live_mutations], {e not}
   [Heap.mutations]: removals are excluded, because a (safe) sweep
   deletes only garbage and therefore cannot move the globally-live
   set.  That is what lets hundreds of staggered per-process sweeps
   validate against one trace instead of one trace each. *)
let live_signature t =
  let stats = t.rt.Runtime.stats in
  let acc = ref 0 in
  Array.iter (fun p -> acc := !acc + Heap.live_mutations p.Process.heap) t.rt.Runtime.procs;
  acc := !acc + Stats.get stats "cluster.crashes" + Stats.get stats "cluster.restarts";
  List.iter
    (fun kind ->
      List.iter
        (fun ev -> acc := !acc + Stats.get stats ("net.msg." ^ ev ^ "." ^ kind))
        [ "sent"; "delivered"; "dropped" ])
    ref_carrying_kinds;
  !acc

(* Cached globally-live marks: per-process byte arrays indexed by
   dense id, recomputed only when [live_signature] moved or an
   interner rebuild reassigned some heap's dense ids (ids are
   append-only otherwise, so removals leave existing marks
   index-valid).  The exactness argument is inductive: the marks are
   exact when computed, and every event that could change the live
   set bumps the signature — except a sweep, which (if safe) deletes
   only garbage.  An {e unsafe} sweep is precisely what the pre-sweep
   hooks catch against these marks before it happens, so the first
   violation is always judged against exact ground truth. *)
let live_marks t =
  let procs = t.rt.Runtime.procs in
  let n = Array.length procs in
  let s = live_signature t in
  (* Sync before judging validity: a pending resync may rebuild the
     interner, and generations must be read post-sync. *)
  let gens = Array.make n (-1) in
  Array.iteri
    (fun i p ->
      if p.Process.alive then begin
        ignore (Heap.dense_sync p.Process.heap : int);
        gens.(i) <- Heap.dense_generation p.Process.heap
      end)
    procs;
  if s = t.live_sig && t.live_gens = gens && Array.length t.live_marks = n then begin
    Stats.incr t.rt.Runtime.stats "cluster.live_checks.cached";
    t.live_marks
  end
  else begin
    let marks =
      Array.init n (fun i ->
          let p = procs.(i) in
          if p.Process.alive then Bytes.make (Heap.dense_sync p.Process.heap) '\000'
          else Bytes.empty)
    in
    trace_globally_live t ~visit:(fun i id ->
        if id < Bytes.length marks.(i) then Bytes.unsafe_set marks.(i) id '\001');
    t.live_marks <- marks;
    t.live_gens <- gens;
    t.live_sig <- s;
    marks
  end

let live_mem t marks oid =
  let procs = t.rt.Runtime.procs in
  let i = Proc_id.to_int (Oid.owner oid) in
  i >= 0
  && i < Array.length procs
  && procs.(i).Process.alive
  &&
  match Heap.dense_id procs.(i).Process.heap oid with
  | Some id -> id < Bytes.length marks.(i) && Bytes.get marks.(i) id = '\001'
  | None -> false

let live_among t oids =
  match oids with
  | [] -> []
  | _ ->
      let marks = live_marks t in
      List.filter (fun oid -> live_mem t marks oid) oids

let live_predicate t =
  let marks = live_marks t in
  fun oid -> live_mem t marks oid

let garbage t =
  let live = globally_live t in
  Array.fold_left
    (fun acc p ->
      if not p.Process.alive then acc
      else
        Heap.fold p.Process.heap ~init:acc ~f:(fun acc obj ->
            if Oid.Set.mem obj.Heap.oid live then acc else Oid.Set.add obj.Heap.oid acc))
    Oid.Set.empty t.rt.Runtime.procs
