(** A complete simulated distributed system.

    Builds the processes, the network and the shared runtime, installs
    the message dispatch, and optionally drives the periodic garbage
    collection duties (LGC and [NewSetStubs] rounds, staggered across
    processes so they never run in lockstep). *)

open Adgc_algebra

type t

val create :
  ?seed:int ->
  ?config:Runtime.config ->
  ?net_config:Network.config ->
  ?faults:Faults.plan ->
  ?trace_capacity:int ->
  ?telemetry:bool ->
  ?span_capacity:int ->
  n:int ->
  unit ->
  t
(** [n] processes with ids [P0 .. P(n-1)]. Default seed 42.  The fault
    plan's partition events are armed in the network and its crash /
    restart events on the scheduler.  [telemetry] (default false)
    enables the structured span ring and detection lineage; when off,
    every instrumentation hook is a single branch. *)

val rt : t -> Runtime.t

val sched : t -> Scheduler.t

val net : t -> Network.t

val stats : t -> Adgc_util.Stats.t

val trace : t -> Adgc_util.Trace.t

val obs : t -> Adgc_obs.Span.t

val lineage : t -> Adgc_obs.Lineage.t

val proc : t -> int -> Process.t

val proc_id : t -> int -> Proc_id.t

val n_procs : t -> int

val now : t -> int

(** {1 Time control} *)

val run_for : t -> int -> unit

val run_until : t -> time:int -> unit

val drain : ?limit:int -> t -> int

(** {1 Periodic GC duties} *)

val start_gc : t -> unit
(** Install recurring LGC and stub-set rounds on every process, with
    periods from the runtime config and per-process phase offsets. *)

val stop_gc : t -> unit

val gc_running : t -> bool

(** {1 Teardown} *)

val at_teardown : t -> (unit -> unit) -> unit
(** Register a hook to run once at {!teardown} (newest first).  The
    oracle and the metrics sampler register their detach here so
    windowed checks cannot outlive the run. *)

val teardown : t -> unit
(** End the run: stop the periodic GC duties, run (and discard) every
    teardown hook, and close the root [run] span.  Idempotent; the
    cluster's state remains readable afterwards. *)

val torn_down : t -> bool

(** {1 Failures} *)

val crash : t -> int -> unit
(** Crash-stop the process: it stops sending, receiving and performing
    duties; its heap becomes unreachable wreckage excluded from ground
    truth.  Scions it held at other owners are reclaimed only when
    [failure_detection] is configured (see {!Runtime.config}). *)

val restart : t -> int -> unit
(** Revive a crashed process with its state intact (crash-recovery
    with a persistent store: heap, stubs, scions and sequence numbers
    all survive).  Holder-silence clocks are refreshed so failure
    detection does not instantly suspect every holder; installed
    periodic duties resume on their own.  No-op on a live process. *)

val alive : t -> int -> bool

(** {1 Whole-system queries (omniscient; used by tests and metrics)} *)

val total_objects : t -> int

val globally_live : t -> Oid.Set.t
(** Objects reachable from the union of all local roots, crossing
    remote references, plus everything reachable from references
    sitting inside in-flight messages (the network's incrementally
    maintained live-ref multiset).  This is ground truth — no protocol
    state is consulted.  The fixpoint enters each heap with persistent
    visited marks, so every object is traced exactly once per call
    regardless of how many rounds the cross-process frontier takes. *)

val ref_carrying_kinds : string list
(** The message kinds whose payloads can carry importable references.
    Their in-flight population is a reachability input, so the
    [net.msg.{sent,delivered,dropped}.<kind>] counters for exactly
    these kinds belong in every liveness staleness signature
    ({!live_among}'s cache, {!Adgc.Sim.run_until_clean}). *)

val live_among : t -> Oid.t list -> Oid.t list
(** Subset of the given oids that {!globally_live} would contain,
    computed without materializing the set: membership is judged
    against cached per-process mark bytes indexed by dense id.  The
    cache revalidates against a monotonic staleness signature that
    folds every reachability input {e except removals}
    ({!Heap.live_mutations}, crash/restart counts, the in-flight
    counters of {!ref_carrying_kinds}) plus each heap's
    {!Heap.dense_generation} — a safe sweep deletes only garbage and
    reassigns no dense id, so consecutive staggered sweeps all
    validate against one global trace instead of one trace each.  An
    unsafe sweep is exactly what the pre-sweep hooks call this to
    catch, before the sweep happens, so the first violation is always
    judged against exact ground truth. *)

val live_predicate : t -> Oid.t -> bool
(** [live_predicate t] returns an O(1) membership test for
    {!globally_live} backed by the same cached marks as
    {!live_among}.  The returned predicate is only valid until the
    next heap mutation, delivery or crash. *)

val garbage : t -> Oid.Set.t
(** All objects minus {!globally_live}. *)

val garbage_count : t -> int
(** [Oid.Set.cardinal (garbage t)], computed without materializing
    either set: the global trace only counts live objects per heap and
    garbage is each alive heap's population minus that.  The
    run-until-clean poll's fast path — at a thousand processes and
    millions of objects the set-building variants are unaffordable per
    poll. *)
