(** The local tracing collector.

    A stop-the-world (per process — the rest of the system keeps
    running) mark-and-sweep that honours the reference-listing
    contract (paper §4):

    - scion targets are extra roots, so remotely referenced objects
      survive even when locally unreachable;
    - the trace reports every remote reference held by live objects,
      which is exactly the information the stub table needs: stubs
      not found live (and neither fresh nor pinned) are dropped and
      will vanish from the next [NewSetStubs]. *)

type report = {
  live : int;  (** objects surviving the sweep *)
  swept : int;  (** objects reclaimed *)
  stubs_live : int;
  stubs_dropped : int;
}

val run : Runtime.t -> Process.t -> report
(** Runs synchronously inside the current event.  Each swept object is
    reported through [rt.on_reclaim] (the test safety hook).
    Equivalent to {!apply} of {!plan}. *)

val collect_all : Runtime.t -> report list
(** Run the LGC once on every process, in process order. *)

(** {2 Engine-facing split}

    {!plan} is the per-process phase (root + scion trace, stub
    liveness refresh, sweep decision): it mutates only the process's
    own stub table and paged-store clocks — never the heap, a shared
    sink or another process — so plans for many processes may run
    concurrently.  {!apply} performs the sweep and every shared-sink
    effect (pre-sweep hook, stats, spans, reclamation hooks) and must
    run in canonical process order. *)

type plan

val plan : Runtime.t -> Process.t -> plan

val apply : Runtime.t -> plan -> report
