open Adgc_algebra
module Stats = Adgc_util.Stats

type report = { live : int; swept : int; stubs_live : int; stubs_dropped : int }

type plan = {
  plan_proc : Process.t;
  doomed : Oid.t list;
  stubs_dropped : int;
}

(* Pure-ish per-process phase: trace from roots + protected scions,
   refresh stub liveness, and decide what to sweep.  Mutates only
   [p]'s own state (its stub table, its paged store's clocks), never a
   shared sink or another process — safe to run for many processes
   concurrently under {!Adgc.Engine.Par}.  The heap itself is not
   touched: sweeping happens in {!apply}, after the pre-sweep hook
   (the whole-system oracle reads every heap there, so the sweep must
   stay in commit order). *)
let plan _rt (p : Process.t) =
  let heap = p.Process.heap in
  let from =
    (* Gauntlet mutant: forgetting that scions are GC roots reclaims
       anything only remote holders can reach. *)
    if Adgc_util.Mc_mutate.enabled "lgc_ignores_scions" then Heap.roots heap
    else Heap.roots heap @ Scion_table.protected_targets p.Process.scions
  in
  let { Heap.local = live_set; remote } = Heap.trace heap ~from in
  (* Report the trace to the paged store, if any: a full collection
     touches every live object (experiment E17). *)
  (match p.Process.pstore with
  | Some store -> Oid.Set.iter (Pstore.touch store) live_set
  | None -> ());
  (* Stub liveness. *)
  Stub_table.mark_all_dead p.Process.stubs;
  Oid.Set.iter (Stub_table.mark_live p.Process.stubs) remote;
  let dropped = Stub_table.sweep p.Process.stubs in
  let doomed =
    Heap.fold heap ~init:[] ~f:(fun acc obj ->
        if Oid.Set.mem obj.Heap.oid live_set then acc else obj.Heap.oid :: acc)
  in
  { plan_proc = p; doomed; stubs_dropped = List.length dropped }

(* Effect phase: the pre-sweep hook, the sweep itself, stats, spans
   and the reclamation hooks.  Canonical process order. *)
let apply rt { plan_proc = p; doomed; stubs_dropped } =
  Stats.incr rt.Runtime.stats "lgc.runs";
  Stats.add rt.Runtime.stats "dgc.stubs.dropped" stubs_dropped;
  let heap = p.Process.heap in
  (match rt.Runtime.on_pre_sweep with
  | Some f when doomed <> [] -> f p.Process.id doomed
  | Some _ | None -> ());
  List.iter
    (fun oid ->
      Heap.remove heap oid;
      (match p.Process.pstore with Some store -> Pstore.forget store oid | None -> ());
      Stats.incr rt.Runtime.stats "lgc.swept";
      (match rt.Runtime.on_reclaim with Some f -> f p.Process.id oid | None -> ());
      Runtime.log rt ~topic:"lgc" "%a swept %a" Proc_id.pp p.Process.id Oid.pp oid)
    doomed;
  let report =
    {
      live = Heap.size heap;
      swept = List.length doomed;
      stubs_live = Stub_table.size p.Process.stubs;
      stubs_dropped;
    }
  in
  if Adgc_obs.Span.enabled rt.Runtime.obs then
    ignore
      (Adgc_obs.Span.event rt.Runtime.obs
         ~time:(Scheduler.now rt.Runtime.sched)
         ~parent:rt.Runtime.run_span
         ~proc:(Proc_id.to_int p.Process.id)
         ~args:
           [ ("live", string_of_int report.live); ("swept", string_of_int report.swept) ]
         ~kind:Adgc_obs.Span.Lgc_sweep
         (Printf.sprintf "lgc %s" (Proc_id.to_string p.Process.id))
        : int);
  report

let run rt p = apply rt (plan rt p)

let collect_all rt = Array.to_list (Array.map (run rt) rt.Runtime.procs)
