open Adgc_algebra

type entry = {
  key : Ref_key.t;
  mutable ic : int;
  mutable confirmed : bool;
  mutable created_at : int;
  mutable last_invoked : int;
}

type change = Added of Ref_key.t | Deleted of Ref_key.t

type t = {
  owner : Proc_id.t;
  entries : entry Ref_key.Tbl.t;
  seqnos : (int, int) Hashtbl.t; (* holder proc -> last accepted seqno *)
  set_times : (int, int) Hashtbl.t; (* holder proc -> last stub-set arrival time *)
  tombstones : unit Ref_key.Tbl.t; (* DCDA-deleted keys, see interface *)
  mutable hooks : (change -> unit) list;
}

let create ~owner =
  {
    owner;
    entries = Ref_key.Tbl.create 32;
    seqnos = Hashtbl.create 8;
    set_times = Hashtbl.create 8;
    tombstones = Ref_key.Tbl.create 4;
    hooks = [];
  }

let on_change t f = t.hooks <- t.hooks @ [ f ]

let fire t ch = match t.hooks with [] -> () | hooks -> List.iter (fun f -> f ch) hooks

let owner t = t.owner

let find t key = Ref_key.Tbl.find_opt t.entries key

let mem t key = Ref_key.Tbl.mem t.entries key

let ensure t ~now key =
  if not (Proc_id.equal (Ref_key.owner key) t.owner) then
    invalid_arg
      (Format.asprintf "Scion_table.ensure: %a not owned by %a" Ref_key.pp key Proc_id.pp t.owner);
  if Proc_id.equal key.Ref_key.src t.owner then
    invalid_arg (Format.asprintf "Scion_table.ensure: self-reference %a" Ref_key.pp key);
  match find t key with
  | Some entry -> entry
  | None ->
      let entry = { key; ic = 0; confirmed = false; created_at = now; last_invoked = now } in
      Ref_key.Tbl.add t.entries key entry;
      fire t (Added key);
      entry

let delete ?(tombstone = false) t key =
  if tombstone then Ref_key.Tbl.replace t.tombstones key ();
  if mem t key then begin
    Ref_key.Tbl.remove t.entries key;
    fire t (Deleted key);
    true
  end
  else false

let tombstoned t key = Ref_key.Tbl.mem t.tombstones key

let confirm entry = entry.confirmed <- true

let sync_ic entry stub_ic = if stub_ic > entry.ic then entry.ic <- stub_ic

let observe_invocation t ~now key ~stub_ic =
  match find t key with
  | Some entry ->
      sync_ic entry stub_ic;
      entry.last_invoked <- now
  | None ->
      invalid_arg
        (Format.asprintf "Scion_table.observe_invocation: no scion %a at %a" Ref_key.pp key
           Proc_id.pp t.owner)

let ic t key = Option.map (fun e -> e.ic) (find t key)

let last_seqno t src =
  match Hashtbl.find_opt t.seqnos (Proc_id.to_int src) with Some s -> s | None -> -1

type apply_result = { deleted : Ref_key.t list; unknown : (Oid.t * int) list; stale : bool }

let apply_new_set ?(grace = max_int) t ~now ~src ~seqno ~targets =
  (* Even a stale set proves the holder is talking to us. *)
  Hashtbl.replace t.set_times (Proc_id.to_int src) now;
  if seqno <= last_seqno t src then { deleted = []; unknown = []; stale = true }
  else begin
    Hashtbl.replace t.seqnos (Proc_id.to_int src) seqno;
    (* Confirm listed scions (re-synchronizing their counters), delete
       confirmed-but-unlisted ones, and report listed targets we have
       no scion for. *)
    let deleted = ref [] in
    let known = ref Oid.Set.empty in
    Ref_key.Tbl.iter
      (fun key entry ->
        if Proc_id.equal key.Ref_key.src src then begin
          let target = key.Ref_key.target in
          match Oid.Map.find_opt target targets with
          | Some stub_ic ->
              known := Oid.Set.add target !known;
              entry.confirmed <- true;
              sync_ic entry stub_ic
          | None ->
              if entry.confirmed then deleted := key :: !deleted
              else if grace <> max_int && now - entry.created_at > grace then
                (* Unconfirmed, unlisted, and old: the exported
                   reference was lost in transit (see the interface). *)
                deleted := key :: !deleted
              (* Otherwise unconfirmed and unlisted: the holder has not
                 yet seen the reference (export in flight); keep the
                 scion. *)
        end)
      t.entries;
    List.iter (fun key -> ignore (delete t key)) !deleted;
    (* Tombstone maintenance: a listed tombstoned key stays dead (and
       is not reported as unknown); an unlisted one dissolves. *)
    let tomb_known = ref Oid.Set.empty in
    let dissolved = ref [] in
    Ref_key.Tbl.iter
      (fun key () ->
        if Proc_id.equal key.Ref_key.src src then
          if Oid.Map.mem key.Ref_key.target targets then
            tomb_known := Oid.Set.add key.Ref_key.target !tomb_known
          else dissolved := key :: !dissolved)
      t.tombstones;
    List.iter (Ref_key.Tbl.remove t.tombstones) !dissolved;
    let unknown =
      Oid.Map.fold
        (fun target ic acc ->
          if Oid.Set.mem target !known || Oid.Set.mem target !tomb_known then acc
          else (target, ic) :: acc)
        targets []
      |> List.rev
    in
    { deleted = List.rev !deleted; unknown; stale = false }
  end

let idle_sources t ~now ~threshold =
  let sources =
    Ref_key.Tbl.fold
      (fun key entry acc ->
        let src = Proc_id.to_int key.Ref_key.src in
        let last =
          match Hashtbl.find_opt t.set_times src with
          | Some time -> Int.max time entry.created_at
          | None -> entry.created_at
        in
        if now - last >= threshold then Proc_id.Set.add key.Ref_key.src acc else acc)
      t.entries Proc_id.Set.empty
  in
  Proc_id.Set.elements sources

let touch_all_sources t ~now =
  Ref_key.Tbl.iter
    (fun key _ -> Hashtbl.replace t.set_times (Proc_id.to_int key.Ref_key.src) now)
    t.entries

let protected_targets t =
  Ref_key.Tbl.fold (fun key _ acc -> Oid.Set.add key.Ref_key.target acc) t.entries Oid.Set.empty
  |> Oid.Set.elements

let entries t =
  Ref_key.Tbl.fold (fun _ e acc -> e :: acc) t.entries []
  |> List.sort (fun a b -> Ref_key.compare a.key b.key)

let entries_for_target t target =
  List.filter (fun e -> Oid.equal e.key.Ref_key.target target) (entries t)

let delete_from t src =
  let doomed =
    Ref_key.Tbl.fold
      (fun key _ acc -> if Proc_id.equal key.Ref_key.src src then key :: acc else acc)
      t.entries []
  in
  List.iter (fun key -> ignore (delete t key)) doomed;
  List.sort Ref_key.compare doomed

let drop_for_targets t targets =
  let doomed =
    Ref_key.Tbl.fold
      (fun key _ acc -> if Oid.Set.mem key.Ref_key.target targets then key :: acc else acc)
      t.entries []
  in
  List.iter (fun key -> ignore (delete t key)) doomed;
  List.length doomed

let size t = Ref_key.Tbl.length t.entries
