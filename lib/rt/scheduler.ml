module Heap_queue = Adgc_util.Heap_queue

type t = { mutable now : int; queue : (int, unit -> unit) Heap_queue.t }

let create () = { now = 0; queue = Heap_queue.create ~compare:Int.compare }

let now t = t.now

let schedule_at t ~time f =
  if time < t.now then invalid_arg "Scheduler.schedule_at: time is in the past";
  Heap_queue.push t.queue time f

let schedule_after t ~delay f =
  if delay < 0 then invalid_arg "Scheduler.schedule_after: negative delay";
  Heap_queue.push t.queue (t.now + delay) f

let pending t = Heap_queue.length t.queue

let is_idle t = Heap_queue.is_empty t.queue

let run_next t =
  match Heap_queue.pop t.queue with
  | None -> false
  | Some (time, f) ->
      t.now <- time;
      f ();
      true

let run_until t ~time =
  let continue = ref true in
  while !continue do
    match Heap_queue.peek t.queue with
    | Some (event_time, _) when event_time <= time -> ignore (run_next t)
    | Some _ | None -> continue := false
  done;
  if t.now < time then t.now <- time

let run_for t ~delay = run_until t ~time:(t.now + delay)

let drain ?(limit = 10_000_000) t =
  let executed = ref 0 in
  while !executed < limit && run_next t do
    incr executed
  done;
  !executed

type recurring = { mutable active : bool }

let every t ?phase ~period f =
  if period <= 0 then invalid_arg "Scheduler.every: period must be positive";
  let handle = { active = true } in
  let rec fire () =
    if handle.active then begin
      f ();
      schedule_after t ~delay:period fire
    end
  in
  let phase = match phase with Some p -> p | None -> period in
  schedule_after t ~delay:phase fire;
  handle

let cancel handle = handle.active <- false

(* A lane carries one periodic duty for [n] members through a single
   scheduler event: member fire times live in a lane-local heap and
   only the earliest is armed in the global queue.  At 1k+ processes
   this keeps the global queue at O(duty kinds) instead of
   O(processes x duty kinds) entries, while each member still fires at
   exactly [now + phase_of i + k * period] — the same instants the
   per-member [every] handles produced. *)
type lane = {
  mutable lane_active : bool;
  members : (int, int) Heap_queue.t; (* next fire time -> member *)
  mutable armed_at : int; (* time of the armed event; -1 = none *)
}

let lane t ~n ~phase_of ~period f =
  if period <= 0 then invalid_arg "Scheduler.lane: period must be positive";
  let l = { lane_active = true; members = Heap_queue.create ~compare:Int.compare; armed_at = -1 } in
  for i = 0 to n - 1 do
    let phase = phase_of i in
    if phase < 0 then invalid_arg "Scheduler.lane: negative phase";
    Heap_queue.push l.members (t.now + phase) i
  done;
  let rec arm () =
    match Heap_queue.peek l.members with
    | None -> l.armed_at <- -1
    | Some (time, _) ->
        l.armed_at <- time;
        schedule_at t ~time (fun () ->
            if l.lane_active && l.armed_at = time then begin
              (* Run every member due now (same-time members in push,
                 i.e. FIFO, order), rescheduling each one period out. *)
              let continue = ref true in
              while !continue do
                match Heap_queue.peek l.members with
                | Some (due, _) when due <= t.now -> (
                    match Heap_queue.pop l.members with
                    | Some (_, i) ->
                        Heap_queue.push l.members (due + period) i;
                        f i
                    | None -> continue := false)
                | Some _ | None -> continue := false
              done;
              arm ()
            end)
  in
  arm ();
  l

let cancel_lane l = l.lane_active <- false
