open Adgc_algebra
module Stats = Adgc_util.Stats

let import_ref rt ~at oid =
  if not (Proc_id.equal (Oid.owner oid) at.Process.id) then begin
    let existed = Stub_table.mem at.Process.stubs oid in
    ignore (Stub_table.ensure at.Process.stubs ~now:(Runtime.now rt) oid);
    if not existed then Stats.incr rt.Runtime.stats "dgc.stubs.created"
  end

let rec retry_notice rt ~(exporter : Process.t) ~notice_id =
  match Hashtbl.find_opt exporter.Process.pending_notices notice_id with
  | None -> ()
  | Some pending ->
      Stats.incr rt.Runtime.stats "reflist.notice_retries";
      Runtime.send rt ~src:exporter.Process.id
        ~dst:(Oid.owner pending.Process.notice_target)
        (Msg.Export_notice
           {
             notice_id;
             target = pending.Process.notice_target;
             new_holder = pending.Process.new_holder;
           });
      Scheduler.schedule_after rt.Runtime.sched ~delay:rt.Runtime.config.export_retry_delay
        (fun () -> retry_notice rt ~exporter ~notice_id)

let export_ref rt ~(from_ : Process.t) ~to_ oid =
  let owner = Oid.owner oid in
  if Proc_id.equal owner to_ then ()
  else if Proc_id.equal owner from_.Process.id then begin
    (* Owner-side export: create the (unconfirmed) scion synchronously. *)
    let key = Ref_key.make ~src:to_ ~target:oid in
    if not (Scion_table.mem from_.Process.scions key) then begin
      ignore (Scion_table.ensure from_.Process.scions ~now:(Runtime.now rt) key : Scion_table.entry);
      Stats.incr rt.Runtime.stats "dgc.scions.created"
    end
  end
  else begin
    (* Third-party export: pin our stub, notify the owner, retry until
       acknowledged. *)
    if not (Stub_table.mem from_.Process.stubs oid) then
      invalid_arg
        (Format.asprintf "Reflist.export_ref: %a exports %a without holding a stub" Proc_id.pp
           from_.Process.id Oid.pp oid);
    Stub_table.pin from_.Process.stubs ~now:(Runtime.now rt) oid;
    (* Notice ids are minted per exporter; acks come back to the
       exporter, which consults only its own table. *)
    let notice_id = Process.fresh_notice_id from_ in
    Hashtbl.replace from_.Process.pending_notices notice_id
      { Process.notice_target = oid; new_holder = to_ };
    Stats.incr rt.Runtime.stats "reflist.notices_sent";
    Runtime.send rt ~src:from_.Process.id ~dst:owner
      (Msg.Export_notice { notice_id; target = oid; new_holder = to_ });
    Scheduler.schedule_after rt.Runtime.sched ~delay:rt.Runtime.config.export_retry_delay
      (fun () -> retry_notice rt ~exporter:from_ ~notice_id)
  end

let handle_export_notice rt ~(at : Process.t) ~src ~notice_id ~target ~new_holder =
  if Heap.mem at.Process.heap target then begin
    let key = Ref_key.make ~src:new_holder ~target in
    (* Gauntlet mutant: acknowledge the notice without recording the
       scion — the exporter unpins while the new holder's reference is
       unprotected at the owner. *)
    if
      (not (Scion_table.mem at.Process.scions key))
      && not (Adgc_util.Mc_mutate.enabled "ack_before_delivery")
    then begin
      ignore (Scion_table.ensure at.Process.scions ~now:(Runtime.now rt) key : Scion_table.entry);
      Stats.incr rt.Runtime.stats "dgc.scions.created"
    end
  end
  else
    (* The exporter violated the pinning discipline, or the notice
       outlived the object; acknowledge anyway so it stops retrying. *)
    Stats.incr rt.Runtime.stats "reflist.notice_dead_target";
  Runtime.send rt ~src:at.Process.id ~dst:src
    (Msg.Export_ack { notice_id; target; new_holder })

let handle_export_ack _rt ~(at : Process.t) ~notice_id =
  match Hashtbl.find_opt at.Process.pending_notices notice_id with
  | None -> () (* duplicate ack *)
  | Some pending ->
      Hashtbl.remove at.Process.pending_notices notice_id;
      Stub_table.unpin at.Process.stubs pending.Process.notice_target

let stub_groups (p : Process.t) =
  List.fold_left
    (fun acc (target, ic) ->
      let owner = Oid.owner target in
      let prev = Option.value ~default:Oid.Map.empty (Proc_id.Map.find_opt owner acc) in
      Proc_id.Map.add owner (Oid.Map.add target ic prev) acc)
    Proc_id.Map.empty
    (Stub_table.advertised p.Process.stubs)

let send_set_to rt (p : Process.t) ~dst ~targets =
  let seqno = Process.next_out_seqno p ~dst in
  Stats.incr rt.Runtime.stats "reflist.sets_sent";
  Runtime.send_dgc rt ~src:p.Process.id ~dst (Msg.New_set_stubs { seqno; targets })

let would_advertise (p : Process.t) =
  Stub_table.advertised p.Process.stubs <> []
  || not (Proc_id.Set.is_empty p.Process.set_recipients)

let send_new_sets rt (p : Process.t) =
  let groups = stub_groups p in
  let current = Proc_id.Map.fold (fun owner _ acc -> Proc_id.Set.add owner acc) groups Proc_id.Set.empty in
  let all = Proc_id.Set.union current p.Process.set_recipients in
  Proc_id.Set.iter
    (fun dst ->
      let targets = Option.value ~default:Oid.Map.empty (Proc_id.Map.find_opt dst groups) in
      send_set_to rt p ~dst ~targets)
    all;
  p.Process.set_recipients <- current;
  Stub_table.clear_fresh p.Process.stubs

let probe_idle_scions rt (p : Process.t) ~threshold =
  List.iter
    (fun holder ->
      Stats.incr rt.Runtime.stats "reflist.probes_sent";
      Runtime.send_dgc rt ~src:p.Process.id ~dst:holder Msg.Scion_probe)
    (Scion_table.idle_sources p.Process.scions ~now:(Runtime.now rt) ~threshold)

let reap_dead_holders rt (p : Process.t) =
  if rt.Runtime.config.failure_detection then
    List.iter
      (fun holder ->
        let deleted = Scion_table.delete_from p.Process.scions holder in
        if deleted <> [] then begin
          Stats.add rt.Runtime.stats "reflist.scions_reaped" (List.length deleted);
          Runtime.log rt ~topic:"reflist" "%a declared %a dead, %d scions reaped" Proc_id.pp
            p.Process.id Proc_id.pp holder (List.length deleted)
        end)
      (Scion_table.idle_sources p.Process.scions ~now:(Runtime.now rt)
         ~threshold:rt.Runtime.config.holder_silence_limit)

let handle_probe rt ~(at : Process.t) ~src =
  (* Answer with a fresh stub set for the prober, listing whatever we
     still reference there (possibly nothing). *)
  let groups = stub_groups at in
  let targets = Option.value ~default:Oid.Map.empty (Proc_id.Map.find_opt src groups) in
  send_set_to rt at ~dst:src ~targets

let handle_new_set rt ~(at : Process.t) ~src ~seqno ~targets =
  let result =
    Scion_table.apply_new_set ~grace:rt.Runtime.config.scion_grace at.Process.scions
      ~now:(Runtime.now rt) ~src ~seqno ~targets
  in
  if result.Scion_table.stale then Stats.incr rt.Runtime.stats "reflist.sets_stale"
  else begin
    List.iter
      (fun key ->
        Stats.incr rt.Runtime.stats "dgc.scions.deleted";
        Runtime.log rt ~topic:"reflist" "scion deleted %a at %a" Ref_key.pp key Proc_id.pp
          at.Process.id)
      result.Scion_table.deleted;
    (* Healing: the holder advertises an object we have no scion for
       (export notice lost).  Recreate the scion if the object is
       still with us; it arrives already confirmed since the holder
       just listed it. *)
    List.iter
      (fun (target, stub_ic) ->
        if Heap.mem at.Process.heap target then begin
          Stats.incr rt.Runtime.stats "reflist.scions_healed";
          let key = Ref_key.make ~src ~target in
          let entry = Scion_table.ensure at.Process.scions ~now:(Runtime.now rt) key in
          Scion_table.confirm entry;
          Scion_table.sync_ic entry stub_ic
        end)
      result.Scion_table.unknown
  end
