(** Discrete-event scheduler.

    Simulated time is an integer tick count (think microseconds).
    Events scheduled for the same tick run in scheduling (FIFO) order,
    so a run is fully determined by the seed that drove the latency
    draws. *)

type t

val create : unit -> t

val now : t -> int

val schedule_at : t -> time:int -> (unit -> unit) -> unit
(** [time] must not be in the past. *)

val schedule_after : t -> delay:int -> (unit -> unit) -> unit
(** Non-negative delay. *)

val pending : t -> int

val is_idle : t -> bool

val run_next : t -> bool
(** Execute the earliest event; [false] when the queue is empty. *)

val run_until : t -> time:int -> unit
(** Execute every event with timestamp [<= time], then advance the
    clock to [time] even if idle earlier. *)

val run_for : t -> delay:int -> unit

val drain : ?limit:int -> t -> int
(** Run events until the queue is empty or [limit] events have run
    (default 10 million, a runaway guard); returns the number
    executed. *)

type recurring

val every :
  t -> ?phase:int -> period:int -> (unit -> unit) -> recurring
(** Install a recurring event: first firing at [now + phase] (default:
    one full period), then every [period] ticks until cancelled. *)

val cancel : recurring -> unit

type lane

val lane :
  t -> n:int -> phase_of:(int -> int) -> period:int -> (int -> unit) -> lane
(** One periodic duty shared by [n] members through a {e single}
    scheduler event: member [i] first fires at [now + phase_of i] and
    every [period] ticks after, exactly as [n] separate {!every}
    handles would, but the global event queue holds one entry per lane
    instead of one per member — the sharded-scheduler layout that
    keeps 1k+ process cliques from drowning the queue.  Members due at
    the same tick run in FIFO order of their previous firing. *)

val cancel_lane : lane -> unit
