(** Messages exchanged between processes.

    Everything that crosses a process boundary is one of these
    payloads inside an envelope; the network can delay, drop and
    reorder envelopes arbitrarily, and every protocol in this
    repository is written to stay safe under that (the paper's
    "tolerates message loss"). *)

open Adgc_algebra

type payload =
  | Rmi_request of {
      req_id : int;
      target : Oid.t;  (** invoked object, owned by the destination *)
      args : Oid.t list;  (** references exported with the call *)
      stub_ic : int;
          (** the caller's invocation counter for [target] after this
              call's bump, piggy-backed as the paper prescribes; the
              owner's scion counter adopts heard values (max), so the
              two ends converge without ever double-counting in-flight
              or lost invocations *)
    }
  | Rmi_reply of {
      req_id : int;
      target : Oid.t;  (** the object that was invoked *)
      results : Oid.t list;  (** references exported with the reply *)
    }
  | Export_notice of {
      notice_id : int;
      target : Oid.t;  (** object owned by the destination *)
      new_holder : Proc_id.t;  (** process about to receive the reference *)
    }
      (** Third-party export handshake: the sender is forwarding a
          reference to [target] to [new_holder]; the owner must create
          a (pinned) scion before the reference lands. *)
  | Export_ack of { notice_id : int; target : Oid.t; new_holder : Proc_id.t }
  | New_set_stubs of {
      seqno : int;  (** per (sender, destination) sequence number *)
      targets : int Oid.Map.t;
          (** objects of the destination the sender still references,
              with the stub-side invocation counter of each — the
              counter lets the owner re-synchronize a scion whose
              invocations were lost in transit (a lost request bumps
              only the stub side and would otherwise wedge the IC
              safety check forever) *)
    }
  | Scion_probe
      (** Owner-driven keepalive: "I still hold scions for you but have
          not heard a stub set in a while — send one."  Makes the
          protocol immune to losing the final (empty) stub set. *)
  | Cdm of Cdm.t
  | Cdm_delete of { id : Detection_id.t; scions : Ref_key.t list }
      (** Broadcast deletion mode: the concluding process tells other
          owners which of their scions were proven part of the cycle. *)
  | Bt of Btmsg.t  (** back-tracing baseline traffic *)
  | Hughes of Hmsg.t  (** timestamp-propagation baseline traffic *)
  | Batch of payload list
      (** Coalesced DGC control traffic: every payload queued for the
          same destination within one flush window travels as a single
          latency-charged envelope ({!Runtime.send_dgc}).  Delivery
          unpacks in queueing order.  Never nested. *)
  | Group_fwd of { orig_src : Proc_id.t; inner : payload }
      (** Last hop of group-relayed DGC traffic: the destination
          group's proxy hands the payload to its final recipient, who
          handles [inner] exactly as if [orig_src] had sent it
          directly (the protocol handlers see the true holder, not the
          relay).  Never nested; [inner] is always a bare DGC control
          payload. *)
  | Group_relay of { entries : (Proc_id.t * Proc_id.t * payload) list }
      (** Aggregated cross-group DGC traffic: each entry is
          [(orig_src, final_dst, payload)].  Members hand their
          cross-group control messages to their group's proxy, proxies
          coalesce everything bound for the same destination group
          into one of these per flush window, and the receiving proxy
          unpacks — delivering local entries and {!Group_fwd}-ing the
          rest.  The only envelope kind that crosses a group boundary
          on the DGC control plane when grouping is on. *)

type t = {
  src : Proc_id.t;
  dst : Proc_id.t;
  seq : int;
      (** per-sender envelope sequence number; the receiver ignores a
          (src, seq) pair it has already processed, which makes every
          delivery idempotent under network duplication.  Negative
          means unsequenced (never deduplicated) — hand-built test
          messages that bypass {!Runtime.send} use that. *)
  sent_at : int;
  payload : payload;
}

val make : ?seq:int -> src:Proc_id.t -> dst:Proc_id.t -> sent_at:int -> payload -> t
(** [seq] defaults to [-1] (unsequenced). *)

val kind : payload -> string
(** Short tag for statistics counters ("rmi_request", "cdm", ...). *)

val payload_refs : payload -> Oid.t list
(** Every object reference syntactically present in the payload
    (wire-accounting view). *)

val live_refs : payload -> Oid.t list
(** Object references an in-flight message actually keeps reachable —
    the refs its {e delivery} can import.  Differs from
    {!payload_refs} in one place: an [Rmi_reply]'s [target] field is
    never imported on delivery (only [results] are), so a reply racing
    the collector does not pin the called object.  This is the single
    ground-truth tracer seed set shared by {!Cluster.globally_live},
    the safety oracle and the model checker. *)

val to_sval : t -> Adgc_serial.Sval.t
(** Wire representation used for byte accounting. *)

val payload_sval : payload -> Adgc_serial.Sval.t

val payload_of_sval : Adgc_serial.Sval.t -> payload option
(** Inverse of {!payload_sval}; [None] on any malformed value,
    including a [Batch] nested inside a [Batch]. *)

val of_sval : Adgc_serial.Sval.t -> t option
(** Inverse of {!to_sval}. *)

val pp : Format.formatter -> t -> unit
