(* Hierarchical process groups: pure arithmetic over the flat rank
   space.  A group is a contiguous slice of [size] ranks; group g owns
   ranks [g*size, (g+1)*size).  Grouping is a routing overlay only —
   no protocol state lives here — so every helper is a total function
   of (size, rank) plus an aliveness predicate for proxy election. *)

let enabled ~size = size > 1

let of_rank ~size r = if size <= 1 then r else r / size

let same ~size a b = size <= 1 || a / size = b / size

let count ~size ~n = if size <= 1 then n else (n + size - 1) / size

let members ~size ~n g =
  if size <= 1 then if g >= 0 && g < n then [ g ] else []
  else
    let lo = g * size and hi = Int.min n ((g + 1) * size) in
    if lo >= n then [] else List.init (hi - lo) (fun i -> lo + i)

(* The group's proxy is its lowest alive rank — a deterministic
   election every member computes locally from its failure view.
   Electing at send time (rather than caching) gives crash failover
   for free: the tick after the proxy dies, traffic flows through the
   next member. *)
let proxy ~size ~n ~alive g =
  let lo = if size <= 1 then g else g * size in
  let hi = if size <= 1 then g + 1 else Int.min n ((g + 1) * size) in
  let rec go r = if r >= hi then None else if alive r then Some r else go (r + 1) in
  if lo < 0 || lo >= n then None else go lo
