type latency = Inherit_latency | Fixed of int | Uniform of { min : int; max : int }

type loss =
  | Inherit_loss
  | Bernoulli of float
  | Gilbert_elliott of { p_enter : float; p_exit : float; loss_good : float; loss_burst : float }

type link = {
  latency : latency;
  loss : loss;
  duplicate_prob : float;
  reorder_prob : float;
  reorder_skew : int;
}

let default_link =
  { latency = Inherit_latency; loss = Inherit_loss; duplicate_prob = 0.0; reorder_prob = 0.0; reorder_skew = 0 }

type event =
  | Partition of { links : (int * int) list; at : int; heal : int option }
  | Crash of { proc : int; at : int }
  | Restart of { proc : int; at : int }

type plan = {
  default_link : link;
  overrides : ((int * int) * link) list;
  link_faults_until : int option;
  events : event list;
}

let none = { default_link; overrides = []; link_faults_until = None; events = [] }

let link_for plan ~src ~dst =
  match List.assoc_opt (src, dst) plan.overrides with
  | Some l -> l
  | None -> plan.default_link

let split_halves ~n_procs =
  let half = n_procs / 2 in
  let acc = ref [] in
  for a = 0 to half - 1 do
    for b = half to n_procs - 1 do
      acc := (a, b) :: !acc
    done
  done;
  List.rev !acc

type profile = Loss_burst | Duplicate | Reorder | Partition_heal | Crash_restart

let profiles =
  [
    ("loss-burst", Loss_burst);
    ("duplicate", Duplicate);
    ("reorder", Reorder);
    ("partition-heal", Partition_heal);
    ("crash-restart", Crash_restart);
  ]

let profile_of_string s = List.assoc_opt (String.lowercase_ascii s) profiles

let profile_name p = fst (List.find (fun (_, q) -> q = p) profiles)

let plan_of_profile ?(start = 4_000) ?(stop = 18_000) ~n_procs profile =
  match profile with
  | Loss_burst ->
      {
        none with
        default_link =
          {
            default_link with
            loss = Gilbert_elliott { p_enter = 0.08; p_exit = 0.30; loss_good = 0.02; loss_burst = 0.75 };
          };
        link_faults_until = Some stop;
      }
  | Duplicate ->
      { none with default_link = { default_link with duplicate_prob = 0.30 }; link_faults_until = Some stop }
  | Reorder ->
      (* Skew must stay well under scion_grace (see the interface);
         200 is an order of magnitude below even Config.quick's. *)
      {
        none with
        default_link = { default_link with reorder_prob = 0.50; reorder_skew = 200 };
        link_faults_until = Some stop;
      }
  | Partition_heal ->
      {
        none with
        events = [ Partition { links = split_halves ~n_procs; at = start; heal = Some stop } ];
      }
  | Crash_restart ->
      let proc = if n_procs > 1 then 1 else 0 in
      { none with events = [ Crash { proc; at = start }; Restart { proc; at = stop } ] }
