(** Shared engine-shell context threading the simulator's pieces
    together.

    After the kernel/engine split, this record owns only the
    {e shared, process-agnostic} machinery: the scheduler, the
    network, stats/trace/telemetry sinks and the immutable run
    configuration.  All {e protocol} state (request/notice counters,
    pending calls and export handshakes, DGC batch queues, RMI
    behaviors) lives on the individual {!Process.t}, so handling a
    delivery or running a duty is a per-process transition plus
    outbound messages.  {!Reflist}, {!Rmi}, {!Lgc} and the detectors
    all operate through this record; {!Cluster} builds it and
    installs {!Dispatch.deliver} as the network's delivery
    function. *)

open Adgc_algebra

type config = {
  dgc_enabled : bool;
      (** master switch for the reference-listing bookkeeping on the
          RMI path (stub/scion creation, pins, counters).  Disabling
          it models the original platform without any DGC — the
          baseline of the paper's Table 1.  Marshalling and message
          traffic are unaffected, so the comparison isolates the DGC
          overhead. *)
  count_replies : bool;
      (** bump the invocation counters on RMI replies too (the paper
          allows either; default off) *)
  export_retry_delay : int;
      (** delay between retransmissions of an unacknowledged
          [Export_notice] *)
  rmi_pin_timeout : int;
      (** after this long, pins taken for an RMI whose reply never
          arrived are dropped (limits floating garbage under loss) *)
  rmi_marshal : bool;
      (** marshal RMI argument descriptors through the compact codec
          on the caller (the real work Table 1's base cost measures) *)
  lgc_period : int;
  new_set_period : int;
  scion_grace : int;
      (** how long an unconfirmed scion is protected from stub sets
          that do not list it; must exceed the maximum message
          lifetime plus one advertisement period (see
          {!Scion_table.apply_new_set}) *)
  failure_detection : bool;
      (** reclaim scions whose holder has been silent (no stub set,
          despite probes) for {!field:holder_silence_limit} ticks —
          lease-like semantics for crash-stop failures.  UNSAFE under
          false suspicion: a partition outlasting the limit reclaims
          objects a live-but-unreachable holder still references; the
          tests demonstrate both directions of the trade-off. *)
  holder_silence_limit : int;
  dgc_batching : bool;
      (** coalesce DGC control traffic (stub sets, probes, CDMs,
          proven-cycle deletions) per destination into {!Msg.Batch}
          envelopes flushed every {!field:dgc_batch_window} ticks;
          default off (every message hits the wire individually, the
          seed behaviour) *)
  dgc_batch_window : int;
      (** how long {!send_dgc} may hold a queued payload before its
          batch is flushed.  Bounds the extra latency added to CDM
          propagation and stub-set timeliness — keep it well under
          [new_set_period] and the detector's scan period. *)
  group_size : int;
      (** hierarchical-group overlay: ranks are partitioned into
          contiguous groups of this many processes ({!Group}).  [<= 1]
          means the flat clique (the default).  Turning this on alone
          only adds accounting — every envelope crossing a group
          boundary bumps [net.msg.xgroup] (and [net.msg.xgroup.dgc]
          for control-plane kinds) — which is what makes the flat
          baseline of the cut-factor comparison honest. *)
  group_relay : bool;
      (** route cross-group DGC control traffic ({!send_dgc}) through
          group proxies as aggregated {!Msg.Group_relay} envelopes
          instead of point-to-point.  Requires [group_size > 1] to
          have any effect.  Protocol outcomes are unaffected (the
          handlers see the original sender); only message topology and
          latency change. *)
  group_window : int;
      (** how long a cross-group entry may sit in its per-group relay
          queue before the {!Msg.Group_relay} flush.  [0] flushes
          synchronously inside {!send_dgc} — no scheduler involvement,
          which the model checker's frozen-clock mode requires. *)
}
(** Immutable: fix the knobs before building the cluster (functional
    record update on {!default_config}).  Sharing one config value
    between clusters is now harmless — nothing can mutate it under a
    reader's feet. *)

val default_config : unit -> config

type t = {
  sched : Scheduler.t;
  net : Network.t;
  procs : Process.t array;
  rng : Adgc_util.Rng.t;
  stats : Adgc_util.Stats.t;
  trace : Adgc_util.Trace.t;
  obs : Adgc_obs.Span.t;
      (** structured span ring; disabled (and then zero-cost) unless
          the cluster was created with [~telemetry:true] *)
  lineage : Adgc_obs.Lineage.t;
      (** per-detection hop provenance; same enablement as [obs] *)
  mutable run_span : int;  (** root span every other span nests under *)
  config : config;
  mutable on_reclaim : (Proc_id.t -> Oid.t -> unit) option;
      (** called for every object swept by any LGC (test hook) *)
  mutable on_pre_sweep : (Proc_id.t -> Oid.t list -> unit) option;
      (** called with the full doomed list before an LGC removes
          anything, while every heap is still intact — the safety
          checker computes ground truth here *)
}

type behavior = t -> Process.t -> target:Oid.t -> args:Oid.t list -> Oid.t list
(** The user-facing RMI body: receives the runtime context and the
    callee process plus the imported argument references; returns the
    references to ship back in the reply.  {!Rmi.call} closes it over
    the context and stores the result on the caller as a
    {!Process.behavior}. *)

val create :
  sched:Scheduler.t ->
  net:Network.t ->
  procs:Process.t array ->
  rng:Adgc_util.Rng.t ->
  stats:Adgc_util.Stats.t ->
  trace:Adgc_util.Trace.t ->
  ?obs:Adgc_obs.Span.t ->
  ?lineage:Adgc_obs.Lineage.t ->
  config:config ->
  unit ->
  t
(** When [obs]/[lineage] are omitted, disabled instances are used (a
    1-slot span ring), so instrumented code never needs a null
    check. *)

val proc : t -> Proc_id.t -> Process.t

val proc_count : t -> int

val now : t -> int

val log : t -> topic:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Append to the trace buffer, stamped with simulated time. *)

val send : t -> src:Proc_id.t -> dst:Proc_id.t -> Msg.payload -> unit

val send_dgc : t -> src:Proc_id.t -> dst:Proc_id.t -> Msg.payload -> unit
(** Like {!send}, for delay-tolerant DGC control traffic.  With
    [config.dgc_batching] off this is exactly [send]; with it on, the
    payload joins the sender's per-destination queue and travels
    inside one {!Msg.Batch} when the window closes
    ([net.msg.batched] / [net.msg.batch_flushes] count the
    coalescing).  Crash-stop filtering applies at flush time. *)

val flush_batch : t -> src:Proc_id.t -> dst:Proc_id.t -> unit
(** Flush one pending batch immediately (idempotent). *)

val flush_all_batches : t -> unit
(** Flush every process's pending batches immediately (tests and
    shutdown). *)

(** {2 Hierarchical groups} — see {!field:config.group_size}. *)

val same_group : t -> Proc_id.t -> Proc_id.t -> bool
(** Whether two processes share a group ([true] for everyone in flat
    mode). *)

val group_of : t -> Proc_id.t -> int

val group_proxy : t -> int -> int option
(** The group's current proxy rank — its lowest alive member — or
    [None] when the whole group is down.  Recomputed from the live
    aliveness view on every call (crash failover needs no handshake). *)

val relay_enqueue : t -> src:Proc_id.t -> orig_src:Proc_id.t -> final_dst:Proc_id.t -> Msg.payload -> unit
(** Queue one cross-group control payload at [src] for the group of
    [final_dst]; flushed as part of one {!Msg.Group_relay} after
    [config.group_window] ticks (synchronously when the window is 0).
    {!Dispatch} uses this to forward relay entries that are still
    short of their destination group. *)

val flush_relay : t -> src:Proc_id.t -> group:int -> unit
(** Flush [src]'s pending relay queue toward one destination group
    (idempotent).  Elects next hop at flush time. *)

val flush_all_relays : t -> unit
(** Flush every process's pending relay queues (tests and shutdown). *)
