(** Shared context threading the simulator's pieces together.

    {!Reflist}, {!Rmi}, {!Lgc} and the detectors all operate on this
    record; {!Cluster} builds it and dispatches incoming messages to
    the right handler. *)

open Adgc_algebra

type config = {
  mutable dgc_enabled : bool;
      (** master switch for the reference-listing bookkeeping on the
          RMI path (stub/scion creation, pins, counters).  Disabling
          it models the original platform without any DGC — the
          baseline of the paper's Table 1.  Marshalling and message
          traffic are unaffected, so the comparison isolates the DGC
          overhead. *)
  mutable count_replies : bool;
      (** bump the invocation counters on RMI replies too (the paper
          allows either; default off) *)
  mutable export_retry_delay : int;
      (** delay between retransmissions of an unacknowledged
          [Export_notice] *)
  mutable rmi_pin_timeout : int;
      (** after this long, pins taken for an RMI whose reply never
          arrived are dropped (limits floating garbage under loss) *)
  mutable rmi_marshal : bool;
      (** marshal RMI argument descriptors through the compact codec
          on the caller (the real work Table 1's base cost measures) *)
  mutable lgc_period : int;
  mutable new_set_period : int;
  mutable scion_grace : int;
      (** how long an unconfirmed scion is protected from stub sets
          that do not list it; must exceed the maximum message
          lifetime plus one advertisement period (see
          {!Scion_table.apply_new_set}) *)
  mutable failure_detection : bool;
      (** reclaim scions whose holder has been silent (no stub set,
          despite probes) for {!field:holder_silence_limit} ticks —
          lease-like semantics for crash-stop failures.  UNSAFE under
          false suspicion: a partition outlasting the limit reclaims
          objects a live-but-unreachable holder still references; the
          tests demonstrate both directions of the trade-off. *)
  mutable holder_silence_limit : int;
  mutable dgc_batching : bool;
      (** coalesce DGC control traffic (stub sets, probes, CDMs,
          proven-cycle deletions) per destination into {!Msg.Batch}
          envelopes flushed every {!field:dgc_batch_window} ticks;
          default off (every message hits the wire individually, the
          seed behaviour) *)
  mutable dgc_batch_window : int;
      (** how long {!send_dgc} may hold a queued payload before its
          batch is flushed.  Bounds the extra latency added to CDM
          propagation and stub-set timeliness — keep it well under
          [new_set_period] and the detector's scan period. *)
}

val default_config : unit -> config

type batch_queue = { mutable queued : Msg.payload list; opened_at : int }
(** Payloads (newest first) plus the tick the queue opened, so the
    flush span covers the whole coalescing window. *)

type t = {
  sched : Scheduler.t;
  net : Network.t;
  procs : Process.t array;
  rng : Adgc_util.Rng.t;
  stats : Adgc_util.Stats.t;
  trace : Adgc_util.Trace.t;
  obs : Adgc_obs.Span.t;
      (** structured span ring; disabled (and then zero-cost) unless
          the cluster was created with [~telemetry:true] *)
  lineage : Adgc_obs.Lineage.t;
      (** per-detection hop provenance; same enablement as [obs] *)
  mutable run_span : int;  (** root span every other span nests under *)
  config : config;
  behaviors : (int, behavior) Hashtbl.t;  (** pending RMI bodies, by request id *)
  pending_calls : (int, pending_call) Hashtbl.t;  (** caller-side in-flight RMIs *)
  pending_notices : (int, pending_notice) Hashtbl.t;
      (** third-party export handshakes awaiting acknowledgement *)
  pending_batches : (int * int, batch_queue) Hashtbl.t;
      (** DGC payloads queued per (src, dst) awaiting their batch
          flush *)
  mutable next_req_id : int;
  mutable next_notice_id : int;
  mutable on_reclaim : (Proc_id.t -> Oid.t -> unit) option;
      (** called for every object swept by any LGC (test hook) *)
  mutable on_pre_sweep : (Proc_id.t -> Oid.t list -> unit) option;
      (** called with the full doomed list before an LGC removes
          anything, while every heap is still intact — the safety
          checker computes ground truth here *)
}

and behavior = t -> Process.t -> target:Oid.t -> args:Oid.t list -> Oid.t list
(** The body run at the callee: receives the callee process and the
    imported argument references; returns the references to ship back
    in the reply. *)

and pending_call = {
  caller : Proc_id.t;
  call_target : Oid.t;
  pinned : Oid.t list;  (** stubs pinned at the caller for this call *)
  on_reply : (Oid.t list -> unit) option;
}

and pending_notice = { exporter : Proc_id.t; notice_target : Oid.t; new_holder : Proc_id.t }

val create :
  sched:Scheduler.t ->
  net:Network.t ->
  procs:Process.t array ->
  rng:Adgc_util.Rng.t ->
  stats:Adgc_util.Stats.t ->
  trace:Adgc_util.Trace.t ->
  ?obs:Adgc_obs.Span.t ->
  ?lineage:Adgc_obs.Lineage.t ->
  config:config ->
  unit ->
  t
(** When [obs]/[lineage] are omitted, disabled instances are used (a
    1-slot span ring), so instrumented code never needs a null
    check. *)

val proc : t -> Proc_id.t -> Process.t

val proc_count : t -> int

val now : t -> int

val log : t -> topic:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Append to the trace buffer, stamped with simulated time. *)

val fresh_req_id : t -> int

val fresh_notice_id : t -> int

val send : t -> src:Proc_id.t -> dst:Proc_id.t -> Msg.payload -> unit

val send_dgc : t -> src:Proc_id.t -> dst:Proc_id.t -> Msg.payload -> unit
(** Like {!send}, for delay-tolerant DGC control traffic.  With
    [config.dgc_batching] off this is exactly [send]; with it on, the
    payload joins the (src, dst) queue and travels inside one
    {!Msg.Batch} when the window closes ([net.msg.batched] /
    [net.msg.batch_flushes] count the coalescing).  Crash-stop
    filtering applies at flush time. *)

val flush_batch : t -> src:Proc_id.t -> dst:Proc_id.t -> unit
(** Flush one pending batch immediately (idempotent). *)

val flush_all_batches : t -> unit
(** Flush every pending batch immediately (tests and shutdown). *)
