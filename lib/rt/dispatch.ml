open Adgc_algebra
module Stats = Adgc_util.Stats
module Span = Adgc_obs.Span
module Lineage = Adgc_obs.Lineage

(* Payload handling is separate from envelope acceptance: the
   duplicate check below runs once per envelope, so the constituents
   of a [Batch] (which share their envelope's sequence number) are
   not mistaken for replays of each other. *)
let rec handle_payload rt (msg : Msg.t) (at : Process.t) payload =
  match payload with
  | Msg.Batch payloads ->
      (* Unpack in queueing order; each constituent is handled as if
         it had arrived alone (same envelope timestamps). *)
      Stats.add rt.Runtime.stats "net.msg.unbatched" (List.length payloads);
      List.iter (handle_payload rt msg at) payloads
  | Msg.Rmi_request { req_id; target; args; stub_ic } ->
      Rmi.handle_request rt ~at ~src:msg.Msg.src ~req_id ~target ~args ~stub_ic
  | Msg.Rmi_reply { req_id; target; results } -> Rmi.handle_reply rt ~at ~req_id ~target ~results
  | Msg.Export_notice { notice_id; target; new_holder } ->
      Reflist.handle_export_notice rt ~at ~src:msg.Msg.src ~notice_id ~target ~new_holder
  | Msg.Export_ack { notice_id; _ } -> Reflist.handle_export_ack rt ~at ~notice_id
  | Msg.New_set_stubs { seqno; targets } ->
      Reflist.handle_new_set rt ~at ~src:msg.Msg.src ~seqno ~targets
  | Msg.Scion_probe -> Reflist.handle_probe rt ~at ~src:msg.Msg.src
  | Msg.Cdm cdm ->
      (* One network hop of the detection: spans the transit time and
         nests under the detection span when lineage knows it. *)
      if Span.enabled rt.Runtime.obs then begin
        let parent = Lineage.span rt.Runtime.lineage cdm.Cdm.id in
        let span =
          Span.begin_span rt.Runtime.obs ~time:msg.Msg.sent_at ?parent
            ~proc:(Proc_id.to_int msg.Msg.dst) ~kind:Span.Cdm_hop
            (Printf.sprintf "cdm %s hop %d" (Detection_id.to_string cdm.Cdm.id) cdm.Cdm.hops)
        in
        Span.end_span rt.Runtime.obs
          ~time:(Scheduler.now rt.Runtime.sched)
          ~args:
            [
              ("from", Proc_id.to_string msg.Msg.src);
              ("budget", string_of_int cdm.Cdm.budget);
            ]
          span
      end;
      (match at.Process.on_cdm with
      | Some f -> f cdm
      | None -> Stats.incr rt.Runtime.stats "cdm.unhandled")
  | Msg.Cdm_delete { id; scions } -> (
      match at.Process.on_cdm_delete with
      | Some f -> f id scions
      | None -> Stats.incr rt.Runtime.stats "cdm_delete.unhandled")
  | Msg.Bt bt -> (
      match at.Process.on_bt with
      | Some f -> f ~src:msg.Msg.src bt
      | None -> Stats.incr rt.Runtime.stats "bt.unhandled")
  | Msg.Hughes h -> (
      match at.Process.on_hughes with
      | Some f -> f ~src:msg.Msg.src h
      | None -> Stats.incr rt.Runtime.stats "hughes.unhandled")
  | Msg.Group_fwd { orig_src; inner } ->
      (* Last hop of a relayed payload: handle exactly as if the
         original sender had sent it directly — every protocol handler
         keys its state on the true holder, not the relay. *)
      Stats.incr rt.Runtime.stats "group.fwds.delivered";
      handle_payload rt { msg with Msg.src = orig_src } at inner
  | Msg.Group_relay { entries } ->
      List.iter
        (fun (orig_src, final_dst, payload) ->
          if Proc_id.equal final_dst at.Process.id then
            handle_payload rt { msg with Msg.src = orig_src } at payload
          else if Runtime.same_group rt at.Process.id final_dst then begin
            (* Entry for a fellow group member: one intra-group hop. *)
            Stats.incr rt.Runtime.stats "group.fwds";
            Runtime.send rt ~src:at.Process.id ~dst:final_dst
              (Msg.Group_fwd { orig_src; inner = payload })
          end
          else
            (* Still short of the destination group (we are the
               sender's group proxy, or routing went stale across a
               crash): queue it onward toward that group. *)
            Runtime.relay_enqueue rt ~src:at.Process.id ~orig_src ~final_dst payload)
        entries

let deliver rt (msg : Msg.t) =
  let at = Runtime.proc rt msg.Msg.dst in
  if not at.Process.alive then Stats.incr rt.Runtime.stats "net.msg.dead_endpoint"
  else if not (Process.note_delivery at ~src:msg.Msg.src ~seq:msg.Msg.seq) then
    (* A replayed envelope (network duplication, or an adversarial
       re-send in the tests): every handler above runs at most once
       per sequenced envelope, which is what makes delivery
       idempotent. *)
    Stats.incr rt.Runtime.stats "net.msg.duplicate_ignored"
  else handle_payload rt msg at msg.Msg.payload
