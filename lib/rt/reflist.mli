(** The acyclic distributed collector: reference listing.

    Implements the paper's substrate (§1): stub/scion creation when
    references are exported and imported, the periodic [NewSetStubs]
    exchange that lets owners discard scions, and a loss-tolerant
    handshake for third-party reference exports.

    Safety argument for the export handshake, under arbitrary message
    loss and reordering:

    - an {e owner-side} export (the sender owns the object) creates
      the scion synchronously, before the reference leaves — there is
      no window;
    - a {e third-party} export pins the sender's own stub until the
      owner acknowledges the new scion, so the sender keeps
      advertising the target and the owner cannot lose its last scion
      while the handshake (retried forever) is incomplete;
    - a fresh scion is unconfirmed: it cannot be deleted by stub sets
      computed before the new holder knew the reference, only by a set
      that follows one that listed the target;
    - finally, a stub set listing a target with no scion recreates it
      ("healing", covers a lost notice after its retransmissions were
      also lost), except for tombstoned keys the cycle detector
      deliberately killed. *)

open Adgc_algebra

val export_ref : Runtime.t -> from_:Process.t -> to_:Proc_id.t -> Oid.t -> unit
(** Run the scion-creation side of exporting one reference from
    [from_] to [to_].  No-op when [to_] owns the object.
    @raise Invalid_argument on a third-party export of a reference the
    sender holds no stub for. *)

val import_ref : Runtime.t -> at:Process.t -> Oid.t -> unit
(** Ensure a (fresh) stub exists for a reference that just arrived.
    No-op for local objects. *)

val handle_export_notice :
  Runtime.t -> at:Process.t -> src:Proc_id.t -> notice_id:int -> target:Oid.t -> new_holder:Proc_id.t -> unit

val handle_export_ack : Runtime.t -> at:Process.t -> notice_id:int -> unit

val would_advertise : Process.t -> bool
(** [send_new_sets] would emit at least one message: the process has
    stubs to list, or last-round recipients owed a (possibly empty)
    retraction set.  When false a round is a pure no-op — every fresh
    mark is already clear. *)

val send_new_sets : Runtime.t -> Process.t -> unit
(** One advertisement round: send each owner the set of its objects
    this process still references (plus one trailing set to owners
    advertised last round), then clear the freshness marks. *)

val handle_new_set :
  Runtime.t -> at:Process.t -> src:Proc_id.t -> seqno:int -> targets:int Oid.Map.t -> unit

val probe_idle_scions : Runtime.t -> Process.t -> threshold:int -> unit
(** Owner side of the keepalive: probe every holder from which no stub
    set has arrived for [threshold] ticks while we still hold scions
    for it.  Without this, losing a holder's final (empty) stub set
    would leak the scion forever. *)

val handle_probe : Runtime.t -> at:Process.t -> src:Proc_id.t -> unit
(** Holder side: answer with a fresh stub set for the prober. *)

val reap_dead_holders : Runtime.t -> Process.t -> unit
(** When [failure_detection] is configured: drop every scion whose
    holder has been silent past [holder_silence_limit] (see the config
    documentation for the safety trade-off).  No-op otherwise. *)
