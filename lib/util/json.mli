(** Minimal JSON: AST, deterministic printer, parser and a small
    JSON-Schema-subset validator.

    The printer is byte-stable: the same document always renders the
    same string, which the deterministic-replay tests rely on.  Use
    {!obj_sorted} when field order should not depend on construction
    order. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val obj_sorted : (string * t) list -> t
(** [Obj] with fields sorted by name. *)

val of_float : float -> t
(** [Float f], except NaN and infinities become [Null] (JSON has no
    spelling for them). *)

val to_string : t -> string
(** Compact, single-line, deterministic rendering. *)

val to_string_pretty : t -> string
(** Indented rendering (trailing newline); same escaping rules. *)

val pp : Format.formatter -> t -> unit

val of_string : string -> (t, string) result

val validate : schema:t -> t -> (unit, string) result
(** Validate a value against a JSON-Schema subset: [type] (string or
    union array), [enum], [required], [properties],
    [additionalProperties] (bool or schema), [items] (single schema).
    Errors carry a [$.path.to.member] location. *)
