module Mark = struct
  type t = { mutable epoch : int; mutable epochs : int array }

  (* A slot is marked iff it holds the current epoch; epoch 0 is never
     current, so fresh (and freshly grown) slots are unmarked. *)
  let create ?(capacity = 64) () = { epoch = 1; epochs = Array.make (Int.max 1 capacity) 0 }

  let clear t = t.epoch <- t.epoch + 1

  let grow t i =
    let cap = ref (Array.length t.epochs) in
    while i >= !cap do
      cap := 2 * !cap
    done;
    let bigger = Array.make !cap 0 in
    Array.blit t.epochs 0 bigger 0 (Array.length t.epochs);
    t.epochs <- bigger

  let mark t i =
    if i < 0 then invalid_arg "Dense.Mark.mark: negative id";
    if i >= Array.length t.epochs then grow t i;
    if t.epochs.(i) = t.epoch then false
    else begin
      t.epochs.(i) <- t.epoch;
      true
    end

  let is_marked t i = i >= 0 && i < Array.length t.epochs && t.epochs.(i) = t.epoch

  let capacity t = Array.length t.epochs
end

module Interner (H : Hashtbl.HashedType) = struct
  module Tbl = Hashtbl.Make (H)

  type t = {
    ids : int Tbl.t;
    mutable keys : H.t array; (* keys.(i) is the key of id i, for i < n *)
    mutable n : int;
  }

  let create ?(capacity = 64) () = { ids = Tbl.create (Int.max 1 capacity); keys = [||]; n = 0 }

  let size t = t.n

  let intern t k =
    match Tbl.find_opt t.ids k with
    | Some id -> id
    | None ->
        let id = t.n in
        let cap = Array.length t.keys in
        if id >= cap then begin
          (* Seed the fresh slots with [k]: H.t has no default value. *)
          let bigger = Array.make (Int.max 8 (2 * cap)) k in
          Array.blit t.keys 0 bigger 0 cap;
          t.keys <- bigger
        end;
        t.keys.(id) <- k;
        t.n <- id + 1;
        Tbl.add t.ids k id;
        id

  let find t k = Tbl.find_opt t.ids k

  let mem t k = Tbl.mem t.ids k

  let key t i =
    if i < 0 || i >= t.n then invalid_arg (Printf.sprintf "Dense.Interner.key: id %d unassigned" i);
    t.keys.(i)

  let iter t f =
    for i = 0 to t.n - 1 do
      f i t.keys.(i)
    done
end
