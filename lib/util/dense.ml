module Mark = struct
  type t = { mutable epoch : int; mutable epochs : int array }

  (* A slot is marked iff it holds the current epoch; epoch 0 is never
     current, so fresh (and freshly grown) slots are unmarked. *)
  let create ?(capacity = 64) () = { epoch = 1; epochs = Array.make (Int.max 1 capacity) 0 }

  let clear t = t.epoch <- t.epoch + 1

  let grow t i =
    let cap = ref (Array.length t.epochs) in
    while i >= !cap do
      cap := 2 * !cap
    done;
    let bigger = Array.make !cap 0 in
    Array.blit t.epochs 0 bigger 0 (Array.length t.epochs);
    t.epochs <- bigger

  let mark t i =
    if i < 0 then invalid_arg "Dense.Mark.mark: negative id";
    if i >= Array.length t.epochs then grow t i;
    if t.epochs.(i) = t.epoch then false
    else begin
      t.epochs.(i) <- t.epoch;
      true
    end

  let is_marked t i = i >= 0 && i < Array.length t.epochs && t.epochs.(i) = t.epoch

  let capacity t = Array.length t.epochs
end

(* Growable int-packed adjacency: each row is a chain of fixed-size
   blocks inside one flat int array, so a graph with millions of edges
   is a handful of arrays — no per-row boxes, no per-edge options.
   Freed blocks go on a free list and are recycled by later [add]s,
   which keeps a churning graph's footprint proportional to its live
   edge count rather than its historical peak. *)
module Csr = struct
  (* Block layout inside [store]: slot 0 is the next-block link (-1 =
     none), slots 1..block_values hold values.  A row tracks its head
     block, tail block and how many slots of the tail are used; all
     non-tail blocks are full. *)
  let block_values = 7

  let block_size = block_values + 1

  type t = {
    mutable store : int array;
    mutable blocks : int; (* blocks ever carved out of [store] *)
    mutable free_block : int; (* head of the freed-block list, -1 = empty *)
    mutable head : int array; (* row -> first block, -1 = empty row *)
    mutable tail : int array; (* row -> last block *)
    mutable used : int array; (* row -> values used in the tail block *)
    mutable len : int array; (* row -> total values *)
    mutable rows : int; (* rows touched so far (array growth hint) *)
  }

  let create ?(capacity = 64) () =
    let capacity = Int.max 1 capacity in
    {
      store = Array.make (block_size * 8) (-1);
      blocks = 0;
      free_block = -1;
      head = Array.make capacity (-1);
      tail = Array.make capacity (-1);
      used = Array.make capacity 0;
      len = Array.make capacity 0;
      rows = 0;
    }

  let grow_rows t r =
    let cap = ref (Array.length t.head) in
    while r >= !cap do
      cap := 2 * !cap
    done;
    let grow a fill =
      let bigger = Array.make !cap fill in
      Array.blit a 0 bigger 0 (Array.length a);
      bigger
    in
    t.head <- grow t.head (-1);
    t.tail <- grow t.tail (-1);
    t.used <- grow t.used 0;
    t.len <- grow t.len 0

  let ensure_row t r =
    if r < 0 then invalid_arg "Dense.Csr: negative row";
    if r >= Array.length t.head then grow_rows t r;
    if r >= t.rows then t.rows <- r + 1

  let alloc_block t =
    match t.free_block with
    | b when b >= 0 ->
        t.free_block <- t.store.(b * block_size);
        t.store.(b * block_size) <- -1;
        b
    | _ ->
        let b = t.blocks in
        t.blocks <- b + 1;
        if (b + 1) * block_size > Array.length t.store then begin
          let bigger = Array.make (2 * Array.length t.store) (-1) in
          Array.blit t.store 0 bigger 0 (Array.length t.store);
          t.store <- bigger
        end;
        t.store.(b * block_size) <- -1;
        b

  let free_block_ t b =
    t.store.(b * block_size) <- t.free_block;
    t.free_block <- b

  let length t r = if r < 0 || r >= Array.length t.len then 0 else t.len.(r)

  let add t r v =
    ensure_row t r;
    (if t.head.(r) < 0 then begin
       let b = alloc_block t in
       t.head.(r) <- b;
       t.tail.(r) <- b;
       t.used.(r) <- 0
     end
     else if t.used.(r) >= block_values then begin
       let b = alloc_block t in
       t.store.((t.tail.(r) * block_size)) <- b;
       t.tail.(r) <- b;
       t.used.(r) <- 0
     end);
    t.store.((t.tail.(r) * block_size) + 1 + t.used.(r)) <- v;
    t.used.(r) <- t.used.(r) + 1;
    t.len.(r) <- t.len.(r) + 1

  let iter t r f =
    if r >= 0 && r < Array.length t.head then begin
      let b = ref t.head.(r) in
      while !b >= 0 do
        let base = !b * block_size in
        let n = if !b = t.tail.(r) then t.used.(r) else block_values in
        for i = 1 to n do
          f t.store.(base + i)
        done;
        b := t.store.(base)
      done
    end

  (* Drop the tail's last value (swapping it into the vacated slot is
     the caller's job); recycles the tail block when it empties. *)
  let shrink t r =
    t.used.(r) <- t.used.(r) - 1;
    t.len.(r) <- t.len.(r) - 1;
    if t.used.(r) = 0 then begin
      let dead = t.tail.(r) in
      if t.head.(r) = dead then begin
        t.head.(r) <- -1;
        t.tail.(r) <- -1
      end
      else begin
        (* Walk to the block linking to the tail.  Rows are short
           chains (a block per 7 edges), so this stays cheap. *)
        let b = ref t.head.(r) in
        while t.store.(!b * block_size) <> dead do
          b := t.store.(!b * block_size)
        done;
        t.store.(!b * block_size) <- -1;
        t.tail.(r) <- !b;
        t.used.(r) <- block_values
      end;
      free_block_ t dead
    end

  (* Remove one occurrence of [v] by overwriting it with the row's
     last value and shrinking — order inside a row is not preserved,
     which is fine for adjacency multisets. *)
  let remove t r v =
    if r < 0 || r >= Array.length t.head || t.head.(r) < 0 then false
    else begin
      let found = ref (-1) in
      let b = ref t.head.(r) in
      while !found < 0 && !b >= 0 do
        let base = !b * block_size in
        let n = if !b = t.tail.(r) then t.used.(r) else block_values in
        let i = ref 1 in
        while !found < 0 && !i <= n do
          if t.store.(base + !i) = v then found := base + !i;
          incr i
        done;
        b := t.store.(base)
      done;
      if !found < 0 then false
      else begin
        let last = (t.tail.(r) * block_size) + t.used.(r) in
        t.store.(!found) <- t.store.(last);
        shrink t r;
        true
      end
    end

  let clear_row t r =
    if r >= 0 && r < Array.length t.head && t.head.(r) >= 0 then begin
      let b = ref t.head.(r) in
      while !b >= 0 do
        let next = t.store.(!b * block_size) in
        free_block_ t !b;
        b := next
      done;
      t.head.(r) <- -1;
      t.tail.(r) <- -1;
      t.used.(r) <- 0;
      t.len.(r) <- 0
    end

  let reset t =
    Array.fill t.head 0 (Array.length t.head) (-1);
    Array.fill t.tail 0 (Array.length t.tail) (-1);
    Array.fill t.used 0 (Array.length t.used) 0;
    Array.fill t.len 0 (Array.length t.len) 0;
    t.blocks <- 0;
    t.free_block <- -1;
    t.rows <- 0

  let free_blocks t =
    let n = ref 0 in
    let b = ref t.free_block in
    while !b >= 0 do
      incr n;
      b := t.store.(!b * block_size)
    done;
    !n

  let words t = Array.length t.store + (4 * Array.length t.head)
end

module Interner (H : Hashtbl.HashedType) = struct
  module Tbl = Hashtbl.Make (H)

  type t = {
    ids : int Tbl.t;
    mutable keys : H.t array; (* keys.(i) is the key of id i, for i < n *)
    mutable n : int;
  }

  let create ?(capacity = 64) () = { ids = Tbl.create (Int.max 1 capacity); keys = [||]; n = 0 }

  let size t = t.n

  let intern t k =
    match Tbl.find_opt t.ids k with
    | Some id -> id
    | None ->
        let id = t.n in
        let cap = Array.length t.keys in
        if id >= cap then begin
          (* Seed the fresh slots with [k]: H.t has no default value. *)
          let bigger = Array.make (Int.max 8 (2 * cap)) k in
          Array.blit t.keys 0 bigger 0 cap;
          t.keys <- bigger
        end;
        t.keys.(id) <- k;
        t.n <- id + 1;
        Tbl.add t.ids k id;
        id

  let find t k = Tbl.find_opt t.ids k

  let mem t k = Tbl.mem t.ids k

  let key t i =
    if i < 0 || i >= t.n then invalid_arg (Printf.sprintf "Dense.Interner.key: id %d unassigned" i);
    t.keys.(i)

  let iter t f =
    for i = 0 to t.n - 1 do
      f i t.keys.(i)
    done
end
