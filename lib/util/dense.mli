(** Dense-integer indexing primitives for hot graph traversals.

    The runtime's tracing and summarization loops spend their time
    asking "have I seen this object?" and "what do I know about this
    object?".  Answering through [Oid.Set] / [Oid.Tbl] costs a
    comparison chain or a hash per query and allocates on every
    insertion.  This module provides the classic alternative: intern
    each key once into a dense integer id, then answer every
    subsequent query with an array access.

    - {!Interner} is an append-only key <-> dense-int bijection.  Ids
      are assigned in interning order, stay stable for the interner's
      lifetime, and index plain arrays directly.
    - {!Mark} is a visited-set over dense ids whose [clear] is O(1):
      each slot stores the epoch at which it was last marked, and
      clearing just bumps the current epoch.  Reusing one [Mark]
      across millions of traversals costs no allocation and no
      per-object reset.

    Both structures grow transparently and are deliberately free of
    any dependency on the object algebra, so they can serve any keyed
    workload (OIDs, ref-keys, process ids, ...). *)

(** Epoch-marked bitset over dense integer ids. *)
module Mark : sig
  type t

  val create : ?capacity:int -> unit -> t
  (** [capacity] is only a size hint (default 64); the set grows on
      demand. *)

  val clear : t -> unit
  (** Forget every mark in O(1) (epoch bump — no memory is touched). *)

  val mark : t -> int -> bool
  (** Mark an id; [true] iff it was not yet marked this epoch.  Grows
      the backing store when the id is beyond current capacity.
      @raise Invalid_argument on a negative id. *)

  val is_marked : t -> int -> bool
  (** O(1); ids beyond capacity are unmarked. *)

  val capacity : t -> int
end

(** Append-only interner assigning dense ids in [0, size) to keys. *)
module Interner (H : Hashtbl.HashedType) : sig
  type t

  val create : ?capacity:int -> unit -> t

  val size : t -> int
  (** Number of interned keys; also the next id to be assigned. *)

  val intern : t -> H.t -> int
  (** Id of the key, interning it first when new.  Ids are assigned
      consecutively from 0 and never change or get recycled. *)

  val find : t -> H.t -> int option
  (** Id of an already-interned key. *)

  val mem : t -> H.t -> bool

  val key : t -> int -> H.t
  (** Inverse of {!intern}.
      @raise Invalid_argument when the id was never assigned. *)

  val iter : t -> (int -> H.t -> unit) -> unit
  (** All (id, key) pairs in id order. *)
end
