(** Dense-integer indexing primitives for hot graph traversals.

    The runtime's tracing and summarization loops spend their time
    asking "have I seen this object?" and "what do I know about this
    object?".  Answering through [Oid.Set] / [Oid.Tbl] costs a
    comparison chain or a hash per query and allocates on every
    insertion.  This module provides the classic alternative: intern
    each key once into a dense integer id, then answer every
    subsequent query with an array access.

    - {!Interner} is an append-only key <-> dense-int bijection.  Ids
      are assigned in interning order, stay stable for the interner's
      lifetime, and index plain arrays directly.
    - {!Mark} is a visited-set over dense ids whose [clear] is O(1):
      each slot stores the epoch at which it was last marked, and
      clearing just bumps the current epoch.  Reusing one [Mark]
      across millions of traversals costs no allocation and no
      per-object reset.

    Both structures grow transparently and are deliberately free of
    any dependency on the object algebra, so they can serve any keyed
    workload (OIDs, ref-keys, process ids, ...). *)

(** Epoch-marked bitset over dense integer ids. *)
module Mark : sig
  type t

  val create : ?capacity:int -> unit -> t
  (** [capacity] is only a size hint (default 64); the set grows on
      demand. *)

  val clear : t -> unit
  (** Forget every mark in O(1) (epoch bump — no memory is touched). *)

  val mark : t -> int -> bool
  (** Mark an id; [true] iff it was not yet marked this epoch.  Grows
      the backing store when the id is beyond current capacity.
      @raise Invalid_argument on a negative id. *)

  val is_marked : t -> int -> bool
  (** O(1); ids beyond capacity are unmarked. *)

  val capacity : t -> int
end

(** Growable int-packed adjacency over dense row ids.

    Each row is a chain of fixed-size blocks inside one flat [int
    array]: adding an edge writes one slot, iterating a row touches
    only that array, and a graph with millions of edges costs a
    handful of arrays rather than millions of boxed cells.  Blocks
    freed by {!remove} / {!clear_row} go on a free list and are
    recycled, so a churning graph's footprint tracks its live edge
    count.  Values are arbitrary ints (negative included), letting
    callers pack tagged ids — the heap tracer stores local dense ids
    as [>= 0] and remote interner ids as [-(rid+1)]. *)
module Csr : sig
  type t

  val create : ?capacity:int -> unit -> t
  (** [capacity] is a row-count hint; rows and edge storage both grow
      on demand. *)

  val ensure_row : t -> int -> unit
  (** Make row [r] addressable (rows are dense external ids, e.g. from
      an {!Interner}).  Implied by {!add}.
      @raise Invalid_argument on a negative row. *)

  val add : t -> int -> int -> unit
  (** Append a value to a row (multiset semantics — duplicates are
      kept). *)

  val remove : t -> int -> int -> bool
  (** Remove one occurrence of the value from the row; [false] when
      absent.  Order within the row is not preserved (the last value
      is swapped into the hole). *)

  val clear_row : t -> int -> unit
  (** Empty the row, recycling all its blocks. *)

  val length : t -> int -> int
  (** Number of values in the row (0 for never-touched rows). *)

  val iter : t -> int -> (int -> unit) -> unit
  (** All values of the row, blocks in chain order. *)

  val reset : t -> unit
  (** Empty every row and return all blocks to the allocator (row
      arrays keep their capacity). *)

  val free_blocks : t -> int
  (** Blocks currently parked on the free list (recycling telemetry
      for tests and benches). *)

  val words : t -> int
  (** Words held by the backing arrays — the live-memory proxy the
      scale benches record. *)
end

(** Append-only interner assigning dense ids in [0, size) to keys. *)
module Interner (H : Hashtbl.HashedType) : sig
  type t

  val create : ?capacity:int -> unit -> t

  val size : t -> int
  (** Number of interned keys; also the next id to be assigned. *)

  val intern : t -> H.t -> int
  (** Id of the key, interning it first when new.  Ids are assigned
      consecutively from 0 and never change or get recycled. *)

  val find : t -> H.t -> int option
  (** Id of an already-interned key. *)

  val mem : t -> H.t -> bool

  val key : t -> int -> H.t
  (** Inverse of {!intern}.
      @raise Invalid_argument when the id was never assigned. *)

  val iter : t -> (int -> H.t -> unit) -> unit
  (** All (id, key) pairs in id order. *)
end
